//! Power and energy model (paper §7).
//!
//! The paper measures power two different ways and is explicit that they are
//! not directly comparable:
//!
//! * **RISC-V boards** — a wall power meter on the USB supply: whole-board
//!   power (CPU + DRAM + SSD + Ethernet + conversion losses). Measured:
//!   3.19 W running `stress --cpu 4` and **3.22 W running Octo-Tiger** on
//!   four cores, averaged over one minute.
//! * **A64FX (Fugaku)** — Riken's PowerAPI, which "isolates the chip's power
//!   consumption".
//!
//! Fig. 9's finding: *power* is far lower on RISC-V, but *energy* is higher
//! because the simulation runs ≈7× longer. The [`PowerModel`] reproduces
//! both measurement styles; [`PowerMeter`] integrates power over a run the
//! way the wall meter's one-minute average does.

use crate::arch::CpuArch;

/// How power is observed — the two instruments of §7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instrument {
    /// Wall power meter on the board supply (whole-board, incl. losses).
    WallMeter,
    /// PowerAPI chip-level counters (CPU package only).
    PowerApi,
}

/// Per-architecture power model: `P(active) = idle + active_cores · per_core`.
#[derive(Debug, Clone, Copy)]
pub struct PowerModel {
    /// The instrument the paper used for this architecture.
    pub instrument: Instrument,
    /// Baseline power with zero busy cores, watts.
    pub idle_w: f64,
    /// Additional power per busy core, watts.
    pub per_core_w: f64,
}

impl PowerModel {
    /// Power model for `arch`, matching the measurement style of the paper.
    pub fn for_arch(arch: CpuArch) -> Self {
        match arch {
            // Whole VisionFive2 / HiFive board at the wall. Calibrated so
            // that 4 busy cores give the paper's 3.22 W (Octo-Tiger) and the
            // idle board draws ≈2.2 W.
            CpuArch::RiscvU74 | CpuArch::Jh7110 => PowerModel {
                instrument: Instrument::WallMeter,
                idle_w: 2.20,
                per_core_w: 0.255,
            },
            // A64FX package via PowerAPI. A fully loaded A64FX draws
            // ≈110-120 W over 48 cores; a 4-core run still pays a share of
            // the uncore/HBM baseline, giving ≈16 W for the paper's
            // configuration — low enough that, with the ≈7× runtime gap,
            // the RISC-V boards consume *more energy* despite ≈5× less
            // power (the paper's §7 finding).
            CpuArch::A64fx => PowerModel {
                instrument: Instrument::PowerApi,
                idle_w: 10.0,
                per_core_w: 1.5,
            },
            // Not measured in the paper; public TDP-derived estimates kept
            // for completeness (used only by extension experiments).
            CpuArch::Epyc7543 => PowerModel {
                instrument: Instrument::PowerApi,
                idle_w: 65.0,
                per_core_w: 2.8,
            },
            CpuArch::XeonGold6140 => PowerModel {
                instrument: Instrument::PowerApi,
                idle_w: 45.0,
                per_core_w: 4.5,
            },
        }
    }

    /// Power draw with `active_cores` busy cores, watts.
    pub fn power_watts(&self, active_cores: u32) -> f64 {
        self.idle_w + self.per_core_w * f64::from(active_cores)
    }

    /// Energy for a run of `seconds` with `active_cores` busy, joules.
    pub fn energy_joules(&self, active_cores: u32, seconds: f64) -> f64 {
        self.power_watts(active_cores) * seconds
    }
}

/// Integrating power meter: feed it (duration, watts) segments, read back the
/// average power (what the paper reports: "average power consumption over one
/// minute") and total energy.
#[derive(Debug, Default, Clone)]
pub struct PowerMeter {
    joules: f64,
    seconds: f64,
}

impl PowerMeter {
    /// Fresh meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a segment of `seconds` at `watts`.
    pub fn record(&mut self, seconds: f64, watts: f64) {
        assert!(seconds >= 0.0 && watts >= 0.0, "negative power segment");
        self.joules += watts * seconds;
        self.seconds += seconds;
    }

    /// Average power over everything recorded, watts (0 if nothing recorded).
    pub fn average_watts(&self) -> f64 {
        if self.seconds == 0.0 {
            0.0
        } else {
            self.joules / self.seconds
        }
    }

    /// Total energy, joules.
    pub fn joules(&self) -> f64 {
        self.joules
    }

    /// Total observed time, seconds.
    pub fn seconds(&self) -> f64 {
        self.seconds
    }
}

/// One row of Fig. 9: energy for a run on `nodes` nodes of `arch`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Architecture of the nodes.
    pub arch: CpuArch,
    /// Node count (1 or 2 in the paper).
    pub nodes: u32,
    /// Busy cores per node.
    pub cores_per_node: u32,
    /// Run duration, seconds.
    pub seconds: f64,
    /// Average power per node, watts.
    pub watts_per_node: f64,
    /// Total energy across nodes, joules.
    pub joules: f64,
}

impl EnergyReport {
    /// Build a report from the power model for a measured/projected runtime.
    pub fn for_run(arch: CpuArch, nodes: u32, cores_per_node: u32, seconds: f64) -> Self {
        let pm = PowerModel::for_arch(arch);
        let watts = pm.power_watts(cores_per_node);
        EnergyReport {
            arch,
            nodes,
            cores_per_node,
            seconds,
            watts_per_node: watts,
            joules: watts * seconds * f64::from(nodes),
        }
    }
}

/// Short lower-case architecture tag used in counter paths
/// (`/energy/{tag}/joules`).
pub fn arch_counter_tag(arch: CpuArch) -> &'static str {
    match arch {
        CpuArch::A64fx => "a64fx",
        CpuArch::Epyc7543 => "epyc7543",
        CpuArch::XeonGold6140 => "xeon6140",
        CpuArch::RiscvU74 => "u74",
        CpuArch::Jh7110 => "jh7110",
    }
}

/// Emit the `/energy/{arch}/…` gauge counters for a run of `seconds` on
/// `nodes` × `cores_per_node` busy cores into an apex-lite snapshot — the
/// bridge between the §7 power model and the unified counter namespace.
pub fn energy_counters_into(
    snap: &mut apex_lite::CounterSnapshot,
    arch: CpuArch,
    nodes: u32,
    cores_per_node: u32,
    seconds: f64,
) {
    let report = EnergyReport::for_run(arch, nodes, cores_per_node, seconds);
    let tag = arch_counter_tag(arch);
    snap.set_gauge(
        format!("/energy/{tag}/watts_per_node"),
        report.watts_per_node,
    );
    snap.set_gauge(format!("/energy/{tag}/joules"), report.joules);
    snap.set_gauge(format!("/energy/{tag}/seconds"), seconds);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn riscv_board_power_matches_paper() {
        // 3.22 W for Octo-Tiger with four busy cores (±2%).
        let p = PowerModel::for_arch(CpuArch::Jh7110).power_watts(4);
        assert!((p - 3.22).abs() / 3.22 < 0.02, "board power {p} W");
    }

    #[test]
    fn riscv_power_far_below_a64fx() {
        let rv = PowerModel::for_arch(CpuArch::Jh7110).power_watts(4);
        let a64 = PowerModel::for_arch(CpuArch::A64fx).power_watts(4);
        assert!(rv < a64 / 3.0);
    }

    #[test]
    fn energy_higher_on_riscv_despite_lower_power() {
        // §7: RISC-V runs ≈7× longer, so its energy ends up higher even
        // though its power is ≈5× lower.
        let t_rv = 700.0;
        let t_a64 = t_rv / 7.0;
        let e_rv = PowerModel::for_arch(CpuArch::Jh7110).energy_joules(4, t_rv);
        let e_a64 = PowerModel::for_arch(CpuArch::A64fx).energy_joules(4, t_a64);
        assert!(e_rv > e_a64, "E_rv={e_rv} J vs E_a64={e_a64} J");
    }

    #[test]
    fn meter_average_and_energy() {
        let mut m = PowerMeter::new();
        m.record(30.0, 3.0);
        m.record(30.0, 3.4);
        assert!((m.average_watts() - 3.2).abs() < 1e-12);
        assert!((m.joules() - 192.0).abs() < 1e-12);
        assert!((m.seconds() - 60.0).abs() < 1e-12);
    }

    #[test]
    fn empty_meter_reads_zero() {
        let m = PowerMeter::new();
        assert_eq!(m.average_watts(), 0.0);
        assert_eq!(m.joules(), 0.0);
    }

    #[test]
    #[should_panic(expected = "negative power segment")]
    fn meter_rejects_negative_segments() {
        PowerMeter::new().record(-1.0, 3.0);
    }

    #[test]
    fn report_scales_with_nodes() {
        let one = EnergyReport::for_run(CpuArch::Jh7110, 1, 4, 100.0);
        let two = EnergyReport::for_run(CpuArch::Jh7110, 2, 4, 100.0);
        assert!((two.joules - 2.0 * one.joules).abs() < 1e-9);
        assert_eq!(one.watts_per_node, two.watts_per_node);
    }

    #[test]
    fn energy_counters_land_in_the_namespace() {
        let mut snap = apex_lite::CounterSnapshot::new();
        energy_counters_into(&mut snap, CpuArch::Jh7110, 2, 4, 100.0);
        let report = EnergyReport::for_run(CpuArch::Jh7110, 2, 4, 100.0);
        match snap.get("/energy/jh7110/joules") {
            Some(apex_lite::CounterValue::Gauge(j)) => {
                assert!((j - report.joules).abs() < 1e-9)
            }
            other => panic!("missing joules gauge: {other:?}"),
        }
        assert!(snap.get("/energy/jh7110/watts_per_node").is_some());
        assert!(snap.get("/energy/jh7110/seconds").is_some());
    }

    #[test]
    fn instruments_match_paper_methodology() {
        assert_eq!(
            PowerModel::for_arch(CpuArch::RiscvU74).instrument,
            Instrument::WallMeter
        );
        assert_eq!(
            PowerModel::for_arch(CpuArch::A64fx).instrument,
            Instrument::PowerApi
        );
    }
}
