//! Timing support — the one place the HPX port needed a RISC-V-specific
//! source change (paper §5, Listing 1).
//!
//! HPX offers a portable software timer (ISO C++, `std::chrono`) and
//! hardware-supported timers that "require fewer instructions". The RISC-V
//! port added an `RDTIME`-based implementation: `rdtime` is a pseudo-
//! instruction reading the `time` CSR, which counts at a fixed *timebase*
//! frequency (4 MHz on the JH7110/U74 platforms) independent of the core
//! clock.
//!
//! [`RdTime`] models that counter — including its coarse 250 ns quantum —
//! and [`SoftwareTimer`] models the portable fallback. Both implement
//! [`Timer`], mirroring HPX's timer abstraction, and report their
//! read-overhead in cycles so the cost model can charge them.

use std::time::Instant;

/// Abstract timer, as HPX's hardware/software timing facility.
pub trait Timer {
    /// Current counter value in ticks.
    fn now_ticks(&self) -> u64;
    /// Tick frequency in Hz.
    fn frequency_hz(&self) -> u64;
    /// Cycles a single read costs (hardware timers are cheaper — the point
    /// of the paper's patch).
    fn read_overhead_cycles(&self) -> u32;

    /// Seconds between two tick readings.
    fn seconds_between(&self, start: u64, end: u64) -> f64 {
        (end.saturating_sub(start)) as f64 / self.frequency_hz() as f64
    }
}

/// Model of the RISC-V `rdtime` CSR: a monotonic counter at the platform
/// timebase frequency (default 4 MHz, the JH7110's `timebase-frequency`).
#[derive(Debug)]
pub struct RdTime {
    origin: Instant,
    timebase_hz: u64,
}

impl RdTime {
    /// `rdtime` at the standard 4 MHz StarFive/SiFive timebase.
    pub fn new() -> Self {
        Self::with_timebase(4_000_000)
    }

    /// `rdtime` with an explicit timebase frequency.
    pub fn with_timebase(timebase_hz: u64) -> Self {
        assert!(timebase_hz > 0, "timebase must be positive");
        RdTime {
            origin: Instant::now(),
            timebase_hz,
        }
    }
}

impl Default for RdTime {
    fn default() -> Self {
        Self::new()
    }
}

impl Timer for RdTime {
    fn now_ticks(&self) -> u64 {
        let ns = self.origin.elapsed().as_nanos() as u64;
        // Quantize to the timebase: the CSR only advances every
        // 1e9/timebase ns (250 ns at 4 MHz).
        ns / (1_000_000_000 / self.timebase_hz)
    }

    fn frequency_hz(&self) -> u64 {
        self.timebase_hz
    }

    fn read_overhead_cycles(&self) -> u32 {
        // One CSR read + register move.
        5
    }
}

/// The portable ISO-C++-style software timer HPX falls back to: full
/// nanosecond resolution but a more expensive read path (vDSO call,
/// conversion arithmetic).
#[derive(Debug)]
pub struct SoftwareTimer {
    origin: Instant,
}

impl SoftwareTimer {
    /// New software timer.
    pub fn new() -> Self {
        SoftwareTimer {
            origin: Instant::now(),
        }
    }
}

impl Default for SoftwareTimer {
    fn default() -> Self {
        Self::new()
    }
}

impl Timer for SoftwareTimer {
    fn now_ticks(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    fn frequency_hz(&self) -> u64 {
        1_000_000_000
    }

    fn read_overhead_cycles(&self) -> u32 {
        40
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rdtime_monotonic() {
        let t = RdTime::new();
        let a = t.now_ticks();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = t.now_ticks();
        assert!(b >= a);
    }

    #[test]
    fn rdtime_measures_real_time() {
        let t = RdTime::new();
        let a = t.now_ticks();
        std::thread::sleep(std::time::Duration::from_millis(20));
        let b = t.now_ticks();
        let secs = t.seconds_between(a, b);
        assert!(
            (0.015..0.5).contains(&secs),
            "measured {secs}s for a 20ms sleep"
        );
    }

    #[test]
    fn rdtime_quantizes_to_timebase() {
        // At a 10 Hz timebase, readings within 100 ms collapse to the same tick.
        let t = RdTime::with_timebase(10);
        let a = t.now_ticks();
        let b = t.now_ticks();
        assert_eq!(a, b);
    }

    #[test]
    fn hardware_timer_cheaper_than_software() {
        assert!(RdTime::new().read_overhead_cycles() < SoftwareTimer::new().read_overhead_cycles());
    }

    #[test]
    fn seconds_between_uses_frequency() {
        let t = RdTime::with_timebase(4_000_000);
        assert!((t.seconds_between(0, 4_000_000) - 1.0).abs() < 1e-12);
        // saturating on reversed readings
        assert_eq!(t.seconds_between(10, 5), 0.0);
    }

    #[test]
    #[should_panic(expected = "timebase must be positive")]
    fn zero_timebase_rejected() {
        let _ = RdTime::with_timebase(0);
    }

    #[test]
    fn software_timer_nanosecond_frequency() {
        assert_eq!(SoftwareTimer::new().frequency_hz(), 1_000_000_000);
    }
}
