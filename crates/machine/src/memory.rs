//! Memory-subsystem model.
//!
//! §6.2.1 of the paper observes that Octo-Tiger on the VisionFive2 is
//! noticeably *more* than 5× slower than A64FX (≈7× in §6.2.2) because
//! "with more memory usage, the slow connection to the memory appears to
//! kick in and slows the overall simulation". The development boards have a
//! single narrow LPDDR4/DDR4 channel, while the comparison CPUs have
//! HBM2 (A64FX) or many DDR4 channels.
//!
//! We model this with a shared-bandwidth roofline: a workload phase that
//! moves `bytes` of data and executes `flops` on `cores` cores takes
//! `max(t_compute, t_memory)` where `t_memory = bytes / bw_effective` and
//! the effective bandwidth saturates as more cores contend for the single
//! memory controller.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::arch::CpuArch;
use crate::cost::CostModel;

/// High-water mark of the simulation's own arena bytes (octree node lanes +
/// resident sub-grids), maintained by [`note_arena_bytes`]. Process-global:
/// the paper reports one peak-memory figure per run, not per driver.
static ARENA_HWM: AtomicU64 = AtomicU64::new(0);

/// Record the current size of the simulation's data arena; the running
/// maximum is what [`peak_rss_bytes`] falls back to on platforms without a
/// readable OS high-water mark.
pub fn note_arena_bytes(bytes: u64) {
    ARENA_HWM.fetch_max(bytes, Ordering::Relaxed);
}

/// High-water mark reported so far via [`note_arena_bytes`].
pub fn arena_high_water_bytes() -> u64 {
    ARENA_HWM.load(Ordering::Relaxed)
}

/// Peak resident-set size of this process in bytes: the OS `VmHWM` figure
/// where `/proc/self/status` exists (Linux — the boards in the study all run
/// it), otherwise the arena high-water mark. The larger of the two is
/// returned so the metric is monotone and never under-reports the arena.
///
/// This is the reproduction's analogue of the paper's §6.2.1 memory-pressure
/// observation: deep trees are memory-bound before they are compute-bound,
/// so peak RSS is reported next to cells/sec in [`RunMetrics`]-style
/// summaries.
///
/// [`RunMetrics`]: https://en.wikipedia.org/wiki/Resident_set_size
pub fn peak_rss_bytes() -> u64 {
    os_peak_rss_bytes()
        .unwrap_or(0)
        .max(arena_high_water_bytes())
}

/// `VmHWM` from `/proc/self/status`, in bytes. `None` off Linux or if the
/// field is missing/unparsable.
fn os_peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    // "VmHWM:    123456 kB"
    let kib: u64 = line
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())?;
    Some(kib * 1024)
}

/// Per-architecture memory model.
#[derive(Debug, Clone, Copy)]
pub struct MemoryModel {
    arch: CpuArch,
}

impl MemoryModel {
    /// Model for `arch`.
    pub fn new(arch: CpuArch) -> Self {
        MemoryModel { arch }
    }

    /// Effective bandwidth (GiB/s) visible to `cores` active cores.
    ///
    /// One core cannot saturate the controller (limited MLP — especially on
    /// the in-order U74, which sustains roughly 55% of board bandwidth from
    /// a single core); additional cores add bandwidth with diminishing
    /// returns until the board limit.
    pub fn effective_bandwidth_gib(&self, cores: u32) -> f64 {
        let spec = self.arch.spec();
        let peak = spec.mem_bandwidth_gib;
        let single_core_fraction = if self.arch.is_riscv() { 0.55 } else { 0.35 };
        let single = peak * single_core_fraction;
        // Saturating growth: bw(c) = peak * (1 - (1 - f)^c)
        let f = single / peak;
        peak * (1.0 - (1.0 - f).powi(cores as i32))
    }

    /// Seconds to move `bytes` with `cores` active cores.
    pub fn transfer_seconds(&self, bytes: u64, cores: u32) -> f64 {
        let bw = self.effective_bandwidth_gib(cores.max(1)) * 1024.0 * 1024.0 * 1024.0;
        bytes as f64 / bw
    }

    /// Roofline phase time: the larger of compute time (`flops` split over
    /// `cores`) and memory time (`bytes` over shared bandwidth).
    ///
    /// In-order cores overlap compute and outstanding misses poorly, so for
    /// the RISC-V boards a fraction of the smaller term leaks into the total.
    pub fn phase_seconds(&self, flops: u64, bytes: u64, cores: u32) -> f64 {
        let cores = cores.max(1);
        let cm = CostModel::new(self.arch);
        let t_comp = cm.flop_seconds(flops) / f64::from(cores);
        let t_mem = self.transfer_seconds(bytes, cores);
        let (hi, lo) = if t_comp >= t_mem {
            (t_comp, t_mem)
        } else {
            (t_mem, t_comp)
        };
        let overlap_leak = if self.arch.is_riscv() { 0.35 } else { 0.10 };
        hi + overlap_leak * lo
    }

    /// Arithmetic intensity (flops/byte) below which this architecture is
    /// memory-bound at full core count.
    pub fn ridge_point(&self) -> f64 {
        let spec = self.arch.spec();
        let cm = CostModel::new(self.arch);
        let gflops = cm.sustained_scalar_gflops_per_core() * f64::from(spec.cores);
        gflops / self.effective_bandwidth_gib(spec.cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_grows_with_cores_and_saturates() {
        let m = MemoryModel::new(CpuArch::Jh7110);
        let b1 = m.effective_bandwidth_gib(1);
        let b2 = m.effective_bandwidth_gib(2);
        let b4 = m.effective_bandwidth_gib(4);
        assert!(b1 < b2 && b2 < b4);
        assert!(b4 <= CpuArch::Jh7110.spec().mem_bandwidth_gib + 1e-9);
        // diminishing returns
        assert!(b2 - b1 > b4 - m.effective_bandwidth_gib(3));
    }

    #[test]
    fn riscv_much_slower_for_memory_bound_work() {
        // A memory-heavy phase (low arithmetic intensity) shows a larger
        // RISC-V/A64FX gap than the compute-only ≈5×: the paper's ≈7×.
        let bytes = 1 << 30; // 1 GiB traffic
        let flops = 1 << 28; // 0.25 flop/byte
        let t_rv = MemoryModel::new(CpuArch::Jh7110).phase_seconds(flops, bytes, 4);
        let t_a64 = MemoryModel::new(CpuArch::A64fx).phase_seconds(flops, bytes, 4);
        let ratio = t_rv / t_a64;
        assert!(
            ratio > 5.0,
            "memory-bound gap {ratio} should exceed the ≈5× compute gap"
        );
    }

    #[test]
    fn compute_bound_phase_matches_flop_time() {
        let m = MemoryModel::new(CpuArch::Epyc7543);
        let flops = 1u64 << 32;
        let bytes = 1u64 << 10; // negligible traffic
        let t = m.phase_seconds(flops, bytes, 1);
        let t_comp = CostModel::new(CpuArch::Epyc7543).flop_seconds(flops);
        assert!((t - t_comp) / t_comp < 0.01);
    }

    #[test]
    fn transfer_time_linear_in_bytes() {
        let m = MemoryModel::new(CpuArch::RiscvU74);
        let t1 = m.transfer_seconds(1 << 20, 2);
        let t2 = m.transfer_seconds(1 << 21, 2);
        assert!((t2 - 2.0 * t1).abs() < 1e-12);
    }

    #[test]
    fn ridge_point_positive_everywhere() {
        for arch in CpuArch::ALL {
            assert!(MemoryModel::new(arch).ridge_point() > 0.0, "{arch:?}");
        }
    }

    #[test]
    fn peak_rss_covers_arena_high_water() {
        note_arena_bytes(1);
        let before = peak_rss_bytes();
        assert!(before > 0, "Linux VmHWM or the arena mark must be nonzero");
        // The arena mark only ratchets upward and peak RSS tracks it.
        note_arena_bytes(u64::MAX / 2);
        assert_eq!(arena_high_water_bytes(), u64::MAX / 2);
        assert!(peak_rss_bytes() >= u64::MAX / 2);
        note_arena_bytes(1024);
        assert_eq!(
            arena_high_water_bytes(),
            u64::MAX / 2,
            "high-water mark never decreases"
        );
    }

    #[test]
    fn zero_cores_clamped_to_one() {
        let m = MemoryModel::new(CpuArch::Jh7110);
        assert_eq!(
            m.phase_seconds(1000, 1000, 0),
            m.phase_seconds(1000, 1000, 1)
        );
    }
}
