//! Flop-counting instrumented arithmetic.
//!
//! The paper measures the floating-point operation count of its Maclaurin
//! benchmark *once*, with `perf` on a single Intel core (100000028581 flops
//! for n = 10⁹, i.e. ≈100 flops per series term), and reuses that count on
//! every architecture because "the RISC-V boards do not yet provide hardware
//! counters". This module is our `perf` substitute: a [`CountedF64`] scalar
//! whose every elementary operation increments a [`FlopCounter`], including
//! the operations *inside* `exp`/`log`/`pow`, which we implement in software
//! (see [`softmath`]) exactly because that is how the RISC-V boards compute
//! them (§8: "Exponentiation in RISC-V is performed in software").
//!
//! Counting is scoped: install a counter for the current thread with
//! [`FlopCounter::install`] (tasks running on an `amt` worker install the
//! same shared counter), run the workload, read the totals.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Categories of counted operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlopKind {
    /// Add or subtract.
    Add,
    /// Multiply.
    Mul,
    /// Divide.
    Div,
    /// Square root.
    Sqrt,
    /// Compare / abs / min / max / negate.
    Cmp,
    /// A call to `exp` (its internal adds/muls are counted separately).
    ExpCall,
    /// A call to `log`.
    LogCall,
    /// A call to `pow`.
    PowCall,
}

/// Thread-safe flop counter. All increments are `Relaxed`: totals are only
/// read after the workload has joined.
#[derive(Debug, Default)]
pub struct FlopCounter {
    adds: AtomicU64,
    muls: AtomicU64,
    divs: AtomicU64,
    sqrts: AtomicU64,
    cmps: AtomicU64,
    exp_calls: AtomicU64,
    log_calls: AtomicU64,
    pow_calls: AtomicU64,
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<FlopCounter>>> = const { RefCell::new(None) };
}

/// RAII guard returned by [`FlopCounter::install`]; restores the previously
/// installed counter (if any) on drop.
pub struct InstallGuard {
    prev: Option<Arc<FlopCounter>>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

impl FlopCounter {
    /// New zeroed counter behind an `Arc` (the only form that can be
    /// installed on multiple threads).
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Install `self` as the current thread's counter; uncounted before/after.
    pub fn install(self: &Arc<Self>) -> InstallGuard {
        let prev = CURRENT.with(|c| c.borrow_mut().replace(Arc::clone(self)));
        InstallGuard { prev }
    }

    /// Record one operation on the calling thread's installed counter
    /// (no-op when none is installed).
    #[inline]
    pub fn record(kind: FlopKind) {
        CURRENT.with(|c| {
            if let Some(ctr) = c.borrow().as_ref() {
                ctr.bump(kind);
            }
        });
    }

    #[inline]
    fn bump(&self, kind: FlopKind) {
        let cell = match kind {
            FlopKind::Add => &self.adds,
            FlopKind::Mul => &self.muls,
            FlopKind::Div => &self.divs,
            FlopKind::Sqrt => &self.sqrts,
            FlopKind::Cmp => &self.cmps,
            FlopKind::ExpCall => &self.exp_calls,
            FlopKind::LogCall => &self.log_calls,
            FlopKind::PowCall => &self.pow_calls,
        };
        cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Total flops: every elementary arithmetic operation counts 1
    /// (comparisons and transcendental *calls* are reported separately,
    /// exactly like `perf`'s `fp_arith` events).
    pub fn flops(&self) -> u64 {
        self.adds.load(Ordering::Relaxed)
            + self.muls.load(Ordering::Relaxed)
            + self.divs.load(Ordering::Relaxed)
            + self.sqrts.load(Ordering::Relaxed)
    }

    /// Adds + subtracts.
    pub fn adds(&self) -> u64 {
        self.adds.load(Ordering::Relaxed)
    }
    /// Multiplies.
    pub fn muls(&self) -> u64 {
        self.muls.load(Ordering::Relaxed)
    }
    /// Divides.
    pub fn divs(&self) -> u64 {
        self.divs.load(Ordering::Relaxed)
    }
    /// Square roots.
    pub fn sqrts(&self) -> u64 {
        self.sqrts.load(Ordering::Relaxed)
    }
    /// Comparisons / sign ops.
    pub fn cmps(&self) -> u64 {
        self.cmps.load(Ordering::Relaxed)
    }
    /// Number of `exp` calls.
    pub fn exp_calls(&self) -> u64 {
        self.exp_calls.load(Ordering::Relaxed)
    }
    /// Number of `log` calls.
    pub fn log_calls(&self) -> u64 {
        self.log_calls.load(Ordering::Relaxed)
    }
    /// Number of `pow` calls.
    pub fn pow_calls(&self) -> u64 {
        self.pow_calls.load(Ordering::Relaxed)
    }

    /// Reset all counts to zero.
    pub fn reset(&self) {
        for c in [
            &self.adds,
            &self.muls,
            &self.divs,
            &self.sqrts,
            &self.cmps,
            &self.exp_calls,
            &self.log_calls,
            &self.pow_calls,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// Software implementations of `exp`, `log` and `pow` built from counted
/// elementary operations — the RISC-V code path (no hardware transcendental
/// support), modelled on fdlibm-style argument reduction + polynomial
/// evaluation with compensated (double-double) correction steps, which is
/// why a single `pow` costs ≈90–100 elementary flops, matching the paper's
/// measured ≈100 flops per Maclaurin term.
pub mod softmath {
    use super::{FlopCounter, FlopKind};

    #[inline]
    fn add(a: f64, b: f64) -> f64 {
        FlopCounter::record(FlopKind::Add);
        a + b
    }
    #[inline]
    fn mul(a: f64, b: f64) -> f64 {
        FlopCounter::record(FlopKind::Mul);
        a * b
    }
    #[inline]
    fn div(a: f64, b: f64) -> f64 {
        FlopCounter::record(FlopKind::Div);
        a / b
    }

    const LN2_HI: f64 = 6.931_471_803_691_238e-1;
    const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;

    /// Two-sum: s = a+b exactly represented as (s, err). 6 flops.
    #[inline]
    fn two_sum(a: f64, b: f64) -> (f64, f64) {
        let s = add(a, b);
        let bb = add(s, -a);
        let err = add(add(a, -add(s, -bb)), add(b, -bb));
        (s, err)
    }

    /// Counted natural logarithm via reduction x = 2^k · m, m ∈ [√½, √2),
    /// and the atanh series ln(m) = 2·(t + t³/3 + t⁵/5 + …), t = (m−1)/(m+1),
    /// evaluated to degree 13 with a compensated accumulation pass.
    pub fn soft_ln(x: f64) -> f64 {
        FlopCounter::record(FlopKind::LogCall);
        if x <= 0.0 {
            FlopCounter::record(FlopKind::Cmp);
            return if x == 0.0 {
                f64::NEG_INFINITY
            } else {
                f64::NAN
            };
        }
        // Exponent/mantissa split is integer work (free), mirroring frexp.
        let bits = x.to_bits();
        let mut k = ((bits >> 52) & 0x7ff) as i64 - 1023;
        let mut m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000);
        FlopCounter::record(FlopKind::Cmp);
        if m > std::f64::consts::SQRT_2 {
            m *= 0.5; // exponent adjustment, counted as one mul
            FlopCounter::record(FlopKind::Mul);
            k += 1;
        }
        let num = add(m, -1.0);
        let den = add(m, 1.0);
        let t = div(num, den);
        let t2 = mul(t, t);
        // Horner over odd coefficients 1/3..1/13 (6 mul + 6 add).
        let mut p = 1.0 / 13.0;
        for c in [1.0 / 11.0, 1.0 / 9.0, 1.0 / 7.0, 1.0 / 5.0, 1.0 / 3.0] {
            p = add(mul(p, t2), c);
        }
        let series = mul(mul(p, t2), t);
        // ln(m) = 2t + 2·series with a compensated sum of the k·ln2 part.
        let lnm = add(mul(2.0, t), mul(2.0, series));
        let kf = k as f64;
        let (hi, e1) = two_sum(mul(kf, LN2_HI), lnm);
        let lo = add(mul(kf, LN2_LO), e1);
        add(hi, lo)
    }

    /// Counted exponential via k = round(y/ln2), r = y − k·ln2 (compensated),
    /// e^r by a degree-11 Taylor/Horner polynomial, then scale by 2^k.
    ///
    /// Like glibc's `exp`, the over/underflow ranges still execute the full
    /// reduction + polynomial before the result saturates — there is no
    /// cheap early exit (this is what makes the paper's measured cost an
    /// almost exact 100 flops *per term* even for deeply underflowing
    /// terms).
    pub fn soft_exp(y: f64) -> f64 {
        FlopCounter::record(FlopKind::ExpCall);
        FlopCounter::record(FlopKind::Cmp);
        FlopCounter::record(FlopKind::Cmp);
        let saturated = if y > 709.0 {
            Some(f64::INFINITY)
        } else if y < -745.0 {
            Some(0.0)
        } else {
            None
        };
        let y = y.clamp(-745.0, 709.0);
        let kf = mul(y, std::f64::consts::LOG2_E).round();
        FlopCounter::record(FlopKind::Cmp); // round
                                            // r = y - k*ln2 in two pieces (compensated reduction).
        let r_hi = add(y, -mul(kf, LN2_HI));
        let r = add(r_hi, -mul(kf, LN2_LO));
        // Degree-11 Horner for e^r: plain steps for the small high-order
        // coefficients, compensated (two_sum) accumulation for the last
        // five where cancellation matters — the double-double bookkeeping
        // that makes a real libm exp cost tens of flops rather than a
        // handful.
        let mut p = 1.0 / 39_916_800.0; // 1/11!
        for inv in [
            1.0 / 3_628_800.0,
            1.0 / 362_880.0,
            1.0 / 40_320.0,
            1.0 / 5_040.0,
            1.0 / 720.0,
            1.0 / 120.0,
        ] {
            p = add(mul(p, r), inv);
        }
        let mut comp = 0.0;
        for inv in [1.0 / 24.0, 1.0 / 6.0, 1.0 / 2.0, 1.0, 1.0] {
            let prod = mul(add(p, comp), r);
            let (s, e) = two_sum(prod, inv);
            p = s;
            comp = e;
        }
        let p = add(p, comp);
        // Scale by 2^k (ldexp; one counted mul for the scaling multiply —
        // powi handles the subnormal range a raw exponent-bit splice
        // cannot).
        let scale = 2.0f64.powi(kf as i32);
        let result = mul(p, scale);
        saturated.unwrap_or(result)
    }

    /// Counted `pow(x, y) = exp(y · ln x)` with an extra compensated
    /// product step for the exponent (the fdlibm-style accuracy fixup).
    pub fn soft_pow(x: f64, y: f64) -> f64 {
        FlopCounter::record(FlopKind::PowCall);
        FlopCounter::record(FlopKind::Cmp);
        if x == 1.0 || y == 0.0 {
            FlopCounter::record(FlopKind::Cmp);
            return 1.0;
        }
        FlopCounter::record(FlopKind::Cmp);
        if x <= 0.0 {
            // Integer exponents of negative bases: route through repeated
            // squaring on |x| and fix the sign.
            let yi = y as i64;
            if (yi as f64) == y {
                let mag = soft_pow(-x, y);
                return if yi % 2 == 0 { mag } else { -mag };
            }
            return f64::NAN;
        }
        let l = soft_ln(x);
        // Compensated product y·l: Dekker split (counted as its real flops).
        let p = mul(y, l);
        let split = 134_217_729.0; // 2^27 + 1
        let cy = mul(y, split);
        let hy = add(cy, -add(cy, -y));
        let ty = add(y, -hy);
        let cl = mul(l, split);
        let hl = add(cl, -add(cl, -l));
        let tl = add(l, -hl);
        let e = add(
            add(add(mul(hy, hl), -p), add(mul(hy, tl), mul(ty, hl))),
            mul(ty, tl),
        );
        let base = soft_exp(p);
        // First-order correction: exp(p+e) ≈ exp(p)·(1+e).
        mul(base, add(1.0, e))
    }
}

/// An `f64` whose arithmetic is counted through the thread's installed
/// [`FlopCounter`]. Transcendentals use [`softmath`], so their internal
/// elementary operations are counted too.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct CountedF64(pub f64);

impl CountedF64 {
    /// Wrap a value.
    #[inline]
    pub fn new(v: f64) -> Self {
        CountedF64(v)
    }
    /// Unwrap.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
    /// Counted `exp`.
    pub fn exp(self) -> Self {
        CountedF64(softmath::soft_exp(self.0))
    }
    /// Counted natural log.
    pub fn ln(self) -> Self {
        CountedF64(softmath::soft_ln(self.0))
    }
    /// Counted `pow` with an arbitrary (possibly fractional) exponent —
    /// this is what `std::pow(x, n)` does in the paper's benchmark even for
    /// integer `n`.
    pub fn powf(self, y: f64) -> Self {
        CountedF64(softmath::soft_pow(self.0, y))
    }
    /// Counted square root.
    pub fn sqrt(self) -> Self {
        FlopCounter::record(FlopKind::Sqrt);
        CountedF64(self.0.sqrt())
    }
    /// Counted fused multiply-add `self*b + c`. Counted as one multiply plus
    /// one add: that is how `perf fp_arith` charges an FMA, and how the
    /// vectorized gravity kernels must be charged so a `mul_add`-heavy SIMD
    /// body and its scalar reference cost the same projected flops.
    pub fn mul_add(self, b: Self, c: Self) -> Self {
        FlopCounter::record(FlopKind::Mul);
        FlopCounter::record(FlopKind::Add);
        CountedF64(self.0.mul_add(b.0, c.0))
    }
    /// Counted reciprocal square root composed from sqrt + divide —
    /// mirrors `kokkos_lite::Simd::recip_sqrt` lane-for-lane.
    pub fn recip_sqrt(self) -> Self {
        FlopCounter::record(FlopKind::Sqrt);
        FlopCounter::record(FlopKind::Div);
        CountedF64(1.0 / self.0.sqrt())
    }
    /// Counted absolute value.
    pub fn abs(self) -> Self {
        FlopCounter::record(FlopKind::Cmp);
        CountedF64(self.0.abs())
    }
}

impl std::ops::Add for CountedF64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        FlopCounter::record(FlopKind::Add);
        CountedF64(self.0 + rhs.0)
    }
}
impl std::ops::Sub for CountedF64 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        FlopCounter::record(FlopKind::Add);
        CountedF64(self.0 - rhs.0)
    }
}
impl std::ops::Mul for CountedF64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        FlopCounter::record(FlopKind::Mul);
        CountedF64(self.0 * rhs.0)
    }
}
impl std::ops::Div for CountedF64 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        FlopCounter::record(FlopKind::Div);
        CountedF64(self.0 / rhs.0)
    }
}
impl std::ops::Neg for CountedF64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        FlopCounter::record(FlopKind::Cmp);
        CountedF64(-self.0)
    }
}
impl std::ops::AddAssign for CountedF64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl From<f64> for CountedF64 {
    fn from(v: f64) -> Self {
        CountedF64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops_are_counted() {
        let ctr = FlopCounter::new();
        let _g = ctr.install();
        let a = CountedF64::new(2.0);
        let b = CountedF64::new(3.0);
        let _ = a + b;
        let _ = a - b;
        let _ = a * b;
        let _ = a / b;
        assert_eq!(ctr.adds(), 2);
        assert_eq!(ctr.muls(), 1);
        assert_eq!(ctr.divs(), 1);
        assert_eq!(ctr.flops(), 4);
    }

    #[test]
    fn nothing_counted_without_install() {
        let ctr = FlopCounter::new();
        let a = CountedF64::new(2.0);
        let _ = a * a;
        assert_eq!(ctr.flops(), 0);
    }

    #[test]
    fn install_is_scoped_and_nested() {
        let outer = FlopCounter::new();
        let inner = FlopCounter::new();
        let _g1 = outer.install();
        let _ = CountedF64::new(1.0) + CountedF64::new(2.0);
        {
            let _g2 = inner.install();
            let _ = CountedF64::new(1.0) * CountedF64::new(2.0);
        }
        let _ = CountedF64::new(1.0) + CountedF64::new(2.0);
        assert_eq!(outer.adds(), 2);
        assert_eq!(outer.muls(), 0);
        assert_eq!(inner.muls(), 1);
    }

    #[test]
    fn soft_ln_accuracy() {
        for &x in &[0.1, 0.5, 0.9, 1.0, 1.5, 2.0, 10.0, 1234.5, 1e-8, 1e8] {
            let got = softmath::soft_ln(x);
            let want = x.ln();
            assert!(
                (got - want).abs() <= 1e-12 * want.abs().max(1.0),
                "ln({x}): {got} vs {want}"
            );
        }
    }

    #[test]
    fn soft_exp_accuracy() {
        for &y in &[-20.0, -1.0, -0.1, 0.0, 0.1, 1.0, 2.5, 10.0, 50.0] {
            let got = softmath::soft_exp(y);
            let want = y.exp();
            assert!(
                ((got - want) / want).abs() < 1e-12,
                "exp({y}): {got} vs {want}"
            );
        }
    }

    #[test]
    fn soft_exp_extremes() {
        assert_eq!(softmath::soft_exp(1000.0), f64::INFINITY);
        assert_eq!(softmath::soft_exp(-1000.0), 0.0);
    }

    #[test]
    fn soft_pow_accuracy() {
        for &(x, y) in &[
            (0.5, 3.0),
            (0.9, 100.0),
            (2.0, 10.0),
            (1.0001, 12345.0),
            (0.999, 7.0),
            (3.0, 0.5),
        ] {
            let got = softmath::soft_pow(x, y);
            let want = x.powf(y);
            assert!(
                ((got - want) / want).abs() < 1e-10,
                "pow({x},{y}): {got} vs {want}"
            );
        }
    }

    #[test]
    fn soft_pow_negative_base_integer_exponent() {
        assert!((softmath::soft_pow(-2.0, 3.0) + 8.0).abs() < 1e-12);
        assert!((softmath::soft_pow(-2.0, 2.0) - 4.0).abs() < 1e-12);
        assert!(softmath::soft_pow(-2.0, 0.5).is_nan());
    }

    #[test]
    fn pow_costs_about_one_hundred_flops() {
        // The paper's measured Maclaurin cost is ≈100 flops/term, dominated
        // by one pow; our software pow must land in that neighbourhood.
        let ctr = FlopCounter::new();
        let _g = ctr.install();
        let _ = CountedF64::new(0.731).powf(17.0);
        let flops = ctr.flops();
        assert!(
            (60..=140).contains(&(flops as usize)),
            "soft_pow cost {flops} flops, expected ≈100"
        );
        assert_eq!(ctr.pow_calls(), 1);
        assert_eq!(ctr.log_calls(), 1);
        assert_eq!(ctr.exp_calls(), 1);
    }

    #[test]
    fn reset_zeroes_everything() {
        let ctr = FlopCounter::new();
        let _g = ctr.install();
        let _ = CountedF64::new(2.0).powf(3.0);
        assert!(ctr.flops() > 0);
        ctr.reset();
        assert_eq!(ctr.flops(), 0);
        assert_eq!(ctr.pow_calls(), 0);
    }

    #[test]
    fn counting_is_thread_safe() {
        let ctr = FlopCounter::new();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&ctr);
            handles.push(std::thread::spawn(move || {
                let _g = c.install();
                let mut acc = CountedF64::new(0.0);
                for i in 0..1000 {
                    acc += CountedF64::new(i as f64);
                }
                acc.get()
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ctr.adds(), 4000);
    }
}
