//! # rv-machine — architecture, cost, and energy models
//!
//! The SC'23 study *"Evaluating HPX and Kokkos on RISC-V using an
//! Astrophysics Application Octo-Tiger"* evaluates four CPU testbeds:
//!
//! * SiFive **U74-MC** (HiFive Unmatched, RISC-V RV64GC, no V extension),
//! * StarFive **JH7110** (VisionFive2 boards, the 2-node in-house cluster),
//! * AMD **EPYC 7543**, Intel **Xeon Gold 6140**, and Fujitsu **A64FX**
//!   (Supercomputer Fugaku / Ookami).
//!
//! None of that hardware is available to this reproduction, so this crate is
//! the substitute mandated by the study design: a faithful *model* of those
//! machines. It provides
//!
//! * [`arch`] — the spec table of the paper's Table 2 and the peak-performance
//!   formula of Eq. (2);
//! * [`cost`] — a cycle-level cost model for floating-point work (including
//!   the software-exponentiation penalty the paper's §8 discusses for
//!   RISC-V), task-runtime overheads, and network backends;
//! * [`counted`] — flop-counting instrumented arithmetic, standing in for the
//!   paper's `perf`-based flop measurement;
//! * [`memory`] — a bandwidth/latency model for the memory-bound Octo-Tiger
//!   regime (§6.2: "the slow connection to the memory appears to kick in");
//! * [`energy`] — power/energy accounting (wall-socket power meter on the
//!   SBCs vs chip-level PowerAPI on Fugaku, §7);
//! * [`timer`] — the `RDTIME` hardware-timer model corresponding to the
//!   single HPX source change the port required (Listing 1).
//!
//! Everything downstream (the `amt` runtime, `kokkos-lite`, `octotiger`, and
//! the figure harness in `octo-core`) runs *real* Rust code on the host and
//! uses this crate to project measured operation counts onto the paper's
//! machines.

pub mod arch;
pub mod cost;
pub mod counted;
pub mod energy;
pub mod extensions;
pub mod memory;
pub mod timer;

pub use arch::{CpuArch, CpuSpec, VectorWidth};
pub use cost::{simd_padded_interactions, CostModel, FpOp, NetBackend, NetCost, RuntimeEvent};
pub use counted::{CountedF64, FlopCounter, FlopKind};
pub use energy::{arch_counter_tag, energy_counters_into, EnergyReport, PowerMeter, PowerModel};
pub use extensions::{IsaExtension, WhatIfWorkload};
pub use memory::MemoryModel;
pub use timer::{RdTime, SoftwareTimer, Timer};
