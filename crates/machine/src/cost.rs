//! Cycle-level cost model for the paper's four machines.
//!
//! The model has three parts:
//!
//! 1. **Floating-point op costs** ([`CostModel::cycles`]) — per-architecture
//!    cycle counts for elementary FP operations. The key RISC-V-specific
//!    effect, discussed in the paper's §8, is that *exponentiation is
//!    performed in software*: `pow`/`exp`/`log` expand to long dependent
//!    chains of scalar adds/multiplies (the paper estimates ⌈2·e⌉+3 ≈ 9
//!    flop-equivalents per exponent step vs 4 with hardware support), and the
//!    U74's single, partially-pipelined FPU executes those chains slowly.
//! 2. **Runtime-event costs** ([`CostModel::event_cycles`]) — task spawn,
//!    context switch, steal, future signalling. These are exactly the
//!    overheads the paper's conclusion wants ISA extensions for
//!    ("one-cycle context switches, extended atomics, ...").
//! 3. **Network backend costs** ([`NetCost`]) — per-message overhead, latency
//!    and bandwidth for the TCP and MPI parcelports on the VisionFive2
//!    gigabit-Ethernet cluster, and for Fugaku's Tofu-D interconnect.
//!
//! All constants carry provenance comments. They are *calibration data*:
//! EXPERIMENTS.md records how the paper's reported ratios constrain them, and
//! `octo-core` has sensitivity tests perturbing each by ±20%.

use serde::{Deserialize, Serialize};

use crate::arch::CpuArch;

/// Elementary floating-point operations charged by the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpOp {
    /// Addition / subtraction.
    Add,
    /// Multiplication.
    Mul,
    /// Fused multiply-add (one instruction where supported, two otherwise).
    Fma,
    /// Division.
    Div,
    /// Square root.
    Sqrt,
    /// Comparison / min / max / abs / negate — bookkeeping ops.
    Cmp,
    /// `exp` — hardware-assisted where available, software chain on RISC-V.
    Exp,
    /// `log` — as `Exp`.
    Log,
    /// `pow` — `exp(y·log(x))`; the Maclaurin benchmark's dominant cost.
    Pow,
}

/// Scheduler / runtime events charged by the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuntimeEvent {
    /// Creating a task (allocation + enqueue).
    TaskSpawn,
    /// Switching a worker to a new task (the Boost.Context switch in HPX).
    ContextSwitch,
    /// Stealing a task from another worker's deque.
    Steal,
    /// Suspending on / signalling a future.
    FutureWait,
    /// An atomic RMW on shared runtime state (the "extended atomics" the
    /// paper's conclusion asks RISC-V to add).
    AtomicRmw,
}

/// Communication backends of the HPX parcelport layer used in §6.2.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetBackend {
    /// Raw TCP parcelport (the paper's faster backend on the SBC cluster).
    Tcp,
    /// MPI parcelport (OpenMPI 4.1.4 over the same Ethernet).
    Mpi,
    /// LCI parcelport — HPX's Lightweight Communication Interface backend
    /// (§2.1 lists it among the pluggable parcelports). Explicit-progress
    /// semantics with lightweight completion, so the per-message software
    /// overhead is well below TCP's socket path and MPI's matching layer.
    Lci,
    /// Fugaku's Tofu-D interconnect (for the A64FX reference series).
    TofuD,
}

impl NetBackend {
    /// Every modelled backend (for exhaustive sweeps and tests).
    pub const ALL: [NetBackend; 4] = [
        NetBackend::Tcp,
        NetBackend::Mpi,
        NetBackend::Lci,
        NetBackend::TofuD,
    ];

    /// Parse a parcelport name as it appears on an HPX command line
    /// (`--hpx:parcelport=tcp|mpi|lci`). Case-insensitive.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "tcp" => Ok(NetBackend::Tcp),
            "mpi" => Ok(NetBackend::Mpi),
            "lci" => Ok(NetBackend::Lci),
            "tofu" | "tofud" | "tofu-d" => Ok(NetBackend::TofuD),
            other => Err(format!("unknown parcelport {other:?} (tcp, mpi, lci)")),
        }
    }

    /// Link model for this backend: `time(msg) = overhead + latency + size/bw`.
    ///
    /// TCP vs MPI on the VisionFive2 cluster: both ride the same on-board
    /// gigabit PHY, but OpenMPI's progress engine and matching layer cost
    /// noticeably more per message on the weak in-order cores, which is the
    /// effect behind the paper's 1.85× (TCP) vs 1.55× (MPI) two-board
    /// speedups. Tofu-D numbers are public Fugaku figures.
    pub fn net_cost(self) -> NetCost {
        match self {
            NetBackend::Tcp => NetCost {
                per_message_us: 35.0,
                latency_us: 60.0,
                bandwidth_mib: 112.0,
            },
            // OpenMPI's TCP BTL on the in-order boards pays extra buffer
            // copies and progress-engine work *on the CPU*, so its
            // effective end-to-end rate is a fraction of wire speed — the
            // driver behind the paper's 1.55× (MPI) vs 1.85× (TCP)
            // two-board speedups.
            NetBackend::Mpi => NetCost {
                per_message_us: 110.0,
                latency_us: 75.0,
                bandwidth_mib: 32.0,
            },
            // LCI over the same gigabit PHY. Calibration: the HPX-LCI
            // parcelport work (Yan et al., LCI: a Lightweight Communication
            // Interface) reports roughly half TCP's per-message software
            // cost — no socket syscall per parcel, lightweight completion
            // objects, progress driven explicitly instead of per-call — and
            // slightly lower one-way latency. Bandwidth is pinned just
            // above TCP's (fewer intermediate copies on the same wire):
            // the wire, not the software stack, is the bottleneck.
            NetBackend::Lci => NetCost {
                per_message_us: 18.0,
                latency_us: 55.0,
                bandwidth_mib: 116.0,
            },
            NetBackend::TofuD => NetCost {
                per_message_us: 1.0,
                latency_us: 1.5,
                bandwidth_mib: 6.8 * 1024.0,
            },
        }
    }
}

/// Link model for one backend: `time(msg) = overhead + latency + size/bw`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetCost {
    /// Per-message software overhead in microseconds (protocol stack,
    /// progress engine). Charged on the *CPU*, so it also eats compute time.
    pub per_message_us: f64,
    /// One-way wire latency in microseconds.
    pub latency_us: f64,
    /// Sustained bandwidth in MiB/s.
    pub bandwidth_mib: f64,
}

impl NetCost {
    /// Transfer time for one message of `bytes` bytes, in seconds.
    #[inline]
    pub fn message_seconds(&self, bytes: u64) -> f64 {
        (self.per_message_us + self.latency_us) * 1e-6
            + bytes as f64 / (self.bandwidth_mib * 1024.0 * 1024.0)
    }
}

/// Per-architecture cycle-cost model.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    arch: CpuArch,
}

impl CostModel {
    /// Build the cost model for `arch`.
    pub fn new(arch: CpuArch) -> Self {
        CostModel { arch }
    }

    /// The modelled architecture.
    pub fn arch(&self) -> CpuArch {
        self.arch
    }

    /// Cycles for one scalar FP operation on this architecture.
    ///
    /// Values are effective throughput costs for *dependent* scalar code
    /// (the Maclaurin kernel is one long dependence chain per term), taken
    /// from vendor optimization guides / public instruction tables:
    /// Zen3 and Skylake sustain near 1 scalar FLOP/cycle on mixed chains;
    /// the A64FX's out-of-order window is shallow and its scalar FP latency
    /// high (it is built for SVE throughput, not scalar chains); the U74 has
    /// a single partially-pipelined FPU with 5-7-cycle latencies and no
    /// 64-bit FMA.
    pub fn cycles(&self, op: FpOp) -> f64 {
        use CpuArch::*;
        use FpOp::*;

        match (self.arch, op) {
            // Add/Mul effective cycles (dependent chain).
            (Epyc7543, Add | Mul) => 1.0,
            (XeonGold6140, Add | Mul) => 1.2,
            (A64fx, Add | Mul) => 2.3,
            // U74: single partially-pipelined FPU, 5–7-cycle latencies, no
            // 64-bit FMA to fuse the chain steps — the paper's ≈5× A64FX
            // gap on the pow-bound benchmark pins the effective chain cost.
            (RiscvU74 | Jh7110, Add | Mul) => 7.5,

            // FMA: one op where fused, two dependent ops on the U74 (64-bit
            // FMA missing; Table 2 footnote).
            (Epyc7543, Fma) => 1.0,
            (XeonGold6140, Fma) => 1.2,
            (A64fx, Fma) => 2.3,
            (RiscvU74 | Jh7110, Fma) => 15.0,

            // Division / sqrt: long-latency everywhere, worst on the U74.
            (Epyc7543, Div) => 13.0,
            (XeonGold6140, Div) => 14.0,
            (A64fx, Div) => 29.0,
            (RiscvU74 | Jh7110, Div) => 33.0,
            (Epyc7543, Sqrt) => 14.0,
            (XeonGold6140, Sqrt) => 15.0,
            (A64fx, Sqrt) => 29.0,
            (RiscvU74 | Jh7110, Sqrt) => 36.0,

            (_, Cmp) => 1.0,

            // Transcendentals: libm software chains. The per-arch cost is the
            // chain length (~25 flops for exp, ~30 for log — see
            // `crate::counted::softmath`) times the scalar add/mul cost.
            (a, Exp) => 25.0 * CostModel::new(a).cycles(Mul),
            (a, Log) => 30.0 * CostModel::new(a).cycles(Mul),
            (a, Pow) => {
                let m = CostModel::new(a).cycles(Mul);
                // pow = log + mul + exp (+ a few fixups)
                30.0 * m + m + 25.0 * m + 4.0 * m
            }
        }
    }

    /// Cycles for one runtime event.
    ///
    /// The context-switch figures bracket what the paper's conclusion calls
    /// out: user-space switches cost hundreds of cycles on x86/Arm and more
    /// on the in-order U74 (whose CSR save/restore path is long) — the
    /// motivation for a "one-cycle context switch" ISA extension.
    pub fn event_cycles(&self, ev: RuntimeEvent) -> f64 {
        use CpuArch::*;
        use RuntimeEvent::*;
        match (self.arch, ev) {
            (Epyc7543 | XeonGold6140, TaskSpawn) => 350.0,
            (A64fx, TaskSpawn) => 500.0,
            (RiscvU74 | Jh7110, TaskSpawn) => 900.0,

            (Epyc7543 | XeonGold6140, ContextSwitch) => 600.0,
            (A64fx, ContextSwitch) => 900.0,
            (RiscvU74 | Jh7110, ContextSwitch) => 1600.0,

            (Epyc7543 | XeonGold6140, Steal) => 250.0,
            (A64fx, Steal) => 400.0,
            (RiscvU74 | Jh7110, Steal) => 700.0,

            (Epyc7543 | XeonGold6140, FutureWait) => 200.0,
            (A64fx, FutureWait) => 300.0,
            (RiscvU74 | Jh7110, FutureWait) => 550.0,

            (Epyc7543 | XeonGold6140, AtomicRmw) => 20.0,
            (A64fx, AtomicRmw) => 45.0,
            (RiscvU74 | Jh7110, AtomicRmw) => 60.0,
        }
    }

    /// Seconds for `n` events of kind `ev`.
    #[inline]
    pub fn event_seconds(&self, ev: RuntimeEvent, n: u64) -> f64 {
        self.event_cycles(ev) * n as f64 / (self.arch.spec().clock_ghz * 1e9)
    }

    /// Seconds to execute `flops` generic flops of dependent scalar work
    /// (the average of Add/Mul cost), the unit the flop counter reports.
    #[inline]
    pub fn flop_seconds(&self, flops: u64) -> f64 {
        let cpf = self.cycles(FpOp::Add);
        cpf * flops as f64 / (self.arch.spec().clock_ghz * 1e9)
    }

    /// Sustained scalar GFLOP/s of one core on dependent-chain FP code.
    #[inline]
    pub fn sustained_scalar_gflops_per_core(&self) -> f64 {
        self.arch.spec().clock_ghz / self.cycles(FpOp::Add)
    }

    /// Effective cycles per flop for *structured array kernels* (stencils,
    /// block-wise interactions — Octo-Tiger's hydro/gravity kernels), which
    /// expose instruction-level parallelism that dependent `pow` chains do
    /// not. Out-of-order x86 cores approach their issue width; the A64FX's
    /// scalar pipeline sustains ≈1 flop/cycle; the in-order single-FPU U74
    /// stays latency-bound near its dependent-chain cost. Together with the
    /// clock ratio this yields the paper's ≈7× A64FX-vs-RISC-V gap for the
    /// memory-intense Octo-Tiger runs (§6.2.2), versus ≈5× for the
    /// pow-bound Maclaurin benchmark (§6.1).
    pub fn kernel_cycles_per_flop(&self) -> f64 {
        match self.arch {
            CpuArch::Epyc7543 => 0.6,
            CpuArch::XeonGold6140 => 0.7,
            CpuArch::A64fx => 1.0,
            CpuArch::RiscvU74 | CpuArch::Jh7110 => 5.5,
        }
    }

    /// Seconds for `flops` of structured-kernel work on one core.
    #[inline]
    pub fn kernel_flop_seconds(&self, flops: u64) -> f64 {
        self.kernel_cycles_per_flop() * flops as f64 / (self.arch.spec().clock_ghz * 1e9)
    }

    /// Fraction of memory latency an architecture hides on dependent
    /// pointer-chasing loads (octree descents during AMR ghost sampling):
    /// wide out-of-order windows + prefetchers hide most of it; the
    /// in-order U74 stalls on nearly every step.
    pub fn latency_hiding(&self) -> f64 {
        match self.arch {
            CpuArch::Epyc7543 | CpuArch::XeonGold6140 => 0.85,
            CpuArch::A64fx => 0.75,
            CpuArch::RiscvU74 | CpuArch::Jh7110 => 0.25,
        }
    }

    /// Dependent memory accesses charged per AMR ghost-cell sample
    /// (tree descent + cell load).
    pub const GHOST_SAMPLE_LOADS: f64 = 6.0;

    /// Seconds for `samples` ghost-cell samples on one core.
    pub fn ghost_sample_seconds(&self, samples: u64) -> f64 {
        let spec = self.arch.spec();
        samples as f64
            * Self::GHOST_SAMPLE_LOADS
            * spec.mem_latency_ns
            * 1e-9
            * (1.0 - self.latency_hiding())
    }

    /// Link model for one network backend (see [`NetBackend::net_cost`] for
    /// the calibrated parameters and their provenance).
    pub fn net(&self, backend: NetBackend) -> NetCost {
        backend.net_cost()
    }

    /// Paper §8: flop-equivalents per exponentiation step in software
    /// (≈ ⌈2·e⌉ + 3) ...
    pub const SOFTWARE_EXP_FLOPS: u32 = 9;
    /// ... versus with dedicated hardware support.
    pub const HARDWARE_EXP_FLOPS: u32 = 4;
}

/// Interactions actually executed when `n` source interactions are processed
/// by packs of `width` lanes: the last partial pack still burns a full
/// vector's worth of lanes (predicated-out lanes occupy the FPU), so the
/// count is rounded *up* to a multiple of the width. With `width <= 1`
/// (the RISC-V scalar fallback) this is exactly `n`. The gravity driver
/// charges its projected flops on this padded count so SIMD projections
/// stay truthful about remainder-loop waste.
#[inline]
pub fn simd_padded_interactions(n: u64, width: u64) -> u64 {
    let w = width.max(1);
    n.div_ceil(w) * w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn riscv_a64fx_scalar_gap_is_about_five() {
        // §6.1: "the performance of HPX is around five times less on RISC-V
        // [than] on A64FX" — per-core scalar chains.
        let r = CostModel::new(CpuArch::RiscvU74).sustained_scalar_gflops_per_core();
        let a = CostModel::new(CpuArch::A64fx).sustained_scalar_gflops_per_core();
        let ratio = a / r;
        assert!(
            (3.0..7.0).contains(&ratio),
            "A64FX/RISC-V per-core ratio {ratio} should be ≈5"
        );
    }

    #[test]
    fn amd_fastest_then_intel() {
        let amd = CostModel::new(CpuArch::Epyc7543).sustained_scalar_gflops_per_core();
        let intel = CostModel::new(CpuArch::XeonGold6140).sustained_scalar_gflops_per_core();
        let a64 = CostModel::new(CpuArch::A64fx).sustained_scalar_gflops_per_core();
        let rv = CostModel::new(CpuArch::RiscvU74).sustained_scalar_gflops_per_core();
        assert!(amd > intel && intel > a64 && a64 > rv);
    }

    #[test]
    fn pow_is_much_more_expensive_than_mul() {
        for arch in CpuArch::ALL {
            let m = CostModel::new(arch);
            assert!(m.cycles(FpOp::Pow) > 20.0 * m.cycles(FpOp::Mul), "{arch:?}");
        }
    }

    #[test]
    fn fma_counts_double_on_u74() {
        let u74 = CostModel::new(CpuArch::RiscvU74);
        assert!((u74.cycles(FpOp::Fma) - 2.0 * u74.cycles(FpOp::Mul)).abs() < 1e-12);
        let amd = CostModel::new(CpuArch::Epyc7543);
        assert!((amd.cycles(FpOp::Fma) - amd.cycles(FpOp::Mul)).abs() < 1e-12);
    }

    #[test]
    fn context_switch_most_expensive_on_riscv() {
        let ev = RuntimeEvent::ContextSwitch;
        let rv = CostModel::new(CpuArch::RiscvU74).event_cycles(ev);
        for arch in [CpuArch::A64fx, CpuArch::Epyc7543, CpuArch::XeonGold6140] {
            assert!(rv > CostModel::new(arch).event_cycles(ev));
        }
    }

    #[test]
    fn tcp_beats_mpi_per_message_on_sbc() {
        let m = CostModel::new(CpuArch::Jh7110);
        let msg = 64 * 1024;
        assert!(
            m.net(NetBackend::Tcp).message_seconds(msg)
                < m.net(NetBackend::Mpi).message_seconds(msg)
        );
    }

    #[test]
    fn lci_per_message_cost_between_wire_and_tcp() {
        // LCI trims software overhead, not the wire: cheaper per message
        // than both TCP and MPI, but nowhere near Tofu-D.
        let m = CostModel::new(CpuArch::Jh7110);
        let lci = m.net(NetBackend::Lci);
        let tcp = m.net(NetBackend::Tcp);
        let mpi = m.net(NetBackend::Mpi);
        assert!(lci.per_message_us < tcp.per_message_us);
        assert!(lci.per_message_us < mpi.per_message_us);
        for msg in [0u64, 1024, 64 * 1024] {
            assert!(lci.message_seconds(msg) < tcp.message_seconds(msg));
            assert!(lci.message_seconds(msg) < mpi.message_seconds(msg));
        }
        // Same gigabit PHY: bandwidth within a few percent of TCP's.
        assert!((lci.bandwidth_mib / tcp.bandwidth_mib - 1.0).abs() < 0.1);
    }

    #[test]
    fn backend_parse_roundtrip() {
        assert_eq!(NetBackend::parse("tcp").unwrap(), NetBackend::Tcp);
        assert_eq!(NetBackend::parse("MPI").unwrap(), NetBackend::Mpi);
        assert_eq!(NetBackend::parse("lci").unwrap(), NetBackend::Lci);
        assert!(NetBackend::parse("gasnet").is_err());
    }

    #[test]
    fn tofu_is_orders_of_magnitude_faster() {
        let m = CostModel::new(CpuArch::A64fx);
        let tcp = m.net(NetBackend::Tcp).message_seconds(1 << 20);
        let tofu = m.net(NetBackend::TofuD).message_seconds(1 << 20);
        assert!(tcp / tofu > 50.0);
    }

    #[test]
    fn message_time_monotone_in_size() {
        let nc = CostModel::new(CpuArch::Jh7110).net(NetBackend::Tcp);
        let mut last = 0.0;
        for sz in [0u64, 100, 10_000, 1 << 20] {
            let t = nc.message_seconds(sz);
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn event_seconds_scales_with_count() {
        let m = CostModel::new(CpuArch::RiscvU74);
        let one = m.event_seconds(RuntimeEvent::TaskSpawn, 1);
        let thousand = m.event_seconds(RuntimeEvent::TaskSpawn, 1000);
        assert!((thousand - 1000.0 * one).abs() < 1e-15);
    }

    #[test]
    fn kernel_gap_is_about_seven() {
        // §6.2.2: the A64FX is ≈7× faster on the memory-intense Octo-Tiger
        // runs (per core-clock-adjusted kernel rate).
        let rv = CostModel::new(CpuArch::Jh7110);
        let a64 = CostModel::new(CpuArch::A64fx);
        let ratio = rv.kernel_flop_seconds(1_000_000) / a64.kernel_flop_seconds(1_000_000);
        assert!(
            (5.0..9.0).contains(&ratio),
            "kernel gap {ratio} should be ≈7"
        );
    }

    #[test]
    fn kernel_mode_is_faster_than_chain_mode() {
        for arch in CpuArch::ALL {
            let m = CostModel::new(arch);
            assert!(m.kernel_cycles_per_flop() <= m.cycles(FpOp::Add));
        }
    }

    #[test]
    fn ghost_sampling_hurts_inorder_cores_most() {
        let rv = CostModel::new(CpuArch::Jh7110).ghost_sample_seconds(1000);
        let a64 = CostModel::new(CpuArch::A64fx).ghost_sample_seconds(1000);
        let amd = CostModel::new(CpuArch::Epyc7543).ghost_sample_seconds(1000);
        assert!(rv > 3.0 * a64);
        assert!(a64 > amd);
    }

    #[test]
    fn software_vs_hardware_exp_constants() {
        assert_eq!(CostModel::SOFTWARE_EXP_FLOPS, 9); // ⌈2e⌉+3
        assert_eq!(CostModel::HARDWARE_EXP_FLOPS, 4);
    }

    #[test]
    fn padded_interactions_round_up_to_full_packs() {
        // Scalar (and degenerate width-0) never pads.
        assert_eq!(simd_padded_interactions(0, 1), 0);
        assert_eq!(simd_padded_interactions(37, 1), 37);
        assert_eq!(simd_padded_interactions(37, 0), 37);
        // Exact multiples stay put; remainders round up one pack.
        assert_eq!(simd_padded_interactions(64, 4), 64);
        assert_eq!(simd_padded_interactions(65, 4), 68);
        assert_eq!(simd_padded_interactions(1, 8), 8);
        assert_eq!(simd_padded_interactions(0, 8), 0);
    }
}
