//! CPU architecture descriptions (the paper's Table 2) and the theoretical
//! peak-performance formula (Eq. 2).
//!
//! Table 2 of the paper:
//!
//! | CPU                  | Clock [GHz] | VL | FPU/core | FMA | Cores | Peak [GFLOP/s] |
//! |----------------------|-------------|----|----------|-----|-------|----------------|
//! | ARM A64FX            | 1.8         | 8  | 2        | yes | 48    | 2764.8         |
//! | AMD EPYC 7543        | 2.8         | 4  | 2        | yes | 64    | 2867.2         |
//! | Intel Xeon Gold 6140 | 2.3         | 8  | 2        | yes | 18    | 1324.8         |
//! | RISC-V U74-MC        | 1.2         | —  | 1        | no* | 4     | 9.6            |
//!
//! (*) The U74 supports FMA only for the 32-bit floating-point ISA; the paper
//! nevertheless keeps the factor 2 of Eq. (2) in its peak number, and so do
//! we, to match Table 2 exactly.

use serde::{Deserialize, Serialize};

/// SIMD vector width in `f64` lanes. `Scalar` models the RISC-V boards,
/// which implement neither the V (vector) nor the P (packed SIMD) extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VectorWidth {
    /// No SIMD: one f64 lane (RISC-V U74/JH7110 in this study).
    Scalar,
    /// `n` f64 lanes (A64FX SVE-512 → 8, AVX-512 → 8, AVX2/EPYC "Zen3" → 4).
    Lanes(u32),
}

impl VectorWidth {
    /// Number of f64 lanes contributed to the peak-performance product.
    #[inline]
    pub fn lanes(self) -> u32 {
        match self {
            VectorWidth::Scalar => 1,
            VectorWidth::Lanes(n) => n,
        }
    }

    /// Whether the architecture has any SIMD capability at all.
    #[inline]
    pub fn has_simd(self) -> bool {
        matches!(self, VectorWidth::Lanes(n) if n > 1)
    }
}

/// The four CPUs evaluated in the paper, plus the StarFive JH7110 that powers
/// the VisionFive2 in-house cluster (same U74 cores, slightly higher clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CpuArch {
    /// Fujitsu A64FX (Supercomputer Fugaku, Ookami): Arm v8.2 + SVE-512.
    A64fx,
    /// AMD EPYC 7543 ("Milan"): x86-64, AVX2 (4 f64 lanes).
    Epyc7543,
    /// Intel Xeon Gold 6140 ("Skylake-SP"): x86-64, AVX-512 (8 f64 lanes).
    XeonGold6140,
    /// SiFive U74-MC on the HiFive Unmatched board: RV64GC, in-order dual
    /// issue with a single FPU pipe, no vector extension.
    RiscvU74,
    /// StarFive JH7110 on the VisionFive2 boards (licensed SiFive U74 design):
    /// the in-house two-board cluster of §4.
    Jh7110,
}

/// Static description of one CPU: exactly the columns of Table 2 plus the
/// memory-subsystem figures used by [`crate::memory::MemoryModel`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Architecture tag.
    pub arch: CpuArch,
    /// Human-readable name as printed in the paper.
    pub name: &'static str,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// SIMD width in f64 lanes.
    pub vector: VectorWidth,
    /// FPU units per core.
    pub fpu_per_core: u32,
    /// Whether 64-bit FMA is available. (RISC-V U74: only the 32-bit FP ISA
    /// has FMA, so `false` here.)
    pub fma64: bool,
    /// Physical core count of the socket/board.
    pub cores: u32,
    /// Sustainable main-memory bandwidth in GiB/s (board level).
    pub mem_bandwidth_gib: f64,
    /// Main-memory access latency in nanoseconds.
    pub mem_latency_ns: f64,
    /// Instruction set architecture family, for reporting.
    pub isa: &'static str,
}

impl CpuArch {
    /// All architectures that appear in the paper's figures.
    pub const ALL: [CpuArch; 5] = [
        CpuArch::A64fx,
        CpuArch::Epyc7543,
        CpuArch::XeonGold6140,
        CpuArch::RiscvU74,
        CpuArch::Jh7110,
    ];

    /// The four rows of Table 2 (the JH7110 is folded into the U74 row in the
    /// paper because it is the same licensed core).
    pub const TABLE2: [CpuArch; 4] = [
        CpuArch::A64fx,
        CpuArch::Epyc7543,
        CpuArch::XeonGold6140,
        CpuArch::RiscvU74,
    ];

    /// Full specification record.
    pub fn spec(self) -> CpuSpec {
        match self {
            CpuArch::A64fx => CpuSpec {
                arch: self,
                name: "ARM A64FX",
                clock_ghz: 1.8,
                vector: VectorWidth::Lanes(8),
                fpu_per_core: 2,
                fma64: true,
                cores: 48,
                // 4x 8GiB HBM2 stacks: ~1024 GB/s; per-CMG share is lower but
                // a 4-core slice of one CMG still sees ~256 GiB/s.
                mem_bandwidth_gib: 256.0,
                mem_latency_ns: 120.0,
                isa: "Armv8.2-A + SVE",
            },
            CpuArch::Epyc7543 => CpuSpec {
                arch: self,
                name: "AMD EPYC 7543",
                clock_ghz: 2.8,
                vector: VectorWidth::Lanes(4),
                fpu_per_core: 2,
                fma64: true,
                cores: 64,
                mem_bandwidth_gib: 190.0,
                mem_latency_ns: 95.0,
                isa: "x86-64 (Zen3, AVX2)",
            },
            CpuArch::XeonGold6140 => CpuSpec {
                arch: self,
                name: "Intel Xeon Gold 6140",
                clock_ghz: 2.3,
                vector: VectorWidth::Lanes(8),
                fpu_per_core: 2,
                fma64: true,
                cores: 18,
                mem_bandwidth_gib: 110.0,
                mem_latency_ns: 90.0,
                isa: "x86-64 (Skylake-SP, AVX-512)",
            },
            CpuArch::RiscvU74 => CpuSpec {
                arch: self,
                name: "RISC-V U74-MC (hifiveu)",
                clock_ghz: 1.2,
                vector: VectorWidth::Scalar,
                fpu_per_core: 1,
                fma64: false,
                cores: 4,
                // DDR4 single channel on the HiFive Unmatched; measured
                // STREAM-like bandwidth on these boards is a few GiB/s.
                mem_bandwidth_gib: 3.2,
                mem_latency_ns: 160.0,
                isa: "RV64GC (no V/P extension)",
            },
            CpuArch::Jh7110 => CpuSpec {
                arch: self,
                name: "StarFive JH7110 (VisionFive2)",
                clock_ghz: 1.5,
                vector: VectorWidth::Scalar,
                fpu_per_core: 1,
                fma64: false,
                cores: 4,
                // 8 GB LPDDR4 on the VisionFive2.
                mem_bandwidth_gib: 2.8,
                mem_latency_ns: 170.0,
                isa: "RV64GC (no V/P extension)",
            },
        }
    }

    /// Theoretical peak performance in GFLOP/s for `cores` cores — Eq. (2):
    ///
    /// ```text
    /// Perf_peak(#cores) = 2 × clock × vector_length × #FPU × #cores
    /// ```
    ///
    /// The factor 2 is the FMA factor; the paper keeps it even for the U74
    /// row (whose 64-bit ISA lacks FMA), and Table 2's 9.6 GFLOP/s is only
    /// reproduced with the factor included, so we follow the paper.
    pub fn peak_gflops(self, cores: u32) -> f64 {
        let s = self.spec();
        2.0 * s.clock_ghz
            * f64::from(s.vector.lanes())
            * f64::from(s.fpu_per_core)
            * f64::from(cores)
    }

    /// Peak performance of the full socket/board (the Table 2 column).
    pub fn peak_gflops_full(self) -> f64 {
        self.peak_gflops(self.spec().cores)
    }

    /// Short machine tag used in figure output ("a64fx", "amd", ...).
    pub fn tag(self) -> &'static str {
        match self {
            CpuArch::A64fx => "a64fx",
            CpuArch::Epyc7543 => "amd",
            CpuArch::XeonGold6140 => "intel",
            CpuArch::RiscvU74 => "riscv-u74",
            CpuArch::Jh7110 => "riscv-jh7110",
        }
    }

    /// Whether this is one of the RISC-V single-board computers.
    pub fn is_riscv(self) -> bool {
        matches!(self, CpuArch::RiscvU74 | CpuArch::Jh7110)
    }

    /// A `/proc/cpuinfo | grep MHz`-style line, as the paper's Table 2
    /// caption describes obtaining the clock.
    pub fn cpuinfo_line(self) -> String {
        format!("cpu MHz\t\t: {:.3}", self.spec().clock_ghz * 1000.0)
    }
}

impl std::fmt::Display for CpuArch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.spec().name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_peak_numbers_match_paper() {
        // The Table 2 "Peak performance" column, to one decimal.
        assert!((CpuArch::A64fx.peak_gflops_full() - 2764.8).abs() < 1e-9);
        assert!((CpuArch::Epyc7543.peak_gflops_full() - 2867.2).abs() < 1e-9);
        assert!((CpuArch::XeonGold6140.peak_gflops_full() - 1324.8).abs() < 1e-9);
        assert!((CpuArch::RiscvU74.peak_gflops_full() - 9.6).abs() < 1e-9);
    }

    #[test]
    fn peak_scales_linearly_in_cores() {
        for arch in CpuArch::ALL {
            let p1 = arch.peak_gflops(1);
            for c in 2..=8 {
                let pc = arch.peak_gflops(c);
                assert!((pc - p1 * f64::from(c)).abs() < 1e-9, "{arch:?} cores={c}");
            }
        }
    }

    #[test]
    fn riscv_is_scalar_and_others_are_not() {
        assert!(!CpuArch::RiscvU74.spec().vector.has_simd());
        assert!(!CpuArch::Jh7110.spec().vector.has_simd());
        assert!(CpuArch::A64fx.spec().vector.has_simd());
        assert!(CpuArch::Epyc7543.spec().vector.has_simd());
        assert!(CpuArch::XeonGold6140.spec().vector.has_simd());
    }

    #[test]
    fn vector_width_lane_counts() {
        assert_eq!(VectorWidth::Scalar.lanes(), 1);
        assert_eq!(VectorWidth::Lanes(8).lanes(), 8);
        assert!(!VectorWidth::Lanes(1).has_simd());
    }

    #[test]
    fn table2_row_order_matches_paper() {
        let names: Vec<&str> = CpuArch::TABLE2.iter().map(|a| a.spec().name).collect();
        assert_eq!(
            names,
            vec![
                "ARM A64FX",
                "AMD EPYC 7543",
                "Intel Xeon Gold 6140",
                "RISC-V U74-MC (hifiveu)"
            ]
        );
    }

    #[test]
    fn fma_availability_matches_table() {
        assert!(CpuArch::A64fx.spec().fma64);
        assert!(CpuArch::Epyc7543.spec().fma64);
        assert!(CpuArch::XeonGold6140.spec().fma64);
        assert!(!CpuArch::RiscvU74.spec().fma64, "U74 FMA is 32-bit-only");
    }

    #[test]
    fn display_and_tags_are_distinct() {
        let mut tags: Vec<&str> = CpuArch::ALL.iter().map(|a| a.tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), CpuArch::ALL.len());
    }

    #[test]
    fn cpuinfo_line_reports_mhz() {
        assert_eq!(CpuArch::RiscvU74.cpuinfo_line(), "cpu MHz\t\t: 1200.000");
        assert!(CpuArch::Epyc7543.cpuinfo_line().contains("2800.000"));
    }

    #[test]
    fn jh7110_is_a_four_core_riscv_board() {
        let s = CpuArch::Jh7110.spec();
        assert_eq!(s.cores, 4);
        assert!(CpuArch::Jh7110.is_riscv());
        assert!(!CpuArch::A64fx.is_riscv());
    }
}
