//! What-if model for the RISC-V ISA extensions the paper's conclusion (§8)
//! asks for:
//!
//! > "the development of ISA extensions is ongoing within the RISC-V
//! > community. Some examples that would benefit HPX and other AMTs are
//! > one-cycle context switches, extended atomics, hardware support for
//! > global address space, and possibly hardware support for thread
//! > scheduling (hardware queues). [...] Adding hardware support for
//! > exponents can reduce the number of floating point operations from
//! > approximately ⌈2·e⌉+3 down to 4."
//!
//! Each [`IsaExtension`] rewrites the relevant piece of the cost model;
//! [`apply`] scales a measured workload profile accordingly. This is the
//! paper's *future work* turned into a runnable projection (see the
//! `isa_whatif` example and `octo-core`'s ablation exhibit).

use crate::arch::CpuArch;
use crate::cost::{CostModel, RuntimeEvent};

/// Proposed RISC-V ISA extensions from the paper's conclusion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IsaExtension {
    /// Single-cycle user-space context switches (hardware shadow register
    /// files): `ContextSwitch`/`TaskSpawn` collapse to a handful of cycles.
    OneCycleContextSwitch,
    /// Extended atomics (e.g. unconditional far atomics): RMW cost drops to
    /// near-L1 latency.
    ExtendedAtomics,
    /// Hardware exponentiation: each `exp`-step costs 4 flop-equivalents
    /// instead of ⌈2·e⌉+3 ≈ 9 (§8's own estimate), shrinking `pow`-bound
    /// work by that ratio.
    HardwareExponent,
    /// Hardware task queues (thread-scheduling support): steal/enqueue cost
    /// becomes a single memory-ordered operation.
    HardwareTaskQueues,
    /// The V vector extension at 128-bit (2 × f64 lanes) — the minimum
    /// RVA23-profile vector unit the boards lack.
    Vector128,
}

impl IsaExtension {
    /// All modelled extensions.
    pub const ALL: [IsaExtension; 5] = [
        IsaExtension::OneCycleContextSwitch,
        IsaExtension::ExtendedAtomics,
        IsaExtension::HardwareExponent,
        IsaExtension::HardwareTaskQueues,
        IsaExtension::Vector128,
    ];

    /// Short label for exhibits.
    pub fn label(self) -> &'static str {
        match self {
            IsaExtension::OneCycleContextSwitch => "1-cycle ctx switch",
            IsaExtension::ExtendedAtomics => "extended atomics",
            IsaExtension::HardwareExponent => "hardware exp",
            IsaExtension::HardwareTaskQueues => "hw task queues",
            IsaExtension::Vector128 => "V ext (128-bit)",
        }
    }
}

/// A measured workload summary the what-if model can rescale.
#[derive(Debug, Clone, Copy)]
pub struct WhatIfWorkload {
    /// Flops in `pow`/`exp`-style software-transcendental chains.
    pub transcendental_flops: u64,
    /// Flops in plain arithmetic (vectorizable with the V extension).
    pub plain_flops: u64,
    /// Context switches + task spawns.
    pub task_events: u64,
    /// Steals / queue operations.
    pub queue_events: u64,
    /// Atomic RMW operations.
    pub atomic_events: u64,
}

/// Projected time of the workload on a *baseline* RISC-V board.
pub fn baseline_seconds(arch: CpuArch, cores: u32, w: &WhatIfWorkload) -> f64 {
    assert!(
        arch.is_riscv(),
        "what-if extensions target the RISC-V boards"
    );
    let cm = CostModel::new(arch);
    let clock = arch.spec().clock_ghz * 1e9;
    let t_flops = cm.flop_seconds(w.transcendental_flops + w.plain_flops);
    let t_events = (w.task_events as f64
        * (cm.event_cycles(RuntimeEvent::ContextSwitch)
            + cm.event_cycles(RuntimeEvent::TaskSpawn))
        + w.queue_events as f64 * cm.event_cycles(RuntimeEvent::Steal)
        + w.atomic_events as f64 * cm.event_cycles(RuntimeEvent::AtomicRmw))
        / clock;
    (t_flops + t_events) / f64::from(cores)
}

/// Projected time with one extension enabled.
pub fn extended_seconds(arch: CpuArch, cores: u32, w: &WhatIfWorkload, ext: IsaExtension) -> f64 {
    assert!(
        arch.is_riscv(),
        "what-if extensions target the RISC-V boards"
    );
    let cm = CostModel::new(arch);
    let clock = arch.spec().clock_ghz * 1e9;
    let mut trans = w.transcendental_flops as f64;
    let mut plain = w.plain_flops as f64;
    let mut ctx_cost =
        cm.event_cycles(RuntimeEvent::ContextSwitch) + cm.event_cycles(RuntimeEvent::TaskSpawn);
    let mut steal_cost = cm.event_cycles(RuntimeEvent::Steal);
    let mut atomic_cost = cm.event_cycles(RuntimeEvent::AtomicRmw);
    let mut flop_rate_scale = 1.0;
    match ext {
        IsaExtension::OneCycleContextSwitch => ctx_cost = 2.0,
        IsaExtension::ExtendedAtomics => atomic_cost = 4.0,
        IsaExtension::HardwareExponent => {
            // §8: ⌈2e⌉+3 → 4 flop-equivalents per exponent step.
            trans *=
                f64::from(CostModel::HARDWARE_EXP_FLOPS) / f64::from(CostModel::SOFTWARE_EXP_FLOPS);
        }
        IsaExtension::HardwareTaskQueues => steal_cost = 1.0,
        IsaExtension::Vector128 => {
            // Plain arithmetic vectorizes 2-wide; transcendental chains
            // stay scalar (no vector exp on a minimal V implementation).
            plain /= 2.0;
            flop_rate_scale = 1.0;
        }
    }
    let t_flops = cm.flop_seconds((trans + plain) as u64) * flop_rate_scale;
    let t_events = (w.task_events as f64 * ctx_cost
        + w.queue_events as f64 * steal_cost
        + w.atomic_events as f64 * atomic_cost)
        / clock;
    (t_flops + t_events) / f64::from(cores)
}

/// Speedup factor the extension would deliver on this workload.
pub fn speedup(arch: CpuArch, cores: u32, w: &WhatIfWorkload, ext: IsaExtension) -> f64 {
    baseline_seconds(arch, cores, w) / extended_seconds(arch, cores, w, ext)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A Maclaurin-like workload: transcendental-dominated, few tasks.
    fn pow_bound() -> WhatIfWorkload {
        WhatIfWorkload {
            transcendental_flops: 95_000_000,
            plain_flops: 5_000_000,
            task_events: 100,
            queue_events: 50,
            atomic_events: 1_000,
        }
    }

    /// A fine-grained task storm: scheduler-dominated.
    fn task_bound() -> WhatIfWorkload {
        WhatIfWorkload {
            transcendental_flops: 1_000,
            plain_flops: 100_000,
            task_events: 1_000_000,
            queue_events: 500_000,
            atomic_events: 2_000_000,
        }
    }

    #[test]
    fn hardware_exp_halves_pow_bound_work() {
        let s = speedup(
            CpuArch::RiscvU74,
            4,
            &pow_bound(),
            IsaExtension::HardwareExponent,
        );
        // 95% of flops shrink by 9/4 ≈ 2.25 ⇒ ≈2.1× overall.
        assert!((1.8..2.3).contains(&s), "hardware-exp speedup {s}");
    }

    #[test]
    fn context_switch_extension_helps_task_storms_only() {
        let fine = speedup(
            CpuArch::Jh7110,
            4,
            &task_bound(),
            IsaExtension::OneCycleContextSwitch,
        );
        let coarse = speedup(
            CpuArch::Jh7110,
            4,
            &pow_bound(),
            IsaExtension::OneCycleContextSwitch,
        );
        assert!(fine > 1.5, "task-bound speedup {fine}");
        assert!(coarse < 1.01, "pow-bound speedup {coarse} should be ≈1");
    }

    #[test]
    fn every_extension_is_a_speedup() {
        for w in [pow_bound(), task_bound()] {
            for ext in IsaExtension::ALL {
                let s = speedup(CpuArch::RiscvU74, 4, &w, ext);
                assert!(s >= 0.999, "{ext:?} must never slow down: {s}");
            }
        }
    }

    #[test]
    fn vector_extension_targets_plain_flops() {
        let w = WhatIfWorkload {
            transcendental_flops: 0,
            plain_flops: 100_000_000,
            task_events: 0,
            queue_events: 0,
            atomic_events: 0,
        };
        let s = speedup(CpuArch::RiscvU74, 4, &w, IsaExtension::Vector128);
        assert!((1.9..2.1).contains(&s), "2-lane vector speedup {s}");
        // But it does nothing for pow chains.
        let s2 = speedup(CpuArch::RiscvU74, 4, &pow_bound(), IsaExtension::Vector128);
        assert!(s2 < 1.1);
    }

    #[test]
    #[should_panic(expected = "target the RISC-V boards")]
    fn non_riscv_rejected() {
        let _ = baseline_seconds(CpuArch::A64fx, 4, &pow_bound());
    }

    #[test]
    fn labels_distinct() {
        let mut l: Vec<_> = IsaExtension::ALL.iter().map(|e| e.label()).collect();
        l.sort_unstable();
        l.dedup();
        assert_eq!(l.len(), IsaExtension::ALL.len());
    }
}
