//! Chrome trace-event exporter and validator.
//!
//! [`export`] turns a drained [`Trace`] into the Trace Event Format JSON
//! that `about://tracing` and Perfetto load directly: one `"X"` (complete)
//! event per span, `"i"` for instants, and `"M"` metadata records naming
//! each process lane (`locality{pid}`) and thread. Timestamps are
//! microseconds with nanosecond precision (three decimals), matching what
//! APEX's OTF2→Chrome conversion produces for HPX runs.
//!
//! [`validate`] re-parses an exported file and checks the structural
//! invariants the round-trip tests rely on: every event carries the fields
//! its phase requires, per-thread events are recorded in non-decreasing
//! completion order (the ring buffers record at span *close*), and spans on
//! one thread are strictly nested — Perfetto renders overlapping
//! non-nested spans on one track as garbage, so we reject them here.

use crate::json::{self, Value};
use crate::trace::{EventKind, Trace};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Format `ns` nanoseconds as microseconds with three decimals.
fn fmt_us(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1000, ns % 1000);
}

fn push_meta(out: &mut String, kind: &str, pid: u32, tid: u32, name: &str) {
    out.push_str("{\"ph\":\"M\",\"name\":\"");
    out.push_str(kind);
    let _ = write!(out, "\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"");
    json::escape_into(out, name);
    out.push_str("\"}},\n");
}

/// Serialize `trace` as a Chrome trace-event JSON document.
pub fn export(trace: &Trace) -> String {
    let mut out = String::with_capacity(128 + trace.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");

    let mut seen_pids: Vec<u32> = Vec::new();
    for (meta, _) in &trace.threads {
        if !seen_pids.contains(&meta.pid) {
            seen_pids.push(meta.pid);
            push_meta(
                &mut out,
                "process_name",
                meta.pid,
                0,
                &format!("locality{}", meta.pid),
            );
        }
        push_meta(&mut out, "thread_name", meta.pid, meta.tid, &meta.name);
    }

    let mut first = true;
    for (meta, events) in &trace.threads {
        for ev in events {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            match ev.kind {
                EventKind::Span { dur_ns } => {
                    out.push_str("{\"ph\":\"X\",\"name\":\"");
                    json::escape_into(&mut out, ev.name);
                    out.push_str("\",\"cat\":\"");
                    out.push_str(ev.cat.as_str());
                    let _ = write!(out, "\",\"pid\":{},\"tid\":{},\"ts\":", meta.pid, meta.tid);
                    fmt_us(&mut out, ev.ts_ns);
                    out.push_str(",\"dur\":");
                    fmt_us(&mut out, dur_ns);
                    out.push('}');
                }
                EventKind::Instant => {
                    out.push_str("{\"ph\":\"i\",\"name\":\"");
                    json::escape_into(&mut out, ev.name);
                    out.push_str("\",\"cat\":\"");
                    out.push_str(ev.cat.as_str());
                    let _ = write!(out, "\",\"pid\":{},\"tid\":{},\"ts\":", meta.pid, meta.tid);
                    fmt_us(&mut out, ev.ts_ns);
                    out.push_str(",\"s\":\"t\"}");
                }
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

/// What [`validate`] learned about a trace file.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// Number of `"X"` span events.
    pub spans: u64,
    /// Number of `"i"` instant events.
    pub instants: u64,
    /// Distinct `(pid, tid)` lanes carrying events.
    pub threads: usize,
    /// Distinct pids (locality lanes).
    pub pids: usize,
    /// Event counts per category.
    pub by_cat: BTreeMap<String, u64>,
    /// Event counts per name.
    pub by_name: BTreeMap<String, u64>,
    /// Per span name: `[start_ns, end_ns)` wall-clock intervals, across all
    /// threads. Spans on *different* threads may overlap freely (only
    /// same-thread partial overlap is a validation error), and that
    /// cross-thread overlap is exactly what a futurized scheduler produces.
    pub intervals_by_name: BTreeMap<String, Vec<(u64, u64)>>,
}

impl TraceSummary {
    /// Events (spans + instants) in category `cat`.
    pub fn count_cat(&self, cat: &str) -> u64 {
        self.by_cat.get(cat).copied().unwrap_or(0)
    }

    /// Events named `name`.
    pub fn count_name(&self, name: &str) -> u64 {
        self.by_name.get(name).copied().unwrap_or(0)
    }

    /// Total nanoseconds during which a span named `a` and a span named `b`
    /// were simultaneously open (on any threads). Positive only when the
    /// two kinds of work genuinely interleaved in wall-clock time — the
    /// check `trace_check --require-overlap=A,B` runs on futurized traces.
    pub fn overlap_ns(&self, a: &str, b: &str) -> u64 {
        let (Some(xs), Some(ys)) = (self.intervals_by_name.get(a), self.intervals_by_name.get(b))
        else {
            return 0;
        };
        // Small lists (one span per leaf task); the quadratic sweep is fine
        // and — unlike a merged-interval union — charges concurrent
        // same-name pairs only once via per-name interval unions.
        let union = |v: &[(u64, u64)]| {
            let mut sorted = v.to_vec();
            sorted.sort_unstable();
            let mut merged: Vec<(u64, u64)> = Vec::new();
            for (s, e) in sorted {
                match merged.last_mut() {
                    Some(last) if s <= last.1 => last.1 = last.1.max(e),
                    _ => merged.push((s, e)),
                }
            }
            merged
        };
        let mut total = 0u64;
        for &(s0, e0) in &union(xs) {
            for &(s1, e1) in &union(ys) {
                total += e0.min(e1).saturating_sub(s0.max(s1));
            }
        }
        total
    }
}

/// Microsecond float → integer nanoseconds. Exported values are exact
/// multiples of 0.001 µs, so rounding recovers the original integer.
fn us_to_ns(us: f64) -> Result<u64, String> {
    if !us.is_finite() || us < 0.0 {
        return Err(format!("non-finite or negative timestamp {us}"));
    }
    Ok((us * 1000.0).round() as u64)
}

fn req_num(ev: &Value, key: &str) -> Result<f64, String> {
    ev.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("event missing numeric {key:?}: {ev:?}"))
}

fn req_str<'a>(ev: &'a Value, key: &str) -> Result<&'a str, String> {
    ev.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("event missing string {key:?}: {ev:?}"))
}

#[derive(Clone, Copy)]
struct SpanRec {
    ts: u64,
    end: u64,
}

/// Validate an exported Chrome trace: well-formed JSON, required fields
/// per event phase, per-thread completion-order monotonicity, and strict
/// span nesting per thread. Returns counts on success.
pub fn validate(json_text: &str) -> Result<TraceSummary, String> {
    let doc = json::parse(json_text)?;
    let unit = doc
        .get("displayTimeUnit")
        .and_then(Value::as_str)
        .ok_or("missing displayTimeUnit")?;
    if unit != "ms" {
        return Err(format!("unexpected displayTimeUnit {unit:?}"));
    }
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("missing traceEvents array")?;

    let mut summary = TraceSummary::default();
    // Per (pid,tid): spans for the nesting check, and the completion time
    // of the last event seen in file order.
    let mut spans: BTreeMap<(u64, u64), Vec<SpanRec>> = BTreeMap::new();
    let mut last_done: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    let mut pids: Vec<u64> = Vec::new();

    for (i, ev) in events.iter().enumerate() {
        let ph = req_str(ev, "ph").map_err(|e| format!("event {i}: {e}"))?;
        match ph {
            "M" => {
                let name = req_str(ev, "name")?;
                if name != "process_name" && name != "thread_name" {
                    return Err(format!("event {i}: unknown metadata {name:?}"));
                }
                ev.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("event {i}: metadata missing args.name"))?;
            }
            "X" | "i" => {
                let name = req_str(ev, "name").map_err(|e| format!("event {i}: {e}"))?;
                let cat = req_str(ev, "cat").map_err(|e| format!("event {i}: {e}"))?;
                let pid = req_num(ev, "pid").map_err(|e| format!("event {i}: {e}"))? as u64;
                let tid = req_num(ev, "tid").map_err(|e| format!("event {i}: {e}"))? as u64;
                let ts = us_to_ns(req_num(ev, "ts").map_err(|e| format!("event {i}: {e}"))?)?;
                let key = (pid, tid);
                if !pids.contains(&pid) {
                    pids.push(pid);
                }
                let done = if ph == "X" {
                    let dur = us_to_ns(req_num(ev, "dur").map_err(|e| format!("event {i}: {e}"))?)?;
                    let end = ts
                        .checked_add(dur)
                        .ok_or_else(|| format!("event {i}: ts+dur overflow"))?;
                    spans.entry(key).or_default().push(SpanRec { ts, end });
                    summary
                        .intervals_by_name
                        .entry(name.to_string())
                        .or_default()
                        .push((ts, end));
                    summary.spans += 1;
                    end
                } else {
                    req_str(ev, "s").map_err(|e| format!("event {i}: {e}"))?;
                    summary.instants += 1;
                    ts
                };
                // Ring buffers record at completion: file order per thread
                // must be non-decreasing in completion time.
                if let Some(prev) = last_done.get(&key) {
                    if done < *prev {
                        return Err(format!(
                            "event {i} ({name}): completion time regressed on pid {pid} tid \
                             {tid} ({done} ns after {prev} ns)"
                        ));
                    }
                }
                last_done.insert(key, done);
                *summary.by_cat.entry(cat.to_string()).or_insert(0) += 1;
                *summary.by_name.entry(name.to_string()).or_insert(0) += 1;
            }
            other => return Err(format!("event {i}: unsupported phase {other:?}")),
        }
    }

    // Strict nesting per thread: sort (ts asc, end desc), sweep a stack.
    // Two spans on one thread must be disjoint or one inside the other.
    for ((pid, tid), mut recs) in spans {
        recs.sort_by(|a, b| a.ts.cmp(&b.ts).then(b.end.cmp(&a.end)));
        let mut stack: Vec<SpanRec> = Vec::new();
        for s in recs {
            loop {
                match stack.last() {
                    None => break,
                    Some(top) if s.ts >= top.ts && s.end <= top.end => break,
                    Some(top) if top.end <= s.ts => {
                        stack.pop();
                    }
                    Some(top) => {
                        return Err(format!(
                            "pid {pid} tid {tid}: span [{}, {}] partially overlaps [{}, {}]",
                            s.ts, s.end, top.ts, top.end
                        ));
                    }
                }
            }
            stack.push(s);
        }
    }

    summary.threads = last_done.len();
    summary.pids = pids.len();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Cat, Event, EventKind, ThreadMeta, Trace};

    fn meta(pid: u32, tid: u32, name: &str) -> ThreadMeta {
        ThreadMeta {
            pid,
            tid,
            name: name.to_string(),
        }
    }

    fn span_ev(name: &'static str, cat: Cat, ts: u64, dur: u64) -> Event {
        Event {
            cat,
            name,
            ts_ns: ts,
            kind: EventKind::Span { dur_ns: dur },
        }
    }

    fn instant_ev(name: &'static str, cat: Cat, ts: u64) -> Event {
        Event {
            cat,
            name,
            ts_ns: ts,
            kind: EventKind::Instant,
        }
    }

    #[test]
    fn export_validate_round_trip() {
        let trace = Trace {
            threads: vec![
                (
                    meta(0, 0, "worker0"),
                    vec![
                        // Completion order: child closes before parent.
                        span_ev("m2l", Cat::Gravity, 1500, 400),
                        instant_ev("steal", Cat::Sched, 2000),
                        span_ev("gravity_solve", Cat::Phase, 1000, 4000),
                    ],
                ),
                (
                    meta(1, 1, "worker0"),
                    vec![span_ev("flush", Cat::Comm, 100, 50)],
                ),
            ],
            dropped: 0,
        };
        let out = export(&trace);
        let s = validate(&out).unwrap();
        assert_eq!(s.spans, 3);
        assert_eq!(s.instants, 1);
        assert_eq!(s.threads, 2);
        assert_eq!(s.pids, 2);
        assert_eq!(s.count_cat("gravity"), 1);
        assert_eq!(s.count_cat("comm"), 1);
        assert_eq!(s.count_name("gravity_solve"), 1);
    }

    #[test]
    fn cross_thread_overlap_is_measured_not_rejected() {
        // gravity on worker0 [1000, 5000], hydro on worker1 [2000, 7000]:
        // legal (different threads) and 3000 ns of genuine interleaving.
        let trace = Trace {
            threads: vec![
                (
                    meta(0, 0, "worker0"),
                    vec![span_ev("gravity_solve", Cat::Phase, 1000, 4000)],
                ),
                (
                    meta(0, 1, "worker1"),
                    vec![
                        span_ev("hydro_step", Cat::Phase, 2000, 5000),
                        span_ev("hydro_step", Cat::Phase, 8000, 1000),
                    ],
                ),
            ],
            dropped: 0,
        };
        let s = validate(&export(&trace)).unwrap();
        assert_eq!(s.overlap_ns("gravity_solve", "hydro_step"), 3000);
        assert_eq!(s.overlap_ns("hydro_step", "gravity_solve"), 3000);
        assert_eq!(s.overlap_ns("gravity_solve", "missing"), 0);
        assert_eq!(s.intervals_by_name.get("hydro_step").map(Vec::len), Some(2));
    }

    #[test]
    fn timestamps_survive_at_ns_precision() {
        let trace = Trace {
            threads: vec![(
                meta(0, 0, "w"),
                vec![span_ev("s", Cat::Task, 1_234_567_891, 987_654_321)],
            )],
            dropped: 0,
        };
        let out = export(&trace);
        assert!(out.contains("\"ts\":1234567.891"));
        assert!(out.contains("\"dur\":987654.321"));
        validate(&out).unwrap();
    }

    #[test]
    fn rejects_partial_overlap() {
        let trace = Trace {
            threads: vec![(
                meta(0, 0, "w"),
                vec![
                    span_ev("a", Cat::Task, 100, 100), // ends 200
                    span_ev("b", Cat::Task, 150, 100), // ends 250: overlaps a
                ],
            )],
            dropped: 0,
        };
        let err = validate(&export(&trace)).unwrap_err();
        assert!(err.contains("partially overlaps"), "{err}");
    }

    #[test]
    fn rejects_completion_order_regression() {
        let trace = Trace {
            threads: vec![(
                meta(0, 0, "w"),
                vec![
                    span_ev("late", Cat::Task, 0, 500),  // done at 500
                    span_ev("early", Cat::Task, 0, 100), // done at 100: regressed
                ],
            )],
            dropped: 0,
        };
        let err = validate(&export(&trace)).unwrap_err();
        assert!(err.contains("completion time regressed"), "{err}");
    }

    #[test]
    fn rejects_missing_fields_and_bad_json() {
        assert!(validate("not json").is_err());
        assert!(validate("{\"traceEvents\":[]}").is_err());
        assert!(validate("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{\"ph\":\"X\"}]}").is_err());
        // Empty trace is valid.
        let s = validate("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}").unwrap();
        assert_eq!(s.spans + s.instants, 0);
    }

    #[test]
    fn escapes_names() {
        let trace = Trace {
            threads: vec![(
                meta(0, 0, "we\"ird\nname"),
                vec![span_ev("ok", Cat::Task, 0, 1)],
            )],
            dropped: 0,
        };
        validate(&export(&trace)).unwrap();
    }
}
