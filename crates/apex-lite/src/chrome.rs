//! Chrome trace-event exporter and validator.
//!
//! [`export`] turns a drained [`Trace`] into the Trace Event Format JSON
//! that `about://tracing` and Perfetto load directly: one `"X"` (complete)
//! event per span, `"i"` for instants, and `"M"` metadata records naming
//! each process lane (`locality{pid}`) and thread. Timestamps are
//! microseconds with nanosecond precision (three decimals), matching what
//! APEX's OTF2→Chrome conversion produces for HPX runs.
//!
//! [`validate`] re-parses an exported file and checks the structural
//! invariants the round-trip tests rely on: every event carries the fields
//! its phase requires, per-thread events are recorded in non-decreasing
//! completion order (the ring buffers record at span *close*), and spans on
//! one thread are strictly nested — Perfetto renders overlapping
//! non-nested spans on one track as garbage, so we reject them here.

use crate::json::{self, Value};
use crate::sampler::TimeSeries;
use crate::trace::{EventKind, Trace};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Format `ns` nanoseconds as microseconds with three decimals.
fn fmt_us(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1000, ns % 1000);
}

fn push_meta(out: &mut String, kind: &str, pid: u32, tid: u32, name: &str) {
    out.push_str("{\"ph\":\"M\",\"name\":\"");
    out.push_str(kind);
    let _ = write!(out, "\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"");
    json::escape_into(out, name);
    out.push_str("\"}},\n");
}

/// Serialize `trace` as a Chrome trace-event JSON document.
pub fn export(trace: &Trace) -> String {
    export_with_counters(trace, &TimeSeries::default())
}

/// Serialize `trace` plus sampled counter time-series as one Chrome
/// trace-event document: spans/instants as usual, and each counter series
/// as `"C"` (counter) events Perfetto renders as per-name value tracks.
/// Counter events ride on `pid 0, tid 0` (they are process-global, not
/// lane-local) and are exempt from the per-thread ordering invariants.
pub fn export_with_counters(trace: &Trace, series: &TimeSeries) -> String {
    let n_points: usize = series.series.values().map(Vec::len).sum();
    let mut out = String::with_capacity(128 + trace.len() * 96 + n_points * 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");

    let mut seen_pids: Vec<u32> = Vec::new();
    for (meta, _) in &trace.threads {
        if !seen_pids.contains(&meta.pid) {
            seen_pids.push(meta.pid);
            push_meta(
                &mut out,
                "process_name",
                meta.pid,
                0,
                &format!("locality{}", meta.pid),
            );
        }
        push_meta(&mut out, "thread_name", meta.pid, meta.tid, &meta.name);
    }

    let mut first = true;
    for (meta, events) in &trace.threads {
        for ev in events {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            match ev.kind {
                EventKind::Span { dur_ns } => {
                    out.push_str("{\"ph\":\"X\",\"name\":\"");
                    json::escape_into(&mut out, ev.name);
                    out.push_str("\",\"cat\":\"");
                    out.push_str(ev.cat.as_str());
                    let _ = write!(out, "\",\"pid\":{},\"tid\":{},\"ts\":", meta.pid, meta.tid);
                    fmt_us(&mut out, ev.ts_ns);
                    out.push_str(",\"dur\":");
                    fmt_us(&mut out, dur_ns);
                    out.push('}');
                }
                EventKind::Instant => {
                    out.push_str("{\"ph\":\"i\",\"name\":\"");
                    json::escape_into(&mut out, ev.name);
                    out.push_str("\",\"cat\":\"");
                    out.push_str(ev.cat.as_str());
                    let _ = write!(out, "\",\"pid\":{},\"tid\":{},\"ts\":", meta.pid, meta.tid);
                    fmt_us(&mut out, ev.ts_ns);
                    out.push_str(",\"s\":\"t\"}");
                }
                EventKind::FlowStart { id } => {
                    out.push_str("{\"ph\":\"s\",\"name\":\"");
                    json::escape_into(&mut out, ev.name);
                    out.push_str("\",\"cat\":\"");
                    out.push_str(ev.cat.as_str());
                    let _ = write!(
                        out,
                        "\",\"id\":{id},\"pid\":{},\"tid\":{},\"ts\":",
                        meta.pid, meta.tid
                    );
                    fmt_us(&mut out, ev.ts_ns);
                    out.push('}');
                }
                EventKind::FlowEnd { id } => {
                    // `"bp":"e"` binds the arrow to the enclosing slice
                    // (the parcel_recv span), which is how Perfetto draws
                    // sender→receiver arrows between localities.
                    out.push_str("{\"ph\":\"f\",\"bp\":\"e\",\"name\":\"");
                    json::escape_into(&mut out, ev.name);
                    out.push_str("\",\"cat\":\"");
                    out.push_str(ev.cat.as_str());
                    let _ = write!(
                        out,
                        "\",\"id\":{id},\"pid\":{},\"tid\":{},\"ts\":",
                        meta.pid, meta.tid
                    );
                    fmt_us(&mut out, ev.ts_ns);
                    out.push('}');
                }
            }
        }
    }
    for (name, points) in &series.series {
        for &(ts, v) in points {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str("{\"ph\":\"C\",\"name\":\"");
            json::escape_into(&mut out, name);
            out.push_str("\",\"cat\":\"counter\",\"pid\":0,\"tid\":0,\"ts\":");
            fmt_us(&mut out, ts);
            let _ = write!(out, ",\"args\":{{\"value\":{v}}}}}");
        }
    }
    out.push_str("\n]}\n");
    out
}

/// One validated `"X"` span, with names resolved — the analyzer's input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Locality id.
    pub pid: u64,
    /// Thread id within the locality.
    pub tid: u64,
    /// Span name.
    pub name: String,
    /// Category string.
    pub cat: String,
    /// Start, integer ns.
    pub ts: u64,
    /// End (`ts + dur`), integer ns.
    pub end: u64,
}

/// One matched `"s"`/`"f"` flow pair: a causal edge from the lane that
/// sent a parcel to the lane that received it, paired by flow id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowEdge {
    /// Flow id shared by both ends.
    pub id: u64,
    /// Sending locality.
    pub src_pid: u64,
    /// Sending thread.
    pub src_tid: u64,
    /// Send timestamp, ns on the sender's clock.
    pub src_ts: u64,
    /// Receiving locality.
    pub dst_pid: u64,
    /// Receiving thread.
    pub dst_tid: u64,
    /// Receive timestamp, ns on the receiver's clock.
    pub dst_ts: u64,
}

/// What [`validate`] learned about a trace file.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// Number of `"X"` span events.
    pub spans: u64,
    /// Number of `"i"` instant events.
    pub instants: u64,
    /// Number of `"s"` flow-start events.
    pub flow_starts: u64,
    /// Number of `"f"` flow-end events.
    pub flow_ends: u64,
    /// Matched flow pairs — the cross-locality happens-before edges the
    /// distributed critical path routes through.
    pub flow_edges: Vec<FlowEdge>,
    /// Distinct `(pid, tid)` lanes carrying events.
    pub threads: usize,
    /// Distinct pids (locality lanes).
    pub pids: usize,
    /// Event counts per category.
    pub by_cat: BTreeMap<String, u64>,
    /// Event counts per name.
    pub by_name: BTreeMap<String, u64>,
    /// Per span name: `[start_ns, end_ns)` wall-clock intervals, across all
    /// threads. Spans on *different* threads may overlap freely (only
    /// same-thread partial overlap is a validation error), and that
    /// cross-thread overlap is exactly what a futurized scheduler produces.
    pub intervals_by_name: BTreeMap<String, Vec<(u64, u64)>>,
    /// Every span with lane and names resolved, in file order — what the
    /// critical-path / flamegraph analyzers consume.
    pub records: Vec<SpanRecord>,
    /// `(pid, tid)` → thread name from `"M"` metadata.
    pub thread_names: BTreeMap<(u64, u64), String>,
    /// `(pid, tid)` → instant-name counts (steal/yield accounting).
    pub instants_by_thread: BTreeMap<(u64, u64), BTreeMap<String, u64>>,
    /// Earliest span/instant start in the trace, ns.
    pub first_ts_ns: u64,
    /// Latest span end (or instant timestamp), ns.
    pub last_end_ns: u64,
    /// Number of `"C"` counter events.
    pub counter_events: u64,
    /// Counter series reassembled from `"C"` events: name → `(ts_ns, value)`.
    pub counter_series: BTreeMap<String, Vec<(u64, f64)>>,
}

impl TraceSummary {
    /// Events (spans + instants) in category `cat`.
    pub fn count_cat(&self, cat: &str) -> u64 {
        self.by_cat.get(cat).copied().unwrap_or(0)
    }

    /// Events named `name`.
    pub fn count_name(&self, name: &str) -> u64 {
        self.by_name.get(name).copied().unwrap_or(0)
    }

    /// Total nanoseconds during which a span named `a` and a span named `b`
    /// were simultaneously open (on any threads). Positive only when the
    /// two kinds of work genuinely interleaved in wall-clock time — the
    /// check `trace_check --require-overlap=A,B` runs on futurized traces.
    pub fn overlap_ns(&self, a: &str, b: &str) -> u64 {
        let (Some(xs), Some(ys)) = (self.intervals_by_name.get(a), self.intervals_by_name.get(b))
        else {
            return 0;
        };
        // Small lists (one span per leaf task); the quadratic sweep is fine
        // and — unlike a merged-interval union — charges concurrent
        // same-name pairs only once via per-name interval unions.
        let union = |v: &[(u64, u64)]| {
            let mut sorted = v.to_vec();
            sorted.sort_unstable();
            let mut merged: Vec<(u64, u64)> = Vec::new();
            for (s, e) in sorted {
                match merged.last_mut() {
                    Some(last) if s <= last.1 => last.1 = last.1.max(e),
                    _ => merged.push((s, e)),
                }
            }
            merged
        };
        let mut total = 0u64;
        for &(s0, e0) in &union(xs) {
            for &(s1, e1) in &union(ys) {
                total += e0.min(e1).saturating_sub(s0.max(s1));
            }
        }
        total
    }
}

/// Microsecond float → integer nanoseconds. Exported values are exact
/// multiples of 0.001 µs, so rounding recovers the original integer.
fn us_to_ns(us: f64) -> Result<u64, String> {
    if !us.is_finite() || us < 0.0 {
        return Err(format!("non-finite or negative timestamp {us}"));
    }
    Ok((us * 1000.0).round() as u64)
}

fn req_num(ev: &Value, key: &str) -> Result<f64, String> {
    ev.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("event missing numeric {key:?}: {ev:?}"))
}

fn req_str<'a>(ev: &'a Value, key: &str) -> Result<&'a str, String> {
    ev.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("event missing string {key:?}: {ev:?}"))
}

#[derive(Clone, Copy)]
struct SpanRec {
    ts: u64,
    end: u64,
}

/// Validate an exported Chrome trace: well-formed JSON, required fields
/// per event phase, per-thread completion-order monotonicity, and strict
/// span nesting per thread. Returns counts on success.
pub fn validate(json_text: &str) -> Result<TraceSummary, String> {
    let doc = json::parse(json_text)?;
    let unit = doc
        .get("displayTimeUnit")
        .and_then(Value::as_str)
        .ok_or("missing displayTimeUnit")?;
    if unit != "ms" {
        return Err(format!("unexpected displayTimeUnit {unit:?}"));
    }
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("missing traceEvents array")?;

    let mut summary = TraceSummary {
        first_ts_ns: u64::MAX, // normalized to 0 below if no events
        ..TraceSummary::default()
    };
    // Per (pid,tid): spans for the nesting check, and the completion time
    // of the last event seen in file order.
    let mut spans: BTreeMap<(u64, u64), Vec<SpanRec>> = BTreeMap::new();
    let mut last_done: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    let mut pids: Vec<u64> = Vec::new();
    // Flow ends are paired after the sweep: the sender's lane can appear
    // later in the file than the receiver's, so an "f" may precede its "s".
    let mut flow_starts: BTreeMap<u64, (u64, u64, u64)> = BTreeMap::new();
    let mut flow_ends: Vec<(usize, u64, u64, u64, u64)> = Vec::new();

    for (i, ev) in events.iter().enumerate() {
        let ph = req_str(ev, "ph").map_err(|e| format!("event {i}: {e}"))?;
        match ph {
            "M" => {
                let name = req_str(ev, "name")?;
                if name != "process_name" && name != "thread_name" {
                    return Err(format!("event {i}: unknown metadata {name:?}"));
                }
                let label = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("event {i}: metadata missing args.name"))?;
                if name == "thread_name" {
                    let pid = req_num(ev, "pid").map_err(|e| format!("event {i}: {e}"))? as u64;
                    let tid = req_num(ev, "tid").map_err(|e| format!("event {i}: {e}"))? as u64;
                    summary.thread_names.insert((pid, tid), label.to_string());
                }
            }
            "C" => {
                // Counter samples: process-global value tracks. Exempt from
                // the per-lane ordering/nesting invariants below — the
                // sampler thread writes them on its own clock.
                let name = req_str(ev, "name").map_err(|e| format!("event {i}: {e}"))?;
                let ts = us_to_ns(req_num(ev, "ts").map_err(|e| format!("event {i}: {e}"))?)?;
                let value = ev
                    .get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("event {i}: counter missing numeric args.value"))?;
                summary.counter_events += 1;
                summary
                    .counter_series
                    .entry(name.to_string())
                    .or_default()
                    .push((ts, value));
            }
            "X" | "i" => {
                let name = req_str(ev, "name").map_err(|e| format!("event {i}: {e}"))?;
                let cat = req_str(ev, "cat").map_err(|e| format!("event {i}: {e}"))?;
                let pid = req_num(ev, "pid").map_err(|e| format!("event {i}: {e}"))? as u64;
                let tid = req_num(ev, "tid").map_err(|e| format!("event {i}: {e}"))? as u64;
                let ts = us_to_ns(req_num(ev, "ts").map_err(|e| format!("event {i}: {e}"))?)?;
                let key = (pid, tid);
                if !pids.contains(&pid) {
                    pids.push(pid);
                }
                let done = if ph == "X" {
                    let dur = us_to_ns(req_num(ev, "dur").map_err(|e| format!("event {i}: {e}"))?)?;
                    let end = ts
                        .checked_add(dur)
                        .ok_or_else(|| format!("event {i}: ts+dur overflow"))?;
                    spans.entry(key).or_default().push(SpanRec { ts, end });
                    summary
                        .intervals_by_name
                        .entry(name.to_string())
                        .or_default()
                        .push((ts, end));
                    summary.records.push(SpanRecord {
                        pid,
                        tid,
                        name: name.to_string(),
                        cat: cat.to_string(),
                        ts,
                        end,
                    });
                    summary.spans += 1;
                    end
                } else {
                    req_str(ev, "s").map_err(|e| format!("event {i}: {e}"))?;
                    *summary
                        .instants_by_thread
                        .entry(key)
                        .or_default()
                        .entry(name.to_string())
                        .or_insert(0) += 1;
                    summary.instants += 1;
                    ts
                };
                summary.first_ts_ns = summary.first_ts_ns.min(ts);
                summary.last_end_ns = summary.last_end_ns.max(done);
                // Ring buffers record at completion: file order per thread
                // must be non-decreasing in completion time.
                if let Some(prev) = last_done.get(&key) {
                    if done < *prev {
                        return Err(format!(
                            "event {i} ({name}): completion time regressed on pid {pid} tid \
                             {tid} ({done} ns after {prev} ns)"
                        ));
                    }
                }
                last_done.insert(key, done);
                *summary.by_cat.entry(cat.to_string()).or_insert(0) += 1;
                *summary.by_name.entry(name.to_string()).or_insert(0) += 1;
            }
            "s" | "f" => {
                // Flow events: point markers on a lane, paired by id. They
                // share the per-lane completion-order invariant (recorded
                // immediately, like instants) but are exempt from span
                // nesting — an arrow endpoint lives *inside* its enclosing
                // parcel_send/parcel_recv slice.
                let name = req_str(ev, "name").map_err(|e| format!("event {i}: {e}"))?;
                let cat = req_str(ev, "cat").map_err(|e| format!("event {i}: {e}"))?;
                let id = req_num(ev, "id").map_err(|e| format!("event {i}: {e}"))? as u64;
                let pid = req_num(ev, "pid").map_err(|e| format!("event {i}: {e}"))? as u64;
                let tid = req_num(ev, "tid").map_err(|e| format!("event {i}: {e}"))? as u64;
                let ts = us_to_ns(req_num(ev, "ts").map_err(|e| format!("event {i}: {e}"))?)?;
                let key = (pid, tid);
                if !pids.contains(&pid) {
                    pids.push(pid);
                }
                if ph == "s" {
                    summary.flow_starts += 1;
                    flow_starts.insert(id, (pid, tid, ts));
                } else {
                    summary.flow_ends += 1;
                    flow_ends.push((i, id, pid, tid, ts));
                }
                summary.first_ts_ns = summary.first_ts_ns.min(ts);
                summary.last_end_ns = summary.last_end_ns.max(ts);
                if let Some(prev) = last_done.get(&key) {
                    if ts < *prev {
                        return Err(format!(
                            "event {i} ({name}): completion time regressed on pid {pid} tid \
                             {tid} ({ts} ns after {prev} ns)"
                        ));
                    }
                }
                last_done.insert(key, ts);
                *summary.by_cat.entry(cat.to_string()).or_insert(0) += 1;
                *summary.by_name.entry(name.to_string()).or_insert(0) += 1;
            }
            other => return Err(format!("event {i}: unsupported phase {other:?}")),
        }
    }

    // Pair flow ends with their starts. A dangling "f" (no matching "s")
    // is a broken causal edge and fails validation; an unmatched "s" is
    // legal (its receiver's ring may have overwritten the "f", or the
    // parcel is still in flight at export time).
    for (i, id, dst_pid, dst_tid, dst_ts) in flow_ends {
        let Some(&(src_pid, src_tid, src_ts)) = flow_starts.get(&id) else {
            return Err(format!(
                "event {i}: dangling flow — \"f\" with id {id} has no matching \"s\" start \
                 anywhere in the trace"
            ));
        };
        summary.flow_edges.push(FlowEdge {
            id,
            src_pid,
            src_tid,
            src_ts,
            dst_pid,
            dst_tid,
            dst_ts,
        });
    }

    // Strict nesting per thread: sort (ts asc, end desc), sweep a stack.
    // Two spans on one thread must be disjoint or one inside the other.
    for ((pid, tid), mut recs) in spans {
        recs.sort_by(|a, b| a.ts.cmp(&b.ts).then(b.end.cmp(&a.end)));
        let mut stack: Vec<SpanRec> = Vec::new();
        for s in recs {
            loop {
                match stack.last() {
                    None => break,
                    Some(top) if s.ts >= top.ts && s.end <= top.end => break,
                    Some(top) if top.end <= s.ts => {
                        stack.pop();
                    }
                    Some(top) => {
                        return Err(format!(
                            "pid {pid} tid {tid}: span [{}, {}] partially overlaps [{}, {}]",
                            s.ts, s.end, top.ts, top.end
                        ));
                    }
                }
            }
            stack.push(s);
        }
    }

    summary.threads = last_done.len();
    summary.pids = pids.len();
    if summary.first_ts_ns == u64::MAX {
        summary.first_ts_ns = 0;
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Cat, Event, EventKind, ThreadMeta, Trace};

    fn meta(pid: u32, tid: u32, name: &str) -> ThreadMeta {
        ThreadMeta {
            pid,
            tid,
            name: name.to_string(),
        }
    }

    fn span_ev(name: &'static str, cat: Cat, ts: u64, dur: u64) -> Event {
        Event {
            cat,
            name,
            ts_ns: ts,
            kind: EventKind::Span { dur_ns: dur },
        }
    }

    fn instant_ev(name: &'static str, cat: Cat, ts: u64) -> Event {
        Event {
            cat,
            name,
            ts_ns: ts,
            kind: EventKind::Instant,
        }
    }

    #[test]
    fn export_validate_round_trip() {
        let trace = Trace {
            threads: vec![
                (
                    meta(0, 0, "worker0"),
                    vec![
                        // Completion order: child closes before parent.
                        span_ev("m2l", Cat::Gravity, 1500, 400),
                        instant_ev("steal", Cat::Sched, 2000),
                        span_ev("gravity_solve", Cat::Phase, 1000, 4000),
                    ],
                ),
                (
                    meta(1, 1, "worker0"),
                    vec![span_ev("flush", Cat::Comm, 100, 50)],
                ),
            ],
            dropped: 0,
        };
        let out = export(&trace);
        let s = validate(&out).unwrap();
        assert_eq!(s.spans, 3);
        assert_eq!(s.instants, 1);
        assert_eq!(s.threads, 2);
        assert_eq!(s.pids, 2);
        assert_eq!(s.count_cat("gravity"), 1);
        assert_eq!(s.count_cat("comm"), 1);
        assert_eq!(s.count_name("gravity_solve"), 1);
    }

    #[test]
    fn cross_thread_overlap_is_measured_not_rejected() {
        // gravity on worker0 [1000, 5000], hydro on worker1 [2000, 7000]:
        // legal (different threads) and 3000 ns of genuine interleaving.
        let trace = Trace {
            threads: vec![
                (
                    meta(0, 0, "worker0"),
                    vec![span_ev("gravity_solve", Cat::Phase, 1000, 4000)],
                ),
                (
                    meta(0, 1, "worker1"),
                    vec![
                        span_ev("hydro_step", Cat::Phase, 2000, 5000),
                        span_ev("hydro_step", Cat::Phase, 8000, 1000),
                    ],
                ),
            ],
            dropped: 0,
        };
        let s = validate(&export(&trace)).unwrap();
        assert_eq!(s.overlap_ns("gravity_solve", "hydro_step"), 3000);
        assert_eq!(s.overlap_ns("hydro_step", "gravity_solve"), 3000);
        assert_eq!(s.overlap_ns("gravity_solve", "missing"), 0);
        assert_eq!(s.intervals_by_name.get("hydro_step").map(Vec::len), Some(2));
    }

    #[test]
    fn timestamps_survive_at_ns_precision() {
        let trace = Trace {
            threads: vec![(
                meta(0, 0, "w"),
                vec![span_ev("s", Cat::Task, 1_234_567_891, 987_654_321)],
            )],
            dropped: 0,
        };
        let out = export(&trace);
        assert!(out.contains("\"ts\":1234567.891"));
        assert!(out.contains("\"dur\":987654.321"));
        validate(&out).unwrap();
    }

    #[test]
    fn rejects_partial_overlap() {
        let trace = Trace {
            threads: vec![(
                meta(0, 0, "w"),
                vec![
                    span_ev("a", Cat::Task, 100, 100), // ends 200
                    span_ev("b", Cat::Task, 150, 100), // ends 250: overlaps a
                ],
            )],
            dropped: 0,
        };
        let err = validate(&export(&trace)).unwrap_err();
        assert!(err.contains("partially overlaps"), "{err}");
    }

    #[test]
    fn rejects_completion_order_regression() {
        let trace = Trace {
            threads: vec![(
                meta(0, 0, "w"),
                vec![
                    span_ev("late", Cat::Task, 0, 500),  // done at 500
                    span_ev("early", Cat::Task, 0, 100), // done at 100: regressed
                ],
            )],
            dropped: 0,
        };
        let err = validate(&export(&trace)).unwrap_err();
        assert!(err.contains("completion time regressed"), "{err}");
    }

    #[test]
    fn rejects_missing_fields_and_bad_json() {
        assert!(validate("not json").is_err());
        assert!(validate("{\"traceEvents\":[]}").is_err());
        assert!(validate("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{\"ph\":\"X\"}]}").is_err());
        // Empty trace is valid.
        let s = validate("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}").unwrap();
        assert_eq!(s.spans + s.instants, 0);
    }

    #[test]
    fn counter_events_round_trip() {
        let trace = Trace {
            threads: vec![(
                meta(0, 1, "worker0"),
                vec![span_ev("gravity_solve", Cat::Phase, 1000, 4000)],
            )],
            dropped: 0,
        };
        let mut series = crate::sampler::TimeSeries::default();
        let mut snap = crate::counters::CounterSnapshot::new();
        snap.set_count("/runtime/steals", 2);
        snap.set_gauge("/runtime/imbalance", 1.5);
        series.push(2_000, &snap);
        snap.set_count("/runtime/steals", 7);
        series.push(4_500, &snap);
        let out = export_with_counters(&trace, &series);
        let s = validate(&out).unwrap();
        assert_eq!(s.spans, 1);
        assert_eq!(s.counter_events, 4);
        assert_eq!(
            s.counter_series["/runtime/steals"],
            vec![(2_000, 2.0), (4_500, 7.0)]
        );
        assert_eq!(s.counter_series["/runtime/imbalance"][1], (4_500, 1.5));
        // Counter events don't perturb the span summary or wall window.
        assert_eq!((s.first_ts_ns, s.last_end_ns), (1000, 5000));
        assert_eq!(s.threads, 1);
        // Metadata captured the thread label; the record carries the lane.
        assert_eq!(s.thread_names[&(0, 1)], "worker0");
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.records[0].name, "gravity_solve");
        assert_eq!(s.records[0].cat, "phase");
        assert_eq!((s.records[0].ts, s.records[0].end), (1000, 5000));
    }

    fn flow_ev(name: &'static str, ts: u64, kind: EventKind) -> Event {
        Event {
            cat: Cat::Comm,
            name,
            ts_ns: ts,
            kind,
        }
    }

    #[test]
    fn flow_events_round_trip_and_pair_across_localities() {
        // Receiver lane (pid 0) appears *first* in the file — "f" before
        // its "s" — and pairing must still succeed.
        let trace = Trace {
            threads: vec![
                (
                    meta(0, 0, "parcel-rx"),
                    vec![
                        flow_ev("parcel", 5000, EventKind::FlowEnd { id: 7 }),
                        span_ev("parcel_recv", Cat::Comm, 4900, 300),
                    ],
                ),
                (
                    meta(1, 1, "worker0"),
                    vec![
                        flow_ev("parcel", 1000, EventKind::FlowStart { id: 7 }),
                        flow_ev("parcel", 1200, EventKind::FlowStart { id: 8 }),
                    ],
                ),
            ],
            dropped: 0,
        };
        let out = export(&trace);
        assert!(out.contains("\"ph\":\"s\""));
        assert!(out.contains("\"ph\":\"f\",\"bp\":\"e\""));
        let s = validate(&out).unwrap();
        assert_eq!((s.flow_starts, s.flow_ends), (2, 1));
        assert_eq!(s.flow_edges.len(), 1);
        let e = s.flow_edges[0];
        assert_eq!((e.id, e.src_pid, e.dst_pid), (7, 1, 0));
        assert_eq!((e.src_ts, e.dst_ts), (1000, 5000));
        // Flow points don't count as spans/instants but do count lanes.
        assert_eq!((s.spans, s.instants), (1, 0));
        assert_eq!(s.threads, 2);
        assert_eq!(s.count_cat("comm"), 4);
    }

    #[test]
    fn rejects_dangling_flow_end() {
        let trace = Trace {
            threads: vec![(
                meta(0, 0, "parcel-rx"),
                vec![flow_ev("parcel", 100, EventKind::FlowEnd { id: 99 })],
            )],
            dropped: 0,
        };
        let err = validate(&export(&trace)).unwrap_err();
        assert!(err.contains("dangling flow"), "{err}");
        assert!(err.contains("id 99"), "{err}");
    }

    #[test]
    fn rejects_counter_without_value() {
        let bad = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\
                   {\"ph\":\"C\",\"name\":\"/x\",\"pid\":0,\"tid\":0,\"ts\":1.0,\"args\":{}}]}";
        let err = validate(bad).unwrap_err();
        assert!(err.contains("counter missing numeric args.value"), "{err}");
    }

    #[test]
    fn escapes_names() {
        let trace = Trace {
            threads: vec![(
                meta(0, 0, "we\"ird\nname"),
                vec![span_ev("ok", Cat::Task, 0, 1)],
            )],
            dropped: 0,
        };
        validate(&export(&trace)).unwrap();
    }
}
