//! Minimal JSON value parser used by the trace validator.
//!
//! The workspace's serde shim only covers serialization of our own structs;
//! validating an emitted Chrome trace needs a real parser. This one handles
//! the full JSON grammar (objects, arrays, strings with escapes, numbers,
//! literals) — enough to re-read anything `chrome::export` produces and to
//! reject malformed files in `trace_check`.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field access.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse `input` as a single JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        let end = self.pos + word.len();
        if self.bytes.get(self.pos..end) == Some(word.as_bytes()) {
            self.pos = end;
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: \uD800-\uDBFF must be followed
                            // by a low surrogate escape.
                            if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".into());
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                out.push(
                                    char::from_u32(c).ok_or_else(|| "bad codepoint".to_string())?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| "bad codepoint".to_string())?,
                                );
                            }
                            continue;
                        }
                        other => {
                            return Err(format!("bad escape {:?}", other.map(|c| c as char)));
                        }
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err("raw control char in string".into()),
                Some(_) => {
                    // Consume one UTF-8 scalar (1–4 bytes).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-utf8 string".to_string())?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| "truncated \\u escape".to_string())?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape {hex:?}"))?;
        self.pos = end;
        Ok(cp)
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ));
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ));
                }
            }
        }
    }
}

/// Escape `s` as a JSON string body (no surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":true,"d":null},"e":"x"}"#).unwrap();
        assert_eq!(v.get("e").and_then(Value::as_str), Some("x"));
        let arr = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(arr[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").and_then(|b| b.get("d")), Some(&Value::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut body = String::new();
        escape_into(&mut body, "a\"b\\c\nd\te\u{1}");
        let doc = format!("{{\"k\":\"{body}\"}}");
        let v = parse(&doc).unwrap();
        assert_eq!(
            v.get("k").and_then(Value::as_str),
            Some("a\"b\\c\nd\te\u{1}")
        );
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        let v = parse(r#""\u00e9 \ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("é 😀"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("\"\\q\"").is_err());
        assert!(parse("01a").is_err());
    }
}
