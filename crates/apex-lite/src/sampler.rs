//! Periodic counter sampler — time-series over a [`CounterRegistry`].
//!
//! HPX's counter framework can be asked to sample every N milliseconds
//! (`--hpx:print-counter-interval`); APEX does the same for its tasks-vs-
//! time plots. This module is that half for the reproduction: a background
//! OS thread snapshots a shared registry on a wall-clock cadence into
//! per-series ring buffers, and the result exports as Chrome `"C"`
//! (counter) events merged into the span trace
//! ([`crate::chrome::export_with_counters`]) or as a CSV text dump
//! ([`TimeSeries::render_csv`]).
//!
//! Discipline mirrors the tracer's: when no `--sample_interval_ms` is
//! given nothing here is constructed — no thread, no allocation, no atomic
//! in any hot path. The sampler thread is the only writer; workers never
//! see it except through the same relaxed atomics their counters already
//! use. Ring capacity is bounded ([`SERIES_CAPACITY`] points per series);
//! beyond it the oldest points are dropped and counted, so a long run
//! degrades to a coarser tail instead of unbounded memory.

use crate::counters::{CounterRegistry, CounterSnapshot};
use crate::trace;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Maximum retained points per series; older points are dropped (counted
/// in [`TimeSeries::dropped`]). At a 10 ms cadence this holds ~40 s of
/// history per series.
pub const SERIES_CAPACITY: usize = 4096;

/// Sampled counter time-series: per path, `(ts_ns, value)` points in
/// sample order. Timestamps share the tracer's clock ([`trace::now_ns`])
/// so counter points line up with spans in the merged Chrome export.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    /// Path → `(ts_ns, value)` points, oldest first.
    pub series: BTreeMap<String, Vec<(u64, f64)>>,
    /// Sampling ticks taken.
    pub samples: u64,
    /// Points evicted by the per-series ring capacity.
    pub dropped: u64,
}

impl TimeSeries {
    /// Fold one snapshot in at time `ts_ns`.
    pub fn push(&mut self, ts_ns: u64, snap: &CounterSnapshot) {
        self.samples += 1;
        for (path, v) in snap.iter() {
            let points = self.series.entry(path.to_string()).or_default();
            if points.len() >= SERIES_CAPACITY {
                points.remove(0);
                self.dropped += 1;
            }
            points.push((ts_ns, v.as_f64()));
        }
    }

    /// Number of distinct series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True when nothing was sampled.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Most recent value of `path`, if sampled.
    pub fn last(&self, path: &str) -> Option<f64> {
        self.series.get(path)?.last().map(|&(_, v)| v)
    }

    /// Render as CSV text (the `--metrics-out` format): one comment
    /// header, a column header, then one `series,ts_ms,value` row per
    /// point, grouped by series in path order.
    pub fn render_csv(&self) -> String {
        let mut out = format!(
            "# apex-lite counter time-series: {} series, {} samples, {} dropped\n\
             series,ts_ms,value\n",
            self.len(),
            self.samples,
            self.dropped
        );
        for (path, points) in &self.series {
            for &(ts, v) in points {
                let _ = writeln!(out, "{path},{}.{:06},{v}", ts / 1_000_000, ts % 1_000_000);
            }
        }
        out
    }
}

/// Handle on a running background sampler. Dropping it without calling
/// [`Sampler::stop`] detaches the thread (it keeps sampling until process
/// exit); call `stop` to join and collect the series.
pub struct Sampler {
    stop: Arc<AtomicBool>,
    join: JoinHandle<TimeSeries>,
}

impl Sampler {
    /// Spawn the sampling thread: one [`CounterRegistry::sample`] per
    /// `interval` tick. The first sample is taken immediately, and `stop`
    /// takes one final sample before joining, so even a very short run
    /// yields at least two points per series.
    pub fn start(registry: Arc<CounterRegistry>, interval: Duration) -> Sampler {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let join = std::thread::Builder::new()
            .name("apex-sampler".into())
            .spawn(move || {
                let mut out = TimeSeries::default();
                loop {
                    let mut snap = registry.sample();
                    // Surface the sampler's own ring-buffer evictions as a
                    // counter, so a coarsened tail is visible in the data
                    // itself. The value lags one tick: this sample reports
                    // drops up to the *previous* push.
                    snap.set_count("/apex/sampler/dropped_points", out.dropped);
                    out.push(trace::now_ns(), &snap);
                    if stop_flag.load(Ordering::Acquire) {
                        break;
                    }
                    // park_timeout instead of sleep so `stop` can cut the
                    // final wait short via unpark.
                    std::thread::park_timeout(interval);
                }
                out
            })
            .expect("spawn apex-sampler thread");
        Sampler { stop, join }
    }

    /// Signal the thread, join it, and return the collected series.
    pub fn stop(self) -> TimeSeries {
        self.stop.store(true, Ordering::Release);
        self.join.thread().unpark();
        self.join.join().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::CounterRegistry;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn sampler_collects_monotone_series() {
        let tick = Arc::new(AtomicU64::new(0));
        let tick2 = Arc::clone(&tick);
        let mut reg = CounterRegistry::new();
        reg.register("/test", move |c| {
            c.count("ticks", tick2.fetch_add(1, Ordering::Relaxed));
            c.gauge("level", 2.5);
        });
        let sampler = Sampler::start(Arc::new(reg), Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(20));
        let ts = sampler.stop();
        assert!(ts.samples >= 2, "expected >=2 samples, got {}", ts.samples);
        assert_eq!(ts.len(), 3, "two registered series + the drop counter");
        assert_eq!(
            ts.last("/apex/sampler/dropped_points"),
            Some(0.0),
            "a short run drops nothing"
        );
        let ticks = &ts.series["/test/ticks"];
        assert!(ticks.windows(2).all(|w| w[0].0 <= w[1].0), "ts not sorted");
        assert!(ticks.windows(2).all(|w| w[0].1 <= w[1].1), "count fell");
        assert_eq!(ts.last("/test/level"), Some(2.5));
        assert_eq!(ts.last("/test/absent"), None);
    }

    #[test]
    fn ring_capacity_drops_oldest() {
        let mut ts = TimeSeries::default();
        let mut snap = CounterSnapshot::new();
        for i in 0..(SERIES_CAPACITY as u64 + 10) {
            snap.set_count("/x", i);
            ts.push(i, &snap);
        }
        assert_eq!(ts.series["/x"].len(), SERIES_CAPACITY);
        assert_eq!(ts.dropped, 10);
        // Oldest went first: the head is sample 10, the tail the newest.
        assert_eq!(ts.series["/x"][0].0, 10);
        assert_eq!(ts.last("/x"), Some(SERIES_CAPACITY as f64 + 9.0));
    }

    #[test]
    fn csv_lists_every_point() {
        let mut ts = TimeSeries::default();
        let mut snap = CounterSnapshot::new();
        snap.set_count("/runtime/steals", 3);
        snap.set_gauge("/runtime/imbalance", 1.25);
        ts.push(1_500_000, &snap);
        snap.set_count("/runtime/steals", 5);
        ts.push(2_000_000, &snap);
        let csv = ts.render_csv();
        assert!(csv.starts_with("# apex-lite counter time-series: 2 series, 2 samples"));
        assert!(csv.contains("series,ts_ms,value"));
        assert!(csv.contains("/runtime/steals,1.500000,3"));
        assert!(csv.contains("/runtime/steals,2.000000,5"));
        assert!(csv.contains("/runtime/imbalance,1.500000,1.25"));
        assert_eq!(csv.lines().count(), 2 + 4);
    }
}
