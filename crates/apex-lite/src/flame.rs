//! Collapsed-stack flamegraph export.
//!
//! Rebuilds each lane's span nesting (the validator already guarantees
//! strict nesting per thread) and emits the classic semicolon-separated
//! collapsed format that `flamegraph.pl` and inferno consume:
//!
//! ```text
//! locality0;worker1;gravity_solve;m2l 48210
//! ```
//!
//! The count column is *self time in nanoseconds* — a span's duration
//! minus its children's — so the flame widths are exact wall time rather
//! than sampled approximations. Lanes root at `locality{pid};{thread}` so
//! multi-locality traces stay separable in one graph.

use crate::chrome::{SpanRecord, TraceSummary};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregate self-time per collapsed stack, in stack order.
pub fn collapsed_stacks(summary: &TraceSummary) -> BTreeMap<String, u64> {
    let mut by_lane: BTreeMap<(u64, u64), Vec<&SpanRecord>> = BTreeMap::new();
    for rec in &summary.records {
        by_lane.entry((rec.pid, rec.tid)).or_default().push(rec);
    }

    struct Frame<'a> {
        rec: &'a SpanRecord,
        child_ns: u64,
    }

    let mut out: BTreeMap<String, u64> = BTreeMap::new();
    for ((pid, tid), mut recs) in by_lane {
        // Same ordering as the validator's nesting sweep: parents first.
        recs.sort_by(|a, b| a.ts.cmp(&b.ts).then(b.end.cmp(&a.end)));
        let thread = summary
            .thread_names
            .get(&(pid, tid))
            .cloned()
            .unwrap_or_else(|| format!("tid{tid}"));
        let root = format!("locality{pid};{thread}");

        let mut stack: Vec<Frame<'_>> = Vec::new();
        let emit = |stack: &mut Vec<Frame<'_>>, out: &mut BTreeMap<String, u64>| {
            let top = stack.pop().expect("emit on empty stack");
            let dur = top.rec.end - top.rec.ts;
            let self_ns = dur.saturating_sub(top.child_ns);
            if let Some(parent) = stack.last_mut() {
                parent.child_ns += dur;
            }
            let mut key = root.clone();
            for f in stack.iter() {
                let _ = write!(key, ";{}", f.rec.name);
            }
            let _ = write!(key, ";{}", top.rec.name);
            *out.entry(key).or_insert(0) += self_ns;
        };
        for rec in recs {
            while stack.last().is_some_and(|top| top.rec.end <= rec.ts) {
                emit(&mut stack, &mut out);
            }
            stack.push(Frame { rec, child_ns: 0 });
        }
        while !stack.is_empty() {
            emit(&mut stack, &mut out);
        }
    }
    out
}

/// Render collapsed stacks as `stack count` lines (flamegraph.pl input).
pub fn render_collapsed(stacks: &BTreeMap<String, u64>) -> String {
    let mut out = String::with_capacity(stacks.len() * 48);
    for (stack, ns) in stacks {
        let _ = writeln!(out, "{stack} {ns}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::{export, validate};
    use crate::trace::{Cat, Event, EventKind, ThreadMeta, Trace};

    fn span_ev(name: &'static str, cat: Cat, ts: u64, dur: u64) -> Event {
        Event {
            cat,
            name,
            ts_ns: ts,
            kind: EventKind::Span { dur_ns: dur },
        }
    }

    #[test]
    fn self_time_excludes_children() {
        // worker0: solve [0,1000) with children m2l [100,400) and
        // p2p [500,800); sibling flush [1200,1300).
        // Ring buffers record at close: children precede the parent.
        let trace = Trace {
            threads: vec![(
                ThreadMeta {
                    pid: 0,
                    tid: 1,
                    name: "worker0".into(),
                },
                vec![
                    span_ev("m2l", Cat::Gravity, 100, 300),
                    span_ev("p2p", Cat::Gravity, 500, 300),
                    span_ev("gravity_solve", Cat::Phase, 0, 1000),
                    span_ev("flush", Cat::Comm, 1200, 100),
                ],
            )],
            dropped: 0,
        };
        let s = validate(&export(&trace)).unwrap();
        let stacks = collapsed_stacks(&s);
        assert_eq!(stacks.len(), 4);
        assert_eq!(stacks["locality0;worker0;gravity_solve"], 400);
        assert_eq!(stacks["locality0;worker0;gravity_solve;m2l"], 300);
        assert_eq!(stacks["locality0;worker0;gravity_solve;p2p"], 300);
        assert_eq!(stacks["locality0;worker0;flush"], 100);
        let text = render_collapsed(&stacks);
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains("locality0;worker0;gravity_solve;m2l 300\n"));
        // Total self time equals total non-overlapping span time.
        let total: u64 = stacks.values().sum();
        assert_eq!(total, 1000 + 100);
    }

    #[test]
    fn repeated_stacks_aggregate() {
        let trace = Trace {
            threads: vec![(
                ThreadMeta {
                    pid: 1,
                    tid: 7,
                    name: "worker3".into(),
                },
                vec![
                    span_ev("task", Cat::Task, 0, 10),
                    span_ev("task", Cat::Task, 20, 30),
                ],
            )],
            dropped: 0,
        };
        let s = validate(&export(&trace)).unwrap();
        let stacks = collapsed_stacks(&s);
        assert_eq!(stacks.len(), 1);
        assert_eq!(stacks["locality1;worker3;task"], 40);
    }

    #[test]
    fn empty_trace_renders_empty() {
        let s = validate("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}").unwrap();
        let stacks = collapsed_stacks(&s);
        assert!(stacks.is_empty());
        assert!(render_collapsed(&stacks).is_empty());
    }
}
