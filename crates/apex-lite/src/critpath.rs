//! Critical-path and per-worker utilization analysis over a validated
//! trace — the "what limited this run?" half of apex-lite.
//!
//! ## Critical-path definition
//!
//! The futurized step emits many concurrent same-name spans (one
//! `gravity_solve` per leaf task), so a naive longest-chain over raw spans
//! either double-counts concurrency or misses it. We instead analyse
//! *phase activity segments*: for each phase name, the wall-clock union of
//! all its spans (across every thread) is merged into disjoint segments —
//! "some gravity work was in flight during [s, e)". The critical path is
//! then the longest happens-before chain over the pooled segments: a
//! sequence `seg_1, …, seg_k` with `end(seg_i) ≤ start(seg_{i+1})`
//! maximising total covered time (weighted-interval-scheduling DP,
//! O(n log n)).
//!
//! Two properties follow by construction and are what the tests gate on:
//!
//! * **path ≤ wall** — chain segments are pairwise disjoint and live
//!   inside the trace's `[first_ts, last_end]` window;
//! * **path ≥ max single-phase active time** — one phase's own merged
//!   segments are disjoint and ordered, hence themselves a feasible
//!   chain, so the optimum can only be longer.
//!
//! `wall − path` is the *slack*: wall-clock time where no chained phase
//! segment was open (scheduler gaps, non-phase work). Per-phase rows
//! split the path into contributions so "gravity is 60% of the critical
//! path" is a one-line read.

use crate::chrome::TraceSummary;
use std::collections::{BTreeMap, BTreeSet};

/// One merged activity segment of a named phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSegment {
    /// Phase (span) name this segment belongs to.
    pub name: String,
    /// Segment start, ns on the trace clock.
    pub start_ns: u64,
    /// Segment end, ns on the trace clock.
    pub end_ns: u64,
}

impl PhaseSegment {
    fn dur(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// Per-phase breakdown of the critical path.
#[derive(Debug, Clone)]
pub struct PhaseContribution {
    /// Phase name.
    pub name: String,
    /// Nanoseconds this phase contributes to the critical path.
    pub path_ns: u64,
    /// Total active (union) time of the phase across the whole run.
    pub active_ns: u64,
    /// Number of raw spans carrying this name.
    pub spans: u64,
}

/// Result of [`critical_path`].
#[derive(Debug, Clone, Default)]
pub struct CriticalPath {
    /// Trace wall-clock window (last span/instant end − first start).
    pub wall_ns: u64,
    /// Total length of the longest chain.
    pub path_ns: u64,
    /// Wall time not covered by the chain (`wall_ns − path_ns`).
    pub slack_ns: u64,
    /// The chain itself, in time order.
    pub segments: Vec<PhaseSegment>,
    /// Per-phase contributions, largest `path_ns` first.
    pub by_phase: Vec<PhaseContribution>,
}

/// Merge raw `[start, end)` intervals into a disjoint, ordered union.
/// Touching intervals (`end == next start`) coalesce.
pub fn merge_intervals(intervals: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut sorted = intervals.to_vec();
    sorted.sort_unstable();
    let mut merged: Vec<(u64, u64)> = Vec::new();
    for (s, e) in sorted {
        match merged.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => merged.push((s, e)),
        }
    }
    merged
}

/// Total nanoseconds covered by the union of `intervals`.
pub fn union_ns(intervals: &[(u64, u64)]) -> u64 {
    merge_intervals(intervals).iter().map(|(s, e)| e - s).sum()
}

/// Phase names to analyse when the caller doesn't pick any: every span
/// name recorded under the `phase` category, in first-seen order.
pub fn default_phases(summary: &TraceSummary) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for rec in &summary.records {
        if rec.cat == "phase" && !names.iter().any(|n| n == &rec.name) {
            names.push(rec.name.clone());
        }
    }
    names
}

/// Compute the critical path through `phases` (see module docs for the
/// definition). Unknown phase names contribute nothing; an empty trace or
/// an empty phase list yields an empty path with `wall_ns` still set.
pub fn critical_path(summary: &TraceSummary, phases: &[String]) -> CriticalPath {
    let wall_ns = summary.last_end_ns.saturating_sub(summary.first_ts_ns);

    // Pool each phase's merged activity segments.
    let mut pool: Vec<PhaseSegment> = Vec::new();
    let mut active: BTreeMap<&str, u64> = BTreeMap::new();
    for name in phases {
        let Some(intervals) = summary.intervals_by_name.get(name) else {
            continue;
        };
        let merged = merge_intervals(intervals);
        active.insert(name, merged.iter().map(|(s, e)| e - s).sum());
        pool.extend(merged.into_iter().map(|(s, e)| PhaseSegment {
            name: name.clone(),
            start_ns: s,
            end_ns: e,
        }));
    }
    if pool.is_empty() {
        return CriticalPath {
            wall_ns,
            slack_ns: wall_ns,
            ..CriticalPath::default()
        };
    }

    // Weighted-interval-scheduling DP over segments sorted by end:
    // best[i] = max total duration of a chain ending at or before seg i.
    pool.sort_by(|a, b| a.end_ns.cmp(&b.end_ns).then(a.start_ns.cmp(&b.start_ns)));
    let n = pool.len();
    let mut dp = vec![0u64; n]; // best chain ending exactly with segment i
    let mut prev = vec![usize::MAX; n]; // predecessor segment index
    let mut best_upto = vec![0u64; n]; // max dp[0..=i]
    let mut best_idx = vec![0usize; n]; // argmax of best_upto
    for i in 0..n {
        // Rightmost j with end <= start_i (pool sorted by end).
        let s = pool[i].start_ns;
        let j = pool.partition_point(|seg| seg.end_ns <= s);
        let (chain_before, pred) = if j == 0 {
            (0, usize::MAX)
        } else {
            (best_upto[j - 1], best_idx[j - 1])
        };
        dp[i] = chain_before + pool[i].dur();
        prev[i] = if chain_before > 0 { pred } else { usize::MAX };
        let (bu, bi) = if i == 0 || dp[i] >= best_upto[i - 1] {
            (dp[i], i)
        } else {
            (best_upto[i - 1], best_idx[i - 1])
        };
        best_upto[i] = bu;
        best_idx[i] = bi;
    }

    // Reconstruct the optimal chain.
    let mut segments: Vec<PhaseSegment> = Vec::new();
    let mut at = best_idx[n - 1];
    loop {
        segments.push(pool[at].clone());
        if prev[at] == usize::MAX {
            break;
        }
        at = prev[at];
    }
    segments.reverse();
    let path_ns = segments.iter().map(PhaseSegment::dur).sum();

    let mut path_by_phase: BTreeMap<&str, u64> = BTreeMap::new();
    for seg in &segments {
        *path_by_phase.entry(seg.name.as_str()).or_insert(0) += seg.dur();
    }
    let mut by_phase: Vec<PhaseContribution> = phases
        .iter()
        .filter(|n| active.contains_key(n.as_str()))
        .map(|n| PhaseContribution {
            name: n.clone(),
            path_ns: path_by_phase.get(n.as_str()).copied().unwrap_or(0),
            active_ns: active.get(n.as_str()).copied().unwrap_or(0),
            spans: summary.count_name(n),
        })
        .collect();
    by_phase.sort_by(|a, b| b.path_ns.cmp(&a.path_ns).then(a.name.cmp(&b.name)));

    CriticalPath {
        wall_ns,
        path_ns,
        slack_ns: wall_ns.saturating_sub(path_ns),
        segments,
        by_phase,
    }
}

/// Result of [`critical_path_distributed`]: the comms-aware critical path
/// plus the distributed-only diagnostics `trace_report`'s comms section
/// prints.
#[derive(Debug, Clone, Default)]
pub struct DistCriticalPath {
    /// The path itself (`"network"` segments are the wire legs).
    pub path: CriticalPath,
    /// Nanoseconds of the path spent on network legs.
    pub network_ns: u64,
    /// Number of cross-locality flow edges the path routes through.
    pub network_edges_on_path: u64,
    /// Per-locality single-locality path lengths (the distributed path is
    /// ≥ each of these by construction).
    pub per_locality_path_ns: BTreeMap<u64, u64>,
    /// Estimated per-locality clock offsets (subtract from that
    /// locality's raw timestamps to land on the reference clock).
    pub offsets: BTreeMap<u64, i64>,
}

/// Estimate per-locality clock offsets from the flow edges, HPX/APEX
/// trace-merge style. Each locality's monotonic trace clock has an
/// arbitrary epoch; an edge `a → b` observes
/// `latency + (δ_b − δ_a)`, so with traffic in both directions
/// `δ_b − δ_a ≈ (min_obs(a→b) − min_obs(b→a)) / 2` (the minima see the
/// same uncongested wire latency). Offsets are relative to the smallest
/// pid; localities unreachable through bidirectional links stay at 0.
pub fn clock_offsets(summary: &TraceSummary) -> BTreeMap<u64, i64> {
    let mut pids: Vec<u64> = summary.records.iter().map(|r| r.pid).collect();
    for e in &summary.flow_edges {
        pids.push(e.src_pid);
        pids.push(e.dst_pid);
    }
    pids.sort_unstable();
    pids.dedup();
    let mut offsets: BTreeMap<u64, i64> = pids.iter().map(|&p| (p, 0i64)).collect();
    if pids.len() < 2 || summary.flow_edges.is_empty() {
        return offsets;
    }

    // Minimum observed one-way "latency" (receiver clock − sender clock,
    // can be negative under skew) per directed locality pair.
    let mut min_obs: BTreeMap<(u64, u64), i64> = BTreeMap::new();
    for e in &summary.flow_edges {
        if e.src_pid == e.dst_pid {
            continue;
        }
        let obs = e.dst_ts as i64 - e.src_ts as i64;
        min_obs
            .entry((e.src_pid, e.dst_pid))
            .and_modify(|m| *m = (*m).min(obs))
            .or_insert(obs);
    }

    // Propagate from the reference pid through bidirectional links.
    let reference = pids[0];
    let mut settled: Vec<u64> = vec![reference];
    let mut frontier = vec![reference];
    while let Some(a) = frontier.pop() {
        let base = offsets[&a];
        for &b in &pids {
            if settled.contains(&b) {
                continue;
            }
            if let (Some(&ab), Some(&ba)) = (min_obs.get(&(a, b)), min_obs.get(&(b, a))) {
                offsets.insert(b, base + (ab - ba) / 2);
                settled.push(b);
                frontier.push(b);
            }
        }
    }
    offsets
}

/// One node of the distributed happens-before DAG: a phase activity
/// segment pinned to its locality, or a network leg bridging two.
struct DistSeg {
    name: String,
    start_ns: u64,
    end_ns: u64,
    /// Locality a predecessor must end on.
    pid_in: u64,
    /// Locality a successor must start on.
    pid_out: u64,
}

impl DistSeg {
    fn dur(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// Longest pid-chained happens-before chain over `segs`:
/// `dp[i] = dur_i + max{dp[j] : end_j ≤ start_i ∧ pid_out_j == pid_in_i}`.
/// Returns `(path_ns, chain indices in time order)`. O(n²), fine at the
/// scale of merged phase segments + flow edges.
fn chain_dp(segs: &[DistSeg]) -> (u64, Vec<usize>) {
    let n = segs.len();
    if n == 0 {
        return (0, Vec::new());
    }
    let mut dp = vec![0u64; n];
    let mut prev = vec![usize::MAX; n];
    for i in 0..n {
        dp[i] = segs[i].dur();
        for j in 0..n {
            if segs[j].end_ns <= segs[i].start_ns
                && segs[j].pid_out == segs[i].pid_in
                && dp[j] + segs[i].dur() > dp[i]
            {
                dp[i] = dp[j] + segs[i].dur();
                prev[i] = j;
            }
        }
    }
    let best = (0..n).max_by_key(|&i| dp[i]).expect("non-empty");
    let mut chain = Vec::new();
    let mut at = best;
    loop {
        chain.push(at);
        if prev[at] == usize::MAX {
            break;
        }
        at = prev[at];
    }
    chain.reverse();
    (dp[best], chain)
}

/// Comms-aware critical path across localities. Like [`critical_path`],
/// but activity segments are merged **per locality** (work on locality 1
/// cannot extend a chain on locality 0 without a parcel in between), flow
/// edges become `"network"` legs whose endpoints pin the chain to the
/// sending/receiving locality, and all timestamps are corrected onto one
/// clock via [`clock_offsets`] (recv clamped to ≥ send, so causality
/// survives estimation error).
///
/// When the trace carries flow edges, the chain pool is every
/// non-scheduler span on the parcel-exchanging localities — `sched`
/// (idle) spans are excluded, and so is any coordination lane whose pid
/// exchanges no parcels: its phase envelopes span whole remote exchanges
/// and would tile the wall, hiding the wire legs they contain. Without
/// flow edges the function falls back to the `phases` list and matches
/// the single-locality analysis exactly.
pub fn critical_path_distributed(summary: &TraceSummary, phases: &[String]) -> DistCriticalPath {
    let offsets = clock_offsets(summary);
    let correct = |pid: u64, ts: u64| -> u64 {
        let off = offsets.get(&pid).copied().unwrap_or(0);
        (ts as i64 - off).max(0) as u64
    };

    // Per-(name, pid) merged activity segments on the corrected clock.
    let flow_pids: BTreeSet<u64> = summary
        .flow_edges
        .iter()
        .flat_map(|e| [e.src_pid, e.dst_pid])
        .collect();
    let mut by_name_pid: BTreeMap<(&str, u64), Vec<(u64, u64)>> = BTreeMap::new();
    for rec in &summary.records {
        let include = if flow_pids.is_empty() {
            phases.iter().any(|p| p == &rec.name)
        } else {
            flow_pids.contains(&rec.pid) && rec.cat != "sched"
        };
        if include {
            by_name_pid
                .entry((rec.name.as_str(), rec.pid))
                .or_default()
                .push((correct(rec.pid, rec.ts), correct(rec.pid, rec.end)));
        }
    }
    let mut segs: Vec<DistSeg> = Vec::new();
    let mut active: BTreeMap<&str, u64> = BTreeMap::new();
    for ((name, pid), intervals) in by_name_pid {
        for (s, e) in merge_intervals(&intervals) {
            *active.entry(name).or_insert(0) += e - s;
            segs.push(DistSeg {
                name: name.to_string(),
                start_ns: s,
                end_ns: e,
                pid_in: pid,
                pid_out: pid,
            });
        }
    }

    // Network legs: corrected send → corrected recv, clamped causal.
    let mut network_active = 0u64;
    for e in &summary.flow_edges {
        let src = correct(e.src_pid, e.src_ts);
        let dst = correct(e.dst_pid, e.dst_ts).max(src);
        network_active += dst - src;
        segs.push(DistSeg {
            name: "network".to_string(),
            start_ns: src,
            end_ns: dst,
            pid_in: e.src_pid,
            pid_out: e.dst_pid,
        });
    }
    if !summary.flow_edges.is_empty() {
        active.insert("network", network_active);
    }

    let wall_ns = segs
        .iter()
        .map(|s| s.end_ns)
        .max()
        .unwrap_or(0)
        .saturating_sub(segs.iter().map(|s| s.start_ns).min().unwrap_or(0));

    segs.sort_by(|a, b| {
        a.end_ns
            .cmp(&b.end_ns)
            .then(a.start_ns.cmp(&b.start_ns))
            .then(a.name.cmp(&b.name))
    });
    let (path_ns, chain) = chain_dp(&segs);

    let segments: Vec<PhaseSegment> = chain
        .iter()
        .map(|&i| PhaseSegment {
            name: segs[i].name.clone(),
            start_ns: segs[i].start_ns,
            end_ns: segs[i].end_ns,
        })
        .collect();
    let network_ns: u64 = chain
        .iter()
        .filter(|&&i| segs[i].name == "network")
        .map(|&i| segs[i].dur())
        .sum();
    let network_edges_on_path = chain.iter().filter(|&&i| segs[i].name == "network").count() as u64;

    let mut path_by_phase: BTreeMap<&str, u64> = BTreeMap::new();
    for &i in &chain {
        *path_by_phase.entry(segs[i].name.as_str()).or_insert(0) += segs[i].dur();
    }
    let mut by_phase: Vec<PhaseContribution> = active
        .iter()
        .map(|(&name, &active_ns)| PhaseContribution {
            name: name.to_string(),
            path_ns: path_by_phase.get(name).copied().unwrap_or(0),
            active_ns,
            spans: if name == "network" {
                summary.flow_edges.len() as u64
            } else {
                summary.count_name(name)
            },
        })
        .collect();
    by_phase.sort_by(|a, b| b.path_ns.cmp(&a.path_ns).then(a.name.cmp(&b.name)));

    // Single-locality baselines: the same DP restricted to one pid's
    // segments (no network legs) — each is a feasible chain of the
    // global problem, so `path_ns` dominates every one of them.
    let seg_pids: BTreeSet<u64> = segs
        .iter()
        .filter(|s| s.name != "network")
        .map(|s| s.pid_in)
        .collect();
    let mut per_locality_path_ns: BTreeMap<u64, u64> = BTreeMap::new();
    for &pid in &seg_pids {
        let local: Vec<DistSeg> = segs
            .iter()
            .filter(|s| s.name != "network" && s.pid_in == pid)
            .map(|s| DistSeg {
                name: s.name.clone(),
                start_ns: s.start_ns,
                end_ns: s.end_ns,
                pid_in: s.pid_in,
                pid_out: s.pid_out,
            })
            .collect();
        per_locality_path_ns.insert(pid, chain_dp(&local).0);
    }

    DistCriticalPath {
        path: CriticalPath {
            wall_ns,
            path_ns,
            slack_ns: wall_ns.saturating_sub(path_ns),
            segments,
            by_phase,
        },
        network_ns,
        network_edges_on_path,
        per_locality_path_ns,
        offsets,
    }
}

/// One lane's utilization over the trace window.
#[derive(Debug, Clone)]
pub struct WorkerUtilization {
    /// Locality id.
    pub pid: u64,
    /// Thread id within the locality.
    pub tid: u64,
    /// Thread name from trace metadata (empty when unnamed).
    pub thread: String,
    /// Union of non-`sched` span time on this lane (actual work).
    pub busy_ns: u64,
    /// Union of `park` span time (idle, waiting for work).
    pub park_ns: u64,
    /// `steal` instants recorded on this lane.
    pub steals: u64,
    /// `yield` instants recorded on this lane.
    pub yields: u64,
    /// Trace wall window the fractions are relative to.
    pub wall_ns: u64,
}

impl WorkerUtilization {
    /// Busy fraction of the trace window (0 when the window is empty).
    pub fn busy_frac(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.busy_ns as f64 / self.wall_ns as f64
        }
    }

    /// Parked fraction of the trace window.
    pub fn park_frac(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.park_ns as f64 / self.wall_ns as f64
        }
    }
}

/// Per-lane busy/park/steal/yield accounting, ordered by (pid, tid).
/// Every lane carrying at least one span or instant gets a row.
pub fn worker_utilization(summary: &TraceSummary) -> Vec<WorkerUtilization> {
    let wall_ns = summary.last_end_ns.saturating_sub(summary.first_ts_ns);
    let mut busy: BTreeMap<(u64, u64), Vec<(u64, u64)>> = BTreeMap::new();
    let mut park: BTreeMap<(u64, u64), Vec<(u64, u64)>> = BTreeMap::new();
    for rec in &summary.records {
        let key = (rec.pid, rec.tid);
        if rec.cat == "sched" {
            park.entry(key).or_default().push((rec.ts, rec.end));
            busy.entry(key).or_default();
        } else {
            busy.entry(key).or_default().push((rec.ts, rec.end));
        }
    }
    for key in summary.instants_by_thread.keys() {
        busy.entry(*key).or_default();
    }
    busy.into_iter()
        .map(|((pid, tid), spans)| {
            let instants = summary.instants_by_thread.get(&(pid, tid));
            let count = |name: &str| -> u64 {
                instants
                    .and_then(|m| m.get(name))
                    .copied()
                    .unwrap_or_default()
            };
            WorkerUtilization {
                pid,
                tid,
                thread: summary
                    .thread_names
                    .get(&(pid, tid))
                    .cloned()
                    .unwrap_or_default(),
                busy_ns: union_ns(&spans),
                park_ns: park.get(&(pid, tid)).map(|p| union_ns(p)).unwrap_or(0),
                steals: count("steal"),
                yields: count("yield"),
                wall_ns,
            }
        })
        .collect()
}

/// Imbalance ratio (max busy / mean busy) over the worker lanes — lanes
/// whose thread name contains `"worker"`, falling back to all lanes when
/// none are labelled. `1.0` is perfectly balanced; `0.0` means no busy
/// time at all. Matches the `/runtime/imbalance` counter definition.
pub fn imbalance_ratio(util: &[WorkerUtilization]) -> f64 {
    let workers: Vec<&WorkerUtilization> = {
        let labelled: Vec<&WorkerUtilization> = util
            .iter()
            .filter(|u| u.thread.contains("worker"))
            .collect();
        if labelled.is_empty() {
            util.iter().collect()
        } else {
            labelled
        }
    };
    let total: u64 = workers.iter().map(|u| u.busy_ns).sum();
    if workers.is_empty() || total == 0 {
        return 0.0;
    }
    let max = workers.iter().map(|u| u.busy_ns).max().unwrap_or(0) as f64;
    max / (total as f64 / workers.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::{export, validate};
    use crate::trace::{Cat, Event, EventKind, ThreadMeta, Trace};

    fn meta(pid: u32, tid: u32, name: &str) -> ThreadMeta {
        ThreadMeta {
            pid,
            tid,
            name: name.to_string(),
        }
    }

    fn span_ev(name: &'static str, cat: Cat, ts: u64, dur: u64) -> Event {
        Event {
            cat,
            name,
            ts_ns: ts,
            kind: EventKind::Span { dur_ns: dur },
        }
    }

    fn instant_ev(name: &'static str, cat: Cat, ts: u64) -> Event {
        Event {
            cat,
            name,
            ts_ns: ts,
            kind: EventKind::Instant,
        }
    }

    fn phases(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    /// Hand-computed fixture: two workers, overlapping same-name spans.
    ///
    /// ```text
    /// w0: gravity [0,1000)            hydro [3000,5000)
    /// w1: gravity [500,1500)  comm [1500,2000)   hydro [4000,6000)
    /// ```
    /// gravity union [0,1500), comm [1500,2000), hydro union [3000,6000)
    /// → chain g+c+h = 1500+500+3000 = 5000, wall 6000, slack 1000.
    fn fixture() -> TraceSummary {
        let trace = Trace {
            threads: vec![
                (
                    meta(0, 1, "worker0"),
                    vec![
                        span_ev("gravity_solve", Cat::Phase, 0, 1000),
                        instant_ev("steal", Cat::Sched, 2500),
                        span_ev("hydro_step", Cat::Phase, 3000, 2000),
                    ],
                ),
                (
                    meta(0, 2, "worker1"),
                    vec![
                        span_ev("gravity_solve", Cat::Phase, 500, 1000),
                        span_ev("comm_flush", Cat::Phase, 1500, 500),
                        span_ev("park", Cat::Sched, 2000, 1000),
                        span_ev("hydro_step", Cat::Phase, 4000, 2000),
                    ],
                ),
            ],
            dropped: 0,
        };
        validate(&export(&trace)).unwrap()
    }

    #[test]
    fn hand_computed_critical_path() {
        let s = fixture();
        let names = default_phases(&s);
        assert_eq!(
            names,
            phases(&["gravity_solve", "hydro_step", "comm_flush"])
        );
        let cp = critical_path(&s, &phases(&["gravity_solve", "comm_flush", "hydro_step"]));
        assert_eq!(cp.wall_ns, 6000);
        assert_eq!(cp.path_ns, 5000);
        assert_eq!(cp.slack_ns, 1000);
        assert_eq!(cp.segments.len(), 3);
        assert_eq!(cp.segments[0].name, "gravity_solve");
        assert_eq!((cp.segments[0].start_ns, cp.segments[0].end_ns), (0, 1500));
        assert_eq!(cp.segments[1].name, "comm_flush");
        assert_eq!(cp.segments[2].name, "hydro_step");
        assert_eq!(
            (cp.segments[2].start_ns, cp.segments[2].end_ns),
            (3000, 6000)
        );
        // hydro contributes most, then gravity, then comm.
        assert_eq!(cp.by_phase[0].name, "hydro_step");
        assert_eq!(cp.by_phase[0].path_ns, 3000);
        assert_eq!(cp.by_phase[0].active_ns, 3000);
        assert_eq!(cp.by_phase[0].spans, 2);
        assert_eq!(cp.by_phase[1].name, "gravity_solve");
        assert_eq!(cp.by_phase[1].path_ns, 1500);
    }

    #[test]
    fn path_bounds_hold() {
        let s = fixture();
        let names = default_phases(&s);
        let cp = critical_path(&s, &names);
        assert!(cp.path_ns <= cp.wall_ns);
        for p in &cp.by_phase {
            assert!(
                cp.path_ns >= p.active_ns,
                "path {} < active {} for {}",
                cp.path_ns,
                p.active_ns,
                p.name
            );
        }
    }

    #[test]
    fn hand_computed_utilization() {
        let s = fixture();
        let util = worker_utilization(&s);
        assert_eq!(util.len(), 2);
        let w0 = &util[0];
        assert_eq!((w0.pid, w0.tid, w0.thread.as_str()), (0, 1, "worker0"));
        assert_eq!(w0.busy_ns, 3000); // [0,1000) + [3000,5000)
        assert_eq!(w0.park_ns, 0);
        assert_eq!(w0.steals, 1);
        let w1 = &util[1];
        assert_eq!(w1.busy_ns, 3500); // [500,2000) + [4000,6000)
        assert_eq!(w1.park_ns, 1000);
        assert!((w0.busy_frac() - 0.5).abs() < 1e-12);
        // imbalance = max/mean = 3500 / 3250.
        let r = imbalance_ratio(&util);
        assert!((r - 3500.0 / 3250.0).abs() < 1e-12, "{r}");
    }

    #[test]
    fn empty_and_unknown_phases() {
        let s = fixture();
        let cp = critical_path(&s, &phases(&["no_such_phase"]));
        assert_eq!(cp.path_ns, 0);
        assert_eq!(cp.slack_ns, cp.wall_ns);
        assert!(cp.segments.is_empty());
        let empty = validate("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}").unwrap();
        let cp = critical_path(&empty, &phases(&["gravity_solve"]));
        assert_eq!((cp.wall_ns, cp.path_ns), (0, 0));
        assert!(worker_utilization(&empty).is_empty());
        assert_eq!(imbalance_ratio(&[]), 0.0);
    }

    /// Two localities with a 100 µs clock skew on locality 1 and traffic
    /// in both directions. On the corrected clock:
    ///
    /// ```text
    /// loc0: compute [0,1000)                        finish [3200,4000)
    ///         └─ net id7 [1000,1200) ─┐   ┌─ net id8 [3000,3200) ─┘
    /// loc1:                  compute [1500,3000)
    /// ```
    /// → path = 1000 + 200 + 1500 + 200 + 800 = 3700 of wall 4000.
    fn dist_fixture() -> TraceSummary {
        const SKEW: u64 = 100_000; // loc1's clock runs 100 µs ahead
        let trace = Trace {
            threads: vec![
                (
                    meta(0, 1, "worker0"),
                    vec![
                        span_ev("compute", Cat::Phase, 0, 1000),
                        Event {
                            cat: Cat::Comm,
                            name: "parcel",
                            ts_ns: 1000,
                            kind: EventKind::FlowStart { id: 7 },
                        },
                        Event {
                            cat: Cat::Comm,
                            name: "parcel",
                            ts_ns: 3200,
                            kind: EventKind::FlowEnd { id: 8 },
                        },
                        span_ev("finish", Cat::Phase, 3200, 800),
                    ],
                ),
                (
                    meta(1, 1, "worker0"),
                    vec![
                        Event {
                            cat: Cat::Comm,
                            name: "parcel",
                            ts_ns: SKEW + 1200,
                            kind: EventKind::FlowEnd { id: 7 },
                        },
                        span_ev("compute", Cat::Phase, SKEW + 1500, 1500),
                        Event {
                            cat: Cat::Comm,
                            name: "parcel",
                            ts_ns: SKEW + 3000,
                            kind: EventKind::FlowStart { id: 8 },
                        },
                    ],
                ),
            ],
            dropped: 0,
        };
        validate(&export(&trace)).unwrap()
    }

    #[test]
    fn clock_offsets_recover_skew_from_bidirectional_minima() {
        let s = dist_fixture();
        let off = clock_offsets(&s);
        assert_eq!(off.get(&0), Some(&0));
        // min(0→1) = 101_200 − 1000 = 100_200; min(1→0) = 3200 − 103_000
        // = −99_800 → δ₁ = (100_200 − (−99_800)) / 2 = 100_000.
        assert_eq!(off.get(&1), Some(&100_000));
    }

    #[test]
    fn distributed_path_routes_through_network_legs() {
        let s = dist_fixture();
        let dist = critical_path_distributed(&s, &phases(&["compute", "finish"]));
        assert_eq!(dist.path.wall_ns, 4000);
        assert_eq!(dist.path.path_ns, 3700);
        assert_eq!(dist.network_ns, 400);
        assert_eq!(dist.network_edges_on_path, 2);
        let names: Vec<&str> = dist.path.segments.iter().map(|g| g.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["compute", "network", "compute", "network", "finish"]
        );
        // Single-locality baselines are dominated by the distributed path.
        assert_eq!(dist.per_locality_path_ns.get(&0), Some(&1800));
        assert_eq!(dist.per_locality_path_ns.get(&1), Some(&1500));
        for (&pid, &local) in &dist.per_locality_path_ns {
            assert!(dist.path.path_ns >= local, "path < locality {pid} path");
        }
        assert!(dist.path.path_ns <= dist.path.wall_ns);
        // Network shows up in the per-phase table with its edge count.
        let net = dist
            .path
            .by_phase
            .iter()
            .find(|p| p.name == "network")
            .expect("network row");
        assert_eq!((net.path_ns, net.active_ns, net.spans), (400, 400, 2));
    }

    #[test]
    fn distributed_path_without_skew_correction_would_break_causality() {
        // Sanity on the clamp: feed a single edge (no reverse traffic, so
        // offsets stay 0) whose raw recv precedes its raw send — the
        // network leg must clamp to zero length, never underflow.
        let trace = Trace {
            threads: vec![
                (
                    meta(0, 1, "w"),
                    vec![Event {
                        cat: Cat::Comm,
                        name: "parcel",
                        ts_ns: 5000,
                        kind: EventKind::FlowStart { id: 1 },
                    }],
                ),
                (
                    meta(1, 1, "w"),
                    vec![
                        Event {
                            cat: Cat::Comm,
                            name: "parcel",
                            ts_ns: 200,
                            kind: EventKind::FlowEnd { id: 1 },
                        },
                        span_ev("compute", Cat::Phase, 6000, 1000),
                    ],
                ),
            ],
            dropped: 0,
        };
        let s = validate(&export(&trace)).unwrap();
        let dist = critical_path_distributed(&s, &phases(&["compute"]));
        assert_eq!(dist.network_ns, 0);
        // The zero-length leg still chains: send@5000 → recv clamps to
        // 5000 on loc1 → compute [6000,7000) is reachable.
        assert_eq!(dist.path.path_ns, 1000);
        assert!(dist.path.path_ns <= dist.path.wall_ns);
    }

    #[test]
    fn distributed_matches_single_locality_analysis_on_one_pid() {
        let s = fixture();
        let names = default_phases(&s);
        let cp = critical_path(&s, &names);
        let dist = critical_path_distributed(&s, &names);
        assert_eq!(dist.path.path_ns, cp.path_ns);
        assert_eq!(dist.network_ns, 0);
        assert_eq!(dist.network_edges_on_path, 0);
        assert_eq!(dist.per_locality_path_ns.get(&0), Some(&cp.path_ns));
        assert!(dist.offsets.values().all(|&o| o == 0));
    }

    #[test]
    fn interval_union_merges_touching_and_overlapping() {
        assert_eq!(
            merge_intervals(&[(5, 9), (0, 3), (3, 5), (20, 30)]),
            vec![(0, 9), (20, 30)]
        );
        assert_eq!(union_ns(&[(0, 10), (5, 15), (40, 41)]), 16);
        assert_eq!(union_ns(&[]), 0);
    }
}
