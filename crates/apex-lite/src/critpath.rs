//! Critical-path and per-worker utilization analysis over a validated
//! trace — the "what limited this run?" half of apex-lite.
//!
//! ## Critical-path definition
//!
//! The futurized step emits many concurrent same-name spans (one
//! `gravity_solve` per leaf task), so a naive longest-chain over raw spans
//! either double-counts concurrency or misses it. We instead analyse
//! *phase activity segments*: for each phase name, the wall-clock union of
//! all its spans (across every thread) is merged into disjoint segments —
//! "some gravity work was in flight during [s, e)". The critical path is
//! then the longest happens-before chain over the pooled segments: a
//! sequence `seg_1, …, seg_k` with `end(seg_i) ≤ start(seg_{i+1})`
//! maximising total covered time (weighted-interval-scheduling DP,
//! O(n log n)).
//!
//! Two properties follow by construction and are what the tests gate on:
//!
//! * **path ≤ wall** — chain segments are pairwise disjoint and live
//!   inside the trace's `[first_ts, last_end]` window;
//! * **path ≥ max single-phase active time** — one phase's own merged
//!   segments are disjoint and ordered, hence themselves a feasible
//!   chain, so the optimum can only be longer.
//!
//! `wall − path` is the *slack*: wall-clock time where no chained phase
//! segment was open (scheduler gaps, non-phase work). Per-phase rows
//! split the path into contributions so "gravity is 60% of the critical
//! path" is a one-line read.

use crate::chrome::TraceSummary;
use std::collections::BTreeMap;

/// One merged activity segment of a named phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSegment {
    /// Phase (span) name this segment belongs to.
    pub name: String,
    /// Segment start, ns on the trace clock.
    pub start_ns: u64,
    /// Segment end, ns on the trace clock.
    pub end_ns: u64,
}

impl PhaseSegment {
    fn dur(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// Per-phase breakdown of the critical path.
#[derive(Debug, Clone)]
pub struct PhaseContribution {
    /// Phase name.
    pub name: String,
    /// Nanoseconds this phase contributes to the critical path.
    pub path_ns: u64,
    /// Total active (union) time of the phase across the whole run.
    pub active_ns: u64,
    /// Number of raw spans carrying this name.
    pub spans: u64,
}

/// Result of [`critical_path`].
#[derive(Debug, Clone, Default)]
pub struct CriticalPath {
    /// Trace wall-clock window (last span/instant end − first start).
    pub wall_ns: u64,
    /// Total length of the longest chain.
    pub path_ns: u64,
    /// Wall time not covered by the chain (`wall_ns − path_ns`).
    pub slack_ns: u64,
    /// The chain itself, in time order.
    pub segments: Vec<PhaseSegment>,
    /// Per-phase contributions, largest `path_ns` first.
    pub by_phase: Vec<PhaseContribution>,
}

/// Merge raw `[start, end)` intervals into a disjoint, ordered union.
/// Touching intervals (`end == next start`) coalesce.
pub fn merge_intervals(intervals: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut sorted = intervals.to_vec();
    sorted.sort_unstable();
    let mut merged: Vec<(u64, u64)> = Vec::new();
    for (s, e) in sorted {
        match merged.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => merged.push((s, e)),
        }
    }
    merged
}

/// Total nanoseconds covered by the union of `intervals`.
pub fn union_ns(intervals: &[(u64, u64)]) -> u64 {
    merge_intervals(intervals).iter().map(|(s, e)| e - s).sum()
}

/// Phase names to analyse when the caller doesn't pick any: every span
/// name recorded under the `phase` category, in first-seen order.
pub fn default_phases(summary: &TraceSummary) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for rec in &summary.records {
        if rec.cat == "phase" && !names.iter().any(|n| n == &rec.name) {
            names.push(rec.name.clone());
        }
    }
    names
}

/// Compute the critical path through `phases` (see module docs for the
/// definition). Unknown phase names contribute nothing; an empty trace or
/// an empty phase list yields an empty path with `wall_ns` still set.
pub fn critical_path(summary: &TraceSummary, phases: &[String]) -> CriticalPath {
    let wall_ns = summary.last_end_ns.saturating_sub(summary.first_ts_ns);

    // Pool each phase's merged activity segments.
    let mut pool: Vec<PhaseSegment> = Vec::new();
    let mut active: BTreeMap<&str, u64> = BTreeMap::new();
    for name in phases {
        let Some(intervals) = summary.intervals_by_name.get(name) else {
            continue;
        };
        let merged = merge_intervals(intervals);
        active.insert(name, merged.iter().map(|(s, e)| e - s).sum());
        pool.extend(merged.into_iter().map(|(s, e)| PhaseSegment {
            name: name.clone(),
            start_ns: s,
            end_ns: e,
        }));
    }
    if pool.is_empty() {
        return CriticalPath {
            wall_ns,
            slack_ns: wall_ns,
            ..CriticalPath::default()
        };
    }

    // Weighted-interval-scheduling DP over segments sorted by end:
    // best[i] = max total duration of a chain ending at or before seg i.
    pool.sort_by(|a, b| a.end_ns.cmp(&b.end_ns).then(a.start_ns.cmp(&b.start_ns)));
    let n = pool.len();
    let mut dp = vec![0u64; n]; // best chain ending exactly with segment i
    let mut prev = vec![usize::MAX; n]; // predecessor segment index
    let mut best_upto = vec![0u64; n]; // max dp[0..=i]
    let mut best_idx = vec![0usize; n]; // argmax of best_upto
    for i in 0..n {
        // Rightmost j with end <= start_i (pool sorted by end).
        let s = pool[i].start_ns;
        let j = pool.partition_point(|seg| seg.end_ns <= s);
        let (chain_before, pred) = if j == 0 {
            (0, usize::MAX)
        } else {
            (best_upto[j - 1], best_idx[j - 1])
        };
        dp[i] = chain_before + pool[i].dur();
        prev[i] = if chain_before > 0 { pred } else { usize::MAX };
        let (bu, bi) = if i == 0 || dp[i] >= best_upto[i - 1] {
            (dp[i], i)
        } else {
            (best_upto[i - 1], best_idx[i - 1])
        };
        best_upto[i] = bu;
        best_idx[i] = bi;
    }

    // Reconstruct the optimal chain.
    let mut segments: Vec<PhaseSegment> = Vec::new();
    let mut at = best_idx[n - 1];
    loop {
        segments.push(pool[at].clone());
        if prev[at] == usize::MAX {
            break;
        }
        at = prev[at];
    }
    segments.reverse();
    let path_ns = segments.iter().map(PhaseSegment::dur).sum();

    let mut path_by_phase: BTreeMap<&str, u64> = BTreeMap::new();
    for seg in &segments {
        *path_by_phase.entry(seg.name.as_str()).or_insert(0) += seg.dur();
    }
    let mut by_phase: Vec<PhaseContribution> = phases
        .iter()
        .filter(|n| active.contains_key(n.as_str()))
        .map(|n| PhaseContribution {
            name: n.clone(),
            path_ns: path_by_phase.get(n.as_str()).copied().unwrap_or(0),
            active_ns: active.get(n.as_str()).copied().unwrap_or(0),
            spans: summary.count_name(n),
        })
        .collect();
    by_phase.sort_by(|a, b| b.path_ns.cmp(&a.path_ns).then(a.name.cmp(&b.name)));

    CriticalPath {
        wall_ns,
        path_ns,
        slack_ns: wall_ns.saturating_sub(path_ns),
        segments,
        by_phase,
    }
}

/// One lane's utilization over the trace window.
#[derive(Debug, Clone)]
pub struct WorkerUtilization {
    /// Locality id.
    pub pid: u64,
    /// Thread id within the locality.
    pub tid: u64,
    /// Thread name from trace metadata (empty when unnamed).
    pub thread: String,
    /// Union of non-`sched` span time on this lane (actual work).
    pub busy_ns: u64,
    /// Union of `park` span time (idle, waiting for work).
    pub park_ns: u64,
    /// `steal` instants recorded on this lane.
    pub steals: u64,
    /// `yield` instants recorded on this lane.
    pub yields: u64,
    /// Trace wall window the fractions are relative to.
    pub wall_ns: u64,
}

impl WorkerUtilization {
    /// Busy fraction of the trace window (0 when the window is empty).
    pub fn busy_frac(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.busy_ns as f64 / self.wall_ns as f64
        }
    }

    /// Parked fraction of the trace window.
    pub fn park_frac(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.park_ns as f64 / self.wall_ns as f64
        }
    }
}

/// Per-lane busy/park/steal/yield accounting, ordered by (pid, tid).
/// Every lane carrying at least one span or instant gets a row.
pub fn worker_utilization(summary: &TraceSummary) -> Vec<WorkerUtilization> {
    let wall_ns = summary.last_end_ns.saturating_sub(summary.first_ts_ns);
    let mut busy: BTreeMap<(u64, u64), Vec<(u64, u64)>> = BTreeMap::new();
    let mut park: BTreeMap<(u64, u64), Vec<(u64, u64)>> = BTreeMap::new();
    for rec in &summary.records {
        let key = (rec.pid, rec.tid);
        if rec.cat == "sched" {
            park.entry(key).or_default().push((rec.ts, rec.end));
            busy.entry(key).or_default();
        } else {
            busy.entry(key).or_default().push((rec.ts, rec.end));
        }
    }
    for key in summary.instants_by_thread.keys() {
        busy.entry(*key).or_default();
    }
    busy.into_iter()
        .map(|((pid, tid), spans)| {
            let instants = summary.instants_by_thread.get(&(pid, tid));
            let count = |name: &str| -> u64 {
                instants
                    .and_then(|m| m.get(name))
                    .copied()
                    .unwrap_or_default()
            };
            WorkerUtilization {
                pid,
                tid,
                thread: summary
                    .thread_names
                    .get(&(pid, tid))
                    .cloned()
                    .unwrap_or_default(),
                busy_ns: union_ns(&spans),
                park_ns: park.get(&(pid, tid)).map(|p| union_ns(p)).unwrap_or(0),
                steals: count("steal"),
                yields: count("yield"),
                wall_ns,
            }
        })
        .collect()
}

/// Imbalance ratio (max busy / mean busy) over the worker lanes — lanes
/// whose thread name contains `"worker"`, falling back to all lanes when
/// none are labelled. `1.0` is perfectly balanced; `0.0` means no busy
/// time at all. Matches the `/runtime/imbalance` counter definition.
pub fn imbalance_ratio(util: &[WorkerUtilization]) -> f64 {
    let workers: Vec<&WorkerUtilization> = {
        let labelled: Vec<&WorkerUtilization> = util
            .iter()
            .filter(|u| u.thread.contains("worker"))
            .collect();
        if labelled.is_empty() {
            util.iter().collect()
        } else {
            labelled
        }
    };
    let total: u64 = workers.iter().map(|u| u.busy_ns).sum();
    if workers.is_empty() || total == 0 {
        return 0.0;
    }
    let max = workers.iter().map(|u| u.busy_ns).max().unwrap_or(0) as f64;
    max / (total as f64 / workers.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::{export, validate};
    use crate::trace::{Cat, Event, EventKind, ThreadMeta, Trace};

    fn meta(pid: u32, tid: u32, name: &str) -> ThreadMeta {
        ThreadMeta {
            pid,
            tid,
            name: name.to_string(),
        }
    }

    fn span_ev(name: &'static str, cat: Cat, ts: u64, dur: u64) -> Event {
        Event {
            cat,
            name,
            ts_ns: ts,
            kind: EventKind::Span { dur_ns: dur },
        }
    }

    fn instant_ev(name: &'static str, cat: Cat, ts: u64) -> Event {
        Event {
            cat,
            name,
            ts_ns: ts,
            kind: EventKind::Instant,
        }
    }

    fn phases(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    /// Hand-computed fixture: two workers, overlapping same-name spans.
    ///
    /// ```text
    /// w0: gravity [0,1000)            hydro [3000,5000)
    /// w1: gravity [500,1500)  comm [1500,2000)   hydro [4000,6000)
    /// ```
    /// gravity union [0,1500), comm [1500,2000), hydro union [3000,6000)
    /// → chain g+c+h = 1500+500+3000 = 5000, wall 6000, slack 1000.
    fn fixture() -> TraceSummary {
        let trace = Trace {
            threads: vec![
                (
                    meta(0, 1, "worker0"),
                    vec![
                        span_ev("gravity_solve", Cat::Phase, 0, 1000),
                        instant_ev("steal", Cat::Sched, 2500),
                        span_ev("hydro_step", Cat::Phase, 3000, 2000),
                    ],
                ),
                (
                    meta(0, 2, "worker1"),
                    vec![
                        span_ev("gravity_solve", Cat::Phase, 500, 1000),
                        span_ev("comm_flush", Cat::Phase, 1500, 500),
                        span_ev("park", Cat::Sched, 2000, 1000),
                        span_ev("hydro_step", Cat::Phase, 4000, 2000),
                    ],
                ),
            ],
            dropped: 0,
        };
        validate(&export(&trace)).unwrap()
    }

    #[test]
    fn hand_computed_critical_path() {
        let s = fixture();
        let names = default_phases(&s);
        assert_eq!(
            names,
            phases(&["gravity_solve", "hydro_step", "comm_flush"])
        );
        let cp = critical_path(&s, &phases(&["gravity_solve", "comm_flush", "hydro_step"]));
        assert_eq!(cp.wall_ns, 6000);
        assert_eq!(cp.path_ns, 5000);
        assert_eq!(cp.slack_ns, 1000);
        assert_eq!(cp.segments.len(), 3);
        assert_eq!(cp.segments[0].name, "gravity_solve");
        assert_eq!((cp.segments[0].start_ns, cp.segments[0].end_ns), (0, 1500));
        assert_eq!(cp.segments[1].name, "comm_flush");
        assert_eq!(cp.segments[2].name, "hydro_step");
        assert_eq!(
            (cp.segments[2].start_ns, cp.segments[2].end_ns),
            (3000, 6000)
        );
        // hydro contributes most, then gravity, then comm.
        assert_eq!(cp.by_phase[0].name, "hydro_step");
        assert_eq!(cp.by_phase[0].path_ns, 3000);
        assert_eq!(cp.by_phase[0].active_ns, 3000);
        assert_eq!(cp.by_phase[0].spans, 2);
        assert_eq!(cp.by_phase[1].name, "gravity_solve");
        assert_eq!(cp.by_phase[1].path_ns, 1500);
    }

    #[test]
    fn path_bounds_hold() {
        let s = fixture();
        let names = default_phases(&s);
        let cp = critical_path(&s, &names);
        assert!(cp.path_ns <= cp.wall_ns);
        for p in &cp.by_phase {
            assert!(
                cp.path_ns >= p.active_ns,
                "path {} < active {} for {}",
                cp.path_ns,
                p.active_ns,
                p.name
            );
        }
    }

    #[test]
    fn hand_computed_utilization() {
        let s = fixture();
        let util = worker_utilization(&s);
        assert_eq!(util.len(), 2);
        let w0 = &util[0];
        assert_eq!((w0.pid, w0.tid, w0.thread.as_str()), (0, 1, "worker0"));
        assert_eq!(w0.busy_ns, 3000); // [0,1000) + [3000,5000)
        assert_eq!(w0.park_ns, 0);
        assert_eq!(w0.steals, 1);
        let w1 = &util[1];
        assert_eq!(w1.busy_ns, 3500); // [500,2000) + [4000,6000)
        assert_eq!(w1.park_ns, 1000);
        assert!((w0.busy_frac() - 0.5).abs() < 1e-12);
        // imbalance = max/mean = 3500 / 3250.
        let r = imbalance_ratio(&util);
        assert!((r - 3500.0 / 3250.0).abs() < 1e-12, "{r}");
    }

    #[test]
    fn empty_and_unknown_phases() {
        let s = fixture();
        let cp = critical_path(&s, &phases(&["no_such_phase"]));
        assert_eq!(cp.path_ns, 0);
        assert_eq!(cp.slack_ns, cp.wall_ns);
        assert!(cp.segments.is_empty());
        let empty = validate("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}").unwrap();
        let cp = critical_path(&empty, &phases(&["gravity_solve"]));
        assert_eq!((cp.wall_ns, cp.path_ns), (0, 0));
        assert!(worker_utilization(&empty).is_empty());
        assert_eq!(imbalance_ratio(&[]), 0.0);
    }

    #[test]
    fn interval_union_merges_touching_and_overlapping() {
        assert_eq!(
            merge_intervals(&[(5, 9), (0, 3), (3, 5), (20, 30)]),
            vec![(0, 9), (20, 30)]
        );
        assert_eq!(union_ns(&[(0, 10), (5, 15), (40, 41)]), 16);
        assert_eq!(union_ns(&[]), 0);
    }
}
