//! Lock-light span tracer — the APEX stand-in.
//!
//! HPX ships with APEX ("Autonomic Performance Environment for eXascale"),
//! which attaches a begin/end event to every hpx-thread and flushes them as
//! OTF2/Chrome traces. This module reproduces the part the paper's analysis
//! actually leans on: scoped spans with nanosecond timestamps, recorded into
//! **per-thread ring buffers** so the hot path never takes a shared lock,
//! and drained post-run into a [`Trace`] for the Chrome exporter.
//!
//! Cost discipline:
//!
//! * **Disabled** (the default): [`span`] reads one relaxed atomic and
//!   returns a disarmed guard. No clock read, no allocation, no
//!   thread-local buffer is ever created — verified by the
//!   [`tracer_allocs`] test hook.
//! * **Enabled**: a span costs two `Instant` reads and one write into a
//!   pre-allocated ring slot behind the thread's own (uncontended) mutex.
//!   The ring overwrites its oldest events when full ([`RING_CAPACITY`]),
//!   counting drops, so tracing can stay on for arbitrarily long runs in
//!   bounded memory. Because a span is recorded at *completion*, parents
//!   complete after their children; overwriting the oldest records drops
//!   leaf children first and never breaks the nesting of what remains.
//!
//! Threads are identified by a process-wide unique `tid` plus a `pid`
//! label. Single-node runs leave `pid = 0`; the distrib cluster labels each
//! locality's workers with the locality id, so a merged trace shows one
//! Chrome "process" lane per locality.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Events retained per thread before the ring starts overwriting the
/// oldest (drops are counted in [`Trace::dropped`]).
pub const RING_CAPACITY: usize = 65_536;

/// Span/event category — becomes the Chrome trace `cat` field, one per
/// instrumented layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Cat {
    /// Scheduler task execution (`amt` worker running one task).
    Task,
    /// Scheduler machinery: steals, parks, yields.
    Sched,
    /// Application driver phases (hydro step, gravity solve, regrid...).
    Phase,
    /// Gravity solver internals (P2P/M2L batches, cache rebuilds).
    Gravity,
    /// Communication: parcelport transmits, progress, coalescer flushes.
    Comm,
}

impl Cat {
    /// The Chrome-trace category string.
    pub fn as_str(self) -> &'static str {
        match self {
            Cat::Task => "task",
            Cat::Sched => "sched",
            Cat::Phase => "phase",
            Cat::Gravity => "gravity",
            Cat::Comm => "comm",
        }
    }
}

/// What one recorded event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span (`ph: "X"` in Chrome terms).
    Span {
        /// Span duration in nanoseconds.
        dur_ns: u64,
    },
    /// A point event (`ph: "i"`).
    Instant,
    /// Start of a causal flow arrow (`ph: "s"`): the send side of a
    /// cross-thread/cross-locality edge, paired by `id`.
    FlowStart {
        /// Flow id matching the corresponding [`EventKind::FlowEnd`].
        id: u64,
    },
    /// End of a causal flow arrow (`ph: "f"`, binding point `"e"`).
    FlowEnd {
        /// Flow id matching the corresponding [`EventKind::FlowStart`].
        id: u64,
    },
}

/// One recorded event. `name` is `&'static str` by design: recording never
/// allocates or copies strings.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Category (layer).
    pub cat: Cat,
    /// Event name.
    pub name: &'static str,
    /// Start time, nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// Span or instant.
    pub kind: EventKind,
}

/// Identity of one recorded thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadMeta {
    /// Chrome process lane (locality id for cluster runs, 0 otherwise).
    pub pid: u32,
    /// Process-wide unique thread id.
    pub tid: u32,
    /// Human-readable lane name ("worker3", "parcel-rx", ...).
    pub name: String,
}

/// How a thread announces itself to the tracer before its first event.
/// `Copy` on purpose: labelling must not allocate (it runs on scheduler
/// startup paths that the zero-alloc guarantee covers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadLabel {
    /// A scheduler worker: named `worker{index}`.
    Worker(u32),
    /// Any other named runtime thread.
    Named(&'static str),
}

/// Everything drained from the ring buffers: per-thread event streams in
/// completion order.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// One entry per thread that recorded at least one event (ever).
    pub threads: Vec<(ThreadMeta, Vec<Event>)>,
    /// Events lost to ring overwrites across all threads.
    pub dropped: u64,
}

impl Trace {
    /// Total events across threads.
    pub fn len(&self) -> usize {
        self.threads.iter().map(|(_, e)| e.len()).sum()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Count events whose name matches `name` (spans and instants).
    pub fn count_name(&self, name: &str) -> u64 {
        self.threads
            .iter()
            .flat_map(|(_, ev)| ev.iter())
            .filter(|e| e.name == name)
            .count() as u64
    }

    /// Count events in category `cat`.
    pub fn count_cat(&self, cat: Cat) -> u64 {
        self.threads
            .iter()
            .flat_map(|(_, ev)| ev.iter())
            .filter(|e| e.cat == cat)
            .count() as u64
    }
}

struct Ring {
    events: Vec<Event>,
    /// Next overwrite position once `events` has reached capacity.
    write: usize,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, e: Event) {
        if self.events.len() < RING_CAPACITY {
            self.events.push(e);
        } else {
            self.events[self.write] = e;
            self.write = (self.write + 1) % RING_CAPACITY;
            self.dropped += 1;
        }
    }

    /// Take the events in completion order, leaving the ring empty.
    fn drain(&mut self) -> (Vec<Event>, u64) {
        let dropped = std::mem::take(&mut self.dropped);
        let mut events = std::mem::take(&mut self.events);
        if self.write > 0 {
            events.rotate_left(self.write);
            self.write = 0;
        }
        (events, dropped)
    }
}

struct ThreadBuf {
    meta: Mutex<ThreadMeta>,
    ring: Mutex<Ring>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU32 = AtomicU32::new(0);
/// Test hook: allocations performed by the tracer (ring-buffer creation).
static TRACER_ALLOCS: AtomicU64 = AtomicU64::new(0);

fn registry() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    static BUF: RefCell<Option<Arc<ThreadBuf>>> = const { RefCell::new(None) };
    /// Label announced before the thread's buffer exists (Copy — no alloc).
    static PENDING: RefCell<Option<(u32, ThreadLabel)>> = const { RefCell::new(None) };
}

/// Turn recording on or off, process-wide. Off is the default and costs
/// one relaxed load per [`span`] call.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether recording is on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Allocations the tracer has performed since process start — the
/// zero-cost-when-disabled test hook. Disabled tracing must leave this
/// unchanged across any amount of scheduler work.
pub fn tracer_allocs() -> u64 {
    TRACER_ALLOCS.load(Ordering::Relaxed)
}

/// Announce this thread's trace identity (pid lane + label) before it
/// records anything. Never allocates; the name string is only materialized
/// if/when the thread actually records an event with tracing enabled.
pub fn set_thread_label(pid: u32, label: ThreadLabel) {
    let updated = BUF.with(|b| {
        if let Some(buf) = b.borrow().as_ref() {
            let mut meta = buf.meta.lock().expect("tracer meta poisoned");
            meta.pid = pid;
            meta.name = label_name(label);
            true
        } else {
            false
        }
    });
    if !updated {
        PENDING.with(|p| *p.borrow_mut() = Some((pid, label)));
    }
}

fn label_name(label: ThreadLabel) -> String {
    match label {
        ThreadLabel::Worker(i) => format!("worker{i}"),
        ThreadLabel::Named(n) => n.to_string(),
    }
}

/// Nanoseconds since the process trace epoch.
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

fn with_buf(f: impl FnOnce(&mut Ring)) {
    BUF.with(|b| {
        let mut slot = b.borrow_mut();
        if slot.is_none() {
            let (pid, label) = PENDING
                .with(|p| *p.borrow())
                .unwrap_or((0, ThreadLabel::Named("thread")));
            let name = match (label, std::thread::current().name()) {
                (ThreadLabel::Named("thread"), Some(os_name)) => os_name.to_string(),
                _ => label_name(label),
            };
            let buf = Arc::new(ThreadBuf {
                meta: Mutex::new(ThreadMeta {
                    pid,
                    tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                    name,
                }),
                ring: Mutex::new(Ring {
                    events: Vec::with_capacity(RING_CAPACITY),
                    write: 0,
                    dropped: 0,
                }),
            });
            TRACER_ALLOCS.fetch_add(1, Ordering::Relaxed);
            registry()
                .lock()
                .expect("tracer registry poisoned")
                .push(Arc::clone(&buf));
            *slot = Some(buf);
        }
        let buf = slot.as_ref().expect("just installed");
        f(&mut buf.ring.lock().expect("tracer ring poisoned"));
    });
}

/// RAII guard for one traced span. Records a completed span (start →
/// drop) into the calling thread's ring buffer; a disarmed guard (tracing
/// off at creation) does nothing on drop.
#[must_use = "a span measures the scope it lives in"]
pub struct SpanGuard {
    start_ns: u64,
    cat: Cat,
    name: &'static str,
    armed: bool,
}

/// Open a span of `cat`/`name` covering the guard's lifetime.
#[inline]
pub fn span(cat: Cat, name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            start_ns: 0,
            cat,
            name,
            armed: false,
        };
    }
    SpanGuard {
        start_ns: now_ns(),
        cat,
        name,
        armed: true,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let end = now_ns();
        let ev = Event {
            cat: self.cat,
            name: self.name,
            ts_ns: self.start_ns,
            kind: EventKind::Span {
                dur_ns: end.saturating_sub(self.start_ns),
            },
        };
        with_buf(|ring| ring.push(ev));
    }
}

/// Record a point event.
#[inline]
pub fn instant(cat: Cat, name: &'static str) {
    if !enabled() {
        return;
    }
    let ev = Event {
        cat,
        name,
        ts_ns: now_ns(),
        kind: EventKind::Instant,
    };
    with_buf(|ring| ring.push(ev));
}

/// Record the start of causal flow `id` (the send side of a parcel edge).
/// Use the same `name` on both ends — Perfetto pairs `"s"`/`"f"` events by
/// (name, id) and draws the arrow between their enclosing slices.
#[inline]
pub fn flow_start(cat: Cat, name: &'static str, id: u64) {
    if !enabled() {
        return;
    }
    let ev = Event {
        cat,
        name,
        ts_ns: now_ns(),
        kind: EventKind::FlowStart { id },
    };
    with_buf(|ring| ring.push(ev));
}

/// Record the end of causal flow `id` (the receive side of a parcel edge).
#[inline]
pub fn flow_end(cat: Cat, name: &'static str, id: u64) {
    if !enabled() {
        return;
    }
    let ev = Event {
        cat,
        name,
        ts_ns: now_ns(),
        kind: EventKind::FlowEnd { id },
    };
    with_buf(|ring| ring.push(ev));
}

/// Drain every thread's ring buffer into one [`Trace`], leaving the
/// buffers empty. Threads that have died since recording are included;
/// threads that never recorded are not.
pub fn drain() -> Trace {
    let bufs: Vec<Arc<ThreadBuf>> = registry()
        .lock()
        .expect("tracer registry poisoned")
        .iter()
        .map(Arc::clone)
        .collect();
    let mut trace = Trace::default();
    for buf in bufs {
        let meta = buf.meta.lock().expect("tracer meta poisoned").clone();
        let (events, dropped) = buf.ring.lock().expect("tracer ring poisoned").drain();
        trace.dropped += dropped;
        if !events.is_empty() {
            trace.threads.push((meta, events));
        }
    }
    trace.threads.sort_by_key(|(m, _)| (m.pid, m.tid));
    trace
}

/// Discard everything recorded so far (all threads).
pub fn reset() {
    let _ = drain();
}

#[cfg(test)]
mod tests {
    use super::*;

    // Trace state is process-global; tests in this module serialize on one
    // lock so they cannot see each other's events.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        let g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        reset();
        set_enabled(false);
        g
    }

    #[test]
    fn disabled_records_nothing_and_never_allocates() {
        let _g = guard();
        let before = tracer_allocs();
        for _ in 0..100 {
            let _s = span(Cat::Task, "execute");
            instant(Cat::Sched, "steal");
        }
        assert_eq!(tracer_allocs(), before, "disabled tracer allocated");
        assert!(drain().is_empty());
    }

    #[test]
    fn enabled_records_spans_in_completion_order() {
        let _g = guard();
        set_enabled(true);
        {
            let _outer = span(Cat::Phase, "outer");
            {
                let _inner = span(Cat::Phase, "inner");
            }
            instant(Cat::Sched, "tick");
        }
        set_enabled(false);
        let t = drain();
        assert_eq!(t.len(), 3);
        let events: Vec<&Event> = t.threads.iter().flat_map(|(_, e)| e.iter()).collect();
        // Completion order: inner closes before outer.
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[1].name, "tick");
        assert_eq!(events[2].name, "outer");
        let (inner, outer) = (events[0], events[2]);
        let (EventKind::Span { dur_ns: di }, EventKind::Span { dur_ns: do_ }) =
            (inner.kind, outer.kind)
        else {
            panic!("expected spans");
        };
        assert!(outer.ts_ns <= inner.ts_ns, "outer starts first");
        assert!(
            outer.ts_ns + do_ >= inner.ts_ns + di,
            "outer ends last: outer {}+{} vs inner {}+{}",
            outer.ts_ns,
            do_,
            inner.ts_ns,
            di
        );
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let _g = guard();
        set_enabled(true);
        for _ in 0..RING_CAPACITY + 10 {
            instant(Cat::Sched, "tick");
        }
        set_enabled(false);
        let t = drain();
        assert_eq!(t.len(), RING_CAPACITY);
        assert_eq!(t.dropped, 10);
        // Retained events are the most recent and still time-ordered.
        let events: Vec<&Event> = t.threads.iter().flat_map(|(_, e)| e.iter()).collect();
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn labels_apply_to_later_buffers_and_live_ones() {
        let _g = guard();
        set_enabled(true);
        std::thread::spawn(|| {
            set_thread_label(7, ThreadLabel::Worker(3));
            instant(Cat::Sched, "hello");
            // Relabelling a live buffer also works.
            set_thread_label(7, ThreadLabel::Named("renamed"));
            instant(Cat::Sched, "bye");
        })
        .join()
        .unwrap();
        set_enabled(false);
        let t = drain();
        let (meta, events) = &t.threads[0];
        assert_eq!(meta.pid, 7);
        assert_eq!(meta.name, "renamed");
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn flow_events_record_ids_and_gate_on_enabled() {
        let _g = guard();
        flow_start(Cat::Comm, "parcel", 1);
        flow_end(Cat::Comm, "parcel", 1);
        assert!(drain().is_empty(), "disabled flows record nothing");
        set_enabled(true);
        flow_start(Cat::Comm, "parcel", 42);
        flow_end(Cat::Comm, "parcel", 42);
        set_enabled(false);
        let t = drain();
        assert_eq!(t.len(), 2);
        let events: Vec<&Event> = t.threads.iter().flat_map(|(_, e)| e.iter()).collect();
        assert_eq!(events[0].kind, EventKind::FlowStart { id: 42 });
        assert_eq!(events[1].kind, EventKind::FlowEnd { id: 42 });
    }

    #[test]
    fn count_helpers() {
        let _g = guard();
        set_enabled(true);
        instant(Cat::Comm, "transmit");
        instant(Cat::Comm, "transmit");
        {
            let _s = span(Cat::Gravity, "cache_rebuild");
        }
        set_enabled(false);
        let t = drain();
        assert_eq!(t.count_name("transmit"), 2);
        assert_eq!(t.count_cat(Cat::Gravity), 1);
        assert_eq!(t.count_name("nothing"), 0);
    }
}
