//! Hierarchical counter registry — the HPX performance-counter stand-in.
//!
//! HPX exposes `/threads{locality#0/total}/count/cumulative`-style counter
//! paths, sampled on demand. This module unifies the workspace's scattered
//! statistics (`amt::RuntimeStats`, `distrib::PortStats`, gravity cache
//! hit/miss counts, work/flop estimates, energy model output) behind the
//! same idea:
//!
//! * a [`CounterSnapshot`] maps slash-separated paths
//!   (`/runtime/worker0/steals`) to typed values ([`CounterValue`]);
//! * [`CounterSnapshot::delta`] turns two lifetime snapshots into a
//!   per-interval sample without resetting any shared state mid-run;
//! * a [`CounterRegistry`] holds long-lived *providers* (closures over
//!   cloneable stat handles) so one `sample()` call assembles the whole
//!   namespace;
//! * [`render_table`] / [`render_step_table`] print the plain-text views
//!   the `--counter-table` flag emits.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets in a [`Histogram`]: 16 exact unit buckets for values
/// below 16, then 4 sub-buckets per power of two up to `u64::MAX`
/// (octaves 4..=63 → 60 × 4 = 240 log-linear buckets).
pub const HISTOGRAM_BUCKETS: usize = 256;

/// Worst-case relative error of a [`Histogram::quantile`] estimate.
///
/// Log-linear buckets in octave `o` are `2^(o-2)` wide on a lower bound of
/// at least `2^o`, so the true value is within ±½ bucket of the returned
/// midpoint: `(2^(o-2) / 2) / 2^o = 1/8`. Values below 16 land in exact
/// unit buckets (zero error).
pub const HISTOGRAM_MAX_RELATIVE_ERROR: f64 = 0.125;

/// Log-bucketed value distribution — the HPX/APEX latency-percentile
/// primitive (HdrHistogram-style log-linear buckets).
///
/// Fixed-size and `Copy`, so it travels inside [`CounterValue`] through
/// snapshots, deltas and cross-locality merges without allocation. Bucket
/// counts add element-wise, which makes [`Histogram::merge`] associative
/// and commutative: locality snapshots can be combined in any order and
/// grouping and yield the identical distribution.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

/// Bucket index of `v` under the log-linear scheme.
fn bucket_index(v: u64) -> usize {
    if v < 16 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros() as usize; // >= 4
    let sub = ((v >> (octave - 2)) & 3) as usize;
    16 + (octave - 4) * 4 + sub
}

/// Inclusive-lower/exclusive-upper value bounds of bucket `i`.
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < 16 {
        return (i as u64, i as u64 + 1);
    }
    let k = i - 16;
    let octave = 4 + (k / 4) as u32;
    let sub = (k % 4) as u64;
    let width = 1u64 << (octave - 2);
    let lower = (1u64 << octave) + sub * width;
    (lower, lower.saturating_add(width))
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of recorded observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Merge `other` into `self` (bucket-wise add — associative and
    /// commutative, so locality snapshots combine in any order).
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Bucket-wise `self − prev` (saturating), for per-interval deltas.
    pub fn delta(&self, prev: &Histogram) -> Histogram {
        let mut out = Histogram::new();
        for (i, (b, p)) in self.buckets.iter().zip(&prev.buckets).enumerate() {
            out.buckets[i] = b.saturating_sub(*p);
        }
        out.count = self.count.saturating_sub(prev.count);
        out.sum = self.sum.saturating_sub(prev.sum);
        out
    }

    /// Estimate of the `q`-quantile (`0.0 ..= 1.0`): the midpoint of the
    /// bucket holding the ⌈q·count⌉-th smallest observation, exact for
    /// values < 16 and within [`HISTOGRAM_MAX_RELATIVE_ERROR`] otherwise.
    /// Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                let (lo, hi) = bucket_bounds(i);
                return if i < 16 { lo } else { lo + (hi - lo) / 2 };
            }
        }
        bucket_bounds(HISTOGRAM_BUCKETS - 1).0
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("p50", &self.quantile(0.5))
            .field("p95", &self.quantile(0.95))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

/// Lock-free shared recording side of a [`Histogram`] — parcel receive and
/// coalescer threads record concurrently with relaxed atomics; providers
/// take a coherent-enough [`AtomicHistogram::snapshot`] at sample time.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation (relaxed; safe from any thread).
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copy the current state into a value [`Histogram`].
    pub fn snapshot(&self) -> Histogram {
        let mut h = Histogram::new();
        for (b, a) in h.buckets.iter_mut().zip(&self.buckets) {
            *b = a.load(Ordering::Relaxed);
        }
        // Derive count/sum from the caller-visible invariant fields; the
        // bucket array may race ahead of them by in-flight records, which
        // only ever under-reports the newest observations.
        h.count = self
            .count
            .load(Ordering::Relaxed)
            .min(h.buckets.iter().sum());
        h.sum = self.sum.load(Ordering::Relaxed);
        h
    }
}

/// One counter value.
///
/// The histogram variant is ~2 KiB inline; boxing it would cost an
/// allocation per histogram per sampler tick and take `Copy` away from
/// every snapshot consumer. Snapshots live for one tick, so the inline
/// size is the better trade.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CounterValue {
    /// Monotonically accumulating event count (delta-able).
    Count(u64),
    /// Point-in-time measurement (watts, ratios); deltas keep the newer
    /// reading.
    Gauge(f64),
    /// Value distribution with percentile estimates; deltas subtract
    /// bucket-wise, merges add bucket-wise.
    Histogram(Histogram),
}

impl CounterValue {
    /// Numeric view (for tables and plotting); a histogram reads as its
    /// observation count (percentiles ride along as derived gauges, see
    /// [`Collector::histogram`]).
    pub fn as_f64(&self) -> f64 {
        match self {
            CounterValue::Count(v) => *v as f64,
            CounterValue::Gauge(v) => *v,
            CounterValue::Histogram(h) => h.count() as f64,
        }
    }
}

impl std::fmt::Display for CounterValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CounterValue::Count(v) => write!(f, "{v}"),
            CounterValue::Gauge(v) => write!(f, "{v:.3}"),
            CounterValue::Histogram(h) => write!(
                f,
                "n={} p50={} p99={}",
                h.count(),
                h.quantile(0.5),
                h.quantile(0.99)
            ),
        }
    }
}

/// A sampled set of counters, keyed by hierarchical path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CounterSnapshot {
    values: BTreeMap<String, CounterValue>,
}

impl CounterSnapshot {
    /// Empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set a count at `path` (slash-separated, e.g. `/runtime/steals`).
    pub fn set_count(&mut self, path: impl Into<String>, v: u64) {
        self.values.insert(path.into(), CounterValue::Count(v));
    }

    /// Set a gauge at `path`.
    pub fn set_gauge(&mut self, path: impl Into<String>, v: f64) {
        self.values.insert(path.into(), CounterValue::Gauge(v));
    }

    /// Set a histogram at `path`.
    pub fn set_histogram(&mut self, path: impl Into<String>, h: Histogram) {
        self.values.insert(path.into(), CounterValue::Histogram(h));
    }

    /// Histogram at `path` (`None` when absent or another kind).
    pub fn histogram(&self, path: &str) -> Option<Histogram> {
        match self.get(path) {
            Some(CounterValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Value at `path`, if sampled.
    pub fn get(&self, path: &str) -> Option<CounterValue> {
        self.values.get(path).copied()
    }

    /// Count at `path` (0 when absent or a gauge).
    pub fn count(&self, path: &str) -> u64 {
        match self.get(path) {
            Some(CounterValue::Count(v)) => v,
            _ => 0,
        }
    }

    /// Number of counters sampled.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing was sampled.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterate `(path, value)` in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, CounterValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Paths under `prefix` (e.g. every `/runtime/...` counter).
    pub fn with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, CounterValue)> + 'a {
        self.iter().filter(move |(k, _)| k.starts_with(prefix))
    }

    /// Merge `other` into `self` (later values win on path collisions).
    pub fn merge(&mut self, other: &CounterSnapshot) {
        for (k, v) in other.iter() {
            self.values.insert(k.to_string(), v);
        }
    }

    /// Per-interval sample: counts become `self − prev` (saturating, so a
    /// mid-run reset in the source can't underflow), gauges keep the newer
    /// reading. Paths absent from `prev` pass through unchanged.
    pub fn delta(&self, prev: &CounterSnapshot) -> CounterSnapshot {
        let mut out = CounterSnapshot::new();
        for (path, v) in self.iter() {
            let dv = match (v, prev.get(path)) {
                (CounterValue::Count(now), Some(CounterValue::Count(then))) => {
                    CounterValue::Count(now.saturating_sub(then))
                }
                (CounterValue::Histogram(now), Some(CounterValue::Histogram(then))) => {
                    CounterValue::Histogram(now.delta(&then))
                }
                (v, _) => v,
            };
            out.values.insert(path.to_string(), dv);
        }
        out
    }
}

/// Bound collector a provider writes through: prefixes every path it emits.
pub struct Collector<'a> {
    prefix: &'a str,
    snap: &'a mut CounterSnapshot,
}

impl Collector<'_> {
    /// Emit a count at `{prefix}/{name}`.
    pub fn count(&mut self, name: &str, v: u64) {
        self.snap.set_count(format!("{}/{}", self.prefix, name), v);
    }

    /// Emit a gauge at `{prefix}/{name}`.
    pub fn gauge(&mut self, name: &str, v: f64) {
        self.snap.set_gauge(format!("{}/{}", self.prefix, name), v);
    }

    /// Emit a histogram at `{prefix}/{name}` plus derived percentile gauges
    /// at `{prefix}/{name}/p50`, `/p95`, `/p99` (same unit as recorded), so
    /// the percentiles flow through plain-f64 paths — the sampler's
    /// [`TimeSeries`](crate::TimeSeries) and Chrome `"C"` counter tracks.
    pub fn histogram(&mut self, name: &str, h: &Histogram) {
        let base = format!("{}/{}", self.prefix, name);
        self.snap
            .set_gauge(format!("{base}/p50"), h.quantile(0.5) as f64);
        self.snap
            .set_gauge(format!("{base}/p95"), h.quantile(0.95) as f64);
        self.snap
            .set_gauge(format!("{base}/p99"), h.quantile(0.99) as f64);
        self.snap.set_histogram(base, *h);
    }
}

type Provider = Box<dyn Fn(&mut Collector<'_>) + Send + Sync>;

/// Registry of counter providers. Register each subsystem once (closures
/// capture cloneable stat handles — `amt::Handle`, `Arc<PortStats>`, ...);
/// every [`CounterRegistry::sample`] call then assembles one coherent
/// [`CounterSnapshot`] across all of them.
#[derive(Default)]
pub struct CounterRegistry {
    providers: Vec<(String, Provider)>,
}

impl CounterRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `provider` under `prefix` (paths it emits become
    /// `{prefix}/{name}`).
    pub fn register(
        &mut self,
        prefix: impl Into<String>,
        provider: impl Fn(&mut Collector<'_>) + Send + Sync + 'static,
    ) {
        self.providers.push((prefix.into(), Box::new(provider)));
    }

    /// Number of registered providers.
    pub fn len(&self) -> usize {
        self.providers.len()
    }

    /// True when no provider is registered.
    pub fn is_empty(&self) -> bool {
        self.providers.is_empty()
    }

    /// Sample every provider into one snapshot.
    pub fn sample(&self) -> CounterSnapshot {
        let mut snap = CounterSnapshot::new();
        self.sample_into(&mut snap);
        snap
    }

    /// Sample every provider into an existing snapshot (merging).
    pub fn sample_into(&self, snap: &mut CounterSnapshot) {
        for (prefix, provider) in &self.providers {
            let mut c = Collector { prefix, snap };
            provider(&mut c);
        }
    }
}

impl std::fmt::Debug for CounterRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CounterRegistry")
            .field(
                "prefixes",
                &self.providers.iter().map(|(p, _)| p).collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// Render one snapshot as an aligned two-column text table.
pub fn render_table(title: &str, snap: &CounterSnapshot) -> String {
    let width = snap.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    let mut out = format!("== {title} ({} counters) ==\n", snap.len());
    for (path, v) in snap.iter() {
        let _ = writeln!(out, "{path:<width$}  {v:>14}", v = v.to_string());
    }
    out
}

/// Render per-step delta snapshots as one table: rows are counter paths,
/// one column per step — the `--counter-table` view.
pub fn render_step_table(title: &str, steps: &[CounterSnapshot]) -> String {
    let mut paths: Vec<&str> = Vec::new();
    for s in steps {
        for (k, _) in s.iter() {
            if !paths.contains(&k) {
                paths.push(k);
            }
        }
    }
    paths.sort_unstable();
    let width = paths.iter().map(|p| p.len()).max().unwrap_or(0).max(7);
    let mut out = format!("== {title} (per-step deltas) ==\n");
    let mut header = format!("{:<width$}", "counter");
    for i in 0..steps.len() {
        let _ = write!(header, "  {:>14}", format!("step {i}"));
    }
    out.push_str(&header);
    out.push('\n');
    for path in paths {
        let _ = write!(out, "{path:<width$}");
        for s in steps {
            let cell = s.get(path).map(|v| v.to_string()).unwrap_or_default();
            let _ = write!(out, "  {cell:>14}");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_set_get_and_prefix() {
        let mut s = CounterSnapshot::new();
        s.set_count("/runtime/worker0/steals", 3);
        s.set_count("/runtime/worker1/steals", 5);
        s.set_gauge("/energy/jh7110/watts", 3.22);
        assert_eq!(s.len(), 3);
        assert_eq!(s.count("/runtime/worker0/steals"), 3);
        assert_eq!(s.count("/absent"), 0);
        assert_eq!(s.with_prefix("/runtime/").count(), 2);
        assert_eq!(
            s.get("/energy/jh7110/watts"),
            Some(CounterValue::Gauge(3.22))
        );
    }

    #[test]
    fn delta_subtracts_counts_keeps_gauges() {
        let mut a = CounterSnapshot::new();
        a.set_count("/n", 10);
        a.set_gauge("/w", 3.0);
        let mut b = CounterSnapshot::new();
        b.set_count("/n", 14);
        b.set_gauge("/w", 3.5);
        b.set_count("/new", 2);
        let d = b.delta(&a);
        assert_eq!(d.count("/n"), 4);
        assert_eq!(d.get("/w"), Some(CounterValue::Gauge(3.5)));
        assert_eq!(d.count("/new"), 2);
        // A reset source (smaller now) saturates instead of underflowing.
        let d2 = a.delta(&b);
        assert_eq!(d2.count("/n"), 0);
    }

    #[test]
    fn registry_samples_providers_under_prefixes() {
        let mut reg = CounterRegistry::new();
        reg.register("/runtime", |c| {
            c.count("steals", 7);
            c.count("parks", 2);
        });
        reg.register("/net", |c| c.count("messages", 40));
        let s = reg.sample();
        assert_eq!(s.len(), 3);
        assert_eq!(s.count("/runtime/steals"), 7);
        assert_eq!(s.count("/net/messages"), 40);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn merge_later_wins() {
        let mut a = CounterSnapshot::new();
        a.set_count("/x", 1);
        let mut b = CounterSnapshot::new();
        b.set_count("/x", 9);
        b.set_count("/y", 3);
        a.merge(&b);
        assert_eq!(a.count("/x"), 9);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn histogram_buckets_are_exact_below_16_and_bounded_above() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
            assert_eq!(bucket_index(v), v as usize);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 15);
        // Log-linear region: bounds bracket the value, width/lower ≤ 1/4.
        for v in [16u64, 17, 100, 1 << 20, u64::MAX / 2, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(
                lo <= v && (v < hi || hi == u64::MAX),
                "{v} not in [{lo},{hi})"
            );
            assert!((hi - lo) as f64 / lo as f64 <= 0.25 + 1e-12);
        }
        // Indices cover [0, HISTOGRAM_BUCKETS) and never panic.
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_quantiles_are_monotone_and_ordered() {
        let mut h = Histogram::new();
        for v in [5u64, 5, 5, 100, 100, 10_000, 1_000_000] {
            h.record(v);
        }
        let (p50, p95, p99) = (h.quantile(0.5), h.quantile(0.95), h.quantile(0.99));
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert_eq!(h.quantile(0.1), 5, "exact in the unit-bucket region");
        assert!(h.mean() > 0.0);
    }

    #[test]
    fn histogram_merge_matches_recording_everything_in_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [1u64, 30, 700, 700, 44_000] {
            a.record(v);
            all.record(v);
        }
        for v in [2u64, 30, 9_999_999] {
            b.record(v);
            all.record(v);
        }
        let mut m = a;
        m.merge(&b);
        assert_eq!(m, all);
        // Delta of a merge recovers the other half.
        assert_eq!(m.delta(&b), a);
    }

    #[test]
    fn atomic_histogram_snapshot_round_trips() {
        let ah = AtomicHistogram::new();
        for v in [3u64, 3, 250, 1 << 30] {
            ah.record(v);
        }
        let h = ah.snapshot();
        assert_eq!(h.count(), 4);
        assert_eq!(ah.count(), 4);
        assert_eq!(h.sum(), 3 + 3 + 250 + (1 << 30));
    }

    #[test]
    fn histogram_counter_value_flows_through_snapshot_and_delta() {
        let mut h1 = Histogram::new();
        h1.record(10);
        let mut h2 = h1;
        h2.record(500);
        h2.record(600);
        let mut a = CounterSnapshot::new();
        a.set_histogram("/comms/parcel_latency", h1);
        let mut b = CounterSnapshot::new();
        b.set_histogram("/comms/parcel_latency", h2);
        let d = b.delta(&a);
        let dh = d.histogram("/comms/parcel_latency").unwrap();
        assert_eq!(dh.count(), 2);
        assert_eq!(b.get("/comms/parcel_latency").unwrap().as_f64(), 3.0);
        // Collector emits the base histogram plus percentile gauges.
        let mut reg = CounterRegistry::new();
        reg.register("/comms", move |c| c.histogram("parcel_latency", &h2));
        let s = reg.sample();
        assert!(s.histogram("/comms/parcel_latency").is_some());
        for p in ["p50", "p95", "p99"] {
            assert!(
                matches!(
                    s.get(&format!("/comms/parcel_latency/{p}")),
                    Some(CounterValue::Gauge(_))
                ),
                "missing derived {p}"
            );
        }
        let t = render_table("hist", &s);
        assert!(t.contains("n=3"));
    }

    #[test]
    fn tables_render_all_paths() {
        let mut s1 = CounterSnapshot::new();
        s1.set_count("/runtime/steals", 1);
        let mut s2 = CounterSnapshot::new();
        s2.set_count("/runtime/steals", 4);
        s2.set_gauge("/energy/watts", 3.2);
        let t = render_table("dump", &s2);
        assert!(t.contains("/energy/watts"));
        assert!(t.contains("3.200"));
        let steps = render_step_table("run", &[s1, s2]);
        assert!(steps.contains("step 0") && steps.contains("step 1"));
        assert!(steps.contains("/runtime/steals"));
    }
}
