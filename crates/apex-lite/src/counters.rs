//! Hierarchical counter registry — the HPX performance-counter stand-in.
//!
//! HPX exposes `/threads{locality#0/total}/count/cumulative`-style counter
//! paths, sampled on demand. This module unifies the workspace's scattered
//! statistics (`amt::RuntimeStats`, `distrib::PortStats`, gravity cache
//! hit/miss counts, work/flop estimates, energy model output) behind the
//! same idea:
//!
//! * a [`CounterSnapshot`] maps slash-separated paths
//!   (`/runtime/worker0/steals`) to typed values ([`CounterValue`]);
//! * [`CounterSnapshot::delta`] turns two lifetime snapshots into a
//!   per-interval sample without resetting any shared state mid-run;
//! * a [`CounterRegistry`] holds long-lived *providers* (closures over
//!   cloneable stat handles) so one `sample()` call assembles the whole
//!   namespace;
//! * [`render_table`] / [`render_step_table`] print the plain-text views
//!   the `--counter-table` flag emits.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One counter value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CounterValue {
    /// Monotonically accumulating event count (delta-able).
    Count(u64),
    /// Point-in-time measurement (watts, ratios); deltas keep the newer
    /// reading.
    Gauge(f64),
}

impl CounterValue {
    /// Numeric view (for tables and plotting).
    pub fn as_f64(&self) -> f64 {
        match self {
            CounterValue::Count(v) => *v as f64,
            CounterValue::Gauge(v) => *v,
        }
    }
}

impl std::fmt::Display for CounterValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CounterValue::Count(v) => write!(f, "{v}"),
            CounterValue::Gauge(v) => write!(f, "{v:.3}"),
        }
    }
}

/// A sampled set of counters, keyed by hierarchical path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CounterSnapshot {
    values: BTreeMap<String, CounterValue>,
}

impl CounterSnapshot {
    /// Empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set a count at `path` (slash-separated, e.g. `/runtime/steals`).
    pub fn set_count(&mut self, path: impl Into<String>, v: u64) {
        self.values.insert(path.into(), CounterValue::Count(v));
    }

    /// Set a gauge at `path`.
    pub fn set_gauge(&mut self, path: impl Into<String>, v: f64) {
        self.values.insert(path.into(), CounterValue::Gauge(v));
    }

    /// Value at `path`, if sampled.
    pub fn get(&self, path: &str) -> Option<CounterValue> {
        self.values.get(path).copied()
    }

    /// Count at `path` (0 when absent or a gauge).
    pub fn count(&self, path: &str) -> u64 {
        match self.get(path) {
            Some(CounterValue::Count(v)) => v,
            _ => 0,
        }
    }

    /// Number of counters sampled.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing was sampled.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterate `(path, value)` in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, CounterValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Paths under `prefix` (e.g. every `/runtime/...` counter).
    pub fn with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, CounterValue)> + 'a {
        self.iter().filter(move |(k, _)| k.starts_with(prefix))
    }

    /// Merge `other` into `self` (later values win on path collisions).
    pub fn merge(&mut self, other: &CounterSnapshot) {
        for (k, v) in other.iter() {
            self.values.insert(k.to_string(), v);
        }
    }

    /// Per-interval sample: counts become `self − prev` (saturating, so a
    /// mid-run reset in the source can't underflow), gauges keep the newer
    /// reading. Paths absent from `prev` pass through unchanged.
    pub fn delta(&self, prev: &CounterSnapshot) -> CounterSnapshot {
        let mut out = CounterSnapshot::new();
        for (path, v) in self.iter() {
            let dv = match (v, prev.get(path)) {
                (CounterValue::Count(now), Some(CounterValue::Count(then))) => {
                    CounterValue::Count(now.saturating_sub(then))
                }
                (v, _) => v,
            };
            out.values.insert(path.to_string(), dv);
        }
        out
    }
}

/// Bound collector a provider writes through: prefixes every path it emits.
pub struct Collector<'a> {
    prefix: &'a str,
    snap: &'a mut CounterSnapshot,
}

impl Collector<'_> {
    /// Emit a count at `{prefix}/{name}`.
    pub fn count(&mut self, name: &str, v: u64) {
        self.snap.set_count(format!("{}/{}", self.prefix, name), v);
    }

    /// Emit a gauge at `{prefix}/{name}`.
    pub fn gauge(&mut self, name: &str, v: f64) {
        self.snap.set_gauge(format!("{}/{}", self.prefix, name), v);
    }
}

type Provider = Box<dyn Fn(&mut Collector<'_>) + Send + Sync>;

/// Registry of counter providers. Register each subsystem once (closures
/// capture cloneable stat handles — `amt::Handle`, `Arc<PortStats>`, ...);
/// every [`CounterRegistry::sample`] call then assembles one coherent
/// [`CounterSnapshot`] across all of them.
#[derive(Default)]
pub struct CounterRegistry {
    providers: Vec<(String, Provider)>,
}

impl CounterRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `provider` under `prefix` (paths it emits become
    /// `{prefix}/{name}`).
    pub fn register(
        &mut self,
        prefix: impl Into<String>,
        provider: impl Fn(&mut Collector<'_>) + Send + Sync + 'static,
    ) {
        self.providers.push((prefix.into(), Box::new(provider)));
    }

    /// Number of registered providers.
    pub fn len(&self) -> usize {
        self.providers.len()
    }

    /// True when no provider is registered.
    pub fn is_empty(&self) -> bool {
        self.providers.is_empty()
    }

    /// Sample every provider into one snapshot.
    pub fn sample(&self) -> CounterSnapshot {
        let mut snap = CounterSnapshot::new();
        self.sample_into(&mut snap);
        snap
    }

    /// Sample every provider into an existing snapshot (merging).
    pub fn sample_into(&self, snap: &mut CounterSnapshot) {
        for (prefix, provider) in &self.providers {
            let mut c = Collector { prefix, snap };
            provider(&mut c);
        }
    }
}

impl std::fmt::Debug for CounterRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CounterRegistry")
            .field(
                "prefixes",
                &self.providers.iter().map(|(p, _)| p).collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// Render one snapshot as an aligned two-column text table.
pub fn render_table(title: &str, snap: &CounterSnapshot) -> String {
    let width = snap.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    let mut out = format!("== {title} ({} counters) ==\n", snap.len());
    for (path, v) in snap.iter() {
        let _ = writeln!(out, "{path:<width$}  {v:>14}", v = v.to_string());
    }
    out
}

/// Render per-step delta snapshots as one table: rows are counter paths,
/// one column per step — the `--counter-table` view.
pub fn render_step_table(title: &str, steps: &[CounterSnapshot]) -> String {
    let mut paths: Vec<&str> = Vec::new();
    for s in steps {
        for (k, _) in s.iter() {
            if !paths.contains(&k) {
                paths.push(k);
            }
        }
    }
    paths.sort_unstable();
    let width = paths.iter().map(|p| p.len()).max().unwrap_or(0).max(7);
    let mut out = format!("== {title} (per-step deltas) ==\n");
    let mut header = format!("{:<width$}", "counter");
    for i in 0..steps.len() {
        let _ = write!(header, "  {:>14}", format!("step {i}"));
    }
    out.push_str(&header);
    out.push('\n');
    for path in paths {
        let _ = write!(out, "{path:<width$}");
        for s in steps {
            let cell = s.get(path).map(|v| v.to_string()).unwrap_or_default();
            let _ = write!(out, "  {cell:>14}");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_set_get_and_prefix() {
        let mut s = CounterSnapshot::new();
        s.set_count("/runtime/worker0/steals", 3);
        s.set_count("/runtime/worker1/steals", 5);
        s.set_gauge("/energy/jh7110/watts", 3.22);
        assert_eq!(s.len(), 3);
        assert_eq!(s.count("/runtime/worker0/steals"), 3);
        assert_eq!(s.count("/absent"), 0);
        assert_eq!(s.with_prefix("/runtime/").count(), 2);
        assert_eq!(
            s.get("/energy/jh7110/watts"),
            Some(CounterValue::Gauge(3.22))
        );
    }

    #[test]
    fn delta_subtracts_counts_keeps_gauges() {
        let mut a = CounterSnapshot::new();
        a.set_count("/n", 10);
        a.set_gauge("/w", 3.0);
        let mut b = CounterSnapshot::new();
        b.set_count("/n", 14);
        b.set_gauge("/w", 3.5);
        b.set_count("/new", 2);
        let d = b.delta(&a);
        assert_eq!(d.count("/n"), 4);
        assert_eq!(d.get("/w"), Some(CounterValue::Gauge(3.5)));
        assert_eq!(d.count("/new"), 2);
        // A reset source (smaller now) saturates instead of underflowing.
        let d2 = a.delta(&b);
        assert_eq!(d2.count("/n"), 0);
    }

    #[test]
    fn registry_samples_providers_under_prefixes() {
        let mut reg = CounterRegistry::new();
        reg.register("/runtime", |c| {
            c.count("steals", 7);
            c.count("parks", 2);
        });
        reg.register("/net", |c| c.count("messages", 40));
        let s = reg.sample();
        assert_eq!(s.len(), 3);
        assert_eq!(s.count("/runtime/steals"), 7);
        assert_eq!(s.count("/net/messages"), 40);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn merge_later_wins() {
        let mut a = CounterSnapshot::new();
        a.set_count("/x", 1);
        let mut b = CounterSnapshot::new();
        b.set_count("/x", 9);
        b.set_count("/y", 3);
        a.merge(&b);
        assert_eq!(a.count("/x"), 9);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn tables_render_all_paths() {
        let mut s1 = CounterSnapshot::new();
        s1.set_count("/runtime/steals", 1);
        let mut s2 = CounterSnapshot::new();
        s2.set_count("/runtime/steals", 4);
        s2.set_gauge("/energy/watts", 3.2);
        let t = render_table("dump", &s2);
        assert!(t.contains("/energy/watts"));
        assert!(t.contains("3.200"));
        let steps = render_step_table("run", &[s1, s2]);
        assert!(steps.contains("step 0") && steps.contains("step 1"));
        assert!(steps.contains("/runtime/steals"));
    }
}
