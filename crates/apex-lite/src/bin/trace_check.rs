//! `trace_check` — CI validator for exported Chrome traces.
//!
//! Usage:
//!
//! ```text
//! trace_check [--require CAT[,CAT...]] [--require-overlap A,B] [--min-spans N] FILE...
//! ```
//!
//! Each FILE is parsed and validated (well-formed JSON, required fields,
//! per-thread completion-order monotonicity, strict span nesting). With
//! `--require`, every listed token must appear in every file, matching
//! either an event *category* or a span *name* — the CI smoke run uses
//! `--require task,phase,comm` to prove the trace spans all three
//! instrumented layers, and the aggregation gate uses
//! `--require aggregate_launch` to prove batched kernel launches happened.
//! With `--require-overlap A,B`, spans named `A`
//! and `B` must have been simultaneously open (on any two threads) for a
//! positive wall-clock duration — the CI proof that a futurized run really
//! interleaved gravity and hydro instead of running them phase-by-phase.
//! Exits non-zero on any failure.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut require: Vec<String> = Vec::new();
    let mut require_overlap: Vec<(String, String)> = Vec::new();
    let mut min_spans: u64 = 1;
    let mut files: Vec<String> = Vec::new();

    let parse_overlap = |v: &str| -> Option<(String, String)> {
        let (a, b) = v.split_once(',')?;
        if a.is_empty() || b.is_empty() {
            return None;
        }
        Some((a.to_string(), b.to_string()))
    };

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if let Some(v) = arg.strip_prefix("--require-overlap=") {
            match parse_overlap(v) {
                Some(p) => require_overlap.push(p),
                None => return usage("--require-overlap needs NAME_A,NAME_B"),
            }
        } else if arg == "--require-overlap" {
            match args.next().as_deref().and_then(parse_overlap) {
                Some(p) => require_overlap.push(p),
                None => return usage("--require-overlap needs NAME_A,NAME_B"),
            }
        } else if let Some(v) = arg.strip_prefix("--require=") {
            require.extend(v.split(',').map(str::to_string));
        } else if arg == "--require" {
            match args.next() {
                Some(v) => require.extend(v.split(',').map(str::to_string)),
                None => return usage("--require needs a value"),
            }
        } else if let Some(v) = arg.strip_prefix("--min-spans=") {
            match v.parse() {
                Ok(n) => min_spans = n,
                Err(_) => return usage("--min-spans needs a number"),
            }
        } else if arg == "--min-spans" {
            match args.next().as_deref().map(str::parse) {
                Some(Ok(n)) => min_spans = n,
                _ => return usage("--min-spans needs a number"),
            }
        } else if arg == "--help" || arg == "-h" {
            return usage("");
        } else if arg.starts_with('-') {
            return usage(&format!("unknown flag {arg:?}"));
        } else {
            files.push(arg);
        }
    }
    if files.is_empty() {
        return usage("no trace files given");
    }

    let mut failed = false;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{file}: FAIL: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        match apex_lite::validate(&text) {
            Ok(summary) => {
                let mut problems: Vec<String> = Vec::new();
                if summary.spans < min_spans {
                    problems.push(format!(
                        "only {} spans (need >= {min_spans})",
                        summary.spans
                    ));
                }
                for tok in &require {
                    if summary.count_cat(tok) == 0 && summary.count_name(tok) == 0 {
                        problems.push(format!(
                            "no events with required category or span name {tok:?}"
                        ));
                    }
                }
                for (a, b) in &require_overlap {
                    let ns = summary.overlap_ns(a, b);
                    if ns == 0 {
                        problems.push(format!(
                            "spans {a:?} and {b:?} never overlapped in wall-clock time \
                             ({} {a:?} spans, {} {b:?} spans)",
                            summary.count_name(a),
                            summary.count_name(b)
                        ));
                    } else {
                        println!("{file}: overlap {a:?}/{b:?} = {ns} ns");
                    }
                }
                if problems.is_empty() {
                    let cats: Vec<String> = summary
                        .by_cat
                        .iter()
                        .map(|(c, n)| format!("{c}:{n}"))
                        .collect();
                    println!(
                        "{file}: OK — {} spans, {} instants, {} threads, {} localities [{}]",
                        summary.spans,
                        summary.instants,
                        summary.threads,
                        summary.pids,
                        cats.join(" ")
                    );
                } else {
                    eprintln!("{file}: FAIL: {}", problems.join("; "));
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("{file}: FAIL: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("trace_check: {err}");
    }
    eprintln!(
        "usage: trace_check [--require CAT_OR_NAME[,...]] [--require-overlap A,B] \
         [--min-spans N] FILE..."
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
