//! `trace_check` — CI validator for exported Chrome traces.
//!
//! Usage:
//!
//! ```text
//! trace_check [--require CAT[,CAT...]] [--min-spans N] FILE...
//! ```
//!
//! Each FILE is parsed and validated (well-formed JSON, required fields,
//! per-thread completion-order monotonicity, strict span nesting). With
//! `--require`, every listed category must appear in every file — the CI
//! smoke run uses `--require task,phase,comm` to prove the trace spans all
//! three instrumented layers. Exits non-zero on any failure.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut require: Vec<String> = Vec::new();
    let mut min_spans: u64 = 1;
    let mut files: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if let Some(v) = arg.strip_prefix("--require=") {
            require.extend(v.split(',').map(str::to_string));
        } else if arg == "--require" {
            match args.next() {
                Some(v) => require.extend(v.split(',').map(str::to_string)),
                None => return usage("--require needs a value"),
            }
        } else if let Some(v) = arg.strip_prefix("--min-spans=") {
            match v.parse() {
                Ok(n) => min_spans = n,
                Err(_) => return usage("--min-spans needs a number"),
            }
        } else if arg == "--min-spans" {
            match args.next().as_deref().map(str::parse) {
                Some(Ok(n)) => min_spans = n,
                _ => return usage("--min-spans needs a number"),
            }
        } else if arg == "--help" || arg == "-h" {
            return usage("");
        } else if arg.starts_with('-') {
            return usage(&format!("unknown flag {arg:?}"));
        } else {
            files.push(arg);
        }
    }
    if files.is_empty() {
        return usage("no trace files given");
    }

    let mut failed = false;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{file}: FAIL: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        match apex_lite::validate(&text) {
            Ok(summary) => {
                let mut problems: Vec<String> = Vec::new();
                if summary.spans < min_spans {
                    problems.push(format!(
                        "only {} spans (need >= {min_spans})",
                        summary.spans
                    ));
                }
                for cat in &require {
                    if summary.count_cat(cat) == 0 {
                        problems.push(format!("no events in required category {cat:?}"));
                    }
                }
                if problems.is_empty() {
                    let cats: Vec<String> = summary
                        .by_cat
                        .iter()
                        .map(|(c, n)| format!("{c}:{n}"))
                        .collect();
                    println!(
                        "{file}: OK — {} spans, {} instants, {} threads, {} localities [{}]",
                        summary.spans,
                        summary.instants,
                        summary.threads,
                        summary.pids,
                        cats.join(" ")
                    );
                } else {
                    eprintln!("{file}: FAIL: {}", problems.join("; "));
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("{file}: FAIL: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("trace_check: {err}");
    }
    eprintln!("usage: trace_check [--require CAT[,CAT...]] [--min-spans N] FILE...");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
