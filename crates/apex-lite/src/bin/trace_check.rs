//! `trace_check` — CI validator for exported Chrome traces.
//!
//! Usage:
//!
//! ```text
//! trace_check [--require CAT[,CAT...]] [--require-overlap A,B] [--min-spans N]
//!             [--require-flow[=N]] FILE...
//! ```
//!
//! Each FILE is parsed and validated (well-formed JSON, required fields,
//! per-thread completion-order monotonicity, strict span nesting). With
//! `--require`, every listed token must appear in every file, matching
//! either an event *category* or a span *name* — the CI smoke run uses
//! `--require task,phase,comm` to prove the trace spans all three
//! instrumented layers, and the aggregation gate uses
//! `--require aggregate_launch` to prove batched kernel launches happened.
//! With `--require-overlap A,B`, spans named `A`
//! and `B` must have been simultaneously open (on any two threads) for a
//! positive wall-clock duration — the CI proof that a futurized run really
//! interleaved gravity and hydro instead of running them phase-by-phase.
//! With `--require-flow` (optionally `--require-flow=N`), the trace must
//! contain at least N *matched* `"s"`/`"f"` flow pairs — the distributed
//! smoke run's proof that parcels carried their trace context end to end.
//! Dangling flow ends (an `"f"` with no `"s"` anywhere) are a validation
//! error regardless of flags. Exits non-zero on any failure.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut require: Vec<String> = Vec::new();
    let mut require_overlap: Vec<(String, String)> = Vec::new();
    let mut min_spans: u64 = 1;
    let mut require_flow: Option<u64> = None;
    let mut files: Vec<String> = Vec::new();

    let parse_overlap = |v: &str| -> Option<(String, String)> {
        let (a, b) = v.split_once(',')?;
        if a.is_empty() || b.is_empty() {
            return None;
        }
        Some((a.to_string(), b.to_string()))
    };

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if let Some(v) = arg.strip_prefix("--require-overlap=") {
            match parse_overlap(v) {
                Some(p) => require_overlap.push(p),
                None => return usage("--require-overlap needs NAME_A,NAME_B"),
            }
        } else if arg == "--require-overlap" {
            match args.next().as_deref().and_then(parse_overlap) {
                Some(p) => require_overlap.push(p),
                None => return usage("--require-overlap needs NAME_A,NAME_B"),
            }
        } else if let Some(v) = arg.strip_prefix("--require=") {
            require.extend(v.split(',').map(str::to_string));
        } else if arg == "--require" {
            match args.next() {
                Some(v) => require.extend(v.split(',').map(str::to_string)),
                None => return usage("--require needs a value"),
            }
        } else if arg == "--require-flow" {
            require_flow = Some(1);
        } else if let Some(v) = arg.strip_prefix("--require-flow=") {
            match v.parse() {
                Ok(n) => require_flow = Some(n),
                Err(_) => return usage("--require-flow needs a number"),
            }
        } else if let Some(v) = arg.strip_prefix("--min-spans=") {
            match v.parse() {
                Ok(n) => min_spans = n,
                Err(_) => return usage("--min-spans needs a number"),
            }
        } else if arg == "--min-spans" {
            match args.next().as_deref().map(str::parse) {
                Some(Ok(n)) => min_spans = n,
                _ => return usage("--min-spans needs a number"),
            }
        } else if arg == "--help" || arg == "-h" {
            return usage("");
        } else if arg.starts_with('-') {
            return usage(&format!("unknown flag {arg:?}"));
        } else {
            files.push(arg);
        }
    }
    if files.is_empty() {
        return usage("no trace files given");
    }

    let mut failed = false;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{file}: FAIL: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        match check_text(&text, min_spans, &require, &require_overlap, require_flow) {
            Ok(lines) => {
                for line in lines {
                    println!("{file}: {line}");
                }
            }
            Err(e) => {
                eprintln!("{file}: FAIL: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Validate one trace document and apply the CLI's checks. Returns the
/// report lines to print (last one the `OK` summary) or a combined
/// failure message. Pure so the failure paths are unit-testable.
fn check_text(
    text: &str,
    min_spans: u64,
    require: &[String],
    require_overlap: &[(String, String)],
    require_flow: Option<u64>,
) -> Result<Vec<String>, String> {
    if text.trim().is_empty() {
        return Err("empty trace file (no JSON document; was the run traced at all?)".into());
    }
    let summary = apex_lite::validate(text)?;
    let events = summary.spans + summary.instants + summary.counter_events;
    if events == 0 {
        return Err(
            "trace contains zero events (valid JSON but nothing was recorded; \
             was tracing enabled before the run?)"
                .into(),
        );
    }
    let mut lines: Vec<String> = Vec::new();
    let mut problems: Vec<String> = Vec::new();
    if summary.spans < min_spans {
        problems.push(format!(
            "only {} spans (need >= {min_spans})",
            summary.spans
        ));
    }
    for tok in require {
        if summary.count_cat(tok) == 0 && summary.count_name(tok) == 0 {
            problems.push(format!(
                "required token {tok:?} matched zero span names and zero categories \
                 (categories present: [{}])",
                summary
                    .by_cat
                    .keys()
                    .map(String::as_str)
                    .collect::<Vec<_>>()
                    .join(" ")
            ));
        }
    }
    for (a, b) in require_overlap {
        let ns = summary.overlap_ns(a, b);
        if ns == 0 {
            problems.push(format!(
                "spans {a:?} and {b:?} never overlapped in wall-clock time \
                 ({} {a:?} spans, {} {b:?} spans)",
                summary.count_name(a),
                summary.count_name(b)
            ));
        } else {
            lines.push(format!("overlap {a:?}/{b:?} = {ns} ns"));
        }
    }
    if let Some(n) = require_flow {
        let matched = summary.flow_edges.len() as u64;
        if matched < n {
            problems.push(format!(
                "only {matched} matched flow pair(s) (need >= {n}; {} \"s\" starts, \
                 {} \"f\" ends seen — did the parcelports emit flow events?)",
                summary.flow_starts, summary.flow_ends
            ));
        } else {
            lines.push(format!("flows: {matched} matched pair(s)"));
        }
    }
    if !problems.is_empty() {
        return Err(problems.join("; "));
    }
    let cats: Vec<String> = summary
        .by_cat
        .iter()
        .map(|(c, n)| format!("{c}:{n}"))
        .collect();
    lines.push(format!(
        "OK — {} spans, {} instants, {} threads, {} localities [{}]",
        summary.spans,
        summary.instants,
        summary.threads,
        summary.pids,
        cats.join(" ")
    ));
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::check_text;
    use apex_lite::trace::{Cat, Event, EventKind, ThreadMeta, Trace};

    fn one_span_trace() -> String {
        apex_lite::export(&Trace {
            threads: vec![(
                ThreadMeta {
                    pid: 0,
                    tid: 0,
                    name: "worker0".into(),
                },
                vec![Event {
                    cat: Cat::Phase,
                    name: "gravity_solve",
                    ts_ns: 100,
                    kind: EventKind::Span { dur_ns: 50 },
                }],
            )],
            dropped: 0,
        })
    }

    #[test]
    fn empty_file_fails_with_clear_message() {
        for text in ["", "   \n\t "] {
            let err = check_text(text, 0, &[], &[], None).unwrap_err();
            assert!(err.contains("empty trace file"), "{err}");
        }
    }

    #[test]
    fn zero_event_trace_fails_with_clear_message() {
        let err = check_text(
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}",
            0,
            &[],
            &[],
            None,
        )
        .unwrap_err();
        assert!(err.contains("zero events"), "{err}");
    }

    #[test]
    fn require_matching_nothing_fails_and_names_present_cats() {
        let text = one_span_trace();
        let err = check_text(&text, 1, &["no_such_token".to_string()], &[], None).unwrap_err();
        assert!(err.contains("required token \"no_such_token\""), "{err}");
        assert!(err.contains("zero span names and zero categories"), "{err}");
        assert!(
            err.contains("phase"),
            "should list present categories: {err}"
        );
    }

    #[test]
    fn require_matches_name_or_category() {
        let text = one_span_trace();
        // By span name.
        check_text(&text, 1, &["gravity_solve".to_string()], &[], None).unwrap();
        // By category.
        let lines = check_text(&text, 1, &["phase".to_string()], &[], None).unwrap();
        assert!(lines.last().unwrap().starts_with("OK — 1 spans"));
    }

    #[test]
    fn min_spans_enforced() {
        let text = one_span_trace();
        let err = check_text(&text, 2, &[], &[], None).unwrap_err();
        assert!(err.contains("only 1 spans (need >= 2)"), "{err}");
    }

    fn flow_trace(with_end: bool) -> String {
        let mut loc1 = vec![Event {
            cat: Cat::Comm,
            name: "parcel",
            ts_ns: 100,
            kind: EventKind::FlowStart { id: 42 },
        }];
        if with_end {
            loc1.push(Event {
                cat: Cat::Comm,
                name: "parcel",
                ts_ns: 900,
                kind: EventKind::FlowEnd { id: 42 },
            });
        }
        loc1.push(Event {
            cat: Cat::Phase,
            name: "work",
            ts_ns: 1000,
            kind: EventKind::Span { dur_ns: 10 },
        });
        apex_lite::export(&Trace {
            threads: vec![(
                ThreadMeta {
                    pid: 0,
                    tid: 0,
                    name: "worker0".into(),
                },
                loc1,
            )],
            dropped: 0,
        })
    }

    #[test]
    fn require_flow_counts_matched_pairs() {
        let text = flow_trace(true);
        let lines = check_text(&text, 1, &[], &[], Some(1)).unwrap();
        assert!(lines.iter().any(|l| l.contains("flows: 1 matched pair")));
        let err = check_text(&text, 1, &[], &[], Some(5)).unwrap_err();
        assert!(
            err.contains("only 1 matched flow pair(s) (need >= 5"),
            "{err}"
        );
    }

    #[test]
    fn unmatched_start_is_legal_but_fails_require_flow() {
        // An "s" whose parcel never landed (dropped on shutdown) validates
        // fine — but it is not a matched pair.
        let text = flow_trace(false);
        check_text(&text, 1, &[], &[], None).unwrap();
        let err = check_text(&text, 1, &[], &[], Some(1)).unwrap_err();
        assert!(err.contains("1 \"s\" starts"), "{err}");
        assert!(err.contains("0 \"f\" ends"), "{err}");
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("trace_check: {err}");
    }
    eprintln!(
        "usage: trace_check [--require CAT_OR_NAME[,...]] [--require-overlap A,B] \
         [--min-spans N] FILE..."
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
