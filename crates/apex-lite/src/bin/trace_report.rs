//! `trace_report` — the "what limited this run?" analyzer CLI.
//!
//! Usage:
//!
//! ```text
//! trace_report [--phases=A,B,...] [--flame-out=FILE] \
//!              [--require-counter=NAME]... [--check] FILE
//! ```
//!
//! Validates an exported Chrome trace and prints three views:
//!
//! * the **critical path** through the phase span DAG (longest
//!   happens-before chain over merged phase activity segments — see
//!   `apex_lite::critpath`), with per-phase contributions and slack;
//! * **per-worker utilization** rows (busy/park fractions of the trace
//!   window, steal/yield counts) plus the max/mean-busy imbalance ratio;
//! * a **comms** section, when the trace carries matched parcel flow
//!   events: the comms-aware distributed critical path (network share,
//!   per-locality baselines, estimated clock offsets), per-link parcel
//!   counts/bytes, and parcel-latency percentiles from the
//!   `/comms/parcel_latency` histogram counter;
//! * sampled **counter series** carried in the trace (`"C"` events), when
//!   the run was started with `--sample_interval_ms`.
//!
//! `--flame-out=FILE` additionally writes a collapsed-stack flamegraph
//! (`flamegraph.pl`/inferno input, self-time ns counts). `--check` makes
//! the CI-facing assertions fatal: non-empty critical path, at least one
//! utilization row, and (per `--require-counter=NAME`) the named counter
//! series present in the trace; on a multi-locality trace with flows the
//! distributed path must route through at least one network leg, bound
//! every single-locality path from above, stay within wall, the latency
//! percentiles must be ordered (p50 ≤ p95 ≤ p99), and the histogram
//! count must equal the parcels delivered. Exits non-zero on any failure.

use apex_lite::{chrome, critpath, flame};
use std::process::ExitCode;

struct Options {
    phases: Option<Vec<String>>,
    flame_out: Option<String>,
    require_counters: Vec<String>,
    check: bool,
}

fn main() -> ExitCode {
    let mut opts = Options {
        phases: None,
        flame_out: None,
        require_counters: Vec::new(),
        check: false,
    };
    let mut files: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if let Some(v) = arg.strip_prefix("--phases=") {
            opts.phases = Some(v.split(',').map(str::to_string).collect());
        } else if let Some(v) = arg.strip_prefix("--flame-out=") {
            opts.flame_out = Some(v.to_string());
        } else if arg == "--flame-out" {
            match args.next() {
                Some(v) => opts.flame_out = Some(v),
                None => return usage("--flame-out needs a path"),
            }
        } else if let Some(v) = arg.strip_prefix("--require-counter=") {
            opts.require_counters.push(v.to_string());
        } else if arg == "--check" {
            opts.check = true;
        } else if arg == "--help" || arg == "-h" {
            return usage("");
        } else if arg.starts_with('-') {
            return usage(&format!("unknown flag {arg:?}"));
        } else {
            files.push(arg);
        }
    }
    if files.is_empty() {
        return usage("no trace file given");
    }

    let mut failed = false;
    for file in &files {
        if let Err(e) = report(file, &opts) {
            eprintln!("{file}: FAIL: {e}");
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn report(file: &str, opts: &Options) -> Result<(), String> {
    let text = std::fs::read_to_string(file).map_err(|e| format!("cannot read: {e}"))?;
    if text.trim().is_empty() {
        return Err("empty trace file".into());
    }
    let summary = apex_lite::validate(&text)?;
    if summary.spans + summary.instants + summary.counter_events == 0 {
        return Err("trace contains no events".into());
    }

    println!(
        "{file}: {} spans, {} instants, {} counter events, {} threads, {} localities, \
         wall {:.3} ms",
        summary.spans,
        summary.instants,
        summary.counter_events,
        summary.threads,
        summary.pids,
        ms(summary.last_end_ns - summary.first_ts_ns)
    );

    // Critical path.
    let phases = match &opts.phases {
        Some(p) => p.clone(),
        None => critpath::default_phases(&summary),
    };
    let cp = critpath::critical_path(&summary, &phases);
    let pct = |part: u64| {
        if cp.wall_ns == 0 {
            0.0
        } else {
            100.0 * part as f64 / cp.wall_ns as f64
        }
    };
    println!(
        "critical path: {:.3} ms over {} segments ({:.1}% of wall, slack {:.3} ms)",
        ms(cp.path_ns),
        cp.segments.len(),
        pct(cp.path_ns),
        ms(cp.slack_ns)
    );
    println!(
        "  {:<24} {:>12} {:>12} {:>8} {:>7}",
        "phase", "path ms", "active ms", "spans", "share"
    );
    for p in &cp.by_phase {
        println!(
            "  {:<24} {:>12.3} {:>12.3} {:>8} {:>6.1}%",
            p.name,
            ms(p.path_ns),
            ms(p.active_ns),
            p.spans,
            pct(p.path_ns)
        );
    }

    // Comms: distributed critical path + wire traffic, when the trace
    // carries matched parcel flow events.
    let dcp = if summary.flow_edges.is_empty() {
        None
    } else {
        let d = critpath::critical_path_distributed(&summary, &phases);
        let net_pct = if d.path.path_ns == 0 {
            0.0
        } else {
            100.0 * d.network_ns as f64 / d.path.path_ns as f64
        };
        println!(
            "distributed critical path: {:.3} ms over {} segments ({} network legs, \
             {:.3} ms on the wire = {:.1}% of path)",
            ms(d.path.path_ns),
            d.path.segments.len(),
            d.network_edges_on_path,
            ms(d.network_ns),
            net_pct
        );
        for (pid, &p) in &d.per_locality_path_ns {
            let off = d.offsets.get(pid).copied().unwrap_or(0);
            println!(
                "  locality {pid}: single-locality path {:>10.3} ms, clock offset {off:+} ns",
                ms(p)
            );
        }
        Some(d)
    };
    let last_of =
        |name: &str| -> Option<f64> { summary.counter_series.get(name)?.last().map(|&(_, v)| v) };
    if let Some(count) = last_of("/comms/parcel_latency") {
        let us = |v: Option<f64>| v.unwrap_or(0.0) / 1e3;
        println!(
            "parcel latency: {count} parcels, p50 {:.1} us, p95 {:.1} us, p99 {:.1} us",
            us(last_of("/comms/parcel_latency/p50")),
            us(last_of("/comms/parcel_latency/p95")),
            us(last_of("/comms/parcel_latency/p99"))
        );
    }
    let links: Vec<&String> = summary
        .counter_series
        .keys()
        .filter(|k| k.starts_with("/comms/link") && k.ends_with("/parcels"))
        .collect();
    if !links.is_empty() {
        println!("links:");
        for parcels_key in links {
            let base = parcels_key.trim_end_matches("/parcels");
            println!(
                "  {base}: {} parcels, {} bytes",
                last_of(parcels_key).unwrap_or(0.0),
                last_of(&format!("{base}/bytes")).unwrap_or(0.0)
            );
        }
    }

    // Per-worker utilization.
    let util = critpath::worker_utilization(&summary);
    println!("worker utilization ({} lanes):", util.len());
    println!(
        "  {:>4} {:>4} {:<12} {:>10} {:>7} {:>7} {:>7} {:>7}",
        "pid", "tid", "thread", "busy ms", "busy%", "park%", "steals", "yields"
    );
    for u in &util {
        println!(
            "  {:>4} {:>4} {:<12} {:>10.3} {:>6.1}% {:>6.1}% {:>7} {:>7}",
            u.pid,
            u.tid,
            u.thread,
            ms(u.busy_ns),
            100.0 * u.busy_frac(),
            100.0 * u.park_frac(),
            u.steals,
            u.yields
        );
    }
    println!(
        "/runtime/imbalance (max/mean busy, from trace) = {:.3}",
        critpath::imbalance_ratio(&util)
    );

    // Counter series carried in the trace.
    if !summary.counter_series.is_empty() {
        println!(
            "counter series: {} ({} samples total)",
            summary.counter_series.len(),
            summary.counter_events
        );
        for (name, points) in &summary.counter_series {
            let last = points.last().map(|&(_, v)| v).unwrap_or(0.0);
            println!("  {name}: {} points, last {last}", points.len());
        }
    }

    // Flamegraph.
    let mut flame_lines = 0usize;
    if let Some(path) = &opts.flame_out {
        let stacks = flame::collapsed_stacks(&summary);
        flame_lines = stacks.len();
        let text = flame::render_collapsed(&stacks);
        std::fs::write(path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("flamegraph: {flame_lines} stacks -> {path}");
    }

    if opts.check {
        check_summary(&summary, &cp, dcp.as_ref(), &util, opts, flame_lines)?;
        println!("{file}: CHECK OK");
    }
    Ok(())
}

fn check_summary(
    summary: &chrome::TraceSummary,
    cp: &critpath::CriticalPath,
    dcp: Option<&critpath::DistCriticalPath>,
    util: &[critpath::WorkerUtilization],
    opts: &Options,
    flame_lines: usize,
) -> Result<(), String> {
    if cp.path_ns == 0 || cp.segments.is_empty() {
        return Err("empty critical path (no phase spans matched)".into());
    }
    if cp.path_ns > cp.wall_ns {
        return Err(format!(
            "critical path {} ns exceeds wall {} ns",
            cp.path_ns, cp.wall_ns
        ));
    }
    if util.is_empty() {
        return Err("no worker utilization rows".into());
    }
    for name in &opts.require_counters {
        if !summary.counter_series.contains_key(name) {
            return Err(format!(
                "required counter series {name:?} absent from trace ({} series present)",
                summary.counter_series.len()
            ));
        }
    }
    if opts.flame_out.is_some() && flame_lines == 0 {
        return Err("flamegraph is empty".into());
    }
    if let Some(d) = dcp {
        if summary.pids > 1 && d.network_edges_on_path == 0 {
            return Err(format!(
                "trace spans {} localities with {} flow edges but the distributed \
                 critical path crosses no network leg",
                summary.pids,
                summary.flow_edges.len()
            ));
        }
        if d.path.path_ns > d.path.wall_ns {
            return Err(format!(
                "distributed critical path {} ns exceeds wall {} ns",
                d.path.path_ns, d.path.wall_ns
            ));
        }
        for (pid, &p) in &d.per_locality_path_ns {
            if d.path.path_ns < p {
                return Err(format!(
                    "distributed critical path {} ns is shorter than locality {pid}'s \
                     own path {p} ns — cross-locality edges must only lengthen it",
                    d.path.path_ns
                ));
            }
        }
    }
    let last_of =
        |name: &str| -> Option<f64> { summary.counter_series.get(name)?.last().map(|&(_, v)| v) };
    if let Some(count) = last_of("/comms/parcel_latency") {
        let p50 = last_of("/comms/parcel_latency/p50").unwrap_or(0.0);
        let p95 = last_of("/comms/parcel_latency/p95").unwrap_or(0.0);
        let p99 = last_of("/comms/parcel_latency/p99").unwrap_or(0.0);
        if !(p50 <= p95 && p95 <= p99) {
            return Err(format!(
                "parcel latency percentiles out of order: p50 {p50} / p95 {p95} / p99 {p99}"
            ));
        }
        if let Some(parcels) = last_of("/comms/parcels") {
            if count != parcels {
                return Err(format!(
                    "latency histogram holds {count} observations but {parcels} parcels \
                     were delivered — every received parcel must be measured exactly once"
                ));
            }
        }
    }
    Ok(())
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("trace_report: {err}");
    }
    eprintln!(
        "usage: trace_report [--phases=A,B,...] [--flame-out=FILE] \
         [--require-counter=NAME]... [--check] FILE..."
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
