//! # apex-lite — unified observability for the Octo-Tiger reproduction
//!
//! HPX builds (as benchmarked in the source paper) come with two
//! observability systems: the **performance-counter framework**
//! (hierarchical `/threads{locality#0/total}/...` counters sampled on
//! demand) and **APEX** (task-level begin/end tracing exported to
//! OTF2/Chrome traces). Our reproduction had the same raw numbers
//! scattered across four crates — `amt::RuntimeStats`, `distrib`'s
//! `PortStats`, octotiger's `CacheStats`/`WorkEstimate`, and the `machine`
//! flop/energy models — with no way to see them together or over time.
//!
//! This crate is the small, dependency-free core both halves plug into:
//!
//! * [`trace`] — a lock-light span tracer: per-thread ring buffers,
//!   `Instant`-based nanosecond timestamps, zero-cost when disabled
//!   (one relaxed atomic load, no allocation — ever — on the disabled
//!   path). The AMT scheduler, the octotiger driver phases, the gravity
//!   kernels, and the distrib comm layer all emit scoped spans into it.
//! * [`counters`] — a [`CounterRegistry`] unifying every subsystem's
//!   statistics under one `/runtime/worker{N}/steals`-style namespace,
//!   with typed snapshots and per-step deltas.
//! * [`chrome`] — a Chrome trace-event JSON exporter
//!   (`about://tracing` / Perfetto-loadable) plus a validator used by the
//!   round-trip tests and the `trace_check` CI binary.
//! * [`sampler`] — a background thread sampling a shared
//!   [`CounterRegistry`] on a wall-clock cadence into bounded per-series
//!   ring buffers; exports as Chrome `"C"` counter tracks or CSV.
//! * [`critpath`] — the trace analyzer: critical path through the phase
//!   span DAG, per-worker utilization, and the `/runtime/imbalance`
//!   max/mean-busy ratio (the `trace_report` binary's engine).
//! * [`flame`] — collapsed-stack flamegraph export (self-time-exact,
//!   `flamegraph.pl`/inferno-compatible).
//! * [`json`] — the minimal JSON parser backing the validator.
//!
//! Everything upstream gates on [`trace::enabled`], so a run without
//! `--trace-out` pays one atomic load per would-be span and nothing else.

pub mod chrome;
pub mod counters;
pub mod critpath;
pub mod flame;
pub mod json;
pub mod sampler;
pub mod trace;

pub use chrome::{export, export_with_counters, validate, FlowEdge, SpanRecord, TraceSummary};
pub use counters::{
    render_step_table, render_table, AtomicHistogram, Collector, CounterRegistry, CounterSnapshot,
    CounterValue, Histogram, HISTOGRAM_BUCKETS, HISTOGRAM_MAX_RELATIVE_ERROR,
};
pub use critpath::{
    clock_offsets, critical_path, critical_path_distributed, default_phases, imbalance_ratio,
    worker_utilization, CriticalPath, DistCriticalPath, PhaseContribution, PhaseSegment,
    WorkerUtilization,
};
pub use flame::{collapsed_stacks, render_collapsed};
pub use sampler::{Sampler, TimeSeries, SERIES_CAPACITY};
pub use trace::{
    drain, enabled, flow_end, flow_start, instant, now_ns, reset, set_enabled, set_thread_label,
    span, tracer_allocs, Cat, Event, EventKind, SpanGuard, ThreadLabel, ThreadMeta, Trace,
    RING_CAPACITY,
};
