//! Property tests for the full parcel wire path: serialize → frame →
//! (split) deframe → deserialize, over arbitrary parcels, arbitrary
//! single/batch frame mixes, arbitrary trace contexts, and arbitrary
//! stream chunking — the invariant every parcelport relies on.

use bytes::Bytes;
use distrib::frame::{encode_batch, encode_single, DecodedParcel, FrameDecoder, TraceCtx};
use distrib::{Agas, LocalityId, ParcelMsg};
use proptest::prelude::*;

/// Arbitrary parcels. Gids come out of a real `Agas` so they carry the same
/// creator/sequence bit packing production gids have.
fn arb_parcel() -> impl Strategy<Value = ParcelMsg> {
    let request = (
        0..64u32,
        0..64u32,
        0..200u64,
        ".{0,24}",
        proptest::collection::vec(any::<u8>(), 0..2048),
        any::<u64>(),
    )
        .prop_map(|(from, creator, skip, action, payload, call_id)| {
            let agas = Agas::new();
            for _ in 0..skip {
                agas.new_gid(LocalityId(creator));
            }
            ParcelMsg::Request {
                from: LocalityId(from),
                target: agas.new_gid(LocalityId(creator)),
                action,
                payload,
                call_id,
            }
        });
    let response = (
        any::<u64>(),
        prop_oneof![
            proptest::collection::vec(any::<u8>(), 0..2048).prop_map(Ok),
            ".{0,80}".prop_map(Err),
        ],
    )
        .prop_map(|(call_id, result)| ParcelMsg::Response { call_id, result });
    prop_oneof![request, response]
}

/// Arbitrary wire trace contexts — any bit pattern must round-trip.
fn arb_ctx() -> impl Strategy<Value = TraceCtx> {
    (any::<u32>(), any::<u64>(), any::<u64>()).prop_map(|(origin, flow, send_ns)| TraceCtx {
        origin,
        flow,
        send_ns,
    })
}

/// Feed `stream` to a fresh decoder, split at the (deduplicated, sorted)
/// cut points, and return every parcel it yields. Checks the decoder
/// ends cleanly at a frame boundary.
fn feed_split(stream: &[u8], cuts: &[usize]) -> Vec<DecodedParcel> {
    let mut idx: Vec<usize> = cuts.iter().map(|c| c % (stream.len() + 1)).collect();
    idx.sort_unstable();
    let mut dec = FrameDecoder::new();
    let mut got = Vec::new();
    let mut prev = 0;
    for i in idx {
        got.extend(dec.feed(&stream[prev..i]).expect("valid stream"));
        prev = i;
    }
    got.extend(dec.feed(&stream[prev..]).expect("valid stream"));
    assert!(dec.is_clean(), "stream must end on a frame boundary");
    got
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// wire encode/decode alone is lossless for any parcel.
    #[test]
    fn parcel_wire_roundtrip(p in arb_parcel()) {
        let bytes = p.to_wire().unwrap();
        prop_assert_eq!(ParcelMsg::from_wire(&bytes).unwrap(), p);
    }

    /// A stream of single-parcel frames survives arbitrary chunk splits,
    /// parcel and trace context both intact.
    #[test]
    fn single_frames_roundtrip_under_any_split(
        parcels in proptest::collection::vec((arb_parcel(), arb_ctx()), 1..8),
        cuts in proptest::collection::vec(any::<usize>(), 0..12),
    ) {
        let mut stream = Vec::new();
        for (p, ctx) in &parcels {
            stream.extend_from_slice(&encode_single(&p.to_wire().unwrap(), *ctx));
        }
        let decoded = feed_split(&stream, &cuts);
        prop_assert_eq!(decoded.len(), parcels.len());
        for (d, (p, ctx)) in decoded.iter().zip(&parcels) {
            prop_assert_eq!(&ParcelMsg::from_wire(&d.body).unwrap(), p);
            prop_assert_eq!(&d.ctx, ctx);
        }
    }

    /// One coalesced batch frame survives byte-at-a-time delivery.
    #[test]
    fn batch_frame_roundtrips_byte_at_a_time(
        parcels in proptest::collection::vec((arb_parcel(), arb_ctx()), 1..10),
    ) {
        let wires: Vec<(Bytes, TraceCtx)> = parcels
            .iter()
            .map(|(p, ctx)| (p.to_wire().unwrap(), *ctx))
            .collect();
        let frame = encode_batch(&wires);
        let mut dec = FrameDecoder::new();
        let mut decoded = Vec::new();
        for b in frame.iter() {
            decoded.extend(dec.feed(&[*b]).unwrap());
        }
        prop_assert!(dec.is_clean());
        prop_assert_eq!(decoded.len(), parcels.len());
        for (d, (p, ctx)) in decoded.iter().zip(&parcels) {
            prop_assert_eq!(&ParcelMsg::from_wire(&d.body).unwrap(), p);
            prop_assert_eq!(&d.ctx, ctx);
        }
    }

    /// A mixed stream of single and batch frames — what a coalescing sender
    /// actually produces — preserves parcel order under arbitrary splits.
    #[test]
    fn mixed_frame_stream_preserves_order(
        groups in proptest::collection::vec(
            proptest::collection::vec((arb_parcel(), arb_ctx()), 1..5), 1..5),
        cuts in proptest::collection::vec(any::<usize>(), 0..16),
    ) {
        let mut stream = Vec::new();
        let mut expected = Vec::new();
        for group in &groups {
            let wires: Vec<(Bytes, TraceCtx)> = group
                .iter()
                .map(|(p, ctx)| (p.to_wire().unwrap(), *ctx))
                .collect();
            // The coalescer frames a lone survivor as a single, a fuller
            // queue as a batch: mirror that here.
            if wires.len() == 1 {
                stream.extend_from_slice(&encode_single(&wires[0].0, wires[0].1));
            } else {
                stream.extend_from_slice(&encode_batch(&wires));
            }
            expected.extend(group.iter().cloned());
        }
        let decoded = feed_split(&stream, &cuts);
        let out: Vec<(ParcelMsg, TraceCtx)> = decoded
            .iter()
            .map(|d| (ParcelMsg::from_wire(&d.body).unwrap(), d.ctx))
            .collect();
        prop_assert_eq!(out, expected);
    }
}
