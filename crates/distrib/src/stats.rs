//! Communication statistics — the measured quantities the Fig. 8 projection
//! consumes (message counts and byte volumes per backend), plus the local
//! action count that the unified local/remote syntax makes free.

use std::sync::atomic::{AtomicU64, Ordering};

/// Framing overhead charged per parcel (gid, action id, call id, lengths) —
/// roughly HPX's parcel header.
pub const PARCEL_HEADER_BYTES: u64 = 48;

/// Thread-safe communication counters for one cluster.
#[derive(Debug, Default)]
pub struct NetStats {
    messages: AtomicU64,
    bytes: AtomicU64,
    remote_actions: AtomicU64,
    local_actions: AtomicU64,
}

/// Immutable snapshot of [`NetStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetSnapshot {
    /// Parcels put on the wire (requests + responses).
    pub messages: u64,
    /// Total bytes on the wire, headers included.
    pub bytes: u64,
    /// Action invocations that crossed localities.
    pub remote_actions: u64,
    /// Action invocations satisfied locally (no serialization on the wire).
    pub local_actions: u64,
}

impl NetStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one parcel of `payload_bytes` payload.
    pub fn record_message(&self, payload_bytes: u64) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(payload_bytes + PARCEL_HEADER_BYTES, Ordering::Relaxed);
    }

    /// Record a remote action invocation (its two parcels are recorded
    /// separately via [`NetStats::record_message`]).
    pub fn record_remote_action(&self) {
        self.remote_actions.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a locally satisfied action.
    pub fn record_local_action(&self) {
        self.local_actions.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot all counters.
    pub fn snapshot(&self) -> NetSnapshot {
        NetSnapshot {
            messages: self.messages.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            remote_actions: self.remote_actions.load(Ordering::Relaxed),
            local_actions: self.local_actions.load(Ordering::Relaxed),
        }
    }

    /// Zero all counters.
    pub fn reset(&self) {
        self.messages.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
        self.remote_actions.store(0, Ordering::Relaxed);
        self.local_actions.store(0, Ordering::Relaxed);
    }
}

impl NetSnapshot {
    /// Difference since an earlier snapshot.
    pub fn since(&self, earlier: &NetSnapshot) -> NetSnapshot {
        NetSnapshot {
            messages: self.messages - earlier.messages,
            bytes: self.bytes - earlier.bytes,
            remote_actions: self.remote_actions - earlier.remote_actions,
            local_actions: self.local_actions - earlier.local_actions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_recording_includes_header() {
        let s = NetStats::new();
        s.record_message(100);
        s.record_message(0);
        let snap = s.snapshot();
        assert_eq!(snap.messages, 2);
        assert_eq!(snap.bytes, 100 + 2 * PARCEL_HEADER_BYTES);
    }

    #[test]
    fn action_kinds_tracked_separately() {
        let s = NetStats::new();
        s.record_remote_action();
        s.record_local_action();
        s.record_local_action();
        let snap = s.snapshot();
        assert_eq!(snap.remote_actions, 1);
        assert_eq!(snap.local_actions, 2);
    }

    #[test]
    fn reset_and_since() {
        let s = NetStats::new();
        s.record_message(10);
        let first = s.snapshot();
        s.record_message(20);
        let second = s.snapshot();
        let delta = second.since(&first);
        assert_eq!(delta.messages, 1);
        assert_eq!(delta.bytes, 20 + PARCEL_HEADER_BYTES);
        s.reset();
        assert_eq!(s.snapshot(), NetSnapshot::default());
    }
}
