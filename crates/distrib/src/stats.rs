//! Communication statistics — the measured quantities the Fig. 8 projection
//! consumes (message counts and byte volumes per backend), plus the local
//! action count that the unified local/remote syntax makes free.
//!
//! Two layers of counters exist since the parcelport refactor:
//!
//! * [`PortStats`] — owned by one [`crate::parcelport::Parcelport`]: frames
//!   and bytes actually put on the (simulated) wire, parcels carried,
//!   coalesced batches, and the outbox high-water mark. These are the
//!   *measured* quantities: `bytes` is the length of the real framed wire
//!   image, not an estimate.
//! * [`NetStats`] — cluster-level action accounting (local vs remote
//!   invocations). [`crate::Cluster::net_stats`] merges both into the
//!   backwards-compatible [`NetSnapshot`].

use std::sync::atomic::{AtomicU64, Ordering};

use apex_lite::counters::AtomicHistogram;

/// Framing overhead charged per parcel (gid, action id, call id, lengths) —
/// roughly HPX's parcel header.
pub const PARCEL_HEADER_BYTES: u64 = 48;

#[derive(Debug, Default)]
struct LinkStats {
    parcels: AtomicU64,
    bytes: AtomicU64,
}

/// One directed locality link's traffic, as reported by
/// [`CommMetrics::links`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSnapshot {
    /// Sending locality.
    pub src: u32,
    /// Receiving locality.
    pub dst: u32,
    /// Parcels received over this link.
    pub parcels: u64,
    /// Payload bytes received over this link.
    pub bytes: u64,
}

/// Comms-level causal-tracing metrics: per-link parcel/byte matrices and
/// the latency histograms behind `/comms/parcel_latency` and
/// `/comms/coalesce_flush_delay`. One per cluster, shared by the
/// coalescer (flush-delay side) and every locality's receive loop
/// (latency + link side). All recording is lock-free relaxed atomics, so
/// it stays on even when tracing is off — these are counters, not spans.
#[derive(Debug)]
pub struct CommMetrics {
    localities: u32,
    /// Row-major `src * localities + dst` directed-link matrix.
    links: Vec<LinkStats>,
    /// One-way parcel latency (submit stamp → receive), ns.
    pub parcel_latency: AtomicHistogram,
    /// Time a parcel waited in a coalescer queue before its batch left, ns.
    pub coalesce_flush_delay: AtomicHistogram,
}

impl CommMetrics {
    /// Fresh metrics for a cluster of `localities`.
    pub fn new(localities: u32) -> Self {
        CommMetrics {
            localities,
            links: (0..localities as usize * localities as usize)
                .map(|_| LinkStats::default())
                .collect(),
            parcel_latency: AtomicHistogram::new(),
            coalesce_flush_delay: AtomicHistogram::new(),
        }
    }

    /// Number of localities the link matrix covers.
    pub fn localities(&self) -> u32 {
        self.localities
    }

    /// Record one received parcel of `payload_bytes` on the `src → dst`
    /// link. Out-of-range localities are ignored (a desynchronized header
    /// must not panic the receive loop).
    pub fn record_link(&self, src: u32, dst: u32, payload_bytes: u64) {
        if src >= self.localities || dst >= self.localities {
            return;
        }
        let link = &self.links[src as usize * self.localities as usize + dst as usize];
        link.parcels.fetch_add(1, Ordering::Relaxed);
        link.bytes.fetch_add(payload_bytes, Ordering::Relaxed);
    }

    /// Snapshot every link that carried traffic, `(src, dst)` ordered.
    pub fn links(&self) -> Vec<LinkSnapshot> {
        let n = self.localities as usize;
        let mut out = Vec::new();
        for src in 0..n {
            for dst in 0..n {
                let link = &self.links[src * n + dst];
                let parcels = link.parcels.load(Ordering::Relaxed);
                let bytes = link.bytes.load(Ordering::Relaxed);
                if parcels > 0 {
                    out.push(LinkSnapshot {
                        src: src as u32,
                        dst: dst as u32,
                        parcels,
                        bytes,
                    });
                }
            }
        }
        out
    }
}

/// Thread-safe communication counters for one cluster.
#[derive(Debug, Default)]
pub struct NetStats {
    messages: AtomicU64,
    bytes: AtomicU64,
    remote_actions: AtomicU64,
    local_actions: AtomicU64,
}

/// Immutable snapshot of [`NetStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetSnapshot {
    /// Parcels put on the wire (requests + responses).
    pub messages: u64,
    /// Total bytes on the wire, headers included.
    pub bytes: u64,
    /// Action invocations that crossed localities.
    pub remote_actions: u64,
    /// Action invocations satisfied locally (no serialization on the wire).
    pub local_actions: u64,
}

impl NetStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one parcel of `payload_bytes` payload.
    pub fn record_message(&self, payload_bytes: u64) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(payload_bytes + PARCEL_HEADER_BYTES, Ordering::Relaxed);
    }

    /// Record a remote action invocation (its two parcels are recorded
    /// separately via [`NetStats::record_message`]).
    pub fn record_remote_action(&self) {
        self.remote_actions.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a locally satisfied action.
    pub fn record_local_action(&self) {
        self.local_actions.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot all counters.
    pub fn snapshot(&self) -> NetSnapshot {
        NetSnapshot {
            messages: self.messages.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            remote_actions: self.remote_actions.load(Ordering::Relaxed),
            local_actions: self.local_actions.load(Ordering::Relaxed),
        }
    }

    /// Zero all counters.
    pub fn reset(&self) {
        self.messages.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
        self.remote_actions.store(0, Ordering::Relaxed);
        self.local_actions.store(0, Ordering::Relaxed);
    }
}

impl NetSnapshot {
    /// Difference since an earlier snapshot.
    pub fn since(&self, earlier: &NetSnapshot) -> NetSnapshot {
        NetSnapshot {
            messages: self.messages - earlier.messages,
            bytes: self.bytes - earlier.bytes,
            remote_actions: self.remote_actions - earlier.remote_actions,
            local_actions: self.local_actions - earlier.local_actions,
        }
    }
}

/// Thread-safe counters owned by one parcelport instance.
#[derive(Debug, Default)]
pub struct PortStats {
    messages: AtomicU64,
    bytes: AtomicU64,
    parcels: AtomicU64,
    batches: AtomicU64,
    queue_depth_hwm: AtomicU64,
    /// Step index at which `queue_depth_hwm` was last raised — lines a
    /// comms spike up with the trace spans of the step that caused it.
    queue_depth_hwm_step: AtomicU64,
    /// Current application step, advanced by [`PortStats::note_step`].
    current_step: AtomicU64,
}

/// Immutable snapshot of [`PortStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PortSnapshot {
    /// Frames put on the wire (a coalesced batch counts once).
    pub messages: u64,
    /// Total framed bytes on the wire (headers included, measured).
    pub bytes: u64,
    /// Parcels carried (a batch of k parcels adds k).
    pub parcels: u64,
    /// Frames that were coalesced batches of two or more parcels.
    pub batches: u64,
    /// High-water mark of queued-but-unsent parcels/frames (coalescer
    /// pending + explicit-progress outbox).
    pub queue_depth_hwm: u64,
    /// Step index during which the high-water mark was reached (0 when it
    /// was reached before the first [`PortStats::note_step`] call).
    pub queue_depth_hwm_step: u64,
}

impl PortStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one frame of `frame_bytes` carrying `parcels` parcels.
    pub fn record_frame(&self, frame_bytes: u64, parcels: u64) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(frame_bytes, Ordering::Relaxed);
        self.parcels.fetch_add(parcels, Ordering::Relaxed);
        if parcels >= 2 {
            self.batches.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Raise the queue-depth high-water mark to at least `depth`,
    /// remembering the current step when it actually rises.
    pub fn observe_queue_depth(&self, depth: u64) {
        let prev = self.queue_depth_hwm.fetch_max(depth, Ordering::Relaxed);
        if depth > prev {
            // Benign race: concurrent raisers may both store; either step
            // index is one during which the mark was at its maximum.
            self.queue_depth_hwm_step
                .store(self.current_step.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// Tell the port which application step is running, so queue-depth
    /// spikes can be attributed to it.
    pub fn note_step(&self, step: u64) {
        self.current_step.store(step, Ordering::Relaxed);
    }

    /// Snapshot all counters.
    pub fn snapshot(&self) -> PortSnapshot {
        PortSnapshot {
            messages: self.messages.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            parcels: self.parcels.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            queue_depth_hwm: self.queue_depth_hwm.load(Ordering::Relaxed),
            queue_depth_hwm_step: self.queue_depth_hwm_step.load(Ordering::Relaxed),
        }
    }

    /// Zero all counters (high-water mark included; the step clock is
    /// left running).
    pub fn reset(&self) {
        self.messages.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
        self.parcels.store(0, Ordering::Relaxed);
        self.batches.store(0, Ordering::Relaxed);
        self.queue_depth_hwm.store(0, Ordering::Relaxed);
        self.queue_depth_hwm_step.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_stats_count_frames_parcels_batches() {
        let s = PortStats::new();
        s.record_frame(100, 1);
        s.record_frame(300, 4);
        s.observe_queue_depth(3);
        s.observe_queue_depth(2);
        let snap = s.snapshot();
        assert_eq!(snap.messages, 2);
        assert_eq!(snap.bytes, 400);
        assert_eq!(snap.parcels, 5);
        assert_eq!(snap.batches, 1, "only the 4-parcel frame is a batch");
        assert_eq!(snap.queue_depth_hwm, 3, "hwm keeps the maximum");
        s.reset();
        assert_eq!(s.snapshot(), PortSnapshot::default());
    }

    #[test]
    fn queue_depth_hwm_remembers_the_step_that_set_it() {
        let s = PortStats::new();
        s.observe_queue_depth(2);
        s.note_step(4);
        s.observe_queue_depth(7);
        s.note_step(5);
        s.observe_queue_depth(7); // does not raise: step stays 4
        s.observe_queue_depth(3);
        let snap = s.snapshot();
        assert_eq!(snap.queue_depth_hwm, 7);
        assert_eq!(snap.queue_depth_hwm_step, 4);
        // A higher observation in a later step moves the attribution.
        s.note_step(9);
        s.observe_queue_depth(8);
        assert_eq!(s.snapshot().queue_depth_hwm_step, 9);
    }

    #[test]
    fn message_recording_includes_header() {
        let s = NetStats::new();
        s.record_message(100);
        s.record_message(0);
        let snap = s.snapshot();
        assert_eq!(snap.messages, 2);
        assert_eq!(snap.bytes, 100 + 2 * PARCEL_HEADER_BYTES);
    }

    #[test]
    fn action_kinds_tracked_separately() {
        let s = NetStats::new();
        s.record_remote_action();
        s.record_local_action();
        s.record_local_action();
        let snap = s.snapshot();
        assert_eq!(snap.remote_actions, 1);
        assert_eq!(snap.local_actions, 2);
    }

    #[test]
    fn comm_metrics_track_links_and_latency_histograms() {
        let m = CommMetrics::new(2);
        m.record_link(0, 1, 100);
        m.record_link(0, 1, 50);
        m.record_link(1, 0, 7);
        m.record_link(5, 0, 999); // out of range: ignored, no panic
        let links = m.links();
        assert_eq!(links.len(), 2, "only links with traffic are reported");
        assert_eq!(
            links[0],
            LinkSnapshot {
                src: 0,
                dst: 1,
                parcels: 2,
                bytes: 150
            }
        );
        assert_eq!(links[1].parcels, 1);
        m.parcel_latency.record(1000);
        m.parcel_latency.record(2000);
        assert_eq!(m.parcel_latency.snapshot().count(), 2);
        assert_eq!(m.coalesce_flush_delay.snapshot().count(), 0);
    }

    #[test]
    fn reset_and_since() {
        let s = NetStats::new();
        s.record_message(10);
        let first = s.snapshot();
        s.record_message(20);
        let second = s.snapshot();
        let delta = second.since(&first);
        assert_eq!(delta.messages, 1);
        assert_eq!(delta.bytes, 20 + PARCEL_HEADER_BYTES);
        s.reset();
        assert_eq!(s.snapshot(), NetSnapshot::default());
    }
}
