//! Multi-locality cluster: components, remote actions and parcel routing.
//!
//! A [`Cluster`] simulates the paper's two-board VisionFive2 setup inside
//! one process: every locality owns its own `amt::Runtime` (one per board,
//! `--hpx:threads=4`) and a frame receive loop. Remote action invocations
//! serialize their arguments through [`crate::wire`], travel as
//! [`crate::parcel::ParcelMsg`]s through the comms stack — the
//! [`crate::coalesce::Coalescer`] (batching + backpressure), then the
//! configured [`crate::parcelport::Parcelport`] — execute as tasks on the
//! target locality's runtime, and return their serialized result the same
//! way. The byte/message statistics the Fig. 8 projection consumes are
//! therefore measured off real framed wire images, not guessed.
//!
//! Local invocations take HPX's "unified syntax" fast path: same API, no
//! wire bytes, a direct task on the local runtime.
//!
//! Delivery routing uses a *switchboard*: the parcelport's deliver closure
//! looks up the destination's frame channel in a shared table. On shutdown
//! the cluster clears the table, which closes every channel and ends the
//! receive loops — frames sent during teardown are dropped like writes to
//! a closed socket.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use bytes::Bytes;
use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use serde::de::DeserializeOwned;
use serde::Serialize;

use amt::{Future, Promise, Runtime};
use rv_machine::NetBackend;

use crate::agas::{Agas, Gid, LocalityId};
use crate::coalesce::{CoalesceConfig, Coalescer};
use crate::frame;
use crate::parcel::ParcelMsg;
use crate::parcelport::{self, Deliver};
use crate::stats::{CommMetrics, NetSnapshot, NetStats, PortSnapshot};
use crate::wire;

/// Cluster construction parameters (the paper's cluster: 2 localities ×
/// 4 threads, TCP / MPI / LCI backend).
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of localities (boards).
    pub localities: u32,
    /// Worker threads per locality (`--hpx:threads`).
    pub threads_per_locality: usize,
    /// Communication backend (the parcelport of §3.1 / §6.2.2).
    pub backend: NetBackend,
    /// Parcel-coalescing layer configuration (off by default, matching the
    /// paper's runs).
    pub coalesce: CoalesceConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            localities: 2,
            threads_per_locality: 4,
            backend: NetBackend::Tcp,
            coalesce: CoalesceConfig::default(),
        }
    }
}

type Handler =
    Arc<dyn Fn(&LocalityHandle, Gid, &[u8]) -> Result<Bytes, String> + Send + Sync + 'static>;

/// The deliver-side routing table: one frame channel per locality. Cleared
/// on shutdown to close the channels (see module docs).
type Switchboard = Arc<Mutex<Vec<Sender<Bytes>>>>;

struct LocalityInner {
    id: LocalityId,
    components: Mutex<HashMap<Gid, Box<dyn Any + Send>>>,
    pending: Mutex<HashMap<u64, Promise<Result<Bytes, String>>>>,
    next_call: AtomicU64,
}

struct ClusterInner {
    config: ClusterConfig,
    agas: Agas,
    actions: Mutex<HashMap<String, Handler>>,
    localities: Mutex<Vec<Arc<LocalityInner>>>,
    stats: NetStats,
    /// Send path: coalescer in front of the parcelport. The port itself is
    /// reachable via [`Coalescer::port`].
    coalescer: Coalescer,
    switchboard: Switchboard,
    rx_threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    // Runtimes are deliberately kept *outside* the per-locality Arc:
    // handler tasks hold `Arc<LocalityInner>`, and a task running on a
    // locality's own worker must never be the one that drops that
    // locality's `Runtime` (a pool cannot join itself). The `Cluster` owner
    // drops the runtimes from its own thread instead.
    runtimes: Vec<Runtime>,
}

impl ClusterInner {
    fn locality(&self, id: LocalityId) -> Arc<LocalityInner> {
        let locs = self.localities.lock();
        Arc::clone(
            locs.get(id.0 as usize)
                .unwrap_or_else(|| panic!("no such locality {}", id.0)),
        )
    }

    /// Serialize one parcel and hand it to the comms stack. `from` is the
    /// sending locality — it becomes the parcel's trace-context origin.
    fn send(&self, from: LocalityId, to: LocalityId, msg: &ParcelMsg) {
        let parcel = msg.to_wire().expect("parcel serialization failed");
        self.coalescer.submit(from, to, parcel);
    }
}

/// Handle to one locality of a [`Cluster`]; cloneable and `Send`, used both
/// by application drivers and inside action handlers (handlers receive the
/// handle of the locality they execute on).
#[derive(Clone)]
pub struct LocalityHandle {
    cluster: Weak<ClusterInner>,
    inner: Arc<LocalityInner>,
    runtime: amt::Handle,
}

impl LocalityHandle {
    fn cluster(&self) -> Arc<ClusterInner> {
        self.cluster.upgrade().expect("cluster has been dropped")
    }

    /// This locality's id.
    pub fn id(&self) -> LocalityId {
        self.inner.id
    }

    /// Submission handle for this locality's task runtime.
    pub fn runtime(&self) -> amt::Handle {
        self.runtime.clone()
    }

    /// Scheduler statistics of this locality's runtime.
    pub fn runtime_stats(&self) -> amt::RuntimeStats {
        self.runtime.stats()
    }

    /// Create a component *on this locality* and register it with AGAS.
    pub fn new_component<T: Send + 'static>(&self, value: T) -> Gid {
        let cluster = self.cluster();
        let gid = cluster.agas.new_gid(self.inner.id);
        cluster.agas.register(gid, self.inner.id);
        self.inner
            .components
            .lock()
            .insert(gid, Box::new(Mutex::new(value)));
        gid
    }

    /// Access a component stored on *this* locality. Returns `None` when the
    /// gid does not resolve here or holds a different type.
    pub fn with_component<T: Send + 'static, R>(
        &self,
        gid: Gid,
        f: impl FnOnce(&mut T) -> R,
    ) -> Option<R> {
        let comps = self.inner.components.lock();
        let boxed = comps.get(&gid)?;
        let cell = boxed.downcast_ref::<Mutex<T>>()?;
        let mut guard = cell.lock();
        Some(f(&mut guard))
    }

    /// Destroy a locally stored component and drop its AGAS binding.
    pub fn destroy_component(&self, gid: Gid) -> bool {
        let existed = self.inner.components.lock().remove(&gid).is_some();
        if existed {
            self.cluster().agas.unregister(gid);
        }
        existed
    }

    /// Invoke `action` on the component `gid`, wherever it lives — HPX's
    /// remote function call with unified local/remote syntax. Returns the
    /// future of the (deserialized) result; remote failures (unknown action,
    /// decode errors, handler panics) surface as panics at `.get()`.
    pub fn invoke<Req, Resp>(&self, gid: Gid, action: &str, req: &Req) -> Future<Resp>
    where
        Req: Serialize,
        Resp: DeserializeOwned + Send + 'static,
    {
        let cluster = self.cluster();
        let target = cluster
            .agas
            .resolve(gid)
            .unwrap_or_else(|| panic!("unresolved gid {gid}"));
        let payload = wire::to_bytes(req).expect("request serialization failed");
        if target == self.inner.id {
            cluster.stats.record_local_action();
            let handler = lookup(&cluster, action);
            let me = self.clone();
            let action = action.to_string();
            return self.runtime().spawn(move || {
                let bytes = handler(&me, gid, &payload)
                    .unwrap_or_else(|e| panic!("local action {action} failed: {e}"));
                wire::from_bytes::<Resp>(&bytes).expect("response deserialization failed")
            });
        }
        cluster.stats.record_remote_action();
        let call_id = self.inner.next_call.fetch_add(1, Ordering::Relaxed);
        let (promise, raw) = amt::future_pair::<Result<Bytes, String>>();
        self.inner.pending.lock().insert(call_id, promise);
        cluster.send(
            self.inner.id,
            target,
            &ParcelMsg::Request {
                from: self.inner.id,
                target: gid,
                action: action.to_string(),
                payload: payload.to_vec(),
                call_id,
            },
        );
        let action = action.to_string();
        raw.then(move |res| {
            let bytes = res.unwrap_or_else(|e| panic!("remote action {action} failed: {e}"));
            wire::from_bytes::<Resp>(&bytes).expect("response deserialization failed")
        })
    }

    /// Run `f` as a task on this locality (supervisor/delegate driver code).
    pub fn run<T, F>(&self, f: F) -> Future<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.runtime().spawn(f)
    }
}

fn lookup(cluster: &ClusterInner, action: &str) -> Handler {
    cluster
        .actions
        .lock()
        .get(action)
        .cloned()
        .unwrap_or_else(|| panic!("action {action:?} is not registered"))
}

/// Dispatch one decoded parcel on the receiving locality.
fn dispatch(
    msg: ParcelMsg,
    cluster: &Weak<ClusterInner>,
    me: &Arc<LocalityInner>,
    runtime: &amt::Handle,
) {
    match msg {
        ParcelMsg::Request {
            from,
            target,
            action,
            payload,
            call_id,
        } => {
            let handler = cluster.upgrade().and_then(|c| {
                let actions = c.actions.lock();
                actions.get(&action).cloned()
            });
            let handle = LocalityHandle {
                cluster: cluster.clone(),
                inner: Arc::clone(me),
                runtime: runtime.clone(),
            };
            let cluster_for_task = cluster.clone();
            let my_id = me.id;
            runtime.spawn_detached(move || {
                let result = match handler {
                    Some(h) => {
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            h(&handle, target, &payload)
                        })) {
                            Ok(r) => r.map(|b| b.to_vec()),
                            Err(_) => Err(format!("action {action:?} panicked")),
                        }
                    }
                    None => Err(format!("action {action:?} is not registered")),
                };
                if let Some(c) = cluster_for_task.upgrade() {
                    c.send(my_id, from, &ParcelMsg::Response { call_id, result });
                }
            });
        }
        ParcelMsg::Response { call_id, result } => {
            let promise = me.pending.lock().remove(&call_id);
            if let Some(p) = promise {
                p.set_value(result.map(Bytes::from));
            }
        }
    }
}

/// One locality's receive loop: frames in, parcels dispatched. Ends when
/// the switchboard drops this locality's sender. Each parcel closes its
/// causal-tracing loop here: a `parcel_recv` span encloses the `"f"` flow
/// event matching the sender's `"s"`, the one-way latency (receive minus
/// the submit stamp in the wire header) lands in the
/// `/comms/parcel_latency` histogram, and the `origin → me` link counters
/// advance. The histogram and link metrics stay on with tracing off —
/// they are counters, not spans.
fn rx_loop(
    rx: Receiver<Bytes>,
    cluster: Weak<ClusterInner>,
    me: Weak<LocalityInner>,
    runtime: amt::Handle,
    metrics: Arc<CommMetrics>,
) {
    use apex_lite::trace::{self, Cat};
    while let Ok(framed) = rx.recv() {
        let Some(me_arc) = me.upgrade() else {
            break;
        };
        let parcels = frame::decode_frame(&framed).expect("corrupt frame on parcel channel");
        for parcel in parcels {
            let _span = trace::span(Cat::Comm, "parcel_recv");
            trace::flow_end(Cat::Comm, "parcel", parcel.ctx.flow);
            metrics
                .parcel_latency
                .record(trace::now_ns().saturating_sub(parcel.ctx.send_ns));
            metrics.record_link(parcel.ctx.origin, me_arc.id.0, parcel.body.len() as u64);
            let msg = ParcelMsg::from_wire(&parcel.body).expect("corrupt parcel in frame");
            dispatch(msg, &cluster, &me_arc, &runtime);
        }
    }
}

/// The simulated cluster (see module docs). Dropping it shuts down every
/// locality's runtime and receive loop.
pub struct Cluster {
    inner: Arc<ClusterInner>,
}

impl Cluster {
    /// Boot a cluster per `config`.
    pub fn new(config: ClusterConfig) -> Self {
        assert!(config.localities >= 1, "need at least one locality");
        assert!(config.threads_per_locality >= 1, "need at least one thread");
        let runtimes: Vec<Runtime> = (0..config.localities)
            // Label each locality's workers with its id: a merged trace
            // shows one Chrome process lane per locality.
            .map(|i| Runtime::new_labeled(config.threads_per_locality, i))
            .collect();
        let switchboard: Switchboard = Arc::new(Mutex::new(Vec::new()));
        let deliver: Deliver = {
            let switchboard = Arc::clone(&switchboard);
            Arc::new(move |to: LocalityId, framed: Bytes| {
                let board = switchboard.lock();
                if let Some(tx) = board.get(to.0 as usize) {
                    // A closed channel means the cluster is shutting down:
                    // drop the frame, like a write to a closed socket.
                    let _ = tx.send(framed);
                }
            })
        };
        let port = parcelport::open(config.backend, deliver);
        let coalescer = Coalescer::new(config.coalesce, config.localities, port);
        let inner = Arc::new(ClusterInner {
            config,
            agas: Agas::new(),
            actions: Mutex::new(HashMap::new()),
            localities: Mutex::new(Vec::new()),
            stats: NetStats::new(),
            coalescer,
            switchboard,
            rx_threads: Mutex::new(Vec::new()),
            runtimes,
        });
        for i in 0..config.localities {
            let (tx, rx) = unbounded();
            let loc = Arc::new(LocalityInner {
                id: LocalityId(i),
                components: Mutex::new(HashMap::new()),
                pending: Mutex::new(HashMap::new()),
                next_call: AtomicU64::new(0),
            });
            let weak_cluster = Arc::downgrade(&inner);
            let weak_loc = Arc::downgrade(&loc);
            let handle = inner.runtimes[i as usize].handle();
            let metrics = Arc::clone(inner.coalescer.metrics());
            let join = std::thread::Builder::new()
                .name(format!("parcel-rx-{i}"))
                .spawn(move || {
                    apex_lite::trace::set_thread_label(
                        i,
                        apex_lite::trace::ThreadLabel::Named("parcel-rx"),
                    );
                    rx_loop(rx, weak_cluster, weak_loc, handle, metrics)
                })
                .expect("failed to spawn parcel receive thread");
            inner.switchboard.lock().push(tx);
            inner.localities.lock().push(loc);
            inner.rx_threads.lock().push(join);
        }
        Cluster { inner }
    }

    /// Convenience: the paper's in-house setup (2 boards × 4 cores) with the
    /// chosen backend.
    pub fn visionfive2_pair(backend: NetBackend) -> Self {
        Cluster::new(ClusterConfig {
            localities: 2,
            threads_per_locality: 4,
            backend,
            coalesce: CoalesceConfig::default(),
        })
    }

    /// Register an action handler under `name` on **all** localities (like
    /// an HPX action: the same code is linked into every process image).
    pub fn register_action<Req, Resp, F>(&self, name: &str, f: F)
    where
        Req: DeserializeOwned,
        Resp: Serialize,
        F: Fn(&LocalityHandle, Gid, Req) -> Resp + Send + Sync + 'static,
    {
        let handler: Handler = Arc::new(move |ctx, gid, bytes| {
            let req: Req = wire::from_bytes(bytes).map_err(|e| format!("decode: {e}"))?;
            let resp = f(ctx, gid, req);
            wire::to_bytes(&resp).map_err(|e| format!("encode: {e}"))
        });
        let prev = self.inner.actions.lock().insert(name.to_string(), handler);
        assert!(prev.is_none(), "action {name:?} registered twice");
    }

    /// Handle to locality `i`.
    pub fn locality(&self, i: u32) -> LocalityHandle {
        LocalityHandle {
            cluster: Arc::downgrade(&self.inner),
            inner: self.inner.locality(LocalityId(i)),
            runtime: self.inner.runtimes[i as usize].handle(),
        }
    }

    /// Number of localities.
    pub fn num_localities(&self) -> u32 {
        self.inner.config.localities
    }

    /// The configured parcelport backend.
    pub fn backend(&self) -> NetBackend {
        self.inner.config.backend
    }

    /// Flush the comms stack: close pending coalescer batches and drive the
    /// parcelport to quiescence. After this returns every submitted parcel
    /// has been *delivered* (handlers may still be running).
    pub fn flush_network(&self) {
        self.inner.coalescer.flush();
    }

    /// Communication statistics so far: measured wire traffic from the
    /// parcelport merged with the cluster's action accounting.
    pub fn net_stats(&self) -> NetSnapshot {
        let port = self.inner.coalescer.port().stats();
        let actions = self.inner.stats.snapshot();
        NetSnapshot {
            messages: port.messages,
            bytes: port.bytes,
            remote_actions: actions.remote_actions,
            local_actions: actions.local_actions,
        }
    }

    /// Raw per-port counters (frames, parcels, coalesced batches, queue
    /// high-water mark) — the measured side of the Fig. 8 accounting.
    pub fn port_stats(&self) -> PortSnapshot {
        self.inner.coalescer.port().stats()
    }

    /// Zero the communication statistics (between measurement phases).
    pub fn reset_net_stats(&self) {
        self.inner.stats.reset();
        self.inner.coalescer.port().reset_stats();
    }

    /// Tell the comms stack which application step is running, so
    /// queue-depth high-water marks are attributed to the step that caused
    /// them ([`PortSnapshot::queue_depth_hwm_step`]).
    pub fn note_step(&self, step: u64) {
        self.inner.coalescer.port().note_step(step);
    }

    /// Register this cluster's counters with an apex-lite registry:
    /// per-locality scheduler counters under `/runtime/locality{i}/...`
    /// (each with its own `imbalance` gauge), the cluster-wide
    /// `/runtime/imbalance` roll-up (max/mean busy time across *all*
    /// workers of *all* localities — the load-balance signal for the
    /// scale-out work), and comms counters under `/comms/...`. The comms
    /// provider holds a weak reference, so a registry never keeps the
    /// cluster alive.
    pub fn register_counters(&self, registry: &mut apex_lite::CounterRegistry) {
        for (i, rt) in self.inner.runtimes.iter().enumerate() {
            rt.handle()
                .register_counters(registry, &format!("/runtime/locality{i}"));
        }
        let handles: Vec<amt::Handle> = self.inner.runtimes.iter().map(|rt| rt.handle()).collect();
        registry.register("/runtime", move |c| {
            let all: Vec<amt::WorkerStats> =
                handles.iter().flat_map(|h| h.worker_stats()).collect();
            c.gauge("imbalance", amt::imbalance(&all));
        });
        let weak = Arc::downgrade(&self.inner);
        // The comm metrics outlive the cluster via their own Arc (they do
        // not keep runtimes or receive loops alive), so the histograms
        // stay sampleable through the final post-run snapshot.
        let metrics = Arc::clone(self.inner.coalescer.metrics());
        registry.register("/comms", move |c| {
            let Some(inner) = weak.upgrade() else { return };
            let port = inner.coalescer.port().stats();
            c.count("messages", port.messages);
            c.count("bytes", port.bytes);
            c.count("parcels", port.parcels);
            c.count("batches", port.batches);
            c.count("queue_depth_hwm", port.queue_depth_hwm);
            c.count("queue_depth_hwm_step", port.queue_depth_hwm_step);
            let actions = inner.stats.snapshot();
            c.count("remote_actions", actions.remote_actions);
            c.count("local_actions", actions.local_actions);
            c.histogram("parcel_latency", &metrics.parcel_latency.snapshot());
            c.histogram(
                "coalesce_flush_delay",
                &metrics.coalesce_flush_delay.snapshot(),
            );
            for link in metrics.links() {
                c.count(
                    &format!("link{}_{}/parcels", link.src, link.dst),
                    link.parcels,
                );
                c.count(&format!("link{}_{}/bytes", link.src, link.dst), link.bytes);
            }
        });
    }

    /// Aggregate scheduler statistics across all localities.
    pub fn runtime_stats(&self) -> amt::RuntimeStats {
        let mut agg = amt::RuntimeStats::default();
        for rt in &self.inner.runtimes {
            let s = rt.stats();
            agg.tasks_spawned += s.tasks_spawned;
            agg.tasks_executed += s.tasks_executed;
            agg.steals += s.steals;
            agg.parks += s.parks;
            agg.yields += s.yields;
            agg.panics += s.panics;
        }
        agg
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        // Deliver in-flight parcels while the receive loops still run, so
        // shutdown never strands a response a caller could still observe.
        self.inner.coalescer.flush();
        // Dropping the senders closes the frame channels, ending the
        // receive loops; frames transmitted after this point are dropped.
        self.inner.switchboard.lock().clear();
        let joins: Vec<_> = self.inner.rx_threads.lock().drain(..).collect();
        for j in joins {
            let _ = j.join();
        }
        self.inner.localities.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    fn two_node() -> Cluster {
        Cluster::new(ClusterConfig {
            localities: 2,
            threads_per_locality: 2,
            backend: NetBackend::Tcp,
            coalesce: CoalesceConfig::default(),
        })
    }

    #[test]
    fn component_lives_where_created() {
        let c = two_node();
        let l0 = c.locality(0);
        let l1 = c.locality(1);
        let gid = l1.new_component(123u64);
        assert!(l1.with_component::<u64, _>(gid, |v| *v).is_some());
        assert!(l0.with_component::<u64, _>(gid, |v| *v).is_none());
    }

    #[test]
    fn wrong_type_access_is_none() {
        let c = two_node();
        let l0 = c.locality(0);
        let gid = l0.new_component(1u64);
        assert!(l0.with_component::<String, _>(gid, |_| ()).is_none());
    }

    #[test]
    fn local_invoke_skips_the_wire() {
        let c = two_node();
        c.register_action("double", |ctx: &LocalityHandle, gid, x: u64| {
            ctx.with_component::<u64, _>(gid, |v| *v + x).unwrap()
        });
        let l0 = c.locality(0);
        let gid = l0.new_component(10u64);
        let r: u64 = l0.invoke(gid, "double", &5u64).get();
        assert_eq!(r, 15);
        let s = c.net_stats();
        assert_eq!(s.messages, 0);
        assert_eq!(s.local_actions, 1);
        assert_eq!(s.remote_actions, 0);
    }

    #[test]
    fn remote_invoke_crosses_the_wire() {
        let c = two_node();
        c.register_action("get", |ctx: &LocalityHandle, gid, (): ()| {
            ctx.with_component::<u64, _>(gid, |v| *v).unwrap()
        });
        let l0 = c.locality(0);
        let l1 = c.locality(1);
        let gid = l1.new_component(77u64);
        let r: u64 = l0.invoke(gid, "get", &()).get();
        assert_eq!(r, 77);
        let s = c.net_stats();
        assert_eq!(s.remote_actions, 1);
        assert_eq!(s.messages, 2, "request + response");
        assert!(s.bytes > 0);
        let p = c.port_stats();
        assert_eq!(p.parcels, 2, "one parcel per frame without coalescing");
        assert_eq!(p.batches, 0);
    }

    #[test]
    fn many_concurrent_remote_calls() {
        let c = two_node();
        c.register_action("add", |ctx: &LocalityHandle, gid, x: u64| {
            ctx.with_component::<u64, _>(gid, |v| {
                *v += x;
                *v
            })
            .unwrap()
        });
        let l0 = c.locality(0);
        let l1 = c.locality(1);
        let gid = l1.new_component(0u64);
        let futures: Vec<amt::Future<u64>> =
            (0..100).map(|_| l0.invoke(gid, "add", &1u64)).collect();
        let results = amt::when_all(futures).get();
        assert_eq!(results.len(), 100);
        assert_eq!(l1.with_component::<u64, _>(gid, |v| *v), Some(100));
        assert_eq!(c.net_stats().remote_actions, 100);
    }

    #[test]
    fn handler_can_invoke_further_actions() {
        // Tree-traversal shape: an action on locality 1 calls back into an
        // action on locality 0.
        let c = two_node();
        c.register_action("leaf", |_ctx: &LocalityHandle, _gid, x: u64| x * 2);
        c.register_action("node", |ctx: &LocalityHandle, _gid, child: Gid| -> u64 {
            ctx.invoke::<u64, u64>(child, "leaf", &21).get()
        });
        let l0 = c.locality(0);
        let l1 = c.locality(1);
        let leaf_gid = l0.new_component(());
        let node_gid = l1.new_component(());
        let r: u64 = l0.invoke(node_gid, "node", &leaf_gid).get();
        assert_eq!(r, 42);
    }

    #[test]
    fn unknown_action_panics_at_get() {
        let c = two_node();
        let l0 = c.locality(0);
        let l1 = c.locality(1);
        let gid = l1.new_component(0u64);
        let f: amt::Future<u64> = l0.invoke(gid, "missing", &());
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f.get())).is_err());
    }

    #[test]
    fn handler_panic_reported_to_caller() {
        let c = two_node();
        c.register_action("boom", |_: &LocalityHandle, _, (): ()| -> u64 {
            panic!("handler exploded")
        });
        let l0 = c.locality(0);
        let l1 = c.locality(1);
        let gid = l1.new_component(());
        let f: amt::Future<u64> = l0.invoke(gid, "boom", &());
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f.get())).is_err());
    }

    #[test]
    fn destroy_component_unbinds() {
        let c = two_node();
        let l0 = c.locality(0);
        let gid = l0.new_component(5i32);
        assert!(l0.destroy_component(gid));
        assert!(!l0.destroy_component(gid));
        assert!(l0.with_component::<i32, _>(gid, |v| *v).is_none());
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct GhostMsg {
        face: u8,
        data: Vec<f64>,
    }

    #[test]
    fn structured_payloads_roundtrip_across_wire() {
        let c = two_node();
        c.register_action("reflect", |_: &LocalityHandle, _, g: GhostMsg| GhostMsg {
            face: g.face + 1,
            data: g.data.iter().map(|x| x * 2.0).collect(),
        });
        let l0 = c.locality(0);
        let l1 = c.locality(1);
        let gid = l1.new_component(());
        let out: GhostMsg = l0
            .invoke(
                gid,
                "reflect",
                &GhostMsg {
                    face: 1,
                    data: vec![1.0, 2.0],
                },
            )
            .get();
        assert_eq!(
            out,
            GhostMsg {
                face: 2,
                data: vec![2.0, 4.0]
            }
        );
    }

    #[test]
    fn bytes_scale_with_payload() {
        let c = two_node();
        c.register_action("sink", |_: &LocalityHandle, _, _v: Vec<f64>| 0u8);
        let l0 = c.locality(0);
        let l1 = c.locality(1);
        let gid = l1.new_component(());
        let _: u8 = l0.invoke(gid, "sink", &vec![0.0f64; 10]).get();
        let small = c.net_stats().bytes;
        c.reset_net_stats();
        let _: u8 = l0.invoke(gid, "sink", &vec![0.0f64; 1000]).get();
        let large = c.net_stats().bytes;
        assert!(large > small + 7000, "small={small} large={large}");
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_action_registration_panics() {
        let c = two_node();
        c.register_action("a", |_: &LocalityHandle, _, (): ()| 0u8);
        c.register_action("a", |_: &LocalityHandle, _, (): ()| 0u8);
    }

    #[test]
    fn lci_backend_runs_remote_actions() {
        // Same application path over the explicit-progress port: the LCI
        // progress thread moves the frames, the counters still match.
        let c = Cluster::new(ClusterConfig {
            localities: 2,
            threads_per_locality: 2,
            backend: NetBackend::Lci,
            coalesce: CoalesceConfig::default(),
        });
        c.register_action("get", |ctx: &LocalityHandle, gid, (): ()| {
            ctx.with_component::<u64, _>(gid, |v| *v).unwrap()
        });
        let l0 = c.locality(0);
        let l1 = c.locality(1);
        let gid = l1.new_component(41u64);
        let r: u64 = l0.invoke(gid, "get", &()).get();
        assert_eq!(r, 41);
        let s = c.net_stats();
        assert_eq!(s.messages, 2, "request + response");
        assert_eq!(s.remote_actions, 1);
    }

    #[test]
    fn comm_metrics_surface_latency_histogram_and_links() {
        let c = two_node();
        c.register_action("get", |ctx: &LocalityHandle, gid, (): ()| {
            ctx.with_component::<u64, _>(gid, |v| *v).unwrap()
        });
        let l0 = c.locality(0);
        let l1 = c.locality(1);
        let gid = l1.new_component(9u64);
        for _ in 0..5 {
            let _: u64 = l0.invoke(gid, "get", &()).get();
        }
        c.flush_network();
        let mut reg = apex_lite::CounterRegistry::new();
        c.register_counters(&mut reg);
        let snap = reg.sample();
        let h = snap
            .histogram("/comms/parcel_latency")
            .expect("latency histogram registered");
        // Every received parcel recorded exactly one latency observation.
        assert_eq!(h.count(), snap.count("/comms/parcels"));
        assert_eq!(h.count(), 10, "5 requests + 5 responses");
        assert!(h.quantile(0.5) <= h.quantile(0.95));
        assert!(h.quantile(0.95) <= h.quantile(0.99));
        // Both directed links carried traffic: requests 0→1, responses 1→0.
        assert_eq!(snap.count("/comms/link0_1/parcels"), 5);
        assert_eq!(snap.count("/comms/link1_0/parcels"), 5);
        assert!(snap.count("/comms/link0_1/bytes") > 0);
    }

    #[test]
    fn coalescing_cluster_stays_correct_and_batches() {
        let c = Cluster::new(ClusterConfig {
            localities: 2,
            threads_per_locality: 2,
            backend: NetBackend::Tcp,
            coalesce: CoalesceConfig::enabled(),
        });
        c.register_action("add", |ctx: &LocalityHandle, gid, x: u64| {
            ctx.with_component::<u64, _>(gid, |v| {
                *v += x;
                *v
            })
            .unwrap()
        });
        let l0 = c.locality(0);
        let l1 = c.locality(1);
        let gid = l1.new_component(0u64);
        let futures: Vec<amt::Future<u64>> =
            (0..200).map(|_| l0.invoke(gid, "add", &1u64)).collect();
        let results = amt::when_all(futures).get();
        assert_eq!(results.len(), 200);
        assert_eq!(l1.with_component::<u64, _>(gid, |v| *v), Some(200));
        c.flush_network();
        let p = c.port_stats();
        assert_eq!(p.parcels, 400, "every request and response arrived");
        assert!(
            p.messages <= p.parcels,
            "coalescing never inflates the frame count"
        );
    }
}
