//! Parcel framing — the byte layout parcelports put on the wire.
//!
//! A frame is either a **single** parcel or a **coalesced batch** of
//! parcels (the coalescing layer of `crate::coalesce` packs small parcels
//! headed to the same destination into one frame, HPX's
//! "parcel coalescing" plugin):
//!
//! ```text
//! magic   u16  = 0x0C7E            (rejects desynchronized streams)
//! kind    u8   = 1 single | 2 batch
//! count   u32  (LE)                 parcels in the frame (1 for single)
//! repeat count times:
//!   len   u32  (LE)
//!   body  len bytes                 one wire-encoded parcel
//! ```
//!
//! [`FrameDecoder`] is incremental: `feed` accepts arbitrary byte slices
//! (partial frames, multiple frames, split headers) and yields complete
//! parcel bodies as they materialize — the shape a streaming TCP receive
//! path needs.

use bytes::{BufMut, Bytes, BytesMut};

/// Frame magic (two bytes, little-endian on the wire).
pub const FRAME_MAGIC: u16 = 0x0C7E;

/// Fixed per-frame header size: magic + kind + count.
pub const FRAME_HEADER_BYTES: usize = 7;

/// Per-parcel length prefix inside a frame.
pub const PARCEL_LEN_BYTES: usize = 4;

const KIND_SINGLE: u8 = 1;
const KIND_BATCH: u8 = 2;

/// Framing failures (a desynchronized or corrupt stream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The stream does not start with [`FRAME_MAGIC`].
    BadMagic(u16),
    /// Unknown frame kind byte.
    BadKind(u8),
    /// A single frame claiming a parcel count other than 1.
    BadCount(u32),
    /// A length prefix exceeding the sanity bound.
    Oversized(u32),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:#06x}"),
            FrameError::BadKind(k) => write!(f, "bad frame kind {k}"),
            FrameError::BadCount(c) => write!(f, "single frame with count {c}"),
            FrameError::Oversized(n) => write!(f, "parcel length {n} exceeds sanity bound"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Sanity bound on one parcel's length (a level-4 halo exchange is ~1 MiB;
/// anything near 1 GiB is a desynchronized stream, not a parcel).
pub const MAX_PARCEL_BYTES: u32 = 1 << 30;

fn put_header(out: &mut BytesMut, kind: u8, count: u32) {
    out.put_u16_le(FRAME_MAGIC);
    out.put_u8(kind);
    out.put_u32_le(count);
}

/// Frame one parcel.
pub fn encode_single(parcel: &[u8]) -> Bytes {
    let mut out = BytesMut::with_capacity(FRAME_HEADER_BYTES + PARCEL_LEN_BYTES + parcel.len());
    put_header(&mut out, KIND_SINGLE, 1);
    out.put_u32_le(parcel.len() as u32);
    out.put_slice(parcel);
    out.freeze()
}

/// Frame a coalesced batch. Panics on an empty batch (the coalescer never
/// flushes an empty queue).
pub fn encode_batch(parcels: &[Bytes]) -> Bytes {
    assert!(!parcels.is_empty(), "cannot frame an empty batch");
    let body: usize = parcels.iter().map(|p| PARCEL_LEN_BYTES + p.len()).sum();
    let mut out = BytesMut::with_capacity(FRAME_HEADER_BYTES + body);
    put_header(&mut out, KIND_BATCH, parcels.len() as u32);
    for p in parcels {
        out.put_u32_le(p.len() as u32);
        out.put_slice(p);
    }
    out.freeze()
}

/// Parcel count carried by a frame — a cheap header peek used by port
/// statistics (0 for a buffer too short to hold a header).
pub fn decode_parcel_count(frame: &[u8]) -> u64 {
    if frame.len() < FRAME_HEADER_BYTES {
        return 0;
    }
    u64::from(u32::from_le_bytes([frame[3], frame[4], frame[5], frame[6]]))
}

/// Decode one complete frame into its parcel bodies (the non-streaming
/// path used by the in-process receive loop, which gets whole frames).
pub fn decode_frame(frame: &[u8]) -> Result<Vec<Vec<u8>>, FrameError> {
    let mut dec = FrameDecoder::new();
    dec.feed(frame)
}

/// Incremental frame decoder for streamed input.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Parcels still expected in the frame being decoded (None: at a
    /// frame boundary, the next bytes are a header).
    remaining_in_frame: Option<u32>,
}

impl FrameDecoder {
    /// Fresh decoder positioned at a frame boundary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes buffered but not yet assembled into a parcel.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Whether the decoder sits exactly at a frame boundary with nothing
    /// buffered (a cleanly terminated stream).
    pub fn is_clean(&self) -> bool {
        self.buf.is_empty() && self.remaining_in_frame.is_none()
    }

    /// Feed a chunk of stream bytes; returns every parcel body completed by
    /// this chunk (possibly none, possibly spanning several frames).
    pub fn feed(&mut self, chunk: &[u8]) -> Result<Vec<Vec<u8>>, FrameError> {
        self.buf.extend_from_slice(chunk);
        let mut out = Vec::new();
        loop {
            match self.remaining_in_frame {
                None => {
                    // Need a full header to proceed.
                    if self.buf.len() < FRAME_HEADER_BYTES {
                        return Ok(out);
                    }
                    let magic = u16::from_le_bytes([self.buf[0], self.buf[1]]);
                    if magic != FRAME_MAGIC {
                        return Err(FrameError::BadMagic(magic));
                    }
                    let kind = self.buf[2];
                    let count =
                        u32::from_le_bytes([self.buf[3], self.buf[4], self.buf[5], self.buf[6]]);
                    match kind {
                        KIND_SINGLE if count != 1 => return Err(FrameError::BadCount(count)),
                        KIND_SINGLE | KIND_BATCH => {}
                        other => return Err(FrameError::BadKind(other)),
                    }
                    self.buf.drain(..FRAME_HEADER_BYTES);
                    self.remaining_in_frame = Some(count);
                }
                Some(0) => {
                    self.remaining_in_frame = None;
                }
                Some(n) => {
                    if self.buf.len() < PARCEL_LEN_BYTES {
                        return Ok(out);
                    }
                    let len =
                        u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
                    if len > MAX_PARCEL_BYTES {
                        return Err(FrameError::Oversized(len));
                    }
                    let need = PARCEL_LEN_BYTES + len as usize;
                    if self.buf.len() < need {
                        return Ok(out);
                    }
                    out.push(self.buf[PARCEL_LEN_BYTES..need].to_vec());
                    self.buf.drain(..need);
                    self.remaining_in_frame = Some(n - 1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_roundtrip() {
        let frame = encode_single(b"hello parcel");
        assert_eq!(frame.len(), FRAME_HEADER_BYTES + PARCEL_LEN_BYTES + 12);
        let parcels = decode_frame(&frame).unwrap();
        assert_eq!(parcels, vec![b"hello parcel".to_vec()]);
    }

    #[test]
    fn batch_roundtrip_preserves_order() {
        let parcels: Vec<Bytes> = vec![
            Bytes::from(&b"a"[..]),
            Bytes::from(&b""[..]),
            Bytes::from(&b"ccc"[..]),
        ];
        let frame = encode_batch(&parcels);
        let out = decode_frame(&frame).unwrap();
        assert_eq!(out, vec![b"a".to_vec(), b"".to_vec(), b"ccc".to_vec()]);
    }

    #[test]
    fn decoder_handles_byte_at_a_time_input() {
        let frame = encode_batch(&[Bytes::from(&b"xy"[..]), Bytes::from(&b"z"[..])]);
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in frame.iter() {
            got.extend(dec.feed(&[*b]).unwrap());
        }
        assert_eq!(got, vec![b"xy".to_vec(), b"z".to_vec()]);
        assert!(dec.is_clean());
    }

    #[test]
    fn decoder_spans_multiple_frames_in_one_chunk() {
        let mut stream = encode_single(b"one").to_vec();
        stream.extend_from_slice(&encode_batch(&[Bytes::from(&b"two"[..])]));
        let mut dec = FrameDecoder::new();
        let got = dec.feed(&stream).unwrap();
        assert_eq!(got, vec![b"one".to_vec(), b"two".to_vec()]);
        assert!(dec.is_clean());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut frame = encode_single(b"p").to_vec();
        frame[0] ^= 0xFF;
        assert!(matches!(decode_frame(&frame), Err(FrameError::BadMagic(_))));
    }

    #[test]
    fn bad_kind_and_count_rejected() {
        let mut frame = encode_single(b"p").to_vec();
        frame[2] = 9;
        assert!(matches!(decode_frame(&frame), Err(FrameError::BadKind(9))));
        let mut frame = encode_single(b"p").to_vec();
        frame[3] = 2; // single frame claiming two parcels
        assert!(matches!(decode_frame(&frame), Err(FrameError::BadCount(2))));
    }

    #[test]
    fn truncated_frame_yields_nothing_but_keeps_state() {
        let frame = encode_single(b"payload");
        let mut dec = FrameDecoder::new();
        let cut = frame.len() - 3;
        assert!(dec.feed(&frame[..cut]).unwrap().is_empty());
        assert!(!dec.is_clean());
        let got = dec.feed(&frame[cut..]).unwrap();
        assert_eq!(got, vec![b"payload".to_vec()]);
        assert!(dec.is_clean());
    }
}
