//! Parcel framing — the byte layout parcelports put on the wire.
//!
//! A frame is either a **single** parcel or a **coalesced batch** of
//! parcels (the coalescing layer of `crate::coalesce` packs small parcels
//! headed to the same destination into one frame, HPX's
//! "parcel coalescing" plugin):
//!
//! ```text
//! magic   u16  = 0x0C7E            (rejects desynchronized streams)
//! kind    u8   = 1 single | 2 batch
//! count   u32  (LE)                 parcels in the frame (1 for single)
//! repeat count times:
//!   len     u32  (LE)               body length (ctx not included)
//!   origin  u32  (LE)  ┐
//!   flow    u64  (LE)  ├ TraceCtx — causal-tracing header, 20 bytes
//!   send_ns u64  (LE)  ┘
//!   body    len bytes               one wire-encoded parcel
//! ```
//!
//! Every parcel carries a [`TraceCtx`] — origin locality, process-unique
//! flow id, and send timestamp — so the receive side can emit the matching
//! half of a Chrome flow arrow and record the one-way latency without any
//! side channel. The context is wire state, not payload: `len` counts the
//! body only.
//!
//! [`FrameDecoder`] is incremental: `feed` accepts arbitrary byte slices
//! (partial frames, multiple frames, split headers) and yields complete
//! parcels as they materialize — the shape a streaming TCP receive path
//! needs.

use std::sync::atomic::{AtomicU64, Ordering};

use bytes::{BufMut, Bytes, BytesMut};

/// Frame magic (two bytes, little-endian on the wire).
pub const FRAME_MAGIC: u16 = 0x0C7E;

/// Fixed per-frame header size: magic + kind + count.
pub const FRAME_HEADER_BYTES: usize = 7;

/// Per-parcel length prefix inside a frame.
pub const PARCEL_LEN_BYTES: usize = 4;

/// Per-parcel trace context carried after the length prefix:
/// origin `u32` + flow id `u64` + send timestamp `u64`.
pub const TRACE_CTX_BYTES: usize = 20;

const KIND_SINGLE: u8 = 1;
const KIND_BATCH: u8 = 2;

/// Causal-tracing context stamped on every parcel at submit time and
/// carried in the wire header (HPX parcels carry the same idea as their
/// APEX task GUIDs). `origin` is the sending locality, `flow` a
/// process-unique id pairing the Chrome `"s"`/`"f"` flow events, and
/// `send_ns` the submit timestamp on the sender's trace clock — the
/// receive side subtracts it for the `/comms/parcel_latency` histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCtx {
    /// Sending locality id.
    pub origin: u32,
    /// Process-unique flow id (pairs `"s"` and `"f"` trace events).
    pub flow: u64,
    /// Submit timestamp, ns on the sender's trace clock.
    pub send_ns: u64,
}

static NEXT_FLOW: AtomicU64 = AtomicU64::new(1);

impl TraceCtx {
    /// Stamp a fresh context for a parcel leaving `origin`: allocates the
    /// next flow id and timestamps the submit moment.
    pub fn stamp(origin: u32) -> Self {
        TraceCtx {
            origin,
            flow: NEXT_FLOW.fetch_add(1, Ordering::Relaxed),
            send_ns: apex_lite::trace::now_ns(),
        }
    }

    fn put(&self, out: &mut BytesMut) {
        out.put_u32_le(self.origin);
        out.put_u64_le(self.flow);
        out.put_u64_le(self.send_ns);
    }

    fn read(buf: &[u8]) -> Self {
        TraceCtx {
            origin: u32::from_le_bytes(buf[0..4].try_into().expect("ctx origin")),
            flow: u64::from_le_bytes(buf[4..12].try_into().expect("ctx flow")),
            send_ns: u64::from_le_bytes(buf[12..20].try_into().expect("ctx send_ns")),
        }
    }
}

/// One decoded parcel: its causal-tracing context plus the wire body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedParcel {
    /// Trace context stamped by the sender.
    pub ctx: TraceCtx,
    /// Wire-encoded parcel payload.
    pub body: Vec<u8>,
}

/// Framing failures (a desynchronized or corrupt stream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The stream does not start with [`FRAME_MAGIC`].
    BadMagic(u16),
    /// Unknown frame kind byte.
    BadKind(u8),
    /// A single frame claiming a parcel count other than 1.
    BadCount(u32),
    /// A length prefix exceeding the sanity bound.
    Oversized(u32),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:#06x}"),
            FrameError::BadKind(k) => write!(f, "bad frame kind {k}"),
            FrameError::BadCount(c) => write!(f, "single frame with count {c}"),
            FrameError::Oversized(n) => write!(f, "parcel length {n} exceeds sanity bound"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Sanity bound on one parcel's length (a level-4 halo exchange is ~1 MiB;
/// anything near 1 GiB is a desynchronized stream, not a parcel).
pub const MAX_PARCEL_BYTES: u32 = 1 << 30;

fn put_header(out: &mut BytesMut, kind: u8, count: u32) {
    out.put_u16_le(FRAME_MAGIC);
    out.put_u8(kind);
    out.put_u32_le(count);
}

/// Frame one parcel with its trace context.
pub fn encode_single(parcel: &[u8], ctx: TraceCtx) -> Bytes {
    let mut out = BytesMut::with_capacity(
        FRAME_HEADER_BYTES + PARCEL_LEN_BYTES + TRACE_CTX_BYTES + parcel.len(),
    );
    put_header(&mut out, KIND_SINGLE, 1);
    out.put_u32_le(parcel.len() as u32);
    ctx.put(&mut out);
    out.put_slice(parcel);
    out.freeze()
}

/// Frame a coalesced batch. Panics on an empty batch (the coalescer never
/// flushes an empty queue).
pub fn encode_batch(parcels: &[(Bytes, TraceCtx)]) -> Bytes {
    assert!(!parcels.is_empty(), "cannot frame an empty batch");
    let body: usize = parcels
        .iter()
        .map(|(p, _)| PARCEL_LEN_BYTES + TRACE_CTX_BYTES + p.len())
        .sum();
    let mut out = BytesMut::with_capacity(FRAME_HEADER_BYTES + body);
    put_header(&mut out, KIND_BATCH, parcels.len() as u32);
    for (p, ctx) in parcels {
        out.put_u32_le(p.len() as u32);
        ctx.put(&mut out);
        out.put_slice(p);
    }
    out.freeze()
}

/// Parcel count carried by a frame — a cheap header peek used by port
/// statistics (0 for a buffer too short to hold a header).
pub fn decode_parcel_count(frame: &[u8]) -> u64 {
    if frame.len() < FRAME_HEADER_BYTES {
        return 0;
    }
    u64::from(u32::from_le_bytes([frame[3], frame[4], frame[5], frame[6]]))
}

/// Trace contexts of every parcel in a complete frame — a header walk that
/// skips the bodies, so the send side can emit flow-start events without
/// decoding payloads. Returns an empty list on a malformed frame (the
/// receive path reports the real error).
pub fn trace_ctxs(frame: &[u8]) -> Vec<TraceCtx> {
    let count = decode_parcel_count(frame) as usize;
    let mut out = Vec::with_capacity(count);
    let mut at = FRAME_HEADER_BYTES;
    for _ in 0..count {
        if frame.len() < at + PARCEL_LEN_BYTES + TRACE_CTX_BYTES {
            return Vec::new();
        }
        let len = u32::from_le_bytes(frame[at..at + 4].try_into().expect("len prefix")) as usize;
        out.push(TraceCtx::read(&frame[at + PARCEL_LEN_BYTES..]));
        at += PARCEL_LEN_BYTES + TRACE_CTX_BYTES + len;
    }
    out
}

/// Decode one complete frame into its parcels (the non-streaming path used
/// by the in-process receive loop, which gets whole frames).
pub fn decode_frame(frame: &[u8]) -> Result<Vec<DecodedParcel>, FrameError> {
    let mut dec = FrameDecoder::new();
    dec.feed(frame)
}

/// Incremental frame decoder for streamed input.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Parcels still expected in the frame being decoded (None: at a
    /// frame boundary, the next bytes are a header).
    remaining_in_frame: Option<u32>,
}

impl FrameDecoder {
    /// Fresh decoder positioned at a frame boundary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes buffered but not yet assembled into a parcel.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Whether the decoder sits exactly at a frame boundary with nothing
    /// buffered (a cleanly terminated stream).
    pub fn is_clean(&self) -> bool {
        self.buf.is_empty() && self.remaining_in_frame.is_none()
    }

    /// Feed a chunk of stream bytes; returns every parcel completed by
    /// this chunk (possibly none, possibly spanning several frames).
    pub fn feed(&mut self, chunk: &[u8]) -> Result<Vec<DecodedParcel>, FrameError> {
        self.buf.extend_from_slice(chunk);
        let mut out = Vec::new();
        loop {
            match self.remaining_in_frame {
                None => {
                    // Need a full header to proceed.
                    if self.buf.len() < FRAME_HEADER_BYTES {
                        return Ok(out);
                    }
                    let magic = u16::from_le_bytes([self.buf[0], self.buf[1]]);
                    if magic != FRAME_MAGIC {
                        return Err(FrameError::BadMagic(magic));
                    }
                    let kind = self.buf[2];
                    let count =
                        u32::from_le_bytes([self.buf[3], self.buf[4], self.buf[5], self.buf[6]]);
                    match kind {
                        KIND_SINGLE if count != 1 => return Err(FrameError::BadCount(count)),
                        KIND_SINGLE | KIND_BATCH => {}
                        other => return Err(FrameError::BadKind(other)),
                    }
                    self.buf.drain(..FRAME_HEADER_BYTES);
                    self.remaining_in_frame = Some(count);
                }
                Some(0) => {
                    self.remaining_in_frame = None;
                }
                Some(n) => {
                    // Need the length prefix *and* the trace context before
                    // the body length is actionable — a chunk boundary may
                    // fall anywhere inside either.
                    if self.buf.len() < PARCEL_LEN_BYTES + TRACE_CTX_BYTES {
                        return Ok(out);
                    }
                    let len =
                        u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
                    if len > MAX_PARCEL_BYTES {
                        return Err(FrameError::Oversized(len));
                    }
                    let need = PARCEL_LEN_BYTES + TRACE_CTX_BYTES + len as usize;
                    if self.buf.len() < need {
                        return Ok(out);
                    }
                    let ctx = TraceCtx::read(&self.buf[PARCEL_LEN_BYTES..]);
                    out.push(DecodedParcel {
                        ctx,
                        body: self.buf[PARCEL_LEN_BYTES + TRACE_CTX_BYTES..need].to_vec(),
                    });
                    self.buf.drain(..need);
                    self.remaining_in_frame = Some(n - 1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(origin: u32, flow: u64, send_ns: u64) -> TraceCtx {
        TraceCtx {
            origin,
            flow,
            send_ns,
        }
    }

    fn bodies(parcels: &[DecodedParcel]) -> Vec<Vec<u8>> {
        parcels.iter().map(|p| p.body.clone()).collect()
    }

    #[test]
    fn single_roundtrip() {
        let frame = encode_single(b"hello parcel", ctx(3, 77, 123_456));
        assert_eq!(
            frame.len(),
            FRAME_HEADER_BYTES + PARCEL_LEN_BYTES + TRACE_CTX_BYTES + 12
        );
        let parcels = decode_frame(&frame).unwrap();
        assert_eq!(bodies(&parcels), vec![b"hello parcel".to_vec()]);
        assert_eq!(parcels[0].ctx, ctx(3, 77, 123_456));
        assert_eq!(trace_ctxs(&frame), vec![ctx(3, 77, 123_456)]);
    }

    #[test]
    fn batch_roundtrip_preserves_order_and_contexts() {
        let parcels: Vec<(Bytes, TraceCtx)> = vec![
            (Bytes::from(&b"a"[..]), ctx(0, 1, 10)),
            (Bytes::from(&b""[..]), ctx(0, 2, 20)),
            (Bytes::from(&b"ccc"[..]), ctx(1, 3, 30)),
        ];
        let frame = encode_batch(&parcels);
        let out = decode_frame(&frame).unwrap();
        assert_eq!(
            bodies(&out),
            vec![b"a".to_vec(), b"".to_vec(), b"ccc".to_vec()]
        );
        let ctxs: Vec<TraceCtx> = out.iter().map(|p| p.ctx).collect();
        assert_eq!(ctxs, vec![ctx(0, 1, 10), ctx(0, 2, 20), ctx(1, 3, 30)]);
        assert_eq!(trace_ctxs(&frame), ctxs);
    }

    #[test]
    fn stamp_allocates_unique_flow_ids() {
        let a = TraceCtx::stamp(0);
        let b = TraceCtx::stamp(1);
        assert_ne!(a.flow, b.flow);
        assert_eq!(b.origin, 1);
    }

    #[test]
    fn decoder_handles_byte_at_a_time_input() {
        let frame = encode_batch(&[
            (Bytes::from(&b"xy"[..]), ctx(0, 9, 90)),
            (Bytes::from(&b"z"[..]), ctx(0, 10, 91)),
        ]);
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in frame.iter() {
            got.extend(dec.feed(&[*b]).unwrap());
        }
        assert_eq!(bodies(&got), vec![b"xy".to_vec(), b"z".to_vec()]);
        assert_eq!(got[1].ctx, ctx(0, 10, 91));
        assert!(dec.is_clean());
    }

    #[test]
    fn trace_ctx_split_across_two_chunk_boundaries() {
        // Regression: cut the stream twice *inside* the 20-byte trace
        // context — the decoder must hold state across both boundaries and
        // still deliver the exact ctx + body.
        let frame = encode_single(b"split me", ctx(2, 0xDEAD_BEEF_CAFE, 42));
        let ctx_start = FRAME_HEADER_BYTES + PARCEL_LEN_BYTES;
        let cut1 = ctx_start + 5; // 5 bytes into the ctx
        let cut2 = ctx_start + 17; // 17 bytes in: still 3 short of the body
        let mut dec = FrameDecoder::new();
        assert!(dec.feed(&frame[..cut1]).unwrap().is_empty());
        assert!(dec.feed(&frame[cut1..cut2]).unwrap().is_empty());
        assert!(!dec.is_clean());
        let got = dec.feed(&frame[cut2..]).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].ctx, ctx(2, 0xDEAD_BEEF_CAFE, 42));
        assert_eq!(got[0].body, b"split me".to_vec());
        assert!(dec.is_clean());
    }

    #[test]
    fn decoder_spans_multiple_frames_in_one_chunk() {
        let mut stream = encode_single(b"one", ctx(0, 1, 1)).to_vec();
        stream.extend_from_slice(&encode_batch(&[(Bytes::from(&b"two"[..]), ctx(0, 2, 2))]));
        let mut dec = FrameDecoder::new();
        let got = dec.feed(&stream).unwrap();
        assert_eq!(bodies(&got), vec![b"one".to_vec(), b"two".to_vec()]);
        assert!(dec.is_clean());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut frame = encode_single(b"p", TraceCtx::default()).to_vec();
        frame[0] ^= 0xFF;
        assert!(matches!(decode_frame(&frame), Err(FrameError::BadMagic(_))));
    }

    #[test]
    fn bad_kind_and_count_rejected() {
        let mut frame = encode_single(b"p", TraceCtx::default()).to_vec();
        frame[2] = 9;
        assert!(matches!(decode_frame(&frame), Err(FrameError::BadKind(9))));
        let mut frame = encode_single(b"p", TraceCtx::default()).to_vec();
        frame[3] = 2; // single frame claiming two parcels
        assert!(matches!(decode_frame(&frame), Err(FrameError::BadCount(2))));
    }

    #[test]
    fn truncated_frame_yields_nothing_but_keeps_state() {
        let frame = encode_single(b"payload", ctx(1, 5, 50));
        let mut dec = FrameDecoder::new();
        let cut = frame.len() - 3;
        assert!(dec.feed(&frame[..cut]).unwrap().is_empty());
        assert!(!dec.is_clean());
        let got = dec.feed(&frame[cut..]).unwrap();
        assert_eq!(bodies(&got), vec![b"payload".to_vec()]);
        assert_eq!(got[0].ctx, ctx(1, 5, 50));
        assert!(dec.is_clean());
    }
}
