//! Active Global Address Space — HPX's AGAS (§3.1 of the paper), the
//! service that lets components live on any locality while callers address
//! them by a location-transparent global id.
//!
//! A [`Gid`] encodes the *creating* locality in its upper bits plus a
//! sequence number; the [`Agas`] registry maps gids to their *current*
//! locality, so components can in principle be migrated (HPX supports this;
//! Octo-Tiger uses placement-at-creation, which [`Agas::register`] covers).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

/// Identifier of one locality (one VisionFive2 board in the paper's
/// two-node cluster).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LocalityId(pub u32);

/// Global id of a component (an octree node in Octo-Tiger).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Gid(u64);

const LOCALITY_SHIFT: u32 = 48;

impl Gid {
    /// The locality that *created* this gid (not necessarily where the
    /// component currently lives — ask [`Agas::resolve`] for that).
    pub fn creator(self) -> LocalityId {
        LocalityId((self.0 >> LOCALITY_SHIFT) as u32)
    }

    /// Sequence number within the creating locality.
    pub fn sequence(self) -> u64 {
        self.0 & ((1u64 << LOCALITY_SHIFT) - 1)
    }

    /// Raw value (for logging).
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for Gid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gid({}:{})", self.creator().0, self.sequence())
    }
}

/// The global address registry shared by all localities of a cluster.
#[derive(Debug, Default)]
pub struct Agas {
    map: RwLock<HashMap<Gid, LocalityId>>,
    next: AtomicU64,
}

impl Agas {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mint a fresh gid on behalf of `creator`.
    pub fn new_gid(&self, creator: LocalityId) -> Gid {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        assert!(seq < (1 << LOCALITY_SHIFT), "gid space exhausted");
        Gid((u64::from(creator.0) << LOCALITY_SHIFT) | seq)
    }

    /// Bind `gid` to the locality where its component lives.
    pub fn register(&self, gid: Gid, at: LocalityId) {
        let prev = self.map.write().insert(gid, at);
        assert!(prev.is_none(), "gid {gid} registered twice");
    }

    /// Where does `gid` live?
    pub fn resolve(&self, gid: Gid) -> Option<LocalityId> {
        self.map.read().get(&gid).copied()
    }

    /// Move a binding (component migration).
    pub fn migrate(&self, gid: Gid, to: LocalityId) -> bool {
        match self.map.write().get_mut(&gid) {
            Some(loc) => {
                *loc = to;
                true
            }
            None => false,
        }
    }

    /// Remove a binding (component destruction).
    pub fn unregister(&self, gid: Gid) -> Option<LocalityId> {
        self.map.write().remove(&gid)
    }

    /// Number of live bindings.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True when no bindings exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gid_encodes_creator_and_sequence() {
        let agas = Agas::new();
        let g0 = agas.new_gid(LocalityId(0));
        let g1 = agas.new_gid(LocalityId(1));
        assert_eq!(g0.creator(), LocalityId(0));
        assert_eq!(g1.creator(), LocalityId(1));
        assert_ne!(g0, g1);
        assert_eq!(g0.sequence() + 1, g1.sequence());
    }

    #[test]
    fn register_resolve_roundtrip() {
        let agas = Agas::new();
        let g = agas.new_gid(LocalityId(0));
        assert_eq!(agas.resolve(g), None);
        agas.register(g, LocalityId(1));
        assert_eq!(agas.resolve(g), Some(LocalityId(1)));
    }

    #[test]
    fn component_may_live_away_from_creator() {
        // The essence of AGAS: creation locality ≠ residence locality.
        let agas = Agas::new();
        let g = agas.new_gid(LocalityId(0));
        agas.register(g, LocalityId(1));
        assert_eq!(g.creator(), LocalityId(0));
        assert_eq!(agas.resolve(g), Some(LocalityId(1)));
    }

    #[test]
    fn migrate_moves_binding() {
        let agas = Agas::new();
        let g = agas.new_gid(LocalityId(0));
        agas.register(g, LocalityId(0));
        assert!(agas.migrate(g, LocalityId(1)));
        assert_eq!(agas.resolve(g), Some(LocalityId(1)));
        assert!(!agas.migrate(agas.new_gid(LocalityId(0)), LocalityId(1)));
    }

    #[test]
    fn unregister_removes() {
        let agas = Agas::new();
        let g = agas.new_gid(LocalityId(2));
        agas.register(g, LocalityId(2));
        assert_eq!(agas.unregister(g), Some(LocalityId(2)));
        assert_eq!(agas.resolve(g), None);
        assert!(agas.is_empty());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_register_panics() {
        let agas = Agas::new();
        let g = agas.new_gid(LocalityId(0));
        agas.register(g, LocalityId(0));
        agas.register(g, LocalityId(1));
    }

    #[test]
    fn gids_unique_across_threads() {
        let agas = std::sync::Arc::new(Agas::new());
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let a = std::sync::Arc::clone(&agas);
            handles.push(std::thread::spawn(move || {
                (0..1000)
                    .map(|_| a.new_gid(LocalityId(t)))
                    .collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<Gid> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000);
    }
}
