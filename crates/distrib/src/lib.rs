//! # distrib — simulated distributed runtime (AGAS + parcelports)
//!
//! The paper's distributed experiments (§6.2.2, Fig. 8) run Octo-Tiger on an
//! in-house cluster of two VisionFive2 RISC-V boards over gigabit Ethernet,
//! comparing HPX's parcelports. This crate reproduces that substrate inside
//! one process, layered like HPX's parcel subsystem:
//!
//! * [`Cluster`] boots N *localities*, each with its own `amt::Runtime`
//!   (one per board) and a frame receive loop;
//! * [`agas::Agas`] is the Active Global Address Space: components are
//!   created on a locality, addressed by [`agas::Gid`], and resolvable from
//!   anywhere;
//! * remote **actions** ([`LocalityHandle::invoke`]) serialize their
//!   arguments through the binary [`wire`] format into
//!   [`parcel::ParcelMsg`]s, with HPX's unified local/remote syntax (local
//!   calls skip the wire);
//! * the [`coalesce`] layer optionally batches small parcels per
//!   destination (HPX's parcel-coalescing plugin) under a bounded
//!   in-flight queue;
//! * a pluggable [`parcelport::Parcelport`] — TCP, MPI or LCI — moves
//!   [`frame`]d byte buffers and measures per-port [`stats::PortStats`];
//!   the `rv-machine` cost model turns those into per-backend link times
//!   for the Fig. 8 projection.

pub mod agas;
pub mod cluster;
pub mod coalesce;
pub mod frame;
pub mod parcel;
pub mod parcelport;
pub mod stats;
pub mod wire;

pub use agas::{Agas, Gid, LocalityId};
pub use cluster::{Cluster, ClusterConfig, LocalityHandle};
pub use coalesce::{CoalesceConfig, Coalescer};
pub use frame::{DecodedParcel, FrameDecoder, FrameError, TraceCtx, TRACE_CTX_BYTES};
pub use parcel::ParcelMsg;
pub use parcelport::{Deliver, Parcelport};
pub use stats::{
    CommMetrics, LinkSnapshot, NetSnapshot, NetStats, PortSnapshot, PortStats, PARCEL_HEADER_BYTES,
};
pub use wire::{from_bytes, to_bytes, WireError};
