//! # distrib — simulated distributed runtime (AGAS + parcelports)
//!
//! The paper's distributed experiments (§6.2.2, Fig. 8) run Octo-Tiger on an
//! in-house cluster of two VisionFive2 RISC-V boards over gigabit Ethernet,
//! comparing HPX's TCP and MPI parcelports. This crate reproduces that
//! substrate inside one process:
//!
//! * [`Cluster`] boots N *localities*, each with its own `amt::Runtime`
//!   (one per board) and a parcel receive loop;
//! * [`agas::Agas`] is the Active Global Address Space: components are
//!   created on a locality, addressed by [`agas::Gid`], and resolvable from
//!   anywhere;
//! * remote **actions** ([`LocalityHandle::invoke`]) serialize their
//!   arguments through the binary [`wire`] format, travel as parcels, run as
//!   tasks on the target runtime, and return futures — with HPX's unified
//!   local/remote syntax (local calls skip the wire);
//! * [`stats::NetStats`] measures messages and bytes; the `rv-machine` cost
//!   model turns those into TCP-vs-MPI link times for the Fig. 8 projection.

pub mod agas;
pub mod cluster;
pub mod stats;
pub mod wire;

pub use agas::{Agas, Gid, LocalityId};
pub use cluster::{Cluster, ClusterConfig, LocalityHandle};
pub use stats::{NetSnapshot, NetStats, PARCEL_HEADER_BYTES};
pub use wire::{from_bytes, to_bytes, WireError};
