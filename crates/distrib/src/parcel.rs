//! The parcel — HPX's unit of remote work — as a wire-serializable message.
//!
//! Before the parcelport refactor, parcels were an in-memory enum handed
//! directly to the destination's channel; only their *payload* had a wire
//! form. Now the whole parcel serializes through [`crate::wire`], is framed
//! by [`crate::frame`], and travels through a [`crate::parcelport`] — so the
//! byte counts in [`crate::stats::PortStats`] are the length of the actual
//! wire image.

use serde::{Deserialize, Serialize};

use crate::agas::{Gid, LocalityId};
use crate::wire::{self, WireError};

/// One parcel: a remote action request or its response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParcelMsg {
    /// Action invocation travelling to the component's owner.
    Request {
        /// Caller locality (the response's destination).
        from: LocalityId,
        /// Target component.
        target: Gid,
        /// Registered action name.
        action: String,
        /// Wire-encoded argument.
        payload: Vec<u8>,
        /// Caller-local correlation id.
        call_id: u64,
    },
    /// Result travelling back to the caller.
    Response {
        /// Correlation id from the matching request.
        call_id: u64,
        /// Wire-encoded result, or the remote failure description.
        result: Result<Vec<u8>, String>,
    },
}

impl ParcelMsg {
    /// Serialize to the binary wire form.
    pub fn to_wire(&self) -> Result<bytes::Bytes, WireError> {
        wire::to_bytes(self)
    }

    /// Deserialize from the binary wire form.
    pub fn from_wire(bytes: &[u8]) -> Result<Self, WireError> {
        wire::from_bytes(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips() {
        let agas = crate::agas::Agas::new();
        let p = ParcelMsg::Request {
            from: LocalityId(1),
            target: agas.new_gid(LocalityId(0)),
            action: "solve_step".into(),
            payload: vec![1, 2, 3, 255],
            call_id: 42,
        };
        let bytes = p.to_wire().unwrap();
        assert_eq!(ParcelMsg::from_wire(&bytes).unwrap(), p);
    }

    #[test]
    fn response_roundtrips_both_arms() {
        for result in [Ok(vec![9u8; 100]), Err("action panicked".to_string())] {
            let p = ParcelMsg::Response { call_id: 7, result };
            let bytes = p.to_wire().unwrap();
            assert_eq!(ParcelMsg::from_wire(&bytes).unwrap(), p);
        }
    }
}
