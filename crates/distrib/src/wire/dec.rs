//! Serde deserializer for the wire format (see the parent module docs for
//! the encoding rules).

use bytes::Buf;
use serde::de::{self, IntoDeserializer, Visitor};

use super::WireError;

pub(super) struct Decoder<'de> {
    input: &'de [u8],
}

impl<'de> Decoder<'de> {
    pub(super) fn new(input: &'de [u8]) -> Self {
        Decoder { input }
    }

    /// Bytes not yet consumed (a strict decode must end at 0).
    pub(super) fn remaining(&self) -> usize {
        self.input.len()
    }

    fn take(&mut self, n: usize) -> Result<&'de [u8], WireError> {
        if self.input.len() < n {
            return Err(WireError::Eof);
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }
    fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn get_u32(&mut self) -> Result<u32, WireError> {
        let mut b = self.take(4)?;
        Ok(b.get_u32_le())
    }
    fn get_len(&mut self) -> Result<usize, WireError> {
        let len = self.get_u32()? as usize;
        if len > self.input.len() {
            // Lengths can never exceed what's left (elements ≥ 1 byte each
            // except units; allow units by skipping this check for zero-size
            // elements is impossible to know here — so only reject when the
            // prefix alone exceeds the buffer).
            if len > self.input.len().saturating_mul(8) + 64 {
                return Err(WireError::BadLength);
            }
        }
        Ok(len)
    }
}

macro_rules! de_num {
    ($name:ident, $visit:ident, $ty:ty, $n:expr, $get:ident) => {
        fn $name<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
            let mut b = self.take($n)?;
            visitor.$visit(b.$get())
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut Decoder<'de> {
    type Error = WireError;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, WireError> {
        Err(WireError::Unsupported("deserialize_any"))
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        match self.get_u8()? {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            t => Err(WireError::BadTag(t)),
        }
    }

    de_num!(deserialize_i8, visit_i8, i8, 1, get_i8);
    de_num!(deserialize_i16, visit_i16, i16, 2, get_i16_le);
    de_num!(deserialize_i32, visit_i32, i32, 4, get_i32_le);
    de_num!(deserialize_i64, visit_i64, i64, 8, get_i64_le);
    de_num!(deserialize_u8, visit_u8, u8, 1, get_u8);
    de_num!(deserialize_u16, visit_u16, u16, 2, get_u16_le);
    de_num!(deserialize_u32, visit_u32, u32, 4, get_u32_le);
    de_num!(deserialize_u64, visit_u64, u64, 8, get_u64_le);
    de_num!(deserialize_f32, visit_f32, f32, 4, get_f32_le);
    de_num!(deserialize_f64, visit_f64, f64, 8, get_f64_le);

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let c = self.get_u32()?;
        visitor.visit_char(char::from_u32(c).ok_or(WireError::BadTag(0xFF))?)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.get_len()?;
        let bytes = self.take(len)?;
        visitor.visit_borrowed_str(std::str::from_utf8(bytes).map_err(|_| WireError::BadUtf8)?)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.get_len()?;
        visitor.visit_borrowed_bytes(self.take(len)?)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        match self.get_u8()? {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            t => Err(WireError::BadTag(t)),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.get_len()?;
        visitor.visit_seq(Counted {
            de: self,
            left: len,
        })
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_seq(Counted {
            de: self,
            left: len,
        })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.get_len()?;
        visitor.visit_map(Counted {
            de: self,
            left: len,
        })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_enum(EnumAccess { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, WireError> {
        Err(WireError::Unsupported("identifiers"))
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, WireError> {
        Err(WireError::Unsupported("ignored_any"))
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct Counted<'a, 'de> {
    de: &'a mut Decoder<'de>,
    left: usize,
}

impl<'a, 'de> de::SeqAccess<'de> for Counted<'a, 'de> {
    type Error = WireError;
    fn next_element_seed<S: de::DeserializeSeed<'de>>(
        &mut self,
        seed: S,
    ) -> Result<Option<S::Value>, WireError> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.left)
    }
}

impl<'a, 'de> de::MapAccess<'de> for Counted<'a, 'de> {
    type Error = WireError;
    fn next_key_seed<S: de::DeserializeSeed<'de>>(
        &mut self,
        seed: S,
    ) -> Result<Option<S::Value>, WireError> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }
    fn next_value_seed<S: de::DeserializeSeed<'de>>(
        &mut self,
        seed: S,
    ) -> Result<S::Value, WireError> {
        seed.deserialize(&mut *self.de)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.left)
    }
}

struct EnumAccess<'a, 'de> {
    de: &'a mut Decoder<'de>,
}

impl<'a, 'de> de::EnumAccess<'de> for EnumAccess<'a, 'de> {
    type Error = WireError;
    type Variant = Self;
    fn variant_seed<S: de::DeserializeSeed<'de>>(
        self,
        seed: S,
    ) -> Result<(S::Value, Self), WireError> {
        let idx = self.de.get_u32()?;
        let val = seed.deserialize(idx.into_deserializer())?;
        Ok((val, self))
    }
}

impl<'a, 'de> de::VariantAccess<'de> for EnumAccess<'a, 'de> {
    type Error = WireError;
    fn unit_variant(self) -> Result<(), WireError> {
        Ok(())
    }
    fn newtype_variant_seed<S: de::DeserializeSeed<'de>>(
        self,
        seed: S,
    ) -> Result<S::Value, WireError> {
        seed.deserialize(self.de)
    }
    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value, WireError> {
        de::Deserializer::deserialize_tuple(self.de, len, visitor)
    }
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        de::Deserializer::deserialize_tuple(self.de, fields.len(), visitor)
    }
}
