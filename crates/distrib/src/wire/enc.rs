//! Serde serializer for the wire format (see the parent module docs for
//! the encoding rules).

use bytes::{BufMut, Bytes, BytesMut};
use serde::ser::{self, Serialize};

use super::WireError;

pub(super) struct Encoder {
    out: BytesMut,
}

impl Encoder {
    pub(super) fn new() -> Self {
        Encoder {
            out: BytesMut::with_capacity(64),
        }
    }

    pub(super) fn finish(self) -> Bytes {
        self.out.freeze()
    }

    fn put_len(&mut self, len: usize) -> Result<(), WireError> {
        let len32 = u32::try_from(len).map_err(|_| WireError::BadLength)?;
        self.out.put_u32_le(len32);
        Ok(())
    }
}

impl ser::Serializer for &mut Encoder {
    type Ok = ();
    type Error = WireError;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<(), WireError> {
        self.out.put_u8(u8::from(v));
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<(), WireError> {
        self.out.put_i8(v);
        Ok(())
    }
    fn serialize_i16(self, v: i16) -> Result<(), WireError> {
        self.out.put_i16_le(v);
        Ok(())
    }
    fn serialize_i32(self, v: i32) -> Result<(), WireError> {
        self.out.put_i32_le(v);
        Ok(())
    }
    fn serialize_i64(self, v: i64) -> Result<(), WireError> {
        self.out.put_i64_le(v);
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), WireError> {
        self.out.put_u8(v);
        Ok(())
    }
    fn serialize_u16(self, v: u16) -> Result<(), WireError> {
        self.out.put_u16_le(v);
        Ok(())
    }
    fn serialize_u32(self, v: u32) -> Result<(), WireError> {
        self.out.put_u32_le(v);
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<(), WireError> {
        self.out.put_u64_le(v);
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), WireError> {
        self.out.put_f32_le(v);
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<(), WireError> {
        self.out.put_f64_le(v);
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), WireError> {
        self.out.put_u32_le(v as u32);
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result<(), WireError> {
        self.put_len(v.len())?;
        self.out.put_slice(v.as_bytes());
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<(), WireError> {
        self.put_len(v.len())?;
        self.out.put_slice(v);
        Ok(())
    }
    fn serialize_none(self) -> Result<(), WireError> {
        self.out.put_u8(0);
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), WireError> {
        self.out.put_u8(1);
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), WireError> {
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), WireError> {
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), WireError> {
        self.out.put_u32_le(variant_index);
        Ok(())
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        self.out.put_u32_le(variant_index);
        value.serialize(self)
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<Self, WireError> {
        let len = len.ok_or(WireError::Unsupported("unsized sequences"))?;
        self.put_len(len)?;
        Ok(self)
    }
    fn serialize_tuple(self, _len: usize) -> Result<Self, WireError> {
        Ok(self)
    }
    fn serialize_tuple_struct(self, _name: &'static str, _len: usize) -> Result<Self, WireError> {
        Ok(self)
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, WireError> {
        self.out.put_u32_le(variant_index);
        Ok(self)
    }
    fn serialize_map(self, len: Option<usize>) -> Result<Self, WireError> {
        let len = len.ok_or(WireError::Unsupported("unsized maps"))?;
        self.put_len(len)?;
        Ok(self)
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self, WireError> {
        Ok(self)
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, WireError> {
        self.out.put_u32_le(variant_index);
        Ok(self)
    }
}

macro_rules! impl_seq_like {
    ($trait:path, $method:ident) => {
        impl<'a> $trait for &'a mut Encoder {
            type Ok = ();
            type Error = WireError;
            fn $method<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), WireError> {
                value.serialize(&mut **self)
            }
            fn end(self) -> Result<(), WireError> {
                Ok(())
            }
        }
    };
}

impl_seq_like!(ser::SerializeSeq, serialize_element);
impl_seq_like!(ser::SerializeTuple, serialize_element);
impl_seq_like!(ser::SerializeTupleStruct, serialize_field);
impl_seq_like!(ser::SerializeTupleVariant, serialize_field);

impl ser::SerializeMap for &mut Encoder {
    type Ok = ();
    type Error = WireError;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), WireError> {
        key.serialize(&mut **self)
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), WireError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl ser::SerializeStruct for &mut Encoder {
    type Ok = ();
    type Error = WireError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for &mut Encoder {
    type Ok = ();
    type Error = WireError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}
