//! Parcel coalescing with bounded in-flight backpressure — the layer
//! between the cluster's action machinery and the parcelport.
//!
//! HPX ships a "parcel coalescing" plugin: many small parcels to the same
//! destination are packed into one message, trading a bounded extra
//! latency (the flush deadline) for far fewer per-message overheads —
//! exactly the quantity the SBC cluster is short on (the TCP/MPI
//! `per_message_us` dwarfs a small parcel's serialization time). This
//! module reproduces that layer:
//!
//! * **off** (the default, matching the seed's behaviour and the paper's
//!   runs): every parcel becomes one single-parcel frame, transmitted
//!   immediately;
//! * **on**: parcels queue per destination until the batch reaches
//!   [`CoalesceConfig::max_batch_parcels`] or
//!   [`CoalesceConfig::max_batch_bytes`], the flush deadline passes, or
//!   backpressure trips; then the queue leaves as one batch frame.
//!
//! Backpressure: at most [`CoalesceConfig::max_in_flight`] parcels may sit
//! in queues; a submitter that would exceed the bound flushes its
//! destination synchronously instead of queueing deeper, so memory stays
//! bounded and a flood of small parcels degrades to larger batches rather
//! than unbounded buffering. Queue depth peaks are recorded in the port's
//! [`crate::stats::PortSnapshot::queue_depth_hwm`].

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use apex_lite::trace::{self, Cat};
use bytes::Bytes;
use parking_lot::{Condvar, Mutex};

use crate::agas::LocalityId;
use crate::frame::{self, TraceCtx};
use crate::parcelport::Parcelport;
use crate::stats::CommMetrics;

/// Coalescing-layer knobs (part of `ClusterConfig`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoalesceConfig {
    /// Whether coalescing is active. Off by default: the paper's runs used
    /// no coalescing, and the ablation needs a faithful baseline.
    pub enabled: bool,
    /// Flush a destination's queue at this many parcels.
    pub max_batch_parcels: usize,
    /// Flush a destination's queue when it holds this many payload bytes.
    pub max_batch_bytes: usize,
    /// Deadline after which queued parcels leave regardless of batch size.
    pub flush_deadline: Duration,
    /// Total parcels allowed in queues before submitters must flush
    /// (backpressure bound).
    pub max_in_flight: usize,
}

impl Default for CoalesceConfig {
    fn default() -> Self {
        CoalesceConfig {
            enabled: false,
            max_batch_parcels: 16,
            max_batch_bytes: 64 * 1024,
            flush_deadline: Duration::from_micros(200),
            max_in_flight: 256,
        }
    }
}

impl CoalesceConfig {
    /// Coalescing enabled with the default batch shape.
    pub fn enabled() -> Self {
        CoalesceConfig {
            enabled: true,
            ..Default::default()
        }
    }
}

struct DestQueue {
    parcels: Vec<(Bytes, TraceCtx)>,
    bytes: usize,
}

struct CoalesceShared {
    config: CoalesceConfig,
    port: Arc<dyn Parcelport>,
    /// Flush-delay histogram + link matrices shared with the cluster.
    metrics: Arc<CommMetrics>,
    /// One pending queue per destination locality.
    queues: Vec<Mutex<DestQueue>>,
    /// Parcels across all queues (backpressure accounting).
    pending: AtomicUsize,
    /// Wakes the deadline flusher early on shutdown.
    wakeup: Condvar,
    wakeup_lock: Mutex<()>,
    shutdown: AtomicBool,
}

impl CoalesceShared {
    /// Flush one destination's queue as a batch frame (or a single frame
    /// for a queue of one). No-op on an empty queue.
    fn flush_dest(&self, dest: usize) {
        let parcels = {
            let mut q = self.queues[dest].lock();
            if q.parcels.is_empty() {
                return;
            }
            q.bytes = 0;
            std::mem::take(&mut q.parcels)
        };
        self.pending.fetch_sub(parcels.len(), Ordering::AcqRel);
        // How long each parcel sat queued before its batch left — the
        // coalescing latency tax the flush deadline bounds.
        let now = trace::now_ns();
        for (_, ctx) in &parcels {
            self.metrics
                .coalesce_flush_delay
                .record(now.saturating_sub(ctx.send_ns));
        }
        let frame = if parcels.len() == 1 {
            frame::encode_single(&parcels[0].0, parcels[0].1)
        } else {
            frame::encode_batch(&parcels)
        };
        self.port.transmit(LocalityId(dest as u32), frame);
    }

    fn flush_all(&self) {
        for dest in 0..self.queues.len() {
            self.flush_dest(dest);
        }
    }
}

/// The coalescing layer (see module docs). One per cluster, shared by all
/// localities' senders.
pub struct Coalescer {
    shared: Arc<CoalesceShared>,
    flusher: Option<JoinHandle<()>>,
}

impl Coalescer {
    /// Build the layer for `localities` destinations over `port`. Spawns
    /// the deadline-flusher thread only when coalescing is enabled.
    pub fn new(config: CoalesceConfig, localities: u32, port: Arc<dyn Parcelport>) -> Self {
        let shared = Arc::new(CoalesceShared {
            config,
            port,
            metrics: Arc::new(CommMetrics::new(localities)),
            queues: (0..localities)
                .map(|_| {
                    Mutex::new(DestQueue {
                        parcels: Vec::new(),
                        bytes: 0,
                    })
                })
                .collect(),
            pending: AtomicUsize::new(0),
            wakeup: Condvar::new(),
            wakeup_lock: Mutex::new(()),
            shutdown: AtomicBool::new(false),
        });
        let flusher = config.enabled.then(|| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("parcel-coalescer".into())
                .spawn(move || deadline_loop(&shared))
                .expect("failed to spawn coalescer flush thread")
        });
        Coalescer { shared, flusher }
    }

    /// The parcelport this layer feeds.
    pub fn port(&self) -> &Arc<dyn Parcelport> {
        &self.shared.port
    }

    /// The comms metrics this layer records into (flush-delay histogram;
    /// the cluster's receive side shares the same instance for latency
    /// and link accounting).
    pub fn metrics(&self) -> &Arc<CommMetrics> {
        &self.shared.metrics
    }

    /// Submit one wire-encoded parcel from `from` for `to`, stamping its
    /// causal-tracing context (origin, flow id, send timestamp) at submit
    /// time — so the receive-side latency includes any coalescer queueing.
    pub fn submit(&self, from: LocalityId, to: LocalityId, parcel: Bytes) {
        let ctx = TraceCtx::stamp(from.0);
        let cfg = &self.shared.config;
        if !cfg.enabled {
            self.shared
                .port
                .transmit(to, frame::encode_single(&parcel, ctx));
            return;
        }
        let dest = to.0 as usize;
        let (flush_now, depth) = {
            let mut q = self.shared.queues[dest].lock();
            q.bytes += parcel.len();
            q.parcels.push((parcel, ctx));
            let pending = self.shared.pending.fetch_add(1, Ordering::AcqRel) + 1;
            (
                q.parcels.len() >= cfg.max_batch_parcels
                    || q.bytes >= cfg.max_batch_bytes
                    || pending >= cfg.max_in_flight,
                pending as u64,
            )
        };
        self.shared.port.observe_queue_depth(depth);
        if flush_now {
            self.shared.flush_dest(dest);
        }
    }

    /// Flush every destination queue and drive the port to quiescence.
    /// After this returns, every submitted parcel has been delivered.
    pub fn flush(&self) {
        let _span = trace::span(Cat::Comm, "flush");
        self.shared.flush_all();
        self.shared.port.flush();
    }
}

fn deadline_loop(shared: &CoalesceShared) {
    while !shared.shutdown.load(Ordering::Acquire) {
        {
            let mut g = shared.wakeup_lock.lock();
            shared.wakeup.wait_for(&mut g, shared.config.flush_deadline);
        }
        shared.flush_all();
    }
}

impl Drop for Coalescer {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wakeup.notify_all();
        if let Some(join) = self.flusher.take() {
            let _ = join.join();
        }
        // Nothing queued may be stranded.
        self.shared.flush_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parcelport::{Deliver, LciParcelport, TcpParcelport};

    fn counting_port() -> (Arc<dyn Parcelport>, Arc<Mutex<Vec<usize>>>) {
        let sizes: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let sizes2 = Arc::clone(&sizes);
        let deliver: Deliver = Arc::new(move |_to, f: Bytes| sizes2.lock().push(f.len()));
        (Arc::new(TcpParcelport::new(deliver)), sizes)
    }

    fn parcels(n: usize, len: usize) -> Vec<Bytes> {
        (0..n).map(|i| Bytes::from(vec![i as u8; len])).collect()
    }

    #[test]
    fn disabled_layer_is_passthrough() {
        let (port, frames) = counting_port();
        let co = Coalescer::new(CoalesceConfig::default(), 2, Arc::clone(&port));
        for p in parcels(10, 8) {
            co.submit(LocalityId(0), LocalityId(1), p);
        }
        assert_eq!(frames.lock().len(), 10, "one frame per parcel");
        let s = port.stats();
        assert_eq!(s.messages, 10);
        assert_eq!(s.parcels, 10);
        assert_eq!(s.batches, 0);
    }

    #[test]
    fn enabled_layer_batches_small_parcels() {
        let (port, frames) = counting_port();
        let cfg = CoalesceConfig {
            enabled: true,
            max_batch_parcels: 8,
            // Generous deadline: batches must close on size, not time.
            flush_deadline: Duration::from_secs(3600),
            ..Default::default()
        };
        let co = Coalescer::new(cfg, 2, Arc::clone(&port));
        for p in parcels(32, 16) {
            co.submit(LocalityId(0), LocalityId(0), p);
        }
        co.flush();
        assert_eq!(frames.lock().len(), 4, "32 parcels / 8 per batch");
        let s = port.stats();
        assert_eq!(s.messages, 4);
        assert_eq!(s.parcels, 32);
        assert_eq!(s.batches, 4);
        assert!(
            s.queue_depth_hwm >= 7,
            "queues really built up: {}",
            s.queue_depth_hwm
        );
    }

    #[test]
    fn flush_delay_histogram_counts_every_queued_parcel() {
        let (port, _frames) = counting_port();
        let cfg = CoalesceConfig {
            enabled: true,
            max_batch_parcels: 8,
            flush_deadline: Duration::from_secs(3600),
            ..Default::default()
        };
        let co = Coalescer::new(cfg, 2, Arc::clone(&port));
        for p in parcels(12, 16) {
            co.submit(LocalityId(0), LocalityId(1), p);
        }
        co.flush();
        let h = co.metrics().coalesce_flush_delay.snapshot();
        assert_eq!(h.count(), 12, "every queued parcel records a delay");
        // Pass-through (disabled) submission records no flush delay.
        let (port2, _f2) = counting_port();
        let co2 = Coalescer::new(CoalesceConfig::default(), 2, port2);
        co2.submit(LocalityId(0), LocalityId(1), Bytes::from(&b"x"[..]));
        assert_eq!(co2.metrics().coalesce_flush_delay.snapshot().count(), 0);
    }

    #[test]
    fn byte_bound_closes_batches_early() {
        let (port, _frames) = counting_port();
        let cfg = CoalesceConfig {
            enabled: true,
            max_batch_parcels: 1000,
            max_batch_bytes: 100,
            flush_deadline: Duration::from_secs(3600),
            ..Default::default()
        };
        let co = Coalescer::new(cfg, 1, Arc::clone(&port));
        for p in parcels(10, 60) {
            co.submit(LocalityId(0), LocalityId(0), p);
        }
        co.flush();
        let s = port.stats();
        assert_eq!(s.parcels, 10);
        assert_eq!(
            s.messages, 5,
            "two 60-byte parcels cross the 100-byte bound"
        );
    }

    #[test]
    fn backpressure_bounds_queued_parcels() {
        let (port, _frames) = counting_port();
        let cfg = CoalesceConfig {
            enabled: true,
            max_batch_parcels: 1_000_000,
            max_batch_bytes: usize::MAX,
            flush_deadline: Duration::from_secs(3600),
            max_in_flight: 4,
        };
        let co = Coalescer::new(cfg, 1, Arc::clone(&port));
        for p in parcels(64, 1) {
            co.submit(LocalityId(0), LocalityId(0), p);
        }
        co.flush();
        let s = port.stats();
        assert_eq!(s.parcels, 64);
        assert!(
            s.queue_depth_hwm <= 4,
            "backpressure must cap queue depth: {}",
            s.queue_depth_hwm
        );
        assert!(s.messages >= 16, "bounded queues force regular flushes");
    }

    #[test]
    fn deadline_flushes_without_help() {
        let (port, _frames) = counting_port();
        let cfg = CoalesceConfig {
            enabled: true,
            flush_deadline: Duration::from_millis(1),
            ..CoalesceConfig::enabled()
        };
        let co = Coalescer::new(cfg, 1, Arc::clone(&port));
        co.submit(LocalityId(0), LocalityId(0), Bytes::from(&b"lonely"[..]));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while port.stats().messages == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "deadline flusher never ran"
            );
            std::thread::yield_now();
        }
        assert_eq!(port.stats().parcels, 1);
    }

    #[test]
    fn drop_flushes_stragglers() {
        let (port, frames) = counting_port();
        let cfg = CoalesceConfig {
            enabled: true,
            flush_deadline: Duration::from_secs(3600),
            ..CoalesceConfig::enabled()
        };
        {
            let co = Coalescer::new(cfg, 2, Arc::clone(&port));
            co.submit(
                LocalityId(0),
                LocalityId(1),
                Bytes::from(&b"last words"[..]),
            );
        }
        assert_eq!(frames.lock().len(), 1, "drop must not strand parcels");
    }

    #[test]
    fn coalescing_composes_with_explicit_progress_port() {
        let frames: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let frames2 = Arc::clone(&frames);
        let deliver: Deliver = Arc::new(move |_to, f: Bytes| frames2.lock().push(f.len()));
        let port: Arc<dyn Parcelport> = Arc::new(LciParcelport::new_manual(deliver));
        let cfg = CoalesceConfig {
            enabled: true,
            max_batch_parcels: 4,
            flush_deadline: Duration::from_secs(3600),
            ..Default::default()
        };
        let co = Coalescer::new(cfg, 1, Arc::clone(&port));
        for p in parcels(4, 3) {
            co.submit(LocalityId(0), LocalityId(0), p);
        }
        // Batch closed at 4 parcels and was handed to the port, but the
        // LCI outbox holds it until progress runs.
        assert!(frames.lock().is_empty());
        co.flush();
        assert_eq!(frames.lock().len(), 1);
        assert_eq!(port.stats().batches, 1);
    }
}
