//! Eager MPI parcelport — two-sided sends through the MPI runtime
//! (OpenMPI 4.1.4 in the paper). Semantically eager like TCP: `MPI_Isend`
//! completes from the application's view on submission, with the library's
//! internal progress hidden from the caller. The *difference* to TCP lives
//! in the link model ([`rv_machine::NetBackend::Mpi`]): the matching layer
//! and extra buffer copies triple the per-message CPU cost on the in-order
//! boards — the driver behind Fig. 8's 1.55× (MPI) vs 1.85× (TCP) speedups.

use std::sync::atomic::{AtomicU64, Ordering};

use apex_lite::trace::{self, Cat};
use bytes::Bytes;
use rv_machine::NetBackend;

use crate::agas::LocalityId;
use crate::stats::{PortSnapshot, PortStats};

use super::{Deliver, Parcelport};

/// The MPI backend.
pub struct MpiParcelport {
    deliver: Deliver,
    stats: PortStats,
    /// Sends matched by the (modelled) receive side. MPI's tag matching
    /// means every frame costs a lookup; we count them so the cost hook's
    /// higher `per_message_us` corresponds to an observable quantity.
    matched: AtomicU64,
}

impl MpiParcelport {
    /// Open the port, delivering through `deliver`.
    pub fn new(deliver: Deliver) -> Self {
        MpiParcelport {
            deliver,
            stats: PortStats::new(),
            matched: AtomicU64::new(0),
        }
    }

    /// Frames that went through the modelled matching layer.
    pub fn matched_sends(&self) -> u64 {
        self.matched.load(Ordering::Relaxed)
    }
}

impl Parcelport for MpiParcelport {
    fn backend(&self) -> NetBackend {
        NetBackend::Mpi
    }

    fn transmit(&self, to: LocalityId, frame: Bytes) {
        let _span = trace::span(Cat::Comm, "parcel_send");
        super::note_parcel_send(&frame);
        self.stats.record_frame(
            frame.len() as u64,
            crate::frame::decode_parcel_count(&frame),
        );
        self.matched.fetch_add(1, Ordering::Relaxed);
        (self.deliver)(to, frame);
    }

    fn progress(&self) -> usize {
        0 // library-internal progress; nothing observable to drive
    }

    fn flush(&self) {
        // Eager completion: nothing in flight after transmit returns.
    }

    fn stats(&self) -> PortSnapshot {
        self.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.stats.reset();
        self.matched.store(0, Ordering::Relaxed);
    }

    fn observe_queue_depth(&self, depth: u64) {
        self.stats.observe_queue_depth(depth);
    }

    fn note_step(&self, step: u64) {
        self.stats.note_step(step);
    }
}
