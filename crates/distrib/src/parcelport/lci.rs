//! LCI parcelport — explicit-progress semantics.
//!
//! HPX's LCI backend (Lightweight Communication Interface) differs from
//! TCP/MPI in *who* moves the bytes: `transmit` only deposits the frame in
//! an outbox (a lightweight completion object), and a dedicated **progress
//! engine** drains it — either driven explicitly ([`Parcelport::progress`]
//! / [`Parcelport::flush`]) or by the port's background progress thread,
//! which mirrors HPX-LCI's dedicated progress pthread. Decoupling
//! submission from delivery is what buys LCI its low per-message software
//! overhead (the calling thread returns immediately; no syscall, no
//! matching) — the property the link model's `per_message_us = 18` (vs
//! TCP's 35, MPI's 110) encodes.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use apex_lite::trace::{self, Cat};
use bytes::Bytes;
use parking_lot::{Condvar, Mutex};
use rv_machine::NetBackend;

use crate::agas::LocalityId;
use crate::stats::{PortSnapshot, PortStats};

use super::{Deliver, Parcelport};

struct LciShared {
    deliver: Deliver,
    stats: PortStats,
    outbox: Mutex<VecDeque<(LocalityId, Bytes)>>,
    /// Signalled when the outbox gains work (progress thread) and when it
    /// drains empty (flushers).
    activity: Condvar,
    /// Frames popped from the outbox but not yet handed to `deliver` —
    /// `flush` must not report quiescence while one is in flight.
    in_flight: AtomicUsize,
    shutdown: AtomicBool,
}

impl LciShared {
    /// Drain everything currently queued; returns frames delivered.
    fn drain(&self) -> usize {
        let mut delivered = 0;
        loop {
            let next = {
                let mut outbox = self.outbox.lock();
                let next = outbox.pop_front();
                if next.is_some() {
                    // Claimed under the outbox lock, so a flusher checking
                    // (empty && in_flight == 0) under the same lock cannot
                    // observe the frame as "gone" before it is delivered.
                    self.in_flight.fetch_add(1, Ordering::AcqRel);
                }
                next
            };
            match next {
                Some((to, frame)) => {
                    // The explicit-progress port's real send moment is the
                    // drain, not the transmit — flows start here so the
                    // network leg excludes outbox dwell only when the
                    // latency histogram (stamped at submit) includes it.
                    let _span = trace::span(Cat::Comm, "parcel_send");
                    super::note_parcel_send(&frame);
                    self.stats.record_frame(
                        frame.len() as u64,
                        crate::frame::decode_parcel_count(&frame),
                    );
                    (self.deliver)(to, frame);
                    self.in_flight.fetch_sub(1, Ordering::AcqRel);
                    delivered += 1;
                }
                None => break,
            }
        }
        if delivered > 0 {
            trace::instant(Cat::Comm, "progress");
            // Wake flushers waiting for the outbox to empty.
            self.activity.notify_all();
        }
        delivered
    }

    /// Whether nothing is queued and nothing is mid-delivery. Call with
    /// the outbox lock held for an exact answer.
    fn quiescent(&self, outbox: &VecDeque<(LocalityId, Bytes)>) -> bool {
        outbox.is_empty() && self.in_flight.load(Ordering::Acquire) == 0
    }
}

/// The LCI backend (see module docs).
pub struct LciParcelport {
    shared: Arc<LciShared>,
    progress_thread: Option<JoinHandle<()>>,
}

impl LciParcelport {
    /// Open the port with its background progress thread running.
    pub fn new(deliver: Deliver) -> Self {
        let mut port = Self::new_manual(deliver);
        let shared = Arc::clone(&port.shared);
        let join = std::thread::Builder::new()
            .name("lci-progress".into())
            .spawn(move || progress_loop(&shared))
            .expect("failed to spawn LCI progress thread");
        port.progress_thread = Some(join);
        port
    }

    /// Open the port *without* a progress thread: frames move only on
    /// explicit [`Parcelport::progress`] / [`Parcelport::flush`] calls.
    /// Used by deterministic tests and the coalescing ablation.
    pub fn new_manual(deliver: Deliver) -> Self {
        LciParcelport {
            shared: Arc::new(LciShared {
                deliver,
                stats: PortStats::new(),
                outbox: Mutex::new(VecDeque::new()),
                activity: Condvar::new(),
                in_flight: AtomicUsize::new(0),
                shutdown: AtomicBool::new(false),
            }),
            progress_thread: None,
        }
    }
}

fn progress_loop(shared: &LciShared) {
    loop {
        shared.drain();
        let mut outbox = shared.outbox.lock();
        if shared.shutdown.load(Ordering::Acquire) && outbox.is_empty() {
            return;
        }
        if outbox.is_empty() {
            // Nap until transmit signals new work (bounded: a transmit
            // racing past the notify must not strand its frame).
            shared
                .activity
                .wait_for(&mut outbox, Duration::from_micros(200));
        }
    }
}

impl Parcelport for LciParcelport {
    fn backend(&self) -> NetBackend {
        NetBackend::Lci
    }

    fn transmit(&self, to: LocalityId, frame: Bytes) {
        trace::instant(Cat::Comm, "transmit");
        let depth = {
            let mut outbox = self.shared.outbox.lock();
            outbox.push_back((to, frame));
            outbox.len() as u64
        };
        self.shared.stats.observe_queue_depth(depth);
        self.shared.activity.notify_all();
    }

    fn progress(&self) -> usize {
        self.shared.drain()
    }

    fn flush(&self) {
        // Help drain, then wait for quiescence (the progress thread may be
        // mid-delivery of a frame it already popped; `drain` notifies when
        // it finishes a round).
        loop {
            self.shared.drain();
            let mut outbox = self.shared.outbox.lock();
            if self.shared.quiescent(&outbox) {
                return;
            }
            self.shared
                .activity
                .wait_for(&mut outbox, Duration::from_micros(200));
        }
    }

    fn stats(&self) -> PortSnapshot {
        self.shared.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.shared.stats.reset();
    }

    fn observe_queue_depth(&self, depth: u64) {
        self.shared.stats.observe_queue_depth(depth);
    }

    fn note_step(&self, step: u64) {
        self.shared.stats.note_step(step);
    }
}

impl Drop for LciParcelport {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.activity.notify_all();
        if let Some(join) = self.progress_thread.take() {
            let _ = join.join();
        }
    }
}
