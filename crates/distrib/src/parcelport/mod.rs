//! Pluggable parcelports — the backend abstraction of HPX's parcel layer.
//!
//! §2.1 of the paper lists HPX's communication backends ("parcelports"):
//! TCP, MPI and LCI, selectable at startup without touching application
//! code. This module reproduces that seam: the cluster talks to a
//! [`Parcelport`] trait object; [`open`] instantiates the backend named by
//! the run configuration.
//!
//! # Contract
//!
//! A parcelport moves **framed** byte buffers (see [`crate::frame`])
//! between localities:
//!
//! * [`Parcelport::transmit`] accepts one frame for a destination. *Eager*
//!   ports ([`TcpParcelport`], [`MpiParcelport`]) deliver on the calling
//!   thread before returning. *Explicit-progress* ports
//!   ([`LciParcelport`]) only enqueue; delivery happens when the progress
//!   engine runs.
//! * [`Parcelport::progress`] drives delivery of queued frames and returns
//!   how many were delivered. Eager ports have nothing queued and return 0.
//! * [`Parcelport::flush`] blocks until every previously transmitted frame
//!   has been delivered — the barrier a sender needs before blocking on a
//!   response.
//! * [`Parcelport::stats`] exposes the measured per-port counters
//!   ([`PortSnapshot`]): frames, framed bytes, parcels, coalesced batches,
//!   and the queue-depth high-water mark.
//! * [`Parcelport::cost`] is the modelled link parameter set
//!   (per-message overhead, latency, bandwidth) the Fig. 8 projection
//!   charges per counted frame — measurement and model meet here.
//!
//! Delivery is *ordered per destination* for frames sent from one thread;
//! frames to dead destinations are dropped, like writes to a closed socket.

mod lci;
mod mpi;
mod tcp;

pub use lci::LciParcelport;
pub use mpi::MpiParcelport;
pub use tcp::TcpParcelport;

use std::sync::Arc;

use bytes::Bytes;
use rv_machine::{NetBackend, NetCost};

use crate::agas::LocalityId;
use crate::stats::PortSnapshot;

/// Delivery sink: routes one frame to a destination locality's receive
/// loop. Implementations must tolerate dead destinations (drop the frame).
pub type Deliver = Arc<dyn Fn(LocalityId, Bytes) + Send + Sync>;

/// Emit one `"s"` flow event per parcel in `frame`, pairing with the
/// receive side's `"f"` so Perfetto draws a cross-locality arrow out of
/// the enclosing `parcel_send` span. No-op (and no header walk) when
/// tracing is off; raw non-framed test buffers yield no contexts and are
/// silently skipped.
pub(crate) fn note_parcel_send(frame: &[u8]) {
    if !apex_lite::trace::enabled() {
        return;
    }
    for ctx in crate::frame::trace_ctxs(frame) {
        apex_lite::trace::flow_start(apex_lite::trace::Cat::Comm, "parcel", ctx.flow);
    }
}

/// One communication backend instance (see module docs for the contract).
pub trait Parcelport: Send + Sync {
    /// Which backend this port implements.
    fn backend(&self) -> NetBackend;

    /// Hand one frame to the port for `to`.
    fn transmit(&self, to: LocalityId, frame: Bytes);

    /// Drive the progress engine; returns frames delivered by this call.
    fn progress(&self) -> usize;

    /// Block until all previously transmitted frames are delivered.
    fn flush(&self);

    /// Measured per-port counters.
    fn stats(&self) -> PortSnapshot;

    /// Zero the per-port counters.
    fn reset_stats(&self);

    /// Record an upstream queue-depth observation into the port's
    /// high-water mark (the coalescing layer reports its pending-parcel
    /// peaks here so one snapshot covers the whole send path).
    fn observe_queue_depth(&self, depth: u64);

    /// Tell the port which application step is running, so queue-depth
    /// high-water marks can be attributed to the step that caused them
    /// (see [`PortSnapshot::queue_depth_hwm_step`]).
    fn note_step(&self, step: u64);

    /// Modelled link parameters charged per frame by the projection.
    fn cost(&self) -> NetCost {
        self.backend().net_cost()
    }
}

/// Instantiate the parcelport for `backend`, delivering through `deliver`.
///
/// `TofuD` runs over the eager TCP implementation: the simulation only
/// distinguishes *semantics* (eager vs explicit progress); Tofu-D exists as
/// a link model for the Fugaku reference series, not as a software stack we
/// reproduce.
pub fn open(backend: NetBackend, deliver: Deliver) -> Arc<dyn Parcelport> {
    match backend {
        NetBackend::Tcp => Arc::new(TcpParcelport::new(deliver)),
        NetBackend::Mpi => Arc::new(MpiParcelport::new(deliver)),
        NetBackend::Lci => Arc::new(LciParcelport::new(deliver)),
        NetBackend::TofuD => Arc::new(TcpParcelport::with_backend(deliver, NetBackend::TofuD)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    type DeliveryLog = Arc<Mutex<Vec<(u32, Vec<u8>)>>>;

    fn collector() -> (Deliver, DeliveryLog) {
        let log: DeliveryLog = Arc::new(Mutex::new(Vec::new()));
        let log2 = Arc::clone(&log);
        let deliver: Deliver = Arc::new(move |to, frame: Bytes| {
            log2.lock().push((to.0, frame.to_vec()));
        });
        (deliver, log)
    }

    #[test]
    fn every_backend_opens_and_reports_itself() {
        for backend in NetBackend::ALL {
            let (deliver, _log) = collector();
            let port = open(backend, deliver);
            // TofuD borrows the eager TCP implementation but keeps its
            // backend identity (and therefore its link model).
            assert_eq!(port.backend(), backend);
            assert_eq!(port.cost(), backend.net_cost());
        }
    }

    #[test]
    fn eager_ports_deliver_inside_transmit() {
        for backend in [NetBackend::Tcp, NetBackend::Mpi] {
            let (deliver, log) = collector();
            let port = open(backend, deliver);
            port.transmit(LocalityId(1), Bytes::from(&b"frame"[..]));
            assert_eq!(log.lock().len(), 1, "{backend:?} must deliver eagerly");
            assert_eq!(port.progress(), 0, "{backend:?} has no progress queue");
            let s = port.stats();
            assert_eq!(s.messages, 1);
            assert_eq!(s.bytes, 5);
        }
    }

    #[test]
    fn lci_port_defers_until_progress() {
        let (deliver, log) = collector();
        let port = LciParcelport::new_manual(deliver);
        port.transmit(LocalityId(0), Bytes::from(&b"a"[..]));
        port.transmit(LocalityId(0), Bytes::from(&b"bb"[..]));
        assert!(
            log.lock().is_empty(),
            "explicit progress: nothing moves yet"
        );
        assert_eq!(port.stats().queue_depth_hwm, 2);
        assert_eq!(port.progress(), 2);
        let delivered = log.lock().clone();
        assert_eq!(delivered, vec![(0, b"a".to_vec()), (0, b"bb".to_vec())]);
        let s = port.stats();
        assert_eq!(s.messages, 2);
        assert_eq!(s.bytes, 3);
    }

    #[test]
    fn flush_drains_lci_outbox() {
        let (deliver, log) = collector();
        let port = open(NetBackend::Lci, deliver);
        for i in 0..10u8 {
            port.transmit(LocalityId(1), Bytes::copy_from_slice(&[i]));
        }
        port.flush();
        assert_eq!(log.lock().len(), 10);
    }

    #[test]
    fn reset_stats_zeroes_counters() {
        let (deliver, _log) = collector();
        let port = open(NetBackend::Tcp, deliver);
        port.transmit(LocalityId(0), Bytes::from(&b"x"[..]));
        port.reset_stats();
        assert_eq!(port.stats(), PortSnapshot::default());
    }
}
