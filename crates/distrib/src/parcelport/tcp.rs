//! Eager TCP parcelport — one connection per peer, frames written to the
//! socket on the sending thread (HPX's classic TCP parcelport behaviour:
//! `asio` write on submission, no separate progress engine).

use apex_lite::trace::{self, Cat};
use bytes::Bytes;
use rv_machine::NetBackend;

use crate::agas::LocalityId;
use crate::stats::{PortSnapshot, PortStats};

use super::{Deliver, Parcelport};

/// The TCP backend (also hosts the Tofu-D link model, which shares the
/// eager semantics — see [`super::open`]).
pub struct TcpParcelport {
    deliver: Deliver,
    stats: PortStats,
    backend: NetBackend,
}

impl TcpParcelport {
    /// Open the port, delivering through `deliver`.
    pub fn new(deliver: Deliver) -> Self {
        Self::with_backend(deliver, NetBackend::Tcp)
    }

    /// Eager port carrying a different link model (Tofu-D reference runs).
    pub fn with_backend(deliver: Deliver, backend: NetBackend) -> Self {
        TcpParcelport {
            deliver,
            stats: PortStats::new(),
            backend,
        }
    }
}

impl Parcelport for TcpParcelport {
    fn backend(&self) -> NetBackend {
        self.backend
    }

    fn transmit(&self, to: LocalityId, frame: Bytes) {
        let _span = trace::span(Cat::Comm, "parcel_send");
        super::note_parcel_send(&frame);
        self.stats.record_frame(
            frame.len() as u64,
            crate::frame::decode_parcel_count(&frame),
        );
        (self.deliver)(to, frame);
    }

    fn progress(&self) -> usize {
        0 // eager: nothing is ever queued
    }

    fn flush(&self) {
        // Delivery happened inside transmit; nothing to wait for.
    }

    fn stats(&self) -> PortSnapshot {
        self.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.stats.reset();
    }

    fn observe_queue_depth(&self, depth: u64) {
        self.stats.observe_queue_depth(depth);
    }

    fn note_step(&self, step: u64) {
        self.stats.note_step(step);
    }
}
