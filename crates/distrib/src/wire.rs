//! Compact binary wire format for parcels — the serialization layer of the
//! parcelport (HPX's `hpx::serialization`).
//!
//! Every remote action's arguments and results pass through
//! [`to_bytes`]/[`from_bytes`], so the link model charges *real* payload
//! sizes. The format is a fixed-width little-endian, non-self-describing
//! encoding (bincode-like): integers as their LE bytes, `usize` lengths as
//! `u32`, enum variants as a `u32` index, `Option` as a one-byte tag,
//! sequences/strings length-prefixed. `deserialize_any` is unsupported by
//! design — parcels are decoded against a known schema.

use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::de::{self, DeserializeOwned, IntoDeserializer, Visitor};
use serde::ser::{self, Serialize};

/// Errors from encoding or decoding a parcel payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Decoder ran past the end of the buffer.
    Eof,
    /// A length prefix exceeded `u32::MAX` (encode) or the buffer (decode).
    BadLength,
    /// Invalid tag byte for bool/option/char.
    BadTag(u8),
    /// String bytes were not valid UTF-8.
    BadUtf8,
    /// Feature the format deliberately does not support.
    Unsupported(&'static str),
    /// Error bubbled up from serde itself.
    Message(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Eof => write!(f, "unexpected end of parcel payload"),
            WireError::BadLength => write!(f, "length prefix out of range"),
            WireError::BadTag(t) => write!(f, "invalid tag byte {t}"),
            WireError::BadUtf8 => write!(f, "invalid UTF-8 in string"),
            WireError::Unsupported(what) => write!(f, "unsupported by wire format: {what}"),
            WireError::Message(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl ser::Error for WireError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        WireError::Message(msg.to_string())
    }
}

impl de::Error for WireError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        WireError::Message(msg.to_string())
    }
}

/// Encode `value` into a freshly allocated byte buffer.
pub fn to_bytes<T: Serialize>(value: &T) -> Result<Bytes, WireError> {
    let mut ser = Encoder {
        out: BytesMut::with_capacity(64),
    };
    value.serialize(&mut ser)?;
    Ok(ser.out.freeze())
}

/// Decode a `T` from `bytes`; the whole buffer must be consumed.
pub fn from_bytes<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, WireError> {
    let mut de = Decoder { input: bytes };
    let v = T::deserialize(&mut de)?;
    if !de.input.is_empty() {
        return Err(WireError::Message(format!(
            "{} trailing bytes after decode",
            de.input.len()
        )));
    }
    Ok(v)
}

struct Encoder {
    out: BytesMut,
}

impl Encoder {
    fn put_len(&mut self, len: usize) -> Result<(), WireError> {
        let len32 = u32::try_from(len).map_err(|_| WireError::BadLength)?;
        self.out.put_u32_le(len32);
        Ok(())
    }
}

impl<'a> ser::Serializer for &'a mut Encoder {
    type Ok = ();
    type Error = WireError;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<(), WireError> {
        self.out.put_u8(u8::from(v));
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<(), WireError> {
        self.out.put_i8(v);
        Ok(())
    }
    fn serialize_i16(self, v: i16) -> Result<(), WireError> {
        self.out.put_i16_le(v);
        Ok(())
    }
    fn serialize_i32(self, v: i32) -> Result<(), WireError> {
        self.out.put_i32_le(v);
        Ok(())
    }
    fn serialize_i64(self, v: i64) -> Result<(), WireError> {
        self.out.put_i64_le(v);
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), WireError> {
        self.out.put_u8(v);
        Ok(())
    }
    fn serialize_u16(self, v: u16) -> Result<(), WireError> {
        self.out.put_u16_le(v);
        Ok(())
    }
    fn serialize_u32(self, v: u32) -> Result<(), WireError> {
        self.out.put_u32_le(v);
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<(), WireError> {
        self.out.put_u64_le(v);
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), WireError> {
        self.out.put_f32_le(v);
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<(), WireError> {
        self.out.put_f64_le(v);
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), WireError> {
        self.out.put_u32_le(v as u32);
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result<(), WireError> {
        self.put_len(v.len())?;
        self.out.put_slice(v.as_bytes());
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<(), WireError> {
        self.put_len(v.len())?;
        self.out.put_slice(v);
        Ok(())
    }
    fn serialize_none(self) -> Result<(), WireError> {
        self.out.put_u8(0);
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), WireError> {
        self.out.put_u8(1);
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), WireError> {
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), WireError> {
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), WireError> {
        self.out.put_u32_le(variant_index);
        Ok(())
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        self.out.put_u32_le(variant_index);
        value.serialize(self)
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<Self, WireError> {
        let len = len.ok_or(WireError::Unsupported("unsized sequences"))?;
        self.put_len(len)?;
        Ok(self)
    }
    fn serialize_tuple(self, _len: usize) -> Result<Self, WireError> {
        Ok(self)
    }
    fn serialize_tuple_struct(self, _name: &'static str, _len: usize) -> Result<Self, WireError> {
        Ok(self)
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, WireError> {
        self.out.put_u32_le(variant_index);
        Ok(self)
    }
    fn serialize_map(self, len: Option<usize>) -> Result<Self, WireError> {
        let len = len.ok_or(WireError::Unsupported("unsized maps"))?;
        self.put_len(len)?;
        Ok(self)
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self, WireError> {
        Ok(self)
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, WireError> {
        self.out.put_u32_le(variant_index);
        Ok(self)
    }
}

macro_rules! impl_seq_like {
    ($trait:path, $method:ident) => {
        impl<'a> $trait for &'a mut Encoder {
            type Ok = ();
            type Error = WireError;
            fn $method<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), WireError> {
                value.serialize(&mut **self)
            }
            fn end(self) -> Result<(), WireError> {
                Ok(())
            }
        }
    };
}

impl_seq_like!(ser::SerializeSeq, serialize_element);
impl_seq_like!(ser::SerializeTuple, serialize_element);
impl_seq_like!(ser::SerializeTupleStruct, serialize_field);
impl_seq_like!(ser::SerializeTupleVariant, serialize_field);

impl<'a> ser::SerializeMap for &'a mut Encoder {
    type Ok = ();
    type Error = WireError;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), WireError> {
        key.serialize(&mut **self)
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), WireError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl<'a> ser::SerializeStruct for &'a mut Encoder {
    type Ok = ();
    type Error = WireError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl<'a> ser::SerializeStructVariant for &'a mut Encoder {
    type Ok = ();
    type Error = WireError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

struct Decoder<'de> {
    input: &'de [u8],
}

impl<'de> Decoder<'de> {
    fn take(&mut self, n: usize) -> Result<&'de [u8], WireError> {
        if self.input.len() < n {
            return Err(WireError::Eof);
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }
    fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn get_u32(&mut self) -> Result<u32, WireError> {
        let mut b = self.take(4)?;
        Ok(b.get_u32_le())
    }
    fn get_len(&mut self) -> Result<usize, WireError> {
        let len = self.get_u32()? as usize;
        if len > self.input.len() {
            // Lengths can never exceed what's left (elements ≥ 1 byte each
            // except units; allow units by skipping this check for zero-size
            // elements is impossible to know here — so only reject when the
            // prefix alone exceeds the buffer).
            if len > self.input.len().saturating_mul(8) + 64 {
                return Err(WireError::BadLength);
            }
        }
        Ok(len)
    }
}

macro_rules! de_num {
    ($name:ident, $visit:ident, $ty:ty, $n:expr, $get:ident) => {
        fn $name<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
            let mut b = self.take($n)?;
            visitor.$visit(b.$get())
        }
    };
}

impl<'de, 'a> de::Deserializer<'de> for &'a mut Decoder<'de> {
    type Error = WireError;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, WireError> {
        Err(WireError::Unsupported("deserialize_any"))
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        match self.get_u8()? {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            t => Err(WireError::BadTag(t)),
        }
    }

    de_num!(deserialize_i8, visit_i8, i8, 1, get_i8);
    de_num!(deserialize_i16, visit_i16, i16, 2, get_i16_le);
    de_num!(deserialize_i32, visit_i32, i32, 4, get_i32_le);
    de_num!(deserialize_i64, visit_i64, i64, 8, get_i64_le);
    de_num!(deserialize_u8, visit_u8, u8, 1, get_u8);
    de_num!(deserialize_u16, visit_u16, u16, 2, get_u16_le);
    de_num!(deserialize_u32, visit_u32, u32, 4, get_u32_le);
    de_num!(deserialize_u64, visit_u64, u64, 8, get_u64_le);
    de_num!(deserialize_f32, visit_f32, f32, 4, get_f32_le);
    de_num!(deserialize_f64, visit_f64, f64, 8, get_f64_le);

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let c = self.get_u32()?;
        visitor.visit_char(char::from_u32(c).ok_or(WireError::BadTag(0xFF))?)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.get_len()?;
        let bytes = self.take(len)?;
        visitor.visit_borrowed_str(std::str::from_utf8(bytes).map_err(|_| WireError::BadUtf8)?)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.get_len()?;
        visitor.visit_borrowed_bytes(self.take(len)?)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        match self.get_u8()? {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            t => Err(WireError::BadTag(t)),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.get_len()?;
        visitor.visit_seq(Counted { de: self, left: len })
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_seq(Counted { de: self, left: len })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.get_len()?;
        visitor.visit_map(Counted { de: self, left: len })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_enum(EnumAccess { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, WireError> {
        Err(WireError::Unsupported("identifiers"))
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, WireError> {
        Err(WireError::Unsupported("ignored_any"))
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct Counted<'a, 'de> {
    de: &'a mut Decoder<'de>,
    left: usize,
}

impl<'a, 'de> de::SeqAccess<'de> for Counted<'a, 'de> {
    type Error = WireError;
    fn next_element_seed<S: de::DeserializeSeed<'de>>(
        &mut self,
        seed: S,
    ) -> Result<Option<S::Value>, WireError> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.left)
    }
}

impl<'a, 'de> de::MapAccess<'de> for Counted<'a, 'de> {
    type Error = WireError;
    fn next_key_seed<S: de::DeserializeSeed<'de>>(
        &mut self,
        seed: S,
    ) -> Result<Option<S::Value>, WireError> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }
    fn next_value_seed<S: de::DeserializeSeed<'de>>(
        &mut self,
        seed: S,
    ) -> Result<S::Value, WireError> {
        seed.deserialize(&mut *self.de)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.left)
    }
}

struct EnumAccess<'a, 'de> {
    de: &'a mut Decoder<'de>,
}

impl<'a, 'de> de::EnumAccess<'de> for EnumAccess<'a, 'de> {
    type Error = WireError;
    type Variant = Self;
    fn variant_seed<S: de::DeserializeSeed<'de>>(
        self,
        seed: S,
    ) -> Result<(S::Value, Self), WireError> {
        let idx = self.de.get_u32()?;
        let val = seed.deserialize(idx.into_deserializer())?;
        Ok((val, self))
    }
}

impl<'a, 'de> de::VariantAccess<'de> for EnumAccess<'a, 'de> {
    type Error = WireError;
    fn unit_variant(self) -> Result<(), WireError> {
        Ok(())
    }
    fn newtype_variant_seed<S: de::DeserializeSeed<'de>>(
        self,
        seed: S,
    ) -> Result<S::Value, WireError> {
        seed.deserialize(self.de)
    }
    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value, WireError> {
        de::Deserializer::deserialize_tuple(self.de, len, visitor)
    }
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        de::Deserializer::deserialize_tuple(self.de, fields.len(), visitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    fn roundtrip<T: Serialize + DeserializeOwned + PartialEq + std::fmt::Debug>(v: T) {
        let b = to_bytes(&v).expect("encode");
        let back: T = from_bytes(&b).expect("decode");
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(42u32);
        roundtrip(-7i64);
        roundtrip(true);
        roundtrip(false);
        roundtrip(3.5f32);
        roundtrip(std::f64::consts::PI);
        roundtrip('λ');
        roundtrip(String::from("parcel"));
        roundtrip(String::new());
    }

    #[test]
    fn collections_roundtrip() {
        roundtrip(vec![1.0f64, 2.0, 3.0]);
        roundtrip(Vec::<u64>::new());
        roundtrip(Some(vec![1u8, 2, 3]));
        roundtrip(Option::<u32>::None);
        roundtrip((1u8, -2i32, 3.0f64, String::from("t")));
        let mut m = BTreeMap::new();
        m.insert(1u32, String::from("one"));
        m.insert(2, String::from("two"));
        roundtrip(m);
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Ghost {
        face: u8,
        level: u32,
        data: Vec<f64>,
        tag: Option<String>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Msg {
        Ping,
        Payload(Ghost),
        Pair { a: u64, b: u64 },
    }

    #[test]
    fn structs_and_enums_roundtrip() {
        roundtrip(Ghost {
            face: 3,
            level: 4,
            data: (0..512).map(|i| i as f64 * 0.5).collect(),
            tag: Some("rho".into()),
        });
        roundtrip(Msg::Ping);
        roundtrip(Msg::Pair { a: 1, b: 2 });
        roundtrip(Msg::Payload(Ghost {
            face: 0,
            level: 0,
            data: vec![],
            tag: None,
        }));
    }

    #[test]
    fn encoding_is_compact() {
        // Vec<f64> of 512 entries: 4-byte length + 8×512 payload.
        let v: Vec<f64> = vec![1.0; 512];
        let b = to_bytes(&v).unwrap();
        assert_eq!(b.len(), 4 + 8 * 512);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut b = to_bytes(&7u32).unwrap().to_vec();
        b.push(0);
        assert!(from_bytes::<u32>(&b).is_err());
    }

    #[test]
    fn truncated_input_rejected() {
        let b = to_bytes(&vec![1u64, 2, 3]).unwrap();
        assert_eq!(from_bytes::<Vec<u64>>(&b[..b.len() - 1]), Err(WireError::Eof));
    }

    #[test]
    fn bad_bool_tag_rejected() {
        assert_eq!(from_bytes::<bool>(&[7]), Err(WireError::BadTag(7)));
    }

    #[test]
    fn nested_options() {
        roundtrip(Some(Some(5u8)));
        roundtrip(Some(Option::<u8>::None));
    }

    #[test]
    fn f64_bit_exactness() {
        for v in [0.0, -0.0, f64::MIN_POSITIVE, 1e300, -1e-300, f64::INFINITY] {
            let b = to_bytes(&v).unwrap();
            let back: f64 = from_bytes(&b).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
        let b = to_bytes(&f64::NAN).unwrap();
        assert!(from_bytes::<f64>(&b).unwrap().is_nan());
    }
}
