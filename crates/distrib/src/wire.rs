//! Compact binary wire format for parcels — the serialization layer of the
//! parcelport (HPX's `hpx::serialization`).
//!
//! Every remote action's arguments and results pass through
//! [`to_bytes`]/[`from_bytes`], so the link model charges *real* payload
//! sizes. The format is a fixed-width little-endian, non-self-describing
//! encoding (bincode-like): integers as their LE bytes, `usize` lengths as
//! `u32`, enum variants as a `u32` index, `Option` as a one-byte tag,
//! sequences/strings length-prefixed. `deserialize_any` is unsupported by
//! design — parcels are decoded against a known schema.
//!
//! The serde plumbing lives in the `enc` (serializer) and `dec`
//! (deserializer) submodules; this module owns the public API and the
//! error type.

mod dec;
mod enc;

use std::fmt;

use bytes::Bytes;
use serde::de;
use serde::de::DeserializeOwned;
use serde::ser::{self, Serialize};

use dec::Decoder;
use enc::Encoder;

/// Errors from encoding or decoding a parcel payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Decoder ran past the end of the buffer.
    Eof,
    /// A length prefix exceeded `u32::MAX` (encode) or the buffer (decode).
    BadLength,
    /// Invalid tag byte for bool/option/char.
    BadTag(u8),
    /// String bytes were not valid UTF-8.
    BadUtf8,
    /// Feature the format deliberately does not support.
    Unsupported(&'static str),
    /// Error bubbled up from serde itself.
    Message(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Eof => write!(f, "unexpected end of parcel payload"),
            WireError::BadLength => write!(f, "length prefix out of range"),
            WireError::BadTag(t) => write!(f, "invalid tag byte {t}"),
            WireError::BadUtf8 => write!(f, "invalid UTF-8 in string"),
            WireError::Unsupported(what) => write!(f, "unsupported by wire format: {what}"),
            WireError::Message(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl ser::Error for WireError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        WireError::Message(msg.to_string())
    }
}

impl de::Error for WireError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        WireError::Message(msg.to_string())
    }
}

/// Encode `value` into a freshly allocated byte buffer.
pub fn to_bytes<T: Serialize>(value: &T) -> Result<Bytes, WireError> {
    let mut ser = Encoder::new();
    value.serialize(&mut ser)?;
    Ok(ser.finish())
}

/// Decode a `T` from `bytes`; the whole buffer must be consumed.
pub fn from_bytes<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, WireError> {
    let mut de = Decoder::new(bytes);
    let v = T::deserialize(&mut de)?;
    if de.remaining() != 0 {
        return Err(WireError::Message(format!(
            "{} trailing bytes after decode",
            de.remaining()
        )));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    fn roundtrip<T: Serialize + DeserializeOwned + PartialEq + std::fmt::Debug>(v: T) {
        let b = to_bytes(&v).expect("encode");
        let back: T = from_bytes(&b).expect("decode");
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(42u32);
        roundtrip(-7i64);
        roundtrip(true);
        roundtrip(false);
        roundtrip(3.5f32);
        roundtrip(std::f64::consts::PI);
        roundtrip('λ');
        roundtrip(String::from("parcel"));
        roundtrip(String::new());
    }

    #[test]
    fn collections_roundtrip() {
        roundtrip(vec![1.0f64, 2.0, 3.0]);
        roundtrip(Vec::<u64>::new());
        roundtrip(Some(vec![1u8, 2, 3]));
        roundtrip(Option::<u32>::None);
        roundtrip((1u8, -2i32, 3.0f64, String::from("t")));
        let mut m = BTreeMap::new();
        m.insert(1u32, String::from("one"));
        m.insert(2, String::from("two"));
        roundtrip(m);
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Ghost {
        face: u8,
        level: u32,
        data: Vec<f64>,
        tag: Option<String>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Msg {
        Ping,
        Payload(Ghost),
        Pair { a: u64, b: u64 },
    }

    #[test]
    fn structs_and_enums_roundtrip() {
        roundtrip(Ghost {
            face: 3,
            level: 4,
            data: (0..512).map(|i| i as f64 * 0.5).collect(),
            tag: Some("rho".into()),
        });
        roundtrip(Msg::Ping);
        roundtrip(Msg::Pair { a: 1, b: 2 });
        roundtrip(Msg::Payload(Ghost {
            face: 0,
            level: 0,
            data: vec![],
            tag: None,
        }));
    }

    #[test]
    fn encoding_is_compact() {
        // Vec<f64> of 512 entries: 4-byte length + 8×512 payload.
        let v: Vec<f64> = vec![1.0; 512];
        let b = to_bytes(&v).unwrap();
        assert_eq!(b.len(), 4 + 8 * 512);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut b = to_bytes(&7u32).unwrap().to_vec();
        b.push(0);
        assert!(from_bytes::<u32>(&b).is_err());
    }

    #[test]
    fn truncated_input_rejected() {
        let b = to_bytes(&vec![1u64, 2, 3]).unwrap();
        assert_eq!(
            from_bytes::<Vec<u64>>(&b[..b.len() - 1]),
            Err(WireError::Eof)
        );
    }

    #[test]
    fn bad_bool_tag_rejected() {
        assert_eq!(from_bytes::<bool>(&[7]), Err(WireError::BadTag(7)));
    }

    #[test]
    fn nested_options() {
        roundtrip(Some(Some(5u8)));
        roundtrip(Some(Option::<u8>::None));
    }

    #[test]
    fn f64_bit_exactness() {
        for v in [0.0, -0.0, f64::MIN_POSITIVE, 1e300, -1e-300, f64::INFINITY] {
            let b = to_bytes(&v).unwrap();
            let back: f64 = from_bytes(&b).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
        let b = to_bytes(&f64::NAN).unwrap();
        assert!(from_bytes::<f64>(&b).unwrap().is_nan());
    }
}
