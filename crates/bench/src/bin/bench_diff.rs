//! bench_diff — the bench-regression gate.
//!
//! Re-runs the deterministic parts of the committed baseline benches and
//! diffs them against `BENCH_gravity.json` / `BENCH_hydro.json` /
//! `BENCH_scale.json` at the repo root, with per-metric tolerances:
//!
//! * **count metrics** (cache hits/misses, MAC evaluations, tasks spawned,
//!   fused launches, leaf/cell counts, rebuild counters) must match the
//!   baseline **exactly** — they are functions of the configuration, not of
//!   the machine, so any drift is a behaviour change that slipped past the
//!   unit tests;
//! * **timing metrics** (driver/step/level wall seconds) must stay within
//!   `--tolerance` (default 1.75×) of the baseline — but only when the
//!   baseline's `host_simd_isa`/`compiled_simd_isa` headers match this
//!   build and this is an optimized build. Otherwise the timings are
//!   **skipped with a notice**: a baseline recorded with AVX-512 native
//!   codegen says nothing about an SSE2 CI build, and flagging it would
//!   just train people to ignore the gate;
//! * **lower-bound metrics** (gravity/hydro overlap ratio) must not fall
//!   more than a fixed slack below the baseline — the futurized task graph
//!   overlapping phases is structural, not ISA-dependent.
//!
//! `BENCH_trace_overhead.json` is checked for internal consistency only
//! (overhead within budget, zero disabled-path allocations): its numbers
//! are produced and gated by `bench_trace` itself.
//!
//! `--self-test` exercises the comparison logic without running anything:
//! a synthetic baseline diffed against itself must pass, and against a
//! copy with every timing doubled must fail. `BENCH_SMOKE=1` limits the
//! scale re-run to level 2 (deeper levels take minutes).

use std::process::ExitCode;
use std::time::Instant;

use amt::Runtime;
use apex_lite::json::{self, Value};
use octotiger::kernel_backend::{self, KernelType};
use octotiger::{Driver, OctoConfig};

/// Default allowed slowdown for timing metrics. Baselines are min-of-many
/// on an idle machine; a fresh single run on a loaded CI box needs slack,
/// while a genuine 2× regression must still trip the gate.
const DEFAULT_TOLERANCE: f64 = 1.75;

/// Allowed drop in overlap ratio below the baseline.
const OVERLAP_SLACK: f64 = 0.25;

#[derive(Clone, Copy, PartialEq)]
enum Class {
    /// Deterministic count: must match exactly.
    Count,
    /// Wall-clock: fresh/baseline must stay ≤ tolerance; ISA-gated.
    Timing,
    /// Quality ratio: fresh must stay ≥ baseline − slack.
    LowerBound(f64),
}

struct Cmp {
    name: String,
    baseline: f64,
    fresh: f64,
    class: Class,
}

struct Report {
    failures: Vec<String>,
    notices: Vec<String>,
    compared: usize,
    skipped: usize,
}

impl Report {
    fn new() -> Self {
        Report {
            failures: Vec::new(),
            notices: Vec::new(),
            compared: 0,
            skipped: 0,
        }
    }
}

/// Why timing metrics cannot be compared on this build, if they can't.
fn timing_skip_reason(doc: &Value) -> Option<String> {
    if cfg!(debug_assertions) {
        return Some("unoptimized build (run with --release to compare timings)".into());
    }
    let host = kernel_backend::host_simd_isa();
    let compiled = kernel_backend::compiled_simd_isa();
    let bh = doc.get("host_simd_isa").and_then(Value::as_str);
    let bc = doc.get("compiled_simd_isa").and_then(Value::as_str);
    match (bh, bc) {
        (Some(h), Some(c)) if h == host && c == compiled => None,
        (Some(h), Some(c)) => Some(format!(
            "ISA mismatch: baseline {h}/{c}, this build {host}/{compiled}"
        )),
        _ => Some("baseline lacks host_simd_isa/compiled_simd_isa headers".into()),
    }
}

/// Diff one metric into the report.
fn judge(cmp: &Cmp, tolerance: f64, timing_skip: &Option<String>, report: &mut Report) {
    match cmp.class {
        Class::Count => {
            report.compared += 1;
            if (cmp.fresh - cmp.baseline).abs() > 1e-9 {
                report.failures.push(format!(
                    "{}: count drifted — baseline {}, fresh {}",
                    cmp.name, cmp.baseline, cmp.fresh
                ));
            }
        }
        Class::Timing => {
            if timing_skip.is_some() {
                report.skipped += 1;
                return;
            }
            report.compared += 1;
            let ratio = cmp.fresh / cmp.baseline.max(1e-12);
            if ratio > tolerance {
                report.failures.push(format!(
                    "{}: {:.2}x slower than baseline ({:.6} vs {:.6}, tolerance {:.2}x)",
                    cmp.name, ratio, cmp.fresh, cmp.baseline, tolerance
                ));
            }
        }
        Class::LowerBound(slack) => {
            report.compared += 1;
            if cmp.fresh < cmp.baseline - slack {
                report.failures.push(format!(
                    "{}: fell to {:.4}, baseline {:.4} (slack {:.2})",
                    cmp.name, cmp.fresh, cmp.baseline, slack
                ));
            }
        }
    }
}

fn get_f64(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("baseline missing numeric field {key:?}"))
}

fn get_bool(v: &Value, key: &str) -> Result<bool, String> {
    v.get(key)
        .and_then(Value::as_bool)
        .ok_or_else(|| format!("baseline missing boolean field {key:?}"))
}

fn load(dir: &str, file: &str) -> Result<Value, String> {
    let path = format!("{dir}/{file}");
    let text = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

// ---------------------------------------------------------------------------
// Fresh measurements — mirrors of the baseline benches' configurations.
// The configs here are the contract: they must stay in lockstep with
// benches/bench_gravity.rs, bench_hydro.rs and bench_scale.rs, or the
// count diffs go off against the wrong run.
// ---------------------------------------------------------------------------

struct DriverPoint {
    seconds: f64,
    hits: f64,
    misses: f64,
    mac_evals: f64,
    tasks_spawned: f64,
    fused_launches: f64,
    overlap_ratio: f64,
}

/// One gravity-bench driver run (bench_gravity::bench_config).
fn gravity_point(level: u32, steps: u32, cache: bool, host_tasks: usize) -> DriverPoint {
    let host_tasks = host_tasks.max(1);
    let mut driver = Driver::new(OctoConfig {
        max_level: level,
        stop_step: steps,
        threads: 2,
        use_interaction_cache: cache,
        monopole_host_tasks: host_tasks,
        multipole_host_tasks: host_tasks,
        hydro_host_tasks: host_tasks,
        ..OctoConfig::with_all_kernels(KernelType::KokkosSerial)
    });
    let m = driver.run(2);
    let agg = driver.aggregation_stats();
    DriverPoint {
        seconds: m.elapsed_seconds,
        hits: m.cache.hits as f64,
        misses: m.cache.misses as f64,
        mac_evals: m.work.mac_evals as f64,
        tasks_spawned: m.runtime_stats.tasks_spawned as f64,
        fused_launches: agg.fused_launches as f64,
        overlap_ratio: m.overlap_ratio,
    }
}

/// One hydro-bench step-mode run (bench_hydro::bench_config, 3 workers).
fn hydro_point(level: u32, steps: u32, futurize: bool, host_tasks: usize) -> DriverPoint {
    let host_tasks = host_tasks.max(1);
    let mut cfg = OctoConfig {
        max_level: level,
        stop_step: steps,
        threads: 3,
        monopole_host_tasks: host_tasks,
        multipole_host_tasks: host_tasks,
        hydro_host_tasks: host_tasks,
        ..OctoConfig::with_all_kernels(KernelType::KokkosSerial)
    };
    cfg.futurize = futurize;
    cfg.simd_width = 4;
    let mut driver = Driver::new(cfg);
    let m = driver.run(3);
    let agg = driver.aggregation_stats();
    DriverPoint {
        seconds: m.elapsed_seconds,
        hits: 0.0,
        misses: 0.0,
        mac_evals: 0.0,
        tasks_spawned: m.runtime_stats.tasks_spawned as f64,
        fused_launches: agg.fused_launches as f64,
        overlap_ratio: m.overlap_ratio,
    }
}

struct ScalePoint {
    seconds: f64,
    leaves: f64,
    cells: f64,
    partial_rebuilds: f64,
    leaves_rebuilt: f64,
    leaves_retained: f64,
}

/// One scale-bench level run (bench_scale::time_scale): `steps` driver
/// steps with the deterministic mid-run regrid sweep after the first.
fn scale_point(level: u32, steps: u32, threads: usize) -> ScalePoint {
    let mut d = Driver::new(OctoConfig {
        max_level: level,
        stop_step: steps,
        threads,
        monopole_host_tasks: 16,
        multipole_host_tasks: 16,
        hydro_host_tasks: 16,
        regrid_host_tasks: 16,
        ..OctoConfig::with_all_kernels(KernelType::KokkosSerial)
    });
    let rt = Runtime::new(threads);
    let victims = if level >= 5 { 4 } else { 2 };
    let mut cold = octotiger::gravity::CacheStats::default();
    let start = Instant::now();
    for s in 0..steps {
        d.step(&rt);
        if s == 0 {
            cold = d.cache_stats();
            let tree = d.tree();
            let deepest: Vec<usize> = tree
                .leaf_ids()
                .iter()
                .filter(|&&l| tree.node(l).level == tree.max_level())
                .copied()
                .collect();
            let stride = (deepest.len() / (victims + 1).max(1)).max(1);
            let picks: Vec<usize> = deepest
                .iter()
                .skip(stride / 2)
                .step_by(stride)
                .take(victims)
                .copied()
                .collect();
            d.regrid(&rt, &picks);
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    let cs = d.cache_stats();
    ScalePoint {
        seconds,
        leaves: d.tree().leaf_count() as f64,
        cells: d.tree().cell_count() as f64,
        partial_rebuilds: (cs.partial_rebuilds - cold.partial_rebuilds) as f64,
        leaves_rebuilt: (cs.leaves_rebuilt - cold.leaves_rebuilt) as f64,
        leaves_retained: (cs.leaves_retained - cold.leaves_retained) as f64,
    }
}

// ---------------------------------------------------------------------------
// Per-baseline diffs
// ---------------------------------------------------------------------------

fn diff_gravity(doc: &Value, tolerance: f64, report: &mut Report) -> Result<(), String> {
    let timing_skip = timing_skip_reason(doc);
    if let Some(why) = &timing_skip {
        report
            .notices
            .push(format!("gravity: timing metrics skipped — {why}"));
    }
    report.notices.push(
        "gravity: kernel sweep timings are gated by the full bench_gravity run, not here".into(),
    );
    let level = get_f64(doc, "tree_level")? as u32;
    let steps = get_f64(doc, "steps")? as u32;
    let runs = doc
        .get("driver_runs")
        .and_then(Value::as_arr)
        .ok_or("baseline missing driver_runs")?;
    for row in runs {
        let cache = get_bool(row, "interaction_cache")?;
        let host_tasks = get_f64(row, "host_tasks")? as usize;
        let tag = format!("gravity/driver(cache={cache},host_tasks={host_tasks})");
        let fresh = gravity_point(level, steps, cache, host_tasks);
        let metrics = [
            ("hits", fresh.hits, Class::Count),
            ("misses", fresh.misses, Class::Count),
            ("mac_evals", fresh.mac_evals, Class::Count),
            ("tasks_spawned", fresh.tasks_spawned, Class::Count),
            ("fused_launches", fresh.fused_launches, Class::Count),
            ("seconds", fresh.seconds, Class::Timing),
        ];
        for (key, value, class) in metrics {
            let cmp = Cmp {
                name: format!("{tag}/{key}"),
                baseline: get_f64(row, key)?,
                fresh: value,
                class,
            };
            judge(&cmp, tolerance, &timing_skip, report);
        }
    }
    Ok(())
}

fn diff_hydro(doc: &Value, tolerance: f64, report: &mut Report) -> Result<(), String> {
    let timing_skip = timing_skip_reason(doc);
    if let Some(why) = &timing_skip {
        report
            .notices
            .push(format!("hydro: timing metrics skipped — {why}"));
    }
    report
        .notices
        .push("hydro: kernel sweep timings are gated by the full bench_hydro run, not here".into());
    let level = get_f64(doc, "tree_level")? as u32;
    let steps = get_f64(doc, "steps")? as u32;
    let modes = doc
        .get("step_modes")
        .and_then(Value::as_arr)
        .ok_or("baseline missing step_modes")?;
    for row in modes {
        let futurize = get_bool(row, "futurize")?;
        let host_tasks = get_f64(row, "host_tasks")? as usize;
        let tag = format!("hydro/step(futurize={futurize},host_tasks={host_tasks})");
        let fresh = hydro_point(level, steps, futurize, host_tasks);
        let metrics = [
            ("tasks_spawned", fresh.tasks_spawned, Class::Count),
            ("fused_launches", fresh.fused_launches, Class::Count),
            (
                "overlap_ratio",
                fresh.overlap_ratio,
                Class::LowerBound(OVERLAP_SLACK),
            ),
            ("seconds", fresh.seconds, Class::Timing),
        ];
        for (key, value, class) in metrics {
            let cmp = Cmp {
                name: format!("{tag}/{key}"),
                baseline: get_f64(row, key)?,
                fresh: value,
                class,
            };
            judge(&cmp, tolerance, &timing_skip, report);
        }
    }
    Ok(())
}

fn diff_scale(doc: &Value, tolerance: f64, smoke: bool, report: &mut Report) -> Result<(), String> {
    let timing_skip = timing_skip_reason(doc);
    if let Some(why) = &timing_skip {
        report
            .notices
            .push(format!("scale: timing metrics skipped — {why}"));
    }
    let threads = get_f64(doc, "threads")? as usize;
    let levels = doc
        .get("levels")
        .and_then(Value::as_arr)
        .ok_or("baseline missing levels")?;
    for row in levels {
        let level = get_f64(row, "level")? as u32;
        let steps = get_f64(row, "steps")? as u32;
        if smoke && level > 2 {
            report.notices.push(format!(
                "scale: level {level} skipped (BENCH_SMOKE=1 — deep levels take minutes)"
            ));
            report.skipped += 1;
            continue;
        }
        let tag = format!("scale/level{level}");
        let fresh = scale_point(level, steps, threads.max(1));
        let metrics = [
            ("leaves", fresh.leaves, Class::Count),
            ("cells", fresh.cells, Class::Count),
            ("partial_rebuilds", fresh.partial_rebuilds, Class::Count),
            ("leaves_rebuilt", fresh.leaves_rebuilt, Class::Count),
            ("leaves_retained", fresh.leaves_retained, Class::Count),
            ("seconds", fresh.seconds, Class::Timing),
        ];
        for (key, value, class) in metrics {
            let cmp = Cmp {
                name: format!("{tag}/{key}"),
                baseline: get_f64(row, key)?,
                fresh: value,
                class,
            };
            judge(&cmp, tolerance, &timing_skip, report);
        }
    }
    Ok(())
}

/// Internal-consistency check on the committed trace-overhead datapoint.
fn diff_trace_overhead(doc: &Value, report: &mut Report) -> Result<(), String> {
    let overhead = get_f64(doc, "overhead_pct")?;
    let budget = get_f64(doc, "budget_pct")?;
    let allocs = get_f64(doc, "disabled_tracer_allocs")?;
    let events = get_f64(doc, "events_recorded")?;
    report.compared += 3;
    if overhead > budget {
        report.failures.push(format!(
            "trace_overhead: committed overhead {overhead:.2}% exceeds budget {budget:.2}%"
        ));
    }
    if allocs != 0.0 {
        report.failures.push(format!(
            "trace_overhead: committed disabled_tracer_allocs = {allocs} (must be 0)"
        ));
    }
    // Sampler fields are newer than the bench itself: tolerate their
    // absence in a pre-sampler baseline.
    if let Some(sampler) = doc.get("sampler_overhead_pct").and_then(Value::as_f64) {
        report.compared += 1;
        if sampler > budget {
            report.failures.push(format!(
                "trace_overhead: committed sampler increment {sampler:.2}% exceeds budget {budget:.2}%"
            ));
        }
    }
    if events <= 0.0 {
        report
            .failures
            .push("trace_overhead: committed events_recorded is zero".into());
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Self-test — exercises the comparison logic with no benchmark runs.
// ---------------------------------------------------------------------------

fn self_test(tolerance: f64) -> Result<(), String> {
    let baseline = [
        ("t/seconds", 0.35, Class::Timing),
        ("t/ns_per_sweep", 44_777_696.0, Class::Timing),
        ("t/hits", 3.0, Class::Count),
        ("t/overlap", 0.94, Class::LowerBound(OVERLAP_SLACK)),
    ];
    let no_skip: Option<String> = None;

    // Identity diff must pass.
    let mut clean = Report::new();
    for (name, v, class) in baseline {
        let cmp = Cmp {
            name: name.into(),
            baseline: v,
            fresh: v,
            class,
        };
        judge(&cmp, tolerance, &no_skip, &mut clean);
    }
    if !clean.failures.is_empty() {
        return Err(format!(
            "identity diff produced failures: {:?}",
            clean.failures
        ));
    }

    // A 2× slowdown on every timing metric must be flagged.
    let mut slow = Report::new();
    for (name, v, class) in baseline {
        let fresh = if class == Class::Timing { v * 2.0 } else { v };
        let cmp = Cmp {
            name: name.into(),
            baseline: v,
            fresh,
            class,
        };
        judge(&cmp, tolerance, &no_skip, &mut slow);
    }
    if slow.failures.len() != 2 {
        return Err(format!(
            "2x slowdown should flag both timing metrics, flagged {}: {:?}",
            slow.failures.len(),
            slow.failures
        ));
    }

    // Count drift and overlap collapse must be flagged even when timings
    // are skipped for ISA mismatch.
    let skip: Option<String> = Some("ISA mismatch (self-test)".into());
    let mut drift = Report::new();
    for (name, v, class) in baseline {
        let fresh = match class {
            Class::Count => v + 1.0,
            Class::LowerBound(_) => v - 0.5,
            Class::Timing => v * 10.0,
        };
        let cmp = Cmp {
            name: name.into(),
            baseline: v,
            fresh,
            class,
        };
        judge(&cmp, tolerance, &skip, &mut drift);
    }
    if drift.failures.len() != 2 || drift.skipped != 2 {
        return Err(format!(
            "ISA-skipped diff should flag count+overlap and skip 2 timings, \
             got {} failures / {} skipped: {:?}",
            drift.failures.len(),
            drift.skipped,
            drift.failures
        ));
    }
    println!("bench_diff --self-test: OK (identity passes, 2x slowdown flagged, ISA skip honored)");
    Ok(())
}

// ---------------------------------------------------------------------------

fn usage() -> String {
    "usage: bench_diff [--self-test] [--tolerance=X] [--baseline-dir=DIR] \
     [gravity|hydro|scale|trace_overhead]...\n\
     default: diff all four committed baselines; BENCH_SMOKE=1 limits the \
     scale re-run to level 2"
        .into()
}

fn run() -> Result<bool, String> {
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut baseline_dir: String = concat!(env!("CARGO_MANIFEST_DIR"), "/../..").into();
    let mut want_self_test = false;
    let mut benches: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--self-test" {
            want_self_test = true;
        } else if let Some(v) = arg.strip_prefix("--tolerance=") {
            tolerance = v.parse().map_err(|e| format!("--tolerance={v}: {e}"))?;
            if tolerance <= 1.0 {
                return Err("--tolerance must be > 1.0".into());
            }
        } else if let Some(v) = arg.strip_prefix("--baseline-dir=") {
            baseline_dir = v.into();
        } else if ["gravity", "hydro", "scale", "trace_overhead"].contains(&arg.as_str()) {
            benches.push(arg);
        } else {
            return Err(usage());
        }
    }
    if want_self_test {
        self_test(tolerance)?;
        if benches.is_empty() {
            return Ok(true);
        }
    }
    if benches.is_empty() {
        benches = vec![
            "gravity".into(),
            "hydro".into(),
            "scale".into(),
            "trace_overhead".into(),
        ];
    }
    let smoke = std::env::var("BENCH_SMOKE").is_ok_and(|v| v == "1");

    let mut report = Report::new();
    for bench in &benches {
        match bench.as_str() {
            "gravity" => diff_gravity(
                &load(&baseline_dir, "BENCH_gravity.json")?,
                tolerance,
                &mut report,
            )?,
            "hydro" => diff_hydro(
                &load(&baseline_dir, "BENCH_hydro.json")?,
                tolerance,
                &mut report,
            )?,
            "scale" => diff_scale(
                &load(&baseline_dir, "BENCH_scale.json")?,
                tolerance,
                smoke,
                &mut report,
            )?,
            "trace_overhead" => diff_trace_overhead(
                &load(&baseline_dir, "BENCH_trace_overhead.json")?,
                &mut report,
            )?,
            _ => unreachable!("benches vetted during argument parsing"),
        }
    }

    for n in &report.notices {
        println!("bench_diff: notice: {n}");
    }
    for f in &report.failures {
        println!("bench_diff: FAIL: {f}");
    }
    println!(
        "bench_diff: {} metrics compared, {} skipped, {} regressions",
        report.compared,
        report.skipped,
        report.failures.len()
    );
    Ok(report.failures.is_empty())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("bench_diff: error: {e}");
            ExitCode::from(2)
        }
    }
}
