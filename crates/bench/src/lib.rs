//! # repro-bench — the benchmark harness
//!
//! One Criterion bench per subsystem plus `bench_figures`, which regenerates
//! every table and figure of the paper (the `cargo bench` entry point the
//! reproduction brief asks for). Helpers shared by the benches live here.

use amt::Runtime;
use octotiger::{Driver, KernelType, OctoConfig};

/// A small rotating-star driver for kernel benches (level 1, one step).
pub fn tiny_driver(kernel: KernelType) -> Driver {
    Driver::new(OctoConfig {
        max_level: 1,
        stop_step: 1,
        ..OctoConfig::with_all_kernels(kernel)
    })
}

/// A runtime sized for this host.
pub fn bench_runtime() -> Runtime {
    Runtime::new(std::thread::available_parallelism().map_or(2, |n| n.get().clamp(2, 4)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_construct() {
        let rt = bench_runtime();
        assert!(rt.num_threads() >= 2);
        let d = tiny_driver(KernelType::KokkosSerial);
        assert!(d.tree().leaf_count() >= 8);
    }
}
