//! Criterion bench for the `amt` runtime: task spawn/sync throughput,
//! parallel algorithms, senders & receivers, coroutine resumes, and the
//! thread-count ablation DESIGN.md calls out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use amt::par::{self, ExecutionPolicy};
use amt::sr::{schedule, sync_wait, Sender};
use amt::{coro, when_all, Runtime};
use repro_bench::bench_runtime;

fn spawn_throughput(c: &mut Criterion) {
    let rt = bench_runtime();
    let h = rt.handle();
    let mut g = c.benchmark_group("amt-spawn");
    g.sample_size(10);
    for &count in &[64usize, 512] {
        g.bench_with_input(BenchmarkId::new("spawn_get", count), &count, |b, &n| {
            b.iter(|| {
                let futures: Vec<_> = (0..n).map(|i| h.spawn(move || black_box(i * 2))).collect();
                black_box(when_all(futures).get())
            })
        });
    }
    g.finish();
}

fn parallel_algorithms(c: &mut Criterion) {
    let rt = bench_runtime();
    let h = rt.handle();
    let data: Vec<f64> = (0..100_000).map(|i| i as f64).collect();
    let mut g = c.benchmark_group("amt-par");
    g.sample_size(10);
    g.bench_function("transform_reduce_par", |b| {
        b.iter(|| {
            black_box(par::transform_reduce(
                &h,
                ExecutionPolicy::Par,
                0..data.len(),
                0.0,
                |i| data[i] * 0.5,
                |a, b| a + b,
            ))
        })
    });
    g.bench_function("transform_reduce_seq", |b| {
        b.iter(|| {
            black_box(par::transform_reduce(
                &h,
                ExecutionPolicy::Seq,
                0..data.len(),
                0.0,
                |i| data[i] * 0.5,
                |a, b| a + b,
            ))
        })
    });
    g.finish();
}

fn senders_and_coroutines(c: &mut Criterion) {
    let rt = bench_runtime();
    let h = rt.handle();
    let mut g = c.benchmark_group("amt-styles");
    g.sample_size(10);
    g.bench_function("senders_pipeline", |b| {
        b.iter(|| {
            black_box(sync_wait(
                schedule(&h).then(|_| 1).then(|x| x + 1).then(|x| x * 2),
            ))
        })
    });
    g.bench_function("coroutine_resumes", |b| {
        b.iter(|| {
            let co = coro::ChunkedFold::new(0..4096, 256, 0u64, |acc, i| acc + i as u64);
            black_box(coro::spawn_coroutine(&h, co).get())
        })
    });
    g.finish();
}

/// Ablation (DESIGN.md §6): the same reduction across worker counts.
fn ablation_sched(c: &mut Criterion) {
    let mut g = c.benchmark_group("amt-ablation-sched");
    g.sample_size(10);
    for threads in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("reduce_threads", threads),
            &threads,
            |b, &t| {
                let rt = Runtime::new(t);
                let h = rt.handle();
                b.iter(|| {
                    black_box(par::transform_reduce(
                        &h,
                        ExecutionPolicy::Par,
                        1..200_000,
                        0.0,
                        |i| 1.0 / i as f64,
                        |a, b| a + b,
                    ))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    spawn_throughput,
    parallel_algorithms,
    senders_and_coroutines,
    ablation_sched
);
criterion_main!(benches);
