//! Criterion bench for the distributed substrate: wire encode/decode, local
//! vs remote action round trips, the parcel-coalescing ablation, and the
//! ghost-payload throughput behind Fig. 8's parcel traffic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use distrib::{from_bytes, to_bytes, Cluster, ClusterConfig, CoalesceConfig, LocalityHandle};
use rv_machine::NetBackend;
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize)]
struct Halo {
    pos: u64,
    data: Vec<f64>,
}

fn wire_codec(c: &mut Criterion) {
    let halo = Halo {
        pos: 42,
        data: (0..2560).map(|i| i as f64 * 0.5).collect(),
    };
    let encoded = to_bytes(&halo).unwrap();
    let mut g = c.benchmark_group("distrib-wire");
    g.sample_size(20);
    g.bench_function("encode_halo_20kB", |b| {
        b.iter(|| black_box(to_bytes(black_box(&halo)).unwrap()))
    });
    g.bench_function("decode_halo_20kB", |b| {
        b.iter(|| black_box(from_bytes::<Halo>(black_box(&encoded)).unwrap()))
    });
    g.finish();
}

fn actions(c: &mut Criterion) {
    let cluster = Cluster::new(ClusterConfig {
        localities: 2,
        threads_per_locality: 2,
        backend: NetBackend::Tcp,
        coalesce: CoalesceConfig::default(),
    });
    cluster.register_action("echo", |_: &LocalityHandle, _, v: Vec<f64>| v);
    let l0 = cluster.locality(0);
    let l1 = cluster.locality(1);
    let local_gid = l0.new_component(());
    let remote_gid = l1.new_component(());
    let payload: Vec<f64> = (0..512).map(|i| i as f64).collect();

    let mut g = c.benchmark_group("distrib-actions");
    g.sample_size(10);
    g.bench_with_input(
        BenchmarkId::new("invoke", "local"),
        &local_gid,
        |b, &gid| {
            b.iter(|| {
                let r: Vec<f64> = l0.invoke(gid, "echo", &payload).get();
                black_box(r)
            })
        },
    );
    g.bench_with_input(
        BenchmarkId::new("invoke", "remote"),
        &remote_gid,
        |b, &gid| {
            b.iter(|| {
                let r: Vec<f64> = l0.invoke(gid, "echo", &payload).get();
                black_box(r)
            })
        },
    );
    g.finish();
}

/// The coalescing ablation: a burst of small remote invocations with the
/// batching layer off vs on. Prints the resulting port counters once per
/// variant so the frame reduction is visible next to the timing.
fn ablation_coalesce(c: &mut Criterion) {
    let mut g = c.benchmark_group("distrib-coalesce");
    g.sample_size(10);
    for (label, coalesce) in [
        ("off", CoalesceConfig::default()),
        ("on", CoalesceConfig::enabled()),
    ] {
        let cluster = Cluster::new(ClusterConfig {
            localities: 2,
            threads_per_locality: 2,
            backend: NetBackend::Tcp,
            coalesce,
        });
        cluster.register_action("bump", |_: &LocalityHandle, _, x: u64| x + 1);
        let l0 = cluster.locality(0);
        let gid = cluster.locality(1).new_component(());
        g.bench_function(BenchmarkId::new("burst64", label), |b| {
            b.iter(|| {
                let futs: Vec<amt::Future<u64>> =
                    (0..64u64).map(|i| l0.invoke(gid, "bump", &i)).collect();
                black_box(amt::when_all(futs).get())
            })
        });
        cluster.flush_network();
        let p = cluster.port_stats();
        println!(
            "coalesce={label}: frames={} parcels={} batches={} queue_hwm={}",
            p.messages, p.parcels, p.batches, p.queue_depth_hwm
        );
    }
    g.finish();
}

criterion_group!(benches, wire_codec, actions, ablation_coalesce);
criterion_main!(benches);
