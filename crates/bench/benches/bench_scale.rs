//! Deep-tree scale bench — the BENCH_scale.json datapoint (cells/sec ×
//! depth) and the CI gate for the incremental interaction-list cache.
//!
//! For each tree depth it times a short rotating-star run with one mid-run
//! regrid sweep landing between the steps, and reports
//!
//! * throughput — the paper's Fig. 7 cells/sec metric swept over depth,
//!   next to work throughput (flops/sec) and the measured interactions per
//!   cell. Raw cells/sec *must* fall with depth (the per-target-leaf
//!   traversal accretes ~O(depth) far entries per leaf — the physics bill);
//!   the gated invariant is that flops/sec stays within 2× across depth,
//!   i.e. the machine itself does not fall off a cliff on deep trees;
//! * peak RSS (`rv_machine::memory::peak_rss_bytes`) next to the arena
//!   bytes, the §6.2.1 memory-pressure axis;
//! * the cache-retention ratio of the mid-run sweep: with subtree-scoped
//!   invalidation only the split's neighbour cone re-traverses, so the
//!   rebuild ratio must stay **< 25 %** of the leaves (gate asserted here).
//!
//! `BENCH_SMOKE=1` runs the level-4 gate only (CI): the rebuild-ratio
//! assertion still fires, no JSON is written.

use std::time::Instant;

use amt::Runtime;
use octotiger::kernel_backend::KernelType;
use octotiger::{Driver, OctoConfig};

struct ScalePoint {
    level: u32,
    steps: u32,
    leaves: usize,
    cells: usize,
    seconds: f64,
    cells_per_second: f64,
    /// Throughput of the steps *after* the first — the first step pays the
    /// cold interaction-list build and hosts the regrid sweep, so this is
    /// the steady-state number the depth gate compares (a rebuild storm
    /// after the sweep would land squarely in it).
    steady_cells_per_second: f64,
    /// Steady-state work throughput (driver flop estimate / second). Raw
    /// cells/sec falls with depth because the *work per cell* grows — the
    /// per-target-leaf traversal accretes ~O(depth) far entries per leaf
    /// (measured below as `interactions_per_cell`). Flops/sec factors that
    /// out: it must stay flat across depth, or the machine itself is
    /// falling off a cliff (rebuild storm, cache thrash, allocator churn).
    steady_flops_per_second: f64,
    /// Measured (near + far) block interactions per cell per steady step —
    /// the intrinsic depth cost the raw cells/sec divides by.
    interactions_per_cell: f64,
    peak_rss_bytes: u64,
    arena_bytes: u64,
    partial_rebuilds: u64,
    leaves_rebuilt: u64,
    leaves_retained: u64,
}

impl ScalePoint {
    /// Fraction of leaves the mid-run sweeps re-traversed (0 when no
    /// partial rebuild ran).
    fn rebuild_ratio(&self) -> f64 {
        let visited = self.leaves_rebuilt + self.leaves_retained;
        if visited == 0 {
            0.0
        } else {
            self.leaves_rebuilt as f64 / visited as f64
        }
    }
}

fn scale_config(level: u32, threads: usize) -> OctoConfig {
    OctoConfig {
        max_level: level,
        stop_step: 3,
        threads,
        // Deep trees are exactly where per-leaf launches drown in overhead:
        // run the batched path, as the upstream max_kernels_fused runs do.
        monopole_host_tasks: 16,
        multipole_host_tasks: 16,
        hydro_host_tasks: 16,
        regrid_host_tasks: 16,
        ..OctoConfig::with_all_kernels(KernelType::KokkosSerial)
    }
}

/// Pick a spread of refinement victims among the *deepest* leaves: a deep
/// leaf's neighbour cone is a fixed ball of same-level cells, while a
/// coarse leaf bordering the refined region sits in the near list of every
/// fine leaf around it (and can cascade through grading). Deterministic —
/// the committed series must be reproducible.
fn pick_victims(d: &Driver, n: usize) -> Vec<usize> {
    let tree = d.tree();
    let deepest: Vec<usize> = tree
        .leaf_ids()
        .iter()
        .filter(|&&l| tree.node(l).level == tree.max_level())
        .copied()
        .collect();
    let stride = (deepest.len() / (n + 1).max(1)).max(1);
    deepest
        .iter()
        .skip(stride / 2)
        .step_by(stride)
        .take(n)
        .copied()
        .collect()
}

/// One timed run at `level`: `steps` driver steps with a regrid sweep after
/// the first (so the cache is warm when the topology changes — the
/// incremental path, not the cold build, is what's measured).
fn time_scale(level: u32, steps: u32, threads: usize) -> ScalePoint {
    let mut cfg = scale_config(level, threads);
    cfg.stop_step = steps;
    let mut d = Driver::new(cfg);
    let rt = Runtime::new(threads);
    // A deep sweep splits few victims (cones don't scale with tree size);
    // a level-4 tree is small enough that even fixed-size cones are a
    // noticeable fraction, so fewer victims there.
    let victims = if level >= 5 { 4 } else { 2 };
    let mut cells: u64 = 0;
    let mut steady_cells: u64 = 0;
    let mut steady_seconds = 0.0f64;
    let mut steady_flops: u64 = 0;
    let mut steady_inter: u64 = 0;
    let mut cold = octotiger::gravity::CacheStats::default();
    let start = Instant::now();
    for s in 0..steps {
        let w0 = d.work();
        let t0 = Instant::now();
        d.step(&rt);
        let dt = t0.elapsed().as_secs_f64();
        cells += d.tree().cell_count() as u64;
        if s == 0 {
            // Snapshot before the sweep: the cold build counts every leaf
            // as rebuilt, the sweep's effect is the delta past it.
            cold = d.cache_stats();
            let picks = pick_victims(&d, victims);
            d.regrid(&rt, &picks);
        } else {
            let w1 = d.work();
            steady_cells += d.tree().cell_count() as u64;
            steady_seconds += dt;
            steady_flops += w1.flops() - w0.flops();
            steady_inter += (w1.far_interactions - w0.far_interactions)
                + (w1.near_interactions - w0.near_interactions);
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    rv_machine::memory::note_arena_bytes(d.tree().resident_bytes());
    let cs = d.cache_stats();
    ScalePoint {
        level,
        steps,
        leaves: d.tree().leaf_count(),
        cells: d.tree().cell_count(),
        seconds,
        cells_per_second: cells as f64 / seconds.max(1e-12),
        steady_cells_per_second: steady_cells as f64 / steady_seconds.max(1e-12),
        steady_flops_per_second: steady_flops as f64 / steady_seconds.max(1e-12),
        interactions_per_cell: steady_inter as f64 / (steady_cells as f64).max(1.0),
        peak_rss_bytes: rv_machine::memory::peak_rss_bytes(),
        arena_bytes: d.tree().resident_bytes(),
        partial_rebuilds: cs.partial_rebuilds - cold.partial_rebuilds,
        leaves_rebuilt: cs.leaves_rebuilt - cold.leaves_rebuilt,
        leaves_retained: cs.leaves_retained - cold.leaves_retained,
    }
}

fn print_point(p: &ScalePoint) {
    println!(
        "scale/level{}: {} leaves, {:.3e} cells/s ({:.3e} steady, \
         {:.3e} flops/s, {:.0} inter/cell), peak_rss {:.1} MiB, \
         arena {:.1} MiB, partial_rebuilds {} rebuilt {} retained {} \
         (rebuild ratio {:.1}%)",
        p.level,
        p.leaves,
        p.cells_per_second,
        p.steady_cells_per_second,
        p.steady_flops_per_second,
        p.interactions_per_cell,
        p.peak_rss_bytes as f64 / (1024.0 * 1024.0),
        p.arena_bytes as f64 / (1024.0 * 1024.0),
        p.partial_rebuilds,
        p.leaves_rebuilt,
        p.leaves_retained,
        p.rebuild_ratio() * 100.0
    );
}

/// The CI gate: the mid-run sweep must take the incremental path and
/// re-traverse < 25 % of the leaves.
fn assert_gate(p: &ScalePoint) {
    assert!(
        p.partial_rebuilds >= 1,
        "level {}: mid-run regrid did not take the incremental path",
        p.level
    );
    let ratio = p.rebuild_ratio();
    assert!(
        ratio < 0.25,
        "level {}: mid-run regrid rebuilt {:.1}% of interaction lists \
         (gate: < 25%) — rebuilt {} retained {}",
        p.level,
        ratio * 100.0,
        p.leaves_rebuilt,
        p.leaves_retained
    );
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok_and(|v| v == "1");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(2);

    if smoke {
        // Level 4 is the paper's production depth and deep enough that a
        // 4-victim sweep's neighbour cones are a small minority.
        let p = time_scale(4, 2, threads);
        print_point(&p);
        assert_gate(&p);
        println!("BENCH_SMOKE=1: rebuild-ratio gate OK, skipping BENCH_scale.json write");
        return;
    }

    let points: Vec<ScalePoint> = [(2u32, 3u32), (4, 3), (5, 2)]
        .iter()
        .map(|&(level, steps)| time_scale(level, steps, threads))
        .collect();
    for p in &points {
        print_point(p);
    }
    for p in points.iter().filter(|p| p.level >= 4) {
        assert_gate(p);
    }
    let l2 = &points[0];
    let l5 = points.last().expect("three depths");
    // Two depth numbers, one gated. Raw cells/sec falls with depth because
    // the work per cell grows — the per-target-leaf traversal accretes
    // ~O(depth) far-list entries (interactions_per_cell column: measured
    // ~13× more block interactions per cell at level 5 than level 2), which
    // is the tree-code physics bill, not a software cliff. The gated number
    // is steady-state *work* throughput (flops/sec): a rebuild storm, cache
    // thrash, or allocator churn at depth would sink it, intrinsic list
    // growth does not. Cold list build + the sweep live in step 0 and are
    // excluded from both (one-time costs).
    let cells_ratio = l2.steady_cells_per_second / l5.steady_cells_per_second;
    let depth_ratio = l2.steady_flops_per_second / l5.steady_flops_per_second;
    println!(
        "scale/depth-penalty: level-5 runs {:.2}x below level-2 in raw \
         cells/sec ({:.0}x the interactions per cell) and {:.2}x in \
         flops/sec (gate: < 2x)",
        cells_ratio,
        l5.interactions_per_cell / l2.interactions_per_cell.max(1e-12),
        depth_ratio
    );
    assert!(
        depth_ratio < 2.0,
        "level-5 work throughput fell more than 2x below level-2: \
         {depth_ratio:.2}x — the machine, not the physics, is slowing down"
    );

    let point_json: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"level\": {}, \"steps\": {}, \"leaves\": {}, \"cells\": {}, \
                 \"seconds\": {:.6}, \"cells_per_second\": {:.1}, \
                 \"steady_cells_per_second\": {:.1}, \
                 \"steady_flops_per_second\": {:.1}, \
                 \"interactions_per_cell\": {:.1}, \
                 \"peak_rss_bytes\": {}, \"arena_bytes\": {}, \
                 \"partial_rebuilds\": {}, \"leaves_rebuilt\": {}, \
                 \"leaves_retained\": {}, \"rebuild_ratio\": {:.4}}}",
                p.level,
                p.steps,
                p.leaves,
                p.cells,
                p.seconds,
                p.cells_per_second,
                p.steady_cells_per_second,
                p.steady_flops_per_second,
                p.interactions_per_cell,
                p.peak_rss_bytes,
                p.arena_bytes,
                p.partial_rebuilds,
                p.leaves_rebuilt,
                p.leaves_retained,
                p.rebuild_ratio()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"scale\",\n  \"host_simd_isa\": \"{}\",\n  \
         \"compiled_simd_isa\": \"{}\",\n  \"threads\": {threads},\n  \
         \"depth_penalty_l5_vs_l2_cells\": {cells_ratio:.3},\n  \
         \"depth_penalty_l5_vs_l2_flops\": {depth_ratio:.3},\n  \"levels\": [\n{}\n  ]\n}}\n",
        octotiger::kernel_backend::host_simd_isa(),
        octotiger::kernel_backend::compiled_simd_isa(),
        point_json.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    std::fs::write(path, json).expect("write BENCH_scale.json");
    println!("wrote {path}");
}
