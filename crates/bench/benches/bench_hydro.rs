//! Hydro SIMD + futurization bench — the BENCH_hydro.json datapoint.
//!
//! Two experiments:
//!
//! 1. Kernel sweep: one full hydro step (MUSCL reconstruction + HLL fluxes)
//!    over every leaf of the rotating-star tree, scalar reference vs the
//!    staged SoA SIMD path at every supported pack width. Legacy dispatch =
//!    inline serial execution, isolating the kernels from scheduling noise.
//! 2. Step pipeline: a short multi-worker driver run with the barriered
//!    four-phase step vs the futurized per-leaf task graph, reporting wall
//!    time and the measured gravity/hydro overlap ratio.
//!
//! Results go to stdout (criterion-style lines) and, on a full run, to
//! `BENCH_hydro.json` at the repo root so successive PRs accumulate a
//! baseline series.
//!
//! `BENCH_SMOKE=1` runs one short iteration for CI (no timing assertions,
//! no JSON write — smoke numbers must not clobber the committed baseline).

use std::time::Instant;

use octotiger::hydro;
use octotiger::kernel_backend::{Dispatch, KernelType, SimdPolicy};
use octotiger::recycle::RecyclePool;
use octotiger::subgrid::CELLS;
use octotiger::{Driver, OctoConfig};

struct KernelPoint {
    label: String,
    ns_per_sweep: f64,
}

struct StepPoint {
    futurize: bool,
    host_tasks: usize,
    seconds: f64,
    overlap_ratio: f64,
    tasks_spawned: u64,
    fused_launches: u64,
}

/// Worker count for the step-pipeline comparison. The paper's RISC-V runs
/// sweep 1..64 cores; CI boxes are small, so stay modest and deterministic.
const STEP_THREADS: usize = 3;

fn bench_config(level: u32, steps: u32, futurize: bool, host_tasks: usize) -> OctoConfig {
    let mut cfg = OctoConfig {
        max_level: level,
        stop_step: steps,
        threads: STEP_THREADS,
        monopole_host_tasks: host_tasks,
        multipole_host_tasks: host_tasks,
        hydro_host_tasks: host_tasks,
        ..OctoConfig::with_all_kernels(KernelType::KokkosSerial)
    };
    cfg.futurize = futurize;
    cfg.simd_width = 4;
    cfg
}

/// Work-aggregation batch size for the batched step-pipeline run; `1` is
/// the per-leaf baseline. `BENCH_HOST_TASKS` overrides (CI smoke pins two
/// sizes to exercise both paths).
fn batch_size() -> usize {
    std::env::var("BENCH_HOST_TASKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
}

/// Best (min) wall time of `iters` full-tree hydro sweeps per policy, with
/// the policies interleaved iteration-by-iteration (the `time_step_modes`
/// methodology): ambient drift hits every width equally instead of
/// penalizing whichever policy is timed last, and min filters OS
/// scheduling noise, so width-vs-width gaps reflect intrinsic kernel cost.
fn time_kernel_sweeps(driver: &Driver, policies: &[SimdPolicy], iters: u32) -> Vec<KernelPoint> {
    let tree = driver.tree();
    let d = Dispatch::Legacy;
    let state_pool = RecyclePool::new();
    let stage_pool = RecyclePool::new();
    let dt = 1.0e-4;
    let sweep = |policy: SimdPolicy| {
        for &leaf in tree.leaf_ids() {
            let out = match policy {
                SimdPolicy::Scalar => hydro::step_interior(tree.subgrid(leaf), dt, &d),
                SimdPolicy::Width(_) => hydro::step_interior_policy(
                    tree.subgrid(leaf),
                    dt,
                    &d,
                    policy,
                    &state_pool,
                    &stage_pool,
                ),
            };
            debug_assert_eq!(out.len(), CELLS);
            state_pool.release(std::hint::black_box(out));
        }
    };
    for &p in policies {
        sweep(p); // warm-up (also primes the pools)
    }
    let mut best = vec![f64::INFINITY; policies.len()];
    for _ in 0..iters {
        for (i, &p) in policies.iter().enumerate() {
            let start = Instant::now();
            sweep(p);
            best[i] = best[i].min(start.elapsed().as_nanos() as f64);
        }
    }
    policies
        .iter()
        .zip(best)
        .map(|(p, ns)| KernelPoint {
            label: p.label(),
            ns_per_sweep: ns,
        })
        .collect()
}

/// One multi-worker driver run; wall time + measured overlap + task counts.
fn run_step_mode(level: u32, steps: u32, futurize: bool, host_tasks: usize) -> StepPoint {
    let mut driver = Driver::new(bench_config(level, steps, futurize, host_tasks));
    let m = driver.run(STEP_THREADS);
    let agg = driver.aggregation_stats();
    StepPoint {
        futurize,
        host_tasks,
        seconds: m.elapsed_seconds,
        overlap_ratio: m.overlap_ratio,
        tasks_spawned: m.runtime_stats.tasks_spawned,
        fused_launches: agg.fused_launches,
    }
}

/// Best-of-`reps` for the three step modes (barriered, futurized per-leaf,
/// futurized batched), interleaved rep-by-rep so ambient drift (frequency
/// scaling, background load) hits all sides equally. Min (not mean) filters
/// OS scheduling noise, which dominates on small shared CI hosts — the
/// fastest run is the one closest to intrinsic cost.
fn time_step_modes(level: u32, steps: u32, reps: u32, batch: usize) -> [StepPoint; 3] {
    let modes = [(false, 1), (true, 1), (true, batch)];
    let mut best = modes.map(|(f, b)| run_step_mode(level, steps, f, b));
    for _ in 1..reps {
        for (slot, (futurize, host_tasks)) in modes.into_iter().enumerate() {
            let p = run_step_mode(level, steps, futurize, host_tasks);
            if p.seconds < best[slot].seconds {
                best[slot] = p;
            }
        }
    }
    best
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok_and(|v| v == "1");
    let (level, iters, steps, reps) = if smoke { (1, 1, 1, 1) } else { (2, 20, 10, 7) };

    let batch = batch_size();
    let driver = Driver::new(bench_config(level, steps, true, 1));
    let policies = [
        SimdPolicy::Scalar,
        SimdPolicy::Width(1),
        SimdPolicy::Width(2),
        SimdPolicy::Width(4),
        SimdPolicy::Width(8),
    ];
    let kernel_points = time_kernel_sweeps(&driver, &policies, iters);
    for p in &kernel_points {
        println!(
            "hydro-simd/muscl_hll_sweep/{}: min {:.2} µs",
            p.label,
            p.ns_per_sweep / 1e3
        );
    }
    let scalar_ns = kernel_points[0].ns_per_sweep;
    for p in &kernel_points[1..] {
        println!(
            "hydro-simd/speedup/{}: {:.2}x vs scalar",
            p.label,
            scalar_ns / p.ns_per_sweep
        );
    }

    let step_points = time_step_modes(level, steps, reps, batch);
    for p in &step_points {
        println!(
            "hydro-futurize/steps(futurize={},host_tasks={}): {:.2} ms, overlap_ratio {:.3}, \
             tasks_spawned {} fused_launches {}",
            p.futurize,
            p.host_tasks,
            p.seconds * 1e3,
            p.overlap_ratio,
            p.tasks_spawned,
            p.fused_launches
        );
    }
    println!(
        "hydro-futurize/speedup: {:.2}x vs barriered",
        step_points[0].seconds / step_points[1].seconds
    );
    println!(
        "hydro-aggregate/speedup(host_tasks={batch}): {:.2}x vs per-leaf futurized",
        step_points[1].seconds / step_points[2].seconds
    );

    if smoke {
        println!("BENCH_SMOKE=1: skipping BENCH_hydro.json write");
        return;
    }

    let kernel_json: Vec<String> = kernel_points
        .iter()
        .map(|p| {
            format!(
                "    {{\"policy\": \"{}\", \"ns_per_sweep\": {:.0}, \"speedup_vs_scalar\": {:.3}}}",
                p.label,
                p.ns_per_sweep,
                scalar_ns / p.ns_per_sweep
            )
        })
        .collect();
    let step_json: Vec<String> = step_points
        .iter()
        .map(|p| {
            format!(
                "    {{\"futurize\": {}, \"host_tasks\": {}, \"seconds\": {:.6}, \"overlap_ratio\": {:.4}, \"tasks_spawned\": {}, \"fused_launches\": {}}}",
                p.futurize, p.host_tasks, p.seconds, p.overlap_ratio, p.tasks_spawned, p.fused_launches
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"hydro\",\n  \"host_simd_isa\": \"{}\",\n  \"compiled_simd_isa\": \"{}\",\n  \"tree_level\": {level},\n  \"steps\": {steps},\n  \"sweep_iters\": {iters},\n  \"step_reps\": {reps},\n  \"threads\": {STEP_THREADS},\n  \"kernel_sweeps\": [\n{}\n  ],\n  \"step_modes\": [\n{}\n  ],\n  \"futurize_speedup\": {:.3},\n  \"aggregate_speedup\": {:.3}\n}}\n",
        octotiger::kernel_backend::host_simd_isa(),
        octotiger::kernel_backend::compiled_simd_isa(),
        kernel_json.join(",\n"),
        step_json.join(",\n"),
        step_points[0].seconds / step_points[1].seconds,
        step_points[1].seconds / step_points[2].seconds
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hydro.json");
    std::fs::write(path, json).expect("write BENCH_hydro.json");
    println!("wrote {path}");
}
