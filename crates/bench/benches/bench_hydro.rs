//! Hydro SIMD + futurization bench — the BENCH_hydro.json datapoint.
//!
//! Two experiments:
//!
//! 1. Kernel sweep: one full hydro step (MUSCL reconstruction + HLL fluxes)
//!    over every leaf of the rotating-star tree, scalar reference vs the
//!    staged SoA SIMD path at every supported pack width. Legacy dispatch =
//!    inline serial execution, isolating the kernels from scheduling noise.
//! 2. Step pipeline: a short multi-worker driver run with the barriered
//!    four-phase step vs the futurized per-leaf task graph, reporting wall
//!    time and the measured gravity/hydro overlap ratio.
//!
//! Results go to stdout (criterion-style lines) and, on a full run, to
//! `BENCH_hydro.json` at the repo root so successive PRs accumulate a
//! baseline series.
//!
//! `BENCH_SMOKE=1` runs one short iteration for CI (no timing assertions,
//! no JSON write — smoke numbers must not clobber the committed baseline).

use std::time::Instant;

use octotiger::hydro;
use octotiger::kernel_backend::{Dispatch, KernelType, SimdPolicy};
use octotiger::recycle::RecyclePool;
use octotiger::subgrid::CELLS;
use octotiger::{Driver, OctoConfig};

struct KernelPoint {
    label: String,
    ns_per_sweep: f64,
}

struct StepPoint {
    futurize: bool,
    seconds: f64,
    overlap_ratio: f64,
}

/// Worker count for the step-pipeline comparison. The paper's RISC-V runs
/// sweep 1..64 cores; CI boxes are small, so stay modest and deterministic.
const STEP_THREADS: usize = 3;

fn bench_config(level: u32, steps: u32, futurize: bool) -> OctoConfig {
    let mut cfg = OctoConfig {
        max_level: level,
        stop_step: steps,
        threads: STEP_THREADS,
        ..OctoConfig::with_all_kernels(KernelType::KokkosSerial)
    };
    cfg.futurize = futurize;
    cfg.simd_width = 4;
    cfg
}

/// Mean wall time of `iters` full-tree hydro sweeps under `policy`.
fn time_kernel_sweep(driver: &Driver, policy: SimdPolicy, iters: u32) -> KernelPoint {
    let tree = driver.tree();
    let d = Dispatch::Legacy;
    let state_pool = RecyclePool::new();
    let stage_pool = RecyclePool::new();
    let dt = 1.0e-4;
    let sweep = || {
        for &leaf in tree.leaf_ids() {
            let out = match policy {
                SimdPolicy::Scalar => hydro::step_interior(tree.subgrid(leaf), dt, &d),
                SimdPolicy::Width(_) => hydro::step_interior_policy(
                    tree.subgrid(leaf),
                    dt,
                    &d,
                    policy,
                    &state_pool,
                    &stage_pool,
                ),
            };
            debug_assert_eq!(out.len(), CELLS);
            state_pool.release(std::hint::black_box(out));
        }
    };
    sweep(); // warm-up (also primes the pools)
    let start = Instant::now();
    for _ in 0..iters {
        sweep();
    }
    let ns = start.elapsed().as_nanos() as f64 / f64::from(iters);
    KernelPoint {
        label: policy.label(),
        ns_per_sweep: ns,
    }
}

/// One multi-worker driver run; wall time + measured overlap.
fn run_step_mode(level: u32, steps: u32, futurize: bool) -> StepPoint {
    let mut driver = Driver::new(bench_config(level, steps, futurize));
    let m = driver.run(STEP_THREADS);
    StepPoint {
        futurize,
        seconds: m.elapsed_seconds,
        overlap_ratio: m.overlap_ratio,
    }
}

/// Best-of-`reps` for both step modes, interleaved rep-by-rep so ambient
/// drift (frequency scaling, background load) hits both sides equally. Min
/// (not mean) filters OS scheduling noise, which dominates on small shared
/// CI hosts — the fastest run is the one closest to intrinsic cost.
fn time_step_modes(level: u32, steps: u32, reps: u32) -> [StepPoint; 2] {
    let mut best = [
        run_step_mode(level, steps, false),
        run_step_mode(level, steps, true),
    ];
    for _ in 1..reps {
        for (slot, futurize) in [(0, false), (1, true)] {
            let p = run_step_mode(level, steps, futurize);
            if p.seconds < best[slot].seconds {
                best[slot] = p;
            }
        }
    }
    best
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok_and(|v| v == "1");
    let (level, iters, steps, reps) = if smoke { (1, 1, 1, 1) } else { (2, 20, 10, 7) };

    let driver = Driver::new(bench_config(level, steps, true));
    let policies = [
        SimdPolicy::Scalar,
        SimdPolicy::Width(1),
        SimdPolicy::Width(2),
        SimdPolicy::Width(4),
        SimdPolicy::Width(8),
    ];
    let mut kernel_points = Vec::new();
    for policy in policies {
        let p = time_kernel_sweep(&driver, policy, iters);
        println!(
            "hydro-simd/muscl_hll_sweep/{}: mean {:.2} µs",
            p.label,
            p.ns_per_sweep / 1e3
        );
        kernel_points.push(p);
    }
    let scalar_ns = kernel_points[0].ns_per_sweep;
    for p in &kernel_points[1..] {
        println!(
            "hydro-simd/speedup/{}: {:.2}x vs scalar",
            p.label,
            scalar_ns / p.ns_per_sweep
        );
    }

    let step_points = time_step_modes(level, steps, reps);
    for p in &step_points {
        println!(
            "hydro-futurize/steps(futurize={}): {:.2} ms, overlap_ratio {:.3}",
            p.futurize,
            p.seconds * 1e3,
            p.overlap_ratio
        );
    }
    println!(
        "hydro-futurize/speedup: {:.2}x vs barriered",
        step_points[0].seconds / step_points[1].seconds
    );

    if smoke {
        println!("BENCH_SMOKE=1: skipping BENCH_hydro.json write");
        return;
    }

    let kernel_json: Vec<String> = kernel_points
        .iter()
        .map(|p| {
            format!(
                "    {{\"policy\": \"{}\", \"ns_per_sweep\": {:.0}, \"speedup_vs_scalar\": {:.3}}}",
                p.label,
                p.ns_per_sweep,
                scalar_ns / p.ns_per_sweep
            )
        })
        .collect();
    let step_json: Vec<String> = step_points
        .iter()
        .map(|p| {
            format!(
                "    {{\"futurize\": {}, \"seconds\": {:.6}, \"overlap_ratio\": {:.4}}}",
                p.futurize, p.seconds, p.overlap_ratio
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"hydro\",\n  \"tree_level\": {level},\n  \"steps\": {steps},\n  \"sweep_iters\": {iters},\n  \"step_reps\": {reps},\n  \"threads\": {STEP_THREADS},\n  \"kernel_sweeps\": [\n{}\n  ],\n  \"step_modes\": [\n{}\n  ],\n  \"futurize_speedup\": {:.3}\n}}\n",
        kernel_json.join(",\n"),
        step_json.join(",\n"),
        step_points[0].seconds / step_points[1].seconds
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hydro.json");
    std::fs::write(path, json).expect("write BENCH_hydro.json");
    println!("wrote {path}");
}
