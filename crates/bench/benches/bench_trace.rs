//! Tracer overhead bench — the BENCH_trace_overhead.json datapoint.
//!
//! Times identical short rotating-star runs with the apex-lite tracer off,
//! on, and on with the 10 ms counter sampler running (recording to the
//! per-thread ring buffers; no file export in the timed region) and records
//! the relative overheads. A fourth leg times a coalesced two-locality
//! distributed run — parcel-latency and flush-delay histograms recording
//! on every parcel in both sides — with tracing off vs on, so the wire
//! trace-context stamping and flow events carry their own budget. The
//! observability budget is ≤3% per layer with the full stack enabled and
//! exactly zero when disabled — the disabled path is verified structurally
//! via the tracer's allocation hook rather than by timing (a
//! one-relaxed-load difference is far below wall-clock noise).
//!
//! `BENCH_SMOKE=1` runs one short iteration for CI (no JSON write — smoke
//! numbers must not clobber the committed baseline).

use std::time::Instant;

use apex_lite::trace;
use octotiger::{DistConfig, DistRun, Driver, KernelType, OctoConfig};

fn bench_config(level: u32, steps: u32) -> OctoConfig {
    OctoConfig {
        max_level: level,
        stop_step: steps,
        threads: 2,
        ..OctoConfig::with_all_kernels(KernelType::KokkosSerial)
    }
}

/// Wall time of one fresh driver run (tracing state set by the caller);
/// `sample_ms` additionally runs the periodic counter sampler at that
/// cadence. Returns the seconds and the number of samples taken.
fn time_run(level: u32, steps: u32, sample_ms: Option<u64>) -> (f64, u64) {
    let mut cfg = bench_config(level, steps);
    cfg.sample_interval_ms = sample_ms;
    let mut driver = Driver::new(cfg);
    let start = Instant::now();
    let m = driver.run(2);
    let secs = start.elapsed().as_secs_f64();
    assert!(m.cells_processed > 0);
    (secs, m.counter_samples)
}

/// Wall time of one coalesced two-locality distributed run (tracing state
/// set by the caller; the latency/flush-delay histograms record on every
/// parcel regardless, so the measured delta is the tracing increment —
/// wire trace-context stamping, parcel_send/recv spans, flow events).
fn time_dist_run(steps: u32) -> (f64, u64) {
    let mut octo = bench_config(1, steps);
    octo.coalesce = true;
    let cfg = DistConfig::from_octo(2, octo);
    let start = Instant::now();
    let m = DistRun::execute(cfg);
    let secs = start.elapsed().as_secs_f64();
    assert!(m.cells_processed > 0);
    (secs, m.port.parcels)
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok_and(|v| v == "1");
    let (level, steps, reps) = if smoke { (1, 1, 1) } else { (2, 4, 7) };

    // Zero-cost-when-disabled: the whole run must not make the tracer
    // allocate (ring buffers are only ever created while enabled).
    trace::set_enabled(false);
    trace::reset();
    let allocs_before = trace::tracer_allocs();
    let _ = time_run(level, steps, None);
    let disabled_allocs = trace::tracer_allocs() - allocs_before;
    assert_eq!(disabled_allocs, 0, "disabled tracer allocated");

    // Interleave off/on/on+sampler reps so drift hits every side equally;
    // take the minimum (the classic noise-robust estimator for this run
    // length). The third leg runs the 10 ms counter sampler on top of
    // tracing — the full observability stack must fit the same budget.
    let mut off = f64::INFINITY;
    let mut on = f64::INFINITY;
    let mut sampled = f64::INFINITY;
    let mut dist_off = f64::INFINITY;
    let mut dist_on = f64::INFINITY;
    let mut events = 0usize;
    let mut samples = 0u64;
    let mut parcels = 0u64;
    for _ in 0..reps {
        trace::set_enabled(false);
        off = off.min(time_run(level, steps, None).0);

        trace::reset();
        trace::set_enabled(true);
        on = on.min(time_run(level, steps, None).0);
        trace::set_enabled(false);
        events = events.max(trace::drain().len());

        trace::reset();
        trace::set_enabled(true);
        let (secs, n) = time_run(level, steps, Some(10));
        sampled = sampled.min(secs);
        samples = samples.max(n);
        trace::set_enabled(false);
        trace::reset();

        // Distributed leg: histograms record in both runs; only the
        // tracing state differs.
        dist_off = dist_off.min(time_dist_run(steps).0);
        trace::reset();
        trace::set_enabled(true);
        let (secs, p) = time_dist_run(steps);
        dist_on = dist_on.min(secs);
        parcels = parcels.max(p);
        trace::set_enabled(false);
        trace::reset();
    }
    assert!(samples > 0, "10 ms sampler took no counter samples");
    assert!(parcels > 0, "distributed leg moved no parcels");

    let overhead_pct = (on / off - 1.0) * 100.0;
    // The sampler's own budget is its *increment* over the tracing-on run —
    // each observability layer must fit the 3% envelope by itself. On a
    // multi-core host the sampler thread rides a free core and the
    // increment is ~0; on a time-shared single core (small CI boxes) a
    // 100 Hz waker costs ~2-3% in pure context-switch tax even when the
    // per-sample work is nil, which would eat the tracer's budget if the
    // two layers were lumped together.
    let sampler_overhead_pct = (sampled / on - 1.0) * 100.0;
    let dist_overhead_pct = (dist_on / dist_off - 1.0) * 100.0;
    println!("trace-overhead/off: {:.2} ms", off * 1e3);
    println!(
        "trace-overhead/on:  {:.2} ms ({} events recorded)",
        on * 1e3,
        events
    );
    println!(
        "trace-overhead/on+sampler(10ms): {:.2} ms ({} samples)",
        sampled * 1e3,
        samples
    );
    println!("trace-overhead/relative: {overhead_pct:+.2}% (budget ≤3%)");
    println!(
        "trace-overhead/sampler-increment: {sampler_overhead_pct:+.2}% over tracing (budget ≤3%)"
    );
    println!("trace-overhead/dist-off: {:.2} ms", dist_off * 1e3);
    println!(
        "trace-overhead/dist-on:  {:.2} ms ({} parcels)",
        dist_on * 1e3,
        parcels
    );
    println!("trace-overhead/dist-relative: {dist_overhead_pct:+.2}% (budget ≤3%)");
    println!("trace-overhead/disabled_allocs: {disabled_allocs}");
    if overhead_pct > 3.0 {
        println!("WARNING: tracer overhead above the 3% budget");
    }
    if sampler_overhead_pct > 3.0 {
        println!("WARNING: sampler increment above the 3% budget");
    }
    if dist_overhead_pct > 3.0 {
        println!("WARNING: distributed tracing overhead above the 3% budget");
    }

    if smoke {
        println!("BENCH_SMOKE=1: skipping BENCH_trace_overhead.json write");
        return;
    }

    let json = format!(
        "{{\n  \"bench\": \"trace_overhead\",\n  \"host_simd_isa\": \"{}\",\n  \"compiled_simd_isa\": \"{}\",\n  \"tree_level\": {level},\n  \"steps\": {steps},\n  \"reps\": {reps},\n  \"off_seconds\": {off:.6},\n  \"on_seconds\": {on:.6},\n  \"overhead_pct\": {overhead_pct:.3},\n  \"sampler_seconds\": {sampled:.6},\n  \"sampler_overhead_pct\": {sampler_overhead_pct:.3},\n  \"sampler_interval_ms\": 10,\n  \"counter_samples\": {samples},\n  \"dist_off_seconds\": {dist_off:.6},\n  \"dist_on_seconds\": {dist_on:.6},\n  \"dist_overhead_pct\": {dist_overhead_pct:.3},\n  \"dist_parcels\": {parcels},\n  \"budget_pct\": 3.0,\n  \"events_recorded\": {events},\n  \"disabled_tracer_allocs\": {disabled_allocs}\n}}\n",
        octotiger::kernel_backend::host_simd_isa(),
        octotiger::kernel_backend::compiled_simd_isa()
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_trace_overhead.json"
    );
    std::fs::write(path, json).expect("write BENCH_trace_overhead.json");
    println!("wrote {path}");
}
