//! The figure-regeneration harness: running `cargo bench` regenerates every
//! table and figure of the paper and prints it (quick workloads by default;
//! set `OCTO_FULL=1` for the paper's full parameters — level-4 tree, five
//! steps, 2×10⁵-term host sweeps).
//!
//! This bench is intentionally not a Criterion micro-benchmark: its product
//! is the exhibits themselves (plus a wall-time line per exhibit).

use std::time::Instant;

fn main() {
    // Honour Criterion-style filter args so `cargo bench fig8` works.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let filters: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with('-'))
        .map(String::as_str)
        .collect();
    let quick = std::env::var_os("OCTO_FULL").is_none();
    println!(
        "== regenerating paper exhibits ({}) ==\n",
        if quick {
            "quick workloads; OCTO_FULL=1 for paper-scale"
        } else {
            "paper-scale workloads"
        }
    );
    for id in octo_core::experiments::EXHIBIT_IDS {
        if !filters.is_empty() && !filters.iter().any(|f| id.contains(f)) {
            continue;
        }
        let start = Instant::now();
        let exhibit = octo_core::experiments::run_one(id, quick).expect("known exhibit id");
        exhibit.print();
        println!("  [regenerated in {:.2}s]\n", start.elapsed().as_secs_f64());
    }
}
