//! Criterion bench for the Maclaurin benchmark (Figs. 4–5): the four
//! parallelism styles at a host-friendly term count, plus the counted
//! (softmath) variant used as the `perf` substitute.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use octo_core::maclaurin::{self, Approach};
use repro_bench::bench_runtime;

fn styles(c: &mut Criterion) {
    let rt = bench_runtime();
    let h = rt.handle();
    let n: u64 = 200_000;
    let mut g = c.benchmark_group("maclaurin");
    g.sample_size(10);
    for approach in Approach::ALL {
        g.bench_with_input(
            BenchmarkId::new("style", approach.label()),
            &approach,
            |b, &ap| b.iter(|| black_box(maclaurin::run(ap, &h, maclaurin::PAPER_X, black_box(n)))),
        );
    }
    g.finish();
}

fn counted(c: &mut Criterion) {
    let mut g = c.benchmark_group("maclaurin-counted");
    g.sample_size(10);
    g.bench_function("softmath_flop_counting", |b| {
        b.iter(|| black_box(maclaurin::counted(maclaurin::PAPER_X, black_box(20_000))))
    });
    g.finish();
}

criterion_group!(benches, styles, counted);
criterion_main!(benches);
