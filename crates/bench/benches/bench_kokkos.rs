//! Criterion bench for `kokkos-lite`: parallel patterns on both execution
//! spaces, SIMD pack widths (the Table 2 vector lengths), and the
//! tasks-per-kernel ablation (the §3.2 knob).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use kokkos_lite::{
    parallel_fill, parallel_reduce_sum, simd_sum, HpxSpace, RangePolicy, Serial, View,
};
use repro_bench::bench_runtime;

fn spaces(c: &mut Criterion) {
    let rt = bench_runtime();
    let n = 100_000;
    let mut g = c.benchmark_group("kokkos-spaces");
    g.sample_size(10);
    g.bench_function("reduce_serial", |b| {
        b.iter(|| {
            black_box(parallel_reduce_sum(&Serial, RangePolicy::new(0, n), |i| {
                (i as f64).sqrt()
            }))
        })
    });
    g.bench_function("reduce_hpx", |b| {
        let space = HpxSpace::new(rt.handle());
        b.iter(|| {
            black_box(parallel_reduce_sum(&space, RangePolicy::new(0, n), |i| {
                (i as f64).sqrt()
            }))
        })
    });
    g.finish();
}

fn views(c: &mut Criterion) {
    let rt = bench_runtime();
    let mut g = c.benchmark_group("kokkos-views");
    g.sample_size(10);
    g.bench_function("fill_3d_view_hpx", |b| {
        let mut v: View<f64> = View::new_3d("bench", 64, 64, 64);
        let space = HpxSpace::new(rt.handle());
        b.iter(|| {
            parallel_fill(&space, v.as_mut_slice(), |i| (i % 101) as f64);
            black_box(v.get3(1, 2, 3))
        })
    });
    g.finish();
}

fn simd_widths(c: &mut Criterion) {
    let data: Vec<f64> = (0..65_536).map(|i| (i as f64) * 0.25).collect();
    let mut g = c.benchmark_group("kokkos-simd");
    g.sample_size(10);
    // Width 1 is the RISC-V scalar fallback; 4 the EPYC's AVX2; 8 the
    // A64FX/AVX-512 width.
    g.bench_with_input(BenchmarkId::new("sum_width", 1), &1, |b, _| {
        b.iter(|| black_box(simd_sum::<1>(&data)))
    });
    g.bench_with_input(BenchmarkId::new("sum_width", 4), &4, |b, _| {
        b.iter(|| black_box(simd_sum::<4>(&data)))
    });
    g.bench_with_input(BenchmarkId::new("sum_width", 8), &8, |b, _| {
        b.iter(|| black_box(simd_sum::<8>(&data)))
    });
    g.finish();
}

/// Ablation (DESIGN.md §6): tasks per kernel for the HPX execution space.
fn ablation_chunks(c: &mut Criterion) {
    let rt = bench_runtime();
    let mut g = c.benchmark_group("kokkos-ablation-chunks");
    g.sample_size(10);
    for chunks in [1usize, 4, 16, 64] {
        g.bench_with_input(
            BenchmarkId::new("tasks_per_kernel", chunks),
            &chunks,
            |b, &n| {
                let space = HpxSpace::with_chunks(rt.handle(), n);
                b.iter(|| {
                    black_box(parallel_reduce_sum(
                        &space,
                        RangePolicy::new(0, 50_000),
                        |i| (i as f64) * 1.0001,
                    ))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, spaces, views, simd_widths, ablation_chunks);
criterion_main!(benches);
