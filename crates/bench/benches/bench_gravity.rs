//! Gravity SIMD/caching baseline bench — the BENCH_gravity.json datapoint.
//!
//! Times the SoA fast-multipole kernels (`accel_for_leaf_with`) at every
//! supported SIMD width against the scalar reference path, and a short
//! driver run with the interaction-list cache on vs off. Results go to
//! stdout (criterion-style lines) and, on a full run, to
//! `BENCH_gravity.json` at the repo root so successive PRs accumulate a
//! baseline series.
//!
//! `BENCH_SMOKE=1` runs one short iteration for CI (no timing assertions,
//! no JSON write — smoke numbers must not clobber the committed baseline).

use std::time::Instant;

use octotiger::gravity::{self, GravityKernels, GravityWorkspace, InteractionCache, LeafScratch};
use octotiger::kernel_backend::{Dispatch, KernelType, SimdPolicy};
use octotiger::{Driver, OctoConfig};

struct KernelPoint {
    label: String,
    ns_per_sweep: f64,
}

struct DriverPoint {
    cache: bool,
    host_tasks: usize,
    seconds: f64,
    hits: u64,
    misses: u64,
    mac_evals: u64,
    tasks_spawned: u64,
    fused_launches: u64,
}

fn bench_config(level: u32, steps: u32, cache: bool, host_tasks: usize) -> OctoConfig {
    OctoConfig {
        max_level: level,
        stop_step: steps,
        threads: 2,
        use_interaction_cache: cache,
        monopole_host_tasks: host_tasks,
        multipole_host_tasks: host_tasks,
        hydro_host_tasks: host_tasks,
        ..OctoConfig::with_all_kernels(KernelType::KokkosSerial)
    }
}

/// Work-aggregation batch size for the batched driver runs; `1` is the
/// per-leaf baseline. `BENCH_HOST_TASKS` overrides (the CI smoke run pins
/// two sizes to exercise both paths).
fn batch_size() -> usize {
    std::env::var("BENCH_HOST_TASKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
}

/// Best (min) wall time of `iters` full-tree FMM sweeps per policy, with
/// the policies interleaved iteration-by-iteration (the `time_step_modes`
/// methodology from bench_hydro): ambient drift — frequency scaling,
/// background load — hits every width equally instead of penalizing
/// whichever policy happens to be timed last, and min filters OS
/// scheduling noise, so narrow width-vs-width gaps (W8 vs W4 on
/// single-FMA-unit AVX-512 parts) reflect intrinsic kernel cost.
fn time_kernel_sweeps(driver: &Driver, policies: &[SimdPolicy], iters: u32) -> Vec<KernelPoint> {
    let tree = driver.tree();
    let blocks: Vec<gravity::BlockSoA> = tree
        .leaf_ids()
        .iter()
        .map(|&l| gravity::compute_blocks(tree.subgrid(l)))
        .collect();
    let mut ws = GravityWorkspace::new();
    ws.upward_pass(tree, &blocks);
    let mut cache = InteractionCache::new();
    cache.ensure(tree, &ws.moments, driver.config().theta);
    let lists = cache.lists();
    // Legacy dispatch = inline serial execution: the measurement isolates
    // the kernels from task-scheduling noise.
    let d = Dispatch::Legacy;
    let mut scratch = LeafScratch::new();
    let mut sweep = |policy: SimdPolicy| {
        let kernels = GravityKernels {
            multipole: &d,
            monopole: &d,
            simd: policy,
        };
        for &leaf in tree.leaf_ids() {
            let (far, near) = &lists[ws.leaf_pos[leaf]];
            std::hint::black_box(gravity::accel_for_leaf_with(
                tree,
                &ws.moments,
                &blocks,
                &ws.leaf_pos,
                leaf,
                far,
                near,
                &kernels,
                &mut scratch,
            ));
        }
    };
    for &p in policies {
        sweep(p); // warm-up
    }
    let mut best = vec![f64::INFINITY; policies.len()];
    for _ in 0..iters {
        for (i, &p) in policies.iter().enumerate() {
            let start = Instant::now();
            sweep(p);
            best[i] = best[i].min(start.elapsed().as_nanos() as f64);
        }
    }
    policies
        .iter()
        .zip(best)
        .map(|(p, ns)| KernelPoint {
            label: p.label(),
            ns_per_sweep: ns,
        })
        .collect()
}

/// One short driver run; reports wall time, cache and aggregation counters.
fn time_driver(level: u32, steps: u32, cache: bool, host_tasks: usize) -> DriverPoint {
    let mut driver = Driver::new(bench_config(level, steps, cache, host_tasks));
    let m = driver.run(2);
    let agg = driver.aggregation_stats();
    DriverPoint {
        cache,
        host_tasks,
        seconds: m.elapsed_seconds,
        hits: m.cache.hits,
        misses: m.cache.misses,
        mac_evals: m.work.mac_evals,
        tasks_spawned: m.runtime_stats.tasks_spawned,
        fused_launches: agg.fused_launches,
    }
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok_and(|v| v == "1");
    let (level, iters, steps) = if smoke { (1, 1, 1) } else { (2, 12, 4) };

    let batch = batch_size();
    let driver = Driver::new(bench_config(level, steps, true, 1));
    let policies = [
        SimdPolicy::Scalar,
        SimdPolicy::Width(1),
        SimdPolicy::Width(2),
        SimdPolicy::Width(4),
        SimdPolicy::Width(8),
    ];
    let kernel_points = time_kernel_sweeps(&driver, &policies, iters);
    for p in &kernel_points {
        println!(
            "gravity-simd/fmm_sweep/{}: min {:.2} µs",
            p.label,
            p.ns_per_sweep / 1e3
        );
    }
    let scalar_ns = kernel_points[0].ns_per_sweep;
    for p in &kernel_points[1..] {
        println!(
            "gravity-simd/speedup/{}: {:.2}x vs scalar",
            p.label,
            scalar_ns / p.ns_per_sweep
        );
    }

    let driver_points = [
        time_driver(level, steps, true, 1),
        time_driver(level, steps, false, 1),
        time_driver(level, steps, true, batch),
    ];
    for p in &driver_points {
        println!(
            "gravity-cache/steps(cache={},host_tasks={}): {:.2} ms, hits {} misses {} \
             mac_evals {} tasks_spawned {} fused_launches {}",
            p.cache,
            p.host_tasks,
            p.seconds * 1e3,
            p.hits,
            p.misses,
            p.mac_evals,
            p.tasks_spawned,
            p.fused_launches
        );
    }

    if smoke {
        println!("BENCH_SMOKE=1: skipping BENCH_gravity.json write");
        return;
    }

    let kernel_json: Vec<String> = kernel_points
        .iter()
        .map(|p| {
            format!(
                "    {{\"policy\": \"{}\", \"ns_per_sweep\": {:.0}, \"speedup_vs_scalar\": {:.3}}}",
                p.label,
                p.ns_per_sweep,
                scalar_ns / p.ns_per_sweep
            )
        })
        .collect();
    let driver_json: Vec<String> = driver_points
        .iter()
        .map(|p| {
            format!(
                "    {{\"interaction_cache\": {}, \"host_tasks\": {}, \"seconds\": {:.6}, \"hits\": {}, \"misses\": {}, \"mac_evals\": {}, \"tasks_spawned\": {}, \"fused_launches\": {}}}",
                p.cache, p.host_tasks, p.seconds, p.hits, p.misses, p.mac_evals, p.tasks_spawned, p.fused_launches
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"gravity\",\n  \"host_simd_isa\": \"{}\",\n  \"compiled_simd_isa\": \"{}\",\n  \"tree_level\": {level},\n  \"steps\": {steps},\n  \"sweep_iters\": {iters},\n  \"kernel_sweeps\": [\n{}\n  ],\n  \"driver_runs\": [\n{}\n  ]\n}}\n",
        octotiger::kernel_backend::host_simd_isa(),
        octotiger::kernel_backend::compiled_simd_isa(),
        kernel_json.join(",\n"),
        driver_json.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gravity.json");
    std::fs::write(path, json).expect("write BENCH_gravity.json");
    println!("wrote {path}");
}
