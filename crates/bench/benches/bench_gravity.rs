//! Gravity SIMD/caching baseline bench — the BENCH_gravity.json datapoint.
//!
//! Times the SoA fast-multipole kernels (`accel_for_leaf_with`) at every
//! supported SIMD width against the scalar reference path, and a short
//! driver run with the interaction-list cache on vs off. Results go to
//! stdout (criterion-style lines) and, on a full run, to
//! `BENCH_gravity.json` at the repo root so successive PRs accumulate a
//! baseline series.
//!
//! `BENCH_SMOKE=1` runs one short iteration for CI (no timing assertions,
//! no JSON write — smoke numbers must not clobber the committed baseline).

use std::time::Instant;

use octotiger::gravity::{self, GravityKernels, GravityWorkspace, InteractionCache, LeafScratch};
use octotiger::kernel_backend::{Dispatch, KernelType, SimdPolicy};
use octotiger::{Driver, OctoConfig};

struct KernelPoint {
    label: String,
    ns_per_sweep: f64,
}

struct DriverPoint {
    cache: bool,
    seconds: f64,
    hits: u64,
    misses: u64,
    mac_evals: u64,
}

fn bench_config(level: u32, steps: u32, cache: bool) -> OctoConfig {
    OctoConfig {
        max_level: level,
        stop_step: steps,
        threads: 2,
        use_interaction_cache: cache,
        ..OctoConfig::with_all_kernels(KernelType::KokkosSerial)
    }
}

/// Mean wall time of `iters` full-tree FMM sweeps under `policy`.
fn time_kernel_sweep(driver: &Driver, policy: SimdPolicy, iters: u32) -> KernelPoint {
    let tree = driver.tree();
    let blocks: Vec<gravity::BlockSoA> = tree
        .leaf_ids()
        .iter()
        .map(|&l| gravity::compute_blocks(tree.subgrid(l)))
        .collect();
    let mut ws = GravityWorkspace::new();
    ws.upward_pass(tree, &blocks);
    let mut cache = InteractionCache::new();
    cache.ensure(tree, &ws.moments, driver.config().theta);
    let lists = cache.lists();
    // Legacy dispatch = inline serial execution: the measurement isolates
    // the kernels from task-scheduling noise.
    let d = Dispatch::Legacy;
    let kernels = GravityKernels {
        multipole: &d,
        monopole: &d,
        simd: policy,
    };
    let mut scratch = LeafScratch::new();
    let sweep = |scratch: &mut LeafScratch| {
        for &leaf in tree.leaf_ids() {
            let (far, near) = &lists[ws.leaf_pos[leaf]];
            std::hint::black_box(gravity::accel_for_leaf_with(
                tree,
                &ws.moments,
                &blocks,
                &ws.leaf_pos,
                leaf,
                far,
                near,
                &kernels,
                scratch,
            ));
        }
    };
    sweep(&mut scratch); // warm-up
    let start = Instant::now();
    for _ in 0..iters {
        sweep(&mut scratch);
    }
    let ns = start.elapsed().as_nanos() as f64 / f64::from(iters);
    KernelPoint {
        label: policy.label(),
        ns_per_sweep: ns,
    }
}

/// One short driver run; reports wall time and cache counters.
fn time_driver(level: u32, steps: u32, cache: bool) -> DriverPoint {
    let mut driver = Driver::new(bench_config(level, steps, cache));
    let m = driver.run(2);
    DriverPoint {
        cache,
        seconds: m.elapsed_seconds,
        hits: m.cache.hits,
        misses: m.cache.misses,
        mac_evals: m.work.mac_evals,
    }
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok_and(|v| v == "1");
    let (level, iters, steps) = if smoke { (1, 1, 1) } else { (2, 12, 4) };

    let driver = Driver::new(bench_config(level, steps, true));
    let policies = [
        SimdPolicy::Scalar,
        SimdPolicy::Width(1),
        SimdPolicy::Width(2),
        SimdPolicy::Width(4),
        SimdPolicy::Width(8),
    ];
    let mut kernel_points = Vec::new();
    for policy in policies {
        let p = time_kernel_sweep(&driver, policy, iters);
        println!(
            "gravity-simd/fmm_sweep/{}: mean {:.2} µs",
            p.label,
            p.ns_per_sweep / 1e3
        );
        kernel_points.push(p);
    }
    let scalar_ns = kernel_points[0].ns_per_sweep;
    for p in &kernel_points[1..] {
        println!(
            "gravity-simd/speedup/{}: {:.2}x vs scalar",
            p.label,
            scalar_ns / p.ns_per_sweep
        );
    }

    let driver_points = [
        time_driver(level, steps, true),
        time_driver(level, steps, false),
    ];
    for p in &driver_points {
        println!(
            "gravity-cache/steps(cache={}): {:.2} ms, hits {} misses {} mac_evals {}",
            p.cache,
            p.seconds * 1e3,
            p.hits,
            p.misses,
            p.mac_evals
        );
    }

    if smoke {
        println!("BENCH_SMOKE=1: skipping BENCH_gravity.json write");
        return;
    }

    let kernel_json: Vec<String> = kernel_points
        .iter()
        .map(|p| {
            format!(
                "    {{\"policy\": \"{}\", \"ns_per_sweep\": {:.0}, \"speedup_vs_scalar\": {:.3}}}",
                p.label,
                p.ns_per_sweep,
                scalar_ns / p.ns_per_sweep
            )
        })
        .collect();
    let driver_json: Vec<String> = driver_points
        .iter()
        .map(|p| {
            format!(
                "    {{\"interaction_cache\": {}, \"seconds\": {:.6}, \"hits\": {}, \"misses\": {}, \"mac_evals\": {}}}",
                p.cache, p.seconds, p.hits, p.misses, p.mac_evals
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"gravity\",\n  \"tree_level\": {level},\n  \"steps\": {steps},\n  \"sweep_iters\": {iters},\n  \"kernel_sweeps\": [\n{}\n  ],\n  \"driver_runs\": [\n{}\n  ]\n}}\n",
        kernel_json.join(",\n"),
        driver_json.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gravity.json");
    std::fs::write(path, json).expect("write BENCH_gravity.json");
    println!("wrote {path}");
}
