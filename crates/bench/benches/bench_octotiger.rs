//! Criterion bench for the Octo-Tiger mini-app (Fig. 7's substance):
//! per-sub-grid hydro and gravity kernels across all three kernel backends,
//! a full driver step, and the θ / sub-grid ablations of DESIGN.md §6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use octotiger::gravity;
use octotiger::hydro;
use octotiger::kernel_backend::{Dispatch, KernelType};
use octotiger::subgrid::SubGrid;
use octotiger::{Driver, OctoConfig, RotatingStar};
use repro_bench::{bench_runtime, tiny_driver};

fn star_subgrid() -> SubGrid {
    let star = RotatingStar::paper_default();
    let mut g = SubGrid::new([-0.1, -0.1, -0.1], 0.025);
    g.init_from_star(&star);
    g
}

fn hydro_kernels(c: &mut Criterion) {
    let rt = bench_runtime();
    let grid = star_subgrid();
    let mut g = c.benchmark_group("octotiger-hydro");
    g.sample_size(10);
    for kind in KernelType::ALL {
        let d = Dispatch::new(kind, &rt.handle(), 4);
        g.bench_with_input(
            BenchmarkId::new("subgrid_step", kind.label()),
            &d,
            |b, d| b.iter(|| black_box(hydro::step_interior(&grid, 1e-4, d))),
        );
    }
    g.bench_function("max_signal_speed", |b| {
        let d = Dispatch::Legacy;
        b.iter(|| black_box(hydro::max_signal_speed(&grid, &d)))
    });
    g.finish();
}

fn gravity_kernels(c: &mut Criterion) {
    let driver = tiny_driver(KernelType::KokkosSerial);
    let tree = driver.tree();
    let blocks: Vec<gravity::BlockSoA> = tree
        .leaf_ids()
        .iter()
        .map(|&l| gravity::compute_blocks(tree.subgrid(l)))
        .collect();
    let moments = gravity::upward_pass(tree, &blocks);
    let pos = gravity::leaf_positions(tree);
    let target = tree.leaf_ids()[0];
    let d = Dispatch::Legacy;
    let mut g = c.benchmark_group("octotiger-gravity");
    g.sample_size(10);
    g.bench_function("p2m_blocks", |b| {
        b.iter(|| black_box(gravity::compute_blocks(tree.subgrid(target))))
    });
    g.bench_function("m2m_upward", |b| {
        b.iter(|| black_box(gravity::upward_pass(tree, &blocks)))
    });
    g.bench_function("fmm_leaf_theta05", |b| {
        b.iter(|| {
            black_box(gravity::accel_for_leaf(
                tree, &moments, &blocks, &pos, target, 0.5, &d, &d,
            ))
        })
    });
    g.bench_function("direct_leaf", |b| {
        b.iter(|| black_box(gravity::direct_accel(tree, &blocks, target, &pos)))
    });
    g.finish();
}

/// Ablation: the θ accuracy/speed trade-off (`--theta` in the paper).
fn ablation_theta(c: &mut Criterion) {
    let driver = tiny_driver(KernelType::KokkosSerial);
    let tree = driver.tree();
    let blocks: Vec<gravity::BlockSoA> = tree
        .leaf_ids()
        .iter()
        .map(|&l| gravity::compute_blocks(tree.subgrid(l)))
        .collect();
    let moments = gravity::upward_pass(tree, &blocks);
    let pos = gravity::leaf_positions(tree);
    let target = tree.leaf_ids()[0];
    let d = Dispatch::Legacy;
    let mut g = c.benchmark_group("octotiger-ablation-theta");
    g.sample_size(10);
    for theta in [0.2f64, 0.5, 0.8] {
        g.bench_with_input(
            BenchmarkId::new("theta", format!("{theta}")),
            &theta,
            |b, &t| {
                b.iter(|| {
                    black_box(gravity::accel_for_leaf(
                        tree, &moments, &blocks, &pos, target, t, &d, &d,
                    ))
                })
            },
        );
    }
    g.finish();
}

fn full_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("octotiger-step");
    g.sample_size(10);
    for kind in KernelType::ALL {
        g.bench_with_input(
            BenchmarkId::new("level1_step", kind.label()),
            &kind,
            |b, &k| {
                let rt = bench_runtime();
                let mut driver = Driver::new(OctoConfig {
                    max_level: 1,
                    stop_step: 1,
                    ..OctoConfig::with_all_kernels(k)
                });
                b.iter(|| black_box(driver.step(&rt)))
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    hydro_kernels,
    gravity_kernels,
    ablation_theta,
    full_step
);
criterion_main!(benches);
