//! # kokkos-lite — a Kokkos-like performance-portability layer
//!
//! Reproduction stand-in for **Kokkos** and the **HPX-Kokkos** integration
//! the paper ports to RISC-V (§3.2, §5):
//!
//! * [`view::View`] — multi-dimensional arrays with `Left`/`Right` layouts
//!   (Kokkos `View`s, the sub-grid storage of Octo-Tiger);
//! * [`policy::RangePolicy`] / [`policy::MDRangePolicy`] — iteration spaces;
//! * [`parallel`] — `parallel_for` / `parallel_reduce` / `parallel_scan`,
//!   generic over the execution space;
//! * [`space::Serial`] and [`space::HpxSpace`] — the two CPU execution
//!   spaces of the paper's Fig. 7: inline execution vs splitting each kernel
//!   into `amt` tasks (with the tasks-per-kernel knob of §3.2);
//! * [`simd::Simd`] — portable SIMD packs; `Simd<1>` is the scalar fallback
//!   the V-extension-less RISC-V boards compile to.
//!
//! Porting note mirrored from §5: Kokkos itself needed *no* code changes for
//! RISC-V, only build-system architecture detection — correspondingly, this
//! crate contains no architecture-specific code; the target architecture
//! only enters through `rv_machine::CpuArch` in [`simd::natural_width`].

pub mod parallel;
pub mod policy;
pub mod simd;
pub mod space;
pub mod view;

pub use parallel::{
    parallel_fill, parallel_fill_rows, parallel_for, parallel_for_md, parallel_reduce,
    parallel_reduce_max, parallel_reduce_sum, parallel_scan_inclusive,
};
pub use policy::{MDRangePolicy, RangePolicy};
pub use simd::{natural_width, simd_sum, sweep_packs, Mask, Simd};
pub use space::{ExecutionSpace, HpxSpace, Serial};
pub use view::{create_mirror, deep_copy, Layout, View};
