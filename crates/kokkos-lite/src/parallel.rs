//! Parallel patterns — `Kokkos::parallel_for`, `parallel_reduce`,
//! `parallel_scan`, generic over the [`ExecutionSpace`]. The same kernel
//! body runs unchanged on [`Serial`](crate::space::Serial) and
//! [`HpxSpace`](crate::space::HpxSpace), which is the portability claim the
//! paper relies on (§3.2: the identical Kokkos kernel runs everywhere).

use crate::policy::{MDRangePolicy, RangePolicy};
use crate::space::ExecutionSpace;

/// `Kokkos::parallel_for` over a 1-D range.
pub fn parallel_for<S, F>(space: &S, policy: RangePolicy, f: F)
where
    S: ExecutionSpace,
    F: Fn(usize) + Send + Sync,
{
    space.for_range(policy.range(), f);
}

/// `Kokkos::parallel_for` over a 3-D range, invoking `f(i, j, k)`.
pub fn parallel_for_md<S, F>(space: &S, policy: MDRangePolicy, f: F)
where
    S: ExecutionSpace,
    F: Fn(usize, usize, usize) + Send + Sync,
{
    let p = policy;
    space.for_range(0..p.len(), move |flat| {
        let (i, j, k) = p.unflatten(flat);
        f(i, j, k);
    });
}

/// `Kokkos::parallel_reduce` over a 1-D range with a custom joiner.
pub fn parallel_reduce<S, R, M, J>(
    space: &S,
    policy: RangePolicy,
    identity: R,
    map: M,
    join: J,
) -> R
where
    S: ExecutionSpace,
    R: Send + Clone,
    M: Fn(usize) -> R + Send + Sync,
    J: Fn(R, R) -> R + Send + Sync,
{
    space.reduce_range(policy.range(), identity, map, join)
}

/// Sum-reduction convenience (the common Kokkos `parallel_reduce` with a
/// `double&` accumulator).
pub fn parallel_reduce_sum<S, M>(space: &S, policy: RangePolicy, map: M) -> f64
where
    S: ExecutionSpace,
    M: Fn(usize) -> f64 + Send + Sync,
{
    parallel_reduce(space, policy, 0.0, map, |a, b| a + b)
}

/// Max-reduction convenience (Octo-Tiger's CFL signal-speed reduction).
pub fn parallel_reduce_max<S, M>(space: &S, policy: RangePolicy, map: M) -> f64
where
    S: ExecutionSpace,
    M: Fn(usize) -> f64 + Send + Sync,
{
    parallel_reduce(space, policy, f64::NEG_INFINITY, map, f64::max)
}

/// `Kokkos::parallel_scan`: in-place inclusive prefix sum. The parallel
/// version does the classic two-pass (chunk partials, then offset fix-up);
/// for chunked execution the result equals the sequential scan because
/// addition over f64 is applied in the same left-to-right order per chunk
/// with exact partial offsets.
pub fn parallel_scan_inclusive<S>(space: &S, data: &mut [f64])
where
    S: ExecutionSpace,
{
    let n = data.len();
    if n == 0 {
        return;
    }
    let conc = space.concurrency();
    if conc <= 1 || n < 2 * conc {
        let mut acc = 0.0;
        for x in data.iter_mut() {
            acc += *x;
            *x = acc;
        }
        return;
    }
    let chunk = n.div_ceil(conc);
    // Pass 1: scan each chunk independently.
    {
        let chunks: Vec<&mut [f64]> = data.chunks_mut(chunk).collect();
        let id_chunks: Vec<(usize, &mut [f64])> = chunks.into_iter().enumerate().collect();
        // Use the space itself to parallelize over chunks, moving each
        // mutable chunk into its closure via a Mutex-free split.
        let cells: Vec<parking_lot_free::SendCell<&mut [f64]>> = id_chunks
            .into_iter()
            .map(|(_, c)| parking_lot_free::SendCell::new(c))
            .collect();
        space.for_range(0..cells.len(), |ci| {
            let c = cells[ci].take();
            let mut acc = 0.0;
            for x in c.iter_mut() {
                acc += *x;
                *x = acc;
            }
        });
    }
    // Pass 2: propagate chunk offsets (sequential over ≤ conc chunks).
    let mut offset = 0.0;
    let mut start = 0;
    while start < n {
        let end = (start + chunk).min(n);
        if start > 0 {
            for x in &mut data[start..end] {
                *x += offset;
            }
        }
        offset = data[end - 1];
        start = end;
    }
}

/// Elementwise parallel initialization: `out[i] = f(i)` — the common
/// "compute a new field into a scratch view" kernel shape (Octo-Tiger's
/// hydro update writes the next state this way). Chunks of `out` are moved
/// into the space's tasks, so no locking is involved.
pub fn parallel_fill<S, T, F>(space: &S, out: &mut [T], f: F)
where
    S: ExecutionSpace,
    T: Send,
    F: Fn(usize) -> T + Send + Sync,
{
    let n = out.len();
    if n == 0 {
        return;
    }
    let conc = space.concurrency();
    if conc <= 1 {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = f(i);
        }
        return;
    }
    let chunk = n.div_ceil(conc * 4);
    let pieces: Vec<(usize, parking_lot_free::SendCell<&mut [T]>)> = out
        .chunks_mut(chunk)
        .enumerate()
        .map(|(ci, c)| (ci * chunk, parking_lot_free::SendCell::new(c)))
        .collect();
    space.for_range(0..pieces.len(), |pi| {
        let (offset, cell) = &pieces[pi];
        let slice = cell.take();
        for (local, slot) in slice.iter_mut().enumerate() {
            *slot = f(offset + local);
        }
    });
}

/// Row-granular parallel initialization: `out` is split into consecutive
/// rows of `row_len` elements and `f(row, chunk)` fills each row in place.
/// This is the kernel shape explicitly-vectorized stencil code needs — a
/// task owns whole rows, so a `Simd<W>` pack can store `W` contiguous
/// elements at once without two tasks ever sharing a cache line of output.
pub fn parallel_fill_rows<S, T, F>(space: &S, out: &mut [T], row_len: usize, f: F)
where
    S: ExecutionSpace,
    T: Send,
    F: Fn(usize, &mut [T]) + Send + Sync,
{
    assert!(row_len > 0, "row_len must be positive");
    assert_eq!(out.len() % row_len, 0, "output must be whole rows");
    let rows = out.len() / row_len;
    if rows == 0 {
        return;
    }
    let conc = space.concurrency();
    if conc <= 1 {
        for (r, chunk) in out.chunks_mut(row_len).enumerate() {
            f(r, chunk);
        }
        return;
    }
    let group = rows.div_ceil(conc * 4).max(1);
    let pieces: Vec<(usize, parking_lot_free::SendCell<&mut [T]>)> = out
        .chunks_mut(group * row_len)
        .enumerate()
        .map(|(gi, c)| (gi * group, parking_lot_free::SendCell::new(c)))
        .collect();
    space.for_range(0..pieces.len(), |pi| {
        let (row0, cell) = &pieces[pi];
        let slice = cell.take();
        for (local, chunk) in slice.chunks_mut(row_len).enumerate() {
            f(row0 + local, chunk);
        }
    });
}

/// Minimal one-shot cell allowing disjoint `&mut` chunks to cross into
/// `Fn(usize)` kernels exactly once each.
mod parking_lot_free {
    use std::cell::UnsafeCell;
    use std::sync::atomic::{AtomicBool, Ordering};

    pub struct SendCell<T> {
        taken: AtomicBool,
        value: UnsafeCell<Option<T>>,
    }

    // SAFETY: access is guarded by the `taken` flag — each cell's value is
    // moved out exactly once, by exactly one thread.
    unsafe impl<T: Send> Sync for SendCell<T> {}
    unsafe impl<T: Send> Send for SendCell<T> {}

    impl<T> SendCell<T> {
        pub fn new(v: T) -> Self {
            SendCell {
                taken: AtomicBool::new(false),
                value: UnsafeCell::new(Some(v)),
            }
        }

        pub fn take(&self) -> T {
            let was = self.taken.swap(true, Ordering::AcqRel);
            assert!(!was, "SendCell taken twice");
            // SAFETY: the swap above guarantees exclusive access.
            unsafe { (*self.value.get()).take().expect("value present") }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{HpxSpace, Serial};
    use amt::Runtime;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn parallel_for_counts() {
        let rt = Runtime::new(4);
        for run_hpx in [false, true] {
            let hits: Vec<AtomicU64> = (0..300).map(|_| AtomicU64::new(0)).collect();
            let body = |i: usize| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            };
            if run_hpx {
                parallel_for(&HpxSpace::new(rt.handle()), RangePolicy::new(0, 300), body);
            } else {
                parallel_for(&Serial, RangePolicy::new(0, 300), body);
            }
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn parallel_for_md_covers_cube() {
        let rt = Runtime::new(2);
        let hits: Vec<AtomicU64> = (0..8 * 8 * 8).map(|_| AtomicU64::new(0)).collect();
        parallel_for_md(
            &HpxSpace::new(rt.handle()),
            MDRangePolicy::new([8, 8, 8]),
            |i, j, k| {
                hits[(i * 8 + j) * 8 + k].fetch_add(1, Ordering::Relaxed);
            },
        );
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn reduce_sum_and_max() {
        let rt = Runtime::new(3);
        let hpx = HpxSpace::new(rt.handle());
        let s = parallel_reduce_sum(&hpx, RangePolicy::new(1, 101), |i| i as f64);
        assert_eq!(s, 5050.0);
        let m = parallel_reduce_max(&hpx, RangePolicy::new(0, 100), |i| ((i * 37) % 91) as f64);
        let want = (0..100)
            .map(|i| ((i * 37) % 91) as f64)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(m, want);
    }

    #[test]
    fn reduce_custom_join_matches_serial() {
        let rt = Runtime::new(4);
        let hpx = HpxSpace::new(rt.handle());
        let join = |a: (f64, u64), b: (f64, u64)| (a.0 + b.0, a.1 + b.1);
        let map = |i: usize| (1.0 / (i + 1) as f64, 1u64);
        let p = parallel_reduce(&hpx, RangePolicy::new(0, 10_000), (0.0, 0), map, join);
        let s = parallel_reduce(&Serial, RangePolicy::new(0, 10_000), (0.0, 0), map, join);
        assert_eq!(p.1, s.1);
        assert!((p.0 - s.0).abs() < 1e-9);
    }

    #[test]
    fn scan_matches_sequential() {
        let rt = Runtime::new(4);
        let hpx = HpxSpace::new(rt.handle());
        let mut a: Vec<f64> = (0..1000).map(|i| (i % 7) as f64).collect();
        let mut b = a.clone();
        parallel_scan_inclusive(&Serial, &mut a);
        parallel_scan_inclusive(&hpx, &mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9);
        }
        // Check against a hand scan.
        let mut acc = 0.0;
        for (i, x) in a.iter().enumerate() {
            acc += (i % 7) as f64;
            assert_eq!(*x, acc);
        }
    }

    #[test]
    fn scan_edge_cases() {
        let rt = Runtime::new(2);
        let hpx = HpxSpace::new(rt.handle());
        let mut empty: Vec<f64> = vec![];
        parallel_scan_inclusive(&hpx, &mut empty);
        let mut one = vec![5.0];
        parallel_scan_inclusive(&hpx, &mut one);
        assert_eq!(one, vec![5.0]);
        let mut small = vec![1.0, 2.0, 3.0];
        parallel_scan_inclusive(&hpx, &mut small);
        assert_eq!(small, vec![1.0, 3.0, 6.0]);
    }

    #[test]
    fn fill_rows_matches_serial_on_all_spaces() {
        let rt = Runtime::new(4);
        let hpx = HpxSpace::new(rt.handle());
        let rows = 64;
        let row_len = 8;
        let body = |r: usize, chunk: &mut [f64]| {
            for (k, slot) in chunk.iter_mut().enumerate() {
                *slot = (r * 100 + k) as f64;
            }
        };
        let mut serial = vec![0.0; rows * row_len];
        parallel_fill_rows(&Serial, &mut serial, row_len, body);
        let mut par = vec![0.0; rows * row_len];
        parallel_fill_rows(&hpx, &mut par, row_len, body);
        assert_eq!(serial, par);
        assert_eq!(serial[9 * row_len + 3], 903.0);
        // Empty output is a no-op even with a nonzero row length.
        let mut empty: Vec<f64> = vec![];
        parallel_fill_rows(&hpx, &mut empty, row_len, body);
    }

    #[test]
    fn empty_policies_are_noops() {
        let rt = Runtime::new(2);
        let hpx = HpxSpace::new(rt.handle());
        let hits = AtomicU64::new(0);
        parallel_for(&hpx, RangePolicy::new(5, 5), |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 0);
        let s = parallel_reduce_sum(&hpx, RangePolicy::new(5, 5), |_| 1.0);
        assert_eq!(s, 0.0);
    }
}
