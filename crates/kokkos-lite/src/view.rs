//! Multi-dimensional array views — Kokkos `View`s, the data structure all
//! portable kernels operate on (paper §3.2).
//!
//! A [`View`] owns contiguous storage for up to four dimensions with a
//! configurable [`Layout`]: `Right` (row-major, C order — Kokkos' default on
//! CPU execution spaces) or `Left` (column-major, Fortran order — Kokkos'
//! default on GPUs). Octo-Tiger's sub-grid fields are rank-3 `f64` views of
//! extent 8(+ghosts)³.

/// Memory layout of a view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layout {
    /// Row-major (C): last index fastest. Kokkos CPU default.
    Right,
    /// Column-major (Fortran): first index fastest. Kokkos GPU default.
    Left,
}

/// An owned, contiguous, up-to-rank-4 array.
#[derive(Debug, Clone, PartialEq)]
pub struct View<T> {
    label: String,
    dims: [usize; 4],
    rank: usize,
    layout: Layout,
    data: Vec<T>,
}

impl<T: Clone + Default> View<T> {
    /// Rank-1 view of `n` default-initialized elements.
    pub fn new_1d(label: &str, n: usize) -> Self {
        Self::with_layout(label, &[n], Layout::Right)
    }

    /// Rank-2 view.
    pub fn new_2d(label: &str, n0: usize, n1: usize) -> Self {
        Self::with_layout(label, &[n0, n1], Layout::Right)
    }

    /// Rank-3 view (the Octo-Tiger sub-grid shape).
    pub fn new_3d(label: &str, n0: usize, n1: usize, n2: usize) -> Self {
        Self::with_layout(label, &[n0, n1, n2], Layout::Right)
    }

    /// Rank-4 view (field × cell).
    pub fn new_4d(label: &str, n0: usize, n1: usize, n2: usize, n3: usize) -> Self {
        Self::with_layout(label, &[n0, n1, n2, n3], Layout::Right)
    }

    /// View with an explicit layout; `dims` gives the rank (1–4).
    pub fn with_layout(label: &str, dims: &[usize], layout: Layout) -> Self {
        assert!(
            (1..=4).contains(&dims.len()),
            "views support rank 1..=4, got {}",
            dims.len()
        );
        let mut d = [1usize; 4];
        d[..dims.len()].copy_from_slice(dims);
        let size = d.iter().product();
        View {
            label: label.to_string(),
            dims: d,
            rank: dims.len(),
            layout,
            data: vec![T::default(); size],
        }
    }
}

impl<T> View<T> {
    /// Debug label (Kokkos views are named for profiling).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Extent of dimension `d`.
    pub fn extent(&self, d: usize) -> usize {
        self.dims[d]
    }

    /// Rank (1–4).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total element count.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Layout tag.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Bytes of storage — what the memory model charges for a deep copy or
    /// a streaming kernel pass.
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<T>()
    }

    /// Flat index of `(i, j, k, l)` under the view's layout.
    #[inline]
    pub fn index4(&self, i: usize, j: usize, k: usize, l: usize) -> usize {
        debug_assert!(
            i < self.dims[0] && j < self.dims[1] && k < self.dims[2] && l < self.dims[3],
            "view {:?} index ({i},{j},{k},{l}) out of bounds {:?}",
            self.label,
            &self.dims[..self.rank]
        );
        match self.layout {
            Layout::Right => ((i * self.dims[1] + j) * self.dims[2] + k) * self.dims[3] + l,
            Layout::Left => ((l * self.dims[2] + k) * self.dims[1] + j) * self.dims[0] + i,
        }
    }

    /// Flat index of `(i, j, k)`.
    #[inline]
    pub fn index3(&self, i: usize, j: usize, k: usize) -> usize {
        self.index4(i, j, k, 0)
    }

    /// Flat index of `(i, j)`.
    #[inline]
    pub fn index2(&self, i: usize, j: usize) -> usize {
        self.index4(i, j, 0, 0)
    }

    /// Raw storage.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Raw mutable storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T: Copy> View<T> {
    /// Element at rank-1 index.
    #[inline]
    pub fn get1(&self, i: usize) -> T {
        self.data[self.index4(i, 0, 0, 0)]
    }
    /// Element at rank-2 index.
    #[inline]
    pub fn get2(&self, i: usize, j: usize) -> T {
        self.data[self.index2(i, j)]
    }
    /// Element at rank-3 index.
    #[inline]
    pub fn get3(&self, i: usize, j: usize, k: usize) -> T {
        self.data[self.index3(i, j, k)]
    }
    /// Element at rank-4 index.
    #[inline]
    pub fn get4(&self, i: usize, j: usize, k: usize, l: usize) -> T {
        self.data[self.index4(i, j, k, l)]
    }
    /// Store at rank-1 index.
    #[inline]
    pub fn set1(&mut self, i: usize, v: T) {
        let idx = self.index4(i, 0, 0, 0);
        self.data[idx] = v;
    }
    /// Store at rank-2 index.
    #[inline]
    pub fn set2(&mut self, i: usize, j: usize, v: T) {
        let idx = self.index2(i, j);
        self.data[idx] = v;
    }
    /// Store at rank-3 index.
    #[inline]
    pub fn set3(&mut self, i: usize, j: usize, k: usize, v: T) {
        let idx = self.index3(i, j, k);
        self.data[idx] = v;
    }
    /// Store at rank-4 index.
    #[inline]
    pub fn set4(&mut self, i: usize, j: usize, k: usize, l: usize, v: T) {
        let idx = self.index4(i, j, k, l);
        self.data[idx] = v;
    }

    /// Fill with a constant — `Kokkos::deep_copy(view, value)`.
    pub fn fill(&mut self, v: T) {
        self.data.fill(v);
    }
}

/// Copy `src` into `dst` — `Kokkos::deep_copy`. Extents and layouts must
/// match (Kokkos would insert a remap kernel; we require congruence).
pub fn deep_copy<T: Copy>(dst: &mut View<T>, src: &View<T>) {
    assert_eq!(dst.dims, src.dims, "deep_copy extent mismatch");
    assert_eq!(dst.layout, src.layout, "deep_copy layout mismatch");
    dst.data.copy_from_slice(&src.data);
}

/// A host mirror — on this CPU-only substrate it is a plain clone, but the
/// API is kept so application code reads like Kokkos
/// (`create_mirror_view` + `deep_copy` before/after kernels).
pub fn create_mirror<T: Clone>(src: &View<T>) -> View<T> {
    src.clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extents_and_size() {
        let v: View<f64> = View::new_3d("rho", 8, 8, 8);
        assert_eq!(v.rank(), 3);
        assert_eq!(v.size(), 512);
        assert_eq!(v.extent(0), 8);
        assert_eq!(v.bytes(), 512 * 8);
        assert_eq!(v.label(), "rho");
    }

    #[test]
    fn right_layout_last_index_fastest() {
        let v: View<f64> = View::new_3d("x", 4, 5, 6);
        assert_eq!(v.index3(0, 0, 1) - v.index3(0, 0, 0), 1);
        assert_eq!(v.index3(0, 1, 0) - v.index3(0, 0, 0), 6);
        assert_eq!(v.index3(1, 0, 0) - v.index3(0, 0, 0), 30);
    }

    #[test]
    fn left_layout_first_index_fastest() {
        let v: View<f64> = View::with_layout("x", &[4, 5, 6], Layout::Left);
        assert_eq!(v.index3(1, 0, 0) - v.index3(0, 0, 0), 1);
        assert_eq!(v.index3(0, 1, 0) - v.index3(0, 0, 0), 4);
        assert_eq!(v.index3(0, 0, 1) - v.index3(0, 0, 0), 20);
    }

    #[test]
    fn indices_are_bijective() {
        for layout in [Layout::Right, Layout::Left] {
            let v: View<u32> = View::with_layout("b", &[3, 4, 5], layout);
            let mut seen = vec![false; v.size()];
            for i in 0..3 {
                for j in 0..4 {
                    for k in 0..5 {
                        let idx = v.index3(i, j, k);
                        assert!(!seen[idx], "collision at ({i},{j},{k}) {layout:?}");
                        seen[idx] = true;
                    }
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn get_set_roundtrip() {
        let mut v: View<f64> = View::new_3d("f", 8, 8, 8);
        v.set3(1, 2, 3, 42.5);
        assert_eq!(v.get3(1, 2, 3), 42.5);
        assert_eq!(v.get3(3, 2, 1), 0.0);
        let mut v2: View<i64> = View::new_2d("g", 3, 3);
        v2.set2(2, 2, -1);
        assert_eq!(v2.get2(2, 2), -1);
    }

    #[test]
    fn rank4_field_major() {
        let mut v: View<f64> = View::new_4d("u", 5, 8, 8, 8);
        v.set4(4, 7, 7, 7, 9.0);
        assert_eq!(v.get4(4, 7, 7, 7), 9.0);
        assert_eq!(v.size(), 5 * 512);
    }

    #[test]
    fn deep_copy_copies() {
        let mut a: View<f64> = View::new_1d("a", 10);
        let mut b: View<f64> = View::new_1d("b", 10);
        a.fill(3.0);
        deep_copy(&mut b, &a);
        assert!(b.as_slice().iter().all(|&x| x == 3.0));
    }

    #[test]
    #[should_panic(expected = "extent mismatch")]
    fn deep_copy_rejects_mismatch() {
        let a: View<f64> = View::new_1d("a", 10);
        let mut b: View<f64> = View::new_1d("b", 11);
        deep_copy(&mut b, &a);
    }

    #[test]
    fn mirror_is_independent() {
        let mut a: View<f64> = View::new_1d("a", 4);
        a.fill(1.0);
        let mut m = create_mirror(&a);
        m.fill(2.0);
        assert_eq!(a.get1(0), 1.0);
        assert_eq!(m.get1(0), 2.0);
    }

    #[test]
    #[should_panic(expected = "rank 1..=4")]
    fn rank_zero_rejected() {
        let _: View<f64> = View::with_layout("z", &[], Layout::Right);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of bounds")]
    fn debug_bounds_check() {
        let v: View<f64> = View::new_2d("x", 2, 2);
        let _ = v.index2(2, 0);
    }
}
