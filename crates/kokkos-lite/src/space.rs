//! Execution spaces — where a Kokkos kernel runs (paper §3.2).
//!
//! The paper evaluates exactly two CPU spaces, and so do we:
//!
//! * [`Serial`] — the kernel body runs inline on the calling task's core.
//!   Octo-Tiger still gets multicore usage in this mode because it launches
//!   one kernel per sub-grid concurrently (§6.2.1 found this *fastest* on
//!   the 4-core boards);
//! * [`HpxSpace`] — the Kokkos-HPX execution space: the kernel's iteration
//!   range is split into `amt` tasks on the HPX-like runtime, giving the
//!   user fine-grained control over tasks-per-kernel (useful when a single
//!   kernel must fill the whole machine).

use amt::par::{self, ExecutionPolicy};
use amt::Handle;

/// Where and how a kernel's iteration space executes.
pub trait ExecutionSpace: Clone + Send + Sync {
    /// Human-readable name ("Serial", "HPX"), as printed by figure output.
    fn name(&self) -> &'static str;

    /// Maximum useful concurrency of the space.
    fn concurrency(&self) -> usize;

    /// Run `f(i)` for every `i` in `range`.
    fn for_range<F>(&self, range: std::ops::Range<usize>, f: F)
    where
        F: Fn(usize) + Send + Sync;

    /// Fold `map(i)` over `range` with the associative `join`.
    fn reduce_range<R, M, J>(
        &self,
        range: std::ops::Range<usize>,
        identity: R,
        map: M,
        join: J,
    ) -> R
    where
        R: Send + Clone,
        M: Fn(usize) -> R + Send + Sync,
        J: Fn(R, R) -> R + Send + Sync;
}

/// Inline execution on the calling core — `Kokkos::Serial`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Serial;

impl ExecutionSpace for Serial {
    fn name(&self) -> &'static str {
        "Serial"
    }

    fn concurrency(&self) -> usize {
        1
    }

    fn for_range<F>(&self, range: std::ops::Range<usize>, f: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        for i in range {
            f(i);
        }
    }

    fn reduce_range<R, M, J>(
        &self,
        range: std::ops::Range<usize>,
        identity: R,
        map: M,
        join: J,
    ) -> R
    where
        R: Send + Clone,
        M: Fn(usize) -> R + Send + Sync,
        J: Fn(R, R) -> R + Send + Sync,
    {
        let mut acc = identity;
        for i in range {
            acc = join(acc, map(i));
        }
        acc
    }
}

/// Kernel execution as tasks on the HPX-like runtime —
/// `Kokkos::Experimental::HPX`. `chunks` steers how many tasks each kernel
/// is divided into (the §3.2 knob); `None` uses the runtime default.
#[derive(Clone)]
pub struct HpxSpace {
    handle: Handle,
    chunks: Option<usize>,
}

impl HpxSpace {
    /// HPX space over `handle`'s runtime with default chunking.
    pub fn new(handle: Handle) -> Self {
        HpxSpace {
            handle,
            chunks: None,
        }
    }

    /// HPX space producing exactly `chunks` tasks per kernel.
    pub fn with_chunks(handle: Handle, chunks: usize) -> Self {
        assert!(chunks >= 1, "need at least one chunk");
        HpxSpace {
            handle,
            chunks: Some(chunks),
        }
    }

    /// The underlying runtime handle.
    pub fn handle(&self) -> &Handle {
        &self.handle
    }

    fn chunks_for(&self, len: usize) -> usize {
        self.chunks
            .unwrap_or_else(|| par::default_chunks(self.handle.num_threads(), len))
    }
}

impl ExecutionSpace for HpxSpace {
    fn name(&self) -> &'static str {
        "HPX"
    }

    fn concurrency(&self) -> usize {
        self.handle.num_threads()
    }

    fn for_range<F>(&self, range: std::ops::Range<usize>, f: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        let chunks = self.chunks_for(range.len());
        par::for_loop_chunked(&self.handle, ExecutionPolicy::Par, range, chunks, f);
    }

    fn reduce_range<R, M, J>(
        &self,
        range: std::ops::Range<usize>,
        identity: R,
        map: M,
        join: J,
    ) -> R
    where
        R: Send + Clone,
        M: Fn(usize) -> R + Send + Sync,
        J: Fn(R, R) -> R + Send + Sync,
    {
        let chunks = self.chunks_for(range.len());
        par::transform_reduce_chunked(
            &self.handle,
            ExecutionPolicy::Par,
            range,
            chunks,
            identity,
            map,
            join,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amt::Runtime;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn serial_visits_in_order() {
        // Serial runs inline on one thread; observe the order through a
        // Mutex (contention-free here) to satisfy the Sync bound.
        let seen = std::sync::Mutex::new(Vec::new());
        Serial.for_range(0..5, |i| seen.lock().unwrap().push(i));
        assert_eq!(seen.into_inner().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn serial_reduce() {
        let s = Serial.reduce_range(1..101, 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(s, 5050);
    }

    #[test]
    fn hpx_space_visits_all() {
        let rt = Runtime::new(4);
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        HpxSpace::new(rt.handle()).for_range(0..1000, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn hpx_space_reduce_matches_serial() {
        let rt = Runtime::new(3);
        let par =
            HpxSpace::new(rt.handle()).reduce_range(0..5000, 0u64, |i| i as u64, |a, b| a + b);
        let ser = Serial.reduce_range(0..5000, 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(par, ser);
    }

    #[test]
    fn explicit_chunk_count_controls_tasks() {
        let rt = Runtime::new(4);
        rt.reset_stats();
        HpxSpace::with_chunks(rt.handle(), 2).for_range(0..1000, |_| {});
        let two = rt.stats().tasks_spawned;
        rt.reset_stats();
        HpxSpace::with_chunks(rt.handle(), 8).for_range(0..1000, |_| {});
        let eight = rt.stats().tasks_spawned;
        assert!(
            eight > two,
            "more chunks must mean more tasks ({two} vs {eight})"
        );
    }

    #[test]
    fn concurrency_reflects_threads() {
        let rt = Runtime::new(3);
        assert_eq!(HpxSpace::new(rt.handle()).concurrency(), 3);
        assert_eq!(Serial.concurrency(), 1);
    }

    #[test]
    fn names() {
        let rt = Runtime::new(1);
        assert_eq!(Serial.name(), "Serial");
        assert_eq!(HpxSpace::new(rt.handle()).name(), "HPX");
    }

    #[test]
    #[should_panic(expected = "at least one chunk")]
    fn zero_chunks_rejected() {
        let rt = Runtime::new(1);
        let _ = HpxSpace::with_chunks(rt.handle(), 0);
    }
}
