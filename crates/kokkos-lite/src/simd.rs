//! Portable SIMD pack type — the `Kokkos::Experimental::simd` /
//! HPX-SIMD-types layer the paper's related work integrates for A64FX
//! (SVE) and x86 (AVX) kernels.
//!
//! [`Simd<W>`] is a fixed-width pack of `f64` lanes whose operations are
//! plain element-wise loops (LLVM vectorizes them on the host). The width a
//! *target* architecture would use comes from [`natural_width`]: 8 for
//! A64FX/Skylake AVX-512, 4 for the EPYC's AVX2, and **1 for the RISC-V
//! boards**, which implement neither the V nor the P extension — the
//! scalar-fallback case the paper highlights. On GPUs Kokkos maps the same
//! type to scalars; `Simd<1>` is exactly that degenerate pack.

use rv_machine::CpuArch;

/// Pack of `W` f64 lanes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Simd<const W: usize>(pub [f64; W]);

/// Per-lane boolean mask — the result of a [`Simd`] comparison and the
/// selector of [`Mask::select`]. This is how branchy scalar code (limiters,
/// entropy fixes, floor clamps) becomes divergence-free vector code: both
/// sides are computed, the mask picks per lane, exactly like
/// `Kokkos::Experimental::simd_mask` / SVE predication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mask<const W: usize>(pub [bool; W]);

impl<const W: usize> Mask<W> {
    /// All lanes set to `b`.
    #[inline]
    pub fn splat(b: bool) -> Self {
        Mask([b; W])
    }

    /// Per-lane choice: `t` where the lane is true, `f` otherwise.
    #[inline]
    pub fn select(self, t: Simd<W>, f: Simd<W>) -> Simd<W> {
        let mut out = f.0;
        for (i, (o, tv)) in out.iter_mut().zip(t.0.iter()).enumerate() {
            if self.0[i] {
                *o = *tv;
            }
        }
        Simd(out)
    }

    /// True iff at least one lane is set.
    #[inline]
    pub fn any(self) -> bool {
        self.0.iter().any(|&b| b)
    }

    /// True iff every lane is set.
    #[inline]
    pub fn all(self) -> bool {
        self.0.iter().all(|&b| b)
    }
}

/// Lane count `arch` would compile this pack to (Table 2's vector length).
pub fn natural_width(arch: CpuArch) -> usize {
    arch.spec().vector.lanes() as usize
}

impl<const W: usize> Simd<W> {
    /// All lanes equal to `v`.
    #[inline]
    pub fn splat(v: f64) -> Self {
        Simd([v; W])
    }

    /// All-zero pack.
    #[inline]
    pub fn zero() -> Self {
        Self::splat(0.0)
    }

    /// Load `W` consecutive lanes from `slice[offset..]`.
    #[inline]
    pub fn from_slice(slice: &[f64], offset: usize) -> Self {
        let mut out = [0.0; W];
        out.copy_from_slice(&slice[offset..offset + W]);
        Simd(out)
    }

    /// Masked tail load: lanes past `slice.len()` are filled with `fill`
    /// instead of faulting — the predicated load SVE/AVX-512 kernels use for
    /// loop remainders. `fill` is chosen by the kernel so that padded lanes
    /// contribute exactly zero (e.g. mass 0, or a far-away sentinel
    /// position that keeps `1/r` finite).
    #[inline]
    pub fn from_slice_padded(slice: &[f64], offset: usize, fill: f64) -> Self {
        let mut out = [fill; W];
        let start = offset.min(slice.len());
        let avail = (slice.len() - start).min(W);
        out[..avail].copy_from_slice(&slice[start..start + avail]);
        Simd(out)
    }

    /// Gather `W` lanes from arbitrary indices (Kokkos SIMD `gather_from`);
    /// the SoA kernels use it to pull block values in leaf-list order.
    #[inline]
    pub fn gather(slice: &[f64], indices: &[usize; W]) -> Self {
        let mut out = [0.0; W];
        for (o, &i) in out.iter_mut().zip(indices.iter()) {
            *o = slice[i];
        }
        Simd(out)
    }

    /// Scatter lanes to arbitrary indices (last write wins on duplicates,
    /// like Kokkos SIMD `scatter_to`).
    #[inline]
    pub fn scatter(self, slice: &mut [f64], indices: &[usize; W]) {
        for (v, &i) in self.0.iter().zip(indices.iter()) {
            slice[i] = *v;
        }
    }

    /// Store lanes to `slice[offset..]`.
    #[inline]
    pub fn write_to(self, slice: &mut [f64], offset: usize) {
        slice[offset..offset + W].copy_from_slice(&self.0);
    }

    /// Number of lanes.
    #[inline]
    pub const fn lanes() -> usize {
        W
    }

    /// Lane `i`.
    #[inline]
    pub fn extract(self, i: usize) -> f64 {
        self.0[i]
    }

    /// Multiply-add: `self * b + c` per lane. Fused (single-rounding) only
    /// when the target actually has FMA hardware — on targets without it,
    /// `f64::mul_add` lowers to a libm call that is an order of magnitude
    /// slower than mul+add, which would make every "vectorized" kernel
    /// lose to its scalar reference.
    #[inline]
    pub fn mul_add(self, b: Self, c: Self) -> Self {
        let mut out = self.0;
        for (o, (b, c)) in out.iter_mut().zip(b.0.iter().zip(c.0.iter())) {
            #[cfg(target_feature = "fma")]
            {
                *o = o.mul_add(*b, *c);
            }
            #[cfg(not(target_feature = "fma"))]
            {
                *o = *o * *b + *c;
            }
        }
        Simd(out)
    }

    /// Horizontal sum of all lanes.
    #[inline]
    pub fn reduce_sum(self) -> f64 {
        self.0.iter().sum()
    }

    /// Horizontal max of all lanes.
    #[inline]
    pub fn reduce_max(self) -> f64 {
        self.0.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Lane-wise maximum.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        let mut out = self.0;
        for (o, b) in out.iter_mut().zip(other.0.iter()) {
            *o = o.max(*b);
        }
        Simd(out)
    }

    /// Lane-wise minimum.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        let mut out = self.0;
        for (o, b) in out.iter_mut().zip(other.0.iter()) {
            *o = o.min(*b);
        }
        Simd(out)
    }

    /// Lane-wise absolute value.
    #[inline]
    pub fn abs(self) -> Self {
        let mut out = self.0;
        for o in out.iter_mut() {
            *o = o.abs();
        }
        Simd(out)
    }

    /// Lane-wise `self < other`.
    #[inline]
    pub fn lt(self, other: Self) -> Mask<W> {
        let mut out = [false; W];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(other.0.iter())) {
            *o = a < b;
        }
        Mask(out)
    }

    /// Lane-wise `self <= other`.
    #[inline]
    pub fn le(self, other: Self) -> Mask<W> {
        let mut out = [false; W];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(other.0.iter())) {
            *o = a <= b;
        }
        Mask(out)
    }

    /// Lane-wise `self >= other`.
    #[inline]
    pub fn ge(self, other: Self) -> Mask<W> {
        let mut out = [false; W];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(other.0.iter())) {
            *o = a >= b;
        }
        Mask(out)
    }

    /// Lane-wise square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        let mut out = self.0;
        for o in out.iter_mut() {
            *o = o.sqrt();
        }
        Simd(out)
    }

    /// Lane-wise reciprocal square root, composed from `sqrt` + divide —
    /// none of the paper's CPUs expose a full-precision `rsqrt` instruction
    /// for f64, so this is exactly what the SVE/AVX kernels compile to
    /// (the gravity kernels' `1/r` building block).
    #[inline]
    pub fn recip_sqrt(self) -> Self {
        let mut out = self.0;
        for o in out.iter_mut() {
            *o = 1.0 / o.sqrt();
        }
        Simd(out)
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl<const W: usize> std::ops::$trait for Simd<W> {
            type Output = Self;
            #[inline]
            fn $method(self, rhs: Self) -> Self {
                let mut out = [0.0; W];
                for i in 0..W {
                    out[i] = self.0[i] $op rhs.0[i];
                }
                Simd(out)
            }
        }
    };
}

impl_binop!(Add, add, +);
impl_binop!(Sub, sub, -);
impl_binop!(Mul, mul, *);
impl_binop!(Div, div, /);

impl<const W: usize> std::ops::Neg for Simd<W> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        let mut out = self.0;
        for o in out.iter_mut() {
            *o = -*o;
        }
        Simd(out)
    }
}

/// The tail-masked pack sweep every explicitly-vectorized source loop in
/// this repo shares: walk `len` elements in `W`-lane packs, calling
/// `pack(offset, is_tail)` for each. Full packs (`is_tail == false`) take
/// branch-free unpadded loads; the at-most-one ragged remainder
/// (`is_tail == true`) takes predicated loads via
/// [`Simd::from_slice_padded`]. The gravity P2P/M2L kernels, the hydro row
/// kernels and the work-aggregation batch kernels all drive their source
/// streams through this one skeleton, so the full-pack/tail split — and
/// therefore the bitwise result of a sweep — cannot drift between them.
#[inline]
pub fn sweep_packs<const W: usize>(len: usize, mut pack: impl FnMut(usize, bool)) {
    let full = len / W * W;
    let mut off = 0;
    while off < full {
        pack(off, false);
        off += W;
    }
    if off < len {
        pack(off, true);
    }
}

/// Sum `data` by packs of `W` with a scalar tail — the canonical
/// explicitly-vectorized reduction kernel; with `W = 1` this is exactly the
/// scalar code the RISC-V boards run.
pub fn simd_sum<const W: usize>(data: &[f64]) -> f64 {
    let mut acc = Simd::<W>::zero();
    let packs = data.len() / W;
    for p in 0..packs {
        acc = acc + Simd::<W>::from_slice(data, p * W);
    }
    let mut total = acc.reduce_sum();
    for &x in &data[packs * W..] {
        total += x;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn natural_widths_match_table2() {
        assert_eq!(natural_width(CpuArch::A64fx), 8);
        assert_eq!(natural_width(CpuArch::Epyc7543), 4);
        assert_eq!(natural_width(CpuArch::XeonGold6140), 8);
        assert_eq!(natural_width(CpuArch::RiscvU74), 1);
        assert_eq!(natural_width(CpuArch::Jh7110), 1);
    }

    #[test]
    fn arithmetic_lanewise() {
        let a = Simd::<4>([1.0, 2.0, 3.0, 4.0]);
        let b = Simd::<4>::splat(2.0);
        assert_eq!((a + b).0, [3.0, 4.0, 5.0, 6.0]);
        assert_eq!((a - b).0, [-1.0, 0.0, 1.0, 2.0]);
        assert_eq!((a * b).0, [2.0, 4.0, 6.0, 8.0]);
        assert_eq!((a / b).0, [0.5, 1.0, 1.5, 2.0]);
        assert_eq!((-a).0, [-1.0, -2.0, -3.0, -4.0]);
    }

    #[test]
    fn fma_and_reductions() {
        let a = Simd::<2>([2.0, 3.0]);
        let r = a.mul_add(Simd::splat(10.0), Simd::splat(1.0));
        assert_eq!(r.0, [21.0, 31.0]);
        assert_eq!(r.reduce_sum(), 52.0);
        assert_eq!(r.reduce_max(), 31.0);
        assert_eq!(a.max(Simd([5.0, 1.0])).0, [5.0, 3.0]);
    }

    #[test]
    fn sqrt_lanewise() {
        let a = Simd::<2>([4.0, 9.0]).sqrt();
        assert_eq!(a.0, [2.0, 3.0]);
    }

    #[test]
    fn slice_roundtrip() {
        let src = [1.0, 2.0, 3.0, 4.0, 5.0];
        let p = Simd::<3>::from_slice(&src, 1);
        assert_eq!(p.0, [2.0, 3.0, 4.0]);
        let mut dst = [0.0; 5];
        p.write_to(&mut dst, 2);
        assert_eq!(dst, [0.0, 0.0, 2.0, 3.0, 4.0]);
        assert_eq!(p.extract(2), 4.0);
        assert_eq!(Simd::<3>::lanes(), 3);
    }

    #[test]
    fn simd_sum_matches_scalar_any_width() {
        let data: Vec<f64> = (0..103).map(|i| (i as f64) * 0.25).collect();
        let want: f64 = data.iter().sum();
        assert!((simd_sum::<1>(&data) - want).abs() < 1e-9);
        assert!((simd_sum::<4>(&data) - want).abs() < 1e-9);
        assert!((simd_sum::<8>(&data) - want).abs() < 1e-9);
    }

    #[test]
    fn simd_sum_empty_and_tail_only() {
        assert_eq!(simd_sum::<4>(&[]), 0.0);
        assert_eq!(simd_sum::<4>(&[1.5, 2.5]), 4.0);
    }

    #[test]
    fn recip_sqrt_composed_from_sqrt_and_div() {
        let a = Simd::<4>([4.0, 9.0, 16.0, 0.25]).recip_sqrt();
        for (got, want) in a.0.iter().zip([0.5f64, 1.0 / 3.0, 0.25, 2.0]) {
            assert_eq!(got.to_bits(), want.to_bits(), "exactly 1/sqrt per lane");
        }
        // Degenerate pack behaves like the scalar expression.
        assert_eq!(Simd::<1>([2.0]).recip_sqrt().0[0], 1.0 / 2.0f64.sqrt());
    }

    #[test]
    fn padded_load_fills_missing_lanes() {
        let src = [1.0, 2.0, 3.0];
        // Full pack available: identical to from_slice.
        assert_eq!(Simd::<2>::from_slice_padded(&src, 1, 9.0).0, [2.0, 3.0]);
        // One lane short: tail filled.
        assert_eq!(Simd::<2>::from_slice_padded(&src, 2, 9.0).0, [3.0, 9.0]);
        // Offset at / past the end: all lanes filled.
        assert_eq!(Simd::<4>::from_slice_padded(&src, 3, -1.0).0, [-1.0; 4]);
        assert_eq!(Simd::<4>::from_slice_padded(&src, 64, 0.5).0, [0.5; 4]);
    }

    #[test]
    fn min_abs_lanewise() {
        let a = Simd::<4>([-1.0, 2.0, -3.0, 4.0]);
        assert_eq!(a.abs().0, [1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.min(Simd::splat(1.5)).0, [-1.0, 1.5, -3.0, 1.5]);
    }

    #[test]
    fn masks_compare_and_select_lanewise() {
        let a = Simd::<4>([1.0, 2.0, 3.0, 4.0]);
        let b = Simd::<4>::splat(2.5);
        assert_eq!(a.lt(b).0, [true, true, false, false]);
        assert_eq!(a.ge(b).0, [false, false, true, true]);
        assert_eq!(a.le(Simd::splat(2.0)).0, [true, true, false, false]);
        let sel = a.lt(b).select(Simd::splat(-1.0), a);
        assert_eq!(sel.0, [-1.0, -1.0, 3.0, 4.0]);
        assert!(a.lt(b).any());
        assert!(!a.lt(b).all());
        assert!(Mask::<4>::splat(true).all());
        assert!(!Mask::<4>::splat(false).any());
        // Select reproduces the branchy scalar minmod limiter bit-for-bit.
        let x = Simd::<4>([1.0, -3.0, 1.0, 0.0]);
        let y = Simd::<4>([2.0, -2.0, -1.0, 5.0]);
        let zero = Simd::zero();
        let slope = x.abs().lt(y.abs()).select(x, y);
        let mm = (x * y).le(zero).select(zero, slope);
        assert_eq!(mm.0, [1.0, -2.0, 0.0, 0.0]);
    }

    #[test]
    fn sweep_packs_covers_every_element_exactly_once() {
        for len in [0usize, 1, 3, 4, 7, 8, 64, 65] {
            let mut seen = vec![0u32; len];
            let mut tails = 0;
            sweep_packs::<4>(len, |off, is_tail| {
                if is_tail {
                    tails += 1;
                    for s in &mut seen[off..] {
                        *s += 1;
                    }
                } else {
                    for s in &mut seen[off..off + 4] {
                        *s += 1;
                    }
                }
            });
            assert!(seen.iter().all(|&c| c == 1), "len {len}: {seen:?}");
            assert_eq!(tails, usize::from(len % 4 != 0), "len {len}");
        }
    }

    #[test]
    fn sweep_packs_tail_offset_is_last_full_pack_end() {
        let mut full_offsets = Vec::new();
        let mut tail_off = None;
        sweep_packs::<8>(13, |o, is_tail| {
            if is_tail {
                tail_off = Some(o);
            } else {
                full_offsets.push(o);
            }
        });
        assert_eq!(full_offsets, [0]);
        assert_eq!(tail_off, Some(8));
        // Exact multiple: no tail call at all.
        tail_off = None;
        sweep_packs::<8>(16, |o, is_tail| {
            if is_tail {
                tail_off = Some(o);
            }
        });
        assert_eq!(tail_off, None);
    }

    #[test]
    fn sweep_packs_padded_sum_matches_scalar() {
        // The canonical use: full packs load unpadded, the tail loads with a
        // zero fill — the sum must match a lane-ordered scalar reference
        // bitwise for every length.
        let data: Vec<f64> = (0..29).map(|i| (i as f64) * 0.5 - 3.0).collect();
        for take in 0..data.len() {
            let mut acc = Simd::<4>::zero();
            sweep_packs::<4>(take, |off, is_tail| {
                acc = acc
                    + if is_tail {
                        Simd::from_slice_padded(&data[..take], off, 0.0)
                    } else {
                        Simd::from_slice(&data[..take], off)
                    };
            });
            assert_eq!(acc.reduce_sum().to_bits(), {
                // Scalar reference accumulates in the same pack-lane order.
                let mut lanes = [0.0f64; 4];
                for (i, &x) in data[..take].iter().enumerate() {
                    lanes[i % 4] += x;
                }
                lanes.iter().sum::<f64>().to_bits()
            });
        }
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let src = [10.0, 11.0, 12.0, 13.0, 14.0];
        let g = Simd::<3>::gather(&src, &[4, 0, 2]);
        assert_eq!(g.0, [14.0, 10.0, 12.0]);
        let mut dst = [0.0; 5];
        g.scatter(&mut dst, &[1, 3, 0]);
        assert_eq!(dst, [12.0, 14.0, 0.0, 10.0, 0.0]);
    }
}
