//! Execution policies describing kernel iteration spaces —
//! `Kokkos::RangePolicy` and `Kokkos::MDRangePolicy`.

/// 1-D iteration range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangePolicy {
    /// First index (inclusive).
    pub begin: usize,
    /// One past the last index.
    pub end: usize,
}

impl RangePolicy {
    /// Policy over `[begin, end)`.
    pub fn new(begin: usize, end: usize) -> Self {
        assert!(begin <= end, "RangePolicy begin {begin} > end {end}");
        RangePolicy { begin, end }
    }

    /// Number of iterations.
    pub fn len(&self) -> usize {
        self.end - self.begin
    }

    /// True for an empty range.
    pub fn is_empty(&self) -> bool {
        self.begin == self.end
    }

    /// The underlying `Range`.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.begin..self.end
    }
}

impl From<std::ops::Range<usize>> for RangePolicy {
    fn from(r: std::ops::Range<usize>) -> Self {
        RangePolicy::new(r.start, r.end)
    }
}

/// 3-D iteration space, flattened row-major onto a 1-D range for dispatch
/// (Kokkos tiles MDRange; on CPU row-major flattening gives the same
/// traversal for our kernels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MDRangePolicy {
    /// Extents per dimension.
    pub dims: [usize; 3],
}

impl MDRangePolicy {
    /// Policy over `dims[0] × dims[1] × dims[2]`.
    pub fn new(dims: [usize; 3]) -> Self {
        MDRangePolicy { dims }
    }

    /// Total iterations.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// True for a degenerate space.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Map a flat index back to `(i, j, k)`.
    #[inline]
    pub fn unflatten(&self, flat: usize) -> (usize, usize, usize) {
        debug_assert!(flat < self.len());
        let jk = self.dims[1] * self.dims[2];
        let i = flat / jk;
        let r = flat % jk;
        (i, r / self.dims[2], r % self.dims[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_basics() {
        let p = RangePolicy::new(2, 10);
        assert_eq!(p.len(), 8);
        assert!(!p.is_empty());
        assert_eq!(p.range(), 2..10);
        let q: RangePolicy = (0..0).into();
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "begin 5 > end 3")]
    fn inverted_range_rejected() {
        let _ = RangePolicy::new(5, 3);
    }

    #[test]
    fn mdrange_unflatten_bijective() {
        let p = MDRangePolicy::new([3, 4, 5]);
        assert_eq!(p.len(), 60);
        let mut seen = std::collections::HashSet::new();
        for flat in 0..p.len() {
            let (i, j, k) = p.unflatten(flat);
            assert!(i < 3 && j < 4 && k < 5);
            assert!(seen.insert((i, j, k)));
        }
        assert_eq!(seen.len(), 60);
    }

    #[test]
    fn mdrange_row_major_order() {
        let p = MDRangePolicy::new([2, 2, 2]);
        assert_eq!(p.unflatten(0), (0, 0, 0));
        assert_eq!(p.unflatten(1), (0, 0, 1));
        assert_eq!(p.unflatten(2), (0, 1, 0));
        assert_eq!(p.unflatten(4), (1, 0, 0));
    }

    #[test]
    fn empty_mdrange() {
        assert!(MDRangePolicy::new([0, 4, 4]).is_empty());
    }
}
