//! Node-level time stepper — the paper's §6.2.1 experiment: "a single
//! rotating star with a level of refinement of four is simulated for five
//! time steps", measuring *cells processed per second* while scaling from
//! one core to all four.
//!
//! Per step, interleaving the two solvers exactly as §3.3 describes:
//! ghost exchange → CFL reduction → gravity solve (P2M / M2M / multipole +
//! monopole kernels) → hydro kernel → apply update + gravity sources. Every
//! per-leaf kernel invocation is one `amt` task, so the runtime always sees
//! `leaf_count` concurrent kernels per phase — the paper's source of
//! multicore utilization even with the Kokkos Serial execution space.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use amt::par::scope;
use amt::{Handle, Runtime};
use apex_lite::trace::{self, Cat};
use apex_lite::{CounterRegistry, CounterSnapshot};

use crate::aggregate::{
    self, AccelEntry, AccelSlot, AggregationRegion, AggregationStats, BatchScratchPool,
    GravityBatchCtx, HydroBatchCtx,
};
use crate::config::OctoConfig;
use crate::gravity::{
    self, BlockSoA, CacheStats, EnsureReport, GravityKernels, GravityWorkspace, InteractionCache,
};
use crate::hydro::{self, HydroStage};
use crate::kernel_backend::Dispatch;
use crate::octree::{NodeId, Octree};
use crate::recycle::{PoolStats, RecyclePool};
use crate::star::{InitialModel, RotatingStar, NF};
use crate::subgrid::{Face, SubGrid, CELLS};

/// Work counters accumulated over a run — the measured quantities the
/// `rv-machine` projection turns into per-architecture runtimes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkEstimate {
    /// Estimated hydro flops.
    pub hydro_flops: u64,
    /// Estimated gravity flops (multipole + monopole kernels).
    pub gravity_flops: u64,
    /// Estimated bytes of field traffic.
    pub bytes: u64,
    /// Far-field (M2L) node-block interactions.
    pub far_interactions: u64,
    /// Near-field (P2P) block-block interactions.
    pub near_interactions: u64,
    /// Ghost cells filled by per-cell tree-descent sampling (level jumps and
    /// domain boundaries) — latency-bound on in-order cores.
    pub ghost_samples: u64,
    /// Bytes moved by fast same-level ghost slab copies.
    pub ghost_slab_bytes: u64,
    /// Multipole-acceptance (MAC) evaluations executed by the dual
    /// traversal. Charged only on interaction-cache *misses*: cached solves
    /// skip the traversal, and the projection must not bill flops that
    /// never ran.
    pub mac_evals: u64,
}

impl WorkEstimate {
    /// Total flops.
    pub fn flops(&self) -> u64 {
        self.hydro_flops + self.gravity_flops
    }
}

/// Results of a timed run.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Steps executed.
    pub steps: u32,
    /// Octree leaves.
    pub leaf_count: usize,
    /// Interior cells (leaves × 512).
    pub cell_count: usize,
    /// `cells × steps` — the paper's throughput numerator.
    pub cells_processed: u64,
    /// Wall-clock seconds on the host.
    pub elapsed_seconds: f64,
    /// Cells processed per second (host) — Fig. 7/8's y-axis.
    pub cells_per_second: f64,
    /// Scheduler event counts over the run.
    pub runtime_stats: amt::RuntimeStats,
    /// Work counters for the machine projection.
    pub work: WorkEstimate,
    /// Interaction-list cache hit/miss counters over the run.
    pub cache: CacheStats,
    /// Final simulation time.
    pub sim_time: f64,
    /// Fraction of the shorter solver's wall-time during which the gravity
    /// and hydro kernel families ran concurrently, accumulated over the run
    /// (0 in barriered mode, > 0 when the futurized graph interleaves).
    pub overlap_ratio: f64,
    /// Peak resident set size of the process in bytes (`VmHWM`), or the
    /// self-measured arena high-water mark where the OS counter is
    /// unavailable. Depth regressions in memory are invisible at level 2 —
    /// this is the number `BENCH_scale.json` tracks against depth.
    pub peak_rss_bytes: u64,
    /// Unified counter dump (`/runtime/…`, `/gravity/…`, `/work/…`,
    /// `/energy/…`) sampled at the end of the run.
    pub counters: CounterSnapshot,
    /// Background counter-sampler ticks taken during the run (0 unless
    /// `--sample_interval_ms` was set).
    pub counter_samples: u64,
}

/// Wall-clock envelope of one task family within a step: the earliest start
/// and latest end across all its per-leaf tasks (monotonic `now_ns` stamps).
struct Envelope {
    start: AtomicU64,
    end: AtomicU64,
}

impl Envelope {
    fn new() -> Self {
        Envelope {
            start: AtomicU64::new(u64::MAX),
            end: AtomicU64::new(0),
        }
    }

    fn record(&self, s: u64, e: u64) {
        self.start.fetch_min(s, Ordering::Relaxed);
        self.end.fetch_max(e, Ordering::Relaxed);
    }

    fn interval(&self) -> Option<(u64, u64)> {
        let s = self.start.load(Ordering::Relaxed);
        let e = self.end.load(Ordering::Relaxed);
        (s != u64::MAX && e >= s).then_some((s, e))
    }
}

/// Run totals behind the `/runtime/overlap_ratio` counter.
#[derive(Debug, Clone, Copy, Default)]
struct OverlapTotals {
    gravity_ns: u64,
    hydro_ns: u64,
    overlap_ns: u64,
}

/// Gravity state handed through the futurized step's moments task: the
/// workspace and cache are *moved* into the task (the serial M2M pass runs
/// concurrently with per-leaf hydro) and published back afterwards.
struct GravityHandoff {
    ws: GravityWorkspace,
    cache: InteractionCache,
    report: EnsureReport,
}

/// The node-level simulation driver.
pub struct Driver {
    tree: Octree,
    config: OctoConfig,
    sim_time: f64,
    work: WorkEstimate,
    /// cppuddle-style scratch-buffer pool for the hydro kernels.
    pool: std::sync::Arc<RecyclePool<[f64; NF]>>,
    /// Pool behind the SoA primitive staging views of the SIMD hydro path.
    stage_pool: std::sync::Arc<RecyclePool<f64>>,
    /// Gravity/hydro concurrency totals (futurized-mode latency hiding).
    overlap: OverlapTotals,
    /// Recycled gravity solve state (moments table, traversal order).
    gravity_ws: GravityWorkspace,
    /// Cross-step interaction-list cache keyed on tree topology.
    interaction_cache: InteractionCache,
    /// Recycled batch-fused gravity streams (far tables + near mega-stream).
    batch_scratch: BatchScratchPool,
    /// Work-aggregation seal/launch counters
    /// (`/work/aggregation/…`).
    agg: AggregationStats,
    /// Regrid sweeps executed (`/regrid/sweeps`).
    regrid_sweeps: u64,
    /// Leaves split across all sweeps, cascades included
    /// (`/regrid/leaves_refined`).
    regrid_leaves: u64,
}

/// What one [`Driver::regrid`] sweep did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegridReport {
    /// Leaves split this sweep — the requested ones that were still leaves
    /// plus every cascade split the 2:1 grading closure forced.
    pub leaves_refined: usize,
}

/// Map every leaf through `f` in parallel (one task per leaf). Still used
/// by the ghost exchange; the compute phases fan out through the
/// aggregation regions instead.
fn par_map_leaves<T, F>(handle: &Handle, tree: &Octree, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(NodeId) -> T + Send + Sync,
{
    let leaves = tree.leaf_ids();
    let mut out: Vec<Option<T>> = (0..leaves.len()).map(|_| None).collect();
    scope(handle, |sc| {
        for (slot, &leaf) in out.iter_mut().zip(leaves) {
            let f = &f;
            sc.spawn(move || {
                *slot = Some(f(leaf));
            });
        }
    });
    out.into_iter()
        .map(|s| s.expect("scope completed"))
        .collect()
}

impl Driver {
    /// Build the rotating-star problem for `config` on a `[-1, 1]³` domain.
    pub fn new(config: OctoConfig) -> Self {
        Self::with_model(&RotatingStar::paper_default(), config)
    }

    /// Build any [`InitialModel`] problem (e.g. a
    /// [`crate::star::BinaryStar`]) on a `[-1, 1]³` domain.
    pub fn with_model<M: InitialModel>(model: &M, config: OctoConfig) -> Self {
        config.validate().expect("invalid configuration");
        let tree = Octree::build_with_model(model, &config, 1.0);
        Driver {
            tree,
            config,
            sim_time: 0.0,
            work: WorkEstimate::default(),
            pool: std::sync::Arc::new(RecyclePool::new()),
            stage_pool: std::sync::Arc::new(RecyclePool::new()),
            overlap: OverlapTotals::default(),
            gravity_ws: GravityWorkspace::new(),
            interaction_cache: InteractionCache::new(),
            batch_scratch: BatchScratchPool::new(),
            agg: AggregationStats::new(),
            regrid_sweeps: 0,
            regrid_leaves: 0,
        }
    }

    /// The underlying octree.
    pub fn tree(&self) -> &Octree {
        &self.tree
    }

    /// The active configuration.
    pub fn config(&self) -> &OctoConfig {
        &self.config
    }

    /// Execute one time step on `runtime`; returns `dt`.
    ///
    /// Dispatches on [`OctoConfig::futurize`]: the per-leaf futurized task
    /// graph (default) or the barrier-separated four-phase ablation. Both
    /// modes produce bitwise-identical states — the graph only reorders
    /// *independent* work.
    pub fn step(&mut self, runtime: &Runtime) -> f64 {
        if self.config.futurize {
            self.step_futurized(runtime)
        } else {
            self.step_barriered(runtime)
        }
    }

    /// Ghost exchange: parallel per-leaf gather, serial scatter. Shared by
    /// both step modes (it runs before any of the step's compute tasks).
    fn exchange_ghosts(&mut self, handle: &Handle, leaves: &[NodeId]) {
        let _span = trace::span(Cat::Phase, "ghost_exchange");
        let ghost_data = {
            let tree = &self.tree;
            par_map_leaves(handle, tree, |leaf| {
                Face::ALL
                    .into_iter()
                    .map(|face| (face, tree.ghost_data_for(leaf, face)))
                    .collect::<Vec<_>>()
            })
        };
        for (&leaf, faces) in leaves.iter().zip(ghost_data) {
            for (face, data) in faces {
                self.tree.apply_ghost(leaf, face, &data);
            }
        }
    }

    /// The barriered step: ghost → CFL → gravity → hydro, each phase a full
    /// task barrier (the seed's structure, kept as the `--futurize=off`
    /// ablation the bench compares against). Each phase fans out through an
    /// [`AggregationRegion`], so one task covers `--*_host_tasks` leaves;
    /// batch size 1 reproduces the per-leaf launches bitwise.
    fn step_barriered(&mut self, runtime: &Runtime) -> f64 {
        let handle = runtime.handle();
        let hydro_dispatch = Dispatch::new(self.config.hydro_kernel, &handle, 4);
        let multipole_dispatch = Dispatch::new(self.config.multipole_kernel, &handle, 4);
        let monopole_dispatch = Dispatch::new(self.config.monopole_kernel, &handle, 4);
        let policy = self.config.simd_policy();
        let agg_cfg = self.config.aggregation();

        // 1. Ghost exchange.
        let leaves: Vec<NodeId> = self.tree.leaf_ids().to_vec();
        self.exchange_ghosts(&handle, &leaves);
        let n = leaves.len();

        let hctx = HydroBatchCtx {
            tree: &self.tree,
            leaves: &leaves,
            dispatch: &hydro_dispatch,
            policy,
            state_pool: &self.pool,
            stage_pool: &self.stage_pool,
        };

        // 2. CFL time step (global max-signal-speed reduction). A vector
        //    policy also builds each leaf's SoA staging view here; the tree
        //    is immutable until the apply phase, so the hydro kernel below
        //    reuses it instead of staging twice.
        let cfl_span = trace::span(Cat::Phase, "cfl_reduction");
        let speeds: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let stage_slots: Vec<Mutex<Option<HydroStage>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        aggregate::for_each_batch(&handle, n, agg_cfg.hydro, &self.agg, |_, batch| {
            aggregate::run_cfl_batch(&hctx, batch, false, &speeds, &stage_slots)
        });
        let max_rate = speeds
            .iter()
            .map(|s| f64::from_bits(s.load(Ordering::Acquire)))
            .fold(1e-30_f64, f64::max);
        let dt = self.config.cfl / max_rate;
        drop(cfl_span);

        // 3. Gravity: P2M (batched) → M2M (serial, recycled workspace) →
        //    interaction lists (cached across steps) → FMM kernels (batched
        //    fused streams, recycled batch scratch).
        let g_env = Envelope::new();
        let h_env = Envelope::new();
        let gravity_span = trace::span(Cat::Phase, "gravity_solve");
        let block_slots: Vec<Mutex<Option<BlockSoA>>> = (0..n).map(|_| Mutex::new(None)).collect();
        {
            let tree = &self.tree;
            let leaves = &leaves;
            aggregate::for_each_batch(&handle, n, agg_cfg.multipole, &self.agg, |_, batch| {
                aggregate::run_p2m_batch(tree, leaves, batch, false, &block_slots)
            });
        }
        let blocks: Vec<BlockSoA> = block_slots
            .into_iter()
            .map(|m| m.into_inner().expect("block slot").expect("p2m done"))
            .collect();
        self.gravity_ws.upward_pass(&self.tree, &blocks);
        if !self.config.use_interaction_cache {
            // Cache-off ablation: force the dual traversal every step.
            self.interaction_cache.invalidate();
        }
        let report =
            self.interaction_cache
                .ensure(&self.tree, &self.gravity_ws.moments, self.config.theta);
        let accel_slots: Vec<AccelSlot> = (0..n).map(|_| Mutex::new(None)).collect();
        {
            let kernels = GravityKernels {
                multipole: &multipole_dispatch,
                monopole: &monopole_dispatch,
                simd: policy,
            };
            let gctx = GravityBatchCtx {
                tree: &self.tree,
                moments: &self.gravity_ws.moments,
                blocks: &blocks,
                leaf_pos: &self.gravity_ws.leaf_pos,
                leaves: &leaves,
                lists: self.interaction_cache.lists(),
                kernels: &kernels,
                scratch: &self.batch_scratch,
            };
            let g_env = &g_env;
            aggregate::run_gravity_stage(
                &handle,
                &gctx,
                agg_cfg,
                &self.agg,
                false,
                &|s, e| g_env.record(s, e),
                &accel_slots,
            );
        }
        let accels: Vec<AccelEntry> = accel_slots
            .into_iter()
            .map(|m| m.into_inner().expect("accel slot").expect("gravity done"))
            .collect();
        drop(gravity_span);

        // 4. Hydro kernels (batched, pure): each batch writes one fused
        //    state buffer — a batch-sized class of the recycle pool.
        let hydro_span = trace::span(Cat::Phase, "hydro_step");
        let n_hydro_batches = AggregationRegion::batch_count(n, agg_cfg.hydro);
        let batch_states: Vec<Mutex<Option<Vec<[f64; NF]>>>> =
            (0..n_hydro_batches).map(|_| Mutex::new(None)).collect();
        {
            let h_env = &h_env;
            let (hctx, stage_slots, batch_states) = (&hctx, &stage_slots, &batch_states);
            aggregate::for_each_batch(&handle, n, agg_cfg.hydro, &self.agg, |bid, batch| {
                aggregate::run_hydro_batch(
                    hctx,
                    batch,
                    dt,
                    false,
                    &|s, e| h_env.record(s, e),
                    stage_slots,
                    &batch_states[bid],
                )
            });
        }

        // 5. Apply hydro update + gravity source terms: walk the fused
        //    buffers in batch order and slice leaves back out — the same
        //    leaf order (and the same bits) as the per-leaf apply.
        let mut pos = 0usize;
        for slot in batch_states {
            let fused = slot.into_inner().expect("state slot").expect("hydro done");
            for k in 0..fused.len() / CELLS {
                let grid = self.tree.subgrid_mut(leaves[pos]);
                hydro::apply_interior(grid, &fused[k * CELLS..(k + 1) * CELLS]);
                hydro::apply_gravity_source(grid, &accels[pos].0, dt);
                pos += 1;
            }
            self.pool.release(fused);
        }
        assert_eq!(pos, n, "fused batches cover every leaf exactly once");
        drop(hydro_span);

        self.accumulate_overlap(&g_env, &h_env);
        self.account_step(&leaves, &accels, report);
        self.sim_time += dt;
        dt
    }

    /// The futurized step: one per-step task graph instead of four phase
    /// barriers, expressed as *continuations* — no task ever blocks on a
    /// condition another task must produce (a help-stealing waiter could
    /// end up nested above its own producer on one stack and deadlock).
    /// Instead, the last *batch* task of each root phase to retire runs the
    /// serial join and fans the dependent batch tasks out in a nested
    /// scope (the aggregation regions seal batches of `--*_host_tasks`
    /// leaves; batch size 1 degenerates to the per-leaf graph):
    ///
    /// ```text
    /// cfl batches  ──last──► dt reduction ──► hydro batches
    /// p2m batches  ──last──► M2M + lists  ──► gravity batches
    /// ```
    ///
    /// Each hydro batch needs only the global `dt`; a gravity batch
    /// overlaps hydro batches on other workers, and the *serial* M2M/list
    /// pass is hidden behind CFL/hydro work — the paper's HPX futurization
    /// argument at sub-grid granularity. The per-leaf arithmetic and the
    /// serial apply order are identical to the barriered step, so the
    /// states match bitwise at every batch size.
    fn step_futurized(&mut self, runtime: &Runtime) -> f64 {
        let handle = runtime.handle();
        let hydro_dispatch = Dispatch::new(self.config.hydro_kernel, &handle, 4);
        let multipole_dispatch = Dispatch::new(self.config.multipole_kernel, &handle, 4);
        let monopole_dispatch = Dispatch::new(self.config.monopole_kernel, &handle, 4);
        let policy = self.config.simd_policy();
        let cfl_factor = self.config.cfl;
        let theta = self.config.theta;
        let agg_cfg = self.config.aggregation();

        let leaves: Vec<NodeId> = self.tree.leaf_ids().to_vec();
        self.exchange_ghosts(&handle, &leaves);
        let n = leaves.len();
        let n_hydro_batches = AggregationRegion::batch_count(n, agg_cfg.hydro);
        let n_p2m_batches = AggregationRegion::batch_count(n, agg_cfg.multipole);

        if !self.config.use_interaction_cache {
            self.interaction_cache.invalidate();
        }
        // The serial M2M/list pass runs inside a task, concurrent with
        // per-leaf hydro — so the gravity state is moved in (claimed by the
        // continuation) and published back out afterwards (same workspace
        // and cache objects; their stats accumulate across steps).
        let ws_in = std::mem::replace(&mut self.gravity_ws, GravityWorkspace::new());
        let cache_in = std::mem::replace(&mut self.interaction_cache, InteractionCache::new());
        let gravity_state: Mutex<Option<(GravityWorkspace, InteractionCache)>> =
            Mutex::new(Some((ws_in, cache_in)));

        let speeds: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let stage_slots: Vec<Mutex<Option<HydroStage>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let block_slots: Vec<Mutex<Option<BlockSoA>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let accel_slots: Vec<AccelSlot> = (0..n).map(|_| Mutex::new(None)).collect();
        let batch_states: Vec<Mutex<Option<Vec<[f64; NF]>>>> =
            (0..n_hydro_batches).map(|_| Mutex::new(None)).collect();
        // The continuation counters count *batches*, not leaves: the last
        // CFL batch to retire runs the dt reduction, the last P2M batch
        // runs the moments pass — the coalescer's seal-on-flush idiom
        // applied to the task graph's joins.
        let cfl_remaining = AtomicU64::new(n_hydro_batches as u64);
        let p2m_remaining = AtomicU64::new(n_p2m_batches as u64);
        let dt_bits = AtomicU64::new(0);
        let published: OnceLock<GravityHandoff> = OnceLock::new();
        let g_env = Envelope::new();
        let h_env = Envelope::new();

        {
            let tree = &self.tree;
            let kernels = GravityKernels {
                multipole: &multipole_dispatch,
                monopole: &monopole_dispatch,
                simd: policy,
            };
            let kernels = &kernels;
            let hctx = HydroBatchCtx {
                tree,
                leaves: &leaves,
                dispatch: &hydro_dispatch,
                policy,
                state_pool: &self.pool,
                stage_pool: &self.stage_pool,
            };
            let hctx = &hctx;
            let batch_scratch = &self.batch_scratch;
            let agg = &self.agg;
            let handle_ref = &handle;
            let leaves_ref = &leaves;
            let (speeds, stage_slots, block_slots) = (&speeds, &stage_slots, &block_slots);
            let (accel_slots, batch_states) = (&accel_slots, &batch_states);
            let (cfl_remaining, p2m_remaining) = (&cfl_remaining, &p2m_remaining);
            let (dt_bits, published, gravity_state) = (&dt_bits, &published, &gravity_state);
            let g_record: &(dyn Fn(u64, u64) + Sync) = &|s, e| g_env.record(s, e);
            let h_record: &(dyn Fn(u64, u64) + Sync) = &|s, e| h_env.record(s, e);

            scope(&handle, |sc| {
                // Roots of the graph: CFL batches and P2M batches — no
                // dependencies, all runnable now. The regions seal full
                // batches as the index streams through and flush the ragged
                // tails; each sealed batch is one spawned task covering
                // `--*_host_tasks` leaves.
                let spawn_cfl = |batch: Vec<usize>| {
                    sc.spawn(move || {
                        {
                            let _launch = aggregate::launch_span(agg_cfg.hydro);
                            aggregate::run_cfl_batch(hctx, &batch, true, speeds, stage_slots);
                        }
                        if cfl_remaining.fetch_sub(1, Ordering::SeqCst) != 1 {
                            return;
                        }
                        // Continuation of the last CFL batch: global dt
                        // (deterministic leaf-order fold, identical to the
                        // barriered reduction), then the hydro batch
                        // fan-out.
                        let dt = {
                            let _span = trace::span(Cat::Phase, "cfl_reduction");
                            let max_rate = speeds
                                .iter()
                                .map(|s| f64::from_bits(s.load(Ordering::Acquire)))
                                .fold(1e-30_f64, f64::max);
                            cfl_factor / max_rate
                        };
                        dt_bits.store(dt.to_bits(), Ordering::Release);
                        scope(handle_ref, |hsc| {
                            let mut region = AggregationRegion::new(agg_cfg.hydro, agg);
                            let spawn_hydro = |(bid, hbatch): (usize, Vec<usize>)| {
                                hsc.spawn(move || {
                                    let _launch = aggregate::launch_span(agg_cfg.hydro);
                                    aggregate::run_hydro_batch(
                                        hctx,
                                        &hbatch,
                                        dt,
                                        true,
                                        h_record,
                                        stage_slots,
                                        &batch_states[bid],
                                    );
                                });
                            };
                            for idx in 0..leaves_ref.len() {
                                if let Some(sealed) = region.push(idx) {
                                    spawn_hydro(sealed);
                                }
                            }
                            if let Some(sealed) = region.flush() {
                                spawn_hydro(sealed);
                            }
                        });
                    });
                };
                let spawn_p2m = |batch: Vec<usize>| {
                    sc.spawn(move || {
                        {
                            let _launch = aggregate::launch_span(agg_cfg.multipole);
                            aggregate::run_p2m_batch(tree, leaves_ref, &batch, true, block_slots);
                        }
                        if p2m_remaining.fetch_sub(1, Ordering::SeqCst) != 1 {
                            return;
                        }
                        // Continuation of the last P2M batch: the barriered
                        // step's serial M2M + interaction-list section (now
                        // hidden behind CFL/hydro work on other workers),
                        // then the aggregated gravity fan-out.
                        let (mut ws, mut cache) = gravity_state
                            .lock()
                            .expect("gravity state")
                            .take()
                            .expect("claimed once");
                        let blocks: Vec<BlockSoA> = block_slots
                            .iter()
                            .map(|m| m.lock().expect("block slot").take().expect("p2m done"))
                            .collect();
                        let report = {
                            let _span = trace::span(Cat::Phase, "gravity_moments");
                            ws.upward_pass(tree, &blocks);
                            cache.ensure(tree, &ws.moments, theta)
                        };
                        {
                            let gctx = GravityBatchCtx {
                                tree,
                                moments: &ws.moments,
                                blocks: &blocks,
                                leaf_pos: &ws.leaf_pos,
                                leaves: leaves_ref,
                                lists: cache.lists(),
                                kernels,
                                scratch: batch_scratch,
                            };
                            aggregate::run_gravity_stage(
                                handle_ref,
                                &gctx,
                                agg_cfg,
                                agg,
                                true,
                                g_record,
                                accel_slots,
                            );
                        }
                        let handoff = GravityHandoff { ws, cache, report };
                        assert!(
                            published.set(handoff).is_ok(),
                            "gravity continuation publishes exactly once"
                        );
                    });
                };
                let mut cfl_region = AggregationRegion::new(agg_cfg.hydro, agg);
                for idx in 0..n {
                    if let Some((_, batch)) = cfl_region.push(idx) {
                        spawn_cfl(batch);
                    }
                }
                if let Some((_, batch)) = cfl_region.flush() {
                    spawn_cfl(batch);
                }
                let mut p2m_region = AggregationRegion::new(agg_cfg.multipole, agg);
                for idx in 0..n {
                    if let Some((_, batch)) = p2m_region.push(idx) {
                        spawn_p2m(batch);
                    }
                }
                if let Some((_, batch)) = p2m_region.flush() {
                    spawn_p2m(batch);
                }
            });
        }

        // Restore the gravity state the moments task took.
        let handoff = published.into_inner().expect("moments task ran");
        self.gravity_ws = handoff.ws;
        self.interaction_cache = handoff.cache;
        let report = handoff.report;
        let dt = f64::from_bits(dt_bits.load(Ordering::Acquire));

        // Serial apply, identical order to the barriered step: walk the
        // fused hydro buffers in batch order and slice leaves back out.
        let accels: Vec<AccelEntry> = accel_slots
            .into_iter()
            .map(|m| m.into_inner().expect("accel slot").expect("gravity done"))
            .collect();
        let mut pos = 0usize;
        for slot in batch_states {
            let fused = slot.into_inner().expect("state slot").expect("hydro done");
            for k in 0..fused.len() / CELLS {
                let grid = self.tree.subgrid_mut(leaves[pos]);
                hydro::apply_interior(grid, &fused[k * CELLS..(k + 1) * CELLS]);
                hydro::apply_gravity_source(grid, &accels[pos].0, dt);
                pos += 1;
            }
            self.pool.release(fused);
        }
        assert_eq!(pos, n, "fused batches cover every leaf exactly once");

        self.accumulate_overlap(&g_env, &h_env);
        self.account_step(&leaves, &accels, report);
        self.sim_time += dt;
        dt
    }

    /// Fold one step's gravity/hydro kernel-family envelopes into the run's
    /// overlap totals (the `/runtime/overlap_ratio` counter).
    fn accumulate_overlap(&mut self, g: &Envelope, h: &Envelope) {
        if let (Some((g0, g1)), Some((h0, h1))) = (g.interval(), h.interval()) {
            self.overlap.gravity_ns += g1 - g0;
            self.overlap.hydro_ns += h1 - h0;
            self.overlap.overlap_ns += g1.min(h1).saturating_sub(g0.max(h0));
        }
    }

    /// Post-step ghost and work accounting, shared by both step modes.
    fn account_step(
        &mut self,
        leaves: &[NodeId],
        accels: &[(Vec<[f64; 3]>, u64, u64)],
        report: EnsureReport,
    ) {
        // Ghost-path accounting (for the machine projection).
        // Values per face slab: NF × NG × NX².
        let slab_values = (crate::star::NF * crate::subgrid::NG * 8 * 8) as u64;
        for &leaf in leaves {
            for face in Face::ALL {
                if self.tree.ghost_fast_path(leaf, face) {
                    self.work.ghost_slab_bytes += slab_values * 8;
                } else {
                    self.work.ghost_samples += slab_values;
                }
            }
        }

        // Work accounting. Far (M2L) interactions are charged on the
        // SIMD-*padded* source count: the remainder pack of each far list
        // still occupies full vector lanes, and the projection must see
        // that waste. Near lists stream 64-block leaves (a multiple of
        // every width), so padding is a no-op there.
        let cells = self.tree.cell_count() as u64;
        self.work.hydro_flops += cells * hydro::HYDRO_FLOPS_PER_CELL;
        self.work.bytes += cells * hydro::HYDRO_BYTES_PER_CELL;
        let lanes = self.config.simd_policy().lanes() as u64;
        let near_total: u64 = accels.iter().map(|(_, _, near)| near).sum();
        let far_padded: u64 = accels
            .iter()
            .map(|(_, far, _)| rv_machine::simd_padded_interactions(*far, lanes))
            .sum();
        let far_inter = far_padded * gravity::BLOCKS as u64;
        let near_inter = near_total * (gravity::BLOCKS * gravity::BLOCKS) as u64;
        self.work.far_interactions += far_inter;
        self.work.near_interactions += near_inter;
        self.work.gravity_flops += far_inter * gravity::MULTIPOLE_FLOPS_PER_INTERACTION
            + near_inter * gravity::MONOPOLE_FLOPS_PER_INTERACTION;
        // MAC evaluations only ran on a cache miss, and a *partial* rebuild
        // only traversed the dirty leaves — the ensure report carries the
        // exact entry count of the lists that were re-traversed (every
        // accepted or opened node was MAC-tested). Retained lists cost 0.
        self.work.mac_evals += report.mac_evals;
        self.work.gravity_flops += report.mac_evals * gravity::MAC_FLOPS_PER_EVAL;
    }

    /// Run `stop_step` steps on a fresh runtime of `threads` workers and
    /// report throughput — one point of Fig. 7.
    pub fn run(&mut self, threads: usize) -> RunMetrics {
        let runtime = Runtime::new(threads);
        self.run_on(&runtime)
    }

    /// Run `stop_step` steps on an existing runtime.
    ///
    /// Honours the observability flags: `--trace-out=FILE` records a
    /// Chrome trace of the run (scheduler tasks, driver phases, gravity
    /// kernels) and `--counter-table` prints per-step counter deltas.
    pub fn run_on(&mut self, runtime: &Runtime) -> RunMetrics {
        let tracing = self.config.trace_out.is_some();
        if tracing {
            trace::reset();
            trace::set_enabled(true);
        }
        let mut registry = CounterRegistry::new();
        runtime
            .handle()
            .register_counters(&mut registry, "/runtime");
        runtime.reset_stats();
        // The background sampler shares the registry; the driver-owned
        // counters (`counters_into`, borrowing `&self`) are folded into the
        // final snapshot only — the time-series covers the registered
        // providers (`/runtime/...` including the imbalance gauge).
        let registry = std::sync::Arc::new(registry);
        let sampler = self.config.sample_interval_ms.map(|ms| {
            apex_lite::Sampler::start(
                std::sync::Arc::clone(&registry),
                std::time::Duration::from_millis(ms),
            )
        });
        let start = Instant::now();
        let mut steps = 0;
        let mut prev = self.sample_counters(&registry);
        let mut step_deltas: Vec<CounterSnapshot> = Vec::new();
        for _ in 0..self.config.stop_step {
            self.step(runtime);
            steps += 1;
            if self.config.counter_table {
                let cur = self.sample_counters(&registry);
                step_deltas.push(cur.delta(&prev));
                prev = cur;
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        rv_machine::memory::note_arena_bytes(self.tree.resident_bytes());
        let mut counters = self.sample_counters(&registry);
        rv_machine::energy_counters_into(
            &mut counters,
            rv_machine::CpuArch::Jh7110,
            1,
            runtime.worker_stats().len() as u32,
            elapsed,
        );
        if self.config.counter_table {
            print!(
                "{}",
                apex_lite::render_step_table("octotiger per-step counters", &step_deltas)
            );
            print!(
                "{}",
                apex_lite::render_table("octotiger run totals", &counters)
            );
        }
        let mut series = match sampler {
            Some(s) => s.stop(),
            None => apex_lite::TimeSeries::default(),
        };
        if self.config.metrics_out.is_some() && series.samples == 0 {
            // `--metrics-out` without a sampling cadence: one final sample
            // (including the driver-owned counters) so the file is never
            // empty.
            series.push(trace::now_ns(), &counters);
        }
        if let Some(path) = &self.config.metrics_out {
            if let Err(e) = std::fs::write(path, series.render_csv()) {
                eprintln!("warning: failed to write metrics to {path}: {e}");
            }
        }
        if let Some(path) = self.config.trace_out.clone() {
            trace::set_enabled(false);
            let t = trace::drain();
            if let Err(e) = std::fs::write(&path, apex_lite::export_with_counters(&t, &series)) {
                eprintln!("warning: failed to write trace to {path}: {e}");
            }
        }
        let cell_count = self.tree.cell_count();
        let cells_processed = cell_count as u64 * u64::from(steps);
        RunMetrics {
            steps,
            leaf_count: self.tree.leaf_count(),
            cell_count,
            cells_processed,
            elapsed_seconds: elapsed,
            cells_per_second: cells_processed as f64 / elapsed.max(1e-12),
            runtime_stats: runtime.stats(),
            work: self.work,
            cache: self.interaction_cache.stats(),
            sim_time: self.sim_time,
            overlap_ratio: self.overlap_ratio(),
            peak_rss_bytes: rv_machine::memory::peak_rss_bytes(),
            counters,
            counter_samples: series.samples,
        }
    }

    /// Sample the registry and fold in the driver-owned counters.
    fn sample_counters(&self, registry: &CounterRegistry) -> CounterSnapshot {
        let mut snap = registry.sample();
        self.counters_into(&mut snap);
        snap
    }

    /// Write the driver's `/gravity/…` and `/work/…` counters into `snap`.
    /// These live on `&self` (not behind a registry provider) because the
    /// driver is single-owner mutable state.
    pub fn counters_into(&self, snap: &mut CounterSnapshot) {
        let cs = self.interaction_cache.stats();
        snap.set_count("/gravity/cache_hits", cs.hits);
        snap.set_count("/gravity/cache_misses", cs.misses);
        snap.set_count("/gravity/cache/partial_rebuilds", cs.partial_rebuilds);
        snap.set_count("/gravity/cache/leaves_rebuilt", cs.leaves_rebuilt);
        snap.set_count("/gravity/cache/leaves_retained", cs.leaves_retained);
        snap.set_count("/regrid/sweeps", self.regrid_sweeps);
        snap.set_count("/regrid/leaves_refined", self.regrid_leaves);
        snap.set_count(
            "/runtime/peak_rss_bytes",
            rv_machine::memory::peak_rss_bytes(),
        );
        snap.set_count("/gravity/far_interactions", self.work.far_interactions);
        snap.set_count("/gravity/near_interactions", self.work.near_interactions);
        snap.set_count("/gravity/mac_evals", self.work.mac_evals);
        snap.set_count("/work/hydro_flops", self.work.hydro_flops);
        snap.set_count("/work/gravity_flops", self.work.gravity_flops);
        snap.set_count("/work/bytes", self.work.bytes);
        snap.set_count("/work/ghost_samples", self.work.ghost_samples);
        snap.set_count("/work/ghost_slab_bytes", self.work.ghost_slab_bytes);
        snap.set_count("/runtime/overlap_ns", self.overlap.overlap_ns);
        snap.set_gauge("/runtime/overlap_ratio", self.overlap_ratio());
        let agg = self.agg.snapshot();
        snap.set_count("/work/aggregation/fused_launches", agg.fused_launches);
        snap.set_count("/work/aggregation/seals_on_full", agg.seals_on_full);
        snap.set_count("/work/aggregation/seals_on_flush", agg.seals_on_flush);
        snap.set_gauge("/work/aggregation/batch_size_avg", agg.batch_size_avg());
    }

    /// Work-aggregation seal/launch counters accumulated so far.
    pub fn aggregation_stats(&self) -> crate::aggregate::AggregationSnapshot {
        self.agg.snapshot()
    }

    /// Fraction of the shorter kernel family's wall-clock envelope that
    /// overlapped the other family, accumulated over all steps so far.
    /// Barriered runs report ~0 (phases are serialized); futurized runs on
    /// multiple workers report a positive ratio — the direct evidence for
    /// the paper's "interleaving of the two solvers" claim.
    pub fn overlap_ratio(&self) -> f64 {
        let denom = self.overlap.gravity_ns.min(self.overlap.hydro_ns);
        if denom == 0 {
            0.0
        } else {
            self.overlap.overlap_ns as f64 / denom as f64
        }
    }

    /// Hit/miss counters of the SoA hydro staging-buffer pool.
    pub fn stage_pool_stats(&self) -> PoolStats {
        self.stage_pool.stats()
    }

    /// Work counters accumulated so far.
    pub fn work(&self) -> WorkEstimate {
        self.work
    }

    /// Interaction-list cache counters accumulated so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.interaction_cache.stats()
    }

    /// Refine one leaf mid-run (dynamic AMR) as a serial single-leaf sweep.
    /// Bumps the octree's topology generation, which the interaction-list
    /// cache and gravity workspace pick up *incrementally* on the next step
    /// (only the split's neighbour cone re-traverses). For whole batches use
    /// [`Driver::regrid`], which fans the prolongation out as tasks.
    pub fn refine_leaf(&mut self, leaf: NodeId) -> [NodeId; 8] {
        if let Some(kids) = self.tree.children_of(leaf) {
            return kids; // no-op refine: no sweep, no span
        }
        // One phase span per sweep (not per split: the grading cascade's
        // splits all belong to this sweep).
        let _span = trace::span(Cat::Phase, "regrid");
        let splits = self.tree.regrid(&[leaf]);
        self.regrid_sweeps += 1;
        self.regrid_leaves += splits.len() as u64;
        rv_machine::memory::note_arena_bytes(self.tree.resident_bytes());
        self.tree.children_of(leaf).expect("sweep split the leaf")
    }

    /// Refine a batch of leaves mid-run as **one** regrid sweep driven as an
    /// `amt` task graph: serial structural split + 2:1 grading closure, the
    /// prolongation of every split fanned out as tasks (batched
    /// `--regrid_host_tasks` splits per task, the aggregation idiom), then a
    /// serial install with a single generation bump. One `regrid` phase
    /// span wraps the whole sweep — a 1000-leaf regrid used to emit 1000.
    pub fn regrid(&mut self, runtime: &Runtime, requested: &[NodeId]) -> RegridReport {
        let _span = trace::span(Cat::Phase, "regrid");
        let splits = self.tree.begin_regrid(requested);
        if splits.is_empty() {
            return RegridReport::default();
        }
        let batch = self.config.regrid_host_tasks.max(1);
        let mut grids: Vec<Option<[SubGrid; 8]>> = (0..splits.len()).map(|_| None).collect();
        {
            let tree = &self.tree;
            let handle = runtime.handle();
            scope(&handle, |sc| {
                for (slots, parents) in grids.chunks_mut(batch).zip(splits.chunks(batch)) {
                    sc.spawn(move || {
                        for (slot, &(parent, _)) in slots.iter_mut().zip(parents) {
                            *slot = Some(tree.prolongate_children(parent));
                        }
                    });
                }
            });
        }
        let installs = splits
            .iter()
            .zip(grids)
            .map(|(&(parent, _), g)| (parent, g.expect("scope prolongated every split")))
            .collect();
        self.tree.finish_regrid(installs);
        self.regrid_sweeps += 1;
        self.regrid_leaves += splits.len() as u64;
        rv_machine::memory::note_arena_bytes(self.tree.resident_bytes());
        RegridReport {
            leaves_refined: splits.len(),
        }
    }

    /// Current simulation time.
    pub fn sim_time(&self) -> f64 {
        self.sim_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel_backend::KernelType;
    use crate::star::field;

    fn tiny_config(kernel: KernelType) -> OctoConfig {
        OctoConfig {
            max_level: 1,
            stop_step: 2,
            threads: 2,
            ..OctoConfig::with_all_kernels(kernel)
        }
    }

    #[test]
    fn run_produces_metrics() {
        let mut d = Driver::new(tiny_config(KernelType::KokkosSerial));
        let m = d.run(2);
        assert_eq!(m.steps, 2);
        assert_eq!(m.cell_count, m.leaf_count * CELLS);
        assert_eq!(m.cells_processed, 2 * m.cell_count as u64);
        assert!(m.cells_per_second > 0.0);
        assert!(m.work.flops() > 0);
        assert!(m.sim_time > 0.0);
        assert!(m.runtime_stats.tasks_spawned > 0);
    }

    #[test]
    fn dt_is_positive_and_stable() {
        let mut d = Driver::new(tiny_config(KernelType::Legacy));
        let rt = Runtime::new(2);
        let dt1 = d.step(&rt);
        let dt2 = d.step(&rt);
        assert!(dt1 > 0.0 && dt2 > 0.0);
        // Quasi-static star: dt should not collapse between steps.
        assert!(dt2 > 0.25 * dt1, "dt collapsed: {dt1} -> {dt2}");
    }

    #[test]
    fn mass_approximately_conserved_over_steps() {
        // The star is in near-equilibrium; over two short steps mass change
        // should be tiny (boundary outflow of floor material only).
        let mut d = Driver::new(tiny_config(KernelType::KokkosSerial));
        let before = d.tree().total_mass();
        let rt = Runtime::new(2);
        d.step(&rt);
        d.step(&rt);
        let after = d.tree().total_mass();
        assert!(
            ((after - before) / before).abs() < 0.01,
            "mass drifted {before} -> {after}"
        );
    }

    #[test]
    fn density_stays_positive_everywhere() {
        let mut d = Driver::new(tiny_config(KernelType::KokkosSerial));
        let rt = Runtime::new(2);
        for _ in 0..3 {
            d.step(&rt);
        }
        for &leaf in d.tree().leaf_ids() {
            let g = d.tree().subgrid(leaf);
            for c in 0..CELLS {
                let (i, j, k) = crate::hydro::cell_coords(c);
                assert!(g.at(field::RHO, i, j, k) > 0.0);
                assert!(g.at(field::EGAS, i, j, k) > 0.0);
            }
        }
    }

    #[test]
    fn all_kernel_backends_run_and_agree_on_structure() {
        let mut results = Vec::new();
        for kind in KernelType::ALL {
            let mut d = Driver::new(tiny_config(kind));
            let m = d.run(2);
            results.push((kind, m.leaf_count, m.sim_time));
        }
        // Same tree and same dt sequence regardless of backend.
        assert!(results.windows(2).all(|w| w[0].1 == w[1].1));
        for w in results.windows(2) {
            assert!(
                (w[0].2 - w[1].2).abs() < 1e-12,
                "sim time must not depend on dispatch backend: {results:?}"
            );
        }
    }

    #[test]
    fn interaction_cache_hits_across_steps() {
        let mut d = Driver::new(OctoConfig {
            stop_step: 4,
            ..tiny_config(KernelType::KokkosSerial)
        });
        let m = d.run(2);
        // Static topology: one miss on the first step, hits after.
        assert_eq!(m.cache.misses, 1);
        assert_eq!(m.cache.hits, 3);
        // Cache-off ablation rebuilds every step.
        let mut off = Driver::new(OctoConfig {
            stop_step: 4,
            use_interaction_cache: false,
            ..tiny_config(KernelType::KokkosSerial)
        });
        let m_off = off.run(2);
        assert_eq!(m_off.cache.misses, 4);
        assert_eq!(m_off.cache.hits, 0);
        assert!(
            m_off.work.mac_evals > m.work.mac_evals,
            "cache hits must not be billed MAC evaluations"
        );
    }

    #[test]
    fn noop_refine_keeps_cache_warm() {
        // Refining an already-refined node must not bump the topology
        // generation, so the interaction-list cache survives.
        let mut d = Driver::new(tiny_config(KernelType::KokkosSerial));
        let rt = Runtime::new(2);
        d.step(&rt);
        let victim = d.tree().leaf_ids()[0];
        let kids = d.refine_leaf(victim);
        d.step(&rt); // miss: topology changed
        let gen = d.tree().generation();
        assert_eq!(d.refine_leaf(victim), kids, "no-op refine returns children");
        assert_eq!(d.tree().generation(), gen);
        d.step(&rt); // hit: the cache must still be valid
        assert_eq!(d.cache_stats().misses, 2);
        assert_eq!(d.cache_stats().hits, 1);
    }

    #[test]
    fn refinement_between_solves_matches_uncached_driver() {
        // The ISSUE's regression test: refining the octree between solves
        // must invalidate the interaction-list cache, so a cached run stays
        // bitwise identical to a cache-off run.
        let cfg_on = tiny_config(KernelType::KokkosSerial);
        let cfg_off = OctoConfig {
            use_interaction_cache: false,
            ..cfg_on.clone()
        };
        let mut d_on = Driver::new(cfg_on);
        let mut d_off = Driver::new(cfg_off);
        let rt = Runtime::new(2);
        d_on.step(&rt);
        d_off.step(&rt);
        let leaf_on = d_on.tree().leaf_ids()[0];
        let leaf_off = d_off.tree().leaf_ids()[0];
        assert_eq!(leaf_on, leaf_off);
        let gen_before = d_on.tree().generation();
        d_on.refine_leaf(leaf_on);
        d_off.refine_leaf(leaf_off);
        assert!(d_on.tree().generation() > gen_before);
        d_on.step(&rt);
        d_off.step(&rt);
        assert_eq!(d_on.tree().leaf_count(), d_off.tree().leaf_count());
        for (&a, &b) in d_on.tree().leaf_ids().iter().zip(d_off.tree().leaf_ids()) {
            assert_eq!(a, b);
            let ga = d_on.tree().subgrid(a).interior_data();
            let gb = d_off.tree().subgrid(b).interior_data();
            assert_eq!(ga, gb, "cached run diverged from uncached after refine");
        }
        // Both steps of the cached run were misses: the initial build and
        // the rebuild forced by the generation bump.
        assert_eq!(d_on.cache_stats().misses, 2);
        assert_eq!(d_on.cache_stats().hits, 0);
    }

    #[test]
    fn work_estimate_scales_with_steps() {
        let mut d1 = Driver::new(OctoConfig {
            stop_step: 1,
            ..tiny_config(KernelType::KokkosSerial)
        });
        let mut d2 = Driver::new(OctoConfig {
            stop_step: 2,
            ..tiny_config(KernelType::KokkosSerial)
        });
        let w1 = d1.run(1).work;
        let w2 = d2.run(1).work;
        assert_eq!(w2.hydro_flops, 2 * w1.hydro_flops);
        assert!(w2.gravity_flops >= w1.gravity_flops * 2 * 9 / 10);
    }
}
