//! Kernel backend selection — the three configurations of the paper's
//! Fig. 7 node-level scaling experiment.

use serde::{Deserialize, Serialize};

/// How a compute kernel is dispatched on one sub-grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelType {
    /// The "old" hand-written kernels predating the Kokkos port
    /// (Octo-Tiger compiled without Kokkos).
    Legacy,
    /// Kokkos kernels in the Serial execution space: each kernel invocation
    /// runs inline on the calling task's core; multicore utilization comes
    /// from concurrent per-sub-grid kernel launches. The paper found this
    /// *fastest* on the 4-core boards (§6.2.1).
    KokkosSerial,
    /// Kokkos kernels in the HPX execution space: each kernel is split into
    /// further `amt` tasks.
    KokkosHpx,
}

impl KernelType {
    /// All three Fig. 7 configurations, in the figure's legend order.
    pub const ALL: [KernelType; 3] = [
        KernelType::Legacy,
        KernelType::KokkosSerial,
        KernelType::KokkosHpx,
    ];

    /// Parse the paper's CLI spelling (`KOKKOS` means the Kokkos kernels
    /// with the Serial host execution space, the configuration of
    /// Listings 2–3).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "LEGACY" | "OLD" => Ok(KernelType::Legacy),
            "KOKKOS" | "KOKKOS_SERIAL" => Ok(KernelType::KokkosSerial),
            "KOKKOS_HPX" => Ok(KernelType::KokkosHpx),
            other => Err(format!("unknown kernel type {other:?}")),
        }
    }

    /// Label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            KernelType::Legacy => "HPX (no Kokkos)",
            KernelType::KokkosSerial => "Kokkos Serial space",
            KernelType::KokkosHpx => "Kokkos HPX space",
        }
    }
}

/// SIMD width policy for the gravity kernels — the second, orthogonal axis
/// of kernel configuration. [`KernelType`] picks the *execution space*
/// (where the per-leaf loops run); `SimdPolicy` picks the *data-parallel
/// width* of the inner interaction loops, mirroring how the real Octo-Tiger
/// combines Kokkos execution spaces with `Kokkos::Experimental::simd` types
/// ("From Merging Frameworks to Merging Stars", Daiß et al. 2022).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdPolicy {
    /// Reference scalar AoS-order loops — kept as an always-available
    /// backend so agreement tests keep the vector path honest. This is
    /// also what the RISC-V boards run (no V extension, Table 2).
    Scalar,
    /// Width-generic `Simd<W>` loops over the SoA block layout;
    /// the width is one of 1, 2, 4, 8.
    Width(usize),
}

impl SimdPolicy {
    /// Widths the kernels are compiled for (monomorphized `Simd<W>` loops).
    pub const SUPPORTED_WIDTHS: [usize; 4] = [1, 2, 4, 8];

    /// Policy from a configured width: `0` selects the scalar reference
    /// path, otherwise the width must be one of [`Self::SUPPORTED_WIDTHS`].
    pub fn from_width(w: usize) -> Result<Self, String> {
        if w == 0 {
            Ok(SimdPolicy::Scalar)
        } else if Self::SUPPORTED_WIDTHS.contains(&w) {
            Ok(SimdPolicy::Width(w))
        } else {
            Err(format!(
                "unsupported SIMD width {w} (use 0 for scalar, or one of 1/2/4/8)"
            ))
        }
    }

    /// The width the target architecture would compile the pack type to
    /// (Table 2's vector length): 8 on A64FX/Skylake, 4 on the EPYC,
    /// 1 on the RISC-V boards.
    pub fn for_arch(arch: rv_machine::CpuArch) -> Self {
        SimdPolicy::Width(kokkos_lite::simd::natural_width(arch).max(1))
    }

    /// Lane count charged by the cost model: scalar and `Width(1)` both
    /// process one interaction per "pack".
    pub fn lanes(self) -> usize {
        match self {
            SimdPolicy::Scalar => 1,
            SimdPolicy::Width(w) => w.max(1),
        }
    }

    /// Label used in figure/bench output.
    pub fn label(self) -> String {
        match self {
            SimdPolicy::Scalar => "scalar".to_string(),
            SimdPolicy::Width(w) => format!("simd{w}"),
        }
    }
}

impl Default for SimdPolicy {
    /// The AMD/Intel AVX2 width — the configuration the acceptance bench
    /// compares against scalar.
    fn default() -> Self {
        SimdPolicy::Width(4)
    }
}

/// Widest vector extension the *host CPU* supports, detected at runtime.
///
/// Bench JSON headers record this next to [`compiled_simd_isa`] so a
/// baseline series mixing machines (or build flags) is self-describing —
/// the paper's Fig. 6/7 cross-ISA comparison depends on knowing which
/// vector unit actually executed.
pub fn host_simd_isa() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            "avx512f"
        } else if std::arch::is_x86_feature_detected!("avx2") {
            "avx2"
        } else if std::arch::is_x86_feature_detected!("avx") {
            "avx"
        } else {
            "sse2"
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        "neon"
    }
    #[cfg(target_arch = "riscv64")]
    {
        // No stable runtime probe for the V extension; report the arch and
        // let `compiled_simd_isa` carry the build-time answer.
        "riscv64"
    }
    #[cfg(not(any(
        target_arch = "x86_64",
        target_arch = "aarch64",
        target_arch = "riscv64"
    )))]
    {
        "unknown"
    }
}

/// Widest vector extension this *binary was compiled for* (`cfg!` — i.e.
/// what `-C target-cpu`/`-C target-feature` enabled). When this lags
/// [`host_simd_isa`], wide `Simd<f64, 8>` packs lower to split narrow ops;
/// the committed benches record both so W8-vs-W4 numbers are interpretable.
pub fn compiled_simd_isa() -> &'static str {
    if cfg!(target_feature = "avx512f") {
        "avx512f"
    } else if cfg!(target_feature = "avx2") {
        "avx2"
    } else if cfg!(target_feature = "avx") {
        "avx"
    } else if cfg!(target_feature = "sse2") {
        "sse2"
    } else if cfg!(target_feature = "neon") {
        "neon"
    } else if cfg!(target_feature = "v") {
        "rvv"
    } else {
        "baseline"
    }
}

/// Runtime dispatcher for one kernel backend. Built once per run from the
/// configured [`KernelType`]; all Octo-Tiger kernels (hydro, multipole,
/// monopole) funnel their per-cell loops through it, so switching the CLI
/// flag really switches the execution path, as in the paper.
#[derive(Clone)]
pub enum Dispatch {
    /// Hand-written loops, no Kokkos involved.
    Legacy,
    /// Kokkos kernels on the Serial execution space.
    KokkosSerial,
    /// Kokkos kernels on the HPX execution space (kernel split into tasks).
    KokkosHpx(kokkos_lite::HpxSpace),
}

impl Dispatch {
    /// Build the dispatcher for `kind`. `handle` is only used by the HPX
    /// execution space; `tasks_per_kernel` is the §3.2 knob (the paper's
    /// 4-core boards want a handful of tasks per kernel).
    pub fn new(kind: KernelType, handle: &amt::Handle, tasks_per_kernel: usize) -> Self {
        match kind {
            KernelType::Legacy => Dispatch::Legacy,
            KernelType::KokkosSerial => Dispatch::KokkosSerial,
            KernelType::KokkosHpx => Dispatch::KokkosHpx(kokkos_lite::HpxSpace::with_chunks(
                handle.clone(),
                tasks_per_kernel.max(1),
            )),
        }
    }

    /// The backend this dispatcher was built for.
    pub fn kind(&self) -> KernelType {
        match self {
            Dispatch::Legacy => KernelType::Legacy,
            Dispatch::KokkosSerial => KernelType::KokkosSerial,
            Dispatch::KokkosHpx(_) => KernelType::KokkosHpx,
        }
    }

    /// Elementwise kernel: `out[i] = f(i)`.
    pub fn fill<T, F>(&self, out: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize) -> T + Send + Sync,
    {
        match self {
            Dispatch::Legacy => {
                for (i, slot) in out.iter_mut().enumerate() {
                    *slot = f(i);
                }
            }
            Dispatch::KokkosSerial => kokkos_lite::parallel_fill(&kokkos_lite::Serial, out, f),
            Dispatch::KokkosHpx(space) => kokkos_lite::parallel_fill(space, out, f),
        }
    }

    /// Row-granular fill kernel: `out` is split into consecutive rows of
    /// `row_len` elements and `f(row, chunk)` writes each row in place —
    /// the shape the explicitly-vectorized hydro kernel needs so one task
    /// owns whole k-rows and can store full `Simd<W>` packs.
    pub fn fill_rows<T, F>(&self, out: &mut [T], row_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Send + Sync,
    {
        match self {
            Dispatch::Legacy => {
                assert!(row_len > 0, "row_len must be positive");
                assert_eq!(out.len() % row_len, 0, "output must be whole rows");
                for (r, chunk) in out.chunks_mut(row_len).enumerate() {
                    f(r, chunk);
                }
            }
            Dispatch::KokkosSerial => {
                kokkos_lite::parallel_fill_rows(&kokkos_lite::Serial, out, row_len, f)
            }
            Dispatch::KokkosHpx(space) => kokkos_lite::parallel_fill_rows(space, out, row_len, f),
        }
    }

    /// Max-reduction kernel over `0..n`.
    pub fn reduce_max<F>(&self, n: usize, f: F) -> f64
    where
        F: Fn(usize) -> f64 + Send + Sync,
    {
        match self {
            Dispatch::Legacy => (0..n).map(f).fold(f64::NEG_INFINITY, f64::max),
            Dispatch::KokkosSerial => kokkos_lite::parallel_reduce_max(
                &kokkos_lite::Serial,
                kokkos_lite::RangePolicy::new(0, n),
                f,
            ),
            Dispatch::KokkosHpx(space) => {
                kokkos_lite::parallel_reduce_max(space, kokkos_lite::RangePolicy::new(0, n), f)
            }
        }
    }

    /// Sum-reduction kernel over `0..n`.
    pub fn reduce_sum<F>(&self, n: usize, f: F) -> f64
    where
        F: Fn(usize) -> f64 + Send + Sync,
    {
        match self {
            Dispatch::Legacy => (0..n).map(f).sum(),
            Dispatch::KokkosSerial => kokkos_lite::parallel_reduce_sum(
                &kokkos_lite::Serial,
                kokkos_lite::RangePolicy::new(0, n),
                f,
            ),
            Dispatch::KokkosHpx(space) => {
                kokkos_lite::parallel_reduce_sum(space, kokkos_lite::RangePolicy::new(0, n), f)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        assert_eq!(
            KernelType::parse("KOKKOS").unwrap(),
            KernelType::KokkosSerial
        );
        assert_eq!(
            KernelType::parse("KOKKOS_HPX").unwrap(),
            KernelType::KokkosHpx
        );
        assert_eq!(KernelType::parse("LEGACY").unwrap(), KernelType::Legacy);
        assert!(KernelType::parse("CUDA").is_err());
    }

    #[test]
    fn labels_distinct() {
        let mut labels: Vec<_> = KernelType::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 3);
    }

    #[test]
    fn all_dispatchers_compute_the_same() {
        let rt = amt::Runtime::new(2);
        for kind in KernelType::ALL {
            let d = Dispatch::new(kind, &rt.handle(), 4);
            assert_eq!(d.kind(), kind);
            let mut out = vec![0u64; 100];
            d.fill(&mut out, |i| (i * i) as u64);
            assert!(out.iter().enumerate().all(|(i, &v)| v == (i * i) as u64));
            let m = d.reduce_max(100, |i| ((i * 37) % 91) as f64);
            assert_eq!(m, 90.0);
            let s = d.reduce_sum(101, |i| i as f64);
            assert_eq!(s, 5050.0);
            let mut rows = vec![0u64; 48];
            d.fill_rows(&mut rows, 8, |r, chunk| {
                for (k, slot) in chunk.iter_mut().enumerate() {
                    *slot = (r * 10 + k) as u64;
                }
            });
            assert_eq!(rows[8 * 3 + 5], 35);
            assert!(rows
                .iter()
                .enumerate()
                .all(|(n, &v)| v == ((n / 8) * 10 + n % 8) as u64));
        }
    }

    #[test]
    fn simd_policy_from_width_and_for_arch() {
        assert_eq!(SimdPolicy::from_width(0).unwrap(), SimdPolicy::Scalar);
        for w in SimdPolicy::SUPPORTED_WIDTHS {
            assert_eq!(SimdPolicy::from_width(w).unwrap(), SimdPolicy::Width(w));
        }
        assert!(SimdPolicy::from_width(3).is_err());
        assert!(SimdPolicy::from_width(16).is_err());
        // Table 2 widths: SVE/AVX-512 = 8, AVX2 = 4, RISC-V scalar = 1.
        assert_eq!(
            SimdPolicy::for_arch(rv_machine::CpuArch::A64fx),
            SimdPolicy::Width(8)
        );
        assert_eq!(
            SimdPolicy::for_arch(rv_machine::CpuArch::Epyc7543),
            SimdPolicy::Width(4)
        );
        assert_eq!(
            SimdPolicy::for_arch(rv_machine::CpuArch::RiscvU74),
            SimdPolicy::Width(1)
        );
        assert_eq!(SimdPolicy::Scalar.lanes(), 1);
        assert_eq!(SimdPolicy::Width(8).lanes(), 8);
        assert_eq!(SimdPolicy::default(), SimdPolicy::Width(4));
        assert_eq!(SimdPolicy::Scalar.label(), "scalar");
        assert_eq!(SimdPolicy::Width(4).label(), "simd4");
    }

    #[test]
    fn simd_isa_probes_return_known_tokens() {
        let known = [
            "avx512f", "avx2", "avx", "sse2", "neon", "riscv64", "rvv", "baseline", "unknown",
        ];
        assert!(known.contains(&host_simd_isa()), "{}", host_simd_isa());
        assert!(
            known.contains(&compiled_simd_isa()),
            "{}",
            compiled_simd_isa()
        );
    }

    #[test]
    fn kokkos_hpx_dispatch_spawns_tasks() {
        let rt = amt::Runtime::new(2);
        rt.reset_stats();
        let d = Dispatch::new(KernelType::KokkosHpx, &rt.handle(), 8);
        let mut out = vec![0.0f64; 4096];
        d.fill(&mut out, |i| i as f64);
        assert!(rt.stats().tasks_spawned > 0);

        rt.reset_stats();
        let ser = Dispatch::new(KernelType::KokkosSerial, &rt.handle(), 8);
        ser.fill(&mut out, |i| i as f64);
        assert_eq!(rt.stats().tasks_spawned, 0, "Serial space spawns nothing");
    }
}
