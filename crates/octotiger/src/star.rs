//! Rotating-star initial model — the `rotating_star.ini` scenario of the
//! paper's §6.2: "a single rotating star with gravity and hydro solvers
//! enabled".
//!
//! The star is an n = 3/2 polytrope (the classical model for the
//! fully-convective stars Octo-Tiger simulates; its consistent adiabatic
//! index is γ = 5/3). The radial structure comes from integrating the
//! Lane–Emden equation
//!
//! ```text
//! θ'' + (2/ξ)θ' + θⁿ = 0,   θ(0) = 1, θ'(0) = 0,   ρ = ρ_c θⁿ
//! ```
//!
//! numerically (RK4); solid-body rotation at a fraction of the Keplerian
//! break-up rate is superimposed. Units are code units with G = 1.

/// Adiabatic index for the n = 3/2 polytrope.
pub const GAMMA: f64 = 5.0 / 3.0;

/// Polytropic index.
pub const POLY_N: f64 = 1.5;

/// Density floor applied outside the star (the "vacuum" every grid code
/// needs).
pub const RHO_FLOOR: f64 = 1.0e-10;

/// Pressure floor.
pub const P_FLOOR: f64 = 1.0e-13;

/// Number of conserved fields: ρ, s_x, s_y, s_z, E.
pub const NF: usize = 5;

/// Conserved-field indices.
pub mod field {
    /// Mass density.
    pub const RHO: usize = 0;
    /// x-momentum density.
    pub const SX: usize = 1;
    /// y-momentum density.
    pub const SY: usize = 2;
    /// z-momentum density.
    pub const SZ: usize = 3;
    /// Total energy density.
    pub const EGAS: usize = 4;
}

/// A solved rotating polytrope.
#[derive(Debug, Clone)]
pub struct RotatingStar {
    /// Outer radius in code units.
    pub radius: f64,
    /// Central density ρ_c.
    pub central_density: f64,
    /// Polytropic constant K (P = K ρ^{5/3}).
    pub k_poly: f64,
    /// Solid-body angular velocity around z.
    pub omega: f64,
    /// Total mass.
    pub mass: f64,
    /// Lane–Emden first zero ξ₁.
    pub xi1: f64,
    alpha: f64,
    /// (ξ, θ) table from the Lane–Emden integration.
    profile: Vec<(f64, f64)>,
}

impl RotatingStar {
    /// Build a star of `radius` and `central_density`, rotating at
    /// `omega_frac` of the Keplerian break-up rate √(GM/R³).
    pub fn new(radius: f64, central_density: f64, omega_frac: f64) -> Self {
        assert!(radius > 0.0 && central_density > 0.0);
        assert!((0.0..1.0).contains(&omega_frac), "break-up or faster");
        let (profile, xi1, dtheta_at_xi1) = integrate_lane_emden(POLY_N);
        let alpha = radius / xi1;
        // α² = (n+1) K ρ_c^{1/n−1} / (4πG)  ⇒  K (G = 1):
        let k_poly = 4.0 * std::f64::consts::PI * alpha * alpha
            / ((POLY_N + 1.0) * central_density.powf(1.0 / POLY_N - 1.0));
        // M = 4π α³ ρ_c ξ₁² |θ'(ξ₁)|.
        let mass = 4.0
            * std::f64::consts::PI
            * alpha.powi(3)
            * central_density
            * xi1
            * xi1
            * dtheta_at_xi1.abs();
        let omega = omega_frac * (mass / radius.powi(3)).sqrt();
        RotatingStar {
            radius,
            central_density,
            k_poly,
            omega,
            mass,
            xi1,
            alpha,
            profile,
        }
    }

    /// The paper's scenario at a scale that fills a [-1, 1]³ domain.
    pub fn paper_default() -> Self {
        RotatingStar::new(0.7, 1.0, 0.2)
    }

    /// Density at radius `r` from the centre (with floor).
    pub fn density(&self, r: f64) -> f64 {
        if r >= self.radius {
            return RHO_FLOOR;
        }
        let xi = r / self.alpha;
        let theta = self.theta_at(xi).max(0.0);
        (self.central_density * theta.powf(POLY_N)).max(RHO_FLOOR)
    }

    /// Polytropic pressure for a given density (with floor).
    pub fn pressure(&self, rho: f64) -> f64 {
        (self.k_poly * rho.powf(GAMMA)).max(P_FLOOR)
    }

    /// Conserved state [ρ, s_x, s_y, s_z, E] at position `(x, y, z)`
    /// relative to the star centre.
    pub fn conserved_at(&self, x: f64, y: f64, z: f64) -> [f64; NF] {
        let r = (x * x + y * y + z * z).sqrt();
        let rho = self.density(r);
        // Solid-body rotation about z: v = Ω ẑ × r.
        let (vx, vy, vz) = if rho > 2.0 * RHO_FLOOR {
            (-self.omega * y, self.omega * x, 0.0)
        } else {
            (0.0, 0.0, 0.0)
        };
        let p = self.pressure(rho);
        let kinetic = 0.5 * rho * (vx * vx + vy * vy + vz * vz);
        [
            rho,
            rho * vx,
            rho * vy,
            rho * vz,
            p / (GAMMA - 1.0) + kinetic,
        ]
    }

    fn theta_at(&self, xi: f64) -> f64 {
        let table = &self.profile;
        if xi <= table[0].0 {
            return table[0].1;
        }
        if xi >= table[table.len() - 1].0 {
            return 0.0;
        }
        // The table is uniform in ξ after the first entry.
        let h = table[1].0 - table[0].0;
        let idx = (((xi - table[0].0) / h) as usize).min(table.len() - 2);
        let (x0, t0) = table[idx];
        let (x1, t1) = table[idx + 1];
        let w = (xi - x0) / (x1 - x0);
        t0 * (1.0 - w) + t1 * w
    }
}

/// An initial fluid configuration the octree can be built from: the single
/// rotating star of the paper's runs, or a binary (Octo-Tiger's production
/// scenario). `Sync` because tree construction samples it from parallel
/// tasks.
pub trait InitialModel: Sync {
    /// Density at a position (with vacuum floor).
    fn density_at(&self, x: f64, y: f64, z: f64) -> f64;
    /// Conserved state at a position.
    fn conserved_at(&self, x: f64, y: f64, z: f64) -> [f64; NF];
    /// Reference (central) density the refinement threshold scales with.
    fn reference_density(&self) -> f64;
}

impl InitialModel for RotatingStar {
    fn density_at(&self, x: f64, y: f64, z: f64) -> f64 {
        self.density((x * x + y * y + z * z).sqrt())
    }
    fn conserved_at(&self, x: f64, y: f64, z: f64) -> [f64; NF] {
        RotatingStar::conserved_at(self, x, y, z)
    }
    fn reference_density(&self) -> f64 {
        self.central_density
    }
}

impl InitialModel for BinaryStar {
    fn density_at(&self, x: f64, y: f64, z: f64) -> f64 {
        BinaryStar::density(self, x, y, z)
    }
    fn conserved_at(&self, x: f64, y: f64, z: f64) -> [f64; NF] {
        BinaryStar::conserved_at(self, x, y, z)
    }
    fn reference_density(&self) -> f64 {
        self.primary
            .central_density
            .max(self.secondary.central_density)
    }
}

/// A binary star system — the scenario Octo-Tiger exists for ("used to
/// simulate and study binary star systems and their eventual outcomes",
/// §3.3; the paper's Fig. 1 shows such a merger). Two polytropes on a
/// circular mutual orbit; the mass-transfer region between them is where
/// AMR concentrates resolution.
#[derive(Debug, Clone)]
pub struct BinaryStar {
    /// Primary (accretor).
    pub primary: RotatingStar,
    /// Secondary (donor).
    pub secondary: RotatingStar,
    /// Orbital separation (centre to centre).
    pub separation: f64,
    /// Orbital angular velocity about the z-axis through the barycentre.
    pub orbital_omega: f64,
    /// Barycentric x-offsets of the two stars (primary, secondary).
    pub offsets: (f64, f64),
}

impl BinaryStar {
    /// Build a binary with `separation` between component centres. Each
    /// component is non-spinning in its own frame; the pair co-rotates at
    /// the Keplerian rate Ω = √(G(M₁+M₂)/a³).
    pub fn new(primary: RotatingStar, secondary: RotatingStar, separation: f64) -> Self {
        assert!(
            separation > primary.radius + secondary.radius,
            "components must not overlap initially"
        );
        let m_total = primary.mass + secondary.mass;
        let orbital_omega = (m_total / separation.powi(3)).sqrt();
        // Barycentre at the origin: x₁·M₁ + x₂·M₂ = 0.
        let x1 = -separation * secondary.mass / m_total;
        let x2 = separation * primary.mass / m_total;
        BinaryStar {
            primary,
            secondary,
            separation,
            orbital_omega,
            offsets: (x1, x2),
        }
    }

    /// An unequal-mass pair (donor 60% of the accretor's radius) filling a
    /// `[-1, 1]³` domain — the merger-precursor configuration.
    pub fn paper_like() -> Self {
        let primary = RotatingStar::new(0.35, 1.0, 0.0);
        let secondary = RotatingStar::new(0.21, 0.8, 0.0);
        BinaryStar::new(primary, secondary, 0.95)
    }

    /// Total system mass.
    pub fn mass(&self) -> f64 {
        self.primary.mass + self.secondary.mass
    }

    /// Density at `(x, y, z)`: superposition of the two components.
    pub fn density(&self, x: f64, y: f64, z: f64) -> f64 {
        let r1 = ((x - self.offsets.0).powi(2) + y * y + z * z).sqrt();
        let r2 = ((x - self.offsets.1).powi(2) + y * y + z * z).sqrt();
        (self.primary.density(r1) + self.secondary.density(r2) - RHO_FLOOR).max(RHO_FLOOR)
    }

    /// Conserved state at `(x, y, z)`: both stars move on the circular
    /// orbit (rigid rotation of the whole configuration about the
    /// barycentre — the co-rotating initial data Octo-Tiger uses).
    pub fn conserved_at(&self, x: f64, y: f64, z: f64) -> [f64; NF] {
        let rho = self.density(x, y, z);
        let (vx, vy) = if rho > 2.0 * RHO_FLOOR {
            (-self.orbital_omega * y, self.orbital_omega * x)
        } else {
            (0.0, 0.0)
        };
        // Pressure from the dominant component's polytropic relation.
        let r1 = ((x - self.offsets.0).powi(2) + y * y + z * z).sqrt();
        let rho1 = self.primary.density(r1);
        let p = if rho1 >= rho - rho1 {
            self.primary.pressure(rho)
        } else {
            self.secondary.pressure(rho)
        };
        let kinetic = 0.5 * rho * (vx * vx + vy * vy);
        [rho, rho * vx, rho * vy, 0.0, p / (GAMMA - 1.0) + kinetic]
    }
}

/// RK4 integration of Lane–Emden; returns the (ξ, θ) table, the first zero
/// ξ₁, and θ'(ξ₁).
fn integrate_lane_emden(n: f64) -> (Vec<(f64, f64)>, f64, f64) {
    let h = 1.0e-3;
    let mut xi = 1.0e-6;
    // Series expansion near the centre: θ ≈ 1 − ξ²/6, θ' ≈ −ξ/3.
    let mut theta = 1.0 - xi * xi / 6.0;
    let mut phi = -xi / 3.0;
    let mut table = Vec::with_capacity(4096);
    table.push((xi, theta));
    let deriv = |xi: f64, theta: f64, phi: f64| -> (f64, f64) {
        let t = theta.max(0.0);
        (phi, -t.powf(n) - 2.0 * phi / xi)
    };
    loop {
        let (k1t, k1p) = deriv(xi, theta, phi);
        let (k2t, k2p) = deriv(xi + 0.5 * h, theta + 0.5 * h * k1t, phi + 0.5 * h * k1p);
        let (k3t, k3p) = deriv(xi + 0.5 * h, theta + 0.5 * h * k2t, phi + 0.5 * h * k2p);
        let (k4t, k4p) = deriv(xi + h, theta + h * k3t, phi + h * k3p);
        let new_theta = theta + h / 6.0 * (k1t + 2.0 * k2t + 2.0 * k3t + k4t);
        let new_phi = phi + h / 6.0 * (k1p + 2.0 * k2p + 2.0 * k3p + k4p);
        if new_theta <= 0.0 {
            // Linear interpolation to the zero crossing.
            let frac = theta / (theta - new_theta);
            let xi1 = xi + frac * h;
            table.push((xi1, 0.0));
            return (table, xi1, new_phi);
        }
        xi += h;
        theta = new_theta;
        phi = new_phi;
        table.push((xi, theta));
        assert!(xi < 20.0, "Lane-Emden failed to reach surface");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_emden_first_zero_matches_literature() {
        // ξ₁ ≈ 3.65375 for n = 1.5.
        let star = RotatingStar::new(1.0, 1.0, 0.0);
        assert!(
            (star.xi1 - 3.65375).abs() < 2e-3,
            "xi1 = {} should be ≈3.65375",
            star.xi1
        );
    }

    #[test]
    fn density_profile_monotone_decreasing() {
        let star = RotatingStar::paper_default();
        let mut last = f64::INFINITY;
        for i in 0..100 {
            let r = star.radius * i as f64 / 100.0;
            let rho = star.density(r);
            assert!(rho <= last + 1e-12, "density must not increase outward");
            last = rho;
        }
    }

    #[test]
    fn central_density_and_vacuum() {
        let star = RotatingStar::paper_default();
        assert!((star.density(0.0) - 1.0).abs() < 1e-6);
        assert_eq!(star.density(star.radius * 1.5), RHO_FLOOR);
        assert_eq!(star.density(star.radius), RHO_FLOOR);
    }

    #[test]
    fn mass_matches_numerical_shell_integral() {
        let star = RotatingStar::new(0.7, 1.0, 0.0);
        let steps = 4000;
        let mut m = 0.0;
        for i in 0..steps {
            let r = star.radius * (i as f64 + 0.5) / steps as f64;
            let dr = star.radius / steps as f64;
            m += 4.0 * std::f64::consts::PI * r * r * star.density(r) * dr;
        }
        assert!(
            ((m - star.mass) / star.mass).abs() < 0.01,
            "shell integral {m} vs analytic {}",
            star.mass
        );
    }

    #[test]
    fn rotation_velocity_is_solid_body() {
        let star = RotatingStar::paper_default();
        let u = star.conserved_at(0.2, 0.0, 0.0);
        let rho = u[field::RHO];
        let vy = u[field::SY] / rho;
        assert!((vy - star.omega * 0.2).abs() < 1e-12);
        assert_eq!(u[field::SX], -star.omega * 0.0 * rho);
        assert_eq!(u[field::SZ], 0.0);
    }

    #[test]
    fn vacuum_is_at_rest() {
        let star = RotatingStar::paper_default();
        let u = star.conserved_at(0.9, 0.9, 0.9);
        assert_eq!(u[field::SX], 0.0);
        assert_eq!(u[field::SY], 0.0);
        assert!(u[field::RHO] <= 2.0 * RHO_FLOOR);
    }

    #[test]
    fn energy_positive_everywhere() {
        let star = RotatingStar::paper_default();
        for &(x, y, z) in &[
            (0.0, 0.0, 0.0),
            (0.3, 0.2, 0.1),
            (0.69, 0.0, 0.0),
            (0.9, 0.9, 0.9),
        ] {
            let u = star.conserved_at(x, y, z);
            assert!(u[field::EGAS] > 0.0);
            assert!(u[field::RHO] > 0.0);
        }
    }

    #[test]
    fn omega_scales_with_fraction() {
        let slow = RotatingStar::new(0.7, 1.0, 0.1);
        let fast = RotatingStar::new(0.7, 1.0, 0.3);
        assert!((fast.omega / slow.omega - 3.0).abs() < 1e-9);
        assert_eq!(RotatingStar::new(0.7, 1.0, 0.0).omega, 0.0);
    }

    #[test]
    #[should_panic(expected = "break-up")]
    fn super_keplerian_rejected() {
        let _ = RotatingStar::new(0.7, 1.0, 1.0);
    }

    #[test]
    fn pressure_floor_in_vacuum() {
        let star = RotatingStar::paper_default();
        assert_eq!(star.pressure(0.0), P_FLOOR);
        assert!(star.pressure(1.0) > P_FLOOR);
    }

    #[test]
    fn binary_barycentre_is_origin() {
        let b = BinaryStar::paper_like();
        let (x1, x2) = b.offsets;
        let moment = x1 * b.primary.mass + x2 * b.secondary.mass;
        assert!(moment.abs() < 1e-12 * b.mass());
        assert!(x1 < 0.0 && x2 > 0.0, "primary left, secondary right");
        assert!((x2 - x1 - b.separation).abs() < 1e-12);
    }

    #[test]
    fn binary_density_peaks_at_both_centres() {
        let b = BinaryStar::paper_like();
        let at1 = b.density(b.offsets.0, 0.0, 0.0);
        let at2 = b.density(b.offsets.1, 0.0, 0.0);
        let mid = b.density(0.0, 0.0, 0.0);
        assert!(at1 > 0.9, "primary centre: {at1}");
        assert!(at2 > 0.7, "secondary centre: {at2}");
        assert!(mid < at1.min(at2), "between the stars is rarefied");
    }

    #[test]
    fn binary_orbit_is_keplerian() {
        let b = BinaryStar::paper_like();
        let want = (b.mass() / b.separation.powi(3)).sqrt();
        assert!((b.orbital_omega - want).abs() < 1e-12);
        // Orbital velocity at the secondary's centre is Ω × r.
        let u = b.conserved_at(b.offsets.1, 0.0, 0.0);
        let vy = u[field::SY] / u[field::RHO];
        assert!((vy - b.orbital_omega * b.offsets.1).abs() < 1e-9);
    }

    #[test]
    fn binary_state_is_physical_everywhere() {
        let b = BinaryStar::paper_like();
        for &(x, y, z) in &[
            (0.0, 0.0, 0.0),
            (b.offsets.0, 0.0, 0.0),
            (b.offsets.1, 0.1, 0.0),
            (0.9, 0.9, 0.9),
        ] {
            let u = b.conserved_at(x, y, z);
            assert!(u[field::RHO] > 0.0);
            let kinetic =
                0.5 * (u[field::SX] * u[field::SX] + u[field::SY] * u[field::SY]) / u[field::RHO];
            assert!(u[field::EGAS] >= kinetic, "positive internal energy");
        }
    }

    #[test]
    #[should_panic(expected = "must not overlap")]
    fn overlapping_binary_rejected() {
        let a = RotatingStar::new(0.5, 1.0, 0.0);
        let b = RotatingStar::new(0.5, 1.0, 0.0);
        let _ = BinaryStar::new(a, b, 0.8);
    }
}
