//! Finite-volume hydro solver — Octo-Tiger's hydro module (paper §3.3:
//! "the hydro solver uses finite volumes to compute the inviscid
//! Navier-Stokes equations", i.e. the compressible Euler equations).
//!
//! Per sub-grid kernel: second-order MUSCL reconstruction (minmod limiter)
//! of the primitive variables, HLL Riemann fluxes, dimension-by-dimension,
//! forward-Euler update. Each kernel invocation processes one 8³ sub-grid
//! with its ghost shell — exactly the paper's per-sub-grid kernel-launch
//! granularity — and dispatches its cell loop through
//! [`Dispatch`](crate::kernel_backend::Dispatch), so the same physics runs
//! as legacy loops, Kokkos-Serial or Kokkos-HPX.

use kokkos_lite::simd::{sweep_packs, Simd};

use crate::kernel_backend::{Dispatch, SimdPolicy};
use crate::recycle::RecyclePool;
use crate::star::{field, GAMMA, NF, P_FLOOR, RHO_FLOOR};
use crate::subgrid::{SubGrid, CELLS, NG, NT, NX};

/// Flat interior-cell index.
#[inline]
pub fn cell_index(i: usize, j: usize, k: usize) -> usize {
    (i * NX + j) * NX + k
}

/// Inverse of [`cell_index`].
#[inline]
pub fn cell_coords(c: usize) -> (i64, i64, i64) {
    let k = c % NX;
    let j = (c / NX) % NX;
    let i = c / (NX * NX);
    (i as i64, j as i64, k as i64)
}

#[inline]
fn minmod(a: f64, b: f64) -> f64 {
    if a * b <= 0.0 {
        0.0
    } else if a.abs() < b.abs() {
        a
    } else {
        b
    }
}

#[inline]
fn sound_speed(rho: f64, p: f64) -> f64 {
    (GAMMA * p / rho).sqrt()
}

#[inline]
fn energy_of(prim: &[f64; 5]) -> f64 {
    let [rho, vx, vy, vz, p] = *prim;
    p / (GAMMA - 1.0) + 0.5 * rho * (vx * vx + vy * vy + vz * vz)
}

#[inline]
fn conserved_of(prim: &[f64; 5]) -> [f64; NF] {
    let [rho, vx, vy, vz, _p] = *prim;
    [rho, rho * vx, rho * vy, rho * vz, energy_of(prim)]
}

/// Physical flux of the Euler equations along `axis` for primitive state.
#[inline]
fn physical_flux(prim: &[f64; 5], axis: usize) -> [f64; NF] {
    let [rho, vx, vy, vz, p] = *prim;
    let v = [vx, vy, vz];
    let vn = v[axis];
    let e = energy_of(prim);
    let mut f = [
        rho * vn,
        rho * vx * vn,
        rho * vy * vn,
        rho * vz * vn,
        (e + p) * vn,
    ];
    f[field::SX + axis] += p;
    f
}

/// HLL numerical flux between left/right primitive face states.
#[inline]
fn hll_flux(left: &[f64; 5], right: &[f64; 5], axis: usize) -> [f64; NF] {
    let cl = sound_speed(left[0], left[4]);
    let cr = sound_speed(right[0], right[4]);
    let vnl = left[1 + axis];
    let vnr = right[1 + axis];
    let sl = (vnl - cl).min(vnr - cr);
    let sr = (vnl + cl).max(vnr + cr);
    if sl >= 0.0 {
        return physical_flux(left, axis);
    }
    if sr <= 0.0 {
        return physical_flux(right, axis);
    }
    let fl = physical_flux(left, axis);
    let fr = physical_flux(right, axis);
    let ul = conserved_of(left);
    let ur = conserved_of(right);
    let mut out = [0.0; NF];
    let inv = 1.0 / (sr - sl);
    for f in 0..NF {
        out[f] = (sr * fl[f] - sl * fr[f] + sl * sr * (ur[f] - ul[f])) * inv;
    }
    out
}

/// Primitive state of the cell at offset `o` cells along `axis` from
/// `(i, j, k)` (may reach two ghost layers).
#[inline]
fn prim_off(sub: &SubGrid, axis: usize, i: i64, j: i64, k: i64, o: i64) -> [f64; 5] {
    match axis {
        0 => sub.primitives(i + o, j, k),
        1 => sub.primitives(i, j + o, k),
        _ => sub.primitives(i, j, k + o),
    }
}

/// HLL flux through the **low** face of cell `(i, j, k)` along `axis`, with
/// minmod-limited linear reconstruction.
fn face_flux(sub: &SubGrid, axis: usize, i: i64, j: i64, k: i64) -> [f64; NF] {
    let m2 = prim_off(sub, axis, i, j, k, -2);
    let m1 = prim_off(sub, axis, i, j, k, -1);
    let p0 = prim_off(sub, axis, i, j, k, 0);
    let p1 = prim_off(sub, axis, i, j, k, 1);
    let mut left = [0.0; 5];
    let mut right = [0.0; 5];
    for f in 0..5 {
        left[f] = m1[f] + 0.5 * minmod(m1[f] - m2[f], p0[f] - m1[f]);
        right[f] = p0[f] - 0.5 * minmod(p0[f] - m1[f], p1[f] - p0[f]);
    }
    // Floors after reconstruction.
    left[0] = left[0].max(RHO_FLOOR);
    right[0] = right[0].max(RHO_FLOOR);
    left[4] = left[4].max(P_FLOOR);
    right[4] = right[4].max(P_FLOOR);
    hll_flux(&left, &right, axis)
}

/// Maximum signal speed (|v| + c_s over all axes) in the interior —
/// Octo-Tiger's CFL reduction kernel.
pub fn max_signal_speed(sub: &SubGrid, dispatch: &Dispatch) -> f64 {
    dispatch.reduce_max(CELLS, |c| {
        let (i, j, k) = cell_coords(c);
        let [rho, vx, vy, vz, p] = sub.primitives(i, j, k);
        let cs = sound_speed(rho, p);
        vx.abs().max(vy.abs()).max(vz.abs()) + cs
    })
}

/// One forward-Euler hydro update: returns the new interior conserved
/// states (ghosts must be filled first). Pure function of the sub-grid — the
/// caller applies it with [`apply_interior`], which is what allows all
/// leaves' kernels to run concurrently.
pub fn step_interior(sub: &SubGrid, dt: f64, dispatch: &Dispatch) -> Vec<[f64; NF]> {
    step_into(sub, dt, dispatch, vec![[0.0; NF]; CELLS])
}

/// [`step_interior`] drawing its output buffer from a cppuddle-style
/// [`RecyclePool`] — the allocation-recycling path the production code uses
/// for its thousands of per-sub-grid kernel launches per step. Release the
/// buffer back to the pool after applying it.
pub fn step_interior_pooled(
    sub: &SubGrid,
    dt: f64,
    dispatch: &Dispatch,
    pool: &RecyclePool<[f64; NF]>,
) -> Vec<[f64; NF]> {
    step_into(sub, dt, dispatch, pool.acquire(CELLS))
}

fn step_into(
    sub: &SubGrid,
    dt: f64,
    dispatch: &Dispatch,
    mut out: Vec<[f64; NF]>,
) -> Vec<[f64; NF]> {
    step_into_slice(sub, dt, dispatch, &mut out);
    out
}

/// Scalar hydro update written into a caller-provided `CELLS`-sized slice —
/// the entry the work-aggregation executor uses to land several leaves'
/// updates in one fused batch buffer.
fn step_into_slice(sub: &SubGrid, dt: f64, dispatch: &Dispatch, out: &mut [[f64; NF]]) {
    let lambda = dt / sub.dx;
    debug_assert_eq!(out.len(), CELLS);
    dispatch.fill(out, |c| {
        let (i, j, k) = cell_coords(c);
        let mut u = [0.0; NF];
        for (f, slot) in u.iter_mut().enumerate() {
            *slot = sub.at(f, i, j, k);
        }
        for axis in 0..3 {
            let f_lo = face_flux(sub, axis, i, j, k);
            let (hi_i, hi_j, hi_k) = match axis {
                0 => (i + 1, j, k),
                1 => (i, j + 1, k),
                _ => (i, j, k + 1),
            };
            let f_hi = face_flux(sub, axis, hi_i, hi_j, hi_k);
            for f in 0..NF {
                u[f] += lambda * (f_lo[f] - f_hi[f]);
            }
        }
        // Positivity floors.
        u[field::RHO] = u[field::RHO].max(RHO_FLOOR);
        let kinetic = 0.5
            * (u[field::SX] * u[field::SX]
                + u[field::SY] * u[field::SY]
                + u[field::SZ] * u[field::SZ])
            / u[field::RHO];
        u[field::EGAS] = u[field::EGAS].max(kinetic + P_FLOOR / (GAMMA - 1.0));
        u
    });
}

// ---------------------------------------------------------------------------
// Explicitly-vectorized hydro path: an SoA primitive staging view plus
// width-generic `Simd<W>` MUSCL + HLL kernels. The scalar functions above
// remain the bit-exact reference — every vector expression below mirrors its
// scalar counterpart's operation order exactly (plain mul/add, no FMA
// contraction), and every branch is a lane-wise select of identically-valued
// operands, so the SIMD path agrees **bitwise** with the scalar path at all
// widths. That is the same discipline PR 2 established for the gravity
// kernels and what the agreement tests enforce.
// ---------------------------------------------------------------------------

/// Primitive quantities staged per cell (ρ, vx, vy, vz, p).
pub const STAGE_PRIMS: usize = 5;
/// Cells per staged field lane (the full ghost frame).
pub const STAGE_CELLS: usize = NT * NT * NT;
/// Flat length of one staging view.
pub const STAGE_LEN: usize = STAGE_PRIMS * STAGE_CELLS;

/// Element stride between cells one apart along each axis in the staging
/// view (and in each conserved-field block of the `SubGrid` view): the z
/// index is fastest, so z-lanes are unit-stride and a stencil offset along
/// any axis is a single scaled displacement of the same contiguous pack.
const AXIS_STRIDE: [usize; 3] = [NT * NT, NT, 1];

/// SoA primitive staging view of one sub-grid, built once per step from the
/// ghost-filled conserved fields (paper §3.3's per-sub-grid kernel staging;
/// Octo-Tiger proper keeps such SoA buffers in cppuddle-recycled
/// allocations, which is why construction draws from a [`RecyclePool`]).
///
/// Staging converts conserved→primitive (with floors) exactly **once** per
/// cell per step; the scalar path re-derives primitives at every stencil
/// visit (~24× per cell), so the staging view is itself a large fraction of
/// the vector path's speedup.
pub struct HydroStage {
    buf: Vec<f64>,
}

impl HydroStage {
    /// Build the staging view for `sub`, drawing the buffer from `pool`.
    pub fn build(sub: &SubGrid, pool: &RecyclePool<f64>) -> Self {
        let mut buf = pool.acquire(STAGE_LEN);
        sub.stage_primitives(&mut buf);
        HydroStage { buf }
    }

    /// Return the staging buffer to its pool.
    pub fn release(self, pool: &RecyclePool<f64>) {
        pool.release(self.buf);
    }

    /// Contiguous lane of one staged primitive over the ghost frame.
    #[inline]
    fn prim_lane(&self, q: usize) -> &[f64] {
        &self.buf[q * STAGE_CELLS..(q + 1) * STAGE_CELLS]
    }
}

/// Ghost-frame staging index of interior cell `(i, j, k)`.
#[inline]
fn stage_index(i: usize, j: usize, k: usize) -> usize {
    ((i + NG) * NT + (j + NG)) * NT + (k + NG)
}

/// Load the five primitive packs of `W` consecutive-z cells at `at`.
#[inline]
fn load_prims<const W: usize>(stage: &HydroStage, at: usize) -> [Simd<W>; 5] {
    [
        Simd::from_slice(stage.prim_lane(0), at),
        Simd::from_slice(stage.prim_lane(1), at),
        Simd::from_slice(stage.prim_lane(2), at),
        Simd::from_slice(stage.prim_lane(3), at),
        Simd::from_slice(stage.prim_lane(4), at),
    ]
}

/// Lane-wise [`minmod`]: the data-dependent branches become selects of
/// pre-computed operands, so the pack never diverges.
#[inline]
fn minmod_v<const W: usize>(a: Simd<W>, b: Simd<W>) -> Simd<W> {
    let zero = Simd::zero();
    let slope = a.abs().lt(b.abs()).select(a, b);
    (a * b).le(zero).select(zero, slope)
}

#[inline]
fn sound_speed_v<const W: usize>(rho: Simd<W>, p: Simd<W>) -> Simd<W> {
    (Simd::splat(GAMMA) * p / rho).sqrt()
}

#[inline]
fn energy_of_v<const W: usize>(prim: &[Simd<W>; 5]) -> Simd<W> {
    let [rho, vx, vy, vz, p] = *prim;
    p / Simd::splat(GAMMA - 1.0) + Simd::splat(0.5) * rho * (vx * vx + vy * vy + vz * vz)
}

#[inline]
fn conserved_of_v<const W: usize>(prim: &[Simd<W>; 5]) -> [Simd<W>; NF] {
    let [rho, vx, vy, vz, _p] = *prim;
    [rho, rho * vx, rho * vy, rho * vz, energy_of_v(prim)]
}

#[inline]
fn physical_flux_v<const W: usize>(prim: &[Simd<W>; 5], axis: usize) -> [Simd<W>; NF] {
    let [rho, vx, vy, vz, p] = *prim;
    let v = [vx, vy, vz];
    let vn = v[axis];
    let e = energy_of_v(prim);
    let mut f = [
        rho * vn,
        rho * vx * vn,
        rho * vy * vn,
        rho * vz * vn,
        (e + p) * vn,
    ];
    f[field::SX + axis] = f[field::SX + axis] + p;
    f
}

/// Lane-wise [`hll_flux`]: the scalar early returns become a two-level
/// select. The middle state is computed unconditionally for every lane —
/// always finite, because `sr − sl ≥ 2·min(c_l, c_r) > 0` (the floors
/// guarantee p ≥ P_FLOOR and ρ ≥ RHO_FLOOR, so both sound speeds are
/// positive).
#[inline]
fn hll_flux_v<const W: usize>(
    left: &[Simd<W>; 5],
    right: &[Simd<W>; 5],
    axis: usize,
) -> [Simd<W>; NF] {
    let cl = sound_speed_v(left[0], left[4]);
    let cr = sound_speed_v(right[0], right[4]);
    let vnl = left[1 + axis];
    let vnr = right[1 + axis];
    let sl = (vnl - cl).min(vnr - cr);
    let sr = (vnl + cl).max(vnr + cr);
    let fl = physical_flux_v(left, axis);
    let fr = physical_flux_v(right, axis);
    let ul = conserved_of_v(left);
    let ur = conserved_of_v(right);
    let zero = Simd::zero();
    let left_wins = sl.ge(zero);
    let right_wins = sr.le(zero);
    let inv = Simd::splat(1.0) / (sr - sl);
    let mut out = [Simd::zero(); NF];
    for f in 0..NF {
        let mid = (sr * fl[f] - sl * fr[f] + sl * sr * (ur[f] - ul[f])) * inv;
        out[f] = left_wins.select(fl[f], right_wins.select(fr[f], mid));
    }
    out
}

/// Lane-wise [`face_flux`] through the low faces along `axis` of the `W`
/// consecutive-z cells at staging index `at`. The stencil walks along the
/// axis stride while the pack lanes stay z-contiguous, so all four stencil
/// loads are plain unit-stride packs.
#[inline]
fn face_flux_v<const W: usize>(stage: &HydroStage, axis: usize, at: usize) -> [Simd<W>; NF] {
    let s = AXIS_STRIDE[axis];
    let m2 = load_prims(stage, at - 2 * s);
    let m1 = load_prims(stage, at - s);
    let p0 = load_prims(stage, at);
    let p1 = load_prims(stage, at + s);
    let half = Simd::splat(0.5);
    let mut left = [Simd::zero(); 5];
    let mut right = [Simd::zero(); 5];
    for f in 0..5 {
        left[f] = m1[f] + half * minmod_v(m1[f] - m2[f], p0[f] - m1[f]);
        right[f] = p0[f] - half * minmod_v(p0[f] - m1[f], p1[f] - p0[f]);
    }
    // Floors after reconstruction (lane-wise max, exact like the scalar max).
    left[0] = left[0].max(Simd::splat(RHO_FLOOR));
    right[0] = right[0].max(Simd::splat(RHO_FLOOR));
    left[4] = left[4].max(Simd::splat(P_FLOOR));
    right[4] = right[4].max(Simd::splat(P_FLOOR));
    hll_flux_v(&left, &right, axis)
}

/// SIMD hydro row kernel written into a caller-provided `CELLS`-sized slice
/// (see [`step_into_slice`] for why the slice form exists).
fn step_rows_simd_slice<const W: usize>(
    sub: &SubGrid,
    stage: &HydroStage,
    dt: f64,
    dispatch: &Dispatch,
    out: &mut [[f64; NF]],
) {
    debug_assert_eq!(out.len(), CELLS);
    // NX = 8 is divisible by every supported width, so there are no tail
    // packs; Simd<1> is the degenerate scalar pack for completeness.
    const {
        assert!(
            NX.is_multiple_of(W),
            "pack width must divide the row length"
        )
    };
    let lambda = Simd::<W>::splat(dt / sub.dx);
    let u_all = sub.u.as_slice();
    dispatch.fill_rows(out, NX, |row, chunk| {
        let i = row / NX;
        let j = row % NX;
        let at0 = stage_index(i, j, 0);
        sweep_packs::<W>(NX, |k0, is_tail| {
            debug_assert!(!is_tail, "NX is a multiple of every pack width");
            let at = at0 + k0;
            let mut u = [Simd::<W>::zero(); NF];
            for (f, slot) in u.iter_mut().enumerate() {
                // Conserved fields are already SoA per field in the View:
                // `[NF][NT][NT][NT]` row-major, z contiguous.
                let base = ((f * NT + (i + NG)) * NT + (j + NG)) * NT + (k0 + NG);
                *slot = Simd::from_slice(u_all, base);
            }
            for (axis, &stride) in AXIS_STRIDE.iter().enumerate() {
                let f_lo = face_flux_v::<W>(stage, axis, at);
                let f_hi = face_flux_v::<W>(stage, axis, at + stride);
                for f in 0..NF {
                    u[f] = u[f] + lambda * (f_lo[f] - f_hi[f]);
                }
            }
            // Positivity floors.
            u[field::RHO] = u[field::RHO].max(Simd::splat(RHO_FLOOR));
            let kinetic = Simd::splat(0.5)
                * (u[field::SX] * u[field::SX]
                    + u[field::SY] * u[field::SY]
                    + u[field::SZ] * u[field::SZ])
                / u[field::RHO];
            u[field::EGAS] = u[field::EGAS].max(kinetic + Simd::splat(P_FLOOR / (GAMMA - 1.0)));
            for (lane, cell) in chunk[k0..k0 + W].iter_mut().enumerate() {
                for (f, uf) in u.iter().enumerate() {
                    cell[f] = uf.extract(lane);
                }
            }
        });
    });
}

fn max_signal_speed_stage_w<const W: usize>(stage: &HydroStage) -> f64 {
    const {
        assert!(
            NX.is_multiple_of(W),
            "pack width must divide the row length"
        )
    };
    let mut acc = Simd::<W>::splat(f64::NEG_INFINITY);
    for i in 0..NX {
        for j in 0..NX {
            let at0 = stage_index(i, j, 0);
            sweep_packs::<W>(NX, |k0, is_tail| {
                debug_assert!(!is_tail, "NX is a multiple of every pack width");
                let [rho, vx, vy, vz, p] = load_prims::<W>(stage, at0 + k0);
                let cs = sound_speed_v(rho, p);
                acc = acc.max(vx.abs().max(vy.abs()).max(vz.abs()) + cs);
            });
        }
    }
    acc.reduce_max()
}

/// CFL reduction over a pre-built staging view at SIMD width `w`. The max
/// reduction is order-independent over f64 (all speeds are positive), so the
/// result is bitwise identical to the scalar [`max_signal_speed`].
pub fn max_signal_speed_stage(stage: &HydroStage, w: usize) -> f64 {
    match w {
        1 => max_signal_speed_stage_w::<1>(stage),
        2 => max_signal_speed_stage_w::<2>(stage),
        4 => max_signal_speed_stage_w::<4>(stage),
        8 => max_signal_speed_stage_w::<8>(stage),
        other => panic!("unsupported SIMD width {other}"),
    }
}

/// Per-leaf CFL speed via `policy`. For a vector policy this builds the
/// step's staging view and returns it so the hydro kernel of the same step
/// can reuse it (the tree is immutable between the CFL reduction and the
/// hydro update, so the staged primitives stay valid).
pub fn max_signal_speed_policy(
    sub: &SubGrid,
    dispatch: &Dispatch,
    policy: SimdPolicy,
    stage_pool: &RecyclePool<f64>,
) -> (f64, Option<HydroStage>) {
    match policy {
        SimdPolicy::Scalar => (max_signal_speed(sub, dispatch), None),
        SimdPolicy::Width(w) => {
            let stage = HydroStage::build(sub, stage_pool);
            let speed = max_signal_speed_stage(&stage, w);
            (speed, Some(stage))
        }
    }
}

/// Policy-dispatched hydro update, reusing an optional staging view handed
/// over from [`max_signal_speed_policy`] (built here when absent and
/// needed). The staging buffer and the output buffer both come from (and
/// the staging buffer returns to) recycle pools, so steady-state steps
/// allocate nothing.
pub fn step_interior_staged(
    sub: &SubGrid,
    stage: Option<HydroStage>,
    dt: f64,
    dispatch: &Dispatch,
    policy: SimdPolicy,
    state_pool: &RecyclePool<[f64; NF]>,
    stage_pool: &RecyclePool<f64>,
) -> Vec<[f64; NF]> {
    let mut out = state_pool.acquire(CELLS);
    step_interior_staged_into(sub, stage, dt, dispatch, policy, &mut out, stage_pool);
    out
}

/// [`step_interior_staged`] writing into a caller-provided `CELLS`-sized
/// slice. The work-aggregation executor points this at one leaf's segment
/// of a batch-fused state buffer: the per-leaf arithmetic is untouched, so
/// the fused buffer's contents are bitwise-identical to the per-leaf
/// buffers it replaces.
pub fn step_interior_staged_into(
    sub: &SubGrid,
    stage: Option<HydroStage>,
    dt: f64,
    dispatch: &Dispatch,
    policy: SimdPolicy,
    out: &mut [[f64; NF]],
    stage_pool: &RecyclePool<f64>,
) {
    match policy {
        SimdPolicy::Scalar => {
            if let Some(st) = stage {
                st.release(stage_pool);
            }
            step_into_slice(sub, dt, dispatch, out);
        }
        SimdPolicy::Width(w) => {
            let st = match stage {
                Some(st) => st,
                None => HydroStage::build(sub, stage_pool),
            };
            match w {
                1 => step_rows_simd_slice::<1>(sub, &st, dt, dispatch, out),
                2 => step_rows_simd_slice::<2>(sub, &st, dt, dispatch, out),
                4 => step_rows_simd_slice::<4>(sub, &st, dt, dispatch, out),
                8 => step_rows_simd_slice::<8>(sub, &st, dt, dispatch, out),
                other => panic!("unsupported SIMD width {other}"),
            }
            st.release(stage_pool);
        }
    }
}

/// Single-call convenience over [`step_interior_staged`]: builds, uses and
/// releases the staging view internally.
pub fn step_interior_policy(
    sub: &SubGrid,
    dt: f64,
    dispatch: &Dispatch,
    policy: SimdPolicy,
    state_pool: &RecyclePool<[f64; NF]>,
    stage_pool: &RecyclePool<f64>,
) -> Vec<[f64; NF]> {
    step_interior_staged(sub, None, dt, dispatch, policy, state_pool, stage_pool)
}

/// Write the interior states produced by [`step_interior`] back.
pub fn apply_interior(sub: &mut SubGrid, new_state: &[[f64; NF]]) {
    assert_eq!(new_state.len(), CELLS, "state buffer size mismatch");
    for (c, u) in new_state.iter().enumerate() {
        let (i, j, k) = cell_coords(c);
        for (f, v) in u.iter().enumerate() {
            sub.set(f, i, j, k, *v);
        }
    }
}

/// Apply the gravitational source terms for one step: momentum gains
/// ρ·g·dt, energy gains v·g·ρ·dt (work done by gravity).
pub fn apply_gravity_source(sub: &mut SubGrid, acc: &[[f64; 3]], dt: f64) {
    assert_eq!(acc.len(), CELLS, "acceleration buffer size mismatch");
    for (c, g) in acc.iter().enumerate() {
        let (i, j, k) = cell_coords(c);
        let rho = sub.at(field::RHO, i, j, k);
        let sx = sub.at(field::SX, i, j, k);
        let sy = sub.at(field::SY, i, j, k);
        let sz = sub.at(field::SZ, i, j, k);
        sub.set(field::SX, i, j, k, sx + rho * g[0] * dt);
        sub.set(field::SY, i, j, k, sy + rho * g[1] * dt);
        sub.set(field::SZ, i, j, k, sz + rho * g[2] * dt);
        let de = (sx * g[0] + sy * g[1] + sz * g[2]) * dt;
        let e = sub.at(field::EGAS, i, j, k);
        sub.set(field::EGAS, i, j, k, e + de);
    }
}

/// Analytic flop estimate for one hydro cell update (used by the machine
/// projection; derivation: 6 face fluxes × [4 primitive conversions ≈ 22
/// flops each + reconstruction 5 fields × 6 + HLL ≈ 70 incl. two sqrt] ≈
/// 6 × 190, plus update/floor arithmetic ≈ 60).
pub const HYDRO_FLOPS_PER_CELL: u64 = 1200;

/// Bytes moved per hydro cell update (5 fields read over a ~4-wide stencil
/// reach + 5 written, 8 B each, with cache reuse ≈ 3× single-field
/// traffic).
pub const HYDRO_BYTES_PER_CELL: u64 = 240;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel_backend::KernelType;
    use crate::star::RotatingStar;

    fn uniform_grid(rho: f64, v: [f64; 3], p: f64) -> SubGrid {
        let mut g = SubGrid::new([0.0; 3], 0.1);
        let prim = [rho, v[0], v[1], v[2], p];
        let u = conserved_of(&prim);
        let ng = crate::subgrid::NG as i64;
        for i in -ng..(NX as i64 + ng) {
            for j in -ng..(NX as i64 + ng) {
                for k in -ng..(NX as i64 + ng) {
                    for (f, val) in u.iter().enumerate() {
                        g.set(f, i, j, k, *val);
                    }
                }
            }
        }
        g
    }

    #[test]
    fn minmod_properties() {
        assert_eq!(minmod(1.0, 2.0), 1.0);
        assert_eq!(minmod(-3.0, -2.0), -2.0);
        assert_eq!(minmod(1.0, -1.0), 0.0);
        assert_eq!(minmod(0.0, 5.0), 0.0);
    }

    #[test]
    fn uniform_state_is_stationary() {
        let g = uniform_grid(1.0, [0.1, -0.2, 0.3], 0.7);
        let before: Vec<f64> = (0..CELLS)
            .map(|c| {
                let (i, j, k) = cell_coords(c);
                g.at(field::RHO, i, j, k)
            })
            .collect();
        let out = step_interior(&g, 0.01, &Dispatch::Legacy);
        for (c, u) in out.iter().enumerate() {
            assert!(
                (u[field::RHO] - before[c]).abs() < 1e-13,
                "uniform flow must not change"
            );
        }
    }

    #[test]
    fn hll_flux_consistency_with_physical_flux() {
        // Equal left/right supersonic states → upwind flux.
        let prim = [1.0, 2.0, 0.0, 0.0, 0.1]; // v > c
        let f = hll_flux(&prim, &prim, 0);
        let want = physical_flux(&prim, 0);
        for (a, b) in f.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn hll_mass_flux_sign_follows_flow() {
        let left = [1.0, 1.5, 0.0, 0.0, 1.0];
        let right = [1.0, 1.5, 0.0, 0.0, 1.0];
        assert!(hll_flux(&left, &right, 0)[field::RHO] > 0.0);
        let lneg = [1.0, -1.5, 0.0, 0.0, 1.0];
        assert!(hll_flux(&lneg, &lneg, 0)[field::RHO] < 0.0);
    }

    #[test]
    fn pressure_jump_accelerates_toward_low_pressure() {
        // High pressure in the left half: after one step the interface
        // cells must gain positive x-momentum.
        let mut g = uniform_grid(1.0, [0.0; 3], 0.1);
        for i in -2..4i64 {
            for j in -2..(NX as i64 + 2) {
                for k in -2..(NX as i64 + 2) {
                    g.set(field::EGAS, i, j, k, 10.0 / (GAMMA - 1.0));
                }
            }
        }
        let out = step_interior(&g, 0.001, &Dispatch::Legacy);
        let c = cell_index(4, 4, 4); // right of the interface at i=4
        assert!(
            out[c][field::SX] > 0.0,
            "gas must accelerate toward low pressure: sx = {}",
            out[c][field::SX]
        );
    }

    #[test]
    fn interior_mass_conserved_with_closed_box() {
        // A centred blob with vacuum at the edges: over one small step no
        // mass reaches the boundary, so interior mass is conserved to
        // round-off.
        let star = RotatingStar::paper_default();
        let mut g = SubGrid::new([-0.1, -0.1, -0.1], 0.025);
        g.init_from_star(&star);
        // Zero the ghost/boundary flux by surrounding with floor values
        // (init_from_star already gives near-floor at this sub-grid's rim?
        // Not necessarily — so measure flux-consistent conservation instead:
        // sum of interior change equals net boundary flux; with symmetric
        // data the x-momentum stays ≈ antisymmetric.)
        let before = g.mass();
        let out = step_interior(&g, 1e-6, &Dispatch::Legacy);
        let mut after = 0.0;
        for u in &out {
            after += u[field::RHO];
        }
        after *= g.dx * g.dx * g.dx;
        assert!(
            ((after - before) / before).abs() < 1e-3,
            "tiny step must nearly conserve mass: {before} -> {after}"
        );
    }

    #[test]
    fn all_dispatch_backends_agree_bitwise() {
        let star = RotatingStar::paper_default();
        let mut g = SubGrid::new([-0.1, -0.1, -0.1], 0.025);
        g.init_from_star(&star);
        let rt = amt::Runtime::new(3);
        let reference = step_interior(&g, 1e-4, &Dispatch::Legacy);
        for kind in [KernelType::KokkosSerial, KernelType::KokkosHpx] {
            let d = Dispatch::new(kind, &rt.handle(), 4);
            let out = step_interior(&g, 1e-4, &d);
            for (a, b) in reference.iter().zip(&out) {
                for f in 0..NF {
                    assert_eq!(a[f].to_bits(), b[f].to_bits(), "{kind:?} diverged");
                }
            }
        }
    }

    #[test]
    fn signal_speed_positive_and_scales_with_pressure() {
        let cold = uniform_grid(1.0, [0.0; 3], 0.1);
        let hot = uniform_grid(1.0, [0.0; 3], 10.0);
        let d = Dispatch::Legacy;
        let sc = max_signal_speed(&cold, &d);
        let sh = max_signal_speed(&hot, &d);
        assert!(sc > 0.0);
        assert!(sh > sc * 5.0, "c_s ∝ √p: {sc} vs {sh}");
    }

    #[test]
    fn gravity_source_adds_momentum_and_work() {
        let mut g = uniform_grid(2.0, [1.0, 0.0, 0.0], 1.0);
        let acc = vec![[0.5, 0.0, 0.0]; CELLS];
        let e0 = g.at(field::EGAS, 3, 3, 3);
        let sx0 = g.at(field::SX, 3, 3, 3);
        apply_gravity_source(&mut g, &acc, 0.1);
        let sx1 = g.at(field::SX, 3, 3, 3);
        let e1 = g.at(field::EGAS, 3, 3, 3);
        assert!((sx1 - (sx0 + 2.0 * 0.5 * 0.1)).abs() < 1e-12);
        assert!((e1 - (e0 + sx0 * 0.5 * 0.1)).abs() < 1e-12);
    }

    #[test]
    fn positivity_floors_hold_in_vacuum() {
        let g = uniform_grid(RHO_FLOOR, [0.0; 3], P_FLOOR);
        let out = step_interior(&g, 0.01, &Dispatch::Legacy);
        for u in &out {
            assert!(u[field::RHO] >= RHO_FLOOR);
            assert!(u[field::EGAS] > 0.0);
        }
    }

    #[test]
    fn cell_index_roundtrip() {
        for c in 0..CELLS {
            let (i, j, k) = cell_coords(c);
            assert_eq!(cell_index(i as usize, j as usize, k as usize), c);
        }
    }

    #[test]
    fn simd_step_matches_scalar_bitwise_at_all_widths() {
        let star = RotatingStar::paper_default();
        let mut g = SubGrid::new([-0.1, -0.1, -0.1], 0.025);
        g.init_from_star(&star);
        let d = Dispatch::Legacy;
        let state_pool = RecyclePool::new();
        let stage_pool = RecyclePool::new();
        let reference = step_interior(&g, 1e-4, &d);
        for w in SimdPolicy::SUPPORTED_WIDTHS {
            let out =
                step_interior_policy(&g, 1e-4, &d, SimdPolicy::Width(w), &state_pool, &stage_pool);
            for (c, (a, b)) in reference.iter().zip(&out).enumerate() {
                for f in 0..NF {
                    assert_eq!(
                        a[f].to_bits(),
                        b[f].to_bits(),
                        "width {w} diverged at cell {c} field {f}"
                    );
                }
            }
            state_pool.release(out);
        }
        // Scalar policy through the same entry point is the reference path.
        let out = step_interior_policy(&g, 1e-4, &d, SimdPolicy::Scalar, &state_pool, &stage_pool);
        assert_eq!(out, reference);
    }

    #[test]
    fn simd_step_matches_scalar_in_floored_vacuum() {
        // Shock/floor regime: vacuum floors everywhere, so the limiter and
        // both HLL early-return branches are exercised with clamped states.
        let g = uniform_grid(RHO_FLOOR, [0.0; 3], P_FLOOR);
        let d = Dispatch::Legacy;
        let state_pool = RecyclePool::new();
        let stage_pool = RecyclePool::new();
        let reference = step_interior(&g, 0.01, &d);
        for w in SimdPolicy::SUPPORTED_WIDTHS {
            let out =
                step_interior_policy(&g, 0.01, &d, SimdPolicy::Width(w), &state_pool, &stage_pool);
            for (a, b) in reference.iter().zip(&out) {
                for f in 0..NF {
                    assert_eq!(a[f].to_bits(), b[f].to_bits(), "width {w} diverged");
                }
            }
        }
    }

    #[test]
    fn staged_cfl_matches_scalar_bitwise() {
        let star = RotatingStar::paper_default();
        let mut g = SubGrid::new([-0.1, -0.1, -0.1], 0.025);
        g.init_from_star(&star);
        let d = Dispatch::Legacy;
        let stage_pool = RecyclePool::new();
        let want = max_signal_speed(&g, &d);
        for w in SimdPolicy::SUPPORTED_WIDTHS {
            let (got, stage) = max_signal_speed_policy(&g, &d, SimdPolicy::Width(w), &stage_pool);
            assert_eq!(got.to_bits(), want.to_bits(), "width {w} CFL diverged");
            stage
                .expect("vector policy builds a stage")
                .release(&stage_pool);
        }
        let (got, stage) = max_signal_speed_policy(&g, &d, SimdPolicy::Scalar, &stage_pool);
        assert_eq!(got.to_bits(), want.to_bits());
        assert!(stage.is_none(), "scalar policy stages nothing");
    }

    #[test]
    fn stage_handoff_from_cfl_to_step_reuses_the_pool() {
        let star = RotatingStar::paper_default();
        let mut g = SubGrid::new([-0.1, -0.1, -0.1], 0.025);
        g.init_from_star(&star);
        let d = Dispatch::Legacy;
        let state_pool = RecyclePool::new();
        let stage_pool = RecyclePool::new();
        let reference = step_interior(&g, 1e-4, &d);
        for round in 0..3 {
            let (_, stage) = max_signal_speed_policy(&g, &d, SimdPolicy::Width(4), &stage_pool);
            let out = step_interior_staged(
                &g,
                stage,
                1e-4,
                &d,
                SimdPolicy::Width(4),
                &state_pool,
                &stage_pool,
            );
            assert_eq!(out, reference, "round {round}");
            state_pool.release(out);
        }
        let s = stage_pool.stats();
        assert_eq!(s.misses, 1, "one staging buffer serves every round");
        assert_eq!(s.hits, 2, "later rounds recycle it");
    }
}
