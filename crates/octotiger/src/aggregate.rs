//! # Work aggregation — fusing per-leaf kernel launches into batched
//! SoA mega-streams
//!
//! The paper's per-sub-grid tasks are tiny (a leaf is 8³ cells, 4³
//! interaction blocks), so each kernel launch is too short to amortize
//! task-spawn overhead or keep wide SIMD lanes busy. Octo-Tiger solves
//! this with cppuddle-style *work aggregation* ("From Merging Frameworks
//! to Merging Stars", arXiv 2210.06439): many sub-grid invocations are
//! fused into one contiguous SoA launch, executed as a single task.
//!
//! This module is that layer for the mini app:
//!
//! * [`AggregationRegion`] packs leaf indices into batches with the
//!   parcel coalescer's *seal-on-full / seal-on-flush* protocol
//!   (`distrib::coalesce`): a batch seals the moment it reaches the
//!   configured size, and the stragglers seal when the region flushes.
//! * [`run_unified_gravity_batch`] gathers one batch's far-field tables
//!   into a single fused [`FarField`] (per-leaf sub-ranges addressed via
//!   [`FarField::range_view`], each segment padded to `SIMD_PAD` with
//!   sentinel rows so ragged-tail handling lands exactly on leaf
//!   boundaries without predicated loads) and its near-field `BlockSoA`
//!   sources into one mega-stream, then solves every leaf of the batch
//!   inside one task.
//! * [`run_cfl_batch`] / [`run_p2m_batch`] / [`run_hydro_batch`] batch
//!   the remaining per-leaf families; the hydro batch writes all leaves
//!   into one fused state buffer (a batch-sized
//!   [`RecyclePool`] buffer class).
//! * [`run_gravity_stage`] / [`for_each_batch`] drive a whole stage
//!   through a region — shared by the barriered and futurized steps so
//!   the seal protocol cannot diverge between them.
//!
//! **Bitwise invariant**: a batch is a *contiguous* run of leaf indices
//! and every per-leaf slice of a fused stream sees exactly the data the
//! per-leaf path saw, in the same order, through the same kernels — so
//! any batch size produces bit-identical states, and batch size 1 *is*
//! today's per-leaf path (modulo one `Vec` of bookkeeping). The
//! `aggregation_prop` tests pin this for every width × batch-size combo.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

use amt::par::scope;
use amt::Handle;
use apex_lite::trace::{self, Cat, SpanGuard};

use crate::gravity::{self, BlockSoA, FarField, GravityKernels, Moments, BLOCKS};
use crate::hydro::{self, HydroStage};
use crate::kernel_backend::{Dispatch, SimdPolicy};
use crate::octree::{NodeId, Octree};
use crate::recycle::RecyclePool;
use crate::star::NF;
use crate::subgrid::CELLS;

/// Per-family batch sizes — the `--monopole_host_tasks` /
/// `--multipole_host_tasks` / `--hydro_host_tasks` knobs, named after the
/// upstream Octo-Tiger spack variants (`max_kernels_fused` per kernel
/// family). A value of 1 disables aggregation for that family and
/// reproduces the per-leaf path bitwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggregationConfig {
    /// Leaves fused per near-field (P2P) launch.
    pub monopole: usize,
    /// Leaves fused per far-field (M2L) launch.
    pub multipole: usize,
    /// Leaves fused per CFL/hydro launch.
    pub hydro: usize,
}

impl Default for AggregationConfig {
    fn default() -> Self {
        AggregationConfig {
            monopole: 1,
            multipole: 1,
            hydro: 1,
        }
    }
}

impl AggregationConfig {
    /// True when the two gravity families batch at the same size, letting
    /// one fused task run a leaf's M2L *and* P2P back to back (the common
    /// case, and the one that preserves per-leaf `gravity_solve` span
    /// durations). Unequal sizes split gravity into separate M2L-batch
    /// and P2P-batch task families joined per leaf.
    pub fn unified_gravity(&self) -> bool {
        self.monopole == self.multipole
    }
}

/// Atomic seal/launch counters behind the
/// `/work/aggregation/{batch_size_avg,seals_on_full,seals_on_flush,fused_launches}`
/// counters. One instance lives on the [`Driver`](crate::driver::Driver)
/// and is shared by every region of every step.
#[derive(Debug, Default)]
pub struct AggregationStats {
    items: AtomicU64,
    fused_launches: AtomicU64,
    seals_on_full: AtomicU64,
    seals_on_flush: AtomicU64,
}

/// Point-in-time copy of [`AggregationStats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregationSnapshot {
    /// Work items (leaves) that went through a region.
    pub items: u64,
    /// Batches launched (each is one `amt` task).
    pub fused_launches: u64,
    /// Batches sealed because they reached the configured size.
    pub seals_on_full: u64,
    /// Batches sealed by the end-of-stage flush (ragged tails).
    pub seals_on_flush: u64,
}

impl AggregationSnapshot {
    /// Mean leaves per launched batch (1.0 when aggregation is off).
    pub fn batch_size_avg(&self) -> f64 {
        if self.fused_launches == 0 {
            0.0
        } else {
            self.items as f64 / self.fused_launches as f64
        }
    }
}

impl AggregationStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    fn record_seal(&self, batch_len: usize, on_full: bool) {
        self.items.fetch_add(batch_len as u64, Ordering::Relaxed);
        self.fused_launches.fetch_add(1, Ordering::Relaxed);
        if on_full {
            self.seals_on_full.fetch_add(1, Ordering::Relaxed);
        } else {
            self.seals_on_flush.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Sample the counters.
    pub fn snapshot(&self) -> AggregationSnapshot {
        AggregationSnapshot {
            items: self.items.load(Ordering::Relaxed),
            fused_launches: self.fused_launches.load(Ordering::Relaxed),
            seals_on_full: self.seals_on_full.load(Ordering::Relaxed),
            seals_on_flush: self.seals_on_flush.load(Ordering::Relaxed),
        }
    }
}

/// Packs work items (leaf indices) into batches using the parcel
/// coalescer's protocol: [`push`](Self::push) seals and hands back a
/// batch the moment it reaches `cap` items (*seal on full*), and
/// [`flush`](Self::flush) seals whatever remains at end of stage (*seal
/// on flush*). Items pushed in ascending order yield contiguous batches
/// — the property the fused-buffer slicing in the apply phase relies on.
pub struct AggregationRegion<'a> {
    cap: usize,
    buf: Vec<usize>,
    sealed: usize,
    stats: &'a AggregationStats,
}

impl<'a> AggregationRegion<'a> {
    /// Region sealing every `cap` items (`cap >= 1`).
    pub fn new(cap: usize, stats: &'a AggregationStats) -> Self {
        assert!(cap >= 1, "aggregation batch size must be >= 1");
        AggregationRegion {
            cap,
            buf: Vec::with_capacity(cap),
            sealed: 0,
            stats,
        }
    }

    /// Add one item; returns `(batch_index, batch)` when this item filled
    /// the batch.
    pub fn push(&mut self, item: usize) -> Option<(usize, Vec<usize>)> {
        self.buf.push(item);
        (self.buf.len() >= self.cap).then(|| self.seal(true))
    }

    /// Seal the ragged remainder, if any. Call exactly once, after the
    /// last `push`.
    pub fn flush(&mut self) -> Option<(usize, Vec<usize>)> {
        (!self.buf.is_empty()).then(|| self.seal(false))
    }

    /// Batches sealed so far.
    pub fn sealed(&self) -> usize {
        self.sealed
    }

    fn seal(&mut self, on_full: bool) -> (usize, Vec<usize>) {
        let batch = std::mem::take(&mut self.buf);
        self.stats.record_seal(batch.len(), on_full);
        let index = self.sealed;
        self.sealed += 1;
        (index, batch)
    }

    /// Number of batches `n` items produce at batch size `cap` — what the
    /// futurized step's last-arriver counters count.
    pub fn batch_count(n: usize, cap: usize) -> usize {
        n.div_ceil(cap)
    }
}

/// Trace span marking one fused launch. Emitted only when the family
/// actually aggregates (`cap > 1`) so a batch-size-1 trace stays
/// identical to the pre-aggregation baseline.
pub fn launch_span(cap: usize) -> Option<SpanGuard> {
    (cap > 1).then(|| trace::span(Cat::Task, "aggregate_launch"))
}

/// Reusable buffers for one gravity batch: the fused far table with
/// per-leaf sub-ranges, the fused near-source mega-stream (whole
/// [`BlockSoA`]s back to back, `near.len() × BLOCKS` lanes per leaf), and
/// the per-block accumulators. All grow-only, recycled via
/// [`BatchScratchPool`] — the batch-sized analogue of the per-leaf
/// [`LeafScratch`](crate::gravity::LeafScratch).
#[derive(Default)]
pub struct BatchScratch {
    /// Fused far-field table of the whole batch.
    pub far: FarField,
    /// Per-leaf `(start, len)` source ranges into `far`, batch order.
    pub far_ranges: Vec<(usize, usize)>,
    /// Fused near-field source masses (concatenated `BlockSoA.mass`).
    pub near_mass: Vec<f64>,
    /// Fused near-field source x (concatenated `BlockSoA.x`).
    pub near_x: Vec<f64>,
    /// Fused near-field source y.
    pub near_y: Vec<f64>,
    /// Fused near-field source z.
    pub near_z: Vec<f64>,
    /// Per-leaf `(start, len)` lane ranges into the near stream.
    pub near_ranges: Vec<(usize, usize)>,
    /// Far-field acceleration per block of the leaf being solved.
    block_acc: Vec<[f64; 3]>,
    /// Near-field acceleration per block of the leaf being solved.
    near_acc: Vec<[f64; 3]>,
}

impl BatchScratch {
    /// Fresh scratch with the per-block accumulators pre-sized.
    pub fn new() -> Self {
        BatchScratch {
            block_acc: vec![[0.0; 3]; BLOCKS],
            near_acc: vec![[0.0; 3]; BLOCKS],
            ..Self::default()
        }
    }

    fn clear(&mut self) {
        self.far.clear();
        self.far_ranges.clear();
        self.near_mass.clear();
        self.near_x.clear();
        self.near_y.clear();
        self.near_z.clear();
        self.near_ranges.clear();
        self.block_acc.resize(BLOCKS, [0.0; 3]);
        self.near_acc.resize(BLOCKS, [0.0; 3]);
    }
}

/// Shared pool of [`BatchScratch`] buffers (take / put / idle, same shape
/// as the per-leaf [`ScratchPool`](crate::gravity::ScratchPool)). Batch
/// streams have data-dependent lengths, so they recycle here as grow-only
/// buffers rather than through the length-keyed [`RecyclePool`].
#[derive(Default)]
pub struct BatchScratchPool {
    pool: Mutex<Vec<BatchScratch>>,
}

impl BatchScratchPool {
    /// Empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take a scratch buffer (fresh if the pool is dry); `clear` sizes the
    /// per-block accumulators either way.
    pub fn take(&self) -> BatchScratch {
        let mut s = self
            .pool
            .lock()
            .expect("batch scratch pool lock")
            .pop()
            .unwrap_or_default();
        s.clear();
        s
    }

    /// Return a scratch buffer for reuse.
    pub fn put(&self, s: BatchScratch) {
        self.pool.lock().expect("batch scratch pool lock").push(s);
    }

    /// Number of pooled (idle) buffers.
    pub fn idle(&self) -> usize {
        self.pool.lock().expect("batch scratch pool lock").len()
    }
}

/// Per-leaf gravity result: cell accelerations plus far/near interaction
/// counts for work accounting.
pub type AccelEntry = (Vec<[f64; 3]>, u64, u64);

/// Fan-out slot one gravity solve writes its [`AccelEntry`] into.
pub type AccelSlot = Mutex<Option<AccelEntry>>;

/// Split-gravity join slot: `(M2L block accelerations, P2P block
/// accelerations)` for one leaf, filled by the two batch families.
pub type HalfSlot = Mutex<(Option<Vec<[f64; 3]>>, Option<Vec<[f64; 3]>>)>;

/// Everything a gravity batch task needs, borrowed from the step.
pub struct GravityBatchCtx<'a> {
    /// The (immutable-for-the-step) octree.
    pub tree: &'a Octree,
    /// Upward-pass moments, node order.
    pub moments: &'a [Moments],
    /// Per-leaf P2M blocks, leaf order.
    pub blocks: &'a [BlockSoA],
    /// `NodeId` → leaf-order position.
    pub leaf_pos: &'a [usize],
    /// Leaf ids, leaf order (what batch items index into).
    pub leaves: &'a [NodeId],
    /// Cached interaction lists, leaf order.
    pub lists: &'a [(Vec<NodeId>, Vec<NodeId>)],
    /// Execution spaces + SIMD width of the kernels.
    pub kernels: &'a GravityKernels<'a>,
    /// Batch scratch recycling.
    pub scratch: &'a BatchScratchPool,
}

impl GravityBatchCtx<'_> {
    fn lists_for(&self, idx: usize) -> &(Vec<NodeId>, Vec<NodeId>) {
        &self.lists[self.leaf_pos[self.leaves[idx]]]
    }
}

/// Gather one batch's sources into fused streams: the far tables
/// concatenated into one [`FarField`] and/or the near `BlockSoA`s
/// concatenated into one SoA mega-stream, with per-leaf sub-ranges
/// recorded in batch order.
fn gather_batch(
    ctx: &GravityBatchCtx<'_>,
    batch: &[usize],
    scratch: &mut BatchScratch,
    want_far: bool,
    want_near: bool,
) {
    for &idx in batch {
        let (far, near) = ctx.lists_for(idx);
        if want_far {
            // Segments start at the padded storage offset: `pad_to_simd`
            // after each leaf keeps every segment SIMD_PAD-aligned with
            // sentinel rows in between, so each sub-range view full-loads
            // its ragged tail instead of predicating it.
            let start = scratch.far.storage_len();
            for &src in far {
                scratch.far.push(&ctx.moments[src]);
            }
            scratch.far_ranges.push((start, far.len()));
            scratch.far.pad_to_simd();
        }
        if want_near {
            let start = scratch.near_mass.len();
            for &src_leaf in near {
                let sb = &ctx.blocks[ctx.leaf_pos[src_leaf]];
                scratch.near_mass.extend_from_slice(&sb.mass);
                scratch.near_x.extend_from_slice(&sb.x);
                scratch.near_y.extend_from_slice(&sb.y);
                scratch.near_z.extend_from_slice(&sb.z);
            }
            scratch.near_ranges.push((start, near.len() * BLOCKS));
        }
    }
}

/// M2L for the `k`-th leaf of a gathered batch: the same multipole fill
/// the per-leaf path runs, pointed at this leaf's sub-range view of the
/// fused far table (padded tail at the leaf boundary). Writes
/// `scratch.block_acc`.
fn m2l_for_leaf(ctx: &GravityBatchCtx<'_>, scratch: &mut BatchScratch, k: usize, idx: usize) {
    let tb = &ctx.blocks[ctx.leaf_pos[ctx.leaves[idx]]];
    let BatchScratch {
        far,
        far_ranges,
        block_acc,
        ..
    } = scratch;
    let (start, len) = far_ranges[k];
    let ffv = far.range_view(start, len);
    let _span = trace::span(Cat::Gravity, "m2l");
    ctx.kernels.multipole.fill(&mut block_acc[..], |b| {
        gravity::multipole_accel_view(ctx.kernels.simd, tb.com(b), ffv)
    });
}

/// P2P for the `k`-th leaf of a gathered batch: stream this leaf's lane
/// range of the near mega-stream in `BLOCKS`-lane segments — one segment
/// per source leaf, in list order, so the accumulation order (and hence
/// every rounding) matches the per-leaf path exactly. `BLOCKS` is a
/// multiple of every supported width, so segments never split a pack.
/// Writes `scratch.near_acc`.
fn p2p_for_leaf(ctx: &GravityBatchCtx<'_>, scratch: &mut BatchScratch, k: usize, idx: usize) {
    let target = ctx.leaves[idx];
    let tb = &ctx.blocks[ctx.leaf_pos[target]];
    let (_, dx) = ctx.tree.node_geometry(target);
    let eps = gravity::softening(dx);
    let BatchScratch {
        near_mass,
        near_x,
        near_y,
        near_z,
        near_ranges,
        near_acc,
        ..
    } = scratch;
    let (start, len) = near_ranges[k];
    let _span = trace::span(Cat::Gravity, "p2p");
    ctx.kernels.monopole.fill(&mut near_acc[..], |b| {
        let p = tb.com(b);
        let mut a = [0.0; 3];
        let mut off = start;
        while off < start + len {
            let da = gravity::monopole_accel_soa(
                ctx.kernels.simd,
                p,
                &near_mass[off..off + BLOCKS],
                &near_x[off..off + BLOCKS],
                &near_y[off..off + BLOCKS],
                &near_z[off..off + BLOCKS],
                eps,
            );
            a[0] += da[0];
            a[1] += da[1];
            a[2] += da[2];
            off += BLOCKS;
        }
        a
    });
}

fn accel_entry(ctx: &GravityBatchCtx<'_>, idx: usize, acc: Vec<[f64; 3]>) -> AccelEntry {
    let (far, near) = ctx.lists_for(idx);
    (acc, far.len() as u64, near.len() as u64)
}

/// One *unified* gravity batch (M2L and P2P fused at the same size):
/// gather the whole batch's sources, then solve each leaf back to back
/// inside this single task. `per_leaf_spans` emits the per-leaf
/// `gravity_solve` spans of the futurized graph; `record` feeds the
/// gravity envelope for the overlap counter; results land in `out` by
/// leaf index.
pub fn run_unified_gravity_batch(
    ctx: &GravityBatchCtx<'_>,
    batch: &[usize],
    per_leaf_spans: bool,
    record: &(dyn Fn(u64, u64) + Sync),
    out: &[AccelSlot],
) {
    let mut scratch = ctx.scratch.take();
    gather_batch(ctx, batch, &mut scratch, true, true);
    for (k, &idx) in batch.iter().enumerate() {
        let t0 = trace::now_ns();
        let _span = per_leaf_spans.then(|| trace::span(Cat::Phase, "gravity_solve"));
        m2l_for_leaf(ctx, &mut scratch, k, idx);
        p2p_for_leaf(ctx, &mut scratch, k, idx);
        let acc = gravity::scatter_block_accel(&scratch.block_acc, &scratch.near_acc);
        *out[idx].lock().expect("accel slot") = Some(accel_entry(ctx, idx, acc));
        record(t0, trace::now_ns());
    }
    ctx.scratch.put(scratch);
}

/// Last-arriver join of the split-gravity path: when both halves of a
/// leaf have landed, combine and scatter them. The per-leaf pending
/// counter starts at 2; whichever batch family decrements it to zero
/// finishes the leaf.
fn finish_split_leaf(
    ctx: &GravityBatchCtx<'_>,
    idx: usize,
    halves: &[HalfSlot],
    pending: &[AtomicU8],
    per_leaf_spans: bool,
    out: &[AccelSlot],
) {
    if pending[idx].fetch_sub(1, Ordering::AcqRel) != 1 {
        return;
    }
    let (block_acc, near_acc) = {
        let mut slot = halves[idx].lock().expect("half slot");
        (
            slot.0.take().expect("m2l half done"),
            slot.1.take().expect("p2p half done"),
        )
    };
    let _span = per_leaf_spans.then(|| trace::span(Cat::Phase, "gravity_solve"));
    let acc = gravity::scatter_block_accel(&block_acc, &near_acc);
    *out[idx].lock().expect("accel slot") = Some(accel_entry(ctx, idx, acc));
}

/// One M2L-only batch of the split-gravity path (unequal batch sizes):
/// far tables fused, each leaf's block accelerations parked in its
/// [`HalfSlot`], and any leaf whose P2P half already landed is finished
/// here.
pub fn run_m2l_batch(
    ctx: &GravityBatchCtx<'_>,
    batch: &[usize],
    halves: &[HalfSlot],
    pending: &[AtomicU8],
    per_leaf_spans: bool,
    record: &(dyn Fn(u64, u64) + Sync),
    out: &[AccelSlot],
) {
    let mut scratch = ctx.scratch.take();
    gather_batch(ctx, batch, &mut scratch, true, false);
    for (k, &idx) in batch.iter().enumerate() {
        let t0 = trace::now_ns();
        m2l_for_leaf(ctx, &mut scratch, k, idx);
        halves[idx].lock().expect("half slot").0 = Some(scratch.block_acc.clone());
        record(t0, trace::now_ns());
        finish_split_leaf(ctx, idx, halves, pending, per_leaf_spans, out);
    }
    ctx.scratch.put(scratch);
}

/// One P2P-only batch of the split-gravity path — mirror of
/// [`run_m2l_batch`] over the near mega-stream.
pub fn run_p2p_batch(
    ctx: &GravityBatchCtx<'_>,
    batch: &[usize],
    halves: &[HalfSlot],
    pending: &[AtomicU8],
    per_leaf_spans: bool,
    record: &(dyn Fn(u64, u64) + Sync),
    out: &[AccelSlot],
) {
    let mut scratch = ctx.scratch.take();
    gather_batch(ctx, batch, &mut scratch, false, true);
    for (k, &idx) in batch.iter().enumerate() {
        let t0 = trace::now_ns();
        p2p_for_leaf(ctx, &mut scratch, k, idx);
        halves[idx].lock().expect("half slot").1 = Some(scratch.near_acc.clone());
        record(t0, trace::now_ns());
        finish_split_leaf(ctx, idx, halves, pending, per_leaf_spans, out);
    }
    ctx.scratch.put(scratch);
}

/// Drive the whole gravity fan-out through aggregation regions: unified
/// batches when both gravity families share a size, otherwise separate
/// M2L/P2P batch families with per-leaf last-arriver joins. Opens its own
/// task scope (a barrier over the stage), exactly like the per-leaf
/// fan-outs it replaces.
#[allow(clippy::too_many_arguments)]
pub fn run_gravity_stage(
    handle: &Handle,
    ctx: &GravityBatchCtx<'_>,
    cfg: AggregationConfig,
    stats: &AggregationStats,
    per_leaf_spans: bool,
    record: &(dyn Fn(u64, u64) + Sync),
    out: &[AccelSlot],
) {
    let n = ctx.leaves.len();
    if cfg.unified_gravity() {
        let cap = cfg.multipole;
        scope(handle, |sc| {
            let mut region = AggregationRegion::new(cap, stats);
            let spawn = |batch: Vec<usize>| {
                sc.spawn(move || {
                    let _launch = launch_span(cap);
                    run_unified_gravity_batch(ctx, &batch, per_leaf_spans, record, out);
                });
            };
            for idx in 0..n {
                if let Some((_, batch)) = region.push(idx) {
                    spawn(batch);
                }
            }
            if let Some((_, batch)) = region.flush() {
                spawn(batch);
            }
        });
    } else {
        let pending: Vec<AtomicU8> = (0..n).map(|_| AtomicU8::new(2)).collect();
        let halves: Vec<HalfSlot> = (0..n).map(|_| Mutex::new((None, None))).collect();
        let (pending, halves) = (&pending[..], &halves[..]);
        scope(handle, |sc| {
            let mut m2l_region = AggregationRegion::new(cfg.multipole, stats);
            let mut p2p_region = AggregationRegion::new(cfg.monopole, stats);
            let spawn_m2l = |batch: Vec<usize>| {
                let cap = cfg.multipole;
                sc.spawn(move || {
                    let _launch = launch_span(cap);
                    run_m2l_batch(ctx, &batch, halves, pending, per_leaf_spans, record, out);
                });
            };
            let spawn_p2p = |batch: Vec<usize>| {
                let cap = cfg.monopole;
                sc.spawn(move || {
                    let _launch = launch_span(cap);
                    run_p2p_batch(ctx, &batch, halves, pending, per_leaf_spans, record, out);
                });
            };
            for idx in 0..n {
                if let Some((_, batch)) = m2l_region.push(idx) {
                    spawn_m2l(batch);
                }
                if let Some((_, batch)) = p2p_region.push(idx) {
                    spawn_p2p(batch);
                }
            }
            if let Some((_, batch)) = m2l_region.flush() {
                spawn_m2l(batch);
            }
            if let Some((_, batch)) = p2p_region.flush() {
                spawn_p2p(batch);
            }
        });
    }
}

/// Everything a CFL/hydro batch task needs, borrowed from the step.
pub struct HydroBatchCtx<'a> {
    /// The (immutable-until-apply) octree.
    pub tree: &'a Octree,
    /// Leaf ids, leaf order.
    pub leaves: &'a [NodeId],
    /// Execution space of the hydro kernels.
    pub dispatch: &'a Dispatch,
    /// SIMD width policy.
    pub policy: SimdPolicy,
    /// Pool of `[f64; NF]` state buffers — fused batch buffers
    /// (`batch_len × CELLS`) recycle here as batch-sized classes.
    pub state_pool: &'a RecyclePool<[f64; NF]>,
    /// Pool behind the SoA primitive staging views.
    pub stage_pool: &'a RecyclePool<f64>,
}

/// One CFL batch: per-leaf max-signal-speed (plus SoA staging at vector
/// widths) for every leaf of the batch inside one task.
pub fn run_cfl_batch(
    ctx: &HydroBatchCtx<'_>,
    batch: &[usize],
    per_leaf_spans: bool,
    speeds: &[AtomicU64],
    stage_slots: &[Mutex<Option<HydroStage>>],
) {
    for &idx in batch {
        let _span = per_leaf_spans.then(|| trace::span(Cat::Phase, "cfl_leaf"));
        let g = ctx.tree.subgrid(ctx.leaves[idx]);
        let (speed, stage) =
            hydro::max_signal_speed_policy(g, ctx.dispatch, ctx.policy, ctx.stage_pool);
        speeds[idx].store((speed / g.dx).to_bits(), Ordering::Release);
        *stage_slots[idx].lock().expect("stage slot") = stage;
    }
}

/// One P2M batch: per-leaf block moments for every leaf of the batch
/// inside one task.
pub fn run_p2m_batch(
    tree: &Octree,
    leaves: &[NodeId],
    batch: &[usize],
    per_leaf_spans: bool,
    block_slots: &[Mutex<Option<BlockSoA>>],
) {
    for &idx in batch {
        let _span = per_leaf_spans.then(|| trace::span(Cat::Phase, "p2m_leaf"));
        *block_slots[idx].lock().expect("block slot") =
            Some(gravity::compute_blocks(tree.subgrid(leaves[idx])));
    }
}

/// One hydro batch: acquire a *fused* state buffer of `batch_len × CELLS`
/// cells (a batch-sized [`RecyclePool`] class), step every leaf of the
/// batch into its slice, and park the buffer in the batch's slot. The
/// apply phase walks the slots in batch order and slices leaves back out,
/// so the update order — and every bit of the update — matches the
/// per-leaf path.
#[allow(clippy::too_many_arguments)]
pub fn run_hydro_batch(
    ctx: &HydroBatchCtx<'_>,
    batch: &[usize],
    dt: f64,
    per_leaf_spans: bool,
    record: &(dyn Fn(u64, u64) + Sync),
    stage_slots: &[Mutex<Option<HydroStage>>],
    out_slot: &Mutex<Option<Vec<[f64; NF]>>>,
) {
    let mut fused = ctx.state_pool.acquire(batch.len() * CELLS);
    for (k, &idx) in batch.iter().enumerate() {
        let t0 = trace::now_ns();
        let _span = per_leaf_spans.then(|| trace::span(Cat::Phase, "hydro_step"));
        let stage = stage_slots[idx].lock().expect("stage slot").take();
        hydro::step_interior_staged_into(
            ctx.tree.subgrid(ctx.leaves[idx]),
            stage,
            dt,
            ctx.dispatch,
            ctx.policy,
            &mut fused[k * CELLS..(k + 1) * CELLS],
            ctx.stage_pool,
        );
        record(t0, trace::now_ns());
    }
    *out_slot.lock().expect("batch state slot") = Some(fused);
}

/// Run `0..n` through an aggregation region, spawning one task per
/// sealed batch and waiting for all of them (the barriered step's phase
/// fan-out). The callback gets `(batch_index, batch)`; batches are
/// contiguous ascending index ranges.
pub fn for_each_batch<F>(handle: &Handle, n: usize, cap: usize, stats: &AggregationStats, f: F)
where
    F: Fn(usize, &[usize]) + Sync,
{
    scope(handle, |sc| {
        let f = &f;
        let mut region = AggregationRegion::new(cap, stats);
        let spawn = |(bid, batch): (usize, Vec<usize>)| {
            sc.spawn(move || {
                let _launch = launch_span(cap);
                f(bid, &batch);
            });
        };
        for idx in 0..n {
            if let Some(sealed) = region.push(idx) {
                spawn(sealed);
            }
        }
        if let Some(sealed) = region.flush() {
            spawn(sealed);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_seals_on_full_and_flush() {
        let stats = AggregationStats::new();
        let mut region = AggregationRegion::new(3, &stats);
        let mut sealed = Vec::new();
        for i in 0..7 {
            if let Some(b) = region.push(i) {
                sealed.push(b);
            }
        }
        if let Some(b) = region.flush() {
            sealed.push(b);
        }
        assert_eq!(
            sealed,
            vec![
                (0, vec![0, 1, 2]),
                (1, vec![3, 4, 5]),
                (2, vec![6]) // ragged tail, sealed by the flush
            ]
        );
        let s = stats.snapshot();
        assert_eq!(s.items, 7);
        assert_eq!(s.fused_launches, 3);
        assert_eq!(s.seals_on_full, 2);
        assert_eq!(s.seals_on_flush, 1);
        assert!((s.batch_size_avg() - 7.0 / 3.0).abs() < 1e-12);
        assert_eq!(AggregationRegion::batch_count(7, 3), 3);
    }

    #[test]
    fn batch_size_one_seals_every_item_on_full() {
        let stats = AggregationStats::new();
        let mut region = AggregationRegion::new(1, &stats);
        for i in 0..4 {
            assert_eq!(region.push(i), Some((i, vec![i])));
        }
        assert_eq!(region.flush(), None);
        let s = stats.snapshot();
        assert_eq!(s.fused_launches, 4);
        assert_eq!(s.seals_on_flush, 0);
        assert!((s.batch_size_avg() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn launch_span_only_when_aggregating() {
        // cap 1 must leave the trace identical to the baseline.
        assert!(launch_span(1).is_none());
    }

    #[test]
    fn batch_scratch_pool_recycles() {
        let pool = BatchScratchPool::new();
        let mut s = pool.take();
        s.near_mass.extend_from_slice(&[1.0; 64]);
        s.near_ranges.push((0, 64));
        pool.put(s);
        assert_eq!(pool.idle(), 1);
        // Recycled scratch comes back cleared.
        let s = pool.take();
        assert!(s.near_mass.is_empty() && s.near_ranges.is_empty());
        assert_eq!(s.block_acc.len(), BLOCKS);
    }
}
