//! Distributed time stepper — the paper's §6.2.2 experiment: the rotating
//! star on the two-board VisionFive2 cluster, one locality per board with
//! all four cores, comparing the TCP and MPI parcelports (Fig. 8).
//!
//! Decomposition: each locality holds a replica of the octree *structure*
//! but **owns** the leaves on its side of the x = 0 plane (supervisor:
//! x < 0, delegate: x ≥ 0, mirroring the paper's supervisor/delegate
//! command lines of Listings 2–3). Per step the localities exchange
//!
//! 1. **halo leaves** — the full interior state of owned leaves that touch
//!    remotely owned ones (so ghost fill stays local),
//! 2. the **CFL reduction** (a small scalar message),
//! 3. **gravity blocks** — each side's P2M results, so both can run the
//!    same FMM over the complete mass distribution while computing
//!    accelerations only for their own leaves.
//!
//! Every payload crosses the `distrib` wire as real serialized bytes, so
//! the Fig. 8 projection consumes *measured* message counts and volumes.

use serde::{Deserialize, Serialize};

use amt::par::scope;
use apex_lite::trace::{self, Cat};
use apex_lite::{CounterRegistry, CounterSnapshot};
use distrib::{
    Cluster, ClusterConfig, CoalesceConfig, Gid, LocalityHandle, NetSnapshot, PortSnapshot,
};
use rv_machine::NetBackend;

use crate::config::OctoConfig;
use crate::driver::WorkEstimate;
use crate::gravity::{
    self, BlockSoA, GravityKernels, GravityWorkspace, InteractionCache, ScratchPool, BLOCKS,
};
use crate::hydro;
use crate::kernel_backend::Dispatch;
use crate::octree::{NodeId, Octree};
use crate::recycle::RecyclePool;
use crate::star::RotatingStar;
use crate::subgrid::Face;

/// Ghost data gathered for one leaf: one boundary slab per face.
type FaceSlabs = Vec<(Face, Vec<f64>)>;

/// Configuration of a distributed run. (`Clone` but not `Copy`: the
/// embedded [`OctoConfig`] carries the heap-allocated trace-output path.)
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Localities (boards): 1 or 2 in the paper.
    pub nodes: u32,
    /// Worker threads per locality (4 on the VisionFive2).
    pub threads_per_node: usize,
    /// Parcelport backend.
    pub backend: NetBackend,
    /// Parcel-coalescing layer (off by default, like the paper's runs).
    pub coalesce: CoalesceConfig,
    /// Application configuration.
    pub octo: OctoConfig,
}

impl DistConfig {
    /// The paper's configuration on `nodes` boards with `backend`.
    pub fn paper(nodes: u32, backend: NetBackend) -> Self {
        DistConfig {
            nodes,
            threads_per_node: 4,
            backend,
            coalesce: CoalesceConfig::default(),
            octo: OctoConfig::default(),
        }
    }

    /// Distributed configuration derived from a parsed [`OctoConfig`]: the
    /// backend follows `--hpx:parcelport`, the thread count `--hpx:threads`,
    /// and the coalescing layer `--coalesce`.
    pub fn from_octo(nodes: u32, octo: OctoConfig) -> Self {
        DistConfig {
            nodes,
            threads_per_node: octo.threads,
            backend: octo.parcelport,
            coalesce: if octo.coalesce {
                CoalesceConfig::enabled()
            } else {
                CoalesceConfig::default()
            },
            octo,
        }
    }
}

/// Results of a distributed run.
#[derive(Debug, Clone)]
pub struct DistMetrics {
    /// Localities used.
    pub nodes: u32,
    /// Steps executed.
    pub steps: u32,
    /// Global leaf count.
    pub leaf_count: usize,
    /// Global interior cell count.
    pub cell_count: usize,
    /// `cells × steps`.
    pub cells_processed: u64,
    /// Wall-clock seconds on the host.
    pub elapsed_seconds: f64,
    /// Cells per second (host) — Fig. 8's y-axis.
    pub cells_per_second: f64,
    /// Wire statistics (messages, bytes) for the projection.
    pub net: NetSnapshot,
    /// Raw parcelport counters (frames, parcels, coalesced batches, queue
    /// high-water mark).
    pub port: PortSnapshot,
    /// Aggregate work counters across localities.
    pub work: WorkEstimate,
    /// Aggregate scheduler statistics across localities.
    pub runtime_stats: amt::RuntimeStats,
    /// Leaves owned per locality (load balance diagnostic).
    pub owned_per_node: Vec<usize>,
    /// Unified counter dump (`/runtime/locality{N}/…`, `/comms/…`,
    /// `/gravity/…`, `/work/…`, `/energy/…`) sampled at the end of the run.
    pub counters: CounterSnapshot,
    /// Number of periodic counter samples taken (0 unless
    /// `--sample_interval_ms` was set).
    pub counter_samples: u64,
}

/// Per-locality domain component.
struct Domain {
    tree: Octree,
    cfg: OctoConfig,
    /// Ownership flag per leaf position.
    owned: Vec<bool>,
    /// Leaf positions whose data must be shipped to the peer.
    halo_out: Vec<usize>,
    /// Snapshot staged for the peer's halo pull.
    halo_snapshot: Vec<(u64, Vec<f64>)>,
    /// Own leaves' blocks (leaf position → wire blocks), staged for pull.
    blocks_snapshot: Vec<(u64, BlocksWire)>,
    /// Recycled gravity solve state (moments table, traversal order).
    gravity_ws: GravityWorkspace,
    /// Cross-step interaction-list cache keyed on tree topology.
    interaction_cache: InteractionCache,
    /// Per-worker gravity scratch buffers.
    scratch: ScratchPool,
    /// Recycled per-leaf hydro output buffers.
    state_pool: RecyclePool<[f64; crate::star::NF]>,
    /// Recycled SoA primitive staging buffers for the SIMD hydro path.
    stage_pool: RecyclePool<f64>,
    /// Work counters.
    work: WorkEstimate,
}

/// Serializable form of [`BlockSoA`] — the SoA lanes go on the wire as four
/// flat streams, same layout the SIMD kernels consume.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BlocksWire {
    mass: Vec<f64>,
    x: Vec<f64>,
    y: Vec<f64>,
    z: Vec<f64>,
}

impl From<&BlockSoA> for BlocksWire {
    fn from(b: &BlockSoA) -> Self {
        BlocksWire {
            mass: b.mass.to_vec(),
            x: b.x.to_vec(),
            y: b.y.to_vec(),
            z: b.z.to_vec(),
        }
    }
}

impl From<&BlocksWire> for BlockSoA {
    fn from(w: &BlocksWire) -> Self {
        let mut b = BlockSoA::zero();
        b.mass.copy_from_slice(&w.mass);
        b.x.copy_from_slice(&w.x);
        b.y.copy_from_slice(&w.y);
        b.z.copy_from_slice(&w.z);
        b
    }
}

/// Report returned by the solve phase.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct StepReport {
    owned_cells: u64,
    far_interactions: u64,
    near_interactions: u64,
    hydro_flops: u64,
    gravity_flops: u64,
    bytes: u64,
    mac_evals: u64,
}

fn build_domain(cfg: OctoConfig, node: u32, nodes: u32) -> Domain {
    let star = RotatingStar::paper_default();
    let tree = Octree::build(&star, &cfg, 1.0);
    let n_leaves = tree.leaf_count();
    // Spatial split at x = 0 (supervisor keeps x < 0).
    let owned: Vec<bool> = tree
        .leaf_ids()
        .iter()
        .map(|&l| {
            if nodes == 1 {
                return true;
            }
            let (origin, dx) = tree.node_geometry(l);
            let cx = origin[0] + 4.0 * dx;
            if node == 0 {
                cx < 0.0
            } else {
                cx >= 0.0
            }
        })
        .collect();
    // Halo: owned leaves with a face neighbour owned by the peer.
    let leaf_pos = gravity::leaf_positions(&tree);
    let mut halo_out = Vec::new();
    for (pos, &leaf) in tree.leaf_ids().iter().enumerate() {
        if !owned[pos] {
            continue;
        }
        let node_ref = tree.node(leaf);
        let mut boundary = false;
        for face in Face::ALL {
            // Probe across the face; any neighbouring leaf owned remotely
            // makes this a halo leaf. Sampling covers level jumps.
            let (origin, dxc) = tree.node_geometry(leaf);
            let size = tree.node_size(node_ref.level);
            let mut p = [
                origin[0] + size / 2.0,
                origin[1] + size / 2.0,
                origin[2] + size / 2.0,
            ];
            p[face.axis()] += face.sign() as f64 * (size / 2.0 + dxc / 2.0);
            if p[face.axis()].abs() >= 1.0 {
                continue;
            }
            let (nl, _) = tree.locate(p);
            if !owned[leaf_pos[nl]] {
                boundary = true;
                break;
            }
        }
        if boundary {
            halo_out.push(pos);
        }
    }
    assert_eq!(n_leaves, owned.len());
    Domain {
        tree,
        cfg,
        owned,
        halo_out,
        halo_snapshot: Vec::new(),
        blocks_snapshot: Vec::new(),
        gravity_ws: GravityWorkspace::new(),
        interaction_cache: InteractionCache::new(),
        scratch: ScratchPool::new(),
        state_pool: RecyclePool::new(),
        stage_pool: RecyclePool::new(),
        work: WorkEstimate::default(),
    }
}

fn owned_leaves(domain: &Domain) -> Vec<(usize, NodeId)> {
    domain
        .tree
        .leaf_ids()
        .iter()
        .enumerate()
        .filter(|(pos, _)| domain.owned[*pos])
        .map(|(pos, &l)| (pos, l))
        .collect()
}

/// Register all domain actions on `cluster`.
fn register_actions(cluster: &Cluster) {
    // Stage the halo snapshot (owned boundary leaves' interior data).
    cluster.register_action("prepare_halo", |ctx: &LocalityHandle, gid, (): ()| -> u64 {
        ctx.with_component::<Domain, _>(gid, |d| {
            d.halo_snapshot = d
                .halo_out
                .iter()
                .map(|&pos| {
                    let leaf = d.tree.leaf_ids()[pos];
                    (pos as u64, d.tree.subgrid(leaf).interior_data())
                })
                .collect();
            d.halo_snapshot.len() as u64
        })
        .expect("domain component")
    });

    // Serve the staged halo.
    cluster.register_action(
        "get_halo",
        |ctx: &LocalityHandle, gid, (): ()| -> Vec<(u64, Vec<f64>)> {
            ctx.with_component::<Domain, _>(gid, |d| d.halo_snapshot.clone())
                .expect("domain component")
        },
    );

    // Pull the peer's halo and install it into the local tree replica.
    cluster.register_action(
        "pull_halo",
        |ctx: &LocalityHandle, gid, peer: Option<Gid>| -> u64 {
            let Some(peer) = peer else { return 0 };
            let halo: Vec<(u64, Vec<f64>)> = ctx.invoke(peer, "get_halo", &()).get();
            ctx.with_component::<Domain, _>(gid, |d| {
                for (pos, data) in &halo {
                    let leaf = d.tree.leaf_ids()[*pos as usize];
                    d.tree.subgrid_mut(leaf).set_interior_data(data);
                }
                halo.len() as u64
            })
            .expect("domain component")
        },
    );

    // Ghost fill + local CFL reduction: max(signal speed / dx) over owned
    // leaves.
    cluster.register_action(
        "local_max_rate",
        |ctx: &LocalityHandle, gid, (): ()| -> f64 {
            let handle = ctx.runtime();
            ctx.with_component::<Domain, _>(gid, |d| {
                let targets = owned_leaves(d);
                // Parallel gather of ghost data, serial apply.
                let gathered: Vec<(NodeId, FaceSlabs)> = {
                    let tree = &d.tree;
                    let slots: Vec<std::sync::Mutex<FaceSlabs>> = (0..targets.len())
                        .map(|_| std::sync::Mutex::new(Vec::new()))
                        .collect();
                    scope(&handle, |sc| {
                        for (slot, &(_, leaf)) in slots.iter().zip(&targets) {
                            sc.spawn(move || {
                                let data: FaceSlabs = Face::ALL
                                    .into_iter()
                                    .map(|f| (f, tree.ghost_data_for(leaf, f)))
                                    .collect();
                                *slot.lock().unwrap() = data;
                            });
                        }
                    });
                    targets
                        .iter()
                        .zip(slots)
                        .map(|(&(_, leaf), slot)| (leaf, slot.into_inner().unwrap()))
                        .collect()
                };
                for (leaf, faces) in gathered {
                    for (face, data) in faces {
                        d.tree.apply_ghost(leaf, face, &data);
                    }
                }
                // Ghost-path accounting (values per face slab: NF × NG × NX²).
                let slab_values = (crate::star::NF * crate::subgrid::NG * 8 * 8) as u64;
                for (_, leaf) in owned_leaves(d) {
                    for face in Face::ALL {
                        if d.tree.ghost_fast_path(leaf, face) {
                            d.work.ghost_slab_bytes += slab_values * 8;
                        } else {
                            d.work.ghost_samples += slab_values;
                        }
                    }
                }
                let dispatch = Dispatch::new(d.cfg.hydro_kernel, &handle, 4);
                let mut max_rate = 1e-30_f64;
                for (_, leaf) in owned_leaves(d) {
                    let g = d.tree.subgrid(leaf);
                    max_rate = max_rate.max(hydro::max_signal_speed(g, &dispatch) / g.dx);
                }
                max_rate
            })
            .expect("domain component")
        },
    );

    // P2M for owned leaves; stage the wire snapshot for the peer.
    cluster.register_action(
        "prepare_blocks",
        |ctx: &LocalityHandle, gid, (): ()| -> u64 {
            ctx.with_component::<Domain, _>(gid, |d| {
                d.blocks_snapshot = owned_leaves(d)
                    .into_iter()
                    .map(|(pos, leaf)| {
                        let b = gravity::compute_blocks(d.tree.subgrid(leaf));
                        (pos as u64, BlocksWire::from(&b))
                    })
                    .collect();
                d.blocks_snapshot.len() as u64
            })
            .expect("domain component")
        },
    );

    cluster.register_action(
        "get_blocks",
        |ctx: &LocalityHandle, gid, (): ()| -> Vec<(u64, BlocksWire)> {
            ctx.with_component::<Domain, _>(gid, |d| d.blocks_snapshot.clone())
                .expect("domain component")
        },
    );

    // Pull peer blocks, run gravity (FMM over the complete mass
    // distribution) and hydro for owned leaves, apply.
    cluster.register_action(
        "solve_step",
        |ctx: &LocalityHandle, gid, (dt, peer): (f64, Option<Gid>)| -> StepReport {
            // Pull strictly *before* taking the component lock: the peer's
            // `get_blocks` needs its own lock, and both sides solving at
            // once must not deadlock.
            let peer_blocks: Vec<(u64, BlocksWire)> = match peer {
                Some(p) => ctx.invoke(p, "get_blocks", &()).get(),
                None => Vec::new(),
            };
            let handle = ctx.runtime();
            ctx.with_component::<Domain, _>(gid, |d| {
                solve_step_locked(d, &handle, dt, &peer_blocks)
            })
            .expect("domain component")
        },
    );
}

struct LeafOut {
    leaf: NodeId,
    acc: Vec<[f64; 3]>,
    state: Vec<[f64; crate::star::NF]>,
    far: u64,
    near: u64,
}

fn solve_step_locked(
    d: &mut Domain,
    handle: &amt::Handle,
    dt: f64,
    peer_blocks: &[(u64, BlocksWire)],
) -> StepReport {
    let n = d.tree.leaf_count();
    // Assemble the global block table: own + peer.
    let mut all_blocks: Vec<Option<BlockSoA>> = (0..n).map(|_| None).collect();
    for (pos, w) in &d.blocks_snapshot {
        all_blocks[*pos as usize] = Some(BlockSoA::from(w));
    }
    for (pos, w) in peer_blocks {
        all_blocks[*pos as usize] = Some(BlockSoA::from(w));
    }
    let blocks: Vec<BlockSoA> = all_blocks
        .into_iter()
        .map(|b| b.unwrap_or_else(BlockSoA::zero))
        .collect();
    d.gravity_ws.upward_pass(&d.tree, &blocks);
    if !d.cfg.use_interaction_cache {
        d.interaction_cache.invalidate();
    }
    let rebuilt = d
        .interaction_cache
        .ensure(&d.tree, &d.gravity_ws.moments, d.cfg.theta)
        .rebuilt;
    let multipole = Dispatch::new(d.cfg.multipole_kernel, handle, 4);
    let monopole = Dispatch::new(d.cfg.monopole_kernel, handle, 4);
    let hydro_d = Dispatch::new(d.cfg.hydro_kernel, handle, 4);
    let targets = owned_leaves(d);

    // Parallel kernels over owned leaves.
    let mut results: Vec<Option<LeafOut>> = (0..targets.len()).map(|_| None).collect();
    {
        let tree = &d.tree;
        let blocks = &blocks;
        let ws = &d.gravity_ws;
        let lists = d.interaction_cache.lists();
        let scratch_pool = &d.scratch;
        let kernels = GravityKernels {
            multipole: &multipole,
            monopole: &monopole,
            simd: d.cfg.simd_policy(),
        };
        let kernels = &kernels;
        let hydro_d = &hydro_d;
        let policy = d.cfg.simd_policy();
        let state_pool = &d.state_pool;
        let stage_pool = &d.stage_pool;
        scope(handle, |sc| {
            for (slot, &(_, leaf)) in results.iter_mut().zip(&targets) {
                sc.spawn(move || {
                    let (far, near) = &lists[ws.leaf_pos[leaf]];
                    let mut scratch = scratch_pool.take();
                    let acc = gravity::accel_for_leaf_with(
                        tree,
                        &ws.moments,
                        blocks,
                        &ws.leaf_pos,
                        leaf,
                        far,
                        near,
                        kernels,
                        &mut scratch,
                    );
                    scratch_pool.put(scratch);
                    let state = hydro::step_interior_policy(
                        tree.subgrid(leaf),
                        dt,
                        hydro_d,
                        policy,
                        state_pool,
                        stage_pool,
                    );
                    *slot = Some(LeafOut {
                        leaf,
                        acc,
                        state,
                        far: far.len() as u64,
                        near: near.len() as u64,
                    });
                });
            }
        });
    }

    // Apply.
    let lanes = d.cfg.simd_policy().lanes() as u64;
    let mut far_total = 0;
    let mut near_total = 0;
    let mut far_padded = 0;
    for out in results.into_iter().map(|r| r.expect("scope done")) {
        let grid = d.tree.subgrid_mut(out.leaf);
        hydro::apply_interior(grid, &out.state);
        hydro::apply_gravity_source(grid, &out.acc, dt);
        d.state_pool.release(out.state);
        far_total += out.far;
        near_total += out.near;
        far_padded += rv_machine::simd_padded_interactions(out.far, lanes);
    }

    let owned_cells = targets.len() as u64 * crate::subgrid::CELLS as u64;
    let far_inter = far_padded * BLOCKS as u64;
    let near_inter = near_total * (BLOCKS * BLOCKS) as u64;
    // MAC evaluations are only executed on a cache miss (proxied by the
    // list sizes, as in the node-level driver).
    let mac_evals = if rebuilt { far_total + near_total } else { 0 };
    let report = StepReport {
        owned_cells,
        far_interactions: far_inter,
        near_interactions: near_inter,
        hydro_flops: owned_cells * hydro::HYDRO_FLOPS_PER_CELL,
        gravity_flops: far_inter * gravity::MULTIPOLE_FLOPS_PER_INTERACTION
            + near_inter * gravity::MONOPOLE_FLOPS_PER_INTERACTION
            + mac_evals * gravity::MAC_FLOPS_PER_EVAL,
        bytes: owned_cells * hydro::HYDRO_BYTES_PER_CELL,
        mac_evals,
    };
    d.work.hydro_flops += report.hydro_flops;
    d.work.gravity_flops += report.gravity_flops;
    d.work.bytes += report.bytes;
    d.work.far_interactions += report.far_interactions;
    d.work.near_interactions += report.near_interactions;
    d.work.mac_evals += report.mac_evals;
    report
}

/// Entry point for distributed runs.
pub struct DistRun;

impl DistRun {
    /// Execute a distributed rotating-star run and collect [`DistMetrics`].
    pub fn execute(config: DistConfig) -> DistMetrics {
        assert!(
            (1..=2).contains(&config.nodes),
            "the in-house cluster has two boards"
        );
        let cluster = Cluster::new(ClusterConfig {
            localities: config.nodes,
            threads_per_locality: config.threads_per_node,
            backend: config.backend,
            coalesce: config.coalesce,
        });
        register_actions(&cluster);

        // Create one domain component per locality.
        let mut gids: Vec<Gid> = Vec::new();
        let mut owned_per_node = Vec::new();
        let mut leaf_count = 0;
        for node in 0..config.nodes {
            let domain = build_domain(config.octo.clone(), node, config.nodes);
            leaf_count = domain.tree.leaf_count();
            owned_per_node.push(domain.owned.iter().filter(|&&o| o).count());
            let loc = cluster.locality(node);
            gids.push(loc.new_component(domain));
        }
        let cell_count = leaf_count * crate::subgrid::CELLS;
        let supervisor = cluster.locality(0);
        cluster.reset_net_stats();

        let peer_of = |i: usize| -> Option<Gid> {
            if config.nodes == 2 {
                Some(gids[1 - i])
            } else {
                None
            }
        };

        let tracing = config.octo.trace_out.is_some();
        if tracing {
            trace::reset();
            trace::set_enabled(true);
        }
        // The supervising thread gets its own Chrome lane, distinct from
        // every locality pid: its phase envelopes span whole remote
        // exchanges, and folding them into locality 0's lane would hide
        // the wire legs from the distributed critical-path analysis.
        trace::set_thread_label(config.nodes, trace::ThreadLabel::Named("driver"));
        let mut registry = CounterRegistry::new();
        cluster.register_counters(&mut registry);
        let registry = std::sync::Arc::new(registry);
        let sampler = config.octo.sample_interval_ms.map(|ms| {
            apex_lite::Sampler::start(
                std::sync::Arc::clone(&registry),
                std::time::Duration::from_millis(ms),
            )
        });
        let mut prev = registry.sample();
        let mut step_deltas: Vec<CounterSnapshot> = Vec::new();

        let start = std::time::Instant::now();
        let steps = config.octo.stop_step;
        for step in 0..steps {
            // Stamp the step index so queue-depth high-water marks can be
            // attributed to the step that produced them.
            cluster.note_step(u64::from(step));
            // Phase barriers driven from the supervisor, mirroring the
            // paper's supervisor/delegate roles.
            let barrier_u64 = |action: &str, with_peer: bool| {
                let futs: Vec<amt::Future<u64>> = gids
                    .iter()
                    .enumerate()
                    .map(|(i, &g)| {
                        if with_peer {
                            supervisor.invoke(g, action, &peer_of(i))
                        } else {
                            supervisor.invoke(g, action, &())
                        }
                    })
                    .collect();
                amt::when_all(futs).get();
            };
            {
                let _span = trace::span(Cat::Phase, "halo_exchange");
                barrier_u64("prepare_halo", false);
                barrier_u64("pull_halo", true);
            }
            let dt = {
                let _span = trace::span(Cat::Phase, "cfl_reduction");
                let rates: Vec<f64> = amt::when_all(
                    gids.iter()
                        .map(|&g| supervisor.invoke(g, "local_max_rate", &()))
                        .collect(),
                )
                .get();
                config.octo.cfl / rates.iter().copied().fold(1e-30_f64, f64::max)
            };
            {
                // P2M + block exchange: the distributed gravity front half.
                let _span = trace::span(Cat::Phase, "gravity_solve");
                barrier_u64("prepare_blocks", false);
            }
            {
                // FMM + hydro + apply, fused per locality in `solve_step`.
                let _span = trace::span(Cat::Phase, "hydro_step");
                let _reports: Vec<StepReport> = amt::when_all(
                    gids.iter()
                        .enumerate()
                        .map(|(i, &g)| supervisor.invoke(g, "solve_step", &(dt, peer_of(i))))
                        .collect(),
                )
                .get();
            }
            if config.octo.counter_table {
                let cur = registry.sample();
                step_deltas.push(cur.delta(&prev));
                prev = cur;
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        // Close any open coalescer batches so the port counters are final.
        {
            let _span = trace::span(Cat::Phase, "comm_flush");
            cluster.flush_network();
        }

        // Aggregate work counters.
        let mut work = WorkEstimate::default();
        let mut counters = registry.sample();
        for (i, &g) in gids.iter().enumerate() {
            let loc = cluster.locality(i as u32);
            let (w, cache) = loc
                .with_component::<Domain, _>(g, |d| (d.work, d.interaction_cache.stats()))
                .expect("domain component");
            work.hydro_flops += w.hydro_flops;
            work.gravity_flops += w.gravity_flops;
            work.bytes += w.bytes;
            work.far_interactions += w.far_interactions;
            work.near_interactions += w.near_interactions;
            work.ghost_samples += w.ghost_samples;
            work.ghost_slab_bytes += w.ghost_slab_bytes;
            work.mac_evals += w.mac_evals;
            counters.set_count(format!("/gravity/locality{i}/cache_hits"), cache.hits);
            counters.set_count(format!("/gravity/locality{i}/cache_misses"), cache.misses);
        }
        counters.set_count("/gravity/far_interactions", work.far_interactions);
        counters.set_count("/gravity/near_interactions", work.near_interactions);
        counters.set_count("/gravity/mac_evals", work.mac_evals);
        counters.set_count("/work/hydro_flops", work.hydro_flops);
        counters.set_count("/work/gravity_flops", work.gravity_flops);
        counters.set_count("/work/bytes", work.bytes);
        counters.set_count("/work/ghost_samples", work.ghost_samples);
        counters.set_count("/work/ghost_slab_bytes", work.ghost_slab_bytes);
        rv_machine::energy_counters_into(
            &mut counters,
            rv_machine::CpuArch::Jh7110,
            config.nodes,
            config.threads_per_node as u32,
            elapsed,
        );
        if config.octo.counter_table {
            print!(
                "{}",
                apex_lite::render_step_table("distributed per-step counters", &step_deltas)
            );
            print!(
                "{}",
                apex_lite::render_table("distributed run totals", &counters)
            );
        }
        // Wind down the sampler (if any) before exporting: its series ride
        // along in the Chrome trace as `"C"` counter events and back the
        // `--metrics-out` CSV dump.
        let mut series = match sampler {
            Some(s) => s.stop(),
            None => apex_lite::TimeSeries::default(),
        };
        if config.octo.metrics_out.is_some() && series.samples == 0 {
            // No cadence requested: still emit a one-shot final snapshot so
            // the CSV is never empty.
            series.push(trace::now_ns(), &counters);
        }
        if let Some(path) = &config.octo.metrics_out {
            if let Err(e) = std::fs::write(path, series.render_csv()) {
                eprintln!("warning: failed to write metrics to {path}: {e}");
            }
        }
        if let Some(path) = &config.octo.trace_out {
            trace::set_enabled(false);
            let t = trace::drain();
            if let Err(e) = std::fs::write(path, apex_lite::export_with_counters(&t, &series)) {
                eprintln!("warning: failed to write trace to {path}: {e}");
            }
        }

        let cells_processed = cell_count as u64 * u64::from(steps);
        DistMetrics {
            nodes: config.nodes,
            steps,
            leaf_count,
            cell_count,
            cells_processed,
            elapsed_seconds: elapsed,
            cells_per_second: cells_processed as f64 / elapsed.max(1e-12),
            net: cluster.net_stats(),
            port: cluster.port_stats(),
            work,
            runtime_stats: cluster.runtime_stats(),
            owned_per_node,
            counters,
            counter_samples: series.samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel_backend::KernelType;

    fn tiny(nodes: u32, backend: NetBackend) -> DistConfig {
        DistConfig {
            nodes,
            threads_per_node: 2,
            backend,
            coalesce: CoalesceConfig::default(),
            octo: OctoConfig {
                max_level: 1,
                stop_step: 2,
                threads: 2,
                ..OctoConfig::with_all_kernels(KernelType::KokkosSerial)
            },
        }
    }

    #[test]
    fn single_node_run_has_no_wire_traffic() {
        let m = DistRun::execute(tiny(1, NetBackend::Tcp));
        assert_eq!(m.nodes, 1);
        assert_eq!(m.net.messages, 0, "single locality stays off the wire");
        assert!(m.net.local_actions > 0);
        assert!(m.cells_per_second > 0.0);
        assert_eq!(m.owned_per_node, vec![m.leaf_count]);
    }

    #[test]
    fn two_node_run_exchanges_real_bytes() {
        let m = DistRun::execute(tiny(2, NetBackend::Tcp));
        assert_eq!(m.nodes, 2);
        assert!(m.net.messages > 0);
        assert!(
            m.net.bytes > 10_000,
            "halo + blocks are real payloads: {}",
            m.net.bytes
        );
        assert_eq!(m.owned_per_node.iter().sum::<usize>(), m.leaf_count);
        // The x = 0 split of a centred star is balanced.
        let diff = m.owned_per_node[0].abs_diff(m.owned_per_node[1]);
        assert!(
            diff <= m.leaf_count / 4,
            "imbalanced split: {:?}",
            m.owned_per_node
        );
    }

    #[test]
    fn two_node_matches_single_node_shape() {
        let m1 = DistRun::execute(tiny(1, NetBackend::Tcp));
        let m2 = DistRun::execute(tiny(2, NetBackend::Tcp));
        assert_eq!(m1.leaf_count, m2.leaf_count);
        assert_eq!(m1.cells_processed, m2.cells_processed);
    }

    #[test]
    fn mpi_and_tcp_same_messages_different_backend() {
        let t = DistRun::execute(tiny(2, NetBackend::Tcp));
        let m = DistRun::execute(tiny(2, NetBackend::Mpi));
        // Identical communication pattern; the backend only changes the
        // modelled link cost (consumed by the Fig. 8 projection).
        assert_eq!(t.net.messages, m.net.messages);
        assert_eq!(t.net.bytes, m.net.bytes);
    }

    #[test]
    fn lci_backend_same_traffic_as_tcp() {
        let t = DistRun::execute(tiny(2, NetBackend::Tcp));
        let l = DistRun::execute(tiny(2, NetBackend::Lci));
        // The explicit-progress port carries the identical communication
        // pattern; only the modelled link cost differs.
        assert_eq!(t.net.messages, l.net.messages);
        assert_eq!(t.net.bytes, l.net.bytes);
        assert_eq!(t.port.parcels, l.port.parcels);
    }

    #[test]
    fn coalescing_preserves_parcels_and_never_inflates_frames() {
        let base = DistRun::execute(tiny(2, NetBackend::Tcp));
        let mut cfg = tiny(2, NetBackend::Tcp);
        cfg.coalesce = CoalesceConfig::enabled();
        let coal = DistRun::execute(cfg);
        // Same application → same parcels; batching can only merge frames.
        assert_eq!(coal.port.parcels, base.port.parcels);
        assert!(
            coal.port.messages <= base.port.messages,
            "coalesced {} > baseline {}",
            coal.port.messages,
            base.port.messages
        );
        assert_eq!(base.port.batches, 0, "baseline runs uncoalesced");
    }

    #[test]
    fn from_octo_honours_parcelport_flag() {
        let octo = OctoConfig::from_args(["--hpx:parcelport=lci", "--hpx:threads=2"]).unwrap();
        let cfg = DistConfig::from_octo(2, octo);
        assert_eq!(cfg.backend, NetBackend::Lci);
        assert_eq!(cfg.threads_per_node, 2);
        assert!(!cfg.coalesce.enabled, "coalescing stays off unless asked");
        let octo = OctoConfig::from_args(["--coalesce=on"]).unwrap();
        assert!(DistConfig::from_octo(2, octo).coalesce.enabled);
    }

    #[test]
    #[should_panic(expected = "two boards")]
    fn three_nodes_rejected() {
        let _ = DistRun::execute(tiny(3, NetBackend::Tcp));
    }
}
