//! The 8×8×8 sub-grid — the unit of computation in Octo-Tiger.
//!
//! "Each node in the octree contains a 8×8×8 sub-grid for computational
//! efficiency" (paper §3.3), i.e. 512 cells per tree leaf; every compute
//! kernel operates on one sub-grid (plus ghost layers) at a time. Storage is
//! a rank-4 `kokkos_lite::View` of `[field][x][y][z]` including a 2-cell
//! ghost shell (the hydro reconstruction stencil needs two upwind cells).

use kokkos_lite::View;

use crate::star::{field, InitialModel, RotatingStar, GAMMA, NF, P_FLOOR, RHO_FLOOR};

/// Interior cells per dimension (the paper's 8).
pub const NX: usize = 8;
/// Ghost width (minmod reconstruction + HLL need 2).
pub const NG: usize = 2;
/// Total cells per dimension including ghosts.
pub const NT: usize = NX + 2 * NG;
/// Interior cells per sub-grid (the paper's 512).
pub const CELLS: usize = NX * NX * NX;

/// One face of a sub-grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Face {
    /// −x
    XM,
    /// +x
    XP,
    /// −y
    YM,
    /// +y
    YP,
    /// −z
    ZM,
    /// +z
    ZP,
}

impl Face {
    /// All six faces.
    pub const ALL: [Face; 6] = [Face::XM, Face::XP, Face::YM, Face::YP, Face::ZM, Face::ZP];

    /// Axis (0 = x, 1 = y, 2 = z).
    pub fn axis(self) -> usize {
        match self {
            Face::XM | Face::XP => 0,
            Face::YM | Face::YP => 1,
            Face::ZM | Face::ZP => 2,
        }
    }

    /// −1 for the low face, +1 for the high face.
    pub fn sign(self) -> i64 {
        match self {
            Face::XM | Face::YM | Face::ZM => -1,
            Face::XP | Face::YP | Face::ZP => 1,
        }
    }

    /// The opposite face.
    pub fn opposite(self) -> Face {
        match self {
            Face::XM => Face::XP,
            Face::XP => Face::XM,
            Face::YM => Face::YP,
            Face::YP => Face::YM,
            Face::ZM => Face::ZP,
            Face::ZP => Face::ZM,
        }
    }
}

/// One leaf's field data: conserved variables on an 8³ interior plus ghosts.
#[derive(Debug, Clone)]
pub struct SubGrid {
    /// Conserved fields `[NF][NT][NT][NT]`, ghost shell included.
    pub u: View<f64>,
    /// Physical coordinate of the low corner of interior cell (0, 0, 0).
    pub origin: [f64; 3],
    /// Cell width.
    pub dx: f64,
}

impl SubGrid {
    /// Zero-initialized sub-grid at `origin` with cell width `dx`.
    pub fn new(origin: [f64; 3], dx: f64) -> Self {
        assert!(dx > 0.0, "cell width must be positive");
        SubGrid {
            u: View::new_4d("u", NF, NT, NT, NT),
            origin,
            dx,
        }
    }

    /// Physical centre of interior cell `(i, j, k)` (ghost indices allowed:
    /// pass −1, −2, NX, NX+1).
    pub fn cell_center(&self, i: i64, j: i64, k: i64) -> [f64; 3] {
        [
            self.origin[0] + (i as f64 + 0.5) * self.dx,
            self.origin[1] + (j as f64 + 0.5) * self.dx,
            self.origin[2] + (k as f64 + 0.5) * self.dx,
        ]
    }

    /// Read field `f` at interior-relative index (ghosts: −NG..NX+NG).
    #[inline]
    pub fn at(&self, f: usize, i: i64, j: i64, k: i64) -> f64 {
        self.u.get4(
            f,
            (i + NG as i64) as usize,
            (j + NG as i64) as usize,
            (k + NG as i64) as usize,
        )
    }

    /// Write field `f` at interior-relative index.
    #[inline]
    pub fn set(&mut self, f: usize, i: i64, j: i64, k: i64, v: f64) {
        self.u.set4(
            f,
            (i + NG as i64) as usize,
            (j + NG as i64) as usize,
            (k + NG as i64) as usize,
            v,
        );
    }

    /// Initialize every interior cell (and ghost shell) from an initial
    /// model.
    pub fn init_from_model<M: InitialModel>(&mut self, model: &M) {
        let ng = NG as i64;
        for i in -ng..(NX as i64 + ng) {
            for j in -ng..(NX as i64 + ng) {
                for k in -ng..(NX as i64 + ng) {
                    let c = self.cell_center(i, j, k);
                    let u = model.conserved_at(c[0], c[1], c[2]);
                    for (f, v) in u.iter().enumerate() {
                        self.set(f, i, j, k, *v);
                    }
                }
            }
        }
    }

    /// Initialize from the single rotating star (the paper's scenario).
    pub fn init_from_star(&mut self, star: &RotatingStar) {
        self.init_from_model(star);
    }

    /// Primitive state (ρ, vx, vy, vz, p) at an index, floors applied.
    #[inline]
    pub fn primitives(&self, i: i64, j: i64, k: i64) -> [f64; 5] {
        let rho = self.at(field::RHO, i, j, k).max(RHO_FLOOR);
        let vx = self.at(field::SX, i, j, k) / rho;
        let vy = self.at(field::SY, i, j, k) / rho;
        let vz = self.at(field::SZ, i, j, k) / rho;
        let e = self.at(field::EGAS, i, j, k);
        let kinetic = 0.5 * rho * (vx * vx + vy * vy + vz * vz);
        let p = ((GAMMA - 1.0) * (e - kinetic)).max(P_FLOOR);
        [rho, vx, vy, vz, p]
    }

    /// Fill an SoA primitive staging view over the **whole ghost frame**:
    /// `out` is `[5][NT][NT][NT]` flattened (field-major, z fastest), so
    /// `out[q·NT³ + ((i+NG)·NT + j+NG)·NT + k+NG]` is primitive `q` of
    /// ghost-frame cell `(i, j, k)`. Each primitive becomes a contiguous
    /// z-lane the SIMD hydro kernels load with plain unit-stride packs —
    /// and each cell's conserved→primitive conversion (with floors) happens
    /// exactly once per step instead of once per stencil visit.
    ///
    /// Per-lane values are bit-identical to [`SubGrid::primitives`].
    pub fn stage_primitives(&self, out: &mut [f64]) {
        assert_eq!(out.len(), 5 * NT * NT * NT, "staging view size mismatch");
        let ng = NG as i64;
        let stride_f = NT * NT * NT;
        for x in 0..NT {
            for y in 0..NT {
                for z in 0..NT {
                    let prim = self.primitives(x as i64 - ng, y as i64 - ng, z as i64 - ng);
                    let c = (x * NT + y) * NT + z;
                    for (q, v) in prim.iter().enumerate() {
                        out[q * stride_f + c] = *v;
                    }
                }
            }
        }
    }

    /// Volume integral of field `f` over the interior.
    pub fn integral(&self, f: usize) -> f64 {
        let vol = self.dx * self.dx * self.dx;
        let mut sum = 0.0;
        for i in 0..NX as i64 {
            for j in 0..NX as i64 {
                for k in 0..NX as i64 {
                    sum += self.at(f, i, j, k);
                }
            }
        }
        sum * vol
    }

    /// Total mass in the sub-grid interior.
    pub fn mass(&self) -> f64 {
        self.integral(field::RHO)
    }

    /// Flatten the interior (no ghosts) to `NF × 512` values — the payload
    /// of an inter-locality halo-leaf exchange.
    pub fn interior_data(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(NF * NX * NX * NX);
        for f in 0..NF {
            for i in 0..NX as i64 {
                for j in 0..NX as i64 {
                    for k in 0..NX as i64 {
                        out.push(self.at(f, i, j, k));
                    }
                }
            }
        }
        out
    }

    /// Interior values of one field in cell-index order (row-major
    /// `(i·NX + j)·NX + k`, no ghosts) — the contiguous SoA-friendly load
    /// the gravity P2M kernel streams instead of strided per-cell `at`
    /// calls through the ghost frame.
    pub fn interior_field(&self, f: usize, out: &mut [f64; CELLS]) {
        for i in 0..NX {
            for j in 0..NX {
                for k in 0..NX {
                    out[(i * NX + j) * NX + k] = self.at(f, i as i64, j as i64, k as i64);
                }
            }
        }
    }

    /// Install interior data produced by [`SubGrid::interior_data`].
    pub fn set_interior_data(&mut self, data: &[f64]) {
        assert_eq!(data.len(), NF * NX * NX * NX, "interior data size mismatch");
        let mut it = data.iter();
        for f in 0..NF {
            for i in 0..NX as i64 {
                for j in 0..NX as i64 {
                    for k in 0..NX as i64 {
                        self.set(f, i, j, k, *it.next().expect("sized above"));
                    }
                }
            }
        }
    }

    /// Extract the interior slab of depth `NG` adjacent to `face`
    /// (what a same-level neighbour copies into its ghosts):
    /// layout `[field][depth][a][b]`, flattened.
    pub fn face_slab(&self, face: Face) -> Vec<f64> {
        let mut out = Vec::with_capacity(NF * NG * NX * NX);
        for f in 0..NF {
            for d in 0..NG as i64 {
                for a in 0..NX as i64 {
                    for b in 0..NX as i64 {
                        let (i, j, k) = face_cell(face, d, a, b, false);
                        out.push(self.at(f, i, j, k));
                    }
                }
            }
        }
        out
    }

    /// Install `data` (from the neighbour's [`SubGrid::face_slab`] of the
    /// *opposite* face) into this sub-grid's ghost cells at `face`.
    pub fn set_ghost_slab(&mut self, face: Face, data: &[f64]) {
        assert_eq!(data.len(), NF * NG * NX * NX, "ghost slab size mismatch");
        let mut it = data.iter();
        for f in 0..NF {
            for d in 0..NG as i64 {
                for a in 0..NX as i64 {
                    for b in 0..NX as i64 {
                        let (i, j, k) = face_cell(face, d, a, b, true);
                        self.set(f, i, j, k, *it.next().expect("sized above"));
                    }
                }
            }
        }
    }
}

/// Index of the `d`-th layer cell at transverse position `(a, b)` on `face`;
/// `ghost` selects the ghost shell (outside) vs the interior slab (inside).
///
/// Layer ordering is "nearest the face first" on both sides, so a slab read
/// with `ghost = false` on face `F` installs directly with `ghost = true` on
/// the neighbour's `F.opposite()`.
fn face_cell(face: Face, d: i64, a: i64, b: i64, ghost: bool) -> (i64, i64, i64) {
    let n = NX as i64;
    let normal = if ghost {
        match face.sign() {
            -1 => -1 - d,
            _ => n + d,
        }
    } else {
        match face.sign() {
            -1 => d,
            _ => n - 1 - d,
        }
    };
    match face.axis() {
        0 => (normal, a, b),
        1 => (a, normal, b),
        _ => (a, b, normal),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_constants_match_paper() {
        assert_eq!(NX, 8);
        assert_eq!(CELLS, 512, "the paper's 512 cells per sub-grid");
        assert_eq!(NT, 12);
    }

    #[test]
    fn cell_centers() {
        let g = SubGrid::new([0.0, 0.0, 0.0], 0.5);
        assert_eq!(g.cell_center(0, 0, 0), [0.25, 0.25, 0.25]);
        assert_eq!(g.cell_center(-1, 0, 7), [-0.25, 0.25, 3.75]);
    }

    #[test]
    fn get_set_ghost_indices() {
        let mut g = SubGrid::new([0.0; 3], 1.0);
        g.set(field::RHO, -2, 0, 0, 7.0);
        g.set(field::EGAS, 9, 9, 9, 3.0);
        assert_eq!(g.at(field::RHO, -2, 0, 0), 7.0);
        assert_eq!(g.at(field::EGAS, 9, 9, 9), 3.0);
    }

    #[test]
    fn star_init_puts_mass_in_the_middle() {
        let star = RotatingStar::paper_default();
        // Sub-grid covering the star centre.
        let mut g = SubGrid::new([-0.1, -0.1, -0.1], 0.025);
        g.init_from_star(&star);
        assert!(g.mass() > 0.0);
        assert!(g.at(field::RHO, 4, 4, 4) > 0.5, "near-central density");
    }

    #[test]
    fn primitives_recover_initialization() {
        let star = RotatingStar::paper_default();
        let mut g = SubGrid::new([0.0, 0.0, 0.0], 0.02);
        g.init_from_star(&star);
        let c = g.cell_center(2, 3, 4);
        let [rho, vx, vy, _vz, p] = g.primitives(2, 3, 4);
        let r = (c[0] * c[0] + c[1] * c[1] + c[2] * c[2]).sqrt();
        assert!((rho - star.density(r)).abs() < 1e-12);
        assert!((vx + star.omega * c[1]).abs() < 1e-12);
        assert!((vy - star.omega * c[0]).abs() < 1e-12);
        assert!((p - star.pressure(rho)).abs() / p < 1e-9);
    }

    #[test]
    fn staged_primitives_match_per_cell_primitives_bitwise() {
        let star = RotatingStar::paper_default();
        let mut g = SubGrid::new([-0.1, -0.1, -0.1], 0.025);
        g.init_from_star(&star);
        let mut stage = vec![0.0; 5 * NT * NT * NT];
        g.stage_primitives(&mut stage);
        let ng = NG as i64;
        for x in 0..NT {
            for y in 0..NT {
                for z in 0..NT {
                    let want = g.primitives(x as i64 - ng, y as i64 - ng, z as i64 - ng);
                    let c = (x * NT + y) * NT + z;
                    for (q, w) in want.iter().enumerate() {
                        assert_eq!(
                            stage[q * NT * NT * NT + c].to_bits(),
                            w.to_bits(),
                            "primitive {q} at ({x},{y},{z})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn face_slab_roundtrip_between_neighbors() {
        // Two adjacent sub-grids along x: right's XM ghosts must equal
        // left's interior cells at i = NX-1, NX-2 (nearest first).
        let mut left = SubGrid::new([0.0; 3], 1.0);
        let mut right = SubGrid::new([8.0, 0.0, 0.0], 1.0);
        for i in 0..NX as i64 {
            for j in 0..NX as i64 {
                for k in 0..NX as i64 {
                    left.set(field::RHO, i, j, k, (100 * i + 10 * j + k) as f64);
                }
            }
        }
        let slab = left.face_slab(Face::XP);
        right.set_ghost_slab(Face::XM, &slab);
        for j in 0..NX as i64 {
            for k in 0..NX as i64 {
                assert_eq!(
                    right.at(field::RHO, -1, j, k),
                    left.at(field::RHO, 7, j, k),
                    "nearest ghost layer"
                );
                assert_eq!(
                    right.at(field::RHO, -2, j, k),
                    left.at(field::RHO, 6, j, k),
                    "second ghost layer"
                );
            }
        }
    }

    #[test]
    fn face_slab_roundtrip_all_faces() {
        let mut a = SubGrid::new([0.0; 3], 1.0);
        for (n, v) in a.u.as_mut_slice().iter_mut().enumerate() {
            *v = n as f64;
        }
        for face in Face::ALL {
            let mut b = SubGrid::new([0.0; 3], 1.0);
            let slab = a.face_slab(face);
            assert_eq!(slab.len(), NF * NG * NX * NX);
            b.set_ghost_slab(face.opposite(), &slab);
            // The nearest ghost layer of b at face.opposite() equals a's
            // boundary layer at face.
            let probe = |g: &SubGrid, ghost: bool| -> f64 {
                let (i, j, k) =
                    super::face_cell(if ghost { face.opposite() } else { face }, 0, 3, 5, ghost);
                g.at(field::SX, i, j, k)
            };
            assert_eq!(probe(&b, true), probe(&a, false), "{face:?}");
        }
    }

    #[test]
    fn face_axes_and_signs() {
        assert_eq!(Face::XM.axis(), 0);
        assert_eq!(Face::ZP.axis(), 2);
        assert_eq!(Face::YM.sign(), -1);
        assert_eq!(Face::YP.sign(), 1);
        for f in Face::ALL {
            assert_eq!(f.opposite().opposite(), f);
            assert_eq!(f.axis(), f.opposite().axis());
            assert_ne!(f.sign(), f.opposite().sign());
        }
    }

    #[test]
    #[should_panic(expected = "ghost slab size mismatch")]
    fn wrong_slab_size_rejected() {
        let mut g = SubGrid::new([0.0; 3], 1.0);
        g.set_ghost_slab(Face::XM, &[0.0; 3]);
    }

    #[test]
    fn integral_scales_with_volume() {
        let mut g = SubGrid::new([0.0; 3], 2.0);
        g.u.as_mut_slice().fill(0.0);
        for i in 0..NX as i64 {
            for j in 0..NX as i64 {
                for k in 0..NX as i64 {
                    g.set(field::RHO, i, j, k, 1.0);
                }
            }
        }
        assert!((g.mass() - 512.0 * 8.0).abs() < 1e-9);
    }
}
