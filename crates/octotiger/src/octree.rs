//! The adaptive octree — Octo-Tiger's central data structure (paper §3.3):
//! a tree over the cubic domain whose *leaves* carry 8×8×8 sub-grids, refined
//! where the star's mass sits, with 2:1 level grading between face
//! neighbours.
//!
//! In real Octo-Tiger every tree node is an HPX component; here the tree is
//! the node-level structure, and `dist_driver` layers the component/locality
//! split on top.
//!
//! # Storage
//!
//! Node metadata lives in structure-of-arrays lanes (`levels`, `coords`,
//! `parents`, `first_child`) instead of an array of fat `Node` structs: at
//! level 5–6 the tree holds 10⁵–10⁶ nodes and the old 96-byte AoS node (two
//! `Option`s, one of them `[NodeId; 8]` = 64 bytes of children pointers)
//! dominated resident metadata. [`Octree::refine`] always pushes the 8
//! children contiguously, so the children array compresses to a single
//! `first_child: u32` index (`u32::MAX` = leaf) and the `(level, coords)`
//! index key packs into one `u64`. [`Octree::node`] materialises the classic
//! [`Node`] view on demand for callers.
//!
//! # Regrid
//!
//! Mid-run refinement is a three-phase *sweep* so the driver can run the
//! expensive part in parallel:
//!
//! 1. [`Octree::begin_regrid`] — serial: split the requested leaves
//!    structurally and run the 2:1 grading closure (a worklist fixpoint),
//!    returning every `(parent, children)` split of the sweep. Parent
//!    sub-grids stay in place.
//! 2. [`Octree::prolongate_children`] — pure `&self`: compute one split's 8
//!    child sub-grids from the parent's data. Safe to fan out as parallel
//!    tasks.
//! 3. [`Octree::finish_regrid`] — serial: install the child grids, drop the
//!    parent data, bump the topology generation **once for the whole
//!    sweep**, append the sweep's splits to the split log and re-collect the
//!    leaf order.
//!
//! The split log ([`Octree::splits_since`]) is what lets the gravity layer
//! invalidate incrementally: a consumer holding lists built at generation
//! `g0` can ask exactly which nodes stopped being leaves since then.

use std::collections::HashMap;

use crate::config::OctoConfig;
use crate::star::{InitialModel, RotatingStar, NF};
use crate::subgrid::{Face, SubGrid, NG, NT, NX};

/// Index of a node within the tree arena.
pub type NodeId = usize;

/// Sentinel for "no node" in the compressed u32 lanes.
const NONE: u32 = u32::MAX;

/// Heap bytes of one leaf's field data (`[NF][NT][NT][NT]` f64).
pub const SUBGRID_BYTES: usize = NF * NT * NT * NT * std::mem::size_of::<f64>();

/// A by-value view of one octree node, materialised from the SoA lanes.
/// Only leaves own a [`SubGrid`]; query that with [`Octree::has_subgrid`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Node {
    /// Refinement level (root = 0).
    pub level: u32,
    /// Integer position of the node within its level (0..2^level per axis).
    pub coords: [u32; 3],
    /// Parent node (None for the root).
    pub parent: Option<NodeId>,
    /// Children in z-major order (index = 4x + 2y + z), if refined.
    pub children: Option<[NodeId; 8]>,
}

/// The adaptive octree over `[-L, L]³`.
#[derive(Debug)]
pub struct Octree {
    /// Per-node refinement level (root = 0). Levels are capped at 8 by
    /// config validation, so a byte is plenty.
    levels: Vec<u8>,
    /// Per-node integer position within its level.
    coords: Vec<[u32; 3]>,
    /// Per-node parent id (`NONE` for the root).
    parents: Vec<u32>,
    /// Per-node first-child id (`NONE` = leaf). Children of a refined node
    /// are the 8 consecutive ids starting here (z-major order).
    first_child: Vec<u32>,
    /// Per-node field data (data-carrying leaves only).
    subgrids: Vec<Option<SubGrid>>,
    leaves: Vec<NodeId>,
    /// `(level, coords)` → node id, key packed into one u64.
    index: HashMap<u64, u32>,
    domain_half: f64,
    max_level: u32,
    generation: u64,
    /// `(generation after the split, node id)` for every node that stopped
    /// being a leaf mid-run, in generation order. Build-time refinement is
    /// not logged (nothing can hold a stale view of generation 0).
    split_log: Vec<(u64, u32)>,
}

/// Pack a `(level, coords)` index key into one u64 (16 bits per component;
/// levels are ≤ 8 so coordinates fit in 9 bits).
fn key(level: u32, c: [u32; 3]) -> u64 {
    debug_assert!(level <= 16 && c.iter().all(|&x| x < 1 << 16));
    (u64::from(level) << 48) | (u64::from(c[0]) << 32) | (u64::from(c[1]) << 16) | u64::from(c[2])
}

impl Octree {
    /// Build the tree for `star` under `config` (the paper's single
    /// rotating star).
    pub fn build(star: &RotatingStar, config: &OctoConfig, domain_half: f64) -> Self {
        Self::build_with_model(star, config, domain_half)
    }

    /// Build the tree for any [`InitialModel`]: refine wherever the model's
    /// density exceeds `refine_density_frac × ρ_ref` down to `max_level`,
    /// enforce 2:1 face grading, then allocate and initialize leaf
    /// sub-grids.
    pub fn build_with_model<M: InitialModel>(
        star: &M,
        config: &OctoConfig,
        domain_half: f64,
    ) -> Self {
        assert!(domain_half > 0.0);
        let mut tree = Octree {
            levels: Vec::new(),
            coords: Vec::new(),
            parents: Vec::new(),
            first_child: Vec::new(),
            subgrids: Vec::new(),
            leaves: Vec::new(),
            index: HashMap::new(),
            domain_half,
            max_level: config.max_level,
            generation: 0,
            split_log: Vec::new(),
        };
        let root = tree.push_node(0, [0, 0, 0], NONE);
        // Density-driven refinement.
        let threshold = config.refine_density_frac * star.reference_density();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            let (level, coords) = (u32::from(tree.levels[id]), tree.coords[id]);
            if level < config.max_level && tree.region_max_density(star, level, coords) > threshold
            {
                for child in tree.refine(id) {
                    stack.push(child);
                }
            }
        }
        // Grading closure over everything refined so far.
        let refined: Vec<NodeId> = (0..tree.len()).filter(|&id| !tree.is_leaf(id)).collect();
        tree.enforce_grading(refined, |_, _| {});
        tree.collect_leaves();
        // Allocate + initialize leaf sub-grids.
        for &leaf in &tree.leaves.clone() {
            let (origin, dx) = tree.node_geometry(leaf);
            let mut grid = SubGrid::new(origin, dx);
            grid.init_from_model(star);
            tree.subgrids[leaf] = Some(grid);
        }
        tree
    }

    fn len(&self) -> usize {
        self.levels.len()
    }

    fn is_leaf(&self, id: NodeId) -> bool {
        self.first_child[id] == NONE
    }

    fn push_node(&mut self, level: u32, coords: [u32; 3], parent: u32) -> NodeId {
        let id = self.len();
        self.levels.push(level as u8);
        self.coords.push(coords);
        self.parents.push(parent);
        self.first_child.push(NONE);
        self.subgrids.push(None);
        self.index.insert(key(level, coords), id as u32);
        id
    }

    fn refine(&mut self, id: NodeId) -> [NodeId; 8] {
        assert!(self.is_leaf(id), "node already refined");
        let (level, c) = (u32::from(self.levels[id]), self.coords[id]);
        let first = self.len() as u32;
        let mut kids = [0; 8];
        for (n, kid) in kids.iter_mut().enumerate() {
            let d = [(n >> 2) as u32 & 1, (n >> 1) as u32 & 1, n as u32 & 1];
            *kid = self.push_node(
                level + 1,
                [2 * c[0] + d[0], 2 * c[1] + d[1], 2 * c[2] + d[2]],
                id as u32,
            );
        }
        self.first_child[id] = first;
        kids
    }

    /// Topology generation: bumped once per regrid *sweep* that actually
    /// split at least one node. Consumers that cache topology-derived data —
    /// the gravity interaction lists, the solver workspace — key on this
    /// counter, and can recover the exact set of splits between two
    /// generations from [`Octree::splits_since`].
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Nodes that stopped being leaves after generation `g0`, oldest first.
    /// The log only records mid-run splits, so a consumer whose snapshot is
    /// at `g0` rebuilds exactly the lists these nodes invalidate.
    pub fn splits_since(&self, g0: u64) -> impl Iterator<Item = NodeId> + '_ {
        let start = self.split_log.partition_point(|&(g, _)| g <= g0);
        self.split_log[start..].iter().map(|&(_, id)| id as usize)
    }

    /// Refine one leaf in place mid-run (dynamic AMR) as a one-leaf sweep:
    /// split it into 8 children, prolongate the leaf's fields onto them
    /// piecewise-constant (conservative: each child cell copies its covering
    /// parent cell), restore the 2:1 face grading by refining any
    /// now-too-coarse neighbour leaves the same way, bump the topology
    /// generation once and re-collect the leaf order. Returns the 8 children
    /// of `leaf`.
    ///
    /// Refining an already-refined node is a no-op: the existing children
    /// are returned and the generation counter is *not* bumped, so cached
    /// topology-derived data (the interaction lists) stays valid instead of
    /// being discarded for a refinement that changed nothing.
    pub fn refine_leaf(&mut self, leaf: NodeId) -> [NodeId; 8] {
        if let Some(kids) = self.children_of(leaf) {
            return kids;
        }
        self.regrid(&[leaf]);
        self.children_of(leaf).expect("leaf was split by the sweep")
    }

    /// One serial regrid sweep: split every requested leaf (already-refined
    /// entries are skipped), restore grading, prolongate and install child
    /// data, and finalize with a single generation bump. Returns the sweep's
    /// splits. The driver's parallel regrid drives the same three phases
    /// with the prolongation fanned out as tasks.
    pub fn regrid(&mut self, requested: &[NodeId]) -> Vec<(NodeId, [NodeId; 8])> {
        let splits = self.begin_regrid(requested);
        let installs = splits
            .iter()
            .map(|&(parent, _)| (parent, self.prolongate_children(parent)))
            .collect();
        self.finish_regrid(installs);
        splits
    }

    /// Phase 1 of a regrid sweep: structurally split the requested leaves
    /// (skipping any that are already refined) and run the 2:1 grading
    /// closure. Parent sub-grids are left in place for
    /// [`Octree::prolongate_children`]; the generation, split log and leaf
    /// order are untouched until [`Octree::finish_regrid`].
    pub fn begin_regrid(&mut self, requested: &[NodeId]) -> Vec<(NodeId, [NodeId; 8])> {
        let mut splits = Vec::new();
        let mut seed = Vec::new();
        for &leaf in requested {
            if !self.is_leaf(leaf) {
                continue;
            }
            let kids = self.refine(leaf);
            splits.push((leaf, kids));
            seed.push(leaf);
        }
        self.enforce_grading(seed, |id, kids| splits.push((id, kids)));
        splits
    }

    /// Phase 2 of a regrid sweep: prolongate one split parent's fields onto
    /// its 8 children, piecewise constant (conservative: each child cell
    /// copies its covering parent cell). Pure read — the driver fans these
    /// out as parallel tasks over the sweep's splits.
    pub fn prolongate_children(&self, parent: NodeId) -> [SubGrid; 8] {
        let parent_grid = self.subgrids[parent]
            .as_ref()
            .expect("regrid splits a data-carrying leaf");
        let fc = self.first_child[parent] as usize;
        std::array::from_fn(|n| {
            let d = [(n >> 2) & 1, (n >> 1) & 1, n & 1];
            let (origin, dx) = self.node_geometry(fc + n);
            let mut grid = SubGrid::new(origin, dx);
            for f in 0..NF {
                for i in 0..NX {
                    for j in 0..NX {
                        for k in 0..NX {
                            let v = parent_grid.at(
                                f,
                                (d[0] * NX / 2 + i / 2) as i64,
                                (d[1] * NX / 2 + j / 2) as i64,
                                (d[2] * NX / 2 + k / 2) as i64,
                            );
                            grid.set(f, i as i64, j as i64, k as i64, v);
                        }
                    }
                }
            }
            grid
        })
    }

    /// Phase 3 of a regrid sweep: install the prolongated child grids, drop
    /// the parent data, append the sweep's splits to the split log, bump the
    /// generation **once** and re-collect the leaf order. An empty sweep
    /// (every requested leaf was already refined) leaves the generation
    /// untouched so caches stay warm.
    pub fn finish_regrid(&mut self, installs: Vec<(NodeId, [SubGrid; 8])>) {
        if installs.is_empty() {
            return;
        }
        self.generation += 1;
        for (parent, grids) in installs {
            self.split_log.push((self.generation, parent as u32));
            self.max_level = self.max_level.max(u32::from(self.levels[parent]) + 1);
            self.subgrids[parent] = None;
            let fc = self.first_child[parent] as usize;
            for (n, grid) in grids.into_iter().enumerate() {
                self.subgrids[fc + n] = Some(grid);
            }
        }
        self.collect_leaves();
    }

    /// Max model density sampled on a 5³ lattice over the node's region.
    fn region_max_density<M: InitialModel>(&self, star: &M, level: u32, coords: [u32; 3]) -> f64 {
        let size = self.node_size(level);
        let origin = self.node_origin(level, coords);
        let mut max = 0.0f64;
        let samples = 5;
        for a in 0..samples {
            for b in 0..samples {
                for c in 0..samples {
                    let p = [
                        origin[0] + size * (a as f64 + 0.5) / samples as f64,
                        origin[1] + size * (b as f64 + 0.5) / samples as f64,
                        origin[2] + size * (c as f64 + 0.5) / samples as f64,
                    ];
                    max = max.max(star.density_at(p[0], p[1], p[2]));
                }
            }
        }
        max
    }

    /// Enforce 2:1 grading as a worklist fixpoint: every refined node's
    /// same-level face neighbours must exist; refine covering leaves until
    /// they do. Node creation is monotone (no node is ever removed), so an
    /// invariant that held before the sweep can only be broken by this
    /// sweep's own splits — the worklist starts from those and re-checks a
    /// node only while a covering split is still coarser than required. This
    /// replaces the old whole-tree rescan per fixpoint pass, which at 10⁵
    /// nodes cost O(nodes) per *refined leaf*.
    fn enforce_grading(
        &mut self,
        seed: Vec<NodeId>,
        mut on_split: impl FnMut(NodeId, [NodeId; 8]),
    ) {
        let mut work = seed;
        while let Some(id) = work.pop() {
            if self.is_leaf(id) {
                continue; // only refined nodes carry the neighbour requirement
            }
            let (level, coords) = (u32::from(self.levels[id]), self.coords[id]);
            let mut recheck = false;
            for face in Face::ALL {
                let Some(nc) = self.neighbor_coords(level, coords, face) else {
                    continue;
                };
                if self.index.contains_key(&key(level, nc)) {
                    continue;
                }
                // Find the covering leaf (some strict ancestor of the
                // missing position) and split it.
                let cover = self.deepest_node_at(level, nc);
                if self.is_leaf(cover) {
                    let kids = self.refine(cover);
                    on_split(cover, kids);
                    work.push(cover);
                }
                // The cover may still be coarser than `level − 1`; the node
                // at `(level, nc)` then still doesn't exist, so come back.
                if u32::from(self.levels[cover]) + 1 < level {
                    recheck = true;
                }
            }
            if recheck {
                work.push(id);
            }
        }
    }

    /// Deepest existing node whose region contains the position
    /// `(level, coords)` (may be that node itself).
    fn deepest_node_at(&self, level: u32, coords: [u32; 3]) -> NodeId {
        let mut l = level;
        let mut c = coords;
        loop {
            if let Some(&id) = self.index.get(&key(l, c)) {
                return id as usize;
            }
            assert!(l > 0, "root must exist");
            l -= 1;
            c = [c[0] / 2, c[1] / 2, c[2] / 2];
        }
    }

    /// Same-level neighbour coordinates across `face`, or `None` at the
    /// domain boundary.
    pub fn neighbor_coords(&self, level: u32, coords: [u32; 3], face: Face) -> Option<[u32; 3]> {
        let n = 1u32 << level;
        let axis = face.axis();
        let mut c = coords;
        match face.sign() {
            -1 => {
                if c[axis] == 0 {
                    return None;
                }
                c[axis] -= 1;
            }
            _ => {
                if c[axis] + 1 >= n {
                    return None;
                }
                c[axis] += 1;
            }
        }
        Some(c)
    }

    fn collect_leaves(&mut self) {
        let mut leaves: Vec<NodeId> = (0..self.len()).filter(|&i| self.is_leaf(i)).collect();
        // Deterministic order: by (level, Morton-ish coords).
        leaves.sort_by_key(|&i| (self.levels[i], self.coords[i]));
        self.leaves = leaves;
    }

    /// Edge length of a node at `level`.
    pub fn node_size(&self, level: u32) -> f64 {
        2.0 * self.domain_half / f64::from(1u32 << level)
    }

    fn node_origin(&self, level: u32, coords: [u32; 3]) -> [f64; 3] {
        let size = self.node_size(level);
        [
            -self.domain_half + f64::from(coords[0]) * size,
            -self.domain_half + f64::from(coords[1]) * size,
            -self.domain_half + f64::from(coords[2]) * size,
        ]
    }

    /// (origin, cell width) of a node's sub-grid.
    pub fn node_geometry(&self, id: NodeId) -> ([f64; 3], f64) {
        let level = u32::from(self.levels[id]);
        let origin = self.node_origin(level, self.coords[id]);
        (origin, self.node_size(level) / NX as f64)
    }

    /// Leaf ids in deterministic order.
    pub fn leaf_ids(&self) -> &[NodeId] {
        &self.leaves
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// Total interior cells (`leaves × 512` — the paper's "606208 cells"
    /// metric for level 4).
    pub fn cell_count(&self) -> usize {
        self.leaves.len() * crate::subgrid::CELLS
    }

    /// Total node count (internal + leaves).
    pub fn node_count(&self) -> usize {
        self.len()
    }

    /// Node metadata + field-data bytes resident in this tree (SoA lanes,
    /// index, leaf order, sub-grids). Feeds the arena high-water mark that
    /// backs `/runtime/peak_rss_bytes` when the OS counter is unavailable.
    pub fn resident_bytes(&self) -> u64 {
        let lanes = self.levels.capacity()
            + self.coords.capacity() * std::mem::size_of::<[u32; 3]>()
            + self.parents.capacity() * 4
            + self.first_child.capacity() * 4
            + self.subgrids.capacity() * std::mem::size_of::<Option<SubGrid>>();
        let index = self.index.len() * (std::mem::size_of::<u64>() + 4);
        let leaves = self.leaves.capacity() * std::mem::size_of::<NodeId>();
        let grids = self.subgrids.iter().flatten().count() * SUBGRID_BYTES;
        let log = self.split_log.capacity() * std::mem::size_of::<(u64, u32)>();
        (lanes + index + leaves + grids + log) as u64
    }

    /// Materialise the classic node view for `id` from the SoA lanes.
    pub fn node(&self, id: NodeId) -> Node {
        Node {
            level: u32::from(self.levels[id]),
            coords: self.coords[id],
            parent: (self.parents[id] != NONE).then(|| self.parents[id] as usize),
            children: self.children_of(id),
        }
    }

    /// Children of `id` (z-major order), if refined. The 8 children are
    /// always pushed consecutively, so they are recovered from the stored
    /// first-child index.
    pub fn children_of(&self, id: NodeId) -> Option<[NodeId; 8]> {
        let fc = self.first_child[id];
        (fc != NONE).then(|| std::array::from_fn(|n| fc as usize + n))
    }

    /// Whether `id` currently carries field data (i.e. is a data leaf).
    pub fn has_subgrid(&self, id: NodeId) -> bool {
        self.subgrids[id].is_some()
    }

    /// Node id at exactly `(level, coords)`, if that node exists.
    pub fn node_at(&self, level: u32, coords: [u32; 3]) -> Option<NodeId> {
        self.index.get(&key(level, coords)).map(|&id| id as usize)
    }

    /// Mutable access to a leaf's sub-grid.
    pub fn subgrid_mut(&mut self, id: NodeId) -> &mut SubGrid {
        self.subgrids[id]
            .as_mut()
            .expect("node is not a leaf with data")
    }

    /// Immutable access to a leaf's sub-grid.
    pub fn subgrid(&self, id: NodeId) -> &SubGrid {
        self.subgrids[id]
            .as_ref()
            .expect("node is not a leaf with data")
    }

    /// Maximum refinement level present.
    pub fn deepest_level(&self) -> u32 {
        self.leaves
            .iter()
            .map(|&l| u32::from(self.levels[l]))
            .max()
            .unwrap_or(0)
    }

    /// Locate the leaf containing physical position `p` (clamped into the
    /// domain) and return `(leaf, cell index)`.
    pub fn locate(&self, p: [f64; 3]) -> (NodeId, [usize; 3]) {
        let eps = 1e-12;
        let clamp = |x: f64| x.clamp(-self.domain_half + eps, self.domain_half - eps);
        let q = [clamp(p[0]), clamp(p[1]), clamp(p[2])];
        let mut id: NodeId = 0; // the root is always node 0
        while self.first_child[id] != NONE {
            let fc = self.first_child[id] as usize;
            let level = u32::from(self.levels[id]);
            let size = self.node_size(level);
            let origin = self.node_origin(level, self.coords[id]);
            let half = size / 2.0;
            let ix = usize::from(q[0] >= origin[0] + half);
            let iy = usize::from(q[1] >= origin[1] + half);
            let iz = usize::from(q[2] >= origin[2] + half);
            id = fc + 4 * ix + 2 * iy + iz;
        }
        let (origin, dx) = self.node_geometry(id);
        let cell = |x: f64, o: f64| (((x - o) / dx) as usize).min(NX - 1);
        (
            id,
            [
                cell(q[0], origin[0]),
                cell(q[1], origin[1]),
                cell(q[2], origin[2]),
            ],
        )
    }

    /// Sample conserved field `f` at physical position `p` (piecewise
    /// constant).
    pub fn sample(&self, f: usize, p: [f64; 3]) -> f64 {
        let (leaf, c) = self.locate(p);
        self.subgrid(leaf)
            .at(f, c[0] as i64, c[1] as i64, c[2] as i64)
    }

    /// Ghost data for one face of one leaf (read-only; apply with
    /// [`Octree::apply_ghost`]). Uses the fast same-level slab copy when the
    /// face neighbour is a same-level leaf, physical sampling (handling
    /// coarse neighbours, fine neighbours and the outflow domain boundary)
    /// otherwise.
    pub fn ghost_data_for(&self, leaf: NodeId, face: Face) -> Vec<f64> {
        let (level, coords) = (u32::from(self.levels[leaf]), self.coords[leaf]);
        if let Some(nc) = self.neighbor_coords(level, coords, face) {
            if let Some(nid) = self.node_at(level, nc) {
                if self.is_leaf(nid) {
                    return self.subgrid(nid).face_slab(face.opposite());
                }
            }
        }
        // Generic path: sample every ghost cell position.
        let grid = self.subgrid(leaf);
        let mut out = Vec::with_capacity(NF * NG * NX * NX);
        for f in 0..NF {
            for d in 0..NG as i64 {
                for a in 0..NX as i64 {
                    for b in 0..NX as i64 {
                        let (i, j, k) = ghost_index(face, d, a, b);
                        let p = grid.cell_center(i, j, k);
                        out.push(self.sample(f, p));
                    }
                }
            }
        }
        out
    }

    /// Whether [`Octree::ghost_data_for`] can use the fast same-level slab
    /// copy for this face (false = per-cell tree-descent sampling, the
    /// latency-bound path the machine model charges per sample).
    pub fn ghost_fast_path(&self, leaf: NodeId, face: Face) -> bool {
        let (level, coords) = (u32::from(self.levels[leaf]), self.coords[leaf]);
        if let Some(nc) = self.neighbor_coords(level, coords, face) {
            if let Some(nid) = self.node_at(level, nc) {
                return self.is_leaf(nid);
            }
        }
        false
    }

    /// Install ghost data produced by [`Octree::ghost_data_for`].
    pub fn apply_ghost(&mut self, leaf: NodeId, face: Face, data: &[f64]) {
        self.subgrid_mut(leaf).set_ghost_slab(face, data);
    }

    /// Fill every leaf's face ghosts (sequential reference version; the
    /// driver runs the gather phase as parallel tasks).
    pub fn fill_ghosts(&mut self) {
        let work: Vec<(NodeId, Face, Vec<f64>)> = self
            .leaves
            .clone()
            .into_iter()
            .flat_map(|leaf| {
                Face::ALL
                    .into_iter()
                    .map(move |face| (leaf, face))
                    .collect::<Vec<_>>()
            })
            .map(|(leaf, face)| (leaf, face, self.ghost_data_for(leaf, face)))
            .collect();
        for (leaf, face, data) in work {
            self.apply_ghost(leaf, face, &data);
        }
    }

    /// Total mass over all leaves (conservation diagnostics).
    pub fn total_mass(&self) -> f64 {
        self.leaves.iter().map(|&l| self.subgrid(l).mass()).sum()
    }

    /// Volume integral of an arbitrary field over all leaves.
    pub fn total_integral(&self, f: usize) -> f64 {
        self.leaves
            .iter()
            .map(|&l| self.subgrid(l).integral(f))
            .sum()
    }

    /// Verify the 2:1 grading invariant by brute force (test helper).
    pub fn is_balanced(&self) -> bool {
        for &leaf in &self.leaves {
            let level = u32::from(self.levels[leaf]);
            let (origin, _) = self.node_geometry(leaf);
            let size = self.node_size(level);
            // Probe points just across each face.
            for face in Face::ALL {
                let mut p = [
                    origin[0] + size / 2.0,
                    origin[1] + size / 2.0,
                    origin[2] + size / 2.0,
                ];
                p[face.axis()] += face.sign() as f64 * (size / 2.0 + size / 16.0);
                if p[face.axis()].abs() >= self.domain_half {
                    continue;
                }
                let (nl, _) = self.locate(p);
                let diff = i64::from(self.levels[nl]) - i64::from(level);
                if diff.abs() > 1 {
                    return false;
                }
            }
        }
        true
    }

    /// The configured maximum refinement level.
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// Domain half-width L (domain is `[-L, L]³`).
    pub fn domain_half(&self) -> f64 {
        self.domain_half
    }
}

/// Ghost-cell index for layer `d` (nearest first), transverse `(a, b)`.
fn ghost_index(face: Face, d: i64, a: i64, b: i64) -> (i64, i64, i64) {
    let n = NX as i64;
    let normal = match face.sign() {
        -1 => -1 - d,
        _ => n + d,
    };
    match face.axis() {
        0 => (normal, a, b),
        1 => (a, normal, b),
        _ => (a, b, normal),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::star::field;

    fn small_tree(max_level: u32) -> Octree {
        let star = RotatingStar::paper_default();
        let cfg = OctoConfig {
            max_level,
            ..OctoConfig::default()
        };
        Octree::build(&star, &cfg, 1.0)
    }

    #[test]
    fn level_zero_is_a_single_leaf() {
        let t = small_tree(0);
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.cell_count(), 512);
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn refinement_grows_with_level() {
        let c1 = small_tree(1).leaf_count();
        let c2 = small_tree(2).leaf_count();
        let c3 = small_tree(3).leaf_count();
        assert!(c1 < c2 && c2 < c3, "{c1} {c2} {c3}");
        assert_eq!(small_tree(1).deepest_level(), 1);
        assert_eq!(small_tree(3).deepest_level(), 3);
    }

    #[test]
    fn tree_is_balanced() {
        for level in 1..=3 {
            assert!(small_tree(level).is_balanced(), "level {level}");
        }
    }

    #[test]
    fn leaves_tile_the_domain() {
        // Total leaf volume must equal the domain volume.
        let t = small_tree(3);
        let vol: f64 = t
            .leaf_ids()
            .iter()
            .map(|&l| t.node_size(t.node(l).level).powi(3))
            .sum();
        assert!((vol - 8.0).abs() < 1e-9, "domain [-1,1]³ has volume 8");
    }

    #[test]
    fn locate_finds_containing_leaf() {
        let t = small_tree(3);
        for p in [[0.0, 0.0, 0.0], [0.5, -0.3, 0.2], [-0.99, 0.99, 0.0]] {
            let (leaf, cell) = t.locate(p);
            let (origin, dx) = t.node_geometry(leaf);
            for d in 0..3 {
                let lo = origin[d] + cell[d] as f64 * dx;
                assert!(
                    p[d] >= lo - 1e-9 && p[d] <= lo + dx + 1e-9,
                    "{p:?} axis {d}"
                );
            }
        }
    }

    #[test]
    fn locate_clamps_outside_points() {
        let t = small_tree(1);
        let (_, cell) = t.locate([5.0, 5.0, 5.0]);
        assert!(cell.iter().all(|&c| c < NX));
    }

    #[test]
    fn sample_matches_star_density() {
        let t = small_tree(3);
        let star = RotatingStar::paper_default();
        // At a point deep inside the star the sampled cell density should be
        // close to the analytic value (cell-center discretization error).
        let p = [0.1, 0.05, -0.08];
        let rho = t.sample(field::RHO, p);
        let want = star.density((p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt());
        assert!((rho - want).abs() / want < 0.1, "{rho} vs {want}");
    }

    #[test]
    fn total_mass_close_to_star_mass() {
        let t = small_tree(3);
        let star = RotatingStar::paper_default();
        let m = t.total_mass();
        assert!(
            ((m - star.mass) / star.mass).abs() < 0.05,
            "grid mass {m} vs star mass {}",
            star.mass
        );
    }

    #[test]
    fn ghost_fill_matches_neighbors_across_same_level_faces() {
        let mut t = small_tree(2);
        t.fill_ghosts();
        // Pick a leaf with a same-level neighbor and check ghost == neighbor
        // interior.
        let leaves = t.leaf_ids().to_vec();
        let mut checked = 0;
        for &leaf in &leaves {
            let n = t.node(leaf);
            let (level, coords) = (n.level, n.coords);
            for face in Face::ALL {
                let Some(nc) = t.neighbor_coords(level, coords, face) else {
                    continue;
                };
                let Some(nid) = t.node_at(level, nc) else {
                    continue;
                };
                if t.node(nid).children.is_some() {
                    continue;
                }
                // ghost layer 0 equals neighbor's boundary layer.
                let g = t.subgrid(leaf);
                let ng = t.subgrid(nid);
                let (i, j, k) = super::ghost_index(face, 0, 3, 4);
                let p = g.cell_center(i, j, k);
                let r = ng.at(
                    field::RHO,
                    {
                        let (origin, dx) = t.node_geometry(nid);
                        ((p[0] - origin[0]) / dx) as i64
                    },
                    ((p[1] - t.node_geometry(nid).0[1]) / t.node_geometry(nid).1) as i64,
                    ((p[2] - t.node_geometry(nid).0[2]) / t.node_geometry(nid).1) as i64,
                );
                assert_eq!(g.at(field::RHO, i, j, k), r);
                checked += 1;
            }
        }
        assert!(checked > 0, "no same-level faces checked");
    }

    #[test]
    fn ghost_fill_boundary_is_outflow() {
        // Level-0 tree: all ghosts come from the domain boundary (clamped
        // sampling = copy of the edge cells).
        let mut t = small_tree(0);
        t.fill_ghosts();
        let g = t.subgrid(t.leaf_ids()[0]);
        for a in 0..NX as i64 {
            for b in 0..NX as i64 {
                assert_eq!(
                    g.at(field::RHO, -1, a, b),
                    g.at(field::RHO, 0, a, b),
                    "XM outflow"
                );
                assert_eq!(
                    g.at(field::RHO, NX as i64, a, b),
                    g.at(field::RHO, NX as i64 - 1, a, b),
                    "XP outflow"
                );
            }
        }
    }

    #[test]
    fn level4_tree_is_paper_scale() {
        // The paper's level-4 rotating star has 1184 leaves / 606208 cells;
        // our star/refinement should land in the same order of magnitude.
        let t = small_tree(4);
        let leaves = t.leaf_count();
        assert!(
            (300..4096).contains(&leaves),
            "level-4 leaf count {leaves} should be paper-scale (~1184)"
        );
        assert_eq!(t.cell_count(), leaves * 512);
    }

    #[test]
    fn refine_leaf_bumps_generation_and_conserves_mass() {
        let mut t = small_tree(1);
        assert_eq!(t.generation(), 0);
        let mass_before = t.total_mass();
        let leaves_before = t.leaf_count();
        let victim = t.leaf_ids()[0];
        let kids = t.refine_leaf(victim);
        assert_eq!(t.generation(), 1);
        // One leaf became 8 (uniform level-1 tree stays 2:1 balanced, so
        // no cascading refinement).
        assert_eq!(t.leaf_count(), leaves_before + 7);
        assert!(t.is_balanced());
        for &kid in &kids {
            assert_eq!(t.node(kid).level, 2);
            assert!(t.has_subgrid(kid), "children carry data");
        }
        assert!(!t.has_subgrid(victim), "parent data moved down");
        // Piecewise-constant prolongation is conservative.
        let mass_after = t.total_mass();
        assert!(
            ((mass_after - mass_before) / mass_before).abs() < 1e-12,
            "refinement must conserve mass: {mass_before} -> {mass_after}"
        );
        // Leaf order stays deterministic (sorted by level, coords).
        let ids = t.leaf_ids();
        let mut keys: Vec<_> = ids
            .iter()
            .map(|&l| {
                let n = t.node(l);
                (n.level, n.coords)
            })
            .collect();
        let sorted = {
            let mut s = keys.clone();
            s.sort_unstable();
            s
        };
        keys.sort_unstable();
        assert_eq!(keys, sorted);
        // Prolongated children sample the same density field as the parent
        // did (piecewise constant).
        let sampled = t.sample(field::RHO, [-0.9, -0.9, -0.9]);
        assert!(sampled >= 0.0);
    }

    #[test]
    fn refine_of_already_refined_node_is_a_noop() {
        // Regression: a no-op refine used to panic (the node no longer
        // carries data) and, had it survived, would have bumped the
        // generation and discarded the interaction-list cache for a
        // topology that did not change.
        let mut t = small_tree(1);
        let victim = t.leaf_ids()[0];
        let kids = t.refine_leaf(victim);
        let gen_after = t.generation();
        let leaves_after = t.leaf_count();
        let kids_again = t.refine_leaf(victim);
        assert_eq!(kids_again, kids, "existing children are returned");
        assert_eq!(
            t.generation(),
            gen_after,
            "no-op refine must not invalidate topology-keyed caches"
        );
        assert_eq!(t.leaf_count(), leaves_after);
        assert!(t.is_balanced());
    }

    #[test]
    fn refine_leaf_restores_grading_recursively() {
        let mut t = small_tree(2);
        // Find the deepest leaf and refine it twice: the second split can
        // force neighbours to refine to keep the 2:1 grading.
        let deepest = *t
            .leaf_ids()
            .iter()
            .max_by_key(|&&l| t.node(l).level)
            .unwrap();
        let kids = t.refine_leaf(deepest);
        assert!(t.is_balanced());
        let g1 = t.generation();
        t.refine_leaf(kids[0]);
        assert!(t.is_balanced(), "cascaded refinement keeps 2:1 grading");
        assert_eq!(t.generation(), g1 + 1);
        for &l in t.leaf_ids() {
            assert!(t.has_subgrid(l), "every leaf carries data");
        }
    }

    #[test]
    fn batch_regrid_equals_one_sweep() {
        // A whole batch of refines is one sweep: one generation bump, one
        // split-log segment, same grading invariant.
        let mut t = small_tree(2);
        let victims: Vec<NodeId> = t.leaf_ids().iter().copied().take(4).collect();
        let g0 = t.generation();
        let splits = t.regrid(&victims);
        assert_eq!(t.generation(), g0 + 1, "one bump per sweep");
        assert!(splits.len() >= victims.len());
        assert!(t.is_balanced());
        let logged: Vec<NodeId> = t.splits_since(g0).collect();
        assert_eq!(
            logged,
            splits.iter().map(|&(p, _)| p).collect::<Vec<_>>(),
            "split log records exactly the sweep's splits"
        );
        for &l in t.leaf_ids() {
            assert!(t.has_subgrid(l), "every leaf carries data");
        }
        // Requesting already-refined nodes again is an empty sweep.
        let g1 = t.generation();
        assert!(t.regrid(&victims).is_empty());
        assert_eq!(t.generation(), g1, "empty sweep keeps caches warm");
    }

    #[test]
    fn split_log_filters_by_generation() {
        let mut t = small_tree(1);
        let a = t.leaf_ids()[0];
        t.refine_leaf(a);
        let g1 = t.generation();
        let b = *t.leaf_ids().last().unwrap();
        t.refine_leaf(b);
        let since_start: Vec<NodeId> = t.splits_since(0).collect();
        assert!(since_start.contains(&a) && since_start.contains(&b));
        let since_g1: Vec<NodeId> = t.splits_since(g1).collect();
        assert!(!since_g1.contains(&a) && since_g1.contains(&b));
        assert_eq!(t.splits_since(t.generation()).count(), 0);
    }

    #[test]
    fn phased_regrid_matches_serial_sweep() {
        // begin/prolongate/finish driven by hand must equal the serial
        // convenience sweep bitwise (this is the contract the driver's
        // parallel regrid relies on).
        let mut a = small_tree(2);
        let mut b = small_tree(2);
        let victims: Vec<NodeId> = a.leaf_ids().iter().copied().take(3).collect();
        a.regrid(&victims);
        let splits = b.begin_regrid(&victims);
        let installs: Vec<(NodeId, [SubGrid; 8])> = splits
            .iter()
            .map(|&(p, _)| (p, b.prolongate_children(p)))
            .collect();
        b.finish_regrid(installs);
        assert_eq!(a.leaf_ids(), b.leaf_ids());
        assert_eq!(a.generation(), b.generation());
        for &l in a.leaf_ids() {
            let (ga, gb) = (a.subgrid(l), b.subgrid(l));
            for f in 0..NF {
                for i in 0..NX as i64 {
                    for j in 0..NX as i64 {
                        for k in 0..NX as i64 {
                            assert_eq!(ga.at(f, i, j, k).to_bits(), gb.at(f, i, j, k).to_bits());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn resident_bytes_tracks_leaf_data() {
        let t = small_tree(2);
        let bytes = t.resident_bytes();
        assert!(bytes >= (t.leaf_count() * SUBGRID_BYTES) as u64);
        // Metadata overhead should be small next to field data.
        assert!(bytes < (t.leaf_count() * 2 * SUBGRID_BYTES) as u64);
    }

    #[test]
    fn neighbor_coords_domain_edges() {
        let t = small_tree(1);
        assert_eq!(t.neighbor_coords(1, [0, 0, 0], Face::XM), None);
        assert_eq!(t.neighbor_coords(1, [0, 0, 0], Face::XP), Some([1, 0, 0]));
        assert_eq!(t.neighbor_coords(1, [1, 1, 1], Face::ZP), None);
        assert_eq!(t.neighbor_coords(0, [0, 0, 0], Face::YP), None);
    }
}
