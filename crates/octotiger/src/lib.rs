//! # octotiger — mini Octo-Tiger: AMR astrophysics on the amt/kokkos-lite stack
//!
//! Rust reproduction of the application of the SC'23 study: **Octo-Tiger**,
//! the 3D adaptive-mesh-refinement, multi-physics code for simulating binary
//! star systems (paper §3.3). Faithful structural properties:
//!
//! * an adaptive [`octree::Octree`] whose leaves carry **8×8×8 sub-grids**
//!   (512 cells — the paper's numbers), 2:1 face-graded;
//! * two **interleaved solvers**: finite-volume hydro ([`hydro`]) and a
//!   fast-multipole gravity solver ([`gravity`]) with the paper's
//!   `--theta` opening parameter;
//! * one compute-kernel invocation **per sub-grid**, launched as an `amt`
//!   task, so parallelism comes from concurrent kernel launches;
//! * three kernel backends ([`kernel_backend::KernelType`]): legacy loops,
//!   Kokkos-Serial and Kokkos-HPX — the configurations of Fig. 7;
//! * a [`driver::Driver`] (node-level, §6.2.1) and a
//!   [`dist_driver`] (two-locality distributed runs over TCP/MPI parcelport
//!   models, §6.2.2) measuring *cells processed per second*;
//! * the `rotating_star` scenario ([`star::RotatingStar`]): an n = 3/2
//!   Lane–Emden polytrope in solid-body rotation.

pub mod aggregate;
pub mod config;
pub mod dist_driver;
pub mod driver;
pub mod gravity;
pub mod hydro;
pub mod kernel_backend;
pub mod octree;
pub mod recycle;
pub mod star;
pub mod subgrid;

pub use aggregate::{AggregationConfig, AggregationRegion, AggregationStats};
pub use config::OctoConfig;
pub use dist_driver::{DistConfig, DistMetrics, DistRun};
pub use driver::{Driver, RegridReport, RunMetrics, WorkEstimate};
pub use gravity::EnsureReport;
pub use kernel_backend::{Dispatch, KernelType};
pub use octree::Octree;
pub use star::{BinaryStar, InitialModel, RotatingStar};
