//! Buffer recycling — the reproduction's stand-in for **cppuddle**
//! (Table 1 of the paper lists it in Octo-Tiger's toolchain): a pool that
//! hands kernel scratch buffers back out instead of re-allocating them for
//! every one of the thousands of per-sub-grid kernel launches each step.
//!
//! The pool is size-bucketed and thread-safe; buffers are returned
//! explicitly (RAII would hide the pool handle inside the buffer type and
//! complicate crossing task boundaries, which is exactly where these
//! buffers travel).
//!
//! The free lists are sharded per runtime worker ([`amt::current_worker`]):
//! at level-2 trees a single `Mutex<HashMap>` is invisible, but a level-5
//! step issues ~10⁵ acquire/release pairs across all workers and the one
//! lock becomes a serialization point. A worker releases into its own shard
//! and acquires from it first (buffers stay warm in that worker's cache),
//! falling back to scavenging the other shards so reuse still works across
//! task migrations and from non-worker threads (shard 0).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Number of per-worker free-list shards. Worker indices map onto shards
/// modulo this; a power of two keeps the mapping cheap and bounds the
/// scavenging sweep on very wide machines.
const SHARDS: usize = 8;

/// Shard for the calling thread: the runtime worker's own shard on a worker
/// thread, shard 0 elsewhere (tests, `main`, bench harnesses).
fn home_shard() -> usize {
    amt::current_worker().map_or(0, |w| w % SHARDS)
}

type FreeLists<T> = HashMap<usize, Vec<Vec<T>>>;

/// A recycling pool of `Vec<T>` scratch buffers.
#[derive(Debug)]
pub struct RecyclePool<T> {
    shards: [Mutex<FreeLists<T>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<T> Default for RecyclePool<T> {
    fn default() -> Self {
        RecyclePool {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

/// Pool statistics (reuse effectiveness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers served from the free list.
    pub hits: u64,
    /// Buffers that had to be freshly allocated.
    pub misses: u64,
}

impl<T: Clone + Default> RecyclePool<T> {
    /// Empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquire a buffer of exactly `len` default-valued elements, reusing a
    /// previously released one when available. The caller's own shard is
    /// tried first (no contention in the steady state); other shards are
    /// scavenged before giving up and allocating.
    pub fn acquire(&self, len: usize) -> Vec<T> {
        let home = home_shard();
        let recycled = (0..SHARDS)
            .map(|i| &self.shards[(home + i) % SHARDS])
            .find_map(|shard| shard.lock().get_mut(&len).and_then(Vec::pop));
        match recycled {
            Some(mut buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                buf.clear();
                buf.resize(len, T::default());
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                vec![T::default(); len]
            }
        }
    }

    /// Return a buffer for future reuse (its capacity is what's recycled).
    /// Lands in the calling worker's own shard.
    pub fn release(&self, buf: Vec<T>) {
        if buf.capacity() == 0 {
            return;
        }
        self.shards[home_shard()]
            .lock()
            .entry(buf.capacity())
            .or_default()
            .push(buf);
    }

    /// Reuse statistics.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Buffers currently parked in the pool (all shards).
    pub fn parked(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().values().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Drop every parked buffer (memory pressure relief).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn second_acquire_reuses_first_release() {
        let pool: RecyclePool<f64> = RecyclePool::new();
        let a = pool.acquire(512);
        pool.release(a);
        let b = pool.acquire(512);
        assert_eq!(b.len(), 512);
        let s = pool.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(pool.parked(), 0);
    }

    #[test]
    fn reused_buffers_come_back_zeroed() {
        let pool: RecyclePool<u64> = RecyclePool::new();
        let mut a = pool.acquire(16);
        a.iter_mut().for_each(|x| *x = 7);
        pool.release(a);
        let b = pool.acquire(16);
        assert!(b.iter().all(|&x| x == 0), "recycled buffer must be reset");
    }

    #[test]
    fn different_sizes_use_different_buckets() {
        let pool: RecyclePool<f64> = RecyclePool::new();
        pool.release(vec![0.0; 100]);
        let _ = pool.acquire(200);
        assert_eq!(pool.stats().misses, 1, "size mismatch cannot be served");
        assert_eq!(pool.parked(), 1, "the 100-element buffer stays parked");
    }

    #[test]
    fn clear_empties_the_pool() {
        let pool: RecyclePool<f64> = RecyclePool::new();
        pool.release(vec![0.0; 8]);
        pool.release(vec![0.0; 8]);
        assert_eq!(pool.parked(), 2);
        pool.clear();
        assert_eq!(pool.parked(), 0);
    }

    #[test]
    fn cross_shard_scavenging_still_reuses() {
        // A buffer released on one worker (or off-worker → shard 0) must be
        // reusable from any other thread: scavenging keeps the pool's reuse
        // guarantee, sharding only changes who contends with whom.
        let pool: Arc<RecyclePool<f64>> = Arc::new(RecyclePool::new());
        pool.release(vec![0.0; 64]); // off-worker → shard 0
        let rt = amt::Runtime::new(2);
        let reused = {
            let p = Arc::clone(&pool);
            rt.spawn(move || {
                let buf = p.acquire(64);
                let len = buf.len();
                p.release(buf); // parked in the worker's own shard
                len
            })
            .get()
        };
        assert_eq!(reused, 64);
        assert!(pool.stats().hits >= 1, "worker must scavenge shard 0");
        assert_eq!(pool.parked(), 1);
    }

    #[test]
    fn concurrent_kernel_launch_pattern() {
        // The Octo-Tiger shape: many tasks acquiring/releasing per step.
        let pool: Arc<RecyclePool<[f64; 5]>> = Arc::new(RecyclePool::new());
        let rt = amt::Runtime::new(3);
        for _step in 0..4 {
            let futures: Vec<_> = (0..32)
                .map(|_| {
                    let p = Arc::clone(&pool);
                    rt.spawn(move || {
                        let buf = p.acquire(512);
                        let touched = buf.len();
                        p.release(buf);
                        touched
                    })
                })
                .collect();
            let total: usize = amt::when_all(futures).get().into_iter().sum();
            assert_eq!(total, 32 * 512);
        }
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 128);
        assert!(s.hits > 0, "later steps must reuse earlier buffers: {s:?}");
    }
}
