//! Buffer recycling — the reproduction's stand-in for **cppuddle**
//! (Table 1 of the paper lists it in Octo-Tiger's toolchain): a pool that
//! hands kernel scratch buffers back out instead of re-allocating them for
//! every one of the thousands of per-sub-grid kernel launches each step.
//!
//! The pool is size-bucketed and thread-safe; buffers are returned
//! explicitly (RAII would hide the pool handle inside the buffer type and
//! complicate crossing task boundaries, which is exactly where these
//! buffers travel).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// A recycling pool of `Vec<T>` scratch buffers.
#[derive(Debug, Default)]
pub struct RecyclePool<T> {
    free: Mutex<HashMap<usize, Vec<Vec<T>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Pool statistics (reuse effectiveness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers served from the free list.
    pub hits: u64,
    /// Buffers that had to be freshly allocated.
    pub misses: u64,
}

impl<T: Clone + Default> RecyclePool<T> {
    /// Empty pool.
    pub fn new() -> Self {
        RecyclePool {
            free: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Acquire a buffer of exactly `len` default-valued elements, reusing a
    /// previously released one when available.
    pub fn acquire(&self, len: usize) -> Vec<T> {
        let recycled = self.free.lock().get_mut(&len).and_then(Vec::pop);
        match recycled {
            Some(mut buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                buf.clear();
                buf.resize(len, T::default());
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                vec![T::default(); len]
            }
        }
    }

    /// Return a buffer for future reuse (its capacity is what's recycled).
    pub fn release(&self, buf: Vec<T>) {
        if buf.capacity() == 0 {
            return;
        }
        self.free
            .lock()
            .entry(buf.capacity())
            .or_default()
            .push(buf);
    }

    /// Reuse statistics.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Buffers currently parked in the pool.
    pub fn parked(&self) -> usize {
        self.free.lock().values().map(Vec::len).sum()
    }

    /// Drop every parked buffer (memory pressure relief).
    pub fn clear(&self) {
        self.free.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn second_acquire_reuses_first_release() {
        let pool: RecyclePool<f64> = RecyclePool::new();
        let a = pool.acquire(512);
        pool.release(a);
        let b = pool.acquire(512);
        assert_eq!(b.len(), 512);
        let s = pool.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(pool.parked(), 0);
    }

    #[test]
    fn reused_buffers_come_back_zeroed() {
        let pool: RecyclePool<u64> = RecyclePool::new();
        let mut a = pool.acquire(16);
        a.iter_mut().for_each(|x| *x = 7);
        pool.release(a);
        let b = pool.acquire(16);
        assert!(b.iter().all(|&x| x == 0), "recycled buffer must be reset");
    }

    #[test]
    fn different_sizes_use_different_buckets() {
        let pool: RecyclePool<f64> = RecyclePool::new();
        pool.release(vec![0.0; 100]);
        let _ = pool.acquire(200);
        assert_eq!(pool.stats().misses, 1, "size mismatch cannot be served");
        assert_eq!(pool.parked(), 1, "the 100-element buffer stays parked");
    }

    #[test]
    fn clear_empties_the_pool() {
        let pool: RecyclePool<f64> = RecyclePool::new();
        pool.release(vec![0.0; 8]);
        pool.release(vec![0.0; 8]);
        assert_eq!(pool.parked(), 2);
        pool.clear();
        assert_eq!(pool.parked(), 0);
    }

    #[test]
    fn concurrent_kernel_launch_pattern() {
        // The Octo-Tiger shape: many tasks acquiring/releasing per step.
        let pool: Arc<RecyclePool<[f64; 5]>> = Arc::new(RecyclePool::new());
        let rt = amt::Runtime::new(3);
        for _step in 0..4 {
            let futures: Vec<_> = (0..32)
                .map(|_| {
                    let p = Arc::clone(&pool);
                    rt.spawn(move || {
                        let buf = p.acquire(512);
                        let touched = buf.len();
                        p.release(buf);
                        touched
                    })
                })
                .collect();
            let total: usize = amt::when_all(futures).get().into_iter().sum();
            assert_eq!(total, 32 * 512);
        }
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 128);
        assert!(s.hits > 0, "later steps must reuse earlier buffers: {s:?}");
    }
}
