//! Run configuration — the CLI surface of the paper's Listings 2–3:
//!
//! ```text
//! ./octotiger --config_file=rotating_star.ini --max_level=4 --stop_step=5
//!             --theta=0.5 --multipole_host_kernel_type=KOKKOS
//!             --monopole_host_kernel_type=KOKKOS --hydro_host_kernel_type=KOKKOS
//!             --hpx:threads=4
//! ```

use serde::{Deserialize, Serialize};

use rv_machine::NetBackend;

use crate::kernel_backend::{KernelType, SimdPolicy};

/// Full configuration of a rotating-star run.
///
/// Not `Copy`: the observability flags carry an owned path
/// ([`OctoConfig::trace_out`]); clone explicitly where a copy used to be
/// implicit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OctoConfig {
    /// Maximum octree refinement level (`--max_level`, 4 in the paper).
    pub max_level: u32,
    /// Number of time steps to run (`--stop_step`, 5 in the paper).
    pub stop_step: u32,
    /// FMM opening-angle parameter (`--theta`, 0.5 in the paper).
    pub theta: f64,
    /// Hydro kernel backend (`--hydro_host_kernel_type`).
    pub hydro_kernel: KernelType,
    /// Multipole (far-field gravity) kernel backend
    /// (`--multipole_host_kernel_type`).
    pub multipole_kernel: KernelType,
    /// Monopole (near-field gravity) kernel backend
    /// (`--monopole_host_kernel_type`).
    pub monopole_kernel: KernelType,
    /// Worker threads (`--hpx:threads`).
    pub threads: usize,
    /// Parcelport backend for distributed runs (`--hpx:parcelport`,
    /// TCP / MPI / LCI as in §2.1).
    pub parcelport: NetBackend,
    /// CFL safety factor for the hydro time step.
    pub cfl: f64,
    /// Density threshold (relative to the star's central density) above
    /// which a region is refined.
    pub refine_density_frac: f64,
    /// Leaves fused per near-field (P2P) gravity launch
    /// (`--monopole_host_tasks`, the upstream `max_kernels_fused` spack
    /// variant for the monopole family). 1 = no aggregation, bitwise the
    /// per-leaf path.
    pub monopole_host_tasks: usize,
    /// Leaves fused per far-field (M2L) gravity launch
    /// (`--multipole_host_tasks`).
    pub multipole_host_tasks: usize,
    /// Leaves fused per CFL/hydro launch (`--hydro_host_tasks`).
    pub hydro_host_tasks: usize,
    /// Splits prolongated per task of a [`Driver::regrid`] sweep
    /// (`--regrid_host_tasks`) — the aggregation idiom applied to the
    /// refinement sweep. 1 = one task per split.
    ///
    /// [`Driver::regrid`]: crate::driver::Driver::regrid
    pub regrid_host_tasks: usize,
    /// SIMD width of the gravity kernels' inner source loops
    /// (`--simd_kernel_width`): 0 = the scalar reference path, otherwise
    /// one of 1/2/4/8 (a pack width; 1 is the RISC-V degenerate pack).
    /// Stored as the raw width so the config stays a flat serializable
    /// struct; convert with [`SimdPolicy::from_width`].
    pub simd_width: usize,
    /// Reuse the per-leaf interaction lists across solves until the octree
    /// topology changes (`--interaction_list_cache`). Off = the cache-off
    /// ablation: rebuild the dual traversal every step, as the seed did.
    pub use_interaction_cache: bool,
    /// Run the step as a per-leaf futurized task graph (`--futurize`):
    /// each leaf's hydro task depends only on the global CFL reduction and
    /// the gravity moments, so gravity M2L for one leaf overlaps hydro on
    /// others — HPX-style latency hiding instead of four phase barriers.
    /// Off = the barriered ablation (the seed's step structure). Both modes
    /// produce bitwise-identical states.
    pub futurize: bool,
    /// Batch small parcels per destination before transmitting
    /// (`--coalesce=on`): HPX's parcel-coalescing plugin. Off (the
    /// default) sends every parcel as its own frame, matching the paper's
    /// two-board runs.
    pub coalesce: bool,
    /// Write a Chrome trace-event JSON of the run to this path
    /// (`--trace-out=trace.json`, loadable in `about://tracing`/Perfetto).
    /// `None` (the default) leaves tracing disabled — zero-cost.
    pub trace_out: Option<String>,
    /// Print the per-step counter-delta table after the run
    /// (`--counter-table=on`).
    pub counter_table: bool,
    /// Sample the counter registry every N milliseconds on a background
    /// thread (`--sample_interval_ms=10`). The series export as Chrome
    /// `"C"` counter tracks in the trace (with `--trace-out`) and as CSV
    /// (with `--metrics-out`). `None` (the default) spawns nothing —
    /// zero-cost, same discipline as the tracer.
    pub sample_interval_ms: Option<u64>,
    /// Write the sampled counter time-series as CSV to this path
    /// (`--metrics-out=metrics.csv`). Without `--sample_interval_ms` the
    /// file holds a single end-of-run sample.
    pub metrics_out: Option<String>,
}

impl Default for OctoConfig {
    /// The paper's run: rotating star, level 4, 5 steps, θ = 0.5, all three
    /// kernels KOKKOS, 4 threads.
    fn default() -> Self {
        OctoConfig {
            max_level: 4,
            stop_step: 5,
            theta: 0.5,
            hydro_kernel: KernelType::KokkosSerial,
            multipole_kernel: KernelType::KokkosSerial,
            monopole_kernel: KernelType::KokkosSerial,
            threads: 4,
            parcelport: NetBackend::Tcp,
            cfl: 0.4,
            refine_density_frac: 1.0e-4,
            monopole_host_tasks: 1,
            multipole_host_tasks: 1,
            hydro_host_tasks: 1,
            regrid_host_tasks: 16,
            simd_width: 4,
            use_interaction_cache: true,
            futurize: true,
            coalesce: false,
            trace_out: None,
            counter_table: false,
            sample_interval_ms: None,
            metrics_out: None,
        }
    }
}

impl OctoConfig {
    /// The paper's node-level configuration with every kernel set to `k`.
    pub fn with_all_kernels(k: KernelType) -> Self {
        OctoConfig {
            hydro_kernel: k,
            multipole_kernel: k,
            monopole_kernel: k,
            ..Default::default()
        }
    }

    /// A reduced configuration for fast unit tests.
    pub fn small_test() -> Self {
        OctoConfig {
            max_level: 2,
            stop_step: 2,
            threads: 2,
            ..Default::default()
        }
    }

    /// Parse a `--key=value` argument list (the paper runs everything from
    /// the command line because the cluster has no job scheduler,
    /// Appendix B). Unknown keys are ignored, like HPX's option forwarding.
    pub fn from_args<'a>(args: impl IntoIterator<Item = &'a str>) -> Result<Self, String> {
        let mut cfg = OctoConfig::default();
        for arg in args {
            let Some(rest) = arg.strip_prefix("--") else {
                continue;
            };
            let Some((key, value)) = rest.split_once('=') else {
                continue;
            };
            match key {
                "max_level" => cfg.max_level = parse(key, value)?,
                "stop_step" => cfg.stop_step = parse(key, value)?,
                "theta" => cfg.theta = parse(key, value)?,
                "cfl" => cfg.cfl = parse(key, value)?,
                "hpx:threads" => cfg.threads = parse(key, value)?,
                "hpx:parcelport" => cfg.parcelport = NetBackend::parse(value)?,
                "hydro_host_kernel_type" => cfg.hydro_kernel = KernelType::parse(value)?,
                "multipole_host_kernel_type" => cfg.multipole_kernel = KernelType::parse(value)?,
                "monopole_host_kernel_type" => cfg.monopole_kernel = KernelType::parse(value)?,
                "monopole_host_tasks" => cfg.monopole_host_tasks = parse(key, value)?,
                "multipole_host_tasks" => cfg.multipole_host_tasks = parse(key, value)?,
                "hydro_host_tasks" => cfg.hydro_host_tasks = parse(key, value)?,
                "regrid_host_tasks" => cfg.regrid_host_tasks = parse(key, value)?,
                "simd_kernel_width" => {
                    cfg.simd_width = match value {
                        "scalar" => 0,
                        _ => parse(key, value).map_err(|_| {
                            format!(
                                "invalid value {value:?} for --simd_kernel_width \
                                 (scalar/0 or a pack width 1/2/4/8)"
                            )
                        })?,
                    }
                }
                "interaction_list_cache" => {
                    cfg.use_interaction_cache = match value {
                        "on" | "1" | "true" => true,
                        "off" | "0" | "false" => false,
                        other => {
                            return Err(format!(
                                "invalid value {other:?} for --interaction_list_cache (on/off)"
                            ))
                        }
                    }
                }
                "futurize" => {
                    cfg.futurize = match value {
                        "on" | "1" | "true" => true,
                        "off" | "0" | "false" => false,
                        other => {
                            return Err(format!("invalid value {other:?} for --futurize (on/off)"))
                        }
                    }
                }
                "coalesce" => {
                    cfg.coalesce = match value {
                        "on" | "1" | "true" => true,
                        "off" | "0" | "false" => false,
                        other => {
                            return Err(format!("invalid value {other:?} for --coalesce (on/off)"))
                        }
                    }
                }
                "trace-out" | "trace_out" => {
                    if value.is_empty() {
                        return Err("--trace-out needs a file path".into());
                    }
                    cfg.trace_out = Some(value.to_string());
                }
                "sample_interval_ms" | "sample-interval-ms" => {
                    cfg.sample_interval_ms = Some(parse(key, value)?);
                }
                "metrics-out" | "metrics_out" => {
                    if value.is_empty() {
                        return Err("--metrics-out needs a file path".into());
                    }
                    cfg.metrics_out = Some(value.to_string());
                }
                "counter-table" | "counter_table" => {
                    cfg.counter_table = match value {
                        "on" | "1" | "true" => true,
                        "off" | "0" | "false" => false,
                        other => {
                            return Err(format!(
                                "invalid value {other:?} for --counter-table (on/off)"
                            ))
                        }
                    }
                }
                _ => {}
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }

    /// Check invariants.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.theta) {
            return Err(format!("theta {} outside [0, 1]", self.theta));
        }
        if self.cfl <= 0.0 || self.cfl >= 1.0 {
            return Err(format!("cfl {} outside (0, 1)", self.cfl));
        }
        if self.threads == 0 {
            return Err("threads must be >= 1".into());
        }
        if self.max_level > 8 {
            return Err(format!(
                "max_level {} too deep for this mini-app",
                self.max_level
            ));
        }
        SimdPolicy::from_width(self.simd_width)?;
        for (knob, v) in [
            ("monopole_host_tasks", self.monopole_host_tasks),
            ("multipole_host_tasks", self.multipole_host_tasks),
            ("hydro_host_tasks", self.hydro_host_tasks),
            ("regrid_host_tasks", self.regrid_host_tasks),
        ] {
            if v == 0 {
                return Err(format!("--{knob} must be >= 1 (1 disables aggregation)"));
            }
        }
        if self.sample_interval_ms == Some(0) {
            return Err("--sample_interval_ms must be >= 1".into());
        }
        Ok(())
    }

    /// Work-aggregation batch sizes (the `--*_host_tasks` knobs).
    pub fn aggregation(&self) -> crate::aggregate::AggregationConfig {
        crate::aggregate::AggregationConfig {
            monopole: self.monopole_host_tasks,
            multipole: self.multipole_host_tasks,
            hydro: self.hydro_host_tasks,
        }
    }

    /// SIMD policy of the gravity kernels ([`OctoConfig::simd_width`]).
    pub fn simd_policy(&self) -> SimdPolicy {
        SimdPolicy::from_width(self.simd_width).expect("validated width")
    }
}

fn parse<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("invalid value {value:?} for --{key}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_run() {
        let c = OctoConfig::default();
        assert_eq!(c.max_level, 4);
        assert_eq!(c.stop_step, 5);
        assert_eq!(c.theta, 0.5);
        assert_eq!(c.threads, 4);
    }

    #[test]
    fn parses_listing2_style_arguments() {
        let c = OctoConfig::from_args([
            "--config_file=rotating_star.ini",
            "--max_level=4",
            "--stop_step=5",
            "--theta=0.5",
            "--multipole_host_kernel_type=KOKKOS",
            "--monopole_host_kernel_type=KOKKOS",
            "--hydro_host_kernel_type=KOKKOS",
            "--hpx:localities=2",
            "--hpx:threads=4",
        ])
        .unwrap();
        assert_eq!(c.max_level, 4);
        assert_eq!(c.hydro_kernel, KernelType::KokkosSerial);
        assert_eq!(c.threads, 4);
    }

    #[test]
    fn parses_all_kernel_names() {
        let c = OctoConfig::from_args([
            "--hydro_host_kernel_type=LEGACY",
            "--multipole_host_kernel_type=KOKKOS_HPX",
            "--monopole_host_kernel_type=KOKKOS",
        ])
        .unwrap();
        assert_eq!(c.hydro_kernel, KernelType::Legacy);
        assert_eq!(c.multipole_kernel, KernelType::KokkosHpx);
        assert_eq!(c.monopole_kernel, KernelType::KokkosSerial);
    }

    #[test]
    fn rejects_bad_values() {
        assert!(OctoConfig::from_args(["--max_level=zebra"]).is_err());
        assert!(OctoConfig::from_args(["--theta=1.5"]).is_err());
        assert!(OctoConfig::from_args(["--cfl=0"]).is_err());
        assert!(OctoConfig::from_args(["--hpx:threads=0"]).is_err());
        assert!(OctoConfig::from_args(["--hydro_host_kernel_type=CUDA"]).is_err());
        assert!(OctoConfig::from_args(["--hpx:parcelport=infiniband"]).is_err());
        assert!(OctoConfig::from_args(["--simd_kernel_width=3"]).is_err());
        assert!(OctoConfig::from_args(["--interaction_list_cache=maybe"]).is_err());
        assert!(OctoConfig::from_args(["--futurize=maybe"]).is_err());
        assert!(OctoConfig::from_args(["--coalesce=maybe"]).is_err());
        assert!(OctoConfig::from_args(["--monopole_host_tasks=0"]).is_err());
        assert!(OctoConfig::from_args(["--hydro_host_tasks=x"]).is_err());
        assert!(OctoConfig::from_args(["--regrid_host_tasks=0"]).is_err());
    }

    #[test]
    fn parses_aggregation_knobs() {
        let d = OctoConfig::default();
        assert_eq!(
            (
                d.monopole_host_tasks,
                d.multipole_host_tasks,
                d.hydro_host_tasks
            ),
            (1, 1, 1),
            "aggregation is off by default: batch size 1 is the per-leaf path"
        );
        assert!(d.aggregation().unified_gravity());
        let c = OctoConfig::from_args([
            "--monopole_host_tasks=8",
            "--multipole_host_tasks=4",
            "--hydro_host_tasks=16",
            "--regrid_host_tasks=32",
        ])
        .unwrap();
        assert_eq!(c.regrid_host_tasks, 32);
        let a = c.aggregation();
        assert_eq!((a.monopole, a.multipole, a.hydro), (8, 4, 16));
        assert!(
            !a.unified_gravity(),
            "unequal gravity sizes split the families"
        );
    }

    #[test]
    fn parses_futurize_flag() {
        assert!(
            OctoConfig::default().futurize,
            "the futurized task graph is the default step structure"
        );
        assert!(!OctoConfig::from_args(["--futurize=off"]).unwrap().futurize);
        assert!(OctoConfig::from_args(["--futurize=on"]).unwrap().futurize);
    }

    #[test]
    fn parses_coalesce_flag() {
        assert!(
            !OctoConfig::default().coalesce,
            "coalescing is off by default, matching the paper's runs"
        );
        assert!(OctoConfig::from_args(["--coalesce=on"]).unwrap().coalesce);
        assert!(!OctoConfig::from_args(["--coalesce=off"]).unwrap().coalesce);
    }

    #[test]
    fn parses_simd_and_cache_flags() {
        let c = OctoConfig::from_args(["--simd_kernel_width=8", "--interaction_list_cache=off"])
            .unwrap();
        assert_eq!(c.simd_width, 8);
        assert_eq!(c.simd_policy(), SimdPolicy::Width(8));
        assert!(!c.use_interaction_cache);
        let d = OctoConfig::default();
        assert_eq!(d.simd_width, 4, "SIMD is the default backend");
        assert!(d.use_interaction_cache);
        assert_eq!(
            OctoConfig::from_args(["--simd_kernel_width=0"])
                .unwrap()
                .simd_policy(),
            SimdPolicy::Scalar
        );
        assert_eq!(
            OctoConfig::from_args(["--simd_kernel_width=scalar"])
                .unwrap()
                .simd_policy(),
            SimdPolicy::Scalar,
            "'scalar' is an alias for width 0"
        );
    }

    #[test]
    fn parses_every_parcelport_name() {
        for (name, backend) in [
            ("tcp", NetBackend::Tcp),
            ("mpi", NetBackend::Mpi),
            ("lci", NetBackend::Lci),
            ("LCI", NetBackend::Lci),
        ] {
            let c = OctoConfig::from_args([format!("--hpx:parcelport={name}").as_str()]).unwrap();
            assert_eq!(c.parcelport, backend);
        }
        assert_eq!(OctoConfig::default().parcelport, NetBackend::Tcp);
    }

    #[test]
    fn unknown_keys_ignored() {
        let c = OctoConfig::from_args(["--hpx:agas=10.0.0.160:7910", "--hpx:worker"]).unwrap();
        assert_eq!(c, OctoConfig::default());
    }

    #[test]
    fn parses_observability_flags() {
        let c = OctoConfig::from_args(["--trace-out=trace.json", "--counter-table=on"]).unwrap();
        assert_eq!(c.trace_out.as_deref(), Some("trace.json"));
        assert!(c.counter_table);
        // Underscore aliases work; defaults are off.
        let d = OctoConfig::from_args(["--trace_out=t.json", "--counter_table=off"]).unwrap();
        assert_eq!(d.trace_out.as_deref(), Some("t.json"));
        assert!(!d.counter_table);
        assert_eq!(OctoConfig::default().trace_out, None);
        assert!(!OctoConfig::default().counter_table);
        assert!(OctoConfig::from_args(["--trace-out="]).is_err());
        assert!(OctoConfig::from_args(["--counter-table=maybe"]).is_err());
    }

    #[test]
    fn parses_sampler_flags() {
        let c = OctoConfig::from_args(["--sample_interval_ms=10", "--metrics-out=m.csv"]).unwrap();
        assert_eq!(c.sample_interval_ms, Some(10));
        assert_eq!(c.metrics_out.as_deref(), Some("m.csv"));
        // Dash/underscore aliases; defaults are off.
        let d = OctoConfig::from_args(["--sample-interval-ms=5", "--metrics_out=x.csv"]).unwrap();
        assert_eq!(d.sample_interval_ms, Some(5));
        assert_eq!(d.metrics_out.as_deref(), Some("x.csv"));
        assert_eq!(OctoConfig::default().sample_interval_ms, None);
        assert_eq!(OctoConfig::default().metrics_out, None);
        assert!(OctoConfig::from_args(["--sample_interval_ms=0"]).is_err());
        assert!(OctoConfig::from_args(["--sample_interval_ms=fast"]).is_err());
        assert!(OctoConfig::from_args(["--metrics-out="]).is_err());
    }

    #[test]
    fn with_all_kernels_sets_all_three() {
        let c = OctoConfig::with_all_kernels(KernelType::KokkosHpx);
        assert_eq!(c.hydro_kernel, KernelType::KokkosHpx);
        assert_eq!(c.multipole_kernel, KernelType::KokkosHpx);
        assert_eq!(c.monopole_kernel, KernelType::KokkosHpx);
    }
}
