//! Figures 4a/4b (FLOP/s across four CPUs), Figure 5 (senders & receivers
//! vs future + coroutine on RISC-V), Figure 6a/6b (normalized performance),
//! and the §6.1 flop-count measurement.

use amt::Runtime;
use rv_machine::CpuArch;

use crate::maclaurin::{self, Approach, PAPER_FLOPS, PAPER_N, PAPER_X};
use crate::project::{maclaurin_flops_per_sec, maclaurin_normalized, MaclaurinProfile};
use crate::report::{Exhibit, Series};

fn host_terms(quick: bool) -> u64 {
    if quick {
        20_000
    } else {
        200_000
    }
}

/// Run `approach` on the host with `cores` workers, returning the measured
/// profile (task/steal counts) scaled to the paper's n.
pub fn measure_profile(
    approach: Approach,
    cores: usize,
    quick: bool,
    flops_per_term: f64,
) -> MaclaurinProfile {
    Runtime::with(cores, |rt| {
        rt.reset_stats();
        let n = host_terms(quick);
        let sum = maclaurin::run(approach, &rt.handle(), PAPER_X, n);
        // Sanity: the result must be on its way to ln(1 + x).
        let want = (1.0 + PAPER_X).ln();
        assert!(
            (sum - want).abs() < 1e-3,
            "{approach:?} diverged: {sum} vs {want}"
        );
        let stats = rt.stats();
        MaclaurinProfile {
            terms: PAPER_N,
            flops_per_term,
            // Coroutine resume counts scale with n; scale the measured task
            // count up to the paper's n for styles whose task count is
            // n-dependent.
            tasks: match approach {
                Approach::Coroutines => stats.tasks_spawned * (PAPER_N / n.max(1)),
                _ => stats.tasks_spawned,
            },
            sched_events: stats.steals + stats.yields,
        }
    })
}

/// Architectures and the core counts Fig. 4 sweeps ("we capped the data at
/// ten cores to still show the scaling behavior for the RISC-V boards").
fn fig4_archs() -> Vec<(CpuArch, u32)> {
    vec![
        (CpuArch::Epyc7543, 10),
        (CpuArch::XeonGold6140, 10),
        (CpuArch::A64fx, 10),
        (CpuArch::RiscvU74, 4),
    ]
}

fn fig4_like(id: &str, title: &str, approach: Approach, quick: bool, normalized: bool) -> Exhibit {
    let mut e = Exhibit::new(
        id,
        title,
        "cores",
        if normalized {
            "FLOP/s / peak (Eq. 3)"
        } else {
            "FLOP/s"
        },
    );
    let fpt = maclaurin::flops_per_term(PAPER_X);
    for (arch, max_cores) in fig4_archs() {
        let mut points = Vec::new();
        for cores in 1..=max_cores {
            let profile = measure_profile(approach, cores as usize, quick, fpt);
            let y = if normalized {
                maclaurin_normalized(arch, cores, approach, &profile)
            } else {
                maclaurin_flops_per_sec(arch, cores, approach, &profile)
            };
            points.push((f64::from(cores), y));
        }
        e.push_series(Series::new(arch.tag(), points));
    }
    let a64 = e.series_by_label("a64fx").and_then(|s| s.y_at(4.0));
    let rv = e.series_by_label("riscv-u74").and_then(|s| s.y_at(4.0));
    if let (Some(a), Some(r)) = (a64, rv) {
        let claim = match (approach, normalized) {
            (Approach::Futures, false) => " (paper §6.1: ≈5×)",
            (Approach::ParForEach, false) => " (paper §6.1: 'RISC-V and A64FX close')",
            _ => " (normalized: RISC-V benefits from its tiny peak)",
        };
        e.note(format!("A64FX / RISC-V at 4 cores: {:.2}×{claim}", a / r));
    }
    e.note(format!(
        "measured flops/term = {fpt:.1} (paper: {:.1} via perf)",
        PAPER_FLOPS as f64 / PAPER_N as f64
    ));
    e
}

/// Fig. 4a: asynchronous programming (`hpx::async` + futures).
pub fn run_fig4a(quick: bool) -> Exhibit {
    fig4_like(
        "fig4a",
        "Maclaurin FLOP/s — async/future (hpx::async)",
        Approach::Futures,
        quick,
        false,
    )
}

/// Fig. 4b: parallel algorithms (`hpx::for_each(par)`).
pub fn run_fig4b(quick: bool) -> Exhibit {
    fig4_like(
        "fig4b",
        "Maclaurin FLOP/s — for_each(par)",
        Approach::ParForEach,
        quick,
        false,
    )
}

/// Fig. 6a: normalized performance for async/future.
pub fn run_fig6a(quick: bool) -> Exhibit {
    fig4_like(
        "fig6a",
        "Normalized performance — async/future",
        Approach::Futures,
        quick,
        true,
    )
}

/// Fig. 6b: normalized performance for for_each(par).
pub fn run_fig6b(quick: bool) -> Exhibit {
    fig4_like(
        "fig6b",
        "Normalized performance — for_each(par)",
        Approach::ParForEach,
        quick,
        true,
    )
}

/// Fig. 5: senders & receivers vs future + coroutine, RISC-V only
/// (the C++20 styles the paper could not compile on the x86 nodes).
pub fn run_fig5(quick: bool) -> Exhibit {
    let mut e = Exhibit::new(
        "fig5",
        "Maclaurin FLOP/s on RISC-V — senders & receivers vs future+coroutine",
        "cores",
        "FLOP/s",
    );
    let fpt = maclaurin::flops_per_term(PAPER_X);
    for approach in [Approach::SendersReceivers, Approach::Coroutines] {
        let mut points = Vec::new();
        for cores in 1..=4u32 {
            let profile = measure_profile(approach, cores as usize, quick, fpt);
            points.push((
                f64::from(cores),
                maclaurin_flops_per_sec(CpuArch::RiscvU74, cores, approach, &profile),
            ));
        }
        e.push_series(Series::new(approach.label(), points));
    }
    let sr = e
        .series_by_label(Approach::SendersReceivers.label())
        .and_then(|s| s.y_at(4.0));
    let co = e
        .series_by_label(Approach::Coroutines.label())
        .and_then(|s| s.y_at(4.0));
    if let (Some(s), Some(c)) = (sr, co) {
        e.note(format!(
            "S&R / coroutine at 4 cores: {:.2}× (paper: 'slightly better')",
            s / c
        ));
    }
    e
}

/// §6.1's flop-count measurement: our software-math count vs the paper's
/// perf count.
pub fn run_flops(quick: bool) -> Exhibit {
    let mut e = Exhibit::new(
        "flops",
        "Flop count of the Maclaurin benchmark (perf substitute)",
        "n (terms)",
        "flops",
    );
    let n = if quick { 10_000 } else { 100_000 };
    let (_, flops) = maclaurin::counted(PAPER_X, n);
    let per_term = flops as f64 / n as f64;
    let extrapolated = per_term * PAPER_N as f64;
    e.push_series(Series::new(
        "counted (softmath)",
        vec![(n as f64, flops as f64), (PAPER_N as f64, extrapolated)],
    ));
    e.push_series(Series::new(
        "paper (perf, Intel)",
        vec![(PAPER_N as f64, PAPER_FLOPS as f64)],
    ));
    e.note(format!(
        "{per_term:.1} flops/term measured vs paper's {:.1}; ratio {:.2}",
        PAPER_FLOPS as f64 / PAPER_N as f64,
        extrapolated / PAPER_FLOPS as f64
    ));
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4a_has_four_architectures_with_right_extents() {
        let e = run_fig4a(true);
        assert_eq!(e.series.len(), 4);
        assert_eq!(e.series_by_label("riscv-u74").unwrap().points.len(), 4);
        assert_eq!(e.series_by_label("amd").unwrap().points.len(), 10);
    }

    #[test]
    fn fig4a_amd_on_top_riscv_on_bottom() {
        let e = run_fig4a(true);
        let at4 = |label: &str| e.series_by_label(label).unwrap().y_at(4.0).unwrap();
        assert!(at4("amd") > at4("intel"));
        assert!(at4("intel") > at4("a64fx"));
        assert!(at4("a64fx") > at4("riscv-u74"));
    }

    #[test]
    fn fig4b_closes_the_a64fx_riscv_gap() {
        let a = run_fig4a(true);
        let b = run_fig4b(true);
        let gap = |e: &Exhibit| {
            e.series_by_label("a64fx").unwrap().y_at(4.0).unwrap()
                / e.series_by_label("riscv-u74").unwrap().y_at(4.0).unwrap()
        };
        assert!(
            gap(&b) < gap(&a),
            "for_each must narrow the A64FX/RISC-V gap: {} vs {}",
            gap(&b),
            gap(&a)
        );
    }

    #[test]
    fn fig5_senders_above_coroutines() {
        let e = run_fig5(true);
        let sr = e.series_by_label("senders & receivers").unwrap();
        let co = e.series_by_label("future + coroutine").unwrap();
        for (p, q) in sr.points.iter().zip(&co.points) {
            assert!(p.1 > q.1, "S&R above coroutines at {} cores", p.0);
        }
    }

    #[test]
    fn fig6_normalized_within_unit_interval() {
        let e = run_fig6a(true);
        for s in &e.series {
            for (_, y) in &s.points {
                assert!(*y > 0.0 && *y < 1.0);
            }
        }
    }

    #[test]
    fn flops_within_factor_of_paper() {
        let e = run_flops(true);
        let ours = e.series[0].last_y().unwrap();
        let paper = e.series[1].last_y().unwrap();
        let ratio = ours / paper;
        assert!(
            (0.5..2.0).contains(&ratio),
            "flop count should be the paper's order of magnitude: {ratio}"
        );
    }

    #[test]
    fn scaling_monotone_for_all_archs() {
        let e = run_fig4a(true);
        for s in &e.series {
            for w in s.points.windows(2) {
                assert!(w[1].1 > w[0].1, "{} not monotone", s.label);
            }
        }
    }
}
