//! Extension exhibits beyond the paper's figures:
//!
//! * `whatif` — the §8 ISA-extension discussion turned into numbers: how
//!   much each proposed extension (1-cycle context switch, extended
//!   atomics, hardware exponentiation, hardware task queues, a minimal V
//!   extension) would speed up the two workload classes of the study;
//! * `membench` — the §8 memory-benchmark future work (STREAM-Triad, GUPS),
//!   implemented in [`crate::membench`].

use amt::Runtime;
use rv_machine::extensions::{self, IsaExtension, WhatIfWorkload};
use rv_machine::CpuArch;

use crate::maclaurin::{self, PAPER_N, PAPER_X};
use crate::membench;
use crate::report::{Exhibit, Series};

/// Characterize the Maclaurin benchmark as a what-if workload (measured
/// flop split + scheduler event counts from a host run).
pub fn maclaurin_workload(quick: bool) -> WhatIfWorkload {
    let fpt = maclaurin::flops_per_term(PAPER_X);
    let n_host = if quick { 20_000 } else { 200_000 };
    let (tasks, steals) = Runtime::with(4, |rt| {
        rt.reset_stats();
        let _ = maclaurin::run(maclaurin::Approach::Futures, &rt.handle(), PAPER_X, n_host);
        let s = rt.stats();
        (s.tasks_spawned, s.steals)
    });
    let total = (PAPER_N as f64 * fpt) as u64;
    WhatIfWorkload {
        // pow dominates: ~95% of the counted flops sit in exp/log chains.
        transcendental_flops: total * 95 / 100,
        plain_flops: total * 5 / 100,
        task_events: tasks,
        queue_events: steals,
        atomic_events: tasks * 4,
    }
}

/// A fine-grained task storm (the coroutine style at small stride): the
/// scheduler-bound end of the spectrum.
pub fn task_storm_workload(quick: bool) -> WhatIfWorkload {
    let n_host = if quick { 20_000u64 } else { 100_000 };
    let (tasks, steals) = Runtime::with(4, |rt| {
        rt.reset_stats();
        let _ = maclaurin::coroutine_style(&rt.handle(), PAPER_X, n_host, 16, 64);
        let s = rt.stats();
        (s.tasks_spawned, s.steals)
    });
    // Scale resume counts up to the paper's n.
    let scale = PAPER_N / n_host;
    WhatIfWorkload {
        transcendental_flops: PAPER_N * 95,
        plain_flops: PAPER_N * 5,
        task_events: tasks * scale,
        queue_events: steals * scale,
        atomic_events: tasks * scale * 4,
    }
}

/// The `whatif` exhibit: speedup factor per extension per workload.
pub fn run_whatif(quick: bool) -> Exhibit {
    let mut e = Exhibit::new(
        "whatif",
        "Projected speedups of the §8 ISA extensions on the VisionFive2",
        "extension index",
        "speedup ×",
    );
    let workloads = [
        ("Maclaurin (pow-bound)", maclaurin_workload(quick)),
        ("coroutine storm (task-bound)", task_storm_workload(quick)),
    ];
    for (label, w) in &workloads {
        let points = IsaExtension::ALL
            .iter()
            .enumerate()
            .map(|(i, &ext)| (i as f64, extensions::speedup(CpuArch::Jh7110, 4, w, ext)))
            .collect();
        e.push_series(Series::new(*label, points));
    }
    for (i, ext) in IsaExtension::ALL.iter().enumerate() {
        e.note(format!("extension {i}: {}", ext.label()));
    }
    e.note(
        "§8: hardware exponent support cuts ⌈2e⌉+3 ≈ 9 flop-equivalents per \
         exponent step to 4"
            .to_string(),
    );
    e
}

/// The `membench` exhibit (STREAM-Triad + GUPS projections).
pub fn run_membench(quick: bool) -> Exhibit {
    Runtime::with(4, |rt| membench::run_exhibit(&rt.handle(), quick))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whatif_hardware_exp_helps_pow_bound_most() {
        let e = run_whatif(true);
        let pow = e.series_by_label("Maclaurin (pow-bound)").unwrap();
        let storm = e.series_by_label("coroutine storm (task-bound)").unwrap();
        // Index 2 = hardware exp; index 0 = 1-cycle ctx switch.
        assert!(pow.y_at(2.0).unwrap() > 1.5);
        assert!(pow.y_at(2.0).unwrap() > storm.y_at(2.0).unwrap() * 0.99);
        // The context-switch extension matters most for the storm.
        assert!(storm.y_at(0.0).unwrap() > pow.y_at(0.0).unwrap());
    }

    #[test]
    fn whatif_speedups_are_at_least_one() {
        let e = run_whatif(true);
        for s in &e.series {
            for (_, y) in &s.points {
                assert!(*y >= 0.999, "{}: {y}", s.label);
            }
        }
    }

    #[test]
    fn membench_exhibit_has_all_archs() {
        let e = run_membench(true);
        assert_eq!(e.series.len(), 4);
        for s in &e.series {
            assert_eq!(s.points.len(), 2);
        }
    }
}
