//! Table 1 (software stack) and Table 2 (CPU specs + Eq. 2 peak).

use rv_machine::CpuArch;

use crate::report::{Exhibit, Series};

/// Table 1: the paper's toolchain and the Rust equivalent built here.
pub fn run_table1() -> Exhibit {
    let mut e = Exhibit::new(
        "table1",
        "Compiler and software versions (paper) → reproduction substitute",
        "component",
        "—",
    );
    let rows: [(&str, &str, &str); 8] = [
        ("gcc 11.3.0/12.2.0", "→", "rustc (this toolchain)"),
        ("HPX d1042a9", "→", "crate `amt` (this repo)"),
        ("Boost 1.79/1.82", "→", "std + parking_lot + crossbeam"),
        ("Kokkos 7a18e97", "→", "crate `kokkos-lite` (this repo)"),
        ("HPX-Kokkos 246b4b8", "→", "`kokkos_lite::space::HpxSpace`"),
        ("cppuddle c084385", "→", "buffer reuse inside kernels"),
        ("jemalloc/tcmalloc", "→", "system allocator"),
        ("Octo-Tiger", "→", "crate `octotiger` (this repo)"),
    ];
    for (a, _, c) in rows {
        e.note(format!("{a:<22} → {c}"));
    }
    e
}

/// Table 2: clock, vector length, FPUs, FMA, cores and peak GFLOP/s.
pub fn run_table2() -> Exhibit {
    let mut e = Exhibit::new(
        "table2",
        "CPU specifications and theoretical peak (Eq. 2)",
        "CPU",
        "GFLOP/s (full socket)",
    );
    let mut peaks = Vec::new();
    for (i, arch) in CpuArch::TABLE2.iter().enumerate() {
        let s = arch.spec();
        peaks.push((i as f64, arch.peak_gflops_full()));
        e.note(format!(
            "{:<24} clock {:>4.1} GHz | VL {:>2} | FPU {} | FMA {} | cores {:>2} | peak {:>7.1} GFLOP/s",
            s.name,
            s.clock_ghz,
            if s.vector.has_simd() {
                s.vector.lanes().to_string()
            } else {
                "—".to_string()
            },
            s.fpu_per_core,
            if s.fma64 { "yes" } else { "no*" },
            s.cores,
            arch.peak_gflops_full(),
        ));
    }
    e.push_series(Series::new("peak GFLOP/s", peaks));
    e.note("(*) U74 FMA exists only in the 32-bit FP ISA; Table 2 keeps the factor 2 regardless.");
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_reproduces_paper_column() {
        let e = run_table2();
        let peaks = &e.series[0].points;
        let values: Vec<f64> = peaks.iter().map(|(_, y)| *y).collect();
        assert_eq!(values, vec![2764.8, 2867.2, 1324.8, 9.6]);
    }

    #[test]
    fn table1_lists_whole_stack() {
        let e = run_table1();
        let text = e.render();
        assert!(text.contains("HPX"));
        assert!(text.contains("Kokkos"));
        assert!(text.contains("Octo-Tiger"));
        assert!(text.contains("amt"));
    }
}
