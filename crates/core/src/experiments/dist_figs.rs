//! Figure 8 (distributed scaling: one vs two boards, TCP vs MPI, plus the
//! Fugaku reference) and Figure 9 (energy consumption).

use distrib::CoalesceConfig;
use octotiger::dist_driver::{DistConfig, DistMetrics, DistRun};
use octotiger::{KernelType, OctoConfig};
use rv_machine::{CpuArch, NetBackend};

use crate::project::{dist_cells_per_sec, dist_time_seconds, DistProfile, OctoProfile};
use crate::report::{Exhibit, Series};

fn dist_octo_config(quick: bool) -> OctoConfig {
    // Quick mode still needs enough compute per step that the
    // communication/computation ratio resembles the paper's level-4 run;
    // level 2 is the smallest tree with a realistic boundary-to-volume
    // ratio.
    OctoConfig {
        max_level: if quick { 2 } else { 4 },
        stop_step: if quick { 2 } else { 5 },
        ..OctoConfig::with_all_kernels(KernelType::KokkosSerial)
    }
}

fn profile_from(metrics: &DistMetrics) -> DistProfile {
    let nodes = metrics.nodes.max(1);
    let mut per_work = metrics.work;
    per_work.hydro_flops /= u64::from(nodes);
    per_work.gravity_flops /= u64::from(nodes);
    per_work.bytes /= u64::from(nodes);
    per_work.far_interactions /= u64::from(nodes);
    per_work.near_interactions /= u64::from(nodes);
    per_work.ghost_samples /= u64::from(nodes);
    per_work.ghost_slab_bytes /= u64::from(nodes);
    per_work.mac_evals /= u64::from(nodes);
    DistProfile {
        per_node: OctoProfile {
            work: per_work,
            cells_processed: metrics.cells_processed / u64::from(nodes),
            steps: metrics.steps,
            tasks: metrics.runtime_stats.tasks_spawned / u64::from(nodes),
            kokkos_dispatch: true,
            kernel_launches: metrics.leaf_count as u64 * 4 * u64::from(metrics.steps)
                / u64::from(nodes),
        },
        nodes: metrics.nodes,
        messages: metrics.net.messages,
        bytes: metrics.net.bytes,
    }
}

/// Host measurements + projected series for Figs. 8 and 9 (the two figures
/// share the same two host runs: the backend only changes the projection).
pub fn run_fig8_and_fig9(quick: bool) -> (Exhibit, Exhibit) {
    let cfg = dist_octo_config(quick);
    let m1 = DistRun::execute(DistConfig {
        nodes: 1,
        threads_per_node: 4,
        backend: NetBackend::Tcp,
        coalesce: CoalesceConfig::default(),
        octo: cfg.clone(),
    });
    let m2 = DistRun::execute(DistConfig {
        nodes: 2,
        threads_per_node: 4,
        backend: NetBackend::Tcp,
        coalesce: CoalesceConfig::default(),
        octo: cfg,
    });
    let p1 = profile_from(&m1);
    let p2 = profile_from(&m2);
    let total = m1.cells_processed;
    assert_eq!(total, m2.cells_processed, "same problem on 1 and 2 boards");

    // --- Fig. 8 ---
    let mut fig8 = Exhibit::new(
        "fig8",
        "Octo-Tiger distributed scaling (rotating star, 4 cores per node)",
        "nodes",
        "cells processed / second",
    );
    // The parcel traffic is backend-independent (the ports share one framing
    // path; see `lci_backend_same_traffic_as_tcp` in the driver), so the one
    // measured 2-node profile feeds all three link models.
    let rv1 = dist_cells_per_sec(CpuArch::Jh7110, 4, NetBackend::Tcp, &p1, total);
    let rv2_tcp = dist_cells_per_sec(CpuArch::Jh7110, 4, NetBackend::Tcp, &p2, total);
    let rv2_mpi = dist_cells_per_sec(CpuArch::Jh7110, 4, NetBackend::Mpi, &p2, total);
    let rv2_lci = dist_cells_per_sec(CpuArch::Jh7110, 4, NetBackend::Lci, &p2, total);
    fig8.push_series(Series::new("RISC-V TCP", vec![(1.0, rv1), (2.0, rv2_tcp)]));
    fig8.push_series(Series::new("RISC-V MPI", vec![(1.0, rv1), (2.0, rv2_mpi)]));
    fig8.push_series(Series::new("RISC-V LCI", vec![(1.0, rv1), (2.0, rv2_lci)]));
    let fg1 = dist_cells_per_sec(CpuArch::A64fx, 4, NetBackend::TofuD, &p1, total);
    let fg2 = dist_cells_per_sec(CpuArch::A64fx, 4, NetBackend::TofuD, &p2, total);
    fig8.push_series(Series::new(
        "Fugaku (4 cores)",
        vec![(1.0, fg1), (2.0, fg2)],
    ));
    fig8.note(format!(
        "TCP speedup 1→2 boards: {:.2}× (paper ≈1.85×), MPI: {:.2}× (paper ≈1.55×)",
        rv2_tcp / rv1,
        rv2_mpi / rv1
    ));
    fig8.note(format!(
        "LCI speedup 1→2 boards: {:.2}× (projected from the HPX-LCI link \
         calibration; explicit progress cuts per-parcel overhead below TCP)",
        rv2_lci / rv1
    ));
    fig8.note(format!(
        "Fugaku / RISC-V single node: {:.2}× (paper ≈7×)",
        fg1 / rv1
    ));
    fig8.note(format!(
        "measured wire traffic for 2 boards: {} messages, {:.2} MiB",
        m2.net.messages,
        m2.net.bytes as f64 / (1024.0 * 1024.0)
    ));

    // --- Fig. 9 ---
    let mut fig9 = Exhibit::new(
        "fig9",
        "Energy consumption (rotating star run)",
        "nodes",
        "joules",
    );
    let t_rv1 = dist_time_seconds(CpuArch::Jh7110, 4, NetBackend::Tcp, &p1);
    let t_rv2 = dist_time_seconds(CpuArch::Jh7110, 4, NetBackend::Tcp, &p2);
    let t_fg1 = dist_time_seconds(CpuArch::A64fx, 4, NetBackend::TofuD, &p1);
    let t_fg2 = dist_time_seconds(CpuArch::A64fx, 4, NetBackend::TofuD, &p2);
    let e_rv1 = crate::project::energy_report(CpuArch::Jh7110, 1, 4, t_rv1);
    let e_rv2 = crate::project::energy_report(CpuArch::Jh7110, 2, 4, t_rv2);
    let e_fg1 = crate::project::energy_report(CpuArch::A64fx, 1, 4, t_fg1);
    let e_fg2 = crate::project::energy_report(CpuArch::A64fx, 2, 4, t_fg2);
    fig9.push_series(Series::new(
        "RISC-V (wall meter)",
        vec![(1.0, e_rv1.joules), (2.0, e_rv2.joules)],
    ));
    fig9.push_series(Series::new(
        "A64FX (PowerAPI)",
        vec![(1.0, e_fg1.joules), (2.0, e_fg2.joules)],
    ));
    fig9.note(format!(
        "board power: {:.2} W (paper: 3.22 W running Octo-Tiger)",
        e_rv1.watts_per_node
    ));
    fig9.note(format!(
        "power ratio A64FX/RISC-V: {:.1}×, energy ratio RISC-V/A64FX: {:.2}× \
         (paper: power lower on RISC-V, energy higher)",
        e_fg1.watts_per_node / e_rv1.watts_per_node,
        e_rv1.joules / e_fg1.joules
    ));
    (fig8, fig9)
}

/// Fig. 8 alone.
pub fn run_fig8(quick: bool) -> Exhibit {
    run_fig8_and_fig9(quick).0
}

/// Fig. 9 alone.
pub fn run_fig9(quick: bool) -> Exhibit {
    run_fig8_and_fig9(quick).1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_shapes_match_paper() {
        let e = run_fig8(true);
        let tcp = e.series_by_label("RISC-V TCP").unwrap();
        let mpi = e.series_by_label("RISC-V MPI").unwrap();
        let lci = e.series_by_label("RISC-V LCI").unwrap();
        let fugaku = e.series_by_label("Fugaku (4 cores)").unwrap();
        // All three backends speed up from one to two boards…
        assert!(tcp.y_at(2.0).unwrap() > tcp.y_at(1.0).unwrap());
        assert!(mpi.y_at(2.0).unwrap() > mpi.y_at(1.0).unwrap());
        assert!(lci.y_at(2.0).unwrap() > lci.y_at(1.0).unwrap());
        // …TCP more than MPI…
        assert!(tcp.y_at(2.0).unwrap() > mpi.y_at(2.0).unwrap());
        // …LCI at least as well as MPI (its whole point is lower
        // per-message overhead than the two-sided backend)…
        assert!(lci.y_at(2.0).unwrap() > mpi.y_at(2.0).unwrap());
        // …all from the same single-board baseline…
        assert_eq!(lci.y_at(1.0), tcp.y_at(1.0));
        // …and Fugaku is far above both.
        assert!(fugaku.y_at(1.0).unwrap() > 3.0 * tcp.y_at(1.0).unwrap());
    }

    #[test]
    fn fig8_speedups_in_paper_range() {
        let e = run_fig8(true);
        let tcp = e.series_by_label("RISC-V TCP").unwrap();
        let mpi = e.series_by_label("RISC-V MPI").unwrap();
        let s_tcp = tcp.y_at(2.0).unwrap() / tcp.y_at(1.0).unwrap();
        let s_mpi = mpi.y_at(2.0).unwrap() / mpi.y_at(1.0).unwrap();
        assert!(
            (1.3..2.0).contains(&s_tcp),
            "TCP speedup {s_tcp} (paper 1.85)"
        );
        assert!(
            (1.1..1.9).contains(&s_mpi),
            "MPI speedup {s_mpi} (paper 1.55)"
        );
        assert!(s_tcp > s_mpi, "TCP must out-scale MPI");
        let lci = e.series_by_label("RISC-V LCI").unwrap();
        let s_lci = lci.y_at(2.0).unwrap() / lci.y_at(1.0).unwrap();
        assert!(
            (1.3..2.0).contains(&s_lci),
            "LCI speedup {s_lci} (projected; same band as TCP)"
        );
        assert!(s_lci > s_mpi, "LCI must out-scale MPI");
    }

    #[test]
    fn fig9_riscv_lower_power_higher_energy() {
        let e = run_fig9(true);
        let rv = e.series_by_label("RISC-V (wall meter)").unwrap();
        let a64 = e.series_by_label("A64FX (PowerAPI)").unwrap();
        // Energy: RISC-V above A64FX despite far lower power (§7).
        assert!(rv.y_at(1.0).unwrap() > a64.y_at(1.0).unwrap());
        assert!(rv.y_at(2.0).unwrap() > a64.y_at(2.0).unwrap());
    }
}
