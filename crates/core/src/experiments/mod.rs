//! One runner per paper exhibit. Every runner *executes the real workload
//! on the host* (collecting counts) and projects the paper's series through
//! `crate::project`; see DESIGN.md §5 for the methodology.

mod ablation;
mod dist_figs;
mod fig7;
mod maclaurin_figs;
mod tables;
mod whatif;

pub use ablation::{run_ablation_chunks, run_ablation_theta};
pub use dist_figs::{run_fig8, run_fig9};
pub use fig7::run_fig7;
pub use maclaurin_figs::{run_fig4a, run_fig4b, run_fig5, run_fig6a, run_fig6b, run_flops};
pub use tables::{run_table1, run_table2};
pub use whatif::{run_membench, run_whatif};

use crate::report::Exhibit;

/// Run every exhibit. `quick` shrinks workload sizes (for tests/CI);
/// the full mode uses the paper's parameters.
pub fn run_all(quick: bool) -> Vec<Exhibit> {
    let mut out = vec![
        run_table1(),
        run_table2(),
        run_flops(quick),
        run_fig4a(quick),
        run_fig4b(quick),
        run_fig5(quick),
        run_fig6a(quick),
        run_fig6b(quick),
        run_fig7(quick),
    ];
    let (fig8, fig9) = dist_figs::run_fig8_and_fig9(quick);
    out.push(fig8);
    out.push(fig9);
    out.push(run_whatif(quick));
    out.push(run_membench(quick));
    out.push(run_ablation_theta(quick));
    out.push(run_ablation_chunks(quick));
    out
}

/// Exhibit ids accepted by the `figures` binary.
pub const EXHIBIT_IDS: [&str; 15] = [
    "table1",
    "table2",
    "flops",
    "fig4a",
    "fig4b",
    "fig5",
    "fig6a",
    "fig6b",
    "fig7",
    "fig8",
    "fig9",
    "whatif",
    "membench",
    "ablation_theta",
    "ablation_chunks",
];

/// Run one exhibit by id.
pub fn run_one(id: &str, quick: bool) -> Option<Exhibit> {
    Some(match id {
        "table1" => run_table1(),
        "table2" => run_table2(),
        "flops" => run_flops(quick),
        "fig4a" => run_fig4a(quick),
        "fig4b" => run_fig4b(quick),
        "fig5" => run_fig5(quick),
        "fig6a" => run_fig6a(quick),
        "fig6b" => run_fig6b(quick),
        "fig7" => run_fig7(quick),
        "fig8" => run_fig8(quick),
        "fig9" => run_fig9(quick),
        "whatif" => run_whatif(quick),
        "membench" => run_membench(quick),
        "ablation_theta" => run_ablation_theta(quick),
        "ablation_chunks" => run_ablation_chunks(quick),
        _ => return None,
    })
}
