//! Ablation exhibits for the design choices DESIGN.md §6 calls out:
//!
//! * `ablation_theta` — the FMM opening parameter (`--theta`): gravity
//!   accuracy (vs direct summation) against far/near interaction counts;
//! * `ablation_chunks` — tasks per kernel for the Kokkos-HPX execution
//!   space (the §3.2 knob): measured task counts and projected step time on
//!   the JH7110.

use amt::Runtime;
use octotiger::gravity::{self, BLOCKS};
use octotiger::kernel_backend::Dispatch;
use octotiger::{Driver, KernelType, OctoConfig};
use rv_machine::{CostModel, CpuArch, RuntimeEvent};

use crate::report::{Exhibit, Series};

fn ablation_driver(quick: bool) -> Driver {
    Driver::new(OctoConfig {
        max_level: if quick { 2 } else { 3 },
        stop_step: 1,
        ..OctoConfig::with_all_kernels(KernelType::KokkosSerial)
    })
}

/// θ sweep: RMS acceleration error vs interaction volume.
pub fn run_ablation_theta(quick: bool) -> Exhibit {
    let driver = ablation_driver(quick);
    let tree = driver.tree();
    let blocks: Vec<gravity::BlockSoA> = tree
        .leaf_ids()
        .iter()
        .map(|&l| gravity::compute_blocks(tree.subgrid(l)))
        .collect();
    let moments = gravity::upward_pass(tree, &blocks);
    let pos = gravity::leaf_positions(tree);
    // The densest leaf is the most demanding target.
    let target = *tree
        .leaf_ids()
        .iter()
        .max_by(|&&a, &&b| {
            tree.subgrid(a)
                .mass()
                .partial_cmp(&tree.subgrid(b).mass())
                .expect("finite masses")
        })
        .expect("tree has leaves");
    let reference = gravity::direct_accel(tree, &blocks, target, &pos);
    let d = Dispatch::Legacy;

    let mut err_series = Vec::new();
    let mut work_series = Vec::new();
    for &theta in &[0.2, 0.35, 0.5, 0.65, 0.8] {
        let acc = gravity::accel_for_leaf(tree, &moments, &blocks, &pos, target, theta, &d, &d);
        let (far, near) = gravity::interaction_lists(tree, &moments, target, theta);
        let mut num = 0.0;
        let mut den = 0.0;
        for (a, b) in acc.iter().zip(&reference) {
            num += (a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2);
            den += b[0] * b[0] + b[1] * b[1] + b[2] * b[2];
        }
        let rms_rel = (num / den.max(1e-300)).sqrt();
        err_series.push((theta, rms_rel));
        let interactions = far.len() * BLOCKS + near.len() * BLOCKS * BLOCKS;
        work_series.push((theta, interactions as f64));
    }
    let mut e = Exhibit::new(
        "ablation_theta",
        "FMM opening parameter: accuracy vs interaction volume (one leaf)",
        "theta",
        "relative RMS error / interactions",
    );
    e.push_series(Series::new("rms error vs direct", err_series));
    e.push_series(Series::new("interactions", work_series));
    e.note("paper runs use --theta=0.5".to_string());
    e
}

/// Tasks-per-kernel sweep for the Kokkos-HPX space: measured tasks and the
/// projected JH7110 step time (the §3.2 trade-off: more tasks = better
/// load balance for big kernels, more context-switch overhead).
pub fn run_ablation_chunks(quick: bool) -> Exhibit {
    let cfg = OctoConfig {
        max_level: if quick { 1 } else { 2 },
        stop_step: 1,
        ..OctoConfig::with_all_kernels(KernelType::KokkosHpx)
    };
    let mut tasks_series = Vec::new();
    let mut overhead_series = Vec::new();
    let cm = CostModel::new(CpuArch::Jh7110);
    for &chunks in &[1usize, 2, 4, 8, 16] {
        // Measure one real step with the kernel dispatcher forced to
        // `chunks` tasks per kernel by running the kernels directly.
        let driver = Driver::new(cfg.clone());
        let rt = Runtime::new(4);
        rt.reset_stats();
        let tree = driver.tree();
        let d = Dispatch::new(KernelType::KokkosHpx, &rt.handle(), chunks);
        for &leaf in tree.leaf_ids() {
            let _ = octotiger::hydro::step_interior(tree.subgrid(leaf), 1e-4, &d);
        }
        let tasks = rt.stats().tasks_spawned;
        tasks_series.push((chunks as f64, tasks as f64));
        overhead_series.push((
            chunks as f64,
            cm.event_seconds(RuntimeEvent::ContextSwitch, tasks) * 1e3,
        ));
    }
    let mut e = Exhibit::new(
        "ablation_chunks",
        "Kokkos-HPX tasks per kernel (§3.2 knob): tasks and projected switch overhead",
        "tasks per kernel",
        "tasks / overhead (ms on JH7110)",
    );
    e.push_series(Series::new("tasks spawned", tasks_series));
    e.push_series(Series::new("switch overhead [ms]", overhead_series));
    e.note(
        "the 4-core boards need few tasks per kernel: concurrent per-sub-grid \
         launches already fill the machine (the paper's Kokkos-Serial result)"
            .to_string(),
    );
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theta_trades_accuracy_for_work() {
        let e = run_ablation_theta(true);
        let err = e.series_by_label("rms error vs direct").unwrap();
        let work = e.series_by_label("interactions").unwrap();
        // Error grows (weakly) with theta, interactions shrink.
        assert!(err.points.first().unwrap().1 <= err.points.last().unwrap().1 + 1e-12);
        assert!(work.points.first().unwrap().1 >= work.points.last().unwrap().1);
        // At the paper's theta the error is small.
        assert!(
            err.y_at(0.5).unwrap() < 0.05,
            "θ=0.5 rms {}",
            err.y_at(0.5).unwrap()
        );
    }

    #[test]
    fn more_chunks_mean_more_tasks_and_overhead() {
        let e = run_ablation_chunks(true);
        let tasks = e.series_by_label("tasks spawned").unwrap();
        let overhead = e.series_by_label("switch overhead [ms]").unwrap();
        assert!(tasks.points.last().unwrap().1 > tasks.points.first().unwrap().1);
        assert!(overhead.points.last().unwrap().1 > overhead.points.first().unwrap().1);
    }
}
