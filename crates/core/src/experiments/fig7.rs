//! Figure 7: Octo-Tiger node-level scaling on one VisionFive2 — rotating
//! star, five steps, one to four cores, three kernel configurations
//! (no-Kokkos legacy, Kokkos Serial space, Kokkos HPX space).

use octotiger::{Driver, KernelType, OctoConfig};
use rv_machine::CpuArch;

use crate::project::{octo_cells_per_sec, OctoProfile};
use crate::report::{Exhibit, Series};

/// Refinement level / steps used by the runner.
pub fn fig7_config(quick: bool, kernel: KernelType) -> OctoConfig {
    OctoConfig {
        max_level: if quick { 2 } else { 4 },
        stop_step: if quick { 2 } else { 5 },
        ..OctoConfig::with_all_kernels(kernel)
    }
}

/// Run one (kernel, cores) cell of Fig. 7 on the host and return the
/// measured profile.
pub fn measure_octo(quick: bool, kernel: KernelType, cores: usize) -> OctoProfile {
    let cfg = fig7_config(quick, kernel);
    let mut driver = Driver::new(cfg);
    let metrics = driver.run(cores);
    OctoProfile {
        work: metrics.work,
        cells_processed: metrics.cells_processed,
        steps: metrics.steps,
        tasks: metrics.runtime_stats.tasks_spawned,
        kokkos_dispatch: kernel != KernelType::Legacy,
        // Four kernel launches per leaf per step: CFL, multipole, monopole,
        // hydro.
        kernel_launches: metrics.leaf_count as u64 * 4 * u64::from(metrics.steps),
    }
}

/// Fig. 7 runner.
pub fn run_fig7(quick: bool) -> Exhibit {
    let mut e = Exhibit::new(
        "fig7",
        "Octo-Tiger node-level scaling (VisionFive2, rotating star)",
        "cores",
        "cells processed / second",
    );
    let mut leaf_note = None;
    for kernel in KernelType::ALL {
        let mut points = Vec::new();
        for cores in 1..=4u32 {
            let profile = measure_octo(quick, kernel, cores as usize);
            if leaf_note.is_none() {
                leaf_note = Some(format!(
                    "tree: {} leaves / {} cells (paper level 4: 1184 leaves / 606208 cells)",
                    profile.cells_processed / 512 / u64::from(profile.steps),
                    profile.cells_processed / u64::from(profile.steps),
                ));
            }
            points.push((
                f64::from(cores),
                octo_cells_per_sec(CpuArch::Jh7110, cores, &profile),
            ));
        }
        e.push_series(Series::new(kernel.label(), points));
    }
    if let Some(n) = leaf_note {
        e.note(n);
    }
    let at4 = |label: &str| e.series_by_label(label).and_then(|s| s.y_at(4.0));
    if let (Some(serial), Some(hpx)) = (
        at4(KernelType::KokkosSerial.label()),
        at4(KernelType::KokkosHpx.label()),
    ) {
        e.note(format!(
            "Kokkos Serial / Kokkos HPX at 4 cores: {:.3}× (paper: Serial 'showed some performance improvement')",
            serial / hpx
        ));
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_three_series_scaling_up() {
        let e = run_fig7(true);
        assert_eq!(e.series.len(), 3);
        for s in &e.series {
            assert_eq!(s.points.len(), 4);
            for w in s.points.windows(2) {
                assert!(w[1].1 > w[0].1, "{} must scale with cores", s.label);
            }
        }
    }

    #[test]
    fn fig7_serial_space_not_slower_than_hpx_space() {
        // §6.2.1: the Serial execution space showed some improvement over
        // the HPX execution space (concurrent kernel launches already fill
        // the four cores).
        let e = run_fig7(true);
        let serial = e.series_by_label(KernelType::KokkosSerial.label()).unwrap();
        let hpx = e.series_by_label(KernelType::KokkosHpx.label()).unwrap();
        let s4 = serial.y_at(4.0).unwrap();
        let h4 = hpx.y_at(4.0).unwrap();
        assert!(s4 >= h4, "Serial {s4} must be >= HPX-space {h4}");
    }

    #[test]
    fn fig7_all_configs_within_a_few_percent() {
        // The paper's three curves sit close together.
        let e = run_fig7(true);
        let ys: Vec<f64> = e.series.iter().map(|s| s.y_at(4.0).unwrap()).collect();
        let max = ys.iter().copied().fold(f64::MIN, f64::max);
        let min = ys.iter().copied().fold(f64::MAX, f64::min);
        assert!(max / min < 1.3, "configs should be close: {ys:?}");
    }
}
