//! Exhibit formatting: every experiment runner returns an [`Exhibit`]
//! (series of (x, y) points plus notes), printed as aligned text tables so
//! `cargo run -p octo-core --bin figures` regenerates the paper's rows.

/// One line/curve of a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// (x, y) points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Build a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }

    /// y value at a given x (exact match), if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (*px - x).abs() < 1e-12)
            .map(|(_, y)| *y)
    }

    /// Last y value.
    pub fn last_y(&self) -> Option<f64> {
        self.points.last().map(|(_, y)| *y)
    }
}

/// One table or figure of the paper, regenerated.
#[derive(Debug, Clone)]
pub struct Exhibit {
    /// Paper exhibit id ("fig4a", "table2", ...).
    pub id: String,
    /// Title as printed.
    pub title: String,
    /// x-axis label.
    pub xlabel: String,
    /// y-axis label.
    pub ylabel: String,
    /// The curves.
    pub series: Vec<Series>,
    /// Comparison notes (paper claim vs our measurement).
    pub notes: Vec<String>,
}

impl Exhibit {
    /// New empty exhibit.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        xlabel: impl Into<String>,
        ylabel: impl Into<String>,
    ) -> Self {
        Exhibit {
            id: id.into(),
            title: title.into(),
            xlabel: xlabel.into(),
            ylabel: ylabel.into(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a series.
    pub fn push_series(&mut self, s: Series) {
        self.series.push(s);
    }

    /// Append a note.
    pub fn note(&mut self, n: impl Into<String>) {
        self.notes.push(n.into());
    }

    /// Find a series by label.
    pub fn series_by_label(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Render the exhibit as an aligned text table.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        // Collect all x values in order.
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|(x, _)| *x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        let label_w = self
            .series
            .iter()
            .map(|s| s.label.len())
            .chain([self.xlabel.len()])
            .max()
            .unwrap_or(8)
            .max(8);
        let _ = write!(out, "{:>label_w$}", self.xlabel);
        for x in &xs {
            let _ = write!(out, " {:>12}", trim_num(*x));
        }
        let _ = writeln!(out);
        for s in &self.series {
            let _ = write!(out, "{:>label_w$}", s.label);
            for x in &xs {
                match s.y_at(*x) {
                    Some(y) => {
                        let _ = write!(out, " {:>12}", format_sig(y));
                    }
                    None => {
                        let _ = write!(out, " {:>12}", "—");
                    }
                }
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out, "  [y: {}]", self.ylabel);
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

fn trim_num(x: f64) -> String {
    if (x - x.round()).abs() < 1e-9 && x.abs() < 1e9 {
        format!("{}", x.round() as i64)
    } else {
        format!("{x:.3}")
    }
}

/// Format with 4 significant digits and engineering suffixes.
pub fn format_sig(y: f64) -> String {
    let a = y.abs();
    if a == 0.0 {
        return "0".into();
    }
    if a >= 1e12 {
        format!("{:.3}T", y / 1e12)
    } else if a >= 1e9 {
        format!("{:.3}G", y / 1e9)
    } else if a >= 1e6 {
        format!("{:.3}M", y / 1e6)
    } else if a >= 1e3 {
        format!("{:.3}k", y / 1e3)
    } else if a >= 1.0 {
        format!("{y:.3}")
    } else {
        format!("{y:.5}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_lookup() {
        let s = Series::new("a", vec![(1.0, 10.0), (2.0, 20.0)]);
        assert_eq!(s.y_at(2.0), Some(20.0));
        assert_eq!(s.y_at(3.0), None);
        assert_eq!(s.last_y(), Some(20.0));
    }

    #[test]
    fn render_contains_everything() {
        let mut e = Exhibit::new("figX", "demo", "cores", "FLOP/s");
        e.push_series(Series::new("riscv", vec![(1.0, 1.5e8), (2.0, 3.0e8)]));
        e.push_series(Series::new("amd", vec![(1.0, 3.0e9)]));
        e.note("paper: shape only");
        let r = e.render();
        assert!(r.contains("figX"));
        assert!(r.contains("riscv"));
        assert!(r.contains("150.000M"));
        assert!(r.contains("3.000G"));
        assert!(r.contains("—"), "missing point placeholder");
        assert!(r.contains("note: paper"));
    }

    #[test]
    fn format_sig_ranges() {
        assert_eq!(format_sig(0.0), "0");
        assert_eq!(format_sig(1234.0), "1.234k");
        assert_eq!(format_sig(2.5e9), "2.500G");
        assert_eq!(format_sig(5e12), "5.000T");
        assert_eq!(format_sig(0.25), "0.25000");
    }

    #[test]
    fn series_by_label_finds() {
        let mut e = Exhibit::new("t", "t", "x", "y");
        e.push_series(Series::new("one", vec![]));
        assert!(e.series_by_label("one").is_some());
        assert!(e.series_by_label("two").is_none());
    }
}
