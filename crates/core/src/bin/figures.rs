//! Regenerate the paper's tables and figures.
//!
//! ```bash
//! figures -- all [--quick]      # every exhibit
//! figures -- fig4a fig8 table2  # specific exhibits
//! ```

use octo_core::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick") || std::env::var_os("OCTO_QUICK").is_some();
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if ids.is_empty() || ids.contains(&"all") {
        for e in experiments::run_all(quick) {
            e.print();
            println!();
        }
        return;
    }
    for id in ids {
        match experiments::run_one(id, quick) {
            Some(e) => {
                e.print();
                println!();
            }
            None => {
                eprintln!(
                    "unknown exhibit {id:?}; available: {}",
                    experiments::EXHIBIT_IDS.join(", ")
                );
                std::process::exit(2);
            }
        }
    }
}
