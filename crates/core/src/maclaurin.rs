//! The Maclaurin-series benchmark — Eq. (1) of the paper:
//!
//! ```text
//! ln(1+x) = Σ_{k=1..n} (−1)^{k+1} xᵏ / k,   |x| < 1
//! ```
//!
//! implemented in the paper's four shared-memory parallelism styles
//! ([14], Figs. 4–5): asynchronous programming (`hpx::async` + futures),
//! parallel algorithms (`hpx::for_each(par)`), senders & receivers, and
//! futures + coroutines. Each term is computed with `pow(x, k)` exactly
//! like the reference C++ code, which is why a term costs ≈100 flops
//! (dominated by the software `pow` — see
//! [`rv_machine::counted::softmath`]); the paper measured 100000028581
//! flops for n = 10⁹ with `perf` on one Intel core.

use std::sync::Arc;

use amt::par::{transform_reduce_chunked, ExecutionPolicy};
use amt::sr::{schedule, sync_wait, Sender};
use amt::{coro, when_all, Handle};
use parking_lot::Mutex;
use rv_machine::{CountedF64, FlopCounter};

/// The four benchmark styles, in the order the paper presents them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Approach {
    /// `hpx::async` + `hpx::future` (Fig. 4a).
    Futures,
    /// `hpx::for_each(hpx::execution::par, ...)` (Fig. 4b).
    ParForEach,
    /// Senders & receivers (Fig. 5).
    SendersReceivers,
    /// Futures + coroutines (Fig. 5).
    Coroutines,
}

impl Approach {
    /// All four styles.
    pub const ALL: [Approach; 4] = [
        Approach::Futures,
        Approach::ParForEach,
        Approach::SendersReceivers,
        Approach::Coroutines,
    ];

    /// Label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            Approach::Futures => "async/future",
            Approach::ParForEach => "for_each(par)",
            Approach::SendersReceivers => "senders & receivers",
            Approach::Coroutines => "future + coroutine",
        }
    }
}

/// The paper's default series argument.
pub const PAPER_X: f64 = 0.5;
/// The paper's term count (n = 10⁹).
pub const PAPER_N: u64 = 1_000_000_000;
/// The paper's `perf`-measured flop count for n = 10⁹ on one Intel core.
pub const PAPER_FLOPS: u64 = 100_000_028_581;

/// One series term, computed the way the C++ benchmark does: `std::pow`.
#[inline]
pub fn term(x: f64, k: u64) -> f64 {
    let sign = if k.is_multiple_of(2) { -1.0 } else { 1.0 };
    sign * x.powf(k as f64) / k as f64
}

/// Sequential reference sum over `[1, n]`.
pub fn sequential(x: f64, n: u64) -> f64 {
    (1..=n).map(|k| term(x, k)).sum()
}

fn chunk_bounds(n: u64, chunks: usize, c: usize) -> (u64, u64) {
    let chunks = chunks as u64;
    let c = c as u64;
    let lo = c * n / chunks + 1;
    let hi = (c + 1) * n / chunks;
    (lo, hi)
}

/// Asynchronous-programming style: one `spawn` (≈ `hpx::async`) per chunk,
/// `when_all`, reduce.
pub fn futures_style(handle: &Handle, x: f64, n: u64, chunks: usize) -> f64 {
    let futures: Vec<amt::Future<f64>> = (0..chunks)
        .map(|c| {
            let (lo, hi) = chunk_bounds(n, chunks, c);
            handle.spawn(move || (lo..=hi).map(|k| term(x, k)).sum::<f64>())
        })
        .collect();
    when_all(futures).get().into_iter().sum()
}

/// Parallel-algorithm style: `transform_reduce` with the `par` policy
/// (`hpx::for_each`-family).
pub fn par_style(handle: &Handle, x: f64, n: u64, chunks: usize) -> f64 {
    transform_reduce_chunked(
        handle,
        ExecutionPolicy::Par,
        1..(n as usize + 1),
        chunks,
        0.0,
        |k| term(x, k as u64),
        |a, b| a + b,
    )
}

/// Senders & receivers style: `schedule → bulk(chunks) → then(reduce)`.
pub fn senders_style(handle: &Handle, x: f64, n: u64, chunks: usize) -> f64 {
    let partials: Arc<Vec<Mutex<f64>>> = Arc::new((0..chunks).map(|_| Mutex::new(0.0)).collect());
    let fill = Arc::clone(&partials);
    sync_wait(
        schedule(handle)
            .bulk(chunks, move |c| {
                let (lo, hi) = chunk_bounds(n, chunks, c);
                *fill[c].lock() = (lo..=hi).map(|k| term(x, k)).sum::<f64>();
            })
            .then(move |_| partials.iter().map(|m| *m.lock()).sum::<f64>()),
    )
}

/// Futures + coroutines style: one resumable coroutine per chunk, yielding
/// every `stride` terms (each yield is a scheduler round trip, like
/// `co_await`).
pub fn coroutine_style(handle: &Handle, x: f64, n: u64, chunks: usize, stride: usize) -> f64 {
    let futures: Vec<amt::Future<f64>> = (0..chunks)
        .map(|c| {
            let (lo, hi) = chunk_bounds(n, chunks, c);
            let co =
                coro::ChunkedFold::new(lo as usize..hi as usize + 1, stride, 0.0, move |acc, k| {
                    acc + term(x, k as u64)
                });
            coro::spawn_coroutine(handle, co)
        })
        .collect();
    when_all(futures).get().into_iter().sum()
}

/// Run `approach` with its default granularity (4 chunks per worker, the
/// coroutine style yielding every 4096 terms).
pub fn run(approach: Approach, handle: &Handle, x: f64, n: u64) -> f64 {
    let chunks = (handle.num_threads() * 4).max(1);
    match approach {
        Approach::Futures => futures_style(handle, x, n, chunks),
        Approach::ParForEach => par_style(handle, x, n, chunks),
        Approach::SendersReceivers => senders_style(handle, x, n, chunks),
        Approach::Coroutines => coroutine_style(handle, x, n, chunks, 4096),
    }
}

/// Flop-counted sequential run (our `perf` substitute): returns
/// `(sum, flops)` using the software-math instrumented scalar.
pub fn counted(x: f64, n: u64) -> (f64, u64) {
    let ctr = FlopCounter::new();
    let sum = {
        let _g = ctr.install();
        let xc = CountedF64::new(x);
        let mut acc = CountedF64::new(0.0);
        for k in 1..=n {
            let sign = if k % 2 == 0 { -1.0 } else { 1.0 };
            let p = xc.powf(k as f64);
            acc += CountedF64::new(sign) * p / CountedF64::new(k as f64);
        }
        acc.get()
    };
    (sum, ctr.flops())
}

/// Measured flops per term (counted on a small sample, the way one
/// extrapolates a `perf` measurement).
pub fn flops_per_term(x: f64) -> f64 {
    let sample = 10_000;
    let (_, flops) = counted(x, sample);
    flops as f64 / sample as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use amt::Runtime;

    const N: u64 = 100_000;

    fn reference(x: f64) -> f64 {
        (1.0 + x).ln()
    }

    #[test]
    fn sequential_converges_to_ln() {
        for &x in &[0.1, 0.5, 0.9, -0.5] {
            let s = sequential(x, 2_000_000);
            assert!(
                (s - reference(x)).abs() < 1e-6,
                "x={x}: {s} vs {}",
                reference(x)
            );
        }
    }

    #[test]
    fn all_styles_agree_with_sequential() {
        let rt = Runtime::new(4);
        let h = rt.handle();
        let want = sequential(PAPER_X, N);
        for approach in Approach::ALL {
            let got = run(approach, &h, PAPER_X, N);
            assert!((got - want).abs() < 1e-12, "{approach:?}: {got} vs {want}");
        }
    }

    #[test]
    fn chunk_bounds_partition_exactly() {
        for chunks in [1usize, 3, 7, 16] {
            let mut total = 0u64;
            let mut last_hi = 0;
            for c in 0..chunks {
                let (lo, hi) = chunk_bounds(N, chunks, c);
                assert_eq!(lo, last_hi + 1);
                total += hi - lo + 1;
                last_hi = hi;
            }
            assert_eq!(total, N);
            assert_eq!(last_hi, N);
        }
    }

    #[test]
    fn counted_flops_is_about_100_per_term() {
        // The paper: 100000028581 flops for 10⁹ terms ⇒ ≈100/term.
        let fpt = flops_per_term(PAPER_X);
        assert!(
            (60.0..140.0).contains(&fpt),
            "flops/term = {fpt}, expected ≈100 (paper)"
        );
    }

    #[test]
    fn counted_sum_matches_uncounted() {
        // The counted variant computes pow in software; it agrees with the
        // libm-based run to well below the series truncation error.
        let (counted_sum, flops) = counted(0.5, 50_000);
        let plain = sequential(0.5, 50_000);
        assert!(
            (counted_sum - plain).abs() < 1e-7,
            "{counted_sum} vs {plain}"
        );
        assert!((counted_sum - reference(0.5)).abs() < 1e-4);
        assert!(flops > 0);
    }

    #[test]
    fn term_alternates_sign() {
        assert!(term(0.5, 1) > 0.0);
        assert!(term(0.5, 2) < 0.0);
        assert!(term(0.5, 3) > 0.0);
    }

    #[test]
    fn single_chunk_single_thread() {
        let rt = Runtime::new(1);
        let got = futures_style(&rt.handle(), 0.5, 10_000, 1);
        assert!((got - sequential(0.5, 10_000)).abs() < 1e-12);
    }

    #[test]
    fn coroutine_stride_does_not_change_result() {
        let rt = Runtime::new(2);
        let a = coroutine_style(&rt.handle(), 0.5, N, 8, 128);
        let b = coroutine_style(&rt.handle(), 0.5, N, 8, 100_000);
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn approach_labels_distinct() {
        let mut l: Vec<_> = Approach::ALL.iter().map(|a| a.label()).collect();
        l.sort_unstable();
        l.dedup();
        assert_eq!(l.len(), 4);
    }
}
