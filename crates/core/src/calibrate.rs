//! Calibration constants for the machine projection.
//!
//! Everything here is *data*, not logic: the per-architecture cycle costs
//! live in `rv_machine::cost`; this module holds the workload-level
//! efficiency factors the paper's figures constrain. EXPERIMENTS.md lists
//! each exhibit's constraining statement; `sensitivity` tests in
//! `crate::project` perturb every constant by ±20% and check that the
//! paper's qualitative orderings survive.

use rv_machine::CpuArch;

use crate::maclaurin::Approach;

/// Efficiency of one (architecture, benchmark style) pair relative to that
/// architecture's sustained scalar chain rate.
///
/// Provenance:
/// * Async/future reaches the sustained rate everywhere (Fig. 4a's ordering
///   AMD > Intel > A64FX > RISC-V is carried by the per-arch cycle costs).
/// * `for_each(par)`: Fig. 4b shows "the performance on RISC-V and A64FX
///   was close but smaller" — the chunked algorithm's fixed-stride loop
///   defeats the A64FX's already-weak scalar front end (no vectorizable
///   body: `pow` chains), costing it roughly half its async rate, while
///   the x86 cores lose only bookkeeping overhead.
/// * Senders & receivers performed "slightly better than the coroutine
///   implementation" on RISC-V (Fig. 5): every coroutine suspension is a
///   scheduler round trip plus frame save/restore.
pub fn approach_efficiency(arch: CpuArch, approach: Approach) -> f64 {
    use Approach::*;
    match (arch, approach) {
        (_, Futures) => 1.0,
        (CpuArch::A64fx, ParForEach) => 0.45,
        (CpuArch::Epyc7543 | CpuArch::XeonGold6140, ParForEach) => 0.88,
        (_, ParForEach) => 0.92,
        (_, SendersReceivers) => 0.97,
        (_, Coroutines) => 0.90,
    }
}

/// Serial (non-parallelizable) fraction of the Maclaurin benchmark: final
/// reduction + runtime startup. Bounds strong scaling at high core counts.
pub const MACLAURIN_SERIAL_FRACTION: f64 = 0.002;

/// Load-imbalance multiplier for chunked runs (chunks are equal-sized, but
/// `pow(x, k)` cost varies slightly with k).
pub const CHUNK_IMBALANCE: f64 = 1.02;

/// Fraction of communication time the futurized task graph overlaps with
/// computation (paper §3.1: parallelism in the task graph "is automatically
/// used to hide communication latencies").
pub const COMM_OVERLAP: f64 = 0.30;

/// Serial fraction of an Octo-Tiger step (M2M upward pass, apply phase,
/// step orchestration) — limits node-level scaling in Fig. 7.
pub const OCTO_SERIAL_FRACTION: f64 = 0.03;

/// Extra per-kernel-launch overhead of the Kokkos dispatch layer relative
/// to the legacy hand-rolled kernels, in scheduler-event equivalents per
/// kernel (the Kokkos functor/policy indirection; small, per §6.2.1 all
/// three configurations perform within a few percent).
pub const KOKKOS_DISPATCH_EVENTS: f64 = 2.0;

/// Chip power of a 4-core-active A64FX via PowerAPI (uncore + HBM baseline
/// dominates at this occupancy); see `rv_machine::energy::PowerModel`.
pub const A64FX_4CORE_WATTS: f64 = 16.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiencies_are_sane() {
        for arch in CpuArch::ALL {
            for ap in Approach::ALL {
                let e = approach_efficiency(arch, ap);
                assert!((0.1..=1.0).contains(&e), "{arch:?} {ap:?}: {e}");
            }
        }
    }

    #[test]
    fn futures_is_the_reference_style() {
        for arch in CpuArch::ALL {
            assert_eq!(approach_efficiency(arch, Approach::Futures), 1.0);
        }
    }

    #[test]
    fn senders_beat_coroutines_on_riscv() {
        // Fig. 5's ordering.
        assert!(
            approach_efficiency(CpuArch::RiscvU74, Approach::SendersReceivers)
                > approach_efficiency(CpuArch::RiscvU74, Approach::Coroutines)
        );
    }

    #[test]
    fn a64fx_for_each_penalty_exceeds_x86() {
        // Fig. 4b: A64FX drops toward the RISC-V line for for_each.
        assert!(
            approach_efficiency(CpuArch::A64fx, Approach::ParForEach)
                < approach_efficiency(CpuArch::Epyc7543, Approach::ParForEach)
        );
    }
}
