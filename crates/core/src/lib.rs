//! # octo-core — the experiment harness
//!
//! Regenerates every table and figure of *"Evaluating HPX and Kokkos on
//! RISC-V using an Astrophysics Application Octo-Tiger"* (SC'23 workshops)
//! on top of the reproduction stack (`amt`, `kokkos-lite`, `distrib`,
//! `octotiger`, `rv-machine`):
//!
//! * [`maclaurin`] — the Eq. (1) benchmark in the paper's four parallelism
//!   styles, plus the flop-counted variant substituting for `perf`;
//! * [`project`] — measured host counts → per-architecture time/throughput/
//!   energy via the `rv-machine` cost models (DESIGN.md §5);
//! * [`calibrate`] — the documented calibration constants;
//! * [`experiments`] — one runner per exhibit (Tables 1–2, Figs. 4–9);
//! * [`report`] — text rendering of the regenerated exhibits.
//!
//! ```bash
//! cargo run --release -p octo-core --bin figures -- all --quick
//! cargo run --release -p octo-core --bin figures -- fig8
//! ```

pub mod calibrate;
pub mod experiments;
pub mod maclaurin;
pub mod membench;
pub mod project;
pub mod report;

pub use maclaurin::Approach;
pub use project::{DistProfile, MaclaurinProfile, OctoProfile};
pub use report::{Exhibit, Series};
