//! Performance projection: measured workload counts → per-architecture
//! times, throughputs and energies.
//!
//! This is the reproduction's substitute for the paper's physical testbeds
//! (DESIGN.md §2): the workloads *really run* on the host — producing exact
//! flop counts, task counts, ghost-path counts and wire bytes — and this
//! module converts those counts into time on a modelled CPU via
//! `rv_machine`'s cost models. No figure value is hard-coded; changing a
//! workload (e.g. the refinement level) changes the projected series
//! through the measured counts.

use octotiger::driver::WorkEstimate;
use rv_machine::{
    CostModel, CpuArch, EnergyReport, MemoryModel, NetBackend, NetCost, RuntimeEvent,
};

use crate::calibrate;
use crate::maclaurin::Approach;

/// Measured profile of one Maclaurin run (host execution).
#[derive(Debug, Clone, Copy)]
pub struct MaclaurinProfile {
    /// Series terms (the paper's n).
    pub terms: u64,
    /// Measured flops per term (counted software-math, ≈100).
    pub flops_per_term: f64,
    /// Tasks spawned during the host run.
    pub tasks: u64,
    /// Scheduler yields/steals observed.
    pub sched_events: u64,
}

impl MaclaurinProfile {
    /// Total flops — comparable to the paper's `perf` count.
    pub fn total_flops(&self) -> f64 {
        self.terms as f64 * self.flops_per_term
    }
}

/// Projected FLOP/s of one Maclaurin configuration — a point of Fig. 4/5.
pub fn maclaurin_flops_per_sec(
    arch: CpuArch,
    cores: u32,
    approach: Approach,
    profile: &MaclaurinProfile,
) -> f64 {
    let cm = CostModel::new(arch);
    let spec = arch.spec();
    assert!(
        cores >= 1 && cores <= spec.cores,
        "{arch:?} has {} cores",
        spec.cores
    );
    let eff = calibrate::approach_efficiency(arch, approach);
    // Compute time: dependent-chain flops at the sustained scalar rate.
    let t_flops = cm.flop_seconds(profile.total_flops() as u64) / eff;
    // Amdahl: serial fraction + chunk imbalance on the parallel part.
    let t_serial = t_flops * calibrate::MACLAURIN_SERIAL_FRACTION;
    let t_par = (t_flops - t_serial) * calibrate::CHUNK_IMBALANCE / f64::from(cores);
    // Scheduler overhead: every task costs a spawn + context switch.
    let t_sched = (cm.event_seconds(RuntimeEvent::TaskSpawn, profile.tasks)
        + cm.event_seconds(RuntimeEvent::ContextSwitch, profile.tasks)
        + cm.event_seconds(RuntimeEvent::Steal, profile.sched_events))
        / f64::from(cores);
    let t = t_serial + t_par + t_sched;
    profile.total_flops() / t
}

/// Normalized performance (Eq. 3): projected FLOP/s over Eq. (2)'s peak for
/// the same core count — Fig. 6's y-axis.
pub fn maclaurin_normalized(
    arch: CpuArch,
    cores: u32,
    approach: Approach,
    profile: &MaclaurinProfile,
) -> f64 {
    maclaurin_flops_per_sec(arch, cores, approach, profile) / (arch.peak_gflops(cores) * 1e9)
}

/// Measured profile of one Octo-Tiger run (host execution).
#[derive(Debug, Clone, Copy)]
pub struct OctoProfile {
    /// Work counters from the driver.
    pub work: WorkEstimate,
    /// Cells × steps.
    pub cells_processed: u64,
    /// Steps taken.
    pub steps: u32,
    /// Tasks spawned during the host run.
    pub tasks: u64,
    /// Whether kernels went through the Kokkos dispatch layer.
    pub kokkos_dispatch: bool,
    /// Kernel launches (leaves × kernels × steps) for the dispatch-layer
    /// overhead term.
    pub kernel_launches: u64,
}

/// Projected wall time of an Octo-Tiger run on `cores` cores of `arch` —
/// the node-level model behind Fig. 7.
pub fn octo_time_seconds(arch: CpuArch, cores: u32, profile: &OctoProfile) -> f64 {
    let cm = CostModel::new(arch);
    let mem = MemoryModel::new(arch);
    let w = &profile.work;
    // Structured-kernel compute (hydro + gravity), roofline-combined with
    // field traffic.
    let t_kernel_one_core = cm.kernel_flop_seconds(w.flops());
    let t_mem = mem.transfer_seconds(w.bytes + w.ghost_slab_bytes, cores);
    let t_kernel = (t_kernel_one_core / f64::from(cores)).max(t_mem)
        + 0.2 * (t_kernel_one_core / f64::from(cores)).min(t_mem);
    // AMR ghost sampling: latency-bound tree descents.
    let t_ghost = cm.ghost_sample_seconds(w.ghost_samples) / f64::from(cores);
    // Scheduler events: one spawn + switch per task.
    let mut sched_events = profile.tasks as f64 * 2.0;
    if profile.kokkos_dispatch {
        sched_events += profile.kernel_launches as f64 * calibrate::KOKKOS_DISPATCH_EVENTS;
    }
    let t_sched = sched_events * cm.event_cycles(RuntimeEvent::ContextSwitch)
        / (arch.spec().clock_ghz * 1e9)
        / f64::from(cores);
    // Amdahl serial part (upward pass, apply, orchestration).
    let t_parallel = t_kernel + t_ghost + t_sched;
    let t_serial = (t_kernel_one_core + cm.ghost_sample_seconds(w.ghost_samples))
        * calibrate::OCTO_SERIAL_FRACTION;
    t_serial + t_parallel
}

/// Projected cells/s — Fig. 7's y-axis.
pub fn octo_cells_per_sec(arch: CpuArch, cores: u32, profile: &OctoProfile) -> f64 {
    profile.cells_processed as f64 / octo_time_seconds(arch, cores, profile)
}

/// Measured profile of a distributed run.
#[derive(Debug, Clone)]
pub struct DistProfile {
    /// Per-node profile of the *local* share of the work.
    pub per_node: OctoProfile,
    /// Nodes participating.
    pub nodes: u32,
    /// Wire messages over the whole run.
    pub messages: u64,
    /// Wire bytes over the whole run.
    pub bytes: u64,
}

/// Projected wall time of a distributed run on `arch` nodes (each using
/// `cores` cores) over `backend` — the model behind Fig. 8.
pub fn dist_time_seconds(
    arch: CpuArch,
    cores: u32,
    backend: NetBackend,
    profile: &DistProfile,
) -> f64 {
    dist_time_seconds_with_net(arch, cores, backend.net_cost(), profile)
}

/// [`dist_time_seconds`] against an explicit link parameter set — the seam
/// the calibration-sensitivity tests use to perturb `NetCost` directly and
/// that the `distrib::Parcelport::cost` hook feeds.
pub fn dist_time_seconds_with_net(
    arch: CpuArch,
    cores: u32,
    net: NetCost,
    profile: &DistProfile,
) -> f64 {
    let t_compute = octo_time_seconds(arch, cores, &profile.per_node);
    if profile.nodes <= 1 {
        return t_compute;
    }
    // The wire serializes parcels; per-message overheads burn CPU, bytes
    // take size/bandwidth, and the futurized task graph hides part of it.
    let t_msgs = profile.messages as f64 * (net.per_message_us + net.latency_us) * 1e-6;
    let t_bytes = profile.bytes as f64 / (net.bandwidth_mib * 1024.0 * 1024.0);
    t_compute + (t_msgs + t_bytes) * (1.0 - calibrate::COMM_OVERLAP)
}

/// Projected cells/s for a distributed run — Fig. 8's y-axis.
pub fn dist_cells_per_sec(
    arch: CpuArch,
    cores: u32,
    backend: NetBackend,
    profile: &DistProfile,
    total_cells_processed: u64,
) -> f64 {
    total_cells_processed as f64 / dist_time_seconds(arch, cores, backend, profile)
}

/// Projected energy of a run — Fig. 9: nodes × power(active cores) × time.
pub fn energy_report(arch: CpuArch, nodes: u32, cores: u32, run_seconds: f64) -> EnergyReport {
    EnergyReport::for_run(arch, nodes, cores, run_seconds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> MaclaurinProfile {
        MaclaurinProfile {
            terms: crate::maclaurin::PAPER_N,
            flops_per_term: 100.0,
            tasks: 40,
            sched_events: 20,
        }
    }

    fn octo_profile() -> OctoProfile {
        // Roughly a level-4 five-step run.
        OctoProfile {
            work: WorkEstimate {
                hydro_flops: 3_600_000_000,
                gravity_flops: 6_000_000_000,
                bytes: 730_000_000,
                far_interactions: 100_000_000,
                near_interactions: 250_000_000,
                ghost_samples: 12_000_000,
                ghost_slab_bytes: 18_000_000,
                mac_evals: 500_000,
            },
            cells_processed: 3_031_040,
            steps: 5,
            tasks: 30_000,
            kokkos_dispatch: true,
            kernel_launches: 24_000,
        }
    }

    #[test]
    fn fig4a_ordering_amd_intel_a64fx_riscv() {
        let p = profile();
        let f = |arch, cores| maclaurin_flops_per_sec(arch, cores, Approach::Futures, &p);
        let amd = f(CpuArch::Epyc7543, 4);
        let intel = f(CpuArch::XeonGold6140, 4);
        let a64 = f(CpuArch::A64fx, 4);
        let rv = f(CpuArch::RiscvU74, 4);
        assert!(
            amd > intel && intel > a64 && a64 > rv,
            "{amd} {intel} {a64} {rv}"
        );
        // §6.1: RISC-V ≈5× slower than A64FX.
        let ratio = a64 / rv;
        assert!((3.5..6.5).contains(&ratio), "A64FX/RISC-V = {ratio}");
    }

    #[test]
    fn fig4b_a64fx_close_to_riscv_for_for_each() {
        let p = profile();
        let a64 = maclaurin_flops_per_sec(CpuArch::A64fx, 4, Approach::ParForEach, &p);
        let rv = maclaurin_flops_per_sec(CpuArch::RiscvU74, 4, Approach::ParForEach, &p);
        let ratio = a64 / rv;
        assert!(
            (1.0..3.5).contains(&ratio),
            "for_each gap should shrink (paper: 'close'): {ratio}"
        );
    }

    #[test]
    fn scaling_is_monotone_but_sublinear() {
        let p = profile();
        let mut last = 0.0;
        for cores in 1..=4 {
            let f = maclaurin_flops_per_sec(CpuArch::RiscvU74, cores, Approach::Futures, &p);
            assert!(f > last);
            last = f;
        }
        let f1 = maclaurin_flops_per_sec(CpuArch::RiscvU74, 1, Approach::Futures, &p);
        assert!(last < 4.0 * f1, "no superlinear scaling");
        assert!(last > 3.2 * f1, "RISC-V scales well to 4 cores (paper §8)");
    }

    #[test]
    fn fig5_senders_beat_coroutines() {
        let p = profile();
        for cores in 1..=4 {
            let sr =
                maclaurin_flops_per_sec(CpuArch::RiscvU74, cores, Approach::SendersReceivers, &p);
            let co = maclaurin_flops_per_sec(CpuArch::RiscvU74, cores, Approach::Coroutines, &p);
            assert!(sr > co, "cores={cores}: {sr} vs {co}");
        }
    }

    #[test]
    fn normalized_performance_below_peak() {
        let p = profile();
        for arch in CpuArch::ALL {
            let n = maclaurin_normalized(arch, 2, Approach::Futures, &p);
            assert!(n > 0.0 && n < 1.0, "{arch:?}: {n}");
        }
    }

    #[test]
    fn riscv_normalized_not_worst() {
        // Fig. 6: without a vector unit the RISC-V peak is tiny, so its
        // *normalized* performance is comparatively high.
        let p = profile();
        let rv = maclaurin_normalized(CpuArch::RiscvU74, 4, Approach::Futures, &p);
        let a64 = maclaurin_normalized(CpuArch::A64fx, 4, Approach::Futures, &p);
        assert!(rv > a64);
    }

    #[test]
    fn octo_gap_is_about_seven() {
        // §6.2.2: A64FX ≈7× faster at equal core count.
        let p = octo_profile();
        let rv = octo_cells_per_sec(CpuArch::Jh7110, 4, &p);
        let a64 = octo_cells_per_sec(CpuArch::A64fx, 4, &p);
        let ratio = a64 / rv;
        assert!(
            (5.0..9.5).contains(&ratio),
            "Octo-Tiger gap {ratio} should be ≈7"
        );
    }

    #[test]
    fn octo_node_scaling_reasonable() {
        let p = octo_profile();
        let c1 = octo_cells_per_sec(CpuArch::Jh7110, 1, &p);
        let c4 = octo_cells_per_sec(CpuArch::Jh7110, 4, &p);
        let speedup = c4 / c1;
        assert!((2.2..4.0).contains(&speedup), "4-core speedup {speedup}");
    }

    #[test]
    fn dist_tcp_beats_mpi() {
        let per_node = octo_profile();
        let p = DistProfile {
            per_node,
            nodes: 2,
            messages: 80,
            bytes: 45_000_000,
        };
        let total = per_node.cells_processed * 2;
        let tcp = dist_cells_per_sec(CpuArch::Jh7110, 4, NetBackend::Tcp, &p, total);
        let mpi = dist_cells_per_sec(CpuArch::Jh7110, 4, NetBackend::Mpi, &p, total);
        assert!(tcp > mpi, "TCP {tcp} must beat MPI {mpi}");
    }

    #[test]
    fn dist_lci_beats_mpi() {
        // HPX-LCI's lighter per-message path must out-project MPI on the
        // same measured traffic.
        let per_node = octo_profile();
        let p = DistProfile {
            per_node,
            nodes: 2,
            messages: 80,
            bytes: 45_000_000,
        };
        let total = per_node.cells_processed * 2;
        let lci = dist_cells_per_sec(CpuArch::Jh7110, 4, NetBackend::Lci, &p, total);
        let mpi = dist_cells_per_sec(CpuArch::Jh7110, 4, NetBackend::Mpi, &p, total);
        assert!(lci > mpi, "LCI {lci} must beat MPI {mpi}");
    }

    #[test]
    fn net_cost_orderings_robust_to_20_percent() {
        // Perturb every LCI link constant by ±20% (the same policy as the
        // Maclaurin sensitivity test): the paper-grounded orderings —
        // TCP > MPI (Fig. 8) and LCI > MPI (HPX-LCI's premise) — must not
        // depend on the exact calibration values. The LCI-vs-TCP ordering
        // is deliberately NOT asserted: it is a prediction of the model,
        // not a measured result from the paper.
        let per_node = octo_profile();
        let p = DistProfile {
            per_node,
            nodes: 2,
            messages: 80,
            bytes: 45_000_000,
        };
        let t = |net: NetCost| dist_time_seconds_with_net(CpuArch::Jh7110, 4, net, &p);
        let scale = |net: NetCost, s: f64| NetCost {
            per_message_us: net.per_message_us * s,
            latency_us: net.latency_us * s,
            bandwidth_mib: net.bandwidth_mib / s,
        };
        for s in [0.8, 1.0, 1.2] {
            let tcp = t(scale(NetBackend::Tcp.net_cost(), s));
            let mpi = t(NetBackend::Mpi.net_cost());
            let lci = t(scale(NetBackend::Lci.net_cost(), s));
            assert!(
                tcp < mpi,
                "s={s}: TCP {tcp} must stay faster than MPI {mpi}"
            );
            assert!(
                lci < mpi,
                "s={s}: LCI {lci} must stay faster than MPI {mpi}"
            );
        }
    }

    #[test]
    fn sensitivity_orderings_robust_to_20_percent() {
        // Perturb the flops/term and task counts by ±20%: the qualitative
        // orderings (AMD > Intel > A64FX > RISC-V; TCP > MPI) must hold.
        for scale in [0.8, 1.0, 1.2] {
            let p = MaclaurinProfile {
                terms: crate::maclaurin::PAPER_N,
                flops_per_term: 100.0 * scale,
                tasks: (40.0 * scale) as u64,
                sched_events: 20,
            };
            let f = |arch| maclaurin_flops_per_sec(arch, 4, Approach::Futures, &p);
            assert!(f(CpuArch::Epyc7543) > f(CpuArch::XeonGold6140));
            assert!(f(CpuArch::XeonGold6140) > f(CpuArch::A64fx));
            assert!(f(CpuArch::A64fx) > f(CpuArch::RiscvU74));
        }
    }

    #[test]
    #[should_panic(expected = "has 4 cores")]
    fn core_count_validated() {
        let p = profile();
        let _ = maclaurin_flops_per_sec(CpuArch::RiscvU74, 5, Approach::Futures, &p);
    }
}
