//! Memory-system benchmarks — the paper's stated future work (§8):
//!
//! > "This paper demonstrates an opportunity for future work that uses
//! > memory system benchmarks (GUPS, STREAM, STREAM-Triad, and LINPACK) to
//! > grade the relative performance of RISC-V, development board hardware,
//! > and HPC-grade devices."
//!
//! We implement the three memory benchmarks (LINPACK is compute-bound and
//! already covered by the kernel-mode cost model): each runs *for real* on
//! the host through the `amt` runtime — validating its results — and the
//! measured operation/byte counts are projected per architecture like every
//! other exhibit.

use amt::par::{self};
use amt::Handle;
use rv_machine::{CostModel, CpuArch, MemoryModel};

/// STREAM-Triad: `a[i] = b[i] + s·c[i]` — the canonical bandwidth probe.
/// Returns the checksum of `a` (so the work cannot be optimized away).
pub fn stream_triad(handle: &Handle, a: &mut [f64], b: &[f64], c: &[f64], s: f64) -> f64 {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), c.len());
    let chunks = par::default_chunks(handle.num_threads(), a.len());
    let chunk = a.len().div_ceil(chunks);
    par::scope(handle, |sc| {
        for (ci, out) in a.chunks_mut(chunk).enumerate() {
            let off = ci * chunk;
            let b = &b[off..off + out.len()];
            let c = &c[off..off + out.len()];
            sc.spawn(move || {
                for i in 0..out.len() {
                    out[i] = b[i] + s * c[i];
                }
            });
        }
    });
    a.iter().sum()
}

/// Bytes moved by one STREAM-Triad pass over `n` f64 elements
/// (2 loads + 1 store per element, 8 B each — the standard STREAM count).
pub fn triad_bytes(n: usize) -> u64 {
    3 * 8 * n as u64
}

/// GUPS (giga-updates per second): random XOR updates into a table —
/// the latency probe. Uses the standard LCG index stream; returns the
/// table checksum. Updates run in per-task index ranges (each task owns a
/// private slice of the update stream but the whole table, so this is the
/// "error tolerant" relaxed-concurrency GUPS variant run single-writer per
/// chunk here for determinism).
pub fn gups(table: &mut [u64], updates: usize) -> u64 {
    assert!(table.len().is_power_of_two(), "GUPS table must be 2^k");
    let mask = (table.len() - 1) as u64;
    let mut x = 0x1234_5678_9abc_def0u64;
    for _ in 0..updates {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let idx = (x & mask) as usize;
        table[idx] ^= x;
    }
    table.iter().fold(0u64, |acc, &v| acc ^ v)
}

/// Projected STREAM-Triad bandwidth (GiB/s) for `arch` at `cores`.
pub fn projected_triad_gib(arch: CpuArch, cores: u32) -> f64 {
    // Triad is pure bandwidth: the roofline memory term at full tilt.
    MemoryModel::new(arch).effective_bandwidth_gib(cores)
}

/// Projected GUPS (updates/s) for `arch` at `cores`: every update is a
/// dependent random access costing one full memory latency, discounted by
/// the architecture's latency hiding.
pub fn projected_gups(arch: CpuArch, cores: u32) -> f64 {
    let cm = CostModel::new(arch);
    let spec = arch.spec();
    let per_update_ns = spec.mem_latency_ns * (1.0 - cm.latency_hiding()).max(0.05);
    f64::from(cores) / (per_update_ns * 1e-9)
}

/// Run both benchmarks on the host (validating results) and produce the
/// per-architecture projection exhibit.
pub fn run_exhibit(handle: &Handle, quick: bool) -> crate::report::Exhibit {
    use crate::report::{Exhibit, Series};
    let n = if quick { 1 << 16 } else { 1 << 20 };
    // Host validation: triad result must equal the analytic checksum.
    let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let c: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
    let mut a = vec![0.0f64; n];
    let sum = stream_triad(handle, &mut a, &b, &c, 3.0);
    let want: f64 = (0..n).map(|i| i as f64 + 3.0 * (i % 7) as f64).sum();
    assert!((sum - want).abs() < 1e-6 * want, "triad validation failed");
    let mut table = vec![0u64; if quick { 1 << 12 } else { 1 << 16 }];
    let _ = gups(&mut table, n);

    let mut e = Exhibit::new(
        "membench",
        "Memory-system benchmarks (paper §8 future work): STREAM-Triad and GUPS",
        "benchmark (0 = Triad GiB/s, 1 = GUPS Mups/s)",
        "projected at 4 cores",
    );
    for arch in [
        CpuArch::Jh7110,
        CpuArch::A64fx,
        CpuArch::Epyc7543,
        CpuArch::XeonGold6140,
    ] {
        e.push_series(Series::new(
            arch.tag(),
            vec![
                (0.0, projected_triad_gib(arch, 4)),
                (1.0, projected_gups(arch, 4) / 1e6),
            ],
        ));
    }
    let rv = projected_triad_gib(CpuArch::Jh7110, 4);
    let a64 = projected_triad_gib(CpuArch::A64fx, 4);
    e.note(format!(
        "Triad bandwidth gap A64FX/RISC-V: {:.0}× (HBM2 vs single-channel LPDDR4) — \
         the §6.2 'slow connection to the memory'",
        a64 / rv
    ));
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use amt::Runtime;

    #[test]
    fn triad_computes_correctly_in_parallel() {
        let rt = Runtime::new(3);
        let n = 10_000;
        let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let c: Vec<f64> = vec![2.0; n];
        let mut a = vec![0.0; n];
        stream_triad(&rt.handle(), &mut a, &b, &c, 0.5);
        assert!(a.iter().enumerate().all(|(i, &v)| v == i as f64 + 1.0));
    }

    #[test]
    fn triad_byte_count_is_standard() {
        assert_eq!(triad_bytes(1_000_000), 24_000_000);
    }

    #[test]
    fn gups_is_deterministic_and_nontrivial() {
        let mut t1 = vec![0u64; 1 << 10];
        let mut t2 = vec![0u64; 1 << 10];
        let c1 = gups(&mut t1, 50_000);
        let c2 = gups(&mut t2, 50_000);
        assert_eq!(c1, c2);
        assert!(t1.iter().any(|&v| v != 0));
    }

    #[test]
    #[should_panic(expected = "2^k")]
    fn gups_requires_power_of_two() {
        let mut t = vec![0u64; 1000];
        let _ = gups(&mut t, 10);
    }

    #[test]
    fn projections_order_architectures_correctly() {
        // Bandwidth: HBM ≫ DDR4 servers ≫ LPDDR4 boards.
        let t = |a| projected_triad_gib(a, 4);
        assert!(t(CpuArch::A64fx) > t(CpuArch::Epyc7543));
        assert!(t(CpuArch::Epyc7543) > 10.0 * t(CpuArch::Jh7110));
        // Latency: out-of-order servers hide more than the in-order boards.
        let g = |a| projected_gups(a, 4);
        assert!(g(CpuArch::Epyc7543) > g(CpuArch::Jh7110));
    }

    #[test]
    fn exhibit_builds_and_validates() {
        let rt = Runtime::new(2);
        let e = run_exhibit(&rt.handle(), true);
        assert_eq!(e.series.len(), 4);
        assert!(!e.notes.is_empty());
    }
}
