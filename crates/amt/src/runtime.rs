//! Work-stealing task scheduler — the heart of the HPX-like runtime.
//!
//! One OS thread per configured core, each with a LIFO deque
//! (`crossbeam_deque`), a global FIFO injector for external submissions, and
//! randomized-order stealing. Idle workers park on a condvar with a short
//! timeout (re-checking queues to avoid lost-wakeup hazards).
//!
//! Every scheduler event (spawn, execution, steal, park, yield) is counted;
//! [`RuntimeStats`] snapshots feed the `rv-machine` cost model, which charges
//! per-event cycle costs that differ between the paper's architectures —
//! RISC-V context switches being the expensive case its conclusion discusses.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use apex_lite::trace::{self, Cat, ThreadLabel};
use crossbeam_deque::{Injector, Steal, Stealer, Worker as Deque};
use parking_lot::{Condvar, Mutex};

use crate::future::{pair, Future};

pub(crate) type Task = Box<dyn FnOnce() + Send + 'static>;

#[derive(Default)]
struct Stats {
    spawned: AtomicU64,
    executed: AtomicU64,
    stolen: AtomicU64,
    parked: AtomicU64,
    yields: AtomicU64,
    panics: AtomicU64,
}

/// Per-worker event counters (the `/runtime/worker{N}/...` counters in the
/// apex-lite namespace). Kept separate from the global [`Stats`] totals so
/// the hot paths touch one extra same-core atomic, not a shared one.
///
/// `busy_ns`/`park_ns` are always-on wall-clock accounting (two
/// `Instant`-reads per task / park wait, no allocation): they feed the
/// `/runtime/imbalance` max/mean-busy gauge and the per-worker utilization
/// counters even when span tracing is disabled.
#[derive(Default)]
struct WorkerCounters {
    executed: AtomicU64,
    stolen: AtomicU64,
    parked: AtomicU64,
    yields: AtomicU64,
    busy_ns: AtomicU64,
    park_ns: AtomicU64,
}

/// Snapshot of one worker's event counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerStats {
    /// Tasks this worker executed to completion.
    pub tasks_executed: u64,
    /// Successful steals this worker performed.
    pub steals: u64,
    /// Times this worker parked for lack of work.
    pub parks: u64,
    /// Cooperative yields on this worker.
    pub yields: u64,
    /// Wall-clock nanoseconds spent executing tasks.
    pub busy_ns: u64,
    /// Wall-clock nanoseconds spent parked waiting for work.
    pub park_ns: u64,
}

/// Snapshot of scheduler event counts since construction (or the last
/// [`Runtime::reset_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RuntimeStats {
    /// Tasks submitted to the scheduler.
    pub tasks_spawned: u64,
    /// Tasks executed to completion (each implies one context switch).
    pub tasks_executed: u64,
    /// Successful steals from another worker's deque.
    pub steals: u64,
    /// Times a worker went to sleep for lack of work.
    pub parks: u64,
    /// Cooperative yields (a waiting worker executing someone else's task).
    pub yields: u64,
    /// Tasks that panicked (caught; the owning future re-raises).
    pub panics: u64,
}

impl RuntimeStats {
    /// Per-interval sample: the events counted since `prev` was taken.
    /// Saturating, so per-step sampling never requires zeroing the shared
    /// counters mid-run (and survives a concurrent [`Runtime::reset_stats`]).
    pub fn delta(&self, prev: &RuntimeStats) -> RuntimeStats {
        RuntimeStats {
            tasks_spawned: self.tasks_spawned.saturating_sub(prev.tasks_spawned),
            tasks_executed: self.tasks_executed.saturating_sub(prev.tasks_executed),
            steals: self.steals.saturating_sub(prev.steals),
            parks: self.parks.saturating_sub(prev.parks),
            yields: self.yields.saturating_sub(prev.yields),
            panics: self.panics.saturating_sub(prev.panics),
        }
    }
}

pub(crate) struct Shared {
    injector: Injector<Task>,
    stealers: Vec<Stealer<Task>>,
    shutdown: AtomicBool,
    sleep_lock: Mutex<()>,
    wake: Condvar,
    sleepers: AtomicU64,
    stats: Stats,
    workers: Vec<WorkerCounters>,
    /// Trace process lane for this runtime's threads (locality id in
    /// cluster runs, 0 otherwise).
    pid: u32,
    threads: usize,
}

struct WorkerCtx {
    shared: Arc<Shared>,
    index: usize,
    deque: Deque<Task>,
}

thread_local! {
    static CTX: RefCell<Option<WorkerCtx>> = const { RefCell::new(None) };
}

impl Shared {
    fn wake_one(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _g = self.sleep_lock.lock();
            self.wake.notify_one();
        }
    }

    fn wake_all(&self) {
        let _g = self.sleep_lock.lock();
        self.wake.notify_all();
    }

    /// Pop or steal one task, from the perspective of worker `index`
    /// (local deque → injector → other workers' deques).
    fn find_task(&self, local: &Deque<Task>, index: usize) -> Option<Task> {
        if let Some(t) = local.pop() {
            return Some(t);
        }
        loop {
            match self.injector.steal_batch_and_pop(local) {
                Steal::Success(t) => return Some(t),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
        // Steal round: start from a pseudo-random neighbour to avoid
        // convoying on worker 0.
        let n = self.stealers.len();
        if n > 1 {
            let start = (index * 7 + 3) % n;
            for k in 0..n {
                let victim = (start + k) % n;
                if victim == index {
                    continue;
                }
                loop {
                    match self.stealers[victim].steal() {
                        Steal::Success(t) => {
                            self.stats.stolen.fetch_add(1, Ordering::Relaxed);
                            self.workers[index].stolen.fetch_add(1, Ordering::Relaxed);
                            trace::instant(Cat::Sched, "steal");
                            return Some(t);
                        }
                        Steal::Empty => break,
                        Steal::Retry => continue,
                    }
                }
            }
        }
        None
    }

    fn run_task(&self, task: Task, worker: Option<usize>) {
        self.stats.executed.fetch_add(1, Ordering::Relaxed);
        if let Some(i) = worker {
            self.workers[i].executed.fetch_add(1, Ordering::Relaxed);
        }
        let start = worker.map(|_| trace::now_ns());
        let _span = trace::span(Cat::Task, "execute");
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(task)).is_err() {
            // Futures carry their own panic payloads; a detached task that
            // panics is counted and otherwise dropped, keeping workers alive.
            self.stats.panics.fetch_add(1, Ordering::Relaxed);
        }
        if let (Some(i), Some(s)) = (worker, start) {
            self.workers[i]
                .busy_ns
                .fetch_add(trace::now_ns().saturating_sub(s), Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> RuntimeStats {
        RuntimeStats {
            tasks_spawned: self.stats.spawned.load(Ordering::Relaxed),
            tasks_executed: self.stats.executed.load(Ordering::Relaxed),
            steals: self.stats.stolen.load(Ordering::Relaxed),
            parks: self.stats.parked.load(Ordering::Relaxed),
            yields: self.stats.yields.load(Ordering::Relaxed),
            panics: self.stats.panics.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        for c in [
            &self.stats.spawned,
            &self.stats.executed,
            &self.stats.stolen,
            &self.stats.parked,
            &self.stats.yields,
            &self.stats.panics,
        ] {
            c.store(0, Ordering::Relaxed);
        }
        for w in &self.workers {
            for c in [
                &w.executed,
                &w.stolen,
                &w.parked,
                &w.yields,
                &w.busy_ns,
                &w.park_ns,
            ] {
                c.store(0, Ordering::Relaxed);
            }
        }
    }

    fn worker_snapshot(&self) -> Vec<WorkerStats> {
        self.workers
            .iter()
            .map(|w| WorkerStats {
                tasks_executed: w.executed.load(Ordering::Relaxed),
                steals: w.stolen.load(Ordering::Relaxed),
                parks: w.parked.load(Ordering::Relaxed),
                yields: w.yields.load(Ordering::Relaxed),
                busy_ns: w.busy_ns.load(Ordering::Relaxed),
                park_ns: w.park_ns.load(Ordering::Relaxed),
            })
            .collect()
    }
}

fn worker_main(shared: Arc<Shared>, index: usize, deque: Deque<Task>) {
    // Announce the trace identity before any event: Chrome lanes read
    // "locality{pid} / worker{index}". Never allocates (tracing may be off).
    trace::set_thread_label(shared.pid, ThreadLabel::Worker(index as u32));
    CTX.with(|c| {
        *c.borrow_mut() = Some(WorkerCtx {
            shared: Arc::clone(&shared),
            index,
            deque,
        })
    });
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let task = CTX.with(|c| {
            let borrow = c.borrow();
            let ctx = borrow.as_ref().expect("worker context missing");
            ctx.shared.find_task(&ctx.deque, ctx.index)
        });
        match task {
            Some(t) => shared.run_task(t, Some(index)),
            None => {
                shared.stats.parked.fetch_add(1, Ordering::Relaxed);
                shared.workers[index].parked.fetch_add(1, Ordering::Relaxed);
                shared.sleepers.fetch_add(1, Ordering::SeqCst);
                let park_start = trace::now_ns();
                {
                    let _span = trace::span(Cat::Sched, "park");
                    let mut g = shared.sleep_lock.lock();
                    // Re-check under the lock: a producer may have pushed and
                    // notified between our failed search and this point.
                    if shared.injector.is_empty() && !shared.shutdown.load(Ordering::SeqCst) {
                        shared.wake.wait_for(&mut g, Duration::from_micros(500));
                    }
                }
                shared.workers[index].park_ns.fetch_add(
                    trace::now_ns().saturating_sub(park_start),
                    Ordering::Relaxed,
                );
                shared.sleepers.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
    CTX.with(|c| *c.borrow_mut() = None);
}

/// True when the calling thread is a worker of *any* [`Runtime`].
pub(crate) fn on_worker() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// Index of the runtime worker executing the current task, or `None` when
/// called off a worker thread (e.g. from `main`). Worker-affine consumers —
/// the scratch/recycle pools' per-worker free-lists — use this to pick a
/// shard without contending on one global lock.
pub fn current_worker() -> Option<usize> {
    CTX.with(|c| c.borrow().as_ref().map(|ctx| ctx.index))
}

/// If on a worker thread, pop/steal and execute one ready task.
/// Returns `true` if a task was executed. This is how blocking operations
/// *help* instead of stalling a core (HPX: suspending the hpx-thread lets
/// the worker pick up other work).
pub(crate) fn help_one() -> bool {
    let found = CTX.with(|c| {
        let borrow = c.borrow();
        borrow.as_ref().and_then(|ctx| {
            ctx.shared
                .find_task(&ctx.deque, ctx.index)
                .map(|t| (Arc::clone(&ctx.shared), ctx.index, t))
        })
    });
    match found {
        Some((shared, index, t)) => {
            shared.stats.yields.fetch_add(1, Ordering::Relaxed);
            shared.workers[index].yields.fetch_add(1, Ordering::Relaxed);
            trace::instant(Cat::Sched, "yield");
            shared.run_task(t, Some(index));
            true
        }
        None => false,
    }
}

/// Cloneable, `Send` handle for submitting work to a [`Runtime`].
///
/// The handle stays valid after the runtime shuts down; tasks submitted then
/// run inline on the submitting thread (documented degraded mode, mirroring
/// HPX executing on the calling thread after `hpx::finalize`).
#[derive(Clone)]
pub struct Handle {
    shared: Arc<Shared>,
}

impl Handle {
    /// Spawn `f` as a task, returning a [`Future`] for its result —
    /// `hpx::async`.
    pub fn spawn<T, F>(&self, f: F) -> Future<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (promise, future) = pair();
        self.spawn_detached(move || {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
                Ok(v) => promise.set_value(v),
                Err(e) => promise.set_panic(e),
            }
        });
        future
    }

    /// Spawn a fire-and-forget task — `hpx::post`.
    pub fn spawn_detached<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            self.shared.stats.spawned.fetch_add(1, Ordering::Relaxed);
            self.shared.stats.executed.fetch_add(1, Ordering::Relaxed);
            let _span = trace::span(Cat::Task, "execute");
            f();
            return;
        }
        push_task(&self.shared, Box::new(f));
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.shared.threads
    }

    /// Snapshot of the scheduler event counters.
    pub fn stats(&self) -> RuntimeStats {
        self.shared.snapshot()
    }

    /// Per-worker event counters, indexed by worker id.
    pub fn worker_stats(&self) -> Vec<WorkerStats> {
        self.shared.worker_snapshot()
    }

    /// Register this runtime's counters with an apex-lite registry under
    /// `prefix` (e.g. `/runtime`): scheduler totals, per-worker
    /// `worker{N}/...` breakdowns (now including wall-clock `busy_ns` /
    /// `park_ns`), and the `imbalance` max/mean-busy gauge. The provider
    /// captures a clone of this handle, so it stays valid for the
    /// registry's lifetime.
    pub fn register_counters(&self, registry: &mut apex_lite::CounterRegistry, prefix: &str) {
        let h = self.clone();
        registry.register(prefix, move |c| {
            let s = h.stats();
            c.count("tasks_spawned", s.tasks_spawned);
            c.count("tasks_executed", s.tasks_executed);
            c.count("steals", s.steals);
            c.count("parks", s.parks);
            c.count("yields", s.yields);
            c.count("panics", s.panics);
            let per = h.worker_stats();
            c.gauge("imbalance", imbalance(&per));
            for (i, w) in per.into_iter().enumerate() {
                c.count(&format!("worker{i}/executed"), w.tasks_executed);
                c.count(&format!("worker{i}/steals"), w.steals);
                c.count(&format!("worker{i}/parks"), w.parks);
                c.count(&format!("worker{i}/yields"), w.yields);
                c.count(&format!("worker{i}/busy_ns"), w.busy_ns);
                c.count(&format!("worker{i}/park_ns"), w.park_ns);
            }
        });
    }
}

/// Load-imbalance ratio over a set of workers: max busy time / mean busy
/// time. `1.0` is perfectly balanced; `0.0` means no recorded busy time
/// (or no workers). This is the `/runtime/imbalance` gauge the ROADMAP's
/// scale-out and autotuner items consume.
pub fn imbalance(stats: &[WorkerStats]) -> f64 {
    let total: u64 = stats.iter().map(|w| w.busy_ns).sum();
    if stats.is_empty() || total == 0 {
        return 0.0;
    }
    let max = stats.iter().map(|w| w.busy_ns).max().unwrap_or(0) as f64;
    max / (total as f64 / stats.len() as f64)
}

fn push_task(shared: &Arc<Shared>, task: Task) {
    shared.stats.spawned.fetch_add(1, Ordering::Relaxed);
    let leftover = CTX.with(|c| {
        let borrow = c.borrow();
        match borrow.as_ref() {
            Some(ctx) if Arc::ptr_eq(&ctx.shared, shared) => {
                ctx.deque.push(task);
                None
            }
            _ => Some(task),
        }
    });
    if let Some(t) = leftover {
        shared.injector.push(t);
    }
    shared.wake_one();
}

/// The HPX-like runtime: a pool of worker threads executing lightweight
/// tasks with work stealing. Dropping the runtime shuts the pool down
/// (pending queued tasks are abandoned — call [`Runtime::wait_idle`] or hold
/// futures if you need completion).
pub struct Runtime {
    shared: Arc<Shared>,
    joins: Vec<std::thread::JoinHandle<()>>,
}

impl Runtime {
    /// Start a runtime with `threads` workers (≥1, like `--hpx:threads=N`).
    pub fn new(threads: usize) -> Self {
        Self::new_labeled(threads, 0)
    }

    /// Start a runtime whose worker threads carry trace process lane `pid`
    /// (the distrib cluster passes the locality id, so a merged trace shows
    /// one Chrome process per locality).
    pub fn new_labeled(threads: usize, pid: u32) -> Self {
        assert!(threads >= 1, "need at least one worker thread");
        let deques: Vec<Deque<Task>> = (0..threads).map(|_| Deque::new_lifo()).collect();
        let stealers = deques.iter().map(Deque::stealer).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers,
            shutdown: AtomicBool::new(false),
            sleep_lock: Mutex::new(()),
            wake: Condvar::new(),
            sleepers: AtomicU64::new(0),
            stats: Stats::default(),
            workers: (0..threads).map(|_| WorkerCounters::default()).collect(),
            pid,
            threads,
        });
        let joins = deques
            .into_iter()
            .enumerate()
            .map(|(i, d)| {
                let s = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("amt-worker-{i}"))
                    .spawn(move || worker_main(s, i, d))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Runtime { shared, joins }
    }

    /// Run `f` against a fresh runtime of `threads` workers, then tear it
    /// down — the shape every experiment uses for its core sweep.
    pub fn with<R>(threads: usize, f: impl FnOnce(&Runtime) -> R) -> R {
        let rt = Runtime::new(threads);
        f(&rt)
    }

    /// Submission handle (cloneable, `Send`).
    pub fn handle(&self) -> Handle {
        Handle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.shared.threads
    }

    /// Snapshot of the scheduler event counters.
    pub fn stats(&self) -> RuntimeStats {
        self.shared.snapshot()
    }

    /// Per-worker event counters, indexed by worker id.
    pub fn worker_stats(&self) -> Vec<WorkerStats> {
        self.shared.worker_snapshot()
    }

    /// Zero the event counters (between experiment repetitions).
    pub fn reset_stats(&self) {
        self.shared.reset();
    }

    /// Spawn directly from the runtime (convenience over `handle().spawn`).
    pub fn spawn<T, F>(&self, f: F) -> Future<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.handle().spawn(f)
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake_all();
        for j in self.joins.drain(..) {
            let _ = j.join();
        }
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("threads", &self.shared.threads)
            .field("stats", &self.shared.snapshot())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn spawn_and_get() {
        let rt = Runtime::new(2);
        let f = rt.spawn(|| 7 * 6);
        assert_eq!(f.get(), 42);
    }

    #[test]
    fn many_tasks_all_execute() {
        let rt = Runtime::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let futures: Vec<_> = (0..1000)
            .map(|_| {
                let c = Arc::clone(&counter);
                rt.spawn(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for f in futures {
            f.get();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn nested_spawn_from_worker() {
        let rt = Runtime::new(2);
        let h = rt.handle();
        let f = rt.spawn(move || {
            let inner = h.spawn(|| 10);
            inner.get() + 1
        });
        assert_eq!(f.get(), 11);
    }

    #[test]
    fn deeply_nested_spawns_do_not_deadlock_on_one_thread() {
        // A single worker must be able to complete a chain of blocking
        // nested spawns by helping.
        let rt = Runtime::new(1);
        fn nest(h: Handle, depth: usize) -> usize {
            if depth == 0 {
                return 0;
            }
            let h2 = h.clone();
            let f = h.spawn(move || nest(h2, depth - 1) + 1);
            f.get()
        }
        let h = rt.handle();
        let f = rt.spawn(move || nest(h, 50));
        assert_eq!(f.get(), 50);
    }

    #[test]
    fn stats_count_spawn_and_execute() {
        let rt = Runtime::new(2);
        let fs: Vec<_> = (0..100).map(|i| rt.spawn(move || i)).collect();
        for f in fs {
            f.get();
        }
        let s = rt.stats();
        assert!(s.tasks_spawned >= 100);
        assert!(s.tasks_executed >= 100);
        rt.reset_stats();
        assert_eq!(rt.stats().tasks_spawned, 0);
    }

    #[test]
    fn panicking_task_propagates_through_future() {
        let rt = Runtime::new(2);
        let f = rt.spawn(|| -> i32 { panic!("boom") });
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f.get()));
        assert!(res.is_err());
        // Pool survives:
        assert_eq!(rt.spawn(|| 1).get(), 1);
    }

    #[test]
    fn detached_panic_does_not_kill_workers() {
        let rt = Runtime::new(1);
        rt.handle().spawn_detached(|| panic!("ignored"));
        // The single worker must still process new work.
        assert_eq!(rt.spawn(|| 5).get(), 5);
        assert!(rt.stats().panics >= 1);
    }

    #[test]
    fn handle_survives_runtime_drop() {
        let rt = Runtime::new(1);
        let h = rt.handle();
        drop(rt);
        // Degraded inline mode.
        assert_eq!(h.spawn(|| 3).get(), 3);
    }

    #[test]
    fn steals_happen_with_imbalanced_load() {
        let rt = Runtime::new(4);
        // One producer task spawning many children from its own deque
        // forces the other three workers to steal.
        let h = rt.handle();
        let f = rt.spawn(move || {
            let kids: Vec<_> = (0..400)
                .map(|i| {
                    h.spawn(move || {
                        // Spin long enough that children overlap and idle
                        // workers wake up to steal.
                        let mut x = i as u64;
                        for _ in 0..200_000 {
                            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        }
                        std::hint::black_box(x)
                    })
                })
                .collect();
            let n = kids.len();
            for k in kids {
                k.get();
            }
            n
        });
        assert_eq!(f.get(), 400);
        assert!(rt.stats().steals > 0, "expected steals: {:?}", rt.stats());
    }

    #[test]
    fn with_tears_down() {
        let out = Runtime::with(3, |rt| {
            assert_eq!(rt.num_threads(), 3);
            rt.spawn(|| 2).get()
        });
        assert_eq!(out, 2);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let _ = Runtime::new(0);
    }

    #[test]
    fn stats_delta_is_per_interval_and_saturating() {
        let rt = Runtime::new(2);
        for f in (0..50).map(|i| rt.spawn(move || i)).collect::<Vec<_>>() {
            f.get();
        }
        let prev = rt.stats();
        for f in (0..30).map(|i| rt.spawn(move || i)).collect::<Vec<_>>() {
            f.get();
        }
        let d = rt.stats().delta(&prev);
        assert!(d.tasks_spawned >= 30 && d.tasks_spawned < 80);
        // A reset between samples saturates to zero instead of wrapping.
        rt.reset_stats();
        let after_reset = rt.stats().delta(&prev);
        assert_eq!(after_reset.tasks_spawned, 0);
    }

    #[test]
    fn per_worker_stats_account_for_all_executions() {
        let rt = Runtime::new(2);
        for f in (0..200).map(|i| rt.spawn(move || i)).collect::<Vec<_>>() {
            f.get();
        }
        let total = rt.stats();
        let per = rt.worker_stats();
        assert_eq!(per.len(), 2);
        let executed: u64 = per.iter().map(|w| w.tasks_executed).sum();
        assert_eq!(executed, total.tasks_executed);
        let steals: u64 = per.iter().map(|w| w.steals).sum();
        assert_eq!(steals, total.steals);
    }

    #[test]
    fn counter_registry_exports_runtime_namespace() {
        let rt = Runtime::new(2);
        let mut reg = apex_lite::CounterRegistry::new();
        rt.handle().register_counters(&mut reg, "/runtime");
        for f in (0..50).map(|i| rt.spawn(move || i)).collect::<Vec<_>>() {
            f.get();
        }
        let s = reg.sample();
        assert!(s.count("/runtime/tasks_executed") >= 50);
        assert!(s.get("/runtime/worker0/executed").is_some());
        assert!(s.get("/runtime/worker1/steals").is_some());
        assert!(s.get("/runtime/worker0/busy_ns").is_some());
        assert!(s.get("/runtime/worker1/park_ns").is_some());
        assert!(
            matches!(
                s.get("/runtime/imbalance"),
                Some(apex_lite::CounterValue::Gauge(_))
            ),
            "imbalance must be a gauge: {:?}",
            s.get("/runtime/imbalance")
        );
        // Totals + imbalance gauge + 6 counters per worker.
        assert_eq!(s.len(), 6 + 1 + 2 * 6);
    }

    #[test]
    fn busy_time_accrues_and_imbalance_is_sane() {
        let rt = Runtime::new(2);
        let fs: Vec<_> = (0..64)
            .map(|i| {
                rt.spawn(move || {
                    let mut x = i as u64;
                    for _ in 0..100_000 {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    }
                    std::hint::black_box(x)
                })
            })
            .collect();
        for f in fs {
            f.get();
        }
        let per = rt.worker_stats();
        let busy: u64 = per.iter().map(|w| w.busy_ns).sum();
        assert!(busy > 0, "no busy time recorded: {per:?}");
        let r = imbalance(&per);
        // max/mean over n workers is bounded by [1, n].
        assert!((1.0..=per.len() as f64).contains(&r), "imbalance {r}");
        // Parked workers accrue park time (the pool idles after the burst).
        std::thread::sleep(Duration::from_millis(5));
        let parked: u64 = rt.worker_stats().iter().map(|w| w.park_ns).sum();
        assert!(parked > 0, "no park time recorded");
    }

    #[test]
    fn imbalance_edge_cases() {
        assert_eq!(imbalance(&[]), 0.0);
        let zero = WorkerStats::default();
        assert_eq!(imbalance(&[zero, zero]), 0.0);
        let a = WorkerStats {
            busy_ns: 300,
            ..WorkerStats::default()
        };
        let b = WorkerStats {
            busy_ns: 100,
            ..WorkerStats::default()
        };
        // max 300, mean 200 → 1.5.
        assert!((imbalance(&[a, b]) - 1.5).abs() < 1e-12);
        // Perfectly balanced → 1.0.
        assert!((imbalance(&[a, a]) - 1.0).abs() < 1e-12);
    }
}
